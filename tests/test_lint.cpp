// Tests for the qtx-lint static-analysis pass (src/analysis):
//
//  - preprocessing: comment/string blanking, digit separators, raw
//    strings, suppression annotations, umbrella-header detection
//  - every check fires on its seeded fixture violation with the exact
//    <file>:<line> diagnostic (tests/lint_fixtures/violations)
//  - clean and suppressed fixture trees report zero findings
//  - the qtx-lint binary's exit-code contract: 0 clean / 1 violations /
//    2 usage error
//
// The repo-wide gate (the real src/ tree must lint clean) is the separate
// `lint.repo` ctest case registered in CMakeLists.txt.

#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "analysis/source.hpp"

#ifndef QTX_LINT_FIXTURE_DIR
#error "QTX_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif
#ifndef QTX_LINT_BIN
#error "QTX_LINT_BIN must point at the qtx-lint binary"
#endif

namespace {

using qtx::analysis::Diagnostic;
using qtx::analysis::LintOptions;
using qtx::analysis::LintReport;
using qtx::analysis::LintUsageError;
using qtx::analysis::preprocess_source;
using qtx::analysis::run_lint;
using qtx::analysis::run_lint_on;
using qtx::analysis::SourceFile;

std::string fixture(const std::string& tree) {
  return std::string(QTX_LINT_FIXTURE_DIR) + "/" + tree;
}

/// Runs the real binary, returns its exit code (not the raw wait status).
int run_lint_binary(const std::string& args, const std::string& log) {
  const std::string cmd =
      std::string("\"") + QTX_LINT_BIN + "\" " + args + " > " + log + " 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

bool has_diag(const LintReport& r, const std::string& file, int line,
              const std::string& check) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.file == file && d.line == line &&
                              d.check == check;
                     });
}

// ---------------------------------------------------------------------------
//

TEST(LintSource, BlanksCommentsAndStringLiterals) {
  const SourceFile sf = preprocess_source(
      "int a = 1; // std::cout here\n"
      "const char* s = \"volatile rand(\";\n"
      "/* block volatile\n"
      "   comment */ int b = 2;\n",
      "src/core/x.cpp");
  ASSERT_EQ(sf.code.size(), 4u);
  EXPECT_EQ(sf.code[0].find("std::cout"), std::string::npos);
  EXPECT_EQ(sf.code[1].find("volatile"), std::string::npos);
  EXPECT_NE(sf.code[1].find("const char* s ="), std::string::npos);
  EXPECT_EQ(sf.code[2].find("volatile"), std::string::npos);
  EXPECT_NE(sf.code[3].find("int b = 2;"), std::string::npos);
}

TEST(LintSource, DigitSeparatorIsNotACharLiteral) {
  const SourceFile sf = preprocess_source(
      "int n = 1'000'000; int detach_me = 0; // volatile\n",
      "src/core/x.cpp");
  // The digit separator must not open a char literal that swallows the
  // rest of the line.
  EXPECT_NE(sf.code[0].find("int detach_me = 0;"), std::string::npos);
  EXPECT_EQ(sf.code[0].find("volatile"), std::string::npos);
}

TEST(LintSource, RawStringLiteralIsBlanked) {
  const SourceFile sf = preprocess_source(
      "const char* re = R\"(std::cout volatile)\"; int c = 3;\n",
      "src/core/x.cpp");
  EXPECT_EQ(sf.code[0].find("volatile"), std::string::npos);
  EXPECT_NE(sf.code[0].find("int c = 3;"), std::string::npos);
}

TEST(LintSource, LayerAndHeaderDetection) {
  EXPECT_EQ(preprocess_source("", "src/core/x.cpp").layer, "core");
  EXPECT_EQ(preprocess_source("", "src/la/m.hpp").layer, "la");
  EXPECT_TRUE(preprocess_source("", "src/la/m.hpp").is_header);
  EXPECT_FALSE(preprocess_source("", "src/la/m.cpp").is_header);
  EXPECT_EQ(preprocess_source("", "apps/main.cpp").layer, "");
}

TEST(LintSource, SuppressionOnOwnLine) {
  const SourceFile sf = preprocess_source(
      "volatile int x = 0;  // qtx-lint: allow(volatile) — sink\n",
      "src/core/x.cpp");
  EXPECT_TRUE(sf.line_allows(1, "volatile"));
  EXPECT_FALSE(sf.line_allows(1, "rng"));
}

TEST(LintSource, StandaloneSuppressionGovernsNextCodeLine) {
  const SourceFile sf = preprocess_source(
      "// qtx-lint: allow(volatile, raw-accumulate) — two-name list,\n"
      "// continued justification on a second comment line.\n"
      "volatile int x = 0;\n",
      "src/core/x.cpp");
  EXPECT_TRUE(sf.line_allows(3, "volatile"));
  EXPECT_TRUE(sf.line_allows(3, "raw-accumulate"));
  EXPECT_FALSE(sf.line_allows(2, "rng"));
}

TEST(LintSource, UmbrellaHeaderHasNoNonPreprocessorCode) {
  const SourceFile umbrella = preprocess_source(
      "#pragma once\n// doc\n#include \"la/gemm.hpp\"\n", "src/la/la.hpp");
  EXPECT_FALSE(umbrella.has_non_preprocessor_code());
  const SourceFile decl = preprocess_source(
      "#pragma once\nint f();\n", "src/la/f.hpp");
  EXPECT_TRUE(decl.has_non_preprocessor_code());
}

// ---------------------------------------------------------------------------
// Every check fires on its seeded fixture violation, with exact file:line.
// ---------------------------------------------------------------------------

class LintViolations : public ::testing::Test {
 protected:
  static const LintReport& report() {
    static const LintReport r = run_lint(fixture("violations"));
    return r;
  }
};

TEST_F(LintViolations, LayeringEdgeIsNamed) {
  EXPECT_TRUE(has_diag(report(), "src/la/bad_include.hpp", 3, "layering"));
  // The diagnostic names the offending edge.
  const auto it = std::find_if(
      report().diagnostics.begin(), report().diagnostics.end(),
      [](const Diagnostic& d) { return d.check == "layering"; });
  ASSERT_NE(it, report().diagnostics.end());
  EXPECT_NE(it->message.find("la -> core"), std::string::npos);
}

TEST_F(LintViolations, RawAccumulateFiresOnBothFoldShapes) {
  EXPECT_TRUE(
      has_diag(report(), "src/core/bad_fold.cpp", 6, "raw-accumulate"));
  EXPECT_TRUE(
      has_diag(report(), "src/core/bad_fold.cpp", 11, "raw-accumulate"));
}

TEST_F(LintViolations, UnorderedContainerInIo) {
  EXPECT_TRUE(
      has_diag(report(), "src/io/bad_container.cpp", 5, "unordered-io"));
}

TEST_F(LintViolations, RawRngEngine) {
  EXPECT_TRUE(has_diag(report(), "src/device/bad_rng.cpp", 5, "rng"));
}

TEST_F(LintViolations, RawClockOutsideSanctionedHomes) {
  EXPECT_TRUE(
      has_diag(report(), "src/core/bad_clock.cpp", 6, "raw-clock"));
}

TEST_F(LintViolations, MissingPragmaOnce) {
  EXPECT_TRUE(has_diag(report(), "src/fft/no_pragma.hpp", 1, "pragma-once"));
}

TEST_F(LintViolations, MissingNamespace) {
  EXPECT_TRUE(
      has_diag(report(), "src/rgf/no_namespace.hpp", 1, "namespace-qtx"));
}

TEST_F(LintViolations, ConsoleWriteInLibraryCode) {
  EXPECT_TRUE(has_diag(report(), "src/par/bad_console.cpp", 4, "iostream"));
}

TEST_F(LintViolations, DetachedThread) {
  EXPECT_TRUE(
      has_diag(report(), "src/par/bad_detach.cpp", 6, "thread-detach"));
}

TEST_F(LintViolations, VolatileAsSynchronization) {
  EXPECT_TRUE(has_diag(report(), "src/obc/bad_volatile.cpp", 2, "volatile"));
}

TEST_F(LintViolations, ExactlyTheSeededViolationsAndNothingElse) {
  EXPECT_EQ(report().diagnostics.size(), 11u);
  // Deterministic ordering: sorted by path, then line, then check.
  for (std::size_t i = 1; i < report().diagnostics.size(); ++i) {
    const Diagnostic& a = report().diagnostics[i - 1];
    const Diagnostic& b = report().diagnostics[i];
    EXPECT_LE(std::tie(a.file, a.line, a.check),
              std::tie(b.file, b.line, b.check));
  }
}

TEST_F(LintViolations, EveryRegisteredCheckFiredOnTheFixtureTree) {
  // The fixture tree stays in lockstep with the registry: a new check
  // needs a seeded violation (this fails until one is added).
  std::vector<std::string> fired;
  for (const Diagnostic& d : report().diagnostics) fired.push_back(d.check);
  for (const auto& c : qtx::analysis::lint_checks())
    EXPECT_NE(std::find(fired.begin(), fired.end(), c.name), fired.end())
        << "check '" << c.name
        << "' has no seeded violation under tests/lint_fixtures/violations";
}

// ---------------------------------------------------------------------------
// Clean + suppressed trees, check subsets, usage errors
// ---------------------------------------------------------------------------

TEST(LintRun, CleanTreeIsClean) {
  const LintReport r = run_lint(fixture("clean"));
  EXPECT_TRUE(r.clean()) << qtx::analysis::format_report(r);
  EXPECT_EQ(r.files_scanned, 3);
  EXPECT_EQ(r.checks_run.size(), qtx::analysis::lint_checks().size());
}

TEST(LintRun, SuppressedTreeIsClean) {
  const LintReport r = run_lint(fixture("suppressed"));
  EXPECT_TRUE(r.clean()) << qtx::analysis::format_report(r);
}

TEST(LintRun, CheckSubsetRunsOnlyThatCheck) {
  LintOptions opts;
  opts.checks = {"volatile"};
  const LintReport r = run_lint(fixture("violations"), opts);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].check, "volatile");
  EXPECT_EQ(r.checks_run, std::vector<std::string>{"volatile"});
}

TEST(LintRun, UnknownCheckNameThrowsUsageError) {
  LintOptions opts;
  opts.checks = {"no-such-check"};
  EXPECT_THROW(run_lint(fixture("clean"), opts), LintUsageError);
}

TEST(LintRun, MissingSrcDirectoryThrowsUsageError) {
  EXPECT_THROW(run_lint(fixture("does-not-exist")), LintUsageError);
}

TEST(LintRun, RegistryHasAtLeastEightChecks) {
  EXPECT_GE(qtx::analysis::lint_checks().size(), 8u);
}

TEST(LintRun, FormatDiagnosticMatchesIoConvention) {
  const Diagnostic d{"src/la/x.cpp", 12, "volatile", "message text"};
  EXPECT_EQ(qtx::analysis::format_diagnostic(d),
            "src/la/x.cpp:12: [volatile] message text");
}

// ---------------------------------------------------------------------------
// The binary's exit-code contract: 0 clean / 1 violations / 2 usage.
// ---------------------------------------------------------------------------

TEST(LintBinary, CleanTreeExitsZero) {
  EXPECT_EQ(run_lint_binary("--root " + fixture("clean"), "lint_clean.log"),
            0);
}

TEST(LintBinary, ViolationsExitOne) {
  EXPECT_EQ(run_lint_binary("--root " + fixture("violations"),
                            "lint_violations.log"),
            1);
}

TEST(LintBinary, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint_binary("--frobnicate", "lint_usage1.log"), 2);
  EXPECT_EQ(run_lint_binary("--root " + fixture("clean") +
                                " --check no-such-check",
                            "lint_usage2.log"),
            2);
  EXPECT_EQ(run_lint_binary("--root " + fixture("does-not-exist"),
                            "lint_usage3.log"),
            2);
}

TEST(LintBinary, ListChecksExitsZero) {
  ASSERT_EQ(run_lint_binary("--list-checks", "lint_list.log"), 0);
  std::ifstream in("lint_list.log");
  std::ostringstream buf;
  buf << in.rdbuf();
  for (const auto& c : qtx::analysis::lint_checks())
    EXPECT_NE(buf.str().find(c.name), std::string::npos);
}

TEST(LintBinary, ReportFileMatchesStdout) {
  ASSERT_EQ(run_lint_binary("--root " + fixture("violations") +
                                " --report lint_report_out.txt",
                            "lint_report.log"),
            1);
  std::ifstream report("lint_report_out.txt");
  ASSERT_TRUE(report.good());
  std::ostringstream buf;
  buf << report.rdbuf();
  EXPECT_NE(buf.str().find("src/obc/bad_volatile.cpp:2: [volatile]"),
            std::string::npos);
  EXPECT_NE(buf.str().find("11 violations"), std::string::npos);
}

}  // namespace
