// Transport contract suite for the pluggable comm backends (src/par +
// the StageRegistry "comm" kind), plus the multi-process launcher:
//
//  - every registered comm backend ("device-direct", "host-staged",
//    "socket") must satisfy the same collective contract — barrier,
//    broadcast, allgather, all-to-all, reductions, empty payloads,
//    1-rank worlds, and byte-counter accounting — because the
//    collectives are non-virtual Comm base methods and the bit-identity
//    guarantee rides on every transport moving the same bytes;
//  - par::launch_ranks must supervise real forked worker processes:
//    propagate exit codes, name every failed rank in one diagnostic,
//    kill and reap on timeout, and never leave orphans;
//  - `qtx run --ranks N` must reproduce the checked-in sequential golden
//    transmission bit-identically for N in {1, 2, 4} (the RankedGolden
//    cases, also wired into the `golden` ctest label), and fail fast
//    (non-zero, no hang) when a worker dies mid-iteration.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stage_registry.hpp"
#include "io/result_writer.hpp"
#include "par/comm.hpp"
#include "par/launcher.hpp"

#ifndef QTX_QTX_BIN
#error "QTX_QTX_BIN must point at the qtx binary (set by CMakeLists.txt)"
#endif
#ifndef QTX_SCENARIO_DIR
#error "QTX_SCENARIO_DIR must point at scenarios/ (set by CMakeLists.txt)"
#endif
#ifndef QTX_GOLDEN_DIR
#error "QTX_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace qtx {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// Collective contract, run against EVERY registered comm backend
// ---------------------------------------------------------------------------

/// (registry key, world size) — the suite instantiates the cross product
/// of all registered transports with the interesting world sizes.
class TransportContract
    : public ::testing::TestWithParam<std::pair<std::string, int>> {
 protected:
  std::unique_ptr<par::CommGroup> make_world() const {
    const auto [key, size] = GetParam();
    return core::StageRegistry::global().make_comm(key, size,
                                                   core::SimulationOptions{});
  }
};

TEST_P(TransportContract, RegistryBuildsTheRequestedWorldSize) {
  const auto world = make_world();
  EXPECT_EQ(world->size(), GetParam().second);
}

TEST_P(TransportContract, BarrierSynchronizesAllRanks) {
  const auto world = make_world();
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  world->run([&](par::Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != c.size()) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(TransportContract, BroadcastDistributesRootData) {
  const auto world = make_world();
  world->run([&](par::Comm& c) {
    std::vector<cplx> data;
    if (c.rank() == 0) data = {cplx(1.0, 2.0), cplx(3.0, -4.0)};
    c.broadcast(data, 0);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_EQ(data[0], cplx(1.0, 2.0));
    EXPECT_EQ(data[1], cplx(3.0, -4.0));
  });
}

TEST_P(TransportContract, AllgatherConcatenatesInRankOrder) {
  const auto world = make_world();
  world->run([&](par::Comm& c) {
    const std::vector<cplx> mine(3, cplx(static_cast<double>(c.rank()), 0.5));
    const std::vector<cplx> all = c.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(3 * c.size()));
    for (int r = 0; r < c.size(); ++r)
      for (int i = 0; i < 3; ++i)
        EXPECT_EQ(all[static_cast<std::size_t>(r) * 3 + i],
                  cplx(static_cast<double>(r), 0.5));
  });
}

TEST_P(TransportContract, AlltoallRoutesPairwisePayloads) {
  const auto world = make_world();
  world->run([&](par::Comm& c) {
    // Rank r sends {r + p*i} to peer p; peer p must receive the block
    // addressed to it from every rank, in rank order.
    std::vector<std::vector<cplx>> outgoing(c.size());
    for (int p = 0; p < c.size(); ++p)
      outgoing[p] = {cplx(static_cast<double>(c.rank()),
                          static_cast<double>(p))};
    const std::vector<std::vector<cplx>> incoming = c.alltoall(outgoing);
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(c.size()));
    for (int r = 0; r < c.size(); ++r) {
      ASSERT_EQ(incoming[r].size(), 1u);
      EXPECT_EQ(incoming[r][0], cplx(static_cast<double>(r),
                                     static_cast<double>(c.rank())));
    }
  });
}

TEST_P(TransportContract, ReductionsFoldAcrossRanks) {
  const auto world = make_world();
  const int size = world->size();
  world->run([&](par::Comm& c) {
    const double sum = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_EQ(sum, static_cast<double>(size * (size + 1) / 2));
    const double mx = c.allreduce_max(static_cast<double>(c.rank()));
    EXPECT_EQ(mx, static_cast<double>(size - 1));
  });
}

TEST_P(TransportContract, EmptyPayloadsRoundTrip) {
  const auto world = make_world();
  world->run([&](par::Comm& c) {
    // Zero-length frames must flow like any other message (the solver
    // sends empty slices when a rank owns no points of a stage).
    const std::vector<cplx> all = c.allgather({});
    EXPECT_TRUE(all.empty());
    if (c.size() > 1) {
      if (c.rank() == 0) {
        c.send(1, {});
      } else if (c.rank() == 1) {
        EXPECT_TRUE(c.recv(0).empty());
      }
    }
    c.barrier();
  });
}

TEST_P(TransportContract, ByteCounterCountsPayloadBytesOnly) {
  const auto world = make_world();
  if (world->size() < 2) GTEST_SKIP() << "needs a peer to send to";
  world->reset_byte_counter();
  world->run([&](par::Comm& c) {
    if (c.rank() == 0) {
      c.send(1, std::vector<cplx>(64));
    } else if (c.rank() == 1) {
      (void)c.recv(0);
    }
  });
  // Framing/headers must NOT be charged: every transport reports the same
  // payload-byte total, which is what keeps the Fig. 6 bytes-sent curves
  // comparable across backends.
  EXPECT_EQ(world->total_bytes_sent(),
            static_cast<std::int64_t>(64 * sizeof(cplx)));
  world->reset_byte_counter();
  EXPECT_EQ(world->total_bytes_sent(), 0);
}

std::vector<std::pair<std::string, int>> transport_contract_cases() {
  std::vector<std::pair<std::string, int>> cases;
  for (const std::string& key :
       core::StageRegistry::global().comm_keys())
    for (const int size : {1, 2, 4, 7}) cases.emplace_back(key, size);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TransportContract,
    ::testing::ValuesIn(transport_contract_cases()),
    [](const ::testing::TestParamInfo<std::pair<std::string, int>>& info) {
      std::string name = info.param.first;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name + "_x" + std::to_string(info.param.second);
    });

TEST(TransportRegistry, AllThreeBuiltinsAreRegistered) {
  const std::vector<std::string> keys =
      core::StageRegistry::global().comm_keys();
  for (const char* want : {"device-direct", "host-staged", "socket"})
    EXPECT_NE(std::find(keys.begin(), keys.end(), want), keys.end())
        << "builtin comm backend \"" << want << "\" missing";
  EXPECT_THROW(core::StageRegistry::global().make_comm(
                   "no-such-transport", 2, core::SimulationOptions{}),
               std::exception);
}

// ---------------------------------------------------------------------------
// launch_ranks: real forked processes over the socket transport
// ---------------------------------------------------------------------------

TEST(LaunchRanks, HealthyWorldRunsCollectivesAndReportsOk) {
  const par::LaunchReport report =
      par::launch_ranks(4, 60.0, [](par::Comm& c) {
        const double sum =
            c.allreduce_sum(static_cast<double>(c.rank() + 1));
        if (sum != 10.0) throw std::runtime_error("bad reduction");
        c.barrier();
      });
  EXPECT_TRUE(report.ok()) << report.diagnostic;
  EXPECT_EQ(report.exit_code, 0);
  EXPECT_TRUE(report.failed_ranks.empty());
  EXPECT_FALSE(report.timed_out);
  // Everything must be reaped: no zombie children may remain.
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD) << "launch_ranks left an unreaped child";
}

TEST(LaunchRanks, WorkerExceptionNamesTheRankInTheDiagnostic) {
  const par::LaunchReport report =
      par::launch_ranks(3, 60.0, [](par::Comm& c) {
        if (c.rank() == 1)
          throw std::runtime_error("injected worker failure");
        c.barrier();  // the healthy ranks block on the dead peer
      });
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.exit_code, 0);
  // The healthy ranks may fail too (they lose their peer mid-barrier), so
  // the contract is that the injected rank is *among* the failures and its
  // message survives into the aggregated diagnostic.
  EXPECT_NE(std::find(report.failed_ranks.begin(), report.failed_ranks.end(),
                      1),
            report.failed_ranks.end())
      << report.diagnostic;
  EXPECT_NE(report.diagnostic.find("[rank 1]"), std::string::npos)
      << report.diagnostic;
  EXPECT_NE(report.diagnostic.find("injected worker failure"),
            std::string::npos)
      << report.diagnostic;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(LaunchRanks, KilledWorkerIsReportedBySignal) {
  const par::LaunchReport report =
      par::launch_ranks(2, 60.0, [](par::Comm& c) {
        if (c.rank() == 1) ::raise(SIGKILL);
        c.barrier();
      });
  EXPECT_FALSE(report.ok());
  EXPECT_NE(std::find(report.failed_ranks.begin(), report.failed_ranks.end(),
                      1),
            report.failed_ranks.end())
      << report.diagnostic;
  EXPECT_NE(report.diagnostic.find("signal"), std::string::npos)
      << report.diagnostic;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(LaunchRanks, HangingWorldTimesOutAndKillsEveryWorker) {
  const par::LaunchReport report =
      par::launch_ranks(2, 2.0, [](par::Comm& c) {
        if (c.rank() == 1) {
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
        }
        c.barrier();  // rank 0 waits forever on the hung peer
      });
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.timed_out);
  EXPECT_NE(report.exit_code, 0);
  EXPECT_NE(report.diagnostic.find("timed out"), std::string::npos)
      << report.diagnostic;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD) << "timeout teardown left an unreaped child";
}

// ---------------------------------------------------------------------------
// qtx run --ranks: cross-process determinism golden + fault injection
// ---------------------------------------------------------------------------

int run_cli(const std::string& args, const std::string& log) {
  const std::string cmd =
      std::string("\"") + QTX_QTX_BIN + "\" " + args + " > " + log + " 2>&1";
  return std::system(cmd.c_str());
}

std::string quickstart_deck() {
  return std::string("\"") + QTX_SCENARIO_DIR + "/quickstart.ini\"";
}

/// Golden .txt reader (same format as test_golden: '#' comments, one
/// double per line at %.17g).
std::vector<double> read_golden_values(const std::string& name) {
  std::ifstream in(std::string(QTX_GOLDEN_DIR) + "/" + name + ".txt");
  EXPECT_TRUE(in.good()) << "missing golden " << name;
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    values.push_back(std::strtod(line.c_str(), nullptr));
  }
  return values;
}

class RankedGolden : public ::testing::TestWithParam<int> {};

TEST_P(RankedGolden, ReproducesSequentialTransmissionBitIdentically) {
  const int ranks = GetParam();
  const std::string out_dir = "ranked_golden_" + std::to_string(ranks);
  fs::remove_all(out_dir);
  ASSERT_EQ(run_cli("run " + quickstart_deck() + " --out " + out_dir +
                        " --ranks " + std::to_string(ranks) + " --quiet",
                    out_dir + ".log"),
            0)
      << read_file(out_dir + ".log");

  std::ifstream csv(out_dir + "/transmission.csv");
  ASSERT_TRUE(csv.good()) << "rank 0 must write transmission.csv";
  const std::vector<double> got = io::read_csv_column(csv, 1);
  const std::vector<double> want =
      read_golden_values("quickstart_transmission");
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(got[i], want[i])
        << ranks << "-rank transmission drifted from the sequential "
        << "golden at entry " << i << " — the bit-identity contract of "
        << "the ordered reductions / bitwise shard exchange is broken";

  // Provenance: results.json must record the multi-process run.
  const std::string json = read_file(out_dir + "/results.json");
  EXPECT_NE(json.find("\"comm\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ranks\": " + std::to_string(ranks)),
            std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"socket\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Worlds, RankedGolden, ::testing::Values(1, 2, 4));

TEST(RankedCli, WorkerDeathMidIterationFailsFastWithoutOrphans) {
  // Kill rank 1 after its first iteration: the run must exit non-zero
  // within the timeout (no hang), name the failing rank, and leave no
  // worker behind.
  const std::string log = "ranked_fault.log";
  const int status = std::system(
      (std::string("QTX_RANKED_FAIL_RANK=1 QTX_RANKED_FAIL_MODE=kill \"") +
       QTX_QTX_BIN + "\" run " + quickstart_deck() +
       " --ranks 2 --rank-timeout 120 --quiet > " + log + " 2>&1")
          .c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0) << read_file(log);
  const std::string text = read_file(log);
  EXPECT_NE(text.find("rank 1"), std::string::npos) << text;
}

TEST(RankedCli, ExitingWorkerPropagatesItsExitCode) {
  const std::string log = "ranked_exit.log";
  const int status = std::system(
      (std::string("QTX_RANKED_FAIL_RANK=0 QTX_RANKED_FAIL_MODE=exit \"") +
       QTX_QTX_BIN + "\" run " + quickstart_deck() +
       " --ranks 2 --rank-timeout 120 --quiet > " + log + " 2>&1")
          .c_str());
  ASSERT_TRUE(WIFEXITED(status));
  // The injected fault dies with _exit(7); the supervisor propagates it.
  EXPECT_EQ(WEXITSTATUS(status), 7) << read_file(log);
  EXPECT_NE(read_file(log).find("[rank 0]"), std::string::npos)
      << read_file(log);
}

TEST(RankedCli, InProcessBackendsAreRejectedWithAnActionableError) {
  const std::string log = "ranked_reject.log";
  const int status =
      run_cli("run " + quickstart_deck() +
                  " --ranks 2 --set comm_backend=device-direct --quiet",
              log);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);
  const std::string text = read_file(log);
  EXPECT_NE(text.find("in-process transport"), std::string::npos) << text;
  EXPECT_NE(text.find("socket"), std::string::npos)
      << "the error must tell the user which backend to use: " << text;
}

}  // namespace
}  // namespace qtx
