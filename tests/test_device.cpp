// Tests for the device substrate (src/device): Table 3 bookkeeping against
// the paper's published values, and structural invariants of the synthetic
// MLWF-like Hamiltonian/Coulomb generator.

#include <gtest/gtest.h>

#include <cmath>

#include "device/config.hpp"
#include "device/structure.hpp"

namespace qtx::device {
namespace {

// ---------------------------------------------------------------------------
// Table 3 bookkeeping.
// ---------------------------------------------------------------------------

class Table3Sweep : public ::testing::TestWithParam<DeviceConfig> {};

TEST_P(Table3Sweep, AtomAndOrbitalCountsMatchPaper) {
  const DeviceConfig& c = GetParam();
  if (c.paper_num_atoms > 0) {
    EXPECT_EQ(c.num_atoms(), c.paper_num_atoms);
  }
  if (c.paper_num_orbitals > 0) {
    EXPECT_EQ(c.num_orbitals(), c.paper_num_orbitals);
  }
}

TEST_P(Table3Sweep, NnzCountsMatchPaperWithin10Percent) {
  const DeviceConfig& c = GetParam();
  if (c.paper_h_nnz > 0) {
    const double rel = std::abs(static_cast<double>(c.h_nnz()) -
                                static_cast<double>(c.paper_h_nnz)) /
                       static_cast<double>(c.paper_h_nnz);
    EXPECT_LT(rel, 0.10) << c.name << " H_NNZ " << c.h_nnz() << " vs paper "
                         << c.paper_h_nnz;
  }
  if (c.paper_g_nnz > 0) {
    const double rel = std::abs(static_cast<double>(c.g_nnz()) -
                                static_cast<double>(c.paper_g_nnz)) /
                       static_cast<double>(c.paper_g_nnz);
    EXPECT_LT(rel, 0.10) << c.name << " G_NNZ " << c.g_nnz() << " vs paper "
                         << c.paper_g_nnz;
  }
}

TEST_P(Table3Sweep, BlockingConsistency) {
  const DeviceConfig& c = GetParam();
  EXPECT_EQ(c.block_size(), c.orbitals_per_puc() * c.nu);
  EXPECT_EQ(static_cast<std::int64_t>(c.block_size()) * c.num_cells,
            c.num_orbitals());
  EXPECT_EQ(c.num_pucs() % c.nu_w, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Devices, Table3Sweep, ::testing::ValuesIn(table3_devices()),
    [](const ::testing::TestParamInfo<DeviceConfig>& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

TEST(Table3, SpecificPaperValues) {
  // Spot checks straight from the table.
  EXPECT_EQ(nw1().orbitals_per_puc(), 104);
  EXPECT_EQ(nw2().orbitals_per_puc(), 504);
  EXPECT_EQ(nr(16).orbitals_per_puc(), 852);
  EXPECT_EQ(nr(16).block_size(), 3408);
  EXPECT_EQ(nw1().block_size(), 416);
  EXPECT_EQ(nw1().block_size_w(), 832);
  EXPECT_EQ(nw2().block_size(), 2016);
  EXPECT_EQ(nr(40).num_atoms(), 42240);
  EXPECT_EQ(nr(80).num_atoms(), 84480);
  EXPECT_NEAR(nr(40).total_length_nm, 86.9, 0.05);
  EXPECT_NEAR(nr(16).total_length_nm, 34.75, 0.06);
}

TEST(Table3, NrScalesLinearlyInCellCount) {
  // The table's formula column: N_A = 1056 N_B, N_AO = 3408 N_B.
  for (const int nb : {5, 10, 33}) {
    const DeviceConfig c = nr(nb);
    EXPECT_EQ(c.num_atoms(), 1056LL * nb);
    EXPECT_EQ(c.num_orbitals(), 3408LL * nb);
  }
}

// ---------------------------------------------------------------------------
// Synthetic structure generator.
// ---------------------------------------------------------------------------

TEST(Structure, HamiltonianIsHermitian) {
  const Structure s = make_test_structure();
  EXPECT_TRUE(s.hamiltonian_bt().is_hermitian(1e-13));
}

TEST(Structure, CoulombIsHermitianAndNonNegative) {
  const Structure s = make_test_structure();
  const auto v = s.coulomb_bt();
  EXPECT_TRUE(v.is_hermitian(1e-13));
  for (int i = 0; i < v.num_blocks(); ++i)
    for (int a = 0; a < v.block_size(); ++a)
      EXPECT_GE(v.diag(i)(a, a).real(), 0.0);
}

TEST(Structure, PeriodicityAcrossCells) {
  const Structure s = make_test_structure(5);
  const auto h = s.hamiltonian_bt();
  // All interior diagonal blocks identical; all couplings identical.
  for (int i = 1; i < h.num_blocks(); ++i)
    EXPECT_LT(la::max_abs_diff(h.diag(i), h.diag(0)), 1e-15);
  for (int i = 1; i + 1 < h.num_blocks(); ++i) {
    EXPECT_LT(la::max_abs_diff(h.upper(i), h.upper(0)), 1e-15);
    EXPECT_LT(la::max_abs_diff(h.lower(i), h.lower(0)), 1e-15);
  }
}

TEST(Structure, CouplingIsDaggerConsistent) {
  const Structure s = make_test_structure();
  const auto h = s.hamiltonian_bt();
  EXPECT_LT(la::max_abs_diff(h.lower(0), h.upper(0).dagger()), 1e-15);
}

TEST(Structure, BandGapOpensWithDimerization) {
  StructureParams p;
  p.orbitals_per_puc = 8;
  p.nu = 2;
  p.nu_h = 2;
  p.num_cells = 4;
  p.dimerization = 0.2;
  const Structure gapped(p);
  const auto g = gapped.band_gap();
  EXPECT_GT(g.gap(), 0.1) << "dimerized chain must be insulating";
  // The SSH estimate 2 t delta bounds the gap scale.
  EXPECT_LT(g.gap(), 4.0 * p.hopping_ev * p.dimerization + 0.5);

  p.dimerization = 0.0;
  p.decay_length_nm = 1e-6;  // pure nearest-neighbour chain
  const Structure metallic(p);
  EXPECT_LT(metallic.band_gap().gap(), 0.05)
      << "undimerized chain must be (nearly) gapless";
}

TEST(Structure, GapIsCenteredNearZero) {
  const Structure s = make_test_structure();
  const auto g = s.band_gap();
  EXPECT_LT(std::abs(g.midgap()), 1.0);
  EXPECT_GT(g.conduction_min, g.valence_max);
}

TEST(Structure, BlochHamiltonianIsHermitianForAllK) {
  const Structure s = make_test_structure();
  for (const double k : {0.0, 0.3, 1.1, kPi, -2.0})
    EXPECT_TRUE(s.bloch_hamiltonian(k).is_hermitian(1e-12)) << "k=" << k;
}

TEST(Structure, BandStructureMatchesDeviceSpectrumBounds) {
  // The BT device Hamiltonian's spectrum must lie within the Bloch band
  // envelope (finite chain spectra interlace the periodic bands).
  const Structure s = make_test_structure(6);
  const auto bands = s.band_structure(65);
  double bmin = 1e300, bmax = -1e300;
  for (const auto& bk : bands)
    for (const double e : bk) {
      bmin = std::min(bmin, e);
      bmax = std::max(bmax, e);
    }
  const auto evals = la::eig_hermitian(s.hamiltonian_bt().dense()).values;
  // Open boundaries can push edge states slightly outside; allow margin.
  EXPECT_GT(evals.front(), bmin - 0.5);
  EXPECT_LT(evals.back(), bmax + 0.5);
}

TEST(Structure, NnzCountsArePositiveAndBanded) {
  const Structure s = make_test_structure(6);
  const std::int64_t nh = s.nnz_hamiltonian();
  const std::int64_t nv = s.nnz_coulomb();
  EXPECT_GT(nh, 0);
  EXPECT_GT(nv, 0);
  const std::int64_t dim = s.dim();
  EXPECT_LE(nh, dim * dim);
  // The Coulomb reach is r_cut-limited: nnz grows linearly, not
  // quadratically, with device length.
  const Structure s2 = make_test_structure(12);
  const double ratio = static_cast<double>(s2.nnz_coulomb()) / nv;
  EXPECT_NEAR(ratio, 12.0 / 6.0, 0.35);
}

TEST(Structure, OrbitalPositionsIncreaseAlongTransport) {
  const Structure s = make_test_structure();
  double prev = -1.0;
  for (int puc = 0; puc < s.num_pucs(); ++puc)
    for (int o = 0; o < s.orbitals_per_puc(); ++o) {
      const double x = s.orbital_position_nm(puc, o);
      EXPECT_GT(x, prev);
      prev = x;
    }
}

TEST(Structure, RejectsReachExceedingTransportCell) {
  StructureParams p;
  p.nu = 1;
  p.nu_h = 2;  // reach larger than the cell
  EXPECT_THROW(Structure s(p), std::runtime_error);
}

}  // namespace
}  // namespace qtx::device
