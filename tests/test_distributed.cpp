// Tests for the distributed SCBA pipeline (src/core/distributed.hpp):
// rank-count and backend invariance of the Fig. 3 pipeline, and
// communication-volume accounting.

#include <gtest/gtest.h>

#include "core/distributed.hpp"

namespace qtx::core {
namespace {

SimulationOptions small_options(const device::Structure& st) {
  SimulationOptions opt;
  opt.grid = EnergyGrid{-6.0, 6.0, 24};
  opt.eta = 0.05;
  const auto gap = st.band_gap();
  opt.contacts.mu_left = gap.conduction_min + 0.3;
  opt.contacts.mu_right = gap.conduction_min + 0.1;
  opt.gw_scale = 0.25;
  return opt;
}

class DistributedSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistributedSweep, RunsAndAccountsTime) {
  const device::Structure st = device::make_test_structure(3);
  const SimulationOptions opt = small_options(st);
  par::CommWorld world(GetParam());
  const DistributedStats stats = distributed_iteration(world, st, opt);
  EXPECT_GT(stats.compute_s, 0.0);
  EXPECT_GE(stats.comm_s, 0.0);
  EXPECT_NEAR(stats.total_s, stats.compute_s + stats.comm_s, 1e-12);
  // The per-rank mix dispatches through the registry-resolved mixer; from
  // this iteration's zero initial Sigma the relative update is exactly 1
  // whenever the computed Sigma is non-zero (cold-start semantics).
  EXPECT_EQ(stats.sigma_update, 1.0);
  if (GetParam() > 1) {
    EXPECT_GT(stats.bytes_sent, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedSweep, ::testing::Values(1, 2, 4));

TEST(Distributed, CommunicationVolumeScalesWithRanksAndBackend) {
  const device::Structure st = device::make_test_structure(3);
  const SimulationOptions opt = small_options(st);
  par::CommWorld w2(2);
  const DistributedStats s2 = distributed_iteration(w2, st, opt);
  par::CommWorld w4(4);
  const DistributedStats s4 = distributed_iteration(w4, st, opt);
  // All-to-all volume grows with (1 - 1/N) of the payload; 4 ranks move
  // more bytes than 2 for the same problem.
  EXPECT_GT(s4.bytes_sent, s2.bytes_sent);
  // Host-staged backend must move the same logical payload.
  par::CommWorld wh(2, par::Backend::kHostStaged);
  const DistributedStats sh = distributed_iteration(wh, st, opt);
  EXPECT_EQ(sh.bytes_sent, s2.bytes_sent);
}

}  // namespace
}  // namespace qtx::core
