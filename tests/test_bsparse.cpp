// Tests for the block-sparse containers (src/bsparse): block-tridiagonal and
// block-banded matrices, banded products with bandwidth growth, regrouping of
// primitive blocks into transport cells (paper §4.3), and the §5.2
// symmetry-exploiting lesser/greater storage.

#include <gtest/gtest.h>

#include "bsparse/bsparse.hpp"

namespace qtx::bt {
namespace {

TEST(BlockTridiag, DenseRoundTripShape) {
  BlockTridiag m(4, 3);
  m.diag(0)(0, 0) = 2.0;
  m.upper(1)(2, 1) = cplx(0.0, 1.0);
  m.lower(2)(1, 0) = -3.0;
  const la::Matrix d = m.dense();
  ASSERT_EQ(d.rows(), 12);
  EXPECT_EQ(d(0, 0), cplx(2.0));
  EXPECT_EQ(d(1 * 3 + 2, 2 * 3 + 1), cplx(0.0, 1.0));
  EXPECT_EQ(d(3 * 3 + 1, 2 * 3 + 0), cplx(-3.0));
  EXPECT_EQ(d(0, 11), cplx(0.0)) << "outside band must be zero";
}

TEST(BlockTridiag, HermitianConstructionIsHermitian) {
  Rng rng(1);
  const BlockTridiag m = BlockTridiag::random_hermitian(5, 4, rng);
  EXPECT_TRUE(m.is_hermitian(1e-12));
  EXPECT_TRUE(m.dense().is_hermitian(1e-12));
}

TEST(BlockTridiag, DaggerMatchesDense) {
  Rng rng(2);
  const BlockTridiag m = BlockTridiag::random_diag_dominant(4, 3, rng);
  EXPECT_LT(la::max_abs_diff(m.dagger().dense(), m.dense().dagger()), 1e-14);
}

TEST(BlockTridiag, AntiHermitizeEnforcesLesserSymmetry) {
  Rng rng(3);
  BlockTridiag m = BlockTridiag::random_diag_dominant(5, 3, rng);
  EXPECT_FALSE(m.is_anti_hermitian(1e-8));
  m.anti_hermitize();
  EXPECT_TRUE(m.is_anti_hermitian(1e-13));
  // Idempotent.
  BlockTridiag m2 = m;
  m2.anti_hermitize();
  EXPECT_LT(max_abs_diff(m, m2), 1e-15);
}

TEST(BlockTridiag, ArithmeticMatchesDense) {
  Rng rng(4);
  const BlockTridiag a = BlockTridiag::random_diag_dominant(4, 2, rng);
  const BlockTridiag b = BlockTridiag::random_diag_dominant(4, 2, rng);
  BlockTridiag c = a;
  c += b;
  la::Matrix want = a.dense() + b.dense();
  EXPECT_LT(la::max_abs_diff(c.dense(), want), 1e-14);
  c -= b;
  EXPECT_LT(la::max_abs_diff(c.dense(), a.dense()), 1e-13);
  c *= cplx(0.0, 2.0);
  EXPECT_LT(la::max_abs_diff(c.dense(), a.dense() * cplx(0.0, 2.0)), 1e-13);
}

TEST(BlockBanded, FromBtAndBack) {
  Rng rng(5);
  const BlockTridiag t = BlockTridiag::random_diag_dominant(5, 3, rng);
  const BlockBanded b(t);
  EXPECT_EQ(b.bandwidth(), 1);
  EXPECT_LT(la::max_abs_diff(b.dense(), t.dense()), 1e-15);
  EXPECT_LT(max_abs_diff(b.truncate_to_bt(), t), 1e-15);
}

class BandedMultiplySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(BandedMultiplySweep, MatchesDenseProduct) {
  const auto [nb, bs, bwa, bwb] = GetParam();
  Rng rng(60 + nb + bs);
  BlockBanded a(nb, bs, bwa), b(nb, bs, bwb);
  for (int i = 0; i < nb; ++i)
    for (int j = std::max(0, i - bwa); j <= std::min(nb - 1, i + bwa); ++j)
      a.block(i, j) = la::Matrix::random(bs, bs, rng);
  for (int i = 0; i < nb; ++i)
    for (int j = std::max(0, i - bwb); j <= std::min(nb - 1, i + bwb); ++j)
      b.block(i, j) = la::Matrix::random(bs, bs, rng);
  const BlockBanded c = bb_multiply(a, b);
  EXPECT_EQ(c.bandwidth(), std::min(nb - 1, bwa + bwb));
  EXPECT_LT(la::max_abs_diff(c.dense(), la::mm(a.dense(), b.dense())),
            1e-11 * nb * bs);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BandedMultiplySweep,
    ::testing::Values(std::tuple{4, 2, 1, 1}, std::tuple{6, 3, 1, 2},
                      std::tuple{5, 2, 2, 2}, std::tuple{3, 4, 1, 1},
                      std::tuple{8, 2, 0, 1}, std::tuple{2, 3, 1, 1}));

TEST(BlockBanded, CongruenceMatchesDense) {
  // B≶_W = V P≶ V† (paper Table 2): bandwidth grows from 1 to 3.
  Rng rng(7);
  const int nb = 6, bs = 3;
  BlockBanded v(nb, bs, 1), p(nb, bs, 1);
  for (int i = 0; i < nb; ++i)
    for (int j = std::max(0, i - 1); j <= std::min(nb - 1, i + 1); ++j) {
      v.block(i, j) = la::Matrix::random(bs, bs, rng);
      p.block(i, j) = la::Matrix::random(bs, bs, rng);
    }
  const BlockBanded c = bb_congruence(v, p);
  EXPECT_EQ(c.bandwidth(), 3);
  const la::Matrix want =
      la::mm(la::mm(v.dense(), p.dense()), v.dense().dagger());
  EXPECT_LT(la::max_abs_diff(c.dense(), want), 1e-10);
}

TEST(BlockBanded, CongruencePreservesAntiHermiticity) {
  // If P≶ is anti-Hermitian then V P≶ V† must be too.
  Rng rng(8);
  const int nb = 5, bs = 2;
  BlockTridiag p = BlockTridiag::random_diag_dominant(nb, bs, rng);
  p.anti_hermitize();
  BlockTridiag v = BlockTridiag::random_hermitian(nb, bs, rng);
  const BlockBanded c = bb_congruence(BlockBanded(v), BlockBanded(p));
  const la::Matrix cd = c.dense();
  EXPECT_TRUE(cd.is_anti_hermitian(1e-10));
}

TEST(Regroup, PrimitiveCellsToTransportCells) {
  // Fine-grained banded matrix (PUC blocks, bandwidth <= N_U) regrouped into
  // transport cells of N_U blocks becomes block-tridiagonal with identical
  // dense representation — the paper's Fig. 2 construction.
  Rng rng(9);
  const int nb = 12, bs = 2, bw = 3, g = 4;
  BlockBanded a(nb, bs, bw);
  for (int i = 0; i < nb; ++i)
    for (int j = std::max(0, i - bw); j <= std::min(nb - 1, i + bw); ++j)
      a.block(i, j) = la::Matrix::random(bs, bs, rng);
  const BlockTridiag t = regroup_to_bt(a, g);
  EXPECT_EQ(t.num_blocks(), nb / g);
  EXPECT_EQ(t.block_size(), bs * g);
  EXPECT_LT(la::max_abs_diff(t.dense(), a.dense()), 1e-15);
}

TEST(Regroup, RejectsEntriesOutsideCoarsePattern) {
  Rng rng(14);
  BlockBanded a(8, 2, 3);
  // Fine block (0, 3) belongs to coarse block (0, 1) for g = 2 — fine. But
  // (0, 3) -> coarse (0, 3) for g = 1 violates BT.
  a.block(0, 3) = la::Matrix::random(2, 2, rng);
  EXPECT_THROW(regroup_to_bt(a, 1), std::runtime_error);
  EXPECT_NO_THROW(regroup_to_bt(a, 2));
}

TEST(Regroup, SplitIsRightInverseOnBandPattern) {
  Rng rng(10);
  const int nb = 4, bs = 6, g = 3;
  const BlockTridiag t = BlockTridiag::random_diag_dominant(nb, bs, rng);
  const BlockBanded fine = split_blocks(t, g);
  EXPECT_LT(la::max_abs_diff(fine.dense(), t.dense()), 1e-15);
  const BlockTridiag back = regroup_to_bt(fine, g);
  EXPECT_LT(max_abs_diff(back, t), 1e-15);
}

TEST(BtSymmetric, RoundTripPreservesSymmetricPart) {
  Rng rng(11);
  BlockTridiag x = BlockTridiag::random_diag_dominant(5, 3, rng);
  x.anti_hermitize();  // make it a valid lesser/greater quantity
  const BtSymmetric s = BtSymmetric::from_full(x);
  EXPECT_LT(max_abs_diff(s.to_full(), x), 1e-14);
}

TEST(BtSymmetric, CompressionProjectsViolations) {
  // Feeding a non-symmetric matrix through the storage applies exactly the
  // (X - X†)/2 projection of paper §5.2.
  Rng rng(12);
  const BlockTridiag x = BlockTridiag::random_diag_dominant(4, 3, rng);
  BlockTridiag projected = x;
  projected.anti_hermitize();
  const BtSymmetric s = BtSymmetric::from_full(x);
  EXPECT_LT(max_abs_diff(s.to_full(), projected), 1e-14);
  EXPECT_TRUE(s.to_full().is_anti_hermitian(1e-13));
}

TEST(BtSymmetric, HalvesOffDiagonalMemory) {
  const int nb = 10, bs = 8;
  const BlockTridiag full(nb, bs);
  const BtSymmetric sym(nb, bs);
  const size_t per_block = sizeof(cplx) * bs * bs;
  EXPECT_EQ(full.memory_bytes(), per_block * (nb + 2 * (nb - 1)));
  EXPECT_EQ(sym.memory_bytes(), per_block * (nb + (nb - 1)));
  // Asymptotically 2/3 -> the paper's "only the upper triangular part"
  // saving on the off-diagonal payload (plus the implicit half saving inside
  // the anti-Hermitian diagonal blocks, which we keep dense for GEMM).
  EXPECT_LT(sym.memory_bytes(), full.memory_bytes());
}

TEST(BtSymmetric, LowerIsMinusUpperDagger) {
  Rng rng(13);
  BtSymmetric s(4, 3);
  s.upper(1) = la::Matrix::random(3, 3, rng);
  const la::Matrix l = s.lower(1);
  EXPECT_LT(la::max_abs_diff(l, s.upper(1).dagger() * cplx(-1.0)), 1e-15);
}

}  // namespace
}  // namespace qtx::bt
