// Observability-layer suite (ctest label "obs"):
//
//  - Span lifecycle: disabled spans are no-ops, enabled spans record
//    parent/depth nesting, kernel-detail spans honor their own gate
//  - collect_trace determinism: the (name, iteration, energy) projection
//    of a traced mini solve is identical at 1, 2, and 8 threads, and the
//    acceptance invariant holds — every SCBA iteration contributes at
//    least one span per stage kind
//  - Chrome trace-event rendering: structural JSON checks (header,
//    metadata events, one event per line) plus the per-rank merge
//  - MetricsRegistry: counter/gauge/histogram semantics, byte-stable
//    snapshots, JSON and Prometheus rendering, and snapshot_process's
//    absorption of TimerRegistry and FlopLedger totals
//  - serve integration: the stats frame round-trips against a live
//    in-process daemon (via the real Client) without disturbing requests
//  - CLI smoke: `qtx run --trace --metrics` writes both artifacts
//
// Tracing/metrics are process-global; every test that enables them
// restores the disabled default on the way out (TraceGuard).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/flops.hpp"
#include "common/timer.hpp"
#include "io/scenario_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

#ifndef QTX_GOLDEN_DIR
#error "QTX_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif
#ifndef QTX_SCENARIO_DIR
#error "QTX_SCENARIO_DIR must point at scenarios/ (set by CMakeLists.txt)"
#endif
#ifndef QTX_QTX_BIN
#error "QTX_QTX_BIN must point at the qtx binary (set by CMakeLists.txt)"
#endif

namespace qtx {
namespace {

namespace fs = std::filesystem;

/// Small-but-real deck (same shape as the serve suite's): 2 quickstart
/// cells, 8 energies, 2 SCBA iterations.
constexpr const char* kMiniDeck =
    "[device]\n"
    "preset = quickstart\n"
    "num_cells = 2\n"
    "\n"
    "[solver]\n"
    "grid = -2.0 2.0 8\n"
    "eta = 0.05\n"
    "max_iterations = 2\n"
    "tolerance = 1e-3\n";

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/qtx_obs_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path = p;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

/// Enables tracing for one test and restores the all-off default (and an
/// empty trace buffer) on scope exit, so tests cannot leak spans into
/// each other.
struct TraceGuard {
  explicit TraceGuard(bool kernels = false) {
    obs::reset_trace();
    obs::set_trace_rank(0);
    obs::set_tracing_enabled(true);
    obs::set_kernel_tracing_enabled(kernels);
  }
  ~TraceGuard() {
    obs::set_tracing_enabled(false);
    obs::set_kernel_tracing_enabled(false);
    obs::set_trace_rank(0);
    obs::reset_trace();
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Solve the mini deck in-process with \p threads workers, tracing
/// enabled, and return the collected events.
std::vector<obs::TraceEvent> traced_mini_run(int threads) {
  io::Scenario s = io::parse_scenario_text(kMiniDeck, "obs_mini.ini");
  s.output = io::OutputSpec{};
  s.output.directory.clear();
  s.solver.num_threads = threads;
  TraceGuard guard(/*kernels=*/true);
  io::run_scenario(s, core::StageRegistry::global(), nullptr);
  return obs::collect_trace();
}

/// The stage-kind projection determinism is asserted on: multiset of
/// (name, iteration, energy) over all kStage spans.
std::multiset<std::tuple<std::string, int, long long>> stage_projection(
    const std::vector<obs::TraceEvent>& events) {
  std::multiset<std::tuple<std::string, int, long long>> out;
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::SpanKind::kStage)
      out.insert({e.name, e.iteration, e.energy});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Span lifecycle
// ---------------------------------------------------------------------------

TEST(ObsSpan, DisabledSpanRecordsNothing) {
  obs::set_tracing_enabled(false);
  obs::reset_trace();
  {
    const obs::Span outer("outer", obs::SpanKind::kRun);
    const obs::Span inner("inner", obs::SpanKind::kStage);
  }
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_TRUE(obs::collect_trace().empty());
}

TEST(ObsSpan, NestedSpansRecordParentIdsAndDepths) {
  TraceGuard guard;
  {
    const obs::Span outer("outer", obs::SpanKind::kRun);
    {
      const obs::Span mid("mid", obs::SpanKind::kIteration,
                          {.iteration = 3});
      const obs::Span leaf("leaf", obs::SpanKind::kStage,
                           {.iteration = 3, .energy = 5, .batch = 1});
    }
  }
  const std::vector<obs::TraceEvent> events = obs::collect_trace();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time on one thread: outer opened first.
  const obs::TraceEvent& outer = events[0];
  const obs::TraceEvent& mid = events[1];
  const obs::TraceEvent& leaf = events[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(mid.parent_id, outer.id);
  EXPECT_EQ(mid.depth, 1);
  EXPECT_EQ(mid.iteration, 3);
  EXPECT_EQ(leaf.parent_id, mid.id);
  EXPECT_EQ(leaf.depth, 2);
  EXPECT_EQ(leaf.energy, 5);
  EXPECT_EQ(leaf.batch, 1);
  // Durations nest: the parent covers the child.
  EXPECT_GE(leaf.start_us, mid.start_us);
  EXPECT_LE(leaf.start_us + leaf.dur_us, mid.start_us + mid.dur_us + 1e-3);
}

TEST(ObsSpan, KernelSpansHaveTheirOwnGate) {
  {
    TraceGuard guard(/*kernels=*/false);
    const obs::Span k("la.gemm", obs::SpanKind::kKernel);
  }
  // Guard reset the buffer; record again with the kernel gate open.
  {
    TraceGuard guard(/*kernels=*/true);
    { const obs::Span k("la.gemm", obs::SpanKind::kKernel); }
    const std::vector<obs::TraceEvent> events = obs::collect_trace();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, obs::SpanKind::kKernel);
  }
}

// ---------------------------------------------------------------------------
// Traced solve: coverage + determinism across thread counts
// ---------------------------------------------------------------------------

TEST(ObsTracedRun, EveryIterationCoversEveryStageKind) {
  const std::vector<obs::TraceEvent> events = traced_mini_run(1);
  int runs = 0;
  std::set<int> iterations;
  std::map<int, std::set<std::string>> stages_by_iteration;
  bool saw_kernel = false, saw_pipeline = false;
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::SpanKind::kRun) ++runs;
    if (e.kind == obs::SpanKind::kIteration) iterations.insert(e.iteration);
    if (e.kind == obs::SpanKind::kStage)
      stages_by_iteration[e.iteration].insert(e.name);
    if (e.kind == obs::SpanKind::kKernel) saw_kernel = true;
    if (e.kind == obs::SpanKind::kPipeline) saw_pipeline = true;
  }
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(iterations, (std::set<int>{1, 2}));
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_pipeline);
  // The acceptance invariant: >= 1 span per SCBA iteration per stage kind.
  const std::vector<std::string> kStageNames = {
      "G: OBC",      "G: RGF",           "W: Assembly: LHS",
      "W: Assembly: RHS", "W: RGF",      "Other: P-FFT",
      "Other: Sigma-FFT", "mix"};
  for (const int it : {1, 2}) {
    for (const std::string& name : kStageNames) {
      EXPECT_TRUE(stages_by_iteration[it].count(name))
          << "iteration " << it << " has no \"" << name << "\" span";
    }
  }
}

TEST(ObsTracedRun, StageProjectionIsIdenticalAt1And2And8Threads) {
  const auto p1 = stage_projection(traced_mini_run(1));
  const auto p2 = stage_projection(traced_mini_run(2));
  const auto p8 = stage_projection(traced_mini_run(8));
  ASSERT_FALSE(p1.empty());
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, p8);
}

TEST(ObsTracedRun, CollectTraceOrderingIsDeterministic) {
  TraceGuard guard;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 8; ++i) {
        const obs::Span span("worker", obs::SpanKind::kStage,
                             {.energy = t * 8 + i});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<obs::TraceEvent> events = obs::collect_trace();
  ASSERT_EQ(events.size(), 32u);
  std::set<std::uint64_t> ids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    ids.insert(events[i].id);
    if (i == 0) continue;
    const obs::TraceEvent& a = events[i - 1];
    const obs::TraceEvent& b = events[i];
    EXPECT_LE(std::tie(a.rank, a.thread_index, a.start_us, a.id),
              std::tie(b.rank, b.thread_index, b.start_us, b.id));
  }
  EXPECT_EQ(ids.size(), 32u);  // span ids are process-unique
  // Two collections of the same buffers are byte-identical projections.
  const std::vector<obs::TraceEvent> again = obs::collect_trace();
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].id, events[i].id);
    EXPECT_EQ(again[i].name, events[i].name);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace rendering + merge
// ---------------------------------------------------------------------------

TEST(ObsChromeTrace, RendersStructurallyValidTraceEventJson) {
  TraceGuard guard;
  {
    const obs::Span outer("run \"x\"", obs::SpanKind::kRun);
    const obs::Span inner("G: RGF", obs::SpanKind::kStage,
                          {.iteration = 1, .energy = 2, .batch = 0});
  }
  const std::string doc = obs::render_chrome_trace(obs::collect_trace());
  EXPECT_EQ(doc.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\": \"stage\""), std::string::npos);
  EXPECT_NE(doc.find("\\\"x\\\""), std::string::npos);  // escaped quotes
  EXPECT_NE(doc.find("\"iteration\": 1"), std::string::npos);
  // One event per line, each line's braces balanced (the merge relies on
  // this rendering contract).
  std::istringstream in(doc);
  std::string line;
  std::getline(in, line);  // header
  int events = 0;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '{') break;
    ++events;
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
      }
    }
    EXPECT_EQ(depth, 0) << "unbalanced braces in: " << line;
  }
  EXPECT_GE(events, 4);  // 2 metadata + 2 spans
}

TEST(ObsChromeTrace, MergeCombinesRankFilesAndSkipsMissingInputs) {
  TempDir dir;
  const std::string rank0 = dir.path + "/trace.json.rank0";
  const std::string rank1 = dir.path + "/trace.json.rank1";
  const std::string merged = dir.path + "/trace.json";
  {
    TraceGuard guard;
    obs::set_trace_rank(0);
    { const obs::Span s("rank0 work", obs::SpanKind::kStage); }
    obs::write_chrome_trace(rank0);
  }
  {
    TraceGuard guard;
    obs::set_trace_rank(1);
    { const obs::Span s("rank1 work", obs::SpanKind::kStage); }
    obs::write_chrome_trace(rank1);
  }
  EXPECT_EQ(obs::merge_chrome_traces(
                {rank0, rank1, dir.path + "/missing.json"}, merged),
            2);
  const std::string doc = read_file(merged);
  EXPECT_EQ(doc.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(doc.find("rank0 work"), std::string::npos);
  EXPECT_NE(doc.find("rank1 work"), std::string::npos);
  EXPECT_NE(doc.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterGaugeHistogramSemantics) {
  obs::MetricsRegistry reg;
  reg.add_counter("qtx.test.count");
  reg.add_counter("qtx.test.count", 4);
  reg.set_gauge("qtx.test.gauge", 1.5);
  reg.set_gauge("qtx.test.gauge", 2.5);  // last set wins
  reg.observe("qtx.test.hist", 2.0);
  reg.observe("qtx.test.hist", -1.0);
  reg.observe("qtx.test.hist", 5.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("qtx.test.count"), 5);
  EXPECT_EQ(snap.gauges.at("qtx.test.gauge"), 2.5);
  const obs::HistogramStats& h = snap.histograms.at("qtx.test.hist");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 6.0);
  EXPECT_EQ(h.min, -1.0);
  EXPECT_EQ(h.max, 5.0);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

TEST(ObsMetrics, SnapshotRenderingIsByteStable) {
  obs::MetricsRegistry reg;
  reg.add_counter("b.count", 2);
  reg.add_counter("a.count", 1);
  reg.set_gauge("z.gauge", 0.125);
  reg.observe("m.hist", 3.0);
  const std::string j1 = obs::to_json(reg.snapshot());
  const std::string j2 = obs::to_json(reg.snapshot());
  EXPECT_EQ(j1, j2);
  // Ordered by name inside each section regardless of insertion order.
  EXPECT_LT(j1.find("\"a.count\""), j1.find("\"b.count\""));
  EXPECT_NE(j1.find("\"z.gauge\": 0.125"), std::string::npos);
  EXPECT_NE(j1.find("\"m.hist\": {\"count\": 1"), std::string::npos);
}

TEST(ObsMetrics, PrometheusRenderingSanitizesNames) {
  obs::MetricsRegistry reg;
  reg.add_counter("qtx.flops.phase.G: RGF", 7);
  reg.set_gauge("qtx.serve.queue_depth", 3.0);
  reg.observe("qtx.serve.solve_seconds", 0.25);
  const std::string prom = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(prom.find("# TYPE qtx_flops_phase_G__RGF counter"),
            std::string::npos);
  EXPECT_NE(prom.find("qtx_flops_phase_G__RGF 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE qtx_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("qtx_serve_solve_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(prom.find("qtx_serve_solve_seconds_sum 0.25"),
            std::string::npos);
}

TEST(ObsMetrics, SnapshotProcessAbsorbsTimersAndFlops) {
  TimerRegistry::reset();
  FlopLedger::reset();
  TimerRegistry::add("Obs: Test", 1.25);
  {
    FlopPhase phase("obs-test-phase");
    FlopLedger::add(321);
  }
  obs::MetricsRegistry reg;
  reg.add_counter("qtx.test.pushed", 9);
  const obs::MetricsSnapshot snap = obs::snapshot_process(reg);
  EXPECT_EQ(snap.counters.at("qtx.test.pushed"), 9);
  EXPECT_EQ(snap.counters.at("qtx.flops.phase.obs-test-phase"), 321);
  EXPECT_GE(snap.counters.at("qtx.flops.total"), 321);
  EXPECT_EQ(snap.gauges.at("qtx.time.Obs: Test.seconds"), 1.25);
  TimerRegistry::reset();
  FlopLedger::reset();
}

// ---------------------------------------------------------------------------
// Serve stats frame round trip
// ---------------------------------------------------------------------------

TEST(ObsServeStats, LiveDaemonAnswersStatsWithoutADeck) {
  TempDir dir;
  serve::ServerOptions opt;
  opt.socket_path = dir.path + "/obs.sock";
  opt.workers = 1;
  serve::Server server(opt);
  server.start();
  serve::Client client(opt.socket_path);

  // Scrape an idle daemon: non-empty snapshot with the serve gauges.
  const serve::Client::Response idle = client.stats();
  ASSERT_TRUE(idle.ok) << idle.error;
  EXPECT_NE(idle.payload.find("\"counters\""), std::string::npos);
  EXPECT_NE(idle.payload.find("\"qtx.serve.workers\": 1"),
            std::string::npos);
  EXPECT_NE(idle.payload.find("\"qtx.serve.requests_ok\": 0"),
            std::string::npos);

  // Solve one deck, then scrape again: the counters moved.
  const serve::Client::Response solved = client.submit(kMiniDeck);
  ASSERT_TRUE(solved.ok) << solved.error;
  const serve::Client::Response after = client.stats();
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_NE(after.payload.find("\"qtx.serve.requests_ok\": 1"),
            std::string::npos);
  EXPECT_NE(after.payload.find("\"qtx.serve.solve_seconds\""),
            std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// CLI smoke: qtx run --trace --metrics
// ---------------------------------------------------------------------------

TEST(ObsCli, RunWritesTraceAndMetricsArtifacts) {
  TempDir dir;
  {
    std::ofstream deck(dir.path + "/mini.ini");
    deck << kMiniDeck;
  }
  const std::string cmd =
      std::string(QTX_QTX_BIN) + " run " + dir.path + "/mini.ini --quiet" +
      " --trace " + dir.path + "/trace.json" + " --metrics " + dir.path +
      "/metrics.json > " + dir.path + "/run.log 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << read_file(dir.path + "/run.log");

  const std::string trace = read_file(dir.path + "/trace.json");
  EXPECT_EQ(trace.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(trace.find("\"simulation.run\""), std::string::npos);
  EXPECT_NE(trace.find("\"scba.iteration\""), std::string::npos);
  EXPECT_NE(trace.find("\"G: RGF\""), std::string::npos);
  EXPECT_NE(trace.find("\"la.gemm\""), std::string::npos);

  const std::string metrics = read_file(dir.path + "/metrics.json");
  EXPECT_EQ(metrics.rfind("{", 0), 0u);
  EXPECT_NE(metrics.find("\"qtx.flops.total\""), std::string::npos);
  EXPECT_NE(metrics.find("\"qtx.run.completed\": 1"), std::string::npos);
  EXPECT_NE(metrics.find("\"qtx.obc.direct_calls\""), std::string::npos);
}

}  // namespace
}  // namespace qtx
