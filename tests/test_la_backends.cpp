// Kernel-equivalence property suite for the pluggable la backends
// (la/backend.hpp). Every backend registered in the global StageRegistry —
// including "blas" when the build found CBLAS/LAPACKE, and any custom
// registration — is checked against the "reference" oracle on:
//
//   - gemm over all four op(A)/op(B) combinations, both the small-matrix
//     fast path and the packed/blocked large path, with general alpha/beta,
//   - LU factor / solve / solve_right round-trips,
//   - singular-input behavior (the singular flag, the skipped elimination
//     step, and the dispatcher's rejection of singular factors).
//
// The suite iterates registry keys at runtime, so registering a new backend
// automatically subjects it to every property here (ctest label:
// la-backend).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/stage_registry.hpp"
#include "la/la.hpp"

namespace qtx::la {
namespace {

constexpr double kTol = 1e-10;

std::vector<std::string> registered_backends() {
  return core::StageRegistry::global().la_keys();
}

/// The oracle result of c = alpha*op(a)*op(b) + beta*c0 on the reference
/// backend.
Matrix reference_gemm(cplx alpha, const Matrix& a, Op opa, const Matrix& b,
                      Op opb, cplx beta, const Matrix& c0) {
  BackendGuard guard("reference");
  Matrix c = c0;
  gemm(alpha, a, opa, b, opb, beta, c);
  return c;
}

TEST(LaBackendRegistry, HasAtLeastTwoBuiltins) {
  const std::vector<std::string> keys = registered_backends();
  EXPECT_GE(keys.size(), 2u);
  EXPECT_NE(std::find(keys.begin(), keys.end(), "reference"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "native"), keys.end());
  // The registry mirrors what the la layer itself reports as builtin.
  for (const std::string& name : builtin_backend_names())
    EXPECT_NE(std::find(keys.begin(), keys.end(), name), keys.end()) << name;
  EXPECT_EQ(std::find(keys.begin(), keys.end(), "blas") != keys.end(),
            blas_backend_available());
}

TEST(LaBackendRegistry, UnknownKeyFailsWithKnownKeys) {
  try {
    core::StageRegistry::global().make_la("no-such-backend", {});
    FAIL() << "unknown la key must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("reference"), std::string::npos)
        << e.what();
  }
}

TEST(LaBackendActive, GuardInstallsAndRestores) {
  const std::string before = active_backend_name();
  {
    BackendGuard guard("native");
    EXPECT_EQ(active_backend_name(), "native");
    EXPECT_EQ(active_backend().name(), "native");
  }
  EXPECT_EQ(active_backend_name(), before);
}

TEST(LaBackendActive, NullInstallRestoresReference) {
  set_active_backend("native");
  set_active_backend(std::shared_ptr<const Backend>{});
  EXPECT_EQ(active_backend_name(), "reference");
}

TEST(LaBackendEquivalence, GemmAllOpCombinationsMatchReference) {
  // n = 5 exercises the small-matrix fast paths, n = 40 the packed/blocked
  // large paths (the native threshold sits at 12^3 multiply-adds).
  for (int n : {5, 40}) {
    Rng rng(100 + n);
    // Rectangular operands so a shape bug cannot hide behind square
    // symmetry: op(a) is (n x n+3), op(b) is (n+3 x n-1).
    const Matrix a = Matrix::random(n, n + 3, rng);
    const Matrix at = Matrix::random(n + 3, n, rng);
    const Matrix b = Matrix::random(n + 3, n - 1, rng);
    const Matrix bt = Matrix::random(n - 1, n + 3, rng);
    const Matrix c0 = Matrix::random(n, n - 1, rng);
    const cplx alpha{0.7, -0.3}, beta{-0.2, 0.5};
    for (const std::string& key : registered_backends()) {
      SCOPED_TRACE(key + " n=" + std::to_string(n));
      BackendGuard guard(key);
      const struct {
        const Matrix *a, *b;
        Op opa, opb;
      } combos[] = {
          {&a, &b, Op::kNone, Op::kNone},
          {&a, &bt, Op::kNone, Op::kConjTrans},
          {&at, &b, Op::kConjTrans, Op::kNone},
          {&at, &bt, Op::kConjTrans, Op::kConjTrans},
      };
      for (const auto& cm : combos) {
        Matrix c = c0;
        gemm(alpha, *cm.a, cm.opa, *cm.b, cm.opb, beta, c);
        const Matrix want = reference_gemm(alpha, *cm.a, cm.opa, *cm.b,
                                           cm.opb, beta, c0);
        EXPECT_LT(max_abs_diff(c, want), kTol);
      }
    }
  }
}

TEST(LaBackendEquivalence, GemmZeroAlphaAndBetaEdgeCases) {
  Rng rng(7);
  const int n = 6;
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  const Matrix c0 = Matrix::random(n, n, rng);
  for (const std::string& key : registered_backends()) {
    SCOPED_TRACE(key);
    BackendGuard guard(key);
    // beta = 0 must overwrite c (not propagate NaNs from stale storage).
    Matrix c = c0;
    gemm(cplx{1.0, 0.0}, a, Op::kNone, b, Op::kNone, cplx{0.0, 0.0}, c);
    EXPECT_LT(max_abs_diff(c, reference_gemm(cplx{1.0, 0.0}, a, Op::kNone, b,
                                             Op::kNone, cplx{0.0, 0.0}, c0)),
              kTol);
    // alpha = 0 reduces to the beta scaling.
    Matrix c2 = c0;
    gemm(cplx{0.0, 0.0}, a, Op::kNone, b, Op::kNone, cplx{2.0, 0.0}, c2);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_LT(std::abs(c2(i, j) - 2.0 * c0(i, j)), kTol);
  }
}

TEST(LaBackendEquivalence, LuFactorSolveRoundTrip) {
  for (int n : {4, 24}) {
    Rng rng(200 + n);
    const Matrix a = Matrix::random_diag_dominant(n, rng);
    const Matrix b = Matrix::random(n, 3, rng);
    for (const std::string& key : registered_backends()) {
      SCOPED_TRACE(key + " n=" + std::to_string(n));
      BackendGuard guard(key);
      const LuFactors f = lu_factor(a);
      ASSERT_FALSE(f.singular);
      const Matrix x = lu_solve(f, b);
      // Residual check: A x = b to algebraic accuracy.
      EXPECT_LT(max_abs_diff(mm(a, x), b), kTol);
    }
  }
}

TEST(LaBackendEquivalence, LuSolveRightRoundTrip) {
  for (int n : {4, 24}) {
    Rng rng(300 + n);
    const Matrix a = Matrix::random_diag_dominant(n, rng);
    const Matrix b = Matrix::random(3, n, rng);
    for (const std::string& key : registered_backends()) {
      SCOPED_TRACE(key + " n=" + std::to_string(n));
      BackendGuard guard(key);
      const Matrix x = lu_solve_right(lu_factor(a), b);
      // X A = B.
      EXPECT_LT(max_abs_diff(mm(x, a), b), kTol);
    }
  }
}

TEST(LaBackendEquivalence, FactorsInteroperateAcrossBackends) {
  // The LuFactors conventions (0-based piv, swap-at-step-k) are part of the
  // Backend contract: factors produced by one backend must solve correctly
  // under another.
  Rng rng(42);
  const int n = 12;
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Matrix b = Matrix::random(n, 2, rng);
  const std::vector<std::string> keys = registered_backends();
  for (const std::string& producer : keys) {
    LuFactors f;
    {
      BackendGuard guard(producer);
      f = lu_factor(a);
    }
    for (const std::string& consumer : keys) {
      SCOPED_TRACE(producer + " -> " + consumer);
      BackendGuard guard(consumer);
      EXPECT_LT(max_abs_diff(mm(a, lu_solve(f, b)), b), kTol);
    }
  }
}

TEST(LaBackendEquivalence, SingularMatrixIsFlaggedByEveryBackend) {
  // Rank-deficient with an exactly representable zero pivot: column 2 is
  // identically zero, so elimination reaches step 2 with a 0 pivot on every
  // backend (a *nearly* dependent column would leave a tiny-but-nonzero
  // pivot, which by contract is not flagged).
  Rng rng(9);
  Matrix a = Matrix::random(5, 5, rng);
  for (int i = 0; i < 5; ++i) a(i, 2) = cplx(0.0, 0.0);
  for (const std::string& key : registered_backends()) {
    SCOPED_TRACE(key);
    BackendGuard guard(key);
    EXPECT_TRUE(lu_factor(a).singular);
    EXPECT_TRUE(lu_factor(Matrix(3, 3)).singular);  // all-zero matrix
    // The dispatcher rejects singular factors before reaching any backend.
    EXPECT_THROW(lu_solve(lu_factor(a), Matrix(5, 1)), std::runtime_error);
    EXPECT_THROW(lu_solve_right(lu_factor(a), Matrix(1, 5)),
                 std::runtime_error);
  }
}

TEST(LaBackendEquivalence, ZeroPivotColumnSkipsEliminationStepIdentically) {
  // A zero pivot in mid-elimination: the contract is "flag singular, skip
  // the step, continue" — every backend must leave the same factors as the
  // reference loops for this early-continue path.
  Matrix a(3, 3);
  a(0, 0) = cplx(1.0, 0.0);
  a(1, 1) = cplx(0.0, 0.0);  // second column eliminates to zero
  a(2, 2) = cplx(2.0, 0.0);
  a(0, 1) = cplx(3.0, 0.0);
  LuFactors want;
  {
    BackendGuard guard("reference");
    want = lu_factor(a);
  }
  ASSERT_TRUE(want.singular);
  for (const std::string& key : registered_backends()) {
    if (key == "blas") continue;  // LAPACK's U differs beyond the flag
    SCOPED_TRACE(key);
    BackendGuard guard(key);
    const LuFactors got = lu_factor(a);
    EXPECT_TRUE(got.singular);
    EXPECT_EQ(got.piv, want.piv);
    EXPECT_LT(max_abs_diff(got.lu, want.lu), kTol);
  }
}

}  // namespace
}  // namespace qtx::la
