// Self-consistency acceleration suite (ctest label "accel"):
//
//  - Mixer registry round-trip: builtin keys, unknown-key diagnostics,
//    custom mixer registration resolved by a Simulation
//  - linear mixer: hand-computed damped update + metric
//  - anderson: first step bit-identical to linear, history window bounded
//    by mixing_history, affine fixed-point solved in fewer iterations than
//    linear damping
//  - adaptive: damping backs off on residual growth and recovers
//  - ConvergenceMonitor: ratio/divergence/stagnation/oscillation queries
//  - Simulation integration: multi-threaded anderson runs bit-identical to
//    sequential ones; an over-driven run stops with StopReason::kDiverged
//    instead of burning the budget
//  - qtx CLI: scenario decks select each builtin mixer through the real
//    binary; a diverging deck records "diverged" in results.json

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/convergence.hpp"
#include "accel/mixer.hpp"
#include "core/observables.hpp"
#include "core/simulation.hpp"
#include "device/presets.hpp"

#ifndef QTX_QTX_BIN
#error "QTX_QTX_BIN must point at the qtx binary (set by CMakeLists.txt)"
#endif

namespace qtx {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Synthetic mixer fixtures
// ---------------------------------------------------------------------------

using Flats = std::vector<std::vector<cplx>>;

/// Sequential energy loop for driving mixers outside a Simulation.
const accel::EnergyLoop kSeqLoop = [](const std::function<void(int)>& fn) {
  for (int e = 0; e < 3; ++e) fn(e);
};

Flats make_flats(double scale, double imag) {
  Flats f(3);
  for (int e = 0; e < 3; ++e) {
    f[e].resize(4);
    for (int k = 0; k < 4; ++k)
      f[e][k] = cplx(scale * (e + 1) + 0.1 * k, imag * (k - e));
  }
  return f;
}

struct MixFixture {
  Flats lt, gt, rr;
  std::vector<cplx> fock;
  Flats p_lt, p_gt, p_rr;
  std::vector<cplx> p_fock;

  MixFixture() {
    lt = make_flats(1.0, 0.5);
    gt = make_flats(-0.5, 0.25);
    rr = make_flats(0.25, -1.0);
    fock = {cplx(1.0, 2.0), cplx(-0.5, 0.125)};
    p_lt = make_flats(2.0, -0.5);
    p_gt = make_flats(0.5, 1.0);
    p_rr = make_flats(-1.0, 0.5);
    p_fock = {cplx(0.5, -1.0), cplx(2.0, 0.25)};
  }

  accel::SigmaState state() {
    accel::SigmaState s;
    s.lesser = &lt;
    s.greater = &gt;
    s.retarded = &rr;
    s.fock = &fock;
    return s;
  }
  accel::SigmaProposal proposal() const {
    accel::SigmaProposal p;
    p.lesser = &p_lt;
    p.greater = &p_gt;
    p.retarded = &p_rr;
    p.fock = &p_fock;
    return p;
  }
};

// ---------------------------------------------------------------------------
// Registry round-trip
// ---------------------------------------------------------------------------

TEST(MixerRegistry, BuiltinKeysAndDescriptions) {
  const core::StageRegistry& reg = core::StageRegistry::global();
  EXPECT_EQ(reg.mixer_keys(),
            (std::vector<std::string>{"adaptive", "anderson", "linear"}));
  bool saw_mixer_kind = false;
  for (const core::BackendDescription& b : reg.describe()) {
    if (b.kind != "mixer") continue;
    saw_mixer_kind = true;
    EXPECT_FALSE(b.description.empty()) << b.key;
  }
  EXPECT_TRUE(saw_mixer_kind) << "describe() must cover the mixer kind";
}

TEST(MixerRegistry, UnknownKeyListsRegisteredKeys) {
  core::SimulationOptions opt;
  try {
    core::StageRegistry::global().make_mixer("pulay", opt);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown self-consistency mixer \"pulay\""),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("anderson"), std::string::npos) << msg;
  }
}

TEST(MixerRegistry, ResolvedMixerDefaultsToLinear) {
  core::SimulationOptions opt;
  EXPECT_EQ(opt.resolved_mixer(), "linear");
  opt.mixer = "anderson";
  EXPECT_EQ(opt.resolved_mixer(), "anderson");
}

/// A do-nothing mixer that counts its calls — proves custom registrations
/// flow from a registry key to the Simulation's mixing stage.
class CountingMixer final : public accel::Mixer {
 public:
  explicit CountingMixer(int* calls) : calls_(calls) {}
  std::string_view name() const override { return "counting"; }
  void reset() override {}
  accel::MixOutcome mix(const accel::SigmaState&, const accel::SigmaProposal&,
                        const accel::EnergyLoop&) override {
    ++*calls_;
    accel::MixOutcome out;
    out.update = 1.0 / *calls_;
    out.damping = 0.125;
    return out;
  }

 private:
  int* calls_;
};

TEST(MixerRegistry, CustomMixerResolvesThroughSimulation) {
  core::StageRegistry reg = core::StageRegistry::with_builtins();
  int calls = 0;
  reg.register_mixer(
      "counting",
      [&calls](const core::SimulationOptions&) {
        return std::make_unique<CountingMixer>(&calls);
      },
      "test-only call counter");
  const device::Structure st = device::make_test_structure(3);
  core::Simulation sim = core::SimulationBuilder(st)
                             .grid(-2.0, 2.0, 6)
                             .gw(0.2)
                             .mixer("counting")
                             .max_iterations(3)
                             .tolerance(1e-30)
                             .registry(reg)
                             .build();
  const core::TransportResult res = sim.run();
  EXPECT_EQ(calls, 3) << "every iteration must dispatch through the mixer";
  EXPECT_EQ(res.history.back().damping, 0.125);
  EXPECT_EQ(sim.mixer().name(), "counting");
}

// ---------------------------------------------------------------------------
// Linear mixer
// ---------------------------------------------------------------------------

TEST(LinearMixer, MatchesHandComputedDampedUpdate) {
  MixFixture f;
  const MixFixture ref;  // pristine copy for the hand computation
  accel::MixerOptions mopt;
  mopt.damping = 0.25;
  auto mixer = accel::make_linear_mixer(mopt);
  EXPECT_EQ(mixer->name(), "linear");
  const accel::MixOutcome out = mixer->mix(f.state(), f.proposal(), kSeqLoop);

  double d2 = 0.0, n2 = 0.0;
  for (int e = 0; e < 3; ++e) {
    for (int k = 0; k < 4; ++k) {
      const cplx delta = ref.p_lt[e][k] - ref.lt[e][k];
      d2 += std::norm(delta);
      n2 += std::norm(ref.p_lt[e][k]);
      EXPECT_EQ(f.lt[e][k], ref.lt[e][k] + 0.25 * delta);
      EXPECT_EQ(f.gt[e][k],
                ref.gt[e][k] + 0.25 * (ref.p_gt[e][k] - ref.gt[e][k]));
      EXPECT_EQ(f.rr[e][k],
                ref.rr[e][k] + 0.25 * (ref.p_rr[e][k] - ref.rr[e][k]));
    }
  }
  for (std::size_t k = 0; k < ref.fock.size(); ++k)
    EXPECT_EQ(f.fock[k],
              ref.fock[k] + 0.25 * (ref.p_fock[k] - ref.fock[k]));
  EXPECT_EQ(out.update, std::sqrt(d2 / n2));
  EXPECT_EQ(out.damping, 0.25);
  EXPECT_EQ(mixer->history_size(), 0);
}

TEST(LinearMixer, NullOptionalComponentsAreSkipped) {
  MixFixture f;
  accel::SigmaState s;
  s.lesser = &f.lt;  // greater/retarded/fock absent (distributed driver)
  accel::SigmaProposal p;
  p.lesser = &f.p_lt;
  auto mixer = accel::make_linear_mixer({});
  const accel::MixOutcome out = mixer->mix(s, p, kSeqLoop);
  EXPECT_GT(out.update, 0.0);
  EXPECT_EQ(f.gt, MixFixture().gt) << "absent components must stay untouched";
}

// ---------------------------------------------------------------------------
// Anderson mixer
// ---------------------------------------------------------------------------

TEST(AndersonMixer, FirstStepBitIdenticalToLinear) {
  MixFixture lin, and_;
  accel::MixerOptions mopt;
  mopt.damping = 0.4;
  auto linear = accel::make_linear_mixer(mopt);
  auto anderson = accel::make_anderson_mixer(mopt);
  const accel::MixOutcome ol =
      linear->mix(lin.state(), lin.proposal(), kSeqLoop);
  const accel::MixOutcome oa =
      anderson->mix(and_.state(), and_.proposal(), kSeqLoop);
  EXPECT_EQ(ol.update, oa.update);
  EXPECT_EQ(lin.lt, and_.lt);  // exact double equality, all components
  EXPECT_EQ(lin.gt, and_.gt);
  EXPECT_EQ(lin.rr, and_.rr);
  EXPECT_EQ(lin.fock, and_.fock);
  EXPECT_EQ(anderson->history_size(), 1);
}

TEST(AndersonMixer, HistoryWindowNeverExceedsConfiguredSize) {
  accel::MixerOptions mopt;
  mopt.history = 3;
  auto mixer = accel::make_anderson_mixer(mopt);
  MixFixture f;
  for (int it = 1; it <= 7; ++it) {
    // A mildly contracting proposal keeps the residual shrinking so the
    // restart safeguard never clears the window under test.
    for (int e = 0; e < 3; ++e)
      for (int k = 0; k < 4; ++k)
        f.p_lt[e][k] = 0.5 * f.lt[e][k] + cplx(1.0, -0.5);
    mixer->mix(f.state(), f.proposal(), kSeqLoop);
    EXPECT_EQ(mixer->history_size(), std::min(it, 3)) << "iteration " << it;
  }
  mixer->reset();
  EXPECT_EQ(mixer->history_size(), 0);
}

/// Iterations a mixer needs to drive the affine fixed point x = C x + b
/// below the tolerance (proposal recomputed from the mixed state each
/// step — the same protocol the SCBA driver follows). The contraction
/// factors are real (0.5 + 0.1 k, slowest mode 0.8) so the real-coefficient
/// least squares can span the spectrum.
int iterations_to_converge(accel::Mixer& mixer, double tol, int budget) {
  Flats x(3, std::vector<cplx>(4, cplx(0.0)));
  Flats p = x;
  accel::SigmaState s;
  s.lesser = &x;
  accel::SigmaProposal prop;
  prop.lesser = &p;
  for (int it = 1; it <= budget; ++it) {
    for (int e = 0; e < 3; ++e)
      for (int k = 0; k < 4; ++k)
        p[e][k] = (0.5 + 0.1 * k) * x[e][k] + cplx(1.0 + e, -0.5 * k);
    const accel::MixOutcome out = mixer.mix(s, prop, kSeqLoop);
    if (out.update < tol) return it;
  }
  return budget + 1;
}

TEST(AndersonMixer, SolvesAffineFixedPointInFewerIterationsThanLinear) {
  accel::MixerOptions mopt;
  mopt.damping = 0.5;
  mopt.history = 6;  // spans the four distinct contraction factors
  auto linear = accel::make_linear_mixer(mopt);
  auto anderson = accel::make_anderson_mixer(mopt);
  const int linear_iters = iterations_to_converge(*linear, 1e-10, 300);
  const int anderson_iters = iterations_to_converge(*anderson, 1e-10, 300);
  // At least a 2x iteration cut (the trust-region safeguard deliberately
  // trades DIIS exactness on synthetic affine maps for robustness on the
  // nonlinear SCBA maps the bench gates on).
  EXPECT_LT(2 * anderson_iters, linear_iters);
  EXPECT_LE(anderson_iters, 100);
  EXPECT_GT(linear_iters, 150) << "damped iteration should be much slower";
}

// ---------------------------------------------------------------------------
// Adaptive mixer
// ---------------------------------------------------------------------------

TEST(AdaptiveMixer, BacksOffOnGrowthAndRecoversOnDecay) {
  accel::MixerOptions mopt;
  mopt.damping = 0.5;
  auto mixer = accel::make_adaptive_mixer(mopt);
  MixFixture f;
  const auto propose = [&](double factor) {
    for (int e = 0; e < 3; ++e)
      for (int k = 0; k < 4; ++k) f.p_lt[e][k] = factor * f.lt[e][k];
  };
  // Relative residual 1/3 (p = 1.5 x), then 2 (p = -x): genuine growth —
  // the damping must back off from the base.
  propose(1.5);
  EXPECT_EQ(mixer->mix(f.state(), f.proposal(), kSeqLoop).damping, 0.5);
  propose(-1.0);
  const double backed_off =
      mixer->mix(f.state(), f.proposal(), kSeqLoop).damping;
  EXPECT_LT(backed_off, 0.5);
  // A flat residual (p = 0.5 x gives exactly 1 every step) counts as
  // recovery, not growth: the damping must creep back toward the base and
  // never exceed it.
  double recovered = backed_off;
  for (int it = 0; it < 20; ++it) {
    propose(0.5);
    recovered = mixer->mix(f.state(), f.proposal(), kSeqLoop).damping;
  }
  EXPECT_GT(recovered, backed_off);
  EXPECT_LE(recovered, 0.5) << "recovery is capped at the base damping";
  mixer->reset();
  MixFixture g;
  EXPECT_EQ(mixer->mix(g.state(), g.proposal(), kSeqLoop).damping, 0.5);
}

// ---------------------------------------------------------------------------
// ConvergenceMonitor
// ---------------------------------------------------------------------------

TEST(ConvergenceMonitor, RatioAndBestTrackTheHistory) {
  accel::ConvergenceMonitor m(10.0);
  EXPECT_EQ(m.size(), 0);
  EXPECT_EQ(m.ratio(), 0.0);
  m.push(1.0);
  m.push(0.5);
  m.push(0.25);
  EXPECT_EQ(m.size(), 3);
  EXPECT_EQ(m.last(), 0.25);
  EXPECT_EQ(m.best(), 0.25);
  EXPECT_EQ(m.ratio(), 0.5);
  EXPECT_FALSE(m.diverged());
  m.reset();
  EXPECT_EQ(m.size(), 0);
}

TEST(ConvergenceMonitor, FlagsDivergenceOnlyAfterGrowthPastTheFactor) {
  accel::ConvergenceMonitor m(4.0);
  m.push(1.0);
  m.push(0.5);
  m.push(1.8);  // grew, but only 3.6x the best
  EXPECT_FALSE(m.diverged());
  m.push(2.5);  // grew and 5x the best
  EXPECT_TRUE(m.diverged());
}

TEST(ConvergenceMonitor, FactorZeroDisablesDetection) {
  accel::ConvergenceMonitor m(0.0);
  m.push(1.0);
  m.push(10.0);
  m.push(100.0);
  m.push(1000.0);
  EXPECT_FALSE(m.diverged());
}

TEST(ConvergenceMonitor, StagnationNeedsAFullFlatWindow) {
  accel::ConvergenceMonitor m(10.0, 4, 0.02);
  for (const double r : {1.0, 0.5, 0.25, 0.12})
    m.push(r);  // still converging
  EXPECT_FALSE(m.stagnated());
  accel::ConvergenceMonitor flat(10.0, 4, 0.02);
  for (const double r : {1.0, 0.101, 0.1, 0.1005, 0.1001}) flat.push(r);
  EXPECT_TRUE(flat.stagnated());
}

TEST(ConvergenceMonitor, OscillationMeasuresDirectionFlips) {
  accel::ConvergenceMonitor mono(10.0, 4);
  for (const double r : {1.0, 0.8, 0.6, 0.4, 0.2}) mono.push(r);
  EXPECT_EQ(mono.oscillation(), 0.0);
  accel::ConvergenceMonitor cyc(10.0, 4);
  for (const double r : {1.0, 0.2, 0.9, 0.15, 0.85}) cyc.push(r);
  EXPECT_EQ(cyc.oscillation(), 1.0);
  accel::ConvergenceMonitor empty(10.0, 4);
  empty.push(1.0);
  EXPECT_EQ(empty.oscillation(), 0.0);
}

// ---------------------------------------------------------------------------
// Simulation integration
// ---------------------------------------------------------------------------

TEST(StopReasonNames, DivergedHasAStableName) {
  EXPECT_STREQ(core::to_string(core::StopReason::kDiverged), "diverged");
}

core::SimulationBuilder mini_builder(const device::Structure& st) {
  const auto gap = st.band_gap();
  return core::SimulationBuilder(st)
      .grid(-5.0, 5.0, 12)
      .eta(0.05)
      .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
      .gw(0.2)
      .mixing(0.5)
      .max_iterations(4)
      .tolerance(1e-12);
}

TEST(SimulationMixer, IterationResultsCarryDampingAndRatio) {
  const device::Structure st = device::make_test_structure(4);
  core::Simulation sim = mini_builder(st).build();
  const core::TransportResult res = sim.run();
  ASSERT_GE(res.history.size(), 2u);
  EXPECT_EQ(res.history[0].damping, 0.5);
  EXPECT_EQ(res.history[0].residual_ratio, 0.0);
  EXPECT_GT(res.history[1].residual_ratio, 0.0);
  EXPECT_EQ(res.history[1].residual_ratio,
            res.history[1].sigma_update / res.history[0].sigma_update);
  EXPECT_EQ(sim.monitor().size(), static_cast<int>(res.history.size()));
}

TEST(SimulationMixer, BallisticRunsRecordNoDamping) {
  const device::Structure st = device::make_test_structure(4);
  core::Simulation sim = mini_builder(st).ballistic().build();
  const core::TransportResult res = sim.run();
  EXPECT_EQ(res.history.back().damping, 0.0);
  EXPECT_EQ(res.history.back().residual_ratio, 0.0);
  EXPECT_EQ(res.stop_reason, core::StopReason::kNonInteracting);
}

/// Multi-threaded anderson must be bit-identical to the sequential run —
/// the per-energy-slot contract of the accel layer (acceptance criterion).
TEST(SimulationMixer, AndersonIsBitIdenticalAcrossThreadCounts) {
  const device::Structure st = device::make_test_structure(4);
  std::vector<std::vector<double>> updates;
  std::vector<std::vector<double>> transmissions;
  for (const int threads : {1, 2, 4}) {
    core::Simulation sim = mini_builder(st)
                               .mixer("anderson")
                               .num_threads(threads)
                               .build();
    const core::TransportResult res = sim.run();
    std::vector<double> u;
    for (const core::IterationResult& it : res.history)
      u.push_back(it.sigma_update);
    updates.push_back(u);
    transmissions.push_back(core::transmission(sim));
  }
  for (std::size_t i = 1; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i], updates[0]) << "thread count run " << i;
    EXPECT_EQ(transmissions[i], transmissions[0]) << "run " << i;
  }
}

TEST(SimulationMixer, LinearAndAutoMixerAreIdentical) {
  const device::Structure st = device::make_test_structure(4);
  core::Simulation auto_sim = mini_builder(st).build();
  core::Simulation linear_sim = mini_builder(st).mixer("linear").build();
  const core::TransportResult a = auto_sim.run();
  const core::TransportResult l = linear_sim.run();
  ASSERT_EQ(a.history.size(), l.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i)
    EXPECT_EQ(a.history[i].sigma_update, l.history[i].sigma_update);
}

core::SimulationBuilder overdriven_builder(const device::Structure& st) {
  // Mixing 1 (no damping) + a strong interaction + a hard bias: the SCBA
  // residual grows without bound — the monitor must cut the run short.
  const auto gap = st.band_gap();
  return core::SimulationBuilder(st)
      .grid(-5.0, 5.0, 10)
      .eta(0.05)
      .contacts(gap.conduction_min + 0.4, gap.conduction_min - 0.4)
      .gw(3.0)
      .mixing(1.0)
      .max_iterations(25)
      .tolerance(1e-8);
}

TEST(SimulationMixer, OverdrivenRunStopsWithDivergedDiagnostic) {
  const device::Structure st = device::make_test_structure(4);
  core::Simulation sim = overdriven_builder(st).build();
  const core::TransportResult res = sim.run();
  EXPECT_EQ(res.stop_reason, core::StopReason::kDiverged);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.iterations, 25)
      << "divergence must stop the loop before the budget burns";
  EXPECT_TRUE(sim.monitor().diverged());
  EXPECT_GT(res.final_update, 10.0 * sim.monitor().best());
}

TEST(SimulationMixer, DivergenceFactorZeroBurnsTheBudgetInstead) {
  const device::Structure st = device::make_test_structure(4);
  core::Simulation sim =
      overdriven_builder(st).divergence_factor(0.0).build();
  const core::TransportResult res = sim.run();
  EXPECT_EQ(res.stop_reason, core::StopReason::kBudgetExhausted);
  EXPECT_EQ(res.iterations, 25);
}

// ---------------------------------------------------------------------------
// qtx CLI: scenario decks select mixers through the real binary
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int run_cli(const std::string& args, const std::string& log) {
  const std::string cmd =
      std::string("\"") + QTX_QTX_BIN + "\" " + args + " > " + log + " 2>&1";
  return std::system(cmd.c_str());
}

void write_mixer_deck(const std::string& path, const std::string& mixer) {
  std::ofstream out(path);
  out << "[device]\npreset = quickstart\n\n"
         "[solver]\ngrid = -5 5 8\neta = 0.05\ngw_scale = 0.2\n"
         "mixing = 0.5\nmax_iterations = 3\ntolerance = 1e-12\n"
         "mu_reference = conduction-min\nmu_left = 0.3\nmu_right = 0.1\n"
         "mixer = " << mixer << "\n";
}

TEST(QtxCliMixers, EveryBuiltinMixerRunsFromAScenarioDeck) {
  for (const char* mixer : {"linear", "anderson", "adaptive"}) {
    SCOPED_TRACE(mixer);
    const std::string deck =
        "accel_cli_" + std::string(mixer) + ".ini";
    const std::string out_dir = "accel_cli_out_" + std::string(mixer);
    write_mixer_deck(deck, mixer);
    fs::remove_all(out_dir);
    ASSERT_EQ(run_cli("run " + deck + " --out " + out_dir + " --quiet",
                      "accel_cli_" + std::string(mixer) + ".log"),
              0)
        << read_file("accel_cli_" + std::string(mixer) + ".log");
    const std::string json = read_file(out_dir + "/results.json");
    EXPECT_NE(json.find("\"mixer\": \"" + std::string(mixer) + "\""),
              std::string::npos)
        << "provenance must record the non-default mixer key";
    const std::string trace = read_file(out_dir + "/trace.csv");
    EXPECT_NE(trace.find("damping,residual_ratio"), std::string::npos)
        << "the trace must carry the monitor columns";
  }
}

TEST(QtxCliMixers, DivergingDeckRecordsTheDiagnosis) {
  const std::string deck = "accel_cli_diverge.ini";
  {
    std::ofstream out(deck);
    out << "[device]\npreset = quickstart\n\n"
           "[solver]\ngrid = -5 5 10\neta = 0.05\ngw_scale = 3\n"
           "mixing = 1\nmax_iterations = 25\ntolerance = 1e-8\n"
           "mu_reference = conduction-min\nmu_left = 0.4\nmu_right = -0.4\n";
  }
  const std::string out_dir = "accel_cli_diverge_out";
  fs::remove_all(out_dir);
  ASSERT_EQ(run_cli("run " + deck + " --out " + out_dir + " --quiet",
                    "accel_cli_diverge.log"),
            0)
      << read_file("accel_cli_diverge.log");
  const std::string json = read_file(out_dir + "/results.json");
  EXPECT_NE(json.find("\"stop_reason\": \"diverged\""), std::string::npos)
      << json.substr(0, 2000);
  const std::string log = read_file("accel_cli_diverge.log");
  EXPECT_NE(log.find("diverged"), std::string::npos) << log;
}

}  // namespace
}  // namespace qtx
