#pragma once

#include "core/simulation.hpp"

namespace qtx::la {
inline int bad() { return 1; }
}  // namespace qtx::la
