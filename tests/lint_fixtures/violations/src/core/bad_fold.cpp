#include <vector>

namespace qtx::core {
double fold_a(const std::vector<double>& partials) {
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}
double fold_b(const std::vector<double>& g, int ne) {
  double acc = 0.0;
  for (int e = 0; e < ne; ++e) acc += g[e];
  return acc;
}
}  // namespace qtx::core
