#include <chrono>

namespace qtx::core {
double bad_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace qtx::core
