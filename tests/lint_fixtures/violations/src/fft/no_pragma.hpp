namespace qtx::fft {
inline int f() { return 2; }
}  // namespace qtx::fft
