namespace qtx::obc {
volatile int flag = 0;
}  // namespace qtx::obc
