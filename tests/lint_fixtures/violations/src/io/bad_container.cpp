#include <unordered_map>

namespace qtx::io {
int bad() {
  std::unordered_map<int, int> m;
  return static_cast<int>(m.size());
}
}  // namespace qtx::io
