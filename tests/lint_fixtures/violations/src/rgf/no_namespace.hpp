#pragma once

inline int bare_symbol() { return 3; }
