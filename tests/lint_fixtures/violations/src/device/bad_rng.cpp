#include <random>

namespace qtx::device {
double bad() {
  std::mt19937 gen(42);
  return static_cast<double>(gen());
}
}  // namespace qtx::device
