#include <thread>

namespace qtx::par {
void spawn() {
  std::thread t([] {});
  t.detach();
}
}  // namespace qtx::par
