#include <iostream>

namespace qtx::par {
void report() { std::cout << 42; }
}  // namespace qtx::par
