#include <vector>

namespace qtx::core {
double waived(const std::vector<double>& xs) {
  double sum = 0.0;
  // qtx-lint: allow(raw-accumulate) — fixture: provably fixed-order
  // fold, waived with a multi-line justification comment.
  for (const double x : xs) sum += x;
  return sum;
}
volatile int sink = 0;  // qtx-lint: allow(volatile) — fixture sink.
}  // namespace qtx::core
