#include <chrono>
#include <vector>

namespace qtx::core {
double waived_now() {
  // qtx-lint: allow(raw-clock) — fixture: sanctioned one-off timestamp.
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
double waived(const std::vector<double>& xs) {
  double sum = 0.0;
  // qtx-lint: allow(raw-accumulate) — fixture: provably fixed-order
  // fold, waived with a multi-line justification comment.
  for (const double x : xs) sum += x;
  return sum;
}
volatile int sink = 0;  // qtx-lint: allow(volatile) — fixture sink.
}  // namespace qtx::core
