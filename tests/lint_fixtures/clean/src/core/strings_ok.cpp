// Forbidden tokens inside comments and string literals must never fire:
// std::cout, rand(), volatile, std::unordered_map, t.detach().

namespace qtx::core {
inline const char* doc() {
  return "std::cout rand( volatile std::unordered_map .detach( "
         "for (x : xs) s += p[e]";
}
inline int separator() { return 1'000'000; }
}  // namespace qtx::core
