#pragma once

/// Umbrella header fixture: include-only headers are exempt from the
/// namespace-qtx rule.

#include "common/ok.hpp"
