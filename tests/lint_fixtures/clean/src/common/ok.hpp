#pragma once

namespace qtx {
inline int ok() { return 0; }
}  // namespace qtx
