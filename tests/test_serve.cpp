// Serve-layer suite (ctest label "serve"):
//
//  - ResultCache: hit/miss counters, LRU eviction under the byte budget,
//    zero-budget and oversized-payload edge cases
//  - PipelinePool: shelf round trips, key isolation, the idle cap
//  - frame codec over a socketpair: round trips, clean EOF, truncation,
//    the oversized-header guard
//  - request codec: encode/decode round trip and malformed-preamble
//    rejection
//  - the "serve" provenance section: append + strip round trips
//  - Server end to end (in-process daemon + the real Client): warm-pool
//    and cache-hit responses bit-identical to a cold run (compared after
//    strip_volatile_sections, the pinned volatile-free projection),
//    override handling, located deck errors, sweep rejection, malformed
//    and oversized frames, queue backpressure, queue timeouts, and the
//    graceful drain (in-flight requests complete, queued ones get a clear
//    error) driven by a gate-controlled OBC backend
//  - ServedGolden (also registered as ctest test golden.served_quickstart):
//    the served quickstart transmission matches
//    tests/golden/quickstart_transmission.txt bit-for-bit
//  - CLI smoke: the real `qtx serve` / `qtx submit` binaries round-trip a
//    deck and drain on `--shutdown`

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "io/result_writer.hpp"
#include "io/scenario_runner.hpp"
#include "serve/client.hpp"
#include "serve/pipeline_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"

#ifndef QTX_GOLDEN_DIR
#error "QTX_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif
#ifndef QTX_SCENARIO_DIR
#error "QTX_SCENARIO_DIR must point at scenarios/ (set by CMakeLists.txt)"
#endif
#ifndef QTX_QTX_BIN
#error "QTX_QTX_BIN must point at the qtx binary (set by CMakeLists.txt)"
#endif

namespace qtx {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Small-but-real deck: 2 quickstart cells, 8 energies, 2 SCBA iterations —
/// a full GW solve in a couple hundred milliseconds.
constexpr const char* kMiniDeck =
    "[device]\n"
    "preset = quickstart\n"
    "num_cells = 2\n"
    "\n"
    "[solver]\n"
    "grid = -2.0 2.0 8\n"
    "eta = 0.05\n"
    "max_iterations = 2\n"
    "tolerance = 1e-3\n";

/// mkdtemp wrapper: AF_UNIX socket paths must stay under the ~108-byte
/// sun_path limit, so every test socket lives in a short /tmp directory.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/qtx_serve_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path = p;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Golden .txt reader (same format as test_io/test_golden: '#' comments,
/// one double per line at %.17g).
std::vector<double> read_golden_values(const std::string& name) {
  std::ifstream in(std::string(QTX_GOLDEN_DIR) + "/" + name + ".txt");
  EXPECT_TRUE(in.good()) << "missing golden " << name;
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    values.push_back(std::strtod(line.c_str(), nullptr));
  }
  return values;
}

/// What a cold `qtx run` of \p deck_text renders — the exact reference the
/// serve daemon must reproduce. Mirrors Server::solve's normalization
/// (name fallback, overrides in order, blanked output spec).
std::string cold_reference(
    const std::string& deck_text,
    const std::vector<std::pair<std::string, std::string>>& overrides = {},
    const std::string& deck_name = "request.ini") {
  io::Scenario s = io::parse_scenario_text(deck_text, deck_name);
  if (s.name.empty()) s.name = io::scenario_path_stem(deck_name);
  for (const auto& [key, value] : overrides)
    io::apply_scenario_override(s, key, value);
  s.output = io::OutputSpec{};
  s.output.directory.clear();
  const io::RunOutcome out =
      io::run_scenario(s, core::StageRegistry::global(), nullptr);
  return io::render_result_json(s, out.resolved, out.results);
}

std::string stripped(const std::string& results_json) {
  return serve::strip_volatile_sections(results_json);
}

/// A solved mini-deck pipeline for the pool unit tests (the only way user
/// code obtains one — RunOutcome's shared_pipeline transfer).
std::shared_ptr<core::EnergyPipeline> make_pipeline() {
  io::Scenario s = io::parse_scenario_text(kMiniDeck, "pool.ini");
  s.output = io::OutputSpec{};
  s.output.directory.clear();
  io::RunOutcome out =
      io::run_scenario(s, core::StageRegistry::global(), nullptr);
  EXPECT_NE(out.pipeline, nullptr);
  return out.pipeline;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return fd;
}

/// Parse the "transmission" array out of a results.json payload (the
/// one-value-per-line io::JsonWriter layout).
std::vector<double> extract_transmission(const std::string& json) {
  std::istringstream in(json);
  std::vector<double> values;
  std::string line;
  bool in_array = false;
  while (std::getline(in, line)) {
    const std::string t = strings::trim(line);
    if (!in_array) {
      if (t.rfind("\"transmission\": [", 0) == 0) in_array = true;
      continue;
    }
    if (!t.empty() && t[0] == ']') break;
    values.push_back(std::strtod(t.c_str(), nullptr));
  }
  return values;
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST(ResultCacheUnit, MissThenHitCountsBoth) {
  serve::ResultCache cache(1024);
  std::string payload;
  EXPECT_FALSE(cache.lookup(1, payload));
  cache.insert(1, "body");
  ASSERT_TRUE(cache.lookup(1, payload));
  EXPECT_EQ(payload, "body");
  const serve::ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, 4);
}

TEST(ResultCacheUnit, EvictsLeastRecentlyUsedUnderTheByteBudget) {
  serve::ResultCache cache(8);  // room for two 4-byte payloads
  cache.insert(1, "aaaa");
  cache.insert(2, "bbbb");
  std::string payload;
  ASSERT_TRUE(cache.lookup(1, payload));  // 1 becomes most-recently-used
  cache.insert(3, "cccc");                // must displace 2, not 1
  EXPECT_FALSE(cache.lookup(2, payload));
  EXPECT_TRUE(cache.lookup(1, payload));
  EXPECT_TRUE(cache.lookup(3, payload));
  const serve::ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.bytes, 8);
}

TEST(ResultCacheUnit, PayloadLargerThanTheBudgetIsNotInserted) {
  serve::ResultCache cache(4);
  cache.insert(1, "toolarge");
  std::string payload;
  EXPECT_FALSE(cache.lookup(1, payload));
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(ResultCacheUnit, ZeroBudgetDisablesCaching) {
  serve::ResultCache cache(0);
  cache.insert(1, "x");
  std::string payload;
  EXPECT_FALSE(cache.lookup(1, payload));
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(ResultCacheUnit, ReinsertingAKeyRefreshesInPlace) {
  serve::ResultCache cache(1024);
  cache.insert(1, "aa");
  cache.insert(1, "bbbb");
  std::string payload;
  ASSERT_TRUE(cache.lookup(1, payload));
  EXPECT_EQ(payload, "bbbb");
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().bytes, 4);
}

// ---------------------------------------------------------------------------
// PipelinePool
// ---------------------------------------------------------------------------

TEST(PipelinePoolUnit, EmptyCheckoutIsACountedColdBuild) {
  serve::PipelinePool pool(2);
  EXPECT_EQ(pool.checkout("k"), nullptr);
  EXPECT_EQ(pool.stats().cold_builds, 1);
  EXPECT_EQ(pool.stats().warm_hits, 0);
}

TEST(PipelinePoolUnit, CheckinThenCheckoutReturnsTheShelvedEngine) {
  serve::PipelinePool pool(2);
  const std::shared_ptr<core::EnergyPipeline> p = make_pipeline();
  pool.checkin("k", p);
  EXPECT_EQ(pool.stats().idle, 1);
  const std::shared_ptr<core::EnergyPipeline> q = pool.checkout("k");
  EXPECT_EQ(q.get(), p.get());
  EXPECT_EQ(pool.stats().warm_hits, 1);
  EXPECT_EQ(pool.stats().idle, 0);
  // A second checkout finds the shelf empty again (no double handout).
  EXPECT_EQ(pool.checkout("k"), nullptr);
}

TEST(PipelinePoolUnit, KeysAreIsolated) {
  serve::PipelinePool pool(2);
  pool.checkin("layout-a", make_pipeline());
  EXPECT_EQ(pool.checkout("layout-b"), nullptr);
  EXPECT_NE(pool.checkout("layout-a"), nullptr);
}

TEST(PipelinePoolUnit, IdleCapDiscardsTheOverflow) {
  serve::PipelinePool pool(1);
  pool.checkin("k", make_pipeline());
  pool.checkin("k", make_pipeline());
  EXPECT_EQ(pool.stats().discarded, 1);
  EXPECT_EQ(pool.stats().idle, 1);
}

TEST(PipelinePoolUnit, ZeroCapAndNullCheckinsAreIgnored) {
  serve::PipelinePool disabled(0);
  disabled.checkin("k", make_pipeline());
  EXPECT_EQ(disabled.checkout("k"), nullptr);

  serve::PipelinePool pool(2);
  pool.checkin("k", nullptr);
  EXPECT_EQ(pool.stats().idle, 0);
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

struct SocketPair {
  int fd[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~SocketPair() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
};

TEST(FrameCodec, RoundTripsTypeAndPayload) {
  SocketPair sp;
  serve::write_frame(sp.fd[0], serve::kFrameRequest, "hello frames");
  serve::Frame f;
  ASSERT_TRUE(serve::read_frame(sp.fd[1], f, 1024));
  EXPECT_EQ(f.type, serve::kFrameRequest);
  EXPECT_EQ(f.payload, "hello frames");
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  SocketPair sp;
  serve::write_frame(sp.fd[0], serve::kFrameShutdown, "");
  serve::Frame f;
  ASSERT_TRUE(serve::read_frame(sp.fd[1], f, 1024));
  EXPECT_EQ(f.type, serve::kFrameShutdown);
  EXPECT_TRUE(f.payload.empty());
}

TEST(FrameCodec, CleanEofBeforeAnyByteReturnsFalse) {
  SocketPair sp;
  ::close(sp.fd[0]);
  sp.fd[0] = -1;
  serve::Frame f;
  EXPECT_FALSE(serve::read_frame(sp.fd[1], f, 1024));
}

TEST(FrameCodec, TruncatedHeaderThrows) {
  SocketPair sp;
  const char partial[5] = {1, 2, 3, 4, 5};
  ASSERT_EQ(::send(sp.fd[0], partial, sizeof partial, 0),
            static_cast<ssize_t>(sizeof partial));
  ::close(sp.fd[0]);
  sp.fd[0] = -1;
  serve::Frame f;
  EXPECT_THROW(serve::read_frame(sp.fd[1], f, 1024), serve::FrameError);
}

TEST(FrameCodec, OversizedHeaderIsRejectedBeforeThePayload) {
  SocketPair sp;
  serve::write_frame(sp.fd[0], serve::kFrameRequest, std::string(64, 'x'));
  serve::Frame f;
  EXPECT_THROW(serve::read_frame(sp.fd[1], f, 16), serve::OversizedFrame);
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

TEST(RequestCodec, EncodeDecodeRoundTrips) {
  serve::Request request;
  request.deck_text = std::string(kMiniDeck) + "\n# trailing comment\n";
  request.deck_name = "experiments/mini.ini";
  request.overrides = {{"eta", "0.07"}, {"device.num_cells", "3"}};
  const serve::Request back =
      serve::decode_request(serve::encode_request(request));
  EXPECT_EQ(back.deck_text, request.deck_text);
  EXPECT_EQ(back.deck_name, request.deck_name);
  EXPECT_EQ(back.overrides, request.overrides);
}

TEST(RequestCodec, RejectsMalformedPreambles) {
  EXPECT_THROW(serve::decode_request("not a request\n"), serve::FrameError);
  EXPECT_THROW(serve::decode_request("qtx-serve 1 run\nset novalue\ndeck\n"),
               serve::FrameError);
  EXPECT_THROW(serve::decode_request("qtx-serve 1 run\nname x\n"),
               serve::FrameError);
  EXPECT_THROW(serve::decode_request("qtx-serve 1 run\nbogus line\ndeck\n"),
               serve::FrameError);
}

// ---------------------------------------------------------------------------
// Serve provenance section
// ---------------------------------------------------------------------------

TEST(ServeSection, AppendsProvenanceAndStripsBackToTheColdDocument) {
  const std::string body = cold_reference(kMiniDeck);
  ASSERT_GE(body.size(), 3u);
  EXPECT_EQ(body.substr(body.size() - 3), "}}\n");

  serve::ServeInfo info;
  info.warm_pipeline = true;
  info.queue_seconds = 0.25;
  info.solve_seconds = 1.5;
  const std::string with = serve::append_serve_section(body, info);
  EXPECT_NE(with, body);
  EXPECT_NE(with.find("\"serve\": {"), std::string::npos);
  EXPECT_NE(with.find("\"pipeline\": \"warm\""), std::string::npos);
  EXPECT_EQ(with.substr(with.size() - 3), "}}\n");

  // The volatile-free projection cannot tell the two documents apart —
  // the exact comparison every bit-identity assertion below rests on.
  EXPECT_EQ(stripped(with), stripped(body));
}

TEST(ServeSection, StripDropsEveryWallClockLine) {
  const std::string s = stripped(cold_reference(kMiniDeck));
  EXPECT_EQ(s.find("\"seconds\":"), std::string::npos);
  EXPECT_EQ(s.find("\"total_seconds\":"), std::string::npos);
  EXPECT_EQ(s.find("\"performance\": {"), std::string::npos);
  EXPECT_EQ(s.find("\"kernel_seconds\": {"), std::string::npos);
  // The physics and provenance survive.
  EXPECT_NE(s.find("\"transmission\": ["), std::string::npos);
  EXPECT_NE(s.find("\"provenance\": {"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Server end to end
// ---------------------------------------------------------------------------

/// Open/close latch for the gated OBC backend below.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  void wait() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return open; });
  }
  void open_gate() {
    {
      std::lock_guard<std::mutex> lock(m);
      open = true;
    }
    cv.notify_all();
  }
};

/// "memoized" OBC that announces the first solve on \p arrived and then
/// blocks until \p release opens — it pins a worker inside a solve for as
/// long as a test needs, which makes the drain/backpressure/timeout
/// sequences deterministic instead of sleep-calibrated.
class GatedObc : public core::ObcSolver {
 public:
  GatedObc(std::unique_ptr<core::ObcSolver> inner,
           std::shared_ptr<Gate> arrived, std::shared_ptr<Gate> release)
      : inner_(std::move(inner)),
        arrived_(std::move(arrived)),
        release_(std::move(release)) {}

  std::string_view name() const override { return inner_->name(); }

  la::Matrix solve_surface(const obc::ObcKey& key, const la::Matrix& m,
                           const la::Matrix& n,
                           const la::Matrix& np) override {
    arrived_->open_gate();
    release_->wait();
    return inner_->solve_surface(key, m, n, np);
  }

  la::Matrix solve_stein(const obc::ObcKey& key, const la::Matrix& q,
                         const la::Matrix& a, double sigma) override {
    return inner_->solve_stein(key, q, a, sigma);
  }

  const obc::MemoizerStats& stats() const override {
    return inner_->stats();
  }

  void reset() override { inner_->reset(); }

 private:
  std::unique_ptr<core::ObcSolver> inner_;
  std::shared_ptr<Gate> arrived_;
  std::shared_ptr<Gate> release_;
};

class ServeEndToEnd : public ::testing::Test {
 protected:
  std::string sock(const char* name) const { return dir_.path + "/" + name; }

  /// Registry whose "gated" OBC backend blocks as described on GatedObc.
  core::StageRegistry& gated_registry() {
    arrived_ = std::make_shared<Gate>();
    release_ = std::make_shared<Gate>();
    registry_ = core::StageRegistry::with_builtins();
    auto arrived = arrived_;
    auto release = release_;
    core::StageRegistry* reg = &registry_;
    registry_.register_obc(
        "gated",
        [reg, arrived, release](const core::SimulationOptions& opt) {
          return std::make_unique<GatedObc>(reg->make_obc("memoized", opt),
                                            arrived, release);
        },
        "test backend: memoized, but blocks until the test releases it");
    return registry_;
  }

  TempDir dir_;
  core::StageRegistry registry_;
  std::shared_ptr<Gate> arrived_;
  std::shared_ptr<Gate> release_;
};

TEST_F(ServeEndToEnd, WarmPoolReuseIsBitIdenticalToAColdRun) {
  serve::ServerOptions opt;
  opt.socket_path = sock("warm.sock");
  opt.cache_bytes = 0;  // force the second request through the solver
  serve::Server server(opt);
  server.start();

  const serve::Client client(opt.socket_path);
  const serve::Client::Response r1 = client.submit(kMiniDeck);
  const serve::Client::Response r2 = client.submit(kMiniDeck);
  server.stop();

  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_NE(r1.payload.find("\"pipeline\": \"cold\""), std::string::npos);
  EXPECT_NE(r2.payload.find("\"pipeline\": \"warm\""), std::string::npos);

  const std::string reference = stripped(cold_reference(kMiniDeck));
  EXPECT_EQ(stripped(r1.payload), reference);
  EXPECT_EQ(stripped(r2.payload), reference);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_ok, 2);
  EXPECT_EQ(stats.requests_error, 0);
  EXPECT_EQ(stats.pool.cold_builds, 1);
  EXPECT_EQ(stats.pool.warm_hits, 1);
  EXPECT_EQ(stats.cache.hits, 0);
}

TEST_F(ServeEndToEnd, CacheHitReturnsTheStoredBytes) {
  serve::ServerOptions opt;
  opt.socket_path = sock("cache.sock");
  serve::Server server(opt);
  server.start();

  const serve::Client client(opt.socket_path);
  const serve::Client::Response r1 = client.submit(kMiniDeck);
  const serve::Client::Response r2 = client.submit(kMiniDeck);
  server.stop();

  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_NE(r1.payload.find("\"cache_hit\": false"), std::string::npos);
  EXPECT_NE(r2.payload.find("\"cache_hit\": true"), std::string::npos);
  EXPECT_NE(r2.payload.find("\"pipeline\": \"cached\""), std::string::npos);
  EXPECT_EQ(stripped(r1.payload), stripped(r2.payload));
  EXPECT_EQ(stripped(r1.payload), stripped(cold_reference(kMiniDeck)));

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_EQ(stats.cache.misses, 1);
}

TEST_F(ServeEndToEnd, OverridesChangeTheServedPhysics) {
  serve::ServerOptions opt;
  opt.socket_path = sock("override.sock");
  serve::Server server(opt);
  server.start();

  const serve::Client client(opt.socket_path);
  const serve::Client::Response base = client.submit(kMiniDeck);
  const serve::Client::Response hot =
      client.submit(kMiniDeck, "request.ini", {{"eta", "0.1"}});
  server.stop();

  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(hot.ok) << hot.error;
  EXPECT_NE(stripped(base.payload), stripped(hot.payload));
  EXPECT_EQ(stripped(hot.payload),
            stripped(cold_reference(kMiniDeck, {{"eta", "0.1"}})));
  // Distinct canonical decks never share a cache entry.
  EXPECT_EQ(server.stats().cache.hits, 0);
}

TEST_F(ServeEndToEnd, BadDecksGetALocatedError) {
  serve::ServerOptions opt;
  opt.socket_path = sock("bad.sock");
  serve::Server server(opt);
  server.start();

  const serve::Client client(opt.socket_path);
  const serve::Client::Response r =
      client.submit("[solver]\nbogus_key = 1\n", "bad.ini");
  server.stop();

  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("bad.ini:2"), std::string::npos) << r.error;
  EXPECT_EQ(server.stats().requests_error, 1);
}

TEST_F(ServeEndToEnd, SweepDecksAreRejected) {
  serve::ServerOptions opt;
  opt.socket_path = sock("sweep.sock");
  serve::Server server(opt);
  server.start();

  const std::string deck = std::string(kMiniDeck) +
                           "\n[sweep]\nparameter = eta\nvalues = 0.05 0.1\n";
  const serve::Client client(opt.socket_path);
  const serve::Client::Response r = client.submit(deck, "sweep.ini");
  server.stop();

  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cannot be served"), std::string::npos) << r.error;
}

TEST_F(ServeEndToEnd, UnknownFrameTypesAreAnsweredWithAnError) {
  serve::ServerOptions opt;
  opt.socket_path = sock("frame.sock");
  serve::Server server(opt);
  server.start();

  const int fd = connect_unix(opt.socket_path);
  serve::write_frame(fd, 77, "surprise");
  serve::Frame reply;
  ASSERT_TRUE(serve::read_frame(fd, reply, 1 << 20));
  ::close(fd);
  server.stop();

  EXPECT_EQ(reply.type, serve::kFrameError);
  EXPECT_NE(reply.payload.find("unknown frame type 77"), std::string::npos)
      << reply.payload;
}

TEST_F(ServeEndToEnd, OversizedRequestsAreRejectedBeforeAllocation) {
  serve::ServerOptions opt;
  opt.socket_path = sock("big.sock");
  opt.max_request_bytes = 256;
  serve::Server server(opt);
  server.start();

  const std::string big_deck = std::string(kMiniDeck) +
                               "# " + std::string(1024, 'x') + "\n";
  const serve::Client client(opt.socket_path);
  const serve::Client::Response r = client.submit(big_deck);
  server.stop();

  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exceeds the limit"), std::string::npos) << r.error;
  EXPECT_EQ(server.stats().requests_error, 1);
}

TEST_F(ServeEndToEnd, GracefulDrainAnswersInFlightAndFailsQueued) {
  const core::StageRegistry& registry = gated_registry();
  serve::ServerOptions opt;
  opt.socket_path = sock("drain.sock");
  opt.workers = 1;
  opt.cache_bytes = 0;
  serve::Server server(opt, registry);
  server.start();

  const serve::Client client(opt.socket_path);
  const std::vector<std::pair<std::string, std::string>> gated = {
      {"obc_backend", "gated"}};
  auto fa = std::async(std::launch::async, [&] {
    return client.submit(kMiniDeck, "a.ini", gated);
  });
  arrived_->wait();  // request A is inside its solve on the only worker
  auto fb = std::async(std::launch::async, [&] {
    return client.submit(kMiniDeck, "b.ini", gated);
  });
  std::this_thread::sleep_for(100ms);  // B reaches the queue
  server.request_stop();
  std::this_thread::sleep_for(50ms);  // the stop byte flips the drain flag
  release_->open_gate();

  const serve::Client::Response ra = fa.get();
  const serve::Client::Response rb = fb.get();
  server.wait();

  ASSERT_TRUE(ra.ok) << ra.error;  // in-flight requests complete normally
  ASSERT_FALSE(rb.ok);             // queued ones get the drain error
  EXPECT_NE(rb.error.find("draining"), std::string::npos) << rb.error;
  EXPECT_EQ(server.stats().requests_ok, 1);
  EXPECT_EQ(server.stats().requests_error, 1);
}

TEST_F(ServeEndToEnd, FullQueueAnswersImmediatelyWithBackpressure) {
  const core::StageRegistry& registry = gated_registry();
  serve::ServerOptions opt;
  opt.socket_path = sock("full.sock");
  opt.workers = 1;
  opt.queue_capacity = 1;
  opt.cache_bytes = 0;
  serve::Server server(opt, registry);
  server.start();

  const serve::Client client(opt.socket_path);
  const std::vector<std::pair<std::string, std::string>> gated = {
      {"obc_backend", "gated"}};
  auto fa = std::async(std::launch::async, [&] {
    return client.submit(kMiniDeck, "a.ini", gated);
  });
  arrived_->wait();  // A occupies the worker, queue is empty
  auto fb = std::async(std::launch::async, [&] {
    return client.submit(kMiniDeck, "b.ini", gated);
  });
  std::this_thread::sleep_for(100ms);  // B fills the one queue slot
  // C is rejected by the acceptor itself — no worker involvement.
  const serve::Client::Response rc =
      client.submit(kMiniDeck, "c.ini", gated);
  ASSERT_FALSE(rc.ok);
  EXPECT_NE(rc.error.find("queue is full"), std::string::npos) << rc.error;

  release_->open_gate();
  EXPECT_TRUE(fa.get().ok);
  EXPECT_TRUE(fb.get().ok);
  server.stop();
}

TEST_F(ServeEndToEnd, QueueTimeoutsAreReportedWhenAWorkerArrives) {
  const core::StageRegistry& registry = gated_registry();
  serve::ServerOptions opt;
  opt.socket_path = sock("timeout.sock");
  opt.workers = 1;
  opt.cache_bytes = 0;
  opt.request_timeout_s = 0.05;
  serve::Server server(opt, registry);
  server.start();

  const serve::Client client(opt.socket_path);
  const std::vector<std::pair<std::string, std::string>> gated = {
      {"obc_backend", "gated"}};
  auto fa = std::async(std::launch::async, [&] {
    return client.submit(kMiniDeck, "a.ini", gated);
  });
  arrived_->wait();
  auto fb = std::async(std::launch::async, [&] {
    return client.submit(kMiniDeck, "b.ini", gated);
  });
  std::this_thread::sleep_for(150ms);  // B overstays the 50 ms budget
  release_->open_gate();

  EXPECT_TRUE(fa.get().ok);
  const serve::Client::Response rb = fb.get();
  server.stop();

  ASSERT_FALSE(rb.ok);
  EXPECT_NE(rb.error.find("timed out in the queue"), std::string::npos)
      << rb.error;
}

TEST_F(ServeEndToEnd, ShutdownFrameAcksAndDrains) {
  serve::ServerOptions opt;
  opt.socket_path = sock("down.sock");
  serve::Server server(opt);
  server.start();

  const serve::Client client(opt.socket_path);
  EXPECT_TRUE(client.shutdown());
  server.wait();
  EXPECT_FALSE(server.running());
  // The socket file is gone, so a second shutdown finds nothing listening.
  EXPECT_FALSE(client.shutdown());
}

// ---------------------------------------------------------------------------
// Concurrent clients
// ---------------------------------------------------------------------------

TEST(ServeConcurrent, StressedResponsesMatchSequentialReferences) {
  TempDir dir;
  serve::ServerOptions opt;
  opt.socket_path = dir.path + "/stress.sock";
  opt.workers = 4;
  serve::Server server(opt);
  server.start();

  const std::vector<std::string> etas = {"0.04", "0.05", "0.06"};
  std::vector<std::string> references;
  references.reserve(etas.size());
  for (const std::string& eta : etas)
    references.push_back(stripped(cold_reference(kMiniDeck, {{"eta", eta}})));

  constexpr int kClients = 8;
  std::vector<std::future<serve::Client::Response>> futures;
  futures.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    const std::string eta = etas[static_cast<std::size_t>(i) % etas.size()];
    futures.push_back(std::async(std::launch::async, [&opt, eta] {
      const serve::Client client(opt.socket_path);
      return client.submit(kMiniDeck, "request.ini", {{"eta", eta}});
    }));
  }
  for (int i = 0; i < kClients; ++i) {
    const serve::Client::Response r =
        futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(r.ok) << "client " << i << ": " << r.error;
    EXPECT_EQ(stripped(r.payload),
              references[static_cast<std::size_t>(i) % references.size()])
        << "client " << i << " diverged from its sequential reference";
  }
  server.stop();
  EXPECT_EQ(server.stats().requests_ok, kClients);
  EXPECT_EQ(server.stats().requests_error, 0);
}

// ---------------------------------------------------------------------------
// Served golden (also registered as ctest test golden.served_quickstart)
// ---------------------------------------------------------------------------

TEST(ServedGolden, QuickstartTransmissionMatchesTheGoldenFile) {
  const std::string deck =
      read_file(std::string(QTX_SCENARIO_DIR) + "/quickstart.ini");
  TempDir dir;
  serve::ServerOptions opt;
  opt.socket_path = dir.path + "/golden.sock";
  serve::Server server(opt);
  server.start();

  const serve::Client client(opt.socket_path);
  const serve::Client::Response r = client.submit(deck, "quickstart.ini");
  server.stop();
  ASSERT_TRUE(r.ok) << r.error;

  const std::vector<double> got = extract_transmission(r.payload);
  const std::vector<double> want =
      read_golden_values("quickstart_transmission");
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i])
        << "served transmission drifted from the golden file at point " << i;
  }
}

// ---------------------------------------------------------------------------
// CLI smoke
// ---------------------------------------------------------------------------

TEST(ServeCli, DaemonRoundTripsADeckAndDrainsOnShutdown) {
  TempDir dir;
  const std::string sock = dir.path + "/cli.sock";
  {
    std::ofstream deck(dir.path + "/mini.ini");
    deck << kMiniDeck;
  }

  const std::string serve_cmd = std::string(QTX_QTX_BIN) +
                                " serve --socket " + sock +
                                " --workers 2 --quiet > " + dir.path +
                                "/serve.log 2>&1 &";
  ASSERT_EQ(std::system(serve_cmd.c_str()), 0);
  ASSERT_TRUE(serve::Client::wait_ready(sock, 15.0))
      << read_file(dir.path + "/serve.log");

  const std::string submit_cmd =
      std::string(QTX_QTX_BIN) + " submit " + dir.path +
      "/mini.ini --socket " + sock + " --set eta=0.06 > " + dir.path +
      "/reply.json 2> " + dir.path + "/submit.log";
  EXPECT_EQ(std::system(submit_cmd.c_str()), 0)
      << read_file(dir.path + "/submit.log");
  const std::string reply = read_file(dir.path + "/reply.json");
  EXPECT_NE(reply.find("\"scenario\": \"mini\""), std::string::npos);
  EXPECT_NE(reply.find("\"serve\": {"), std::string::npos);
  EXPECT_EQ(stripped(reply),
            stripped(cold_reference(kMiniDeck, {{"eta", "0.06"}},
                                    dir.path + "/mini.ini")));

  const std::string down_cmd = std::string(QTX_QTX_BIN) +
                               " submit --socket " + sock +
                               " --shutdown --quiet";
  EXPECT_EQ(std::system(down_cmd.c_str()), 0);
  // The drained daemon unlinks its socket on the way out.
  const auto deadline = std::chrono::steady_clock::now() + 15s;
  while (fs::exists(sock) && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(fs::exists(sock));
}

}  // namespace
}  // namespace qtx
