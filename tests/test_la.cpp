// Unit and property tests for the dense linear-algebra substrate (src/la).
// Every downstream solver (OBC, RGF, SCBA) assumes these kernels are exact,
// so the suite checks both hand-computed cases and randomized algebraic
// identities over a sweep of sizes.

#include <gtest/gtest.h>

#include "la/la.hpp"

namespace qtx::la {
namespace {

constexpr double kTol = 1e-10;

TEST(Matrix, BasicAccessAndShape) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m(1, 2) = cplx(3.0, -4.0);
  EXPECT_EQ(m(1, 2), cplx(3.0, -4.0));
  EXPECT_EQ(m(0, 0), cplx(0.0, 0.0));
  EXPECT_FALSE(m.square());
}

TEST(Matrix, IdentityAndTrace) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_EQ(i3.trace(), cplx(3.0, 0.0));
  EXPECT_TRUE(i3.is_hermitian());
}

TEST(Matrix, DaggerIsConjugateTranspose) {
  Rng rng(1);
  const Matrix a = Matrix::random(3, 5, rng);
  const Matrix ad = a.dagger();
  ASSERT_EQ(ad.rows(), 5);
  ASSERT_EQ(ad.cols(), 3);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 5; ++j)
      EXPECT_EQ(ad(j, i), std::conj(a(i, j)));
}

TEST(Matrix, DaggerDaggerIsIdentityOp) {
  Rng rng(2);
  const Matrix a = Matrix::random(4, 4, rng);
  EXPECT_LT(max_abs_diff(a.dagger().dagger(), a), 1e-15);
}

TEST(Matrix, RandomHermitianIsHermitian) {
  Rng rng(3);
  EXPECT_TRUE(Matrix::random_hermitian(6, rng).is_hermitian());
}

TEST(Matrix, AntiHermitizeEnforcesSymmetry) {
  Rng rng(4);
  Matrix a = Matrix::random(5, 5, rng);
  a.anti_hermitize();
  EXPECT_TRUE(a.is_anti_hermitian());
}

TEST(Matrix, AntiHermitizeIsProjection) {
  Rng rng(5);
  Matrix a = Matrix::random(5, 5, rng);
  a.anti_hermitize();
  Matrix b = a;
  b.anti_hermitize();
  EXPECT_LT(max_abs_diff(a, b), 1e-15);
}

TEST(Matrix, BlockExtractAndSet) {
  Rng rng(6);
  const Matrix a = Matrix::random(6, 6, rng);
  const Matrix blk = a.block(1, 2, 3, 4);
  Matrix b(6, 6);
  b.set_block(1, 2, blk);
  EXPECT_EQ(b(1, 2), a(1, 2));
  EXPECT_EQ(b(3, 5), a(3, 5));
  EXPECT_EQ(b(0, 0), cplx(0.0));
}

TEST(Matrix, BlockRejectsNegativeOffsetsAndExtents) {
  // Regression: negative r0/c0 (and negative extents, which wrap the
  // unsigned copy loops) used to slip past the bounds check because
  // r0 + nr <= rows() holds for e.g. r0 = -1, nr = 0.
  Rng rng(6);
  const Matrix a = Matrix::random(4, 4, rng);
  EXPECT_THROW(a.block(-1, 0, 2, 2), std::runtime_error);
  EXPECT_THROW(a.block(0, -1, 2, 2), std::runtime_error);
  EXPECT_THROW(a.block(0, 0, -1, 2), std::runtime_error);
  EXPECT_THROW(a.block(0, 0, 2, -1), std::runtime_error);
  EXPECT_THROW(a.block(3, 0, -2, 1), std::runtime_error);
  Matrix b(4, 4);
  const Matrix blk = a.block(0, 0, 2, 2);
  EXPECT_THROW(b.set_block(-1, 0, blk), std::runtime_error);
  EXPECT_THROW(b.set_block(0, -1, blk), std::runtime_error);
  EXPECT_THROW(b.add_block(-1, 0, blk), std::runtime_error);
  EXPECT_THROW(b.add_block(0, -3, blk), std::runtime_error);
  // Degenerate-but-valid extents still work.
  EXPECT_EQ(a.block(2, 2, 0, 0).rows(), 0);
}

TEST(Matrix, FrobeniusNormMatchesDefinition) {
  Matrix m(2, 2);
  m(0, 0) = cplx(3.0, 4.0);  // |.| = 5
  EXPECT_NEAR(m.frobenius_norm(), 5.0, 1e-15);
}

TEST(Gemm, HandComputed2x2) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = cplx(0.0, 1.0);
  a(1, 0) = 2.0;
  a(1, 1) = -1.0;
  b(0, 0) = 3.0;
  b(0, 1) = 1.0;
  b(1, 0) = cplx(0.0, -1.0);
  b(1, 1) = 2.0;
  const Matrix c = mm(a, b);
  EXPECT_NEAR(std::abs(c(0, 0) - cplx(4.0, 0.0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(c(0, 1) - cplx(1.0, 2.0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(c(1, 0) - cplx(6.0, 1.0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(c(1, 1) - cplx(0.0, 0.0)), 0.0, kTol);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(7);
  const Matrix a = Matrix::random(5, 5, rng);
  EXPECT_LT(max_abs_diff(mm(a, Matrix::identity(5)), a), kTol);
  EXPECT_LT(max_abs_diff(mm(Matrix::identity(5), a), a), kTol);
}

TEST(Gemm, DaggerVariantsAgreeWithExplicitDagger) {
  Rng rng(8);
  const Matrix a = Matrix::random(4, 6, rng);
  const Matrix b = Matrix::random(4, 6, rng);
  EXPECT_LT(max_abs_diff(mmh(a, b), mm(a, b.dagger())), kTol);
  EXPECT_LT(max_abs_diff(hmm(a, b), mm(a.dagger(), b)), kTol);
  const Matrix c = Matrix::random(6, 4, rng);
  EXPECT_LT(max_abs_diff(hmmh(a, c), mm(a.dagger(), c.dagger())), kTol);
}

TEST(Gemm, AccumulateWithBeta) {
  Rng rng(9);
  const Matrix a = Matrix::random(3, 3, rng);
  const Matrix b = Matrix::random(3, 3, rng);
  Matrix c = Matrix::random(3, 3, rng);
  const Matrix c0 = c;
  gemm(2.0, a, Op::kNone, b, Op::kNone, cplx(0.5), c);
  Matrix want = mm(a, b) * cplx(2.0);
  want.add_scaled(0.5, c0);
  EXPECT_LT(max_abs_diff(c, want), kTol);
}

TEST(Gemm, RejectsAliasedOutput) {
  // Regression: gemm scales c by beta before reading op(a)*op(b), so
  // c aliasing an input silently corrupted the product. The dispatcher now
  // rejects the aliasing up front instead.
  Rng rng(11);
  Matrix a = Matrix::random(3, 3, rng);
  const Matrix b = Matrix::random(3, 3, rng);
  EXPECT_THROW(gemm(cplx(1.0), a, Op::kNone, b, Op::kNone, cplx(0.0), a),
               std::runtime_error);
  EXPECT_THROW(
      gemm(cplx(1.0), b, Op::kNone, a, Op::kConjTrans, cplx(1.0), a),
      std::runtime_error);
}

TEST(Gemm, AssociativityProperty) {
  Rng rng(10);
  const Matrix a = Matrix::random(4, 5, rng);
  const Matrix b = Matrix::random(5, 3, rng);
  const Matrix c = Matrix::random(3, 6, rng);
  EXPECT_LT(max_abs_diff(mm(mm(a, b), c), mm(a, mm(b, c))), kTol);
}

class LuSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuSweep, InverseTimesMatrixIsIdentity) {
  const int n = GetParam();
  Rng rng(100 + n);
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Matrix ainv = inverse(a);
  EXPECT_LT(max_abs_diff(mm(a, ainv), Matrix::identity(n)), 1e-9);
  EXPECT_LT(max_abs_diff(mm(ainv, a), Matrix::identity(n)), 1e-9);
}

TEST_P(LuSweep, SolveMatchesInverse) {
  const int n = GetParam();
  Rng rng(200 + n);
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Matrix b = Matrix::random(n, 3, rng);
  const LuFactors f = lu_factor(a);
  ASSERT_FALSE(f.singular);
  const Matrix x = lu_solve(f, b);
  EXPECT_LT(max_abs_diff(mm(a, x), b), 1e-9);
}

TEST_P(LuSweep, SolveRightMatchesDefinition) {
  const int n = GetParam();
  Rng rng(300 + n);
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Matrix b = Matrix::random(4, n, rng);
  const LuFactors f = lu_factor(a);
  const Matrix x = lu_solve_right(f, b);  // x a = b
  EXPECT_LT(max_abs_diff(mm(x, a), b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(Lu, SingularMatrixIsFlagged) {
  Matrix a(3, 3);  // rank 1
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 3; ++i) a(i, j) = 1.0;
  EXPECT_TRUE(lu_factor(a).singular);
}

TEST(Lu, DeterminantOfDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 2.0;
  a(1, 1) = cplx(0.0, 1.0);
  a(2, 2) = -3.0;
  const LuFactors f = lu_factor(a);
  EXPECT_NEAR(std::abs(determinant(f) - cplx(0.0, -6.0)), 0.0, kTol);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;  // antidiagonal: needs a row swap
  const Matrix ainv = inverse(a);
  EXPECT_LT(max_abs_diff(mm(a, ainv), Matrix::identity(2)), kTol);
}

class QrSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrSweep, ReconstructsAndOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(400 + m * 10 + n);
  const Matrix a = Matrix::random(m, n, rng);
  const auto [q, r] = qr_factor(a);
  EXPECT_LT(max_abs_diff(mm(q, r), a), 1e-9);
  EXPECT_LT(max_abs_diff(hmm(q, q), Matrix::identity(n)), 1e-9);
  for (int j = 0; j < r.cols(); ++j)
    for (int i = j + 1; i < r.rows(); ++i)
      EXPECT_EQ(r(i, j), cplx(0.0)) << "R not upper triangular";
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrSweep,
                         ::testing::Values(std::pair{3, 3}, std::pair{5, 3},
                                           std::pair{8, 8}, std::pair{12, 7},
                                           std::pair{1, 1}));

TEST(Qr, LeastSquaresSolvesConsistentSystem) {
  Rng rng(11);
  const Matrix a = Matrix::random(6, 4, rng);
  const Matrix x0 = Matrix::random(4, 2, rng);
  const Matrix b = mm(a, x0);
  const Matrix x = qr_least_squares(a, b);
  EXPECT_LT(max_abs_diff(x, x0), 1e-9);
}

class SvdSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdSweep, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  Rng rng(500 + m * 10 + n);
  const Matrix a = Matrix::random(m, n, rng);
  const SvdResult r = svd(a);
  const int k = std::min(m, n);
  // U S V† == A.
  Matrix usv(m, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      cplx s = 0.0;
      for (int l = 0; l < k; ++l)
        s += r.u(i, l) * r.s[l] * std::conj(r.v(j, l));
      usv(i, j) = s;
    }
  EXPECT_LT(max_abs_diff(usv, a), 1e-8);
  EXPECT_LT(max_abs_diff(hmm(r.u, r.u), Matrix::identity(k)), 1e-8);
  EXPECT_LT(max_abs_diff(hmm(r.v, r.v), Matrix::identity(k)), 1e-8);
  for (int i = 1; i < k; ++i) EXPECT_GE(r.s[i - 1], r.s[i]);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdSweep,
                         ::testing::Values(std::pair{4, 4}, std::pair{6, 3},
                                           std::pair{3, 6}, std::pair{10, 10},
                                           std::pair{1, 5}));

TEST(Svd, RankOfOuterProduct) {
  Rng rng(12);
  Matrix u = Matrix::random(6, 1, rng);
  Matrix v = Matrix::random(6, 1, rng);
  const Matrix a = mmh(u, v);  // rank 1
  const SvdResult r = svd(a);
  EXPECT_EQ(svd_rank(r, 1e-10), 1);
}

TEST(Svd, SingularValuesOfUnitary) {
  Rng rng(13);
  const auto [q, rr] = qr_factor(Matrix::random(5, 5, rng));
  const SvdResult r = svd(q);
  for (const double s : r.s) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Hessenberg, SimilarityAndStructure) {
  Rng rng(14);
  const Matrix a = Matrix::random(8, 8, rng);
  const auto [h, q] = hessenberg(a);
  // Q† A Q == H and Q unitary.
  EXPECT_LT(max_abs_diff(hmm(q, mm(a, q)), h), 1e-9);
  EXPECT_LT(max_abs_diff(hmm(q, q), Matrix::identity(8)), 1e-9);
  for (int j = 0; j < 8; ++j)
    for (int i = j + 2; i < 8; ++i) EXPECT_EQ(h(i, j), cplx(0.0));
}

class SchurSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchurSweep, DecompositionHolds) {
  const int n = GetParam();
  Rng rng(600 + n);
  const Matrix a = Matrix::random(n, n, rng);
  const SchurResult s = schur(a);
  ASSERT_TRUE(s.converged);
  // A = U T U†, U unitary, T upper triangular.
  EXPECT_LT(max_abs_diff(mm(s.u, mmh(s.t, s.u)), a), 1e-8 * n);
  EXPECT_LT(max_abs_diff(hmm(s.u, s.u), Matrix::identity(n)), 1e-9 * n);
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) EXPECT_EQ(s.t(i, j), cplx(0.0));
}

TEST_P(SchurSweep, EigenvaluesSumToTrace) {
  const int n = GetParam();
  Rng rng(700 + n);
  const Matrix a = Matrix::random(n, n, rng);
  const EigResult e = eig(a);
  ASSERT_TRUE(e.converged);
  cplx sum = 0.0;
  for (const auto& v : e.values) sum += v;
  EXPECT_NEAR(std::abs(sum - a.trace()), 0.0, 1e-8 * n);
}

TEST_P(SchurSweep, EigenpairsSatisfyDefinition) {
  const int n = GetParam();
  Rng rng(800 + n);
  const Matrix a = Matrix::random(n, n, rng);
  const EigResult e = eig(a);
  ASSERT_TRUE(e.converged);
  for (int j = 0; j < n; ++j) {
    Matrix x(n, 1);
    for (int i = 0; i < n; ++i) x(i, 0) = e.vectors(i, j);
    const Matrix ax = mm(a, x);
    Matrix lx = x;
    lx *= e.values[j];
    EXPECT_LT(max_abs_diff(ax, lx), 1e-7 * n) << "eigenpair " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchurSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 10, 16, 25));

TEST(Schur, DiagonalMatrixIsItsOwnSchurForm) {
  Matrix a(3, 3);
  a(0, 0) = cplx(1.0, 1.0);
  a(1, 1) = cplx(-2.0, 0.5);
  a(2, 2) = 3.0;
  const EigResult e = eig(a);
  // Eigenvalues match the diagonal (in some order).
  std::vector<cplx> want = {cplx(1.0, 1.0), cplx(-2.0, 0.5), cplx(3.0, 0.0)};
  for (const auto& w : want) {
    double best = 1e9;
    for (const auto& v : e.values) best = std::min(best, std::abs(v - w));
    EXPECT_LT(best, 1e-10);
  }
}

TEST(Schur, KnownEigenvalues2x2) {
  // [[0, 1], [-1, 0]] has eigenvalues +-i.
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = -1.0;
  const EigResult e = eig(a);
  double di = 1e9, dmi = 1e9;
  for (const auto& v : e.values) {
    di = std::min(di, std::abs(v - kI));
    dmi = std::min(dmi, std::abs(v + kI));
  }
  EXPECT_LT(di, 1e-10);
  EXPECT_LT(dmi, 1e-10);
}

class HermEigSweep : public ::testing::TestWithParam<int> {};

TEST_P(HermEigSweep, DecompositionAndOrdering) {
  const int n = GetParam();
  Rng rng(900 + n);
  const Matrix a = Matrix::random_hermitian(n, rng);
  const HermEigResult e = eig_hermitian(a);
  // A V = V diag(w).
  Matrix avd = mm(a, e.vectors);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) avd(i, j) -= e.values[j] * e.vectors(i, j);
  EXPECT_LT(avd.max_abs(), 1e-9 * n);
  EXPECT_LT(max_abs_diff(hmm(e.vectors, e.vectors), Matrix::identity(n)),
            1e-9 * n);
  for (int i = 1; i < n; ++i) EXPECT_LE(e.values[i - 1], e.values[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HermEigSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 20));

TEST(HermEig, PauliYEigenvalues) {
  Matrix sy(2, 2);
  sy(0, 1) = cplx(0.0, -1.0);
  sy(1, 0) = cplx(0.0, 1.0);
  const HermEigResult e = eig_hermitian(sy);
  EXPECT_NEAR(e.values[0], -1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace qtx::la
