// Tests for the FFT substrate and the energy-convolution engine (src/fft).
// The convolution kernels implement paper §4.4 (Eq. 3 via FFTs); their
// reference implementations are the O(N^2) direct sums, and the retarded
// reconstructions are validated against analytic Green's functions and the
// exact discrete identity X^R - X^A = X> - X<.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fft/convolution.hpp"
#include "fft/fft.hpp"

namespace qtx::fft {
namespace {

std::vector<cplx> random_series(int n, Rng& rng) {
  std::vector<cplx> v(n);
  for (auto& x : v) x = rng.complex_uniform();
  return v;
}

double max_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(8, cplx(0.0));
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cplx(1.0)), 0.0, 1e-14);
}

TEST(Fft, ConstantGivesImpulse) {
  std::vector<cplx> x(16, cplx(1.0));
  fft(x);
  EXPECT_NEAR(std::abs(x[0] - cplx(16.0)), 0.0, 1e-12);
  for (size_t k = 1; k < x.size(); ++k)
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const int n = 32, tone = 5;
  std::vector<cplx> x(n);
  for (int j = 0; j < n; ++j) {
    const double ang = 2.0 * kPi * tone * j / n;
    x[j] = cplx(std::cos(ang), std::sin(ang));
  }
  fft(x);
  EXPECT_NEAR(std::abs(x[tone] - cplx(static_cast<double>(n))), 0.0, 1e-10);
  for (int k = 0; k < n; ++k) {
    if (k != tone) {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-10);
    }
  }
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, MatchesReferenceDft) {
  const int n = GetParam();
  Rng rng(40 + n);
  const std::vector<cplx> x = random_series(n, rng);
  std::vector<cplx> got = x;
  fft(got);
  const std::vector<cplx> want = dft_reference(x, false);
  EXPECT_LT(max_diff(got, want), 1e-9 * n);
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const int n = GetParam();
  Rng rng(80 + n);
  const std::vector<cplx> x = random_series(n, rng);
  std::vector<cplx> y = x;
  fft(y);
  ifft(y);
  EXPECT_LT(max_diff(x, y), 1e-10 * n);
}

TEST_P(FftSizes, ParsevalHolds) {
  const int n = GetParam();
  Rng rng(120 + n);
  const std::vector<cplx> x = random_series(n, rng);
  std::vector<cplx> y = x;
  fft(y);
  double ex = 0.0, ey = 0.0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ex, ey / n, 1e-9 * n);
}

// Mix of powers of two (radix-2 path) and awkward sizes (Bluestein path).
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 64, 3, 5, 12, 17, 100,
                                           127));

class ConvolverSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConvolverSweep, PolarizationMatchesDirect) {
  const int n = GetParam();
  Rng rng(200 + n);
  EnergyConvolver conv(n, 0.01);
  const auto g_lt = random_series(n, rng);
  const auto g_gt = random_series(n, rng);
  std::vector<cplx> p_lt, p_gt, q_lt, q_gt;
  conv.polarization(g_lt, g_gt, p_lt, p_gt);
  conv.polarization_direct(g_lt, g_gt, q_lt, q_gt);
  EXPECT_LT(max_diff(p_lt, q_lt), 1e-12 * n);
  EXPECT_LT(max_diff(p_gt, q_gt), 1e-12 * n);
}

TEST_P(ConvolverSweep, SelfEnergyMatchesDirect) {
  const int n = GetParam();
  Rng rng(300 + n);
  EnergyConvolver conv(n, 0.01);
  const auto g_lt = random_series(n, rng);
  const auto g_gt = random_series(n, rng);
  const auto w_lt = random_series(n, rng);
  const auto w_gt = random_series(n, rng);
  std::vector<cplx> s_lt, s_gt, t_lt, t_gt;
  conv.self_energy(g_lt, g_gt, w_lt, w_gt, s_lt, s_gt);
  conv.self_energy_direct(g_lt, g_gt, w_lt, w_gt, t_lt, t_gt);
  EXPECT_LT(max_diff(s_lt, t_lt), 1e-12 * n);
  EXPECT_LT(max_diff(s_gt, t_gt), 1e-12 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvolverSweep,
                         ::testing::Values(4, 16, 33, 64, 100));

TEST(Convolver, RetardedFermionRecoversLorentzian) {
  // d(E) = G^R - G^A for G^R = 1/(E - e0 + i gamma); the causal window must
  // reconstruct G^R (not G^A) on the grid interior.
  const int n = 1024;
  const double emin = -10.0, emax = 10.0;
  const double de = (emax - emin) / (n - 1);
  const double e0 = 0.3, gamma = 0.5;
  EnergyConvolver conv(n, de);
  std::vector<cplx> x_lt(n, cplx(0.0)), x_gt(n);
  for (int i = 0; i < n; ++i) {
    const double e = emin + i * de;
    const cplx gr = 1.0 / (cplx(e - e0, gamma));
    x_gt[i] = gr - std::conj(gr);
  }
  std::vector<cplx> x_r;
  conv.retarded_fermion(x_lt, x_gt, x_r);
  for (int i = 0; i < n; ++i) {
    const double e = emin + i * de;
    if (std::abs(e) > 3.0) continue;  // skip window-truncation boundary
    const cplx want = 1.0 / (cplx(e - e0, gamma));
    EXPECT_LT(std::abs(x_r[i] - want), 0.06)
        << "at E=" << e << " got " << x_r[i] << " want " << want;
  }
  // The peak has the retarded sign: Im G^R(e0) = -1/gamma.
  const int ipeak = static_cast<int>(std::round((e0 - emin) / de));
  EXPECT_NEAR(x_r[ipeak].imag(), -1.0 / gamma, 0.1);
}

TEST(Convolver, RetardedMinusAdvancedIsJumpExactly) {
  // For the element pair (i,j)/(j,i) with the lesser/greater symmetry, the
  // discrete identity X^R_ij(E) - conj(X^R_ji(E)) = (X> - X<)_ij(E) holds to
  // machine precision by construction of the half-weighted window.
  const int n = 64;
  Rng rng(7);
  EnergyConvolver conv(n, 0.05);
  const auto lt_ij = random_series(n, rng);
  const auto gt_ij = random_series(n, rng);
  std::vector<cplx> lt_ji(n), gt_ji(n);
  for (int i = 0; i < n; ++i) {
    lt_ji[i] = -std::conj(lt_ij[i]);
    gt_ji[i] = -std::conj(gt_ij[i]);
  }
  std::vector<cplx> r_ij, r_ji;
  conv.retarded_fermion(lt_ij, gt_ij, r_ij);
  conv.retarded_fermion(lt_ji, gt_ji, r_ji);
  for (int i = 0; i < n; ++i) {
    const cplx jump = gt_ij[i] - lt_ij[i];
    EXPECT_LT(std::abs(r_ij[i] - std::conj(r_ji[i]) - jump), 1e-11);
  }
}

TEST(Convolver, RetardedBosonMatchesShiftedFermionWindow) {
  // The boson path is the fermion window applied to the centred full-range
  // array; verify by assembling that array manually.
  const int n = 48;
  Rng rng(9);
  const double de = 0.02;
  EnergyConvolver conv(n, de);
  const auto x_lt = random_series(n, rng);
  const auto x_gt = random_series(n, rng);
  std::vector<cplx> got;
  conv.retarded_boson(x_lt, x_gt, got);

  const int full = 2 * n - 1, s = n - 1;
  EnergyConvolver conv_full(full, de);
  std::vector<cplx> flt(full, cplx(0.0)), fgt(full, cplx(0.0));
  for (int k = 0; k < n; ++k) fgt[k + s] = x_gt[k] - x_lt[k];
  for (int k = 1; k < n; ++k)
    fgt[s - k] = boson_negative(x_lt, k) - boson_negative(x_gt, k);
  std::vector<cplx> rfull;
  conv_full.retarded_fermion(flt, fgt, rfull);
  // Padded lengths differ (3N-2 vs 3(2N-1)-2 rounded up to powers of two),
  // so only compare when they coincide; otherwise check the invariant parts.
  // Instead, compare against an independently padded run of the same size.
  // Simplest robust check: the discrete R-A identity on the boson grid.
  std::vector<cplx> lt_ji(n), gt_ji(n), r_ji;
  for (int k = 0; k < n; ++k) {
    lt_ji[k] = -std::conj(x_lt[k]);
    gt_ji[k] = -std::conj(x_gt[k]);
  }
  conv.retarded_boson(lt_ji, gt_ji, r_ji);
  for (int k = 0; k < n; ++k) {
    const cplx jump = x_gt[k] - x_lt[k];
    EXPECT_LT(std::abs(got[k] - std::conj(r_ji[k]) - jump), 1e-11);
  }
  (void)rfull;
}

TEST(Convolver, PolarizationPreservesLesserGreaterSymmetry) {
  // If the inputs are a consistent (i,j) element of anti-Hermitian G≶, then
  // P computed for (j,i) must equal -conj(P for (i,j)) at every w >= 0.
  const int n = 40;
  Rng rng(11);
  EnergyConvolver conv(n, 0.03);
  const auto g_lt = random_series(n, rng);
  const auto g_gt = random_series(n, rng);
  std::vector<cplx> lt_ji(n), gt_ji(n);
  for (int i = 0; i < n; ++i) {
    lt_ji[i] = -std::conj(g_lt[i]);
    gt_ji[i] = -std::conj(g_gt[i]);
  }
  std::vector<cplx> p_lt, p_gt, q_lt, q_gt;
  conv.polarization(g_lt, g_gt, p_lt, p_gt);
  conv.polarization(lt_ji, gt_ji, q_lt, q_gt);
  for (int k = 0; k < n; ++k) {
    EXPECT_LT(std::abs(q_lt[k] + std::conj(p_lt[k])), 1e-12 * n);
    EXPECT_LT(std::abs(q_gt[k] + std::conj(p_gt[k])), 1e-12 * n);
  }
}

TEST(Convolver, SelfEnergyPreservesLesserGreaterSymmetry) {
  const int n = 40;
  Rng rng(13);
  EnergyConvolver conv(n, 0.03);
  const auto g_lt = random_series(n, rng);
  const auto g_gt = random_series(n, rng);
  const auto w_lt = random_series(n, rng);
  const auto w_gt = random_series(n, rng);
  std::vector<cplx> glt_ji(n), ggt_ji(n), wlt_ji(n), wgt_ji(n);
  for (int i = 0; i < n; ++i) {
    glt_ji[i] = -std::conj(g_lt[i]);
    ggt_ji[i] = -std::conj(g_gt[i]);
    wlt_ji[i] = -std::conj(w_lt[i]);
    wgt_ji[i] = -std::conj(w_gt[i]);
  }
  std::vector<cplx> s_lt, s_gt, t_lt, t_gt;
  conv.self_energy(g_lt, g_gt, w_lt, w_gt, s_lt, s_gt);
  conv.self_energy(glt_ji, ggt_ji, wlt_ji, wgt_ji, t_lt, t_gt);
  for (int k = 0; k < n; ++k) {
    EXPECT_LT(std::abs(t_lt[k] + std::conj(s_lt[k])), 1e-12 * n);
    EXPECT_LT(std::abs(t_gt[k] + std::conj(s_gt[k])), 1e-12 * n);
  }
}

}  // namespace
}  // namespace qtx::fft
