// Tests for the selected solvers (src/rgf): sequential RGF (paper Eqs. 9-12)
// against dense references, symmetry preservation (§5.2), and the
// nested-dissection domain decomposition (§5.4) against the sequential
// solver for every partition count.

#include <gtest/gtest.h>

#include "rgf/nested_dissection.hpp"
#include "rgf/sequential.hpp"

namespace qtx::rgf {
namespace {

/// A well-conditioned random problem with anti-Hermitian right-hand sides —
/// the structure of the physical lesser/greater injections.
struct Problem {
  BlockTridiag m, bl, bg;
};

Problem random_problem(int nb, int bs, std::uint64_t seed,
                       bool anti_hermitian_rhs = true) {
  Rng rng(seed);
  Problem p{BlockTridiag::random_diag_dominant(nb, bs, rng),
            BlockTridiag::random_diag_dominant(nb, bs, rng),
            BlockTridiag::random_diag_dominant(nb, bs, rng)};
  if (anti_hermitian_rhs) {
    p.bl.anti_hermitize();
    p.bg.anti_hermitize();
  }
  return p;
}

class RgfSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RgfSweep, RetardedMatchesDenseInverse) {
  const auto [nb, bs] = GetParam();
  const Problem p = random_problem(nb, bs, 100 + nb * 10 + bs);
  const BlockTridiag got = rgf_retarded(p.m);
  const BlockTridiag want = reference_retarded(p.m);
  EXPECT_LT(bt::max_abs_diff(got, want), 1e-10 * nb);
}

TEST_P(RgfSweep, LesserGreaterMatchDenseSolve) {
  const auto [nb, bs] = GetParam();
  const Problem p = random_problem(nb, bs, 200 + nb * 10 + bs);
  RgfOptions opt;
  opt.symmetrize = false;  // compare the raw algebra first
  const SelectedSolution got = rgf_solve(p.m, p.bl, p.bg, opt);
  const SelectedSolution want = reference_solve(p.m, p.bl, p.bg);
  EXPECT_LT(bt::max_abs_diff(got.xr, want.xr), 1e-10 * nb);
  EXPECT_LT(bt::max_abs_diff(got.xl, want.xl), 1e-9 * nb);
  EXPECT_LT(bt::max_abs_diff(got.xg, want.xg), 1e-9 * nb);
}

TEST_P(RgfSweep, GeneralNonSymmetricRhsStillMatchesDense) {
  // The implementation must be exact for arbitrary B, not only for
  // anti-Hermitian physical inputs.
  const auto [nb, bs] = GetParam();
  const Problem p = random_problem(nb, bs, 300 + nb * 10 + bs,
                                   /*anti_hermitian_rhs=*/false);
  RgfOptions opt;
  opt.symmetrize = false;
  const SelectedSolution got = rgf_solve(p.m, p.bl, p.bg, opt);
  const SelectedSolution want = reference_solve(p.m, p.bl, p.bg);
  EXPECT_LT(bt::max_abs_diff(got.xl, want.xl), 1e-9 * nb);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RgfSweep,
                         ::testing::Values(std::pair{2, 3}, std::pair{3, 1},
                                           std::pair{4, 4}, std::pair{6, 5},
                                           std::pair{10, 3},
                                           std::pair{16, 2}));

TEST(Rgf, SymmetrizationPreservesAntiHermitianSolutions) {
  // With anti-Hermitian B the exact solution is anti-Hermitian, so the §5.2
  // projection must be a no-op up to roundoff.
  const Problem p = random_problem(6, 4, 42);
  RgfOptions raw{.symmetrize = false};
  RgfOptions sym{.symmetrize = true};
  const SelectedSolution a = rgf_solve(p.m, p.bl, p.bg, raw);
  const SelectedSolution b = rgf_solve(p.m, p.bl, p.bg, sym);
  EXPECT_LT(bt::max_abs_diff(a.xl, b.xl), 1e-10);
  EXPECT_TRUE(b.xl.is_anti_hermitian(1e-12));
  EXPECT_TRUE(b.xg.is_anti_hermitian(1e-12));
}

TEST(Rgf, SingleBlockSystem) {
  BlockTridiag m1(1, 4), bl1(1, 4), bg1(1, 4);
  Rng rng(8);
  m1.diag(0) = la::Matrix::random_diag_dominant(4, rng);
  bl1.diag(0) = la::Matrix::random(4, 4, rng);
  bl1.anti_hermitize();
  bg1.diag(0) = la::Matrix::random(4, 4, rng);
  bg1.anti_hermitize();
  const SelectedSolution s = rgf_solve(m1, bl1, bg1);
  const la::Matrix minv = la::inverse(m1.diag(0));
  EXPECT_LT(la::max_abs_diff(s.xr.diag(0), minv), 1e-11);
  const la::Matrix want = la::mmh(la::mm(minv, bl1.diag(0)), minv);
  EXPECT_LT(la::max_abs_diff(s.xl.diag(0), want), 1e-11);
}

class NdSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(NdSweep, MatchesSequentialSolver) {
  const auto [nb, bs, ps, threads] = GetParam();
  const Problem p = random_problem(nb, bs, 400 + nb * 100 + ps);
  RgfOptions sopt;
  sopt.symmetrize = false;
  const SelectedSolution seq = rgf_solve(p.m, p.bl, p.bg, sopt);
  NdOptions nopt;
  nopt.num_partitions = ps;
  nopt.num_threads = threads;
  nopt.symmetrize = false;
  const NdSolution nd = nd_solve(p.m, p.bl, p.bg, nopt);
  EXPECT_LT(bt::max_abs_diff(nd.sel.xr, seq.xr), 1e-9 * nb) << "retarded";
  EXPECT_LT(bt::max_abs_diff(nd.sel.xl, seq.xl), 1e-8 * nb) << "lesser";
  EXPECT_LT(bt::max_abs_diff(nd.sel.xg, seq.xg), 1e-8 * nb) << "greater";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NdSweep,
    ::testing::Values(std::tuple{4, 3, 2, 1},    // smallest split
                      std::tuple{6, 2, 2, 1},
                      std::tuple{6, 2, 3, 1},    // one middle partition
                      std::tuple{8, 3, 3, 1},
                      std::tuple{9, 2, 4, 1},    // two middle partitions
                      std::tuple{12, 3, 4, 2},   // threaded
                      std::tuple{16, 2, 5, 4},
                      std::tuple{13, 3, 3, 2},   // uneven partitions
                      std::tuple{10, 4, 5, 1},
                      std::tuple{24, 2, 6, 3}));

TEST(NestedDissection, PartitionRangesCoverAllBlocks) {
  for (const auto& [nb, ps] : std::vector<std::pair<int, int>>{
           {8, 2}, {9, 3}, {17, 4}, {24, 5}}) {
    const auto ranges = nd_partition_ranges(nb, ps);
    ASSERT_EQ(static_cast<int>(ranges.size()), ps);
    EXPECT_EQ(ranges.front().first, 0);
    EXPECT_EQ(ranges.back().second, nb - 1);
    for (int p = 1; p < ps; ++p)
      EXPECT_EQ(ranges[p].first, ranges[p - 1].second + 1);
    for (const auto& [s, e] : ranges) EXPECT_GE(e - s + 1, 2);
  }
}

TEST(NestedDissection, RejectsTooManyPartitions) {
  const Problem p = random_problem(4, 2, 9);
  NdOptions opt;
  opt.num_partitions = 3;  // 4 blocks cannot host 3 partitions of >= 2
  EXPECT_THROW(nd_solve(p.m, p.bl, p.bg, opt), std::runtime_error);
}

TEST(NestedDissection, MiddlePartitionsCarryFillInWorkload) {
  // Paper Table 5: boundary partitions perform ~60% of the middle
  // partitions' workload because of the fill-in blocks.
  const Problem p = random_problem(32, 4, 10);
  NdOptions opt;
  opt.num_partitions = 4;
  const NdSolution nd = nd_solve(p.m, p.bl, p.bg, opt);
  ASSERT_EQ(nd.stats.size(), 4u);
  const double top = static_cast<double>(nd.stats.front().flops);
  const double mid = static_cast<double>(nd.stats[1].flops);
  EXPECT_GT(mid, top) << "fill-in must make middle partitions heavier";
  const double ratio = top / mid;
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.95);
}

TEST(NestedDissection, SymmetrizedOutputsSatisfyLesserSymmetry) {
  const Problem p = random_problem(12, 3, 11);
  NdOptions opt;
  opt.num_partitions = 3;
  const NdSolution nd = nd_solve(p.m, p.bl, p.bg, opt);
  EXPECT_TRUE(nd.sel.xl.is_anti_hermitian(1e-11));
  EXPECT_TRUE(nd.sel.xg.is_anti_hermitian(1e-11));
}

TEST(NestedDissection, ReducedSystemWorkloadScalesWithPartitions) {
  // Paper §5.4: the reduced system adds O(P_S N_BS^3) work.
  const Problem p = random_problem(24, 3, 12);
  std::int64_t prev = 0;
  for (const int ps : {2, 4, 6}) {
    NdOptions opt;
    opt.num_partitions = ps;
    const NdSolution nd = nd_solve(p.m, p.bl, p.bg, opt);
    EXPECT_GT(nd.reduced_flops, prev);
    prev = nd.reduced_flops;
  }
}


TEST(NestedDissection, RecursiveReducedSolveMatchesSequential) {
  // §5.4's extension: the reduced system is itself solved with nested
  // dissection. Large partition count so the reduced system (2 P_S - 2
  // blocks) is big enough to recurse.
  const Problem p = random_problem(24, 3, 21);
  RgfOptions sopt;
  sopt.symmetrize = false;
  const SelectedSolution seq = rgf_solve(p.m, p.bl, p.bg, sopt);
  NdOptions opt;
  opt.num_partitions = 8;  // reduced system: 14 blocks
  opt.recursive_reduced = true;
  opt.symmetrize = false;
  const NdSolution nd = nd_solve(p.m, p.bl, p.bg, opt);
  EXPECT_LT(bt::max_abs_diff(nd.sel.xr, seq.xr), 1e-9);
  EXPECT_LT(bt::max_abs_diff(nd.sel.xl, seq.xl), 1e-8);
  EXPECT_LT(bt::max_abs_diff(nd.sel.xg, seq.xg), 1e-8);
}

TEST(NestedDissection, RecursiveAndFlatReducedAgree) {
  const Problem p = random_problem(20, 4, 22);
  NdOptions flat;
  flat.num_partitions = 5;
  const NdSolution a = nd_solve(p.m, p.bl, p.bg, flat);
  NdOptions rec = flat;
  rec.recursive_reduced = true;
  const NdSolution b = nd_solve(p.m, p.bl, p.bg, rec);
  EXPECT_LT(bt::max_abs_diff(a.sel.xl, b.sel.xl), 1e-9);
}

}  // namespace
}  // namespace qtx::rgf
