// Tests for the parallel energy-loop execution engine: the work-stealing
// par::ThreadPool, the energy_grid.hpp batching properties, the executor
// registry keys, and — the load-bearing guarantee — bit-identical
// TransportResults for every thread count on all three stop-reason paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/flops.hpp"
#include "common/timer.hpp"
#include "core/observables.hpp"
#include "core/simulation.hpp"
#include "par/thread_pool.hpp"

namespace qtx::core {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  par::ThreadPool pool(8);
  EXPECT_EQ(pool.size(), 8);
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  par::ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](int) { count.fetch_add(1); });
  pool.parallel_for(-5, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  // Fewer tasks than workers: every index still runs exactly once.
  pool.parallel_for(3, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, FlopLedgerSafeToPollDuringThreadedRun) {
  // Regression (data race): total()/by_phase() used to read the per-thread
  // counter blocks without synchronizing against the owners' lock-free
  // add() writes. Under TSan this test reported the race; it now passes
  // because observers take each block's mutex. The observer polls total()
  // and by_phase() continuously while pool workers hammer add().
  FlopLedger::reset();
  par::ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::int64_t max_seen = 0;
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::int64_t t = FlopLedger::total();
      EXPECT_GE(t, max_seen);  // totals only grow while workers add
      max_seen = t;
      for (const auto& [phase, flops] : FlopLedger::by_phase())
        EXPECT_GE(flops, 0) << phase;
    }
  });
  const int n = 2000, per_task = 7;
  pool.parallel_for(n, [&](int i) {
    FlopPhase phase(i % 2 == 0 ? "even" : "odd");
    for (int k = 0; k < 100; ++k) FlopLedger::add(per_task);
  });
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_EQ(FlopLedger::total(), std::int64_t{n} * 100 * per_task);
  const auto phases = FlopLedger::by_phase();
  EXPECT_EQ(phases.at("even") + phases.at("odd"), FlopLedger::total());
  FlopLedger::reset();
}

TEST(ThreadPool, TimerRegistrySafeToPollDuringThreadedRun) {
  // Regression (data race): TimerRegistry::add used to accumulate into a
  // single map under one global mutex, and all()/seconds() read it back
  // while workers were mid-add. The registry now uses per-thread blocks
  // (same immortal-block pattern as FlopLedger); observers lock the
  // registry plus each block. The observer polls all() and seconds()
  // continuously while pool workers hammer add().
  TimerRegistry::reset();
  par::ThreadPool pool(4);
  std::atomic<bool> stop{false};
  double max_seen = 0.0;
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const double t = TimerRegistry::seconds("poll: work");
      EXPECT_GE(t, max_seen);  // totals only grow while workers add
      max_seen = t;
      for (const auto& [name, secs] : TimerRegistry::all())
        EXPECT_GE(secs, 0.0) << name;
    }
  });
  const int n = 2000;
  const double per_task = 0.001;
  pool.parallel_for(n, [&](int i) {
    TimerRegistry::add("poll: work", per_task);
    TimerRegistry::add(i % 2 == 0 ? "poll: even" : "poll: odd", per_task);
  });
  stop.store(true, std::memory_order_release);
  observer.join();
  EXPECT_NEAR(TimerRegistry::seconds("poll: work"), n * per_task, 1e-9);
  const auto all = TimerRegistry::all();
  EXPECT_NEAR(all.at("poll: even") + all.at("poll: odd"), n * per_task,
              1e-9);
  TimerRegistry::reset();
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  par::ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 100; ++round)
    pool.parallel_for(32, [&](int i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 100L * (31 * 32 / 2));
}

TEST(ThreadPool, PropagatesTaskExceptionsToCaller) {
  par::ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(64, [&](int i) {
      if (i == 7) throw std::runtime_error("task 7 failed");
      ran.fetch_add(1);
    });
    FAIL() << "expected the task exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 failed");
  }
  // The pool must survive a failed job and stay usable.
  pool.parallel_for(8, [&](int) { ran.fetch_add(1); });
  EXPECT_GE(ran.load(), 8);
}

TEST(ThreadPool, SingleWorkerRunsAllTasks) {
  par::ThreadPool pool(1);
  std::vector<int> order;
  // One worker drains its own deque front-out, so submission order holds.
  pool.parallel_for(16, [&](int i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, RejectsNonPositiveWorkerCount) {
  EXPECT_THROW(par::ThreadPool(0), std::runtime_error);
  EXPECT_THROW(par::ThreadPool(-2), std::runtime_error);
  EXPECT_GE(par::ThreadPool::hardware_threads(), 1);
}

// ---------------------------------------------------------------------------
// Energy-grid batching properties
// ---------------------------------------------------------------------------

/// The one invariant everything rests on: the batches tile [0, n) exactly —
/// contiguous, ordered, non-empty, sequentially indexed, sizes <= batch.
void expect_exact_cover(int n, int batch) {
  const std::vector<EnergyBatch> batches = make_energy_batches(n, batch);
  const int eff = batch <= 0 ? 1 : batch;
  ASSERT_EQ(static_cast<int>(batches.size()), (n + eff - 1) / eff)
      << "n=" << n << " batch=" << batch;
  int expected_begin = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const EnergyBatch& b = batches[i];
    EXPECT_EQ(b.index, static_cast<int>(i));
    EXPECT_EQ(b.begin, expected_begin) << "n=" << n << " batch=" << batch;
    EXPECT_GT(b.size(), 0);
    EXPECT_LE(b.size(), eff);
    expected_begin = b.end;
  }
  EXPECT_EQ(expected_begin, n) << "n=" << n << " batch=" << batch;
}

TEST(EnergyBatches, CoverTheGridExactlyOnceForArbitraryPairs) {
  for (const int n : {0, 1, 2, 3, 5, 7, 16, 24, 63, 64, 65, 97, 256})
    for (const int batch : {0, 1, 2, 3, 5, 8, 16, 64, 100, 1000})
      expect_exact_cover(n, batch);
}

TEST(EnergyBatches, BatchLargerThanGridYieldsOneBatch) {
  const auto batches = make_energy_batches(5, 100);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].begin, 0);
  EXPECT_EQ(batches[0].end, 5);
}

TEST(EnergyBatches, BatchOneYieldsSingletons) {
  const auto batches = make_energy_batches(7, 1);
  ASSERT_EQ(batches.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(batches[i].begin, i);
    EXPECT_EQ(batches[i].size(), 1);
  }
}

TEST(EnergyBatches, AutoPolicyIsOnePointPerBatch) {
  EXPECT_EQ(make_energy_batches(24, 0).size(), 24u);
  EXPECT_TRUE(make_energy_batches(0, 0).empty());
}

TEST(EnergyBatches, RaggedTailIsShorter) {
  const auto batches = make_energy_batches(10, 4);  // 4 + 4 + 2
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[2].begin, 8);
  EXPECT_EQ(batches[2].size(), 2);
}

// ---------------------------------------------------------------------------
// Executor registry
// ---------------------------------------------------------------------------

TEST(ExecutorRegistry, BuiltinsAreRegistered) {
  const StageRegistry reg = StageRegistry::with_builtins();
  const auto keys = reg.executor_keys();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "sequential"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "omp"), keys.end());
}

TEST(ExecutorRegistry, UnknownKeyFailsWithKnownKeyList) {
  const StageRegistry reg = StageRegistry::with_builtins();
  SimulationOptions opt;
  try {
    (void)reg.make_executor("cuda-graphs", opt);
    FAIL() << "expected unknown-key failure";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown energy-loop executor"), std::string::npos);
    EXPECT_NE(msg.find("\"omp\""), std::string::npos);
    EXPECT_NE(msg.find("\"sequential\""), std::string::npos);
  }
}

TEST(ExecutorRegistry, AutoResolvesFromThreadCount) {
  SimulationOptions opt;
  EXPECT_EQ(opt.resolved_executor(), "sequential");
  opt.num_threads = 4;
  EXPECT_EQ(opt.resolved_executor(), "omp");
  opt.executor = "sequential";  // explicit key wins over the thread count
  EXPECT_EQ(opt.resolved_executor(), "sequential");
}

// ---------------------------------------------------------------------------
// Determinism: bit-identical results for every thread count
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t mix(std::uint64_t hash, double value) {
  return fnv1a(hash, std::bit_cast<std::uint64_t>(value));
}

/// Hash of every iteration observable of a finished run: the per-iteration
/// convergence metrics plus the physical observables derived from the final
/// Green's-function state. Any single-bit divergence between schedules
/// changes this value.
std::uint64_t observable_hash(const Simulation& sim,
                              const TransportResult& res) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, static_cast<std::uint64_t>(res.iterations));
  h = fnv1a(h, static_cast<std::uint64_t>(res.stop_reason));
  for (const IterationResult& it : res.history) h = mix(h, it.sigma_update);
  for (const double v : total_dos(sim)) h = mix(h, v);
  for (const double v : electron_density(sim)) h = mix(h, v);
  for (const double v : transmission(sim)) h = mix(h, v);
  for (const double v : spectral_current_left(sim)) h = mix(h, v);
  h = mix(h, terminal_current_left(sim));
  h = mix(h, terminal_current_right(sim));
  return h;
}

SimulationBuilder det_builder(const device::Structure& st) {
  const auto gap = st.band_gap();
  return SimulationBuilder(st)
      .grid(-6.0, 6.0, 24)
      .eta(0.05)
      .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
      .gw(0.25)
      .mixing(0.4)
      .max_iterations(3)
      .tolerance(1e-3);
}

struct RunDigest {
  std::uint64_t hash = 0;
  StopReason stop = StopReason::kNone;
  int iterations = 0;
  obc::MemoizerStats obc;
};

RunDigest run_digest(SimulationBuilder builder, int threads) {
  Simulation sim = builder.num_threads(threads).build();
  const TransportResult res = sim.run();
  RunDigest d;
  d.hash = observable_hash(sim, res);
  d.stop = res.stop_reason;
  d.iterations = res.iterations;
  d.obc = sim.memoizer_stats();
  return d;
}

void expect_thread_count_invariant(const SimulationBuilder& builder,
                                   StopReason expected_stop) {
  const RunDigest seq = run_digest(builder, 1);
  EXPECT_EQ(seq.stop, expected_stop);
  for (const int threads : {2, 8}) {
    const RunDigest par = run_digest(builder, threads);
    EXPECT_EQ(par.hash, seq.hash)
        << "num_threads = " << threads
        << " diverged from the sequential path";
    EXPECT_EQ(par.stop, seq.stop);
    EXPECT_EQ(par.iterations, seq.iterations);
    // The dispatch decisions (direct vs memoized OBC solves) must match
    // too: caches are keyed per energy, not per worker.
    EXPECT_EQ(par.obc.direct_calls, seq.obc.direct_calls);
    EXPECT_EQ(par.obc.memoized_calls, seq.obc.memoized_calls);
    EXPECT_EQ(par.obc.fpi_iterations, seq.obc.fpi_iterations);
  }
}

TEST(Determinism, ConvergedGwRunIsBitIdenticalAcrossThreadCounts) {
  const device::Structure st = device::make_test_structure(3);
  expect_thread_count_invariant(
      det_builder(st).tolerance(10.0).max_iterations(10),
      StopReason::kConverged);
}

TEST(Determinism, BudgetExhaustedRunIsBitIdenticalAcrossThreadCounts) {
  const device::Structure st = device::make_test_structure(3);
  expect_thread_count_invariant(det_builder(st).tolerance(1e-12),
                                StopReason::kBudgetExhausted);
}

TEST(Determinism, NonInteractingRunIsBitIdenticalAcrossThreadCounts) {
  const device::Structure st = device::make_test_structure(3);
  expect_thread_count_invariant(det_builder(st).ballistic(),
                                StopReason::kNonInteracting);
}

TEST(Determinism, BatchLayoutDoesNotChangeResults) {
  // Stronger than the headline guarantee: even different batch layouts are
  // bit-identical, because all per-batch state is keyed by energy index.
  const device::Structure st = device::make_test_structure(3);
  const RunDigest base = run_digest(det_builder(st).energy_batch(0), 2);
  for (const int batch : {1, 3, 24, 100}) {
    const RunDigest d = run_digest(det_builder(st).energy_batch(batch), 2);
    EXPECT_EQ(d.hash, base.hash) << "energy_batch = " << batch;
  }
}

TEST(Determinism, ExplicitOmpExecutorWithOneWorkerMatchesSequential) {
  const device::Structure st = device::make_test_structure(3);
  const RunDigest seq = run_digest(det_builder(st).executor("sequential"), 1);
  const RunDigest omp = run_digest(det_builder(st).executor("omp"), 1);
  EXPECT_EQ(omp.hash, seq.hash);
}

TEST(Pipeline, SimulationExposesResolvedPolicy) {
  const device::Structure st = device::make_test_structure(3);
  Simulation seq = det_builder(st).build();
  EXPECT_EQ(seq.pipeline().executor_name(), "sequential");
  EXPECT_EQ(seq.pipeline().concurrency(), 1);
  EXPECT_EQ(seq.pipeline().num_batches(), 24);  // auto: 1 point per batch
  Simulation par = det_builder(st).num_threads(4).energy_batch(6).build();
  EXPECT_EQ(par.pipeline().executor_name(), "omp");
  EXPECT_EQ(par.pipeline().concurrency(), 4);
  EXPECT_EQ(par.pipeline().num_batches(), 4);
}

}  // namespace
}  // namespace qtx::core
