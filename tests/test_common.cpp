/// \file test_common.cpp
/// Unit tests for the src/common layer: deterministic RNG, wall-clock timers,
/// the FLOP ledger, and QTX_CHECK failure behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/reduction.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace qtx {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, SameSeedSameComplexSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.complex_uniform(), b.complex_uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int identical = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++identical;
  }
  EXPECT_LT(identical, 100);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, ComplexUniformInUnitSquare) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const cplx z = rng.complex_uniform();
    EXPECT_GE(z.real(), -1.0);
    EXPECT_LE(z.real(), 1.0);
    EXPECT_GE(z.imag(), -1.0);
    EXPECT_LE(z.imag(), 1.0);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, EngineIsReseedable) {
  Rng rng(11);
  const double first = rng.uniform();
  rng.engine().seed(11);
  EXPECT_EQ(rng.uniform(), first);
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

TEST(Timer, StopwatchIsMonotonic) {
  Stopwatch sw;
  double prev = sw.seconds();
  EXPECT_GE(prev, 0.0);
  for (int i = 0; i < 10; ++i) {
    const double now = sw.seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Timer, StopwatchRestartResets) {
  Stopwatch sw;
  // Long enough that a post-restart reading below `before` proves a reset
  // even when the scheduler preempts between restart() and seconds().
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const double before = sw.seconds();
  EXPECT_GT(before, 0.0);
  sw.restart();
  EXPECT_LT(sw.seconds(), before);
}

TEST(Timer, RegistryAccumulates) {
  TimerRegistry::reset();
  TimerRegistry::add("phase_a", 1.5);
  TimerRegistry::add("phase_a", 0.5);
  TimerRegistry::add("phase_b", 2.0);
  EXPECT_DOUBLE_EQ(TimerRegistry::seconds("phase_a"), 2.0);
  EXPECT_DOUBLE_EQ(TimerRegistry::seconds("phase_b"), 2.0);
  EXPECT_DOUBLE_EQ(TimerRegistry::seconds("never_recorded"), 0.0);
  const auto all = TimerRegistry::all();
  EXPECT_EQ(all.size(), 2u);
  TimerRegistry::reset();
  EXPECT_DOUBLE_EQ(TimerRegistry::seconds("phase_a"), 0.0);
  EXPECT_TRUE(TimerRegistry::all().empty());
}

TEST(Timer, ScopedTimerRecordsElapsedTime) {
  TimerRegistry::reset();
  {
    ScopedTimer t("scoped_test");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(TimerRegistry::seconds("scoped_test"), 0.0);
  TimerRegistry::reset();
}

// ---------------------------------------------------------------------------
// FlopLedger
// ---------------------------------------------------------------------------

TEST(Flops, LedgerAccumulatesPerPhase) {
  FlopLedger::reset();
  FlopLedger::begin_phase("phase1");
  FlopLedger::add(100);
  FlopLedger::add(50);
  FlopLedger::begin_phase("phase2");
  FlopLedger::add(25);
  EXPECT_EQ(FlopLedger::total(), 175);
  const auto by_phase = FlopLedger::by_phase();
  EXPECT_EQ(by_phase.at("phase1"), 150);
  EXPECT_EQ(by_phase.at("phase2"), 25);
  FlopLedger::reset();
  EXPECT_EQ(FlopLedger::total(), 0);
}

TEST(Flops, PhaseRaiiRestoresPreviousPhase) {
  FlopLedger::reset();
  FlopLedger::begin_phase("outer");
  FlopLedger::add(10);
  {
    FlopPhase inner("inner");
    FlopLedger::add(20);
  }
  FlopLedger::add(30);
  const auto by_phase = FlopLedger::by_phase();
  EXPECT_EQ(by_phase.at("outer"), 40);
  EXPECT_EQ(by_phase.at("inner"), 20);
  FlopLedger::reset();
}

TEST(Flops, ThreadsAccumulateConcurrently) {
  FlopLedger::reset();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t] {
      FlopLedger::begin_phase("worker" + std::to_string(t));
      for (int i = 0; i < 1000; ++i) FlopLedger::add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(FlopLedger::total(), 4000);
  FlopLedger::reset();
}

TEST(Flops, CountFormulas) {
  // One complex multiply-add = 8 real ops.
  EXPECT_EQ(flop_count::gemm(2, 3, 4), 8 * 2 * 3 * 4);
  EXPECT_EQ(flop_count::lu(6), 8 * 6 * 6 * 6 / 3);
  EXPECT_EQ(flop_count::lu_solve(5, 3), 8 * 5 * 5 * 3);
  EXPECT_EQ(flop_count::inverse(5),
            flop_count::lu(5) + flop_count::lu_solve(5, 5));
  EXPECT_EQ(flop_count::axpy(7), 56);
  // fft(8): log2(8) = 3 -> 5 * 8 * 3.
  EXPECT_EQ(flop_count::fft(8), 5 * 8 * 3);
  // Non-power-of-two rounds the log up: log2(9) -> 4.
  EXPECT_EQ(flop_count::fft(9), 5 * 9 * 4);
}

// ---------------------------------------------------------------------------
// QTX_CHECK
// ---------------------------------------------------------------------------

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(QTX_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(QTX_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailingCheckThrowsRuntimeError) {
  EXPECT_THROW(QTX_CHECK(false), std::runtime_error);
}

TEST(Check, FailureMessageContainsExpressionAndLocation) {
  try {
    QTX_CHECK(2 > 3);
    FAIL() << "QTX_CHECK(2 > 3) did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos) << what;
  }
}

TEST(Check, MsgVariantIncludesStreamedMessage) {
  try {
    QTX_CHECK_MSG(false, "n=" << 42 << " out of range");
    FAIL() << "QTX_CHECK_MSG did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n=42 out of range"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// types.hpp helpers
// ---------------------------------------------------------------------------

TEST(Types, FermiDiracLimits) {
  // Deep below mu -> 1, far above -> 0, at mu -> 1/2.
  EXPECT_DOUBLE_EQ(fermi_dirac(-10.0, 0.0, kRoomTemperatureK), 1.0);
  EXPECT_DOUBLE_EQ(fermi_dirac(10.0, 0.0, kRoomTemperatureK), 0.0);
  EXPECT_NEAR(fermi_dirac(0.0, 0.0, kRoomTemperatureK), 0.5, 1e-12);
}

TEST(Types, FermiDiracMonotoneDecreasing) {
  double prev = 1.0;
  for (double e = -1.0; e <= 1.0; e += 0.05) {
    const double f = fermi_dirac(e, 0.0, kRoomTemperatureK);
    EXPECT_LE(f, prev + 1e-15);
    prev = f;
  }
}

// ---------------------------------------------------------------------------
// Reduction
// ---------------------------------------------------------------------------

TEST(Reduction, OrderedSumMatchesManualAscendingFold) {
  // The contract is the *exact* fold order, not just the value: the result
  // must be bit-identical to a left-to-right accumulation in index order.
  std::vector<double> partials;
  Rng rng(1234);
  for (int i = 0; i < 64; ++i) partials.push_back(rng.uniform());
  double manual = 0.0;
  for (const double p : partials) manual += p;
  EXPECT_EQ(ordered_sum(partials), manual);
}

TEST(Reduction, OrderedSumComplexFoldsBothParts) {
  std::vector<cplx> partials;
  Rng rng(99);
  for (int i = 0; i < 32; ++i) partials.push_back(rng.complex_uniform());
  cplx manual = 0.0;
  for (const cplx& p : partials) manual += p;
  const cplx got = ordered_sum(partials);
  EXPECT_EQ(got.real(), manual.real());
  EXPECT_EQ(got.imag(), manual.imag());
}

TEST(Reduction, OrderedSumRealDropsImaginaryParts) {
  // par::Comm ships scalars as complex payloads; the real fold must be
  // bit-identical to summing the real parts alone in index order.
  const std::vector<cplx> partials = {
      {0.1, 7.0}, {0.2, -3.0}, {0.3, 1.5}, {-0.05, 100.0}};
  double manual = 0.0;
  for (const cplx& p : partials) manual += p.real();
  EXPECT_EQ(ordered_sum_real(partials), manual);
}

TEST(Reduction, EmptyPartialsSumToZero) {
  EXPECT_EQ(ordered_sum(std::vector<double>{}), 0.0);
  EXPECT_EQ(ordered_sum(std::vector<cplx>{}), cplx(0.0));
  EXPECT_EQ(ordered_sum_real({}), 0.0);
}

TEST(Reduction, OrderSensitivityIsRealAndPinned) {
  // Floating-point addition is not associative: reversing the fold order of
  // these values changes the result ((0.1 + 0.2) + 0.3 != (0.3 + 0.2) + 0.1
  // in binary64). This is exactly why raw `+=` folds over per-energy
  // partials are banned (qtx-lint check `raw-accumulate`) — a refactor that
  // reorders the loop silently changes physics output.
  const std::vector<double> forward = {0.1, 0.2, 0.3};
  const std::vector<double> reversed(forward.rbegin(), forward.rend());
  EXPECT_NE(ordered_sum(forward), ordered_sum(reversed));
  EXPECT_NEAR(ordered_sum(forward), ordered_sum(reversed), 1e-15);
}

}  // namespace
}  // namespace qtx
