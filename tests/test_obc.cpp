// Tests for the open-boundary-condition solvers (src/obc): fixed-point,
// Sancho-Rubio, Beyn (paper §4.2.1), the Stein/Lyapunov solvers (§4.2.2),
// and the OBC memoizer (§5.3). Physical lead blocks come from the synthetic
// device; the three retarded solvers must agree with each other and satisfy
// the surface equation, and the resulting boundary self-energy must have the
// retarded sign (positive broadening).

#include <gtest/gtest.h>

#include "device/structure.hpp"
#include "obc/obc.hpp"

namespace qtx::obc {
namespace {

/// Lead blocks m, n, n' of M(E) = (E + i eta) I - H for the test device.
struct LeadBlocks {
  Matrix m, n, np;
};

LeadBlocks device_lead(double e, double eta) {
  const device::Structure s = device::make_test_structure(4);
  const auto h = s.hamiltonian_bt();
  const int bs = h.block_size();
  Matrix m = Matrix::identity(bs) * cplx(e, eta);
  m -= h.diag(0);
  // Surface couples one cell deeper: n = M_{i,i+1} = -H_upper,
  // n' = M_{i+1,i} = -H_lower.
  Matrix n = h.upper(0) * cplx(-1.0);
  Matrix np = h.lower(0) * cplx(-1.0);
  return {std::move(m), std::move(n), std::move(np)};
}

class SurfaceSolverSweep : public ::testing::TestWithParam<double> {};

TEST_P(SurfaceSolverSweep, FixedPointSatisfiesSurfaceEquation) {
  const auto [m, n, np] = device_lead(GetParam(), 0.05);
  const FixedPointResult r = surface_fixed_point(m, n, np);
  ASSERT_TRUE(r.converged) << "E=" << GetParam();
  EXPECT_LT(surface_residual(r.x, m, n, np), 1e-8);
}

TEST_P(SurfaceSolverSweep, SanchoRubioMatchesFixedPoint) {
  const auto [m, n, np] = device_lead(GetParam(), 0.05);
  const SanchoRubioResult sr = surface_sancho_rubio(m, n, np);
  ASSERT_TRUE(sr.converged);
  EXPECT_LT(surface_residual(sr.x, m, n, np), 1e-8);
  const FixedPointResult fp = surface_fixed_point(m, n, np);
  EXPECT_LT(la::max_abs_diff(sr.x, fp.x), 1e-6);
}

TEST_P(SurfaceSolverSweep, SanchoRubioConvergesFasterThanFixedPoint) {
  // The paper's motivation for decimation: O(10) vs O(100) iterations. Far
  // outside the bands both methods converge immediately, so the comparison
  // only applies where fixed-point is actually slow.
  const auto [m, n, np] = device_lead(GetParam(), 0.05);
  const SanchoRubioResult sr = surface_sancho_rubio(m, n, np);
  const FixedPointResult fp = surface_fixed_point(m, n, np);
  ASSERT_TRUE(sr.converged && fp.converged);
  EXPECT_LE(sr.iterations, 30);
  if (fp.iterations > 30) {
    EXPECT_LT(sr.iterations, fp.iterations);
  }
}

TEST_P(SurfaceSolverSweep, BeynMatchesSanchoRubio) {
  const auto [m, n, np] = device_lead(GetParam(), 0.05);
  const BeynSurfaceResult beyn = surface_beyn(m, n, np);
  ASSERT_TRUE(beyn.ok) << "Beyn found " << beyn.modes_found << " modes";
  EXPECT_LT(surface_residual(beyn.x, m, n, np), 1e-7);
  const SanchoRubioResult sr = surface_sancho_rubio(m, n, np);
  EXPECT_LT(la::max_abs_diff(beyn.x, sr.x), 1e-5);
}

TEST_P(SurfaceSolverSweep, BoundarySelfEnergyHasRetardedSign) {
  // Gamma = i (Sigma_obc - Sigma_obc†) must be positive semi-definite: the
  // leads can only broaden device states.
  const auto [m, n, np] = device_lead(GetParam(), 0.05);
  const SanchoRubioResult sr = surface_sancho_rubio(m, n, np);
  const Matrix sigma = la::mmm(n, sr.x, np);
  Matrix gamma = sigma - sigma.dagger();
  gamma *= kI;
  EXPECT_TRUE(gamma.is_hermitian(1e-8));
  const auto eigs = la::eig_hermitian(gamma);
  for (const double w : eigs.values) EXPECT_GT(w, -1e-7);
}

// Energies spanning below, inside, and above the gap of the test device.
INSTANTIATE_TEST_SUITE_P(Energies, SurfaceSolverSweep,
                         ::testing::Values(-4.5, -2.0, -0.5, 0.0, 0.4, 2.2,
                                           4.4));

TEST(SurfaceBeyn, ModeCountEqualsBlockSize) {
  const auto [m, n, np] = device_lead(0.5, 0.05);
  const BeynSurfaceResult beyn = surface_beyn(m, n, np);
  EXPECT_TRUE(beyn.ok);
  EXPECT_EQ(beyn.modes_found, m.rows());
}

TEST(BeynPevp, LinearProblemRecoversStandardEigenvalues) {
  // A(z) = z I - M: the PEVP reduces to the standard EVP of M. Put known
  // eigenvalues inside and outside the contour.
  Matrix mdiag(4, 4);
  mdiag(0, 0) = cplx(0.2, 0.1);
  mdiag(1, 1) = cplx(-0.4, 0.0);
  mdiag(2, 2) = cplx(1.8, 0.0);   // outside unit circle
  mdiag(3, 3) = cplx(0.0, -0.7);
  std::vector<Matrix> coeffs = {mdiag * cplx(-1.0), Matrix::identity(4)};
  const BeynEigResult r = beyn_pevp(coeffs);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.values.size(), 3u) << "only the three interior eigenvalues";
  for (const cplx want :
       {cplx(0.2, 0.1), cplx(-0.4, 0.0), cplx(0.0, -0.7)}) {
    double best = 1e9;
    for (const auto& v : r.values) best = std::min(best, std::abs(v - want));
    EXPECT_LT(best, 1e-8);
  }
}

TEST(BeynPevp, EmptyContourIsOk) {
  Matrix mdiag(3, 3);
  mdiag(0, 0) = 5.0;
  mdiag(1, 1) = cplx(0.0, 4.0);
  mdiag(2, 2) = -3.0;
  std::vector<Matrix> coeffs = {mdiag * cplx(-1.0), Matrix::identity(3)};
  const BeynEigResult r = beyn_pevp(coeffs);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.values.empty());
}

class SteinSweep : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(SteinSweep, DoublingSolvesContractiveEquation) {
  const auto [n, sigma] = GetParam();
  Rng rng(500 + n);
  Matrix a = Matrix::random(n, n, rng);
  a *= cplx(0.5 / a.frobenius_norm());  // ||A||_2 <= ||A||_F = 0.5 < 1
  const Matrix q = Matrix::random_hermitian(n, rng);
  const SteinResult r = stein_doubling(q, a, sigma);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(stein_residual(r.x, q, a, sigma), 1e-9);
}

TEST_P(SteinSweep, DirectMatchesDoubling) {
  const auto [n, sigma] = GetParam();
  Rng rng(600 + n);
  Matrix a = Matrix::random(n, n, rng);
  a *= cplx(0.5 / a.frobenius_norm());
  const Matrix q = Matrix::random_hermitian(n, rng);
  const SteinResult it = stein_doubling(q, a, sigma);
  const Matrix direct = stein_direct(q, a, sigma);
  ASSERT_TRUE(it.converged);
  EXPECT_LT(la::max_abs_diff(it.x, direct), 1e-8);
  EXPECT_LT(stein_residual(direct, q, a, sigma), 1e-9);
}

TEST_P(SteinSweep, FixedPointWarmStartConvergesFast) {
  const auto [n, sigma] = GetParam();
  Rng rng(700 + n);
  Matrix a = Matrix::random(n, n, rng);
  a *= cplx(0.5 / a.frobenius_norm());
  const Matrix q = Matrix::random_hermitian(n, rng);
  const Matrix exact = stein_direct(q, a, sigma);
  const SteinResult warm = stein_fixed_point(q, a, sigma, exact);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 3);
}

INSTANTIATE_TEST_SUITE_P(Cases, SteinSweep,
                         ::testing::Values(std::pair{3, 1.0},
                                           std::pair{3, -1.0},
                                           std::pair{8, 1.0},
                                           std::pair{8, -1.0},
                                           std::pair{16, -1.0}));

TEST(SteinDirect, SolvesNonContractiveCaseDoublingCannot) {
  // rho(A) > 1 but |l_i l_j| != 1: the series diverges, the direct method
  // does not care.
  Matrix a(2, 2);
  a(0, 0) = 1.6;
  a(1, 1) = 0.2;
  Rng rng(17);
  const Matrix q = Matrix::random_hermitian(2, rng);
  const Matrix x = stein_direct(q, a, -1.0);
  EXPECT_LT(stein_residual(x, q, a, -1.0), 1e-10);
  const SteinResult diverged = stein_doubling(q, a, -1.0, {.max_iter = 30});
  EXPECT_FALSE(diverged.converged);
}

TEST(SteinDirect, PreservesHermiticityForSigmaPlus) {
  // X = Q + A X A† with Hermitian Q has a Hermitian solution.
  Rng rng(18);
  Matrix a = Matrix::random(5, 5, rng);
  a *= cplx(0.3);
  const Matrix q = Matrix::random_hermitian(5, rng);
  const Matrix x = stein_direct(q, a, 1.0);
  EXPECT_TRUE(x.is_hermitian(1e-9));
}

TEST(Memoizer, FirstCallIsDirectSecondIsMemoized) {
  ObcMemoizer memo;
  const auto [m, n, np] = device_lead(0.4, 0.05);
  const ObcKey key{0, 0, 7};
  const Matrix x1 = memo.solve_surface(key, m, n, np);
  EXPECT_EQ(memo.stats().direct_calls, 1);
  EXPECT_EQ(memo.stats().memoized_calls, 0);
  const Matrix x2 = memo.solve_surface(key, m, n, np);
  EXPECT_EQ(memo.stats().memoized_calls, 1);
  EXPECT_LT(la::max_abs_diff(x1, x2), 1e-6);
  EXPECT_LT(surface_residual(x2, m, n, np), 1e-6);
}

TEST(Memoizer, SlightlyPerturbedProblemStaysMemoized) {
  // The SCBA scenario: blocks drift slowly between iterations.
  ObcMemoizer memo;
  const ObcKey key{0, 1, 3};
  auto blocks = device_lead(0.4, 0.05);
  memo.solve_surface(key, blocks.m, blocks.n, blocks.np);
  for (int iter = 1; iter <= 5; ++iter) {
    auto drift = device_lead(0.4 + 1e-4 * iter, 0.05);
    const Matrix x = memo.solve_surface(key, drift.m, drift.n, drift.np);
    EXPECT_LT(surface_residual(x, drift.m, drift.n, drift.np), 1e-5);
  }
  EXPECT_EQ(memo.stats().direct_calls, 1);
  EXPECT_EQ(memo.stats().memoized_calls, 5);
}

TEST(Memoizer, LargeChangeFallsBackToDirect) {
  ObcMemoizer memo;
  const ObcKey key{0, 0, 0};
  auto a = device_lead(-2.0, 0.05);
  memo.solve_surface(key, a.m, a.n, a.np);
  auto b = device_lead(2.2, 0.05);  // completely different energy
  const Matrix x = memo.solve_surface(key, b.m, b.n, b.np);
  EXPECT_LT(surface_residual(x, b.m, b.n, b.np), 1e-6);
  EXPECT_EQ(memo.stats().direct_calls, 2);
}

TEST(Memoizer, DisabledAlwaysDispatchesDirect) {
  MemoizerOptions opt;
  opt.enabled = false;
  ObcMemoizer memo(opt);
  const auto [m, n, np] = device_lead(0.4, 0.05);
  const ObcKey key{1, 0, 2};
  memo.solve_surface(key, m, n, np);
  memo.solve_surface(key, m, n, np);
  EXPECT_EQ(memo.stats().direct_calls, 2);
  EXPECT_EQ(memo.stats().memoized_calls, 0);
}

TEST(Memoizer, SteinPathMemoizes) {
  ObcMemoizer memo;
  Rng rng(21);
  Matrix a = Matrix::random(6, 6, rng);
  a *= cplx(0.3);
  Matrix q = Matrix::random_hermitian(6, rng);
  const ObcKey key{1, 1, 5};
  memo.solve_stein(key, q, a, -1.0);
  EXPECT_EQ(memo.stats().direct_calls, 1);
  const Matrix x = memo.solve_stein(key, q, a, -1.0);
  EXPECT_EQ(memo.stats().memoized_calls, 1);
  EXPECT_LT(stein_residual(x, q, a, -1.0), 1e-6);
}

}  // namespace
}  // namespace qtx::obc
