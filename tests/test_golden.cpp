// Golden-file physics regression suite: runs the canonical quickstart-device
// simulation once and compares its observables — transmission, electron
// density, spectral/terminal currents — against checked-in reference files
// to 1e-12. Any change to the numerics (solver reordering, kernel rewrites,
// parallel scheduling) that moves a result by more than floating-point dust
// fails here first.
//
// Regenerating after an *intentional* physics change:
//
//     ./build/test_golden --update-golden        # or QTX_UPDATE_GOLDEN=1
//
// rewrites tests/golden/*.txt in the source tree (the build injects the
// path via QTX_GOLDEN_DIR); commit the new files with the justification.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/observables.hpp"
#include "core/simulation.hpp"

#ifndef QTX_GOLDEN_DIR
#error "QTX_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace qtx::core {
namespace {

bool g_update_golden = false;

std::string golden_path(const std::string& name) {
  return std::string(QTX_GOLDEN_DIR) + "/" + name + ".txt";
}

/// Reads a golden file: '#' lines are comments, every other line one double
/// at full round-trip precision.
std::vector<double> read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  if (!in) {
    ADD_FAILURE() << "missing golden file " << golden_path(name)
                  << "; regenerate with ./test_golden --update-golden";
    return {};
  }
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    values.push_back(std::strtod(line.c_str(), nullptr));
  }
  return values;
}

void write_golden(const std::string& name, const std::vector<double>& values,
                  const std::string& description) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out) << "cannot write " << golden_path(name);
  out << "# golden: " << description << "\n";
  out << "# regenerate: ./test_golden --update-golden (see README, "
         "\"Golden-file physics regression\")\n";
  char buf[64];
  for (const double v : values) {
    std::snprintf(buf, sizeof buf, "%.17g\n", v);
    out << buf;
  }
}

/// 1e-12 relative (with an absolute floor of the same magnitude for values
/// near zero) — tight enough to catch any real numerics change, loose
/// enough to absorb compiler-flag-level rounding differences.
void compare_golden(const std::string& name, const std::vector<double>& got,
                    const std::string& description) {
  if (g_update_golden) {
    write_golden(name, got, description);
    return;
  }
  const std::vector<double> want = read_golden(name);
  ASSERT_EQ(got.size(), want.size()) << "golden " << name << " shape changed";
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double tol = 1e-12 * (1.0 + std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol)
        << "golden " << name << " entry " << i << " drifted";
  }
}

/// The canonical golden run: the quickstart device and solver settings
/// (examples/quickstart.cpp) with a fixed 4-iteration budget so the suite
/// pins a deterministic mid-convergence state in a few seconds.
class GoldenFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const device::Structure st = device::make_test_structure(4);
    const auto gap = st.band_gap();
    sim_ = new Simulation(
        SimulationBuilder(st)
            .grid(-6.0, 6.0, 64)
            .eta(0.02)
            .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
            .gw(0.3)
            .mixing(0.4)
            .max_iterations(4)
            .tolerance(1e-3)
            .obc_backend("memoized")
            .greens_backend("rgf")
            .build());
    result_ = new TransportResult(sim_->run());
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
    delete sim_;
    sim_ = nullptr;
  }

  static Simulation* sim_;
  static TransportResult* result_;
};

Simulation* GoldenFixture::sim_ = nullptr;
TransportResult* GoldenFixture::result_ = nullptr;

TEST_F(GoldenFixture, RunCompletesTheFixedBudget) {
  EXPECT_EQ(result_->iterations, 4);
  EXPECT_EQ(result_->stop_reason, StopReason::kBudgetExhausted);
}

TEST_F(GoldenFixture, Transmission) {
  compare_golden("quickstart_transmission", transmission(*sim_),
                 "quickstart device, T(E) per energy point after 4 SCBA "
                 "iterations");
}

TEST_F(GoldenFixture, ElectronDensity) {
  compare_golden("quickstart_density", electron_density(*sim_),
                 "quickstart device, electron density per transport cell");
}

TEST_F(GoldenFixture, Currents) {
  // One file for the current observables: terminal currents first, then the
  // left-contact Meir-Wingreen spectral current per energy point.
  std::vector<double> currents;
  currents.push_back(terminal_current_left(*sim_));
  currents.push_back(terminal_current_right(*sim_));
  for (const double v : spectral_current_left(*sim_)) currents.push_back(v);
  compare_golden("quickstart_current", currents,
                 "quickstart device, [I_L, I_R, i_L(E)...]");
}

TEST_F(GoldenFixture, TotalDos) {
  compare_golden("quickstart_dos", total_dos(*sim_),
                 "quickstart device, total DOS(E)");
}

TEST_F(GoldenFixture, ConvergenceTrace) {
  std::vector<double> updates;
  for (const IterationResult& it : result_->history)
    updates.push_back(it.sigma_update);
  compare_golden("quickstart_sigma_updates", updates,
                 "quickstart device, ||dSigma<||/||Sigma<|| per iteration");
}

}  // namespace
}  // namespace qtx::core

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0)
      qtx::core::g_update_golden = true;
  }
  if (const char* env = std::getenv("QTX_UPDATE_GOLDEN"))
    if (env[0] != '\0' && env[0] != '0') qtx::core::g_update_golden = true;
  if (qtx::core::g_update_golden)
    std::printf("[golden] update mode: rewriting %s/*.txt\n", QTX_GOLDEN_DIR);
  return RUN_ALL_TESTS();
}
