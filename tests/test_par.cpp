// Tests for the parallel substrate (src/par): the thread-backed communicator
// (collectives, both backends), the block distribution, and the
// energy<->element transposition of paper Fig. 3.

#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "par/comm.hpp"
#include "par/distribution.hpp"

namespace qtx::par {
namespace {

class CommSweep
    : public ::testing::TestWithParam<std::pair<int, Backend>> {};

TEST_P(CommSweep, BarrierSynchronizesAllRanks) {
  const auto [size, backend] = GetParam();
  CommWorld world(size, backend);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  world.run([&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != c.size()) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(CommSweep, BroadcastDistributesRootData) {
  const auto [size, backend] = GetParam();
  CommWorld world(size, backend);
  world.run([&](Comm& c) {
    std::vector<cplx> data;
    if (c.rank() == 0) data = {cplx(1.0, 2.0), cplx(3.0, -4.0)};
    c.broadcast(data, 0);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_EQ(data[0], cplx(1.0, 2.0));
    EXPECT_EQ(data[1], cplx(3.0, -4.0));
  });
}

TEST_P(CommSweep, AllgatherConcatenatesInRankOrder) {
  const auto [size, backend] = GetParam();
  CommWorld world(size, backend);
  world.run([&](Comm& c) {
    const std::vector<cplx> mine = {cplx(static_cast<double>(c.rank()), 0.0)};
    const std::vector<cplx> all = c.allgather(mine);
    ASSERT_EQ(static_cast<int>(all.size()), c.size());
    for (int r = 0; r < c.size(); ++r)
      EXPECT_EQ(all[r], cplx(static_cast<double>(r), 0.0));
  });
}

TEST_P(CommSweep, AlltoallRoutesPairwisePayloads) {
  const auto [size, backend] = GetParam();
  CommWorld world(size, backend);
  world.run([&](Comm& c) {
    std::vector<std::vector<cplx>> send(c.size());
    for (int r = 0; r < c.size(); ++r)
      send[r] = {cplx(static_cast<double>(c.rank()),
                      static_cast<double>(r))};
    const auto recv = c.alltoall(std::move(send));
    for (int r = 0; r < c.size(); ++r) {
      ASSERT_EQ(recv[r].size(), 1u);
      // Rank r sent me (r, my_rank).
      EXPECT_EQ(recv[r][0], cplx(static_cast<double>(r),
                                 static_cast<double>(c.rank())));
    }
  });
}

TEST_P(CommSweep, Reductions) {
  const auto [size, backend] = GetParam();
  CommWorld world(size, backend);
  world.run([&](Comm& c) {
    const double sum = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_NEAR(sum, c.size() * (c.size() + 1) / 2.0, 1e-12);
    const double mx = c.allreduce_max(static_cast<double>(c.rank()));
    EXPECT_NEAR(mx, c.size() - 1.0, 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, CommSweep,
    ::testing::Values(std::pair{1, Backend::kDeviceDirect},
                      std::pair{2, Backend::kDeviceDirect},
                      std::pair{4, Backend::kDeviceDirect},
                      std::pair{7, Backend::kDeviceDirect},
                      std::pair{2, Backend::kHostStaged},
                      std::pair{4, Backend::kHostStaged}));

TEST(Comm, ByteCounterTracksPayloads) {
  CommWorld world(2);
  world.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, std::vector<cplx>(100));
    } else {
      (void)c.recv(0);
    }
  });
  EXPECT_EQ(world.total_bytes_sent(),
            static_cast<std::int64_t>(100 * sizeof(cplx)));
  world.reset_byte_counter();
  EXPECT_EQ(world.total_bytes_sent(), 0);
}

TEST(Comm, BackendsProduceIdenticalResults) {
  for (const Backend b : {Backend::kDeviceDirect, Backend::kHostStaged}) {
    CommWorld world(3, b);
    world.run([&](Comm& c) {
      std::vector<cplx> data(50);
      for (size_t i = 0; i < data.size(); ++i)
        data[i] = cplx(static_cast<double>(c.rank()), static_cast<double>(i));
      const auto all = c.allgather(data);
      ASSERT_EQ(all.size(), 150u);
      for (int r = 0; r < 3; ++r)
        for (int i = 0; i < 50; ++i)
          EXPECT_EQ(all[r * 50 + i],
                    cplx(static_cast<double>(r), static_cast<double>(i)));
    });
  }
}

TEST(Comm, ExceptionsPropagateToCaller) {
  CommWorld world(2);
  EXPECT_THROW(world.run([](Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank fail");
               }),
               std::runtime_error);
}

TEST(Comm, SingleFailureRethrowsTheOriginalException) {
  // One failing rank must surface its own exception object (type and
  // message preserved), not a wrapped summary.
  CommWorld world(3);
  try {
    world.run([](Comm& c) {
      if (c.rank() == 2) throw std::invalid_argument("just rank 2");
    });
    FAIL() << "run() must rethrow the failing rank's exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "just rank 2");
  }
}

TEST(Comm, MultipleFailuresAggregateIntoOneDiagnostic) {
  // Regression: run() used to rethrow only the first failing rank's
  // exception, silently discarding the others. Every failed rank must now
  // be named in a single aggregated diagnostic.
  CommWorld world(4);
  try {
    world.run([](Comm& c) {
      if (c.rank() == 1) throw std::runtime_error("boom one");
      if (c.rank() == 3) throw std::runtime_error("boom three");
    });
    FAIL() << "run() must throw when ranks fail";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 ranks failed"), std::string::npos) << what;
    EXPECT_NE(what.find("[rank 1] boom one"), std::string::npos) << what;
    EXPECT_NE(what.find("[rank 3] boom three"), std::string::npos) << what;
  }
}

TEST(BlockDistribution, CountsAndOffsetsPartition) {
  for (const auto& [total, parts] :
       std::vector<std::pair<std::int64_t, int>>{
           {10, 3}, {7, 7}, {100, 8}, {5, 1}, {3, 4}}) {
    BlockDistribution d{total, parts};
    std::int64_t sum = 0;
    for (int r = 0; r < parts; ++r) {
      EXPECT_EQ(d.offset(r), sum);
      sum += d.count(r);
    }
    EXPECT_EQ(sum, total);
    for (std::int64_t i = 0; i < total; ++i) {
      const int o = d.owner(i);
      EXPECT_GE(i, d.offset(o));
      EXPECT_LT(i, d.offset(o) + d.count(o));
    }
  }
}

class TransposeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TransposeSweep, RoundTripIsIdentity) {
  const auto [size, ne, nk] = GetParam();
  CommWorld world(size);
  Transposer t(ne, nk, size);
  world.run([&](Comm& c) {
    const std::int64_t ne_mine = t.energies().count(c.rank());
    std::vector<cplx> data(ne_mine * nk);
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(data.size()); ++i)
      data[i] = cplx(static_cast<double>(c.rank()), static_cast<double>(i));
    const auto elem = t.to_element_layout(c, data);
    const auto back = t.to_energy_layout(c, elem);
    ASSERT_EQ(back.size(), data.size());
    for (size_t i = 0; i < data.size(); ++i) EXPECT_EQ(back[i], data[i]);
  });
}

TEST_P(TransposeSweep, ElementLayoutHoldsAllEnergiesOfMyElements) {
  const auto [size, ne, nk] = GetParam();
  CommWorld world(size);
  Transposer t(ne, nk, size);
  // Global value convention: f(e, k) = e + i k.
  world.run([&](Comm& c) {
    const std::int64_t ne_mine = t.energies().count(c.rank());
    const std::int64_t eoff = t.energies().offset(c.rank());
    std::vector<cplx> data(ne_mine * nk);
    for (std::int64_t e = 0; e < ne_mine; ++e)
      for (std::int64_t k = 0; k < nk; ++k)
        data[e * nk + k] =
            cplx(static_cast<double>(eoff + e), static_cast<double>(k));
    const auto elem = t.to_element_layout(c, data);
    const std::int64_t k_mine = t.elements().count(c.rank());
    const std::int64_t koff = t.elements().offset(c.rank());
    ASSERT_EQ(static_cast<std::int64_t>(elem.size()), k_mine * ne);
    for (std::int64_t k = 0; k < k_mine; ++k)
      for (std::int64_t e = 0; e < ne; ++e)
        EXPECT_EQ(elem[k * ne + e],
                  cplx(static_cast<double>(e), static_cast<double>(koff + k)));
  });
}

INSTANTIATE_TEST_SUITE_P(Layouts, TransposeSweep,
                         ::testing::Values(std::tuple{1, 8, 12},
                                           std::tuple{2, 8, 12},
                                           std::tuple{3, 7, 11},
                                           std::tuple{4, 16, 9},
                                           std::tuple{5, 5, 25}));

TEST(Transposer, CommunicationVolumeScalesWithElements) {
  // Halving the element count (the §5.2 symmetric-storage effect) halves
  // the transposition volume.
  const int size = 4, ne = 16;
  for (const std::int64_t nk : {40, 20}) {
    CommWorld world(size);
    Transposer t(ne, nk, size);
    world.run([&](Comm& c) {
      const std::int64_t ne_mine = t.energies().count(c.rank());
      std::vector<cplx> data(ne_mine * nk, cplx(1.0));
      (void)t.to_element_layout(c, data);
    });
    if (nk == 40) {
      const std::int64_t full = world.total_bytes_sent();
      EXPECT_GT(full, 0);
    }
  }
  CommWorld wfull(size), whalf(size);
  Transposer tfull(ne, 40, size), thalf(ne, 20, size);
  wfull.run([&](Comm& c) {
    std::vector<cplx> d(tfull.energies().count(c.rank()) * 40, cplx(1.0));
    (void)tfull.to_element_layout(c, d);
  });
  whalf.run([&](Comm& c) {
    std::vector<cplx> d(thalf.energies().count(c.rank()) * 20, cplx(1.0));
    (void)thalf.to_element_layout(c, d);
  });
  EXPECT_EQ(wfull.total_bytes_sent(), 2 * whalf.total_bytes_sent());
}


TEST(WireCompression, RoundTripIsFloatExact) {
  Rng rng(31);
  std::vector<cplx> data(101);
  for (auto& v : data) v = rng.complex_uniform();
  const auto packed = compress_fp32(data);
  EXPECT_EQ(packed.size(), 51u);  // half the payload (+ padding slot)
  const auto back = decompress_fp32(packed, 101);
  ASSERT_EQ(back.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i].real(), data[i].real(), 1e-7);
    EXPECT_NEAR(back[i].imag(), data[i].imag(), 1e-7);
  }
}

TEST(WireCompression, TransposerFp32HalvesVolumeWithinTolerance) {
  // §8 outlook: lower-precision communication halves the transposition
  // volume; the round-trip stays within single-precision accuracy.
  const int size = 4, ne = 16, nk = 33;
  CommWorld w64(size), w32(size);
  Transposer t64(ne, nk, size, WirePrecision::kFp64);
  Transposer t32(ne, nk, size, WirePrecision::kFp32);
  std::vector<std::vector<cplx>> results64(size), results32(size);
  auto run = [&](CommWorld& world, Transposer& t,
                 std::vector<std::vector<cplx>>& results) {
    world.run([&](Comm& c) {
      Rng rng(100 + c.rank());
      std::vector<cplx> data(t.energies().count(c.rank()) * nk);
      for (auto& v : data) v = rng.complex_uniform();
      const auto elem = t.to_element_layout(c, data);
      results[c.rank()] = t.to_energy_layout(c, elem);
      // Round trip must reproduce the input (exactly for fp64, to float
      // precision for fp32).
      for (size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(std::abs(results[c.rank()][i] - data[i]), 0.0, 1e-6);
    });
  };
  run(w64, t64, results64);
  run(w32, t32, results32);
  EXPECT_LT(w32.total_bytes_sent(), 0.6 * w64.total_bytes_sent())
      << "fp32 wire format must ~halve the volume";
}

}  // namespace
}  // namespace qtx::par
