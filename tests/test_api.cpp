// Tests for the public solver facade (core/simulation.hpp): option
// validation messages, registry key dispatch (including unknown-key and
// custom-backend paths), runtime backend equivalence, streaming observers,
// stop-reason accounting, and the deprecated Scba shim.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/observables.hpp"
#include "core/scba.hpp"
#include "core/simulation.hpp"

namespace qtx::core {
namespace {

SimulationBuilder small_builder(const device::Structure& st) {
  const auto gap = st.band_gap();
  return SimulationBuilder(st)
      .grid(-6.0, 6.0, 24)
      .eta(0.05)
      .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
      .gw(0.25)
      .mixing(0.4)
      .max_iterations(3)
      .tolerance(1e-3);
}

/// Expect build() to throw a std::runtime_error whose message contains
/// \p fragment (the actionable part of the QTX_CHECK diagnostic).
void expect_invalid(const SimulationBuilder& builder,
                    const std::string& fragment) {
  try {
    (void)builder.build();
    FAIL() << "expected validation failure mentioning \"" << fragment << "\"";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

// --- option validation ----------------------------------------------------

TEST(OptionsValidation, RejectsEmptyEnergyGrid) {
  const device::Structure st = device::make_test_structure(3);
  expect_invalid(small_builder(st).grid(-6.0, 6.0, 0),
                 "energy grid must have at least 2 points");
  expect_invalid(small_builder(st).grid(-6.0, 6.0, 1),
                 "energy grid must have at least 2 points");
  expect_invalid(small_builder(st).grid(2.0, -2.0, 16), "e_max");
}

TEST(OptionsValidation, RejectsNonPositiveEta) {
  const device::Structure st = device::make_test_structure(3);
  expect_invalid(small_builder(st).eta(0.0), "eta");
  expect_invalid(small_builder(st).eta(-0.05), "eta");
}

TEST(OptionsValidation, RejectsBadIterationBudgetAndMixing) {
  const device::Structure st = device::make_test_structure(3);
  expect_invalid(small_builder(st).max_iterations(0), "max_iterations");
  expect_invalid(small_builder(st).max_iterations(-3), "max_iterations");
  expect_invalid(small_builder(st).mixing(0.0), "mixing");
  expect_invalid(small_builder(st).mixing(1.5), "mixing");
  expect_invalid(small_builder(st).tolerance(0.0), "tol");
}

TEST(OptionsValidation, RejectsWrongLengthCellPotential) {
  const device::Structure st = device::make_test_structure(4);
  expect_invalid(small_builder(st).cell_potential({0.0, 0.8}),
                 "cell_potential has 2 entries but the device has 4");
  // Empty (default) and exact-length potentials are both fine.
  EXPECT_NO_THROW(small_builder(st).build());
  EXPECT_NO_THROW(
      small_builder(st).cell_potential({0.0, 0.8, 0.8, 0.0}).build());
}

TEST(OptionsValidation, RejectsInconsistentNestedDissection) {
  const device::Structure st = device::make_test_structure(4);
  expect_invalid(small_builder(st).nested_dissection(3),
                 "must divide the cell count");
  expect_invalid(small_builder(st).nested_dissection(4),
                 "at least 2 cells per partition");
  expect_invalid(small_builder(st).greens_backend("nested-dissection"),
                 "nd_partitions");
  EXPECT_NO_THROW(small_builder(st).nested_dissection(2).build());
}

TEST(OptionsValidation, RejectsNdPartitionsTheBackendIgnores) {
  // nd_partitions used to be silently accepted (and ignored) whenever a
  // non-partitioning Green's backend was selected explicitly; the
  // cross-check makes the dead knob an actionable error instead.
  const device::Structure st = device::make_test_structure(4);
  SimulationOptions opt = small_builder(st).peek_options();
  opt.greens_backend = "rgf";
  opt.nd_partitions = 2;
  expect_invalid(SimulationBuilder(st).options(opt), "has no effect");
  expect_invalid(SimulationBuilder(st).options(opt),
                 "set greens_backend = \"nested-dissection\"");
  // The auto resolution still turns nd_partitions > 1 into the
  // nested-dissection backend, so the legacy flat spelling keeps working.
  opt.greens_backend = kAutoBackend;
  EXPECT_NO_THROW(SimulationBuilder(st).options(opt).build());
}

TEST(OptionsValidation, RejectsBadParallelKnobs) {
  const device::Structure st = device::make_test_structure(3);
  expect_invalid(small_builder(st).num_threads(0), "num_threads must be >= 1");
  expect_invalid(small_builder(st).num_threads(-4), "num_threads");
  expect_invalid(small_builder(st).energy_batch(-1),
                 "energy_batch must be >= 0");
  expect_invalid(small_builder(st).executor("simd"),
                 "unknown energy-loop executor");
  EXPECT_NO_THROW(small_builder(st).num_threads(2).energy_batch(8).build());
}

TEST(OptionsValidation, RejectsOversubscribedNestedThreading) {
  // Energy workers x spatial threads would oversubscribe every core; the
  // two parallel axes are mutually exclusive by validation.
  const device::Structure st = device::make_test_structure(4);
  expect_invalid(
      small_builder(st).nested_dissection(2, 2).num_threads(2),
      "oversubscribe");
  EXPECT_NO_THROW(small_builder(st).nested_dissection(2, 2).build());
  EXPECT_NO_THROW(
      small_builder(st).nested_dissection(2, 1).num_threads(2).build());
  // nd_threads is inert outside nested-dissection, so it must not block
  // energy-parallel rgf runs.
  SimulationOptions rgf_opt = small_builder(st).peek_options();
  rgf_opt.nd_threads = 2;
  rgf_opt.num_threads = 4;
  EXPECT_NO_THROW(SimulationBuilder(st).options(rgf_opt).build());
}

TEST(OptionsValidation, RejectsDuplicateChannels) {
  // Channels accumulate additively, so a duplicate key would silently
  // double that channel's Sigma contribution.
  const device::Structure st = device::make_test_structure(3);
  expect_invalid(small_builder(st).self_energy_channels({"gw", "gw"}),
                 "lists \"gw\" twice");
  expect_invalid(
      small_builder(st).add_channel("gw").add_channel("ephonon").add_channel(
          "gw"),
      "twice");
  EXPECT_NO_THROW(
      small_builder(st).self_energy_channels({"gw", "ephonon"}).build());
}

TEST(OptionsValidation, RejectsBadEPhononAndContacts) {
  const device::Structure st = device::make_test_structure(3);
  EPhononParams bad;
  bad.coupling_ev = 0.1;
  bad.phonon_energy_ev = 0.0;
  expect_invalid(small_builder(st).ephonon(bad), "phonon_energy_ev");
  expect_invalid(small_builder(st).contacts(0.0, 0.0, -10.0),
                 "temperature_k");
}

TEST(OptionsValidation, LegacyOptionsStructIsValidatedToo) {
  // The deprecated flat-options path (Simulation ctor, Scba shim) runs the
  // same validate() pass — the silent-misconfiguration regression.
  const device::Structure st = device::make_test_structure(3);
  SimulationOptions opt;
  opt.grid = EnergyGrid{-6.0, 6.0, 16};
  opt.eta = -0.01;
  EXPECT_THROW(Simulation(st, opt), std::runtime_error);
  opt.eta = 0.05;
  opt.max_iterations = 0;
  EXPECT_THROW(Simulation(st, opt), std::runtime_error);
  opt.max_iterations = 2;
  opt.cell_potential = {1.0};  // wrong length for 3 cells
  EXPECT_THROW(Simulation(st, opt), std::runtime_error);
}

// --- registry dispatch ----------------------------------------------------

TEST(StageRegistry, UnknownKeysFailFastWithKnownKeyList) {
  const device::Structure st = device::make_test_structure(3);
  expect_invalid(small_builder(st).obc_backend("bogus"),
                 "unknown OBC backend \"bogus\"");
  expect_invalid(small_builder(st).obc_backend("bogus"), "\"beyn\"");
  expect_invalid(small_builder(st).greens_backend("bogus"),
                 "unknown Green's-function backend");
  expect_invalid(small_builder(st).self_energy_channels({"bogus"}),
                 "unknown self-energy channel");
}

TEST(StageRegistry, BuiltinsAreRegistered) {
  const StageRegistry& reg = StageRegistry::global();
  EXPECT_EQ(reg.obc_keys(),
            (std::vector<std::string>{"beyn", "lyapunov", "memoized"}));
  EXPECT_EQ(reg.greens_keys(),
            (std::vector<std::string>{"nested-dissection", "rgf"}));
  EXPECT_EQ(reg.channel_keys(),
            (std::vector<std::string>{"ephonon", "fock", "gw"}));
}

TEST(StageRegistry, CustomBackendPluggedInByKey) {
  // A downstream backend: counts solves, then delegates to the sequential
  // RGF — registered on a local registry, selected by key, never compiled
  // into the driver.
  struct CountingRgf final : GreensSolver {
    std::string_view name() const override { return "counting-rgf"; }
    rgf::SelectedSolution solve(const bt::BlockTridiag& m,
                                const bt::BlockTridiag& bl,
                                const bt::BlockTridiag& bg) override {
      ++(*calls);
      return rgf::rgf_solve(m, bl, bg);
    }
    std::shared_ptr<int> calls = std::make_shared<int>(0);
  };
  auto calls = std::make_shared<int>(0);
  StageRegistry reg = StageRegistry::with_builtins();
  reg.register_greens("counting-rgf",
                      [calls](const SimulationOptions&) {
                        auto solver = std::make_unique<CountingRgf>();
                        solver->calls = calls;
                        return solver;
                      });
  const device::Structure st = device::make_test_structure(3);
  Simulation sim = small_builder(st)
                       .ballistic()
                       .registry(reg)
                       .greens_backend("counting-rgf")
                       .build();
  sim.run();
  EXPECT_EQ(std::string(sim.greens_solver().name()), "counting-rgf");
  EXPECT_EQ(*calls, sim.options().grid.n);  // one G solve per energy
}

TEST(StageRegistry, RejectsReservedKeys) {
  StageRegistry reg;
  EXPECT_THROW(reg.register_obc("", nullptr), std::runtime_error);
  EXPECT_THROW(reg.register_greens("auto", nullptr), std::runtime_error);
}

// --- runtime backend selection equivalence --------------------------------

TEST(BackendSelection, ObcBackendsAgreeOnPhysics) {
  const device::Structure st = device::make_test_structure(3);
  double reference = 0.0;
  for (const char* key : {"memoized", "beyn", "lyapunov"}) {
    Simulation sim = small_builder(st).obc_backend(key).build();
    EXPECT_EQ(std::string(sim.obc_solver().name()), key);
    sim.run();
    const double i = terminal_current_left(sim);
    if (reference == 0.0) {
      reference = i;
      EXPECT_GT(i, 0.0);
    } else {
      EXPECT_NEAR(i, reference, 1e-4 * (1.0 + std::abs(reference)))
          << "backend " << key;
    }
  }
}

TEST(BackendSelection, GreensBackendsAgreeOnPhysics) {
  const device::Structure st = device::make_test_structure(6);
  Simulation seq = small_builder(st).greens_backend("rgf").build();
  seq.run();
  Simulation nd = small_builder(st).nested_dissection(3, 3).build();
  nd.run();
  EXPECT_EQ(std::string(nd.greens_solver().name()), "nested-dissection");
  for (int e = 0; e < seq.options().grid.n; e += 5)
    EXPECT_LT(bt::max_abs_diff(seq.g_lesser()[e], nd.g_lesser()[e]), 1e-7);
  EXPECT_NEAR(terminal_current_left(seq), terminal_current_left(nd), 1e-8);
}

TEST(BackendSelection, FockChannelMatchesStaticLimitOfGw) {
  // "fock" alone reproduces the Fock part of the "gw" channel: with the
  // dynamic part suppressed (W ~ 0 when P ~ 0 cannot be arranged cheaply),
  // we instead check the channel runs standalone and produces a Hermitian
  // static self-energy that shifts the spectrum.
  const device::Structure st = device::make_test_structure(3);
  Simulation sim = small_builder(st)
                       .self_energy_channels({"fock"})
                       .max_iterations(4)
                       .build();
  const TransportResult res = sim.run();
  EXPECT_GT(res.iterations, 1);
  const BlockTridiag sig = sim.sigma_retarded(sim.options().grid.n / 2);
  EXPECT_GT(sig.max_abs(), 0.0);
  // Static exchange only: Sigma^R must be Hermitian (no dissipation).
  const la::Matrix dense = sig.dense();
  EXPECT_LT(la::max_abs_diff(dense, dense.dagger()), 1e-10);
}

// --- streaming observers and stop reasons ---------------------------------

TEST(Observers, IterationResultsStreamInOrder) {
  const device::Structure st = device::make_test_structure(3);
  std::vector<IterationResult> seen;
  Simulation sim = small_builder(st)
                       .tolerance(1e-12)  // force budget exhaustion
                       .on_iteration([&seen](const IterationResult& r) {
                         seen.push_back(r);
                       })
                       .build();
  const TransportResult res = sim.run();
  ASSERT_EQ(seen.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(seen[i].iteration, i + 1);
  EXPECT_EQ(seen.back().stop, StopReason::kBudgetExhausted);
  EXPECT_FALSE(seen.back().converged);
  EXPECT_EQ(res.stop_reason, StopReason::kBudgetExhausted);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.history.size(), seen.size());
}

TEST(Observers, ConvergedRunRecordsReason) {
  const device::Structure st = device::make_test_structure(3);
  Simulation sim = small_builder(st)
                       .tolerance(10.0)  // converges at the 2nd iteration
                       .max_iterations(10)
                       .build();
  const TransportResult res = sim.run();
  EXPECT_EQ(res.stop_reason, StopReason::kConverged);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 2);
  EXPECT_EQ(res.history.back().stop, StopReason::kConverged);
  EXPECT_STREQ(to_string(res.stop_reason), "converged");
}

TEST(Observers, BallisticRunStopsAfterOneExactPass) {
  const device::Structure st = device::make_test_structure(3);
  Simulation sim = small_builder(st).ballistic().build();
  const TransportResult res = sim.run();
  EXPECT_EQ(res.iterations, 1);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.stop_reason, StopReason::kNonInteracting);
}

TEST(Observers, KernelTimingsStreamTable4Rows) {
  const device::Structure st = device::make_test_structure(3);
  std::map<std::string, double> rows;
  int samples = 0;
  Simulation sim = small_builder(st)
                       .max_iterations(1)
                       .on_kernel_timing([&](const KernelTiming& k) {
                         rows[k.kernel] += k.seconds;
                         EXPECT_EQ(k.iteration, 1);
                         EXPECT_GE(k.seconds, 0.0);
                         ++samples;
                       })
                       .build();
  sim.run();
  EXPECT_GT(samples, 0);
  for (const char* name : {"G: OBC", "G: RGF", "W: RGF", "Other: P-FFT",
                           "Other: Sigma-FFT"})
    EXPECT_TRUE(rows.count(name)) << "missing kernel row " << name;
}

TEST(Observers, TransportResultAggregatesKernelLedger) {
  const device::Structure st = device::make_test_structure(3);
  Simulation sim = small_builder(st).tolerance(1e-12).build();
  const TransportResult res = sim.run();
  for (const auto& [name, total] : res.kernel_seconds) {
    double sum = 0.0;
    for (const auto& it : res.history) {
      const auto f = it.kernel_seconds.find(name);
      if (f != it.kernel_seconds.end()) sum += f->second;
    }
    EXPECT_NEAR(total, sum, 1e-12) << name;
  }
  EXPECT_GT(res.total_seconds, 0.0);
  EXPECT_EQ(res.final_update, res.history.back().sigma_update);
}

// --- deprecated shim -------------------------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ScbaShim, OldApiMatchesSimulation) {
  const device::Structure st = device::make_test_structure(3);
  SimulationOptions opt = small_builder(st).peek_options();
  Scba shim(st, opt);
  const std::vector<IterationResult> history = shim.run();
  Simulation sim(st, opt);
  const TransportResult res = sim.run();
  ASSERT_EQ(history.size(), res.history.size());
  EXPECT_EQ(history.back().stop, res.stop_reason);
  EXPECT_EQ(shim.converged(), sim.converged());
  EXPECT_EQ(shim.iteration(), sim.iteration());
  EXPECT_DOUBLE_EQ(terminal_current_left(shim), terminal_current_left(sim));
  // Early-stop satellite: the reason lives in the final result.
  EXPECT_NE(history.back().stop, StopReason::kNone);
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace qtx::core
