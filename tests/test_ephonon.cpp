// Tests for the electron-phonon extension (src/core/ephonon.hpp, paper §8)
// and the energy-current observable (§4.5).

#include <gtest/gtest.h>

#include <cmath>

#include "core/ephonon.hpp"
#include "core/observables.hpp"
#include "core/simulation.hpp"

namespace qtx::core {
namespace {

SimulationOptions base_options(const device::Structure& st) {
  SimulationOptions opt;
  opt.grid = EnergyGrid{-6.0, 6.0, 48};
  opt.eta = 0.05;
  const auto gap = st.band_gap();
  opt.contacts.mu_left = gap.conduction_min + 0.3;
  opt.contacts.mu_right = gap.conduction_min + 0.1;
  opt.gw_scale = 0.0;
  return opt;
}

TEST(BoseEinstein, LimitsAndMonotonicity) {
  // High temperature: N ~ kT/w - 1/2; low temperature: N -> 0.
  EXPECT_NEAR(bose_einstein(0.01, 3000.0), kBoltzmannEvPerK * 3000.0 / 0.01,
              1.0);
  EXPECT_LT(bose_einstein(0.5, 10.0), 1e-10);
  EXPECT_GT(bose_einstein(0.05, 600.0), bose_einstein(0.05, 300.0));
}

TEST(EPhonon, DisabledChannelLeavesSigmaUntouched) {
  const EnergyGrid grid{-1.0, 1.0, 16};
  const SymLayout layout{2, 3};
  EPhononSelfEnergy ep(grid, layout, EPhononParams{});  // coupling = 0
  EXPECT_FALSE(ep.enabled());
  std::vector<std::vector<cplx>> g(16,
                                   std::vector<cplx>(layout.num_elements(),
                                                     cplx(1.0)));
  auto s_lt = std::vector<std::vector<cplx>>(
      16, std::vector<cplx>(layout.num_elements(), cplx(0.0)));
  auto s_gt = s_lt, s_r = s_lt;
  ep.accumulate(g, g, s_lt, s_gt, s_r);
  for (const auto& row : s_lt)
    for (const auto& v : row) EXPECT_EQ(v, cplx(0.0));
}

TEST(EPhonon, SelfEnergyIsShiftedScaledGreen) {
  // At T -> 0 (N = 0): Sigma<(E) = D^2 G<(E + w0) exactly, grid-shifted.
  const EnergyGrid grid{-2.0, 2.0, 32};
  const SymLayout layout{2, 2};
  EPhononParams p;
  p.coupling_ev = 0.3;
  p.phonon_energy_ev = 4.0 / 31.0 * 3.0;  // exactly 3 grid points
  p.temperature_k = 1.0;                  // N ~ 0
  p.diagonal_blocks_only = false;
  EPhononSelfEnergy ep(grid, layout, p);
  Rng rng(3);
  std::vector<std::vector<cplx>> g_lt(grid.n), g_gt(grid.n);
  for (int e = 0; e < grid.n; ++e) {
    g_lt[e].resize(layout.num_elements());
    g_gt[e].resize(layout.num_elements());
    for (auto& v : g_lt[e]) v = rng.complex_uniform();
    for (auto& v : g_gt[e]) v = rng.complex_uniform();
  }
  auto s_lt = std::vector<std::vector<cplx>>(
      grid.n, std::vector<cplx>(layout.num_elements(), cplx(0.0)));
  auto s_gt = s_lt, s_r = s_lt;
  ep.accumulate(g_lt, g_gt, s_lt, s_gt, s_r);
  const double d2 = p.coupling_ev * p.coupling_ev;
  for (int e = 0; e < grid.n; ++e) {
    for (std::int64_t k = 0; k < layout.num_elements(); ++k) {
      const cplx want_lt =
          (e + 3 < grid.n) ? d2 * g_lt[e + 3][k] : cplx(0.0);
      const cplx want_gt = (e - 3 >= 0) ? d2 * g_gt[e - 3][k] : cplx(0.0);
      EXPECT_LT(std::abs(s_lt[e][k] - want_lt), 1e-12);
      EXPECT_LT(std::abs(s_gt[e][k] - want_gt), 1e-12);
    }
  }
}

TEST(EPhonon, ScbaWithPhononsConvergesAndBroadens) {
  const device::Structure st = device::make_test_structure(3);
  auto opt = base_options(st);
  Simulation ballistic(st, opt);
  ballistic.run();
  opt.ephonon.coupling_ev = 0.1;
  opt.ephonon.phonon_energy_ev = 0.06;
  opt.max_iterations = 5;
  opt.mixing = 0.5;
  Simulation ep(st, opt);
  const auto history = ep.run().history;
  EXPECT_GE(history.size(), 2u);
  EXPECT_LT(history.back().sigma_update, history[1].sigma_update + 1e-12);
  // Phonon scattering adds in-gap spectral weight, like GW broadening.
  const auto gap = st.band_gap();
  const auto dos_ball = total_dos(ballistic);
  const auto dos_ep = total_dos(ep);
  double in_gap_ball = 0.0, in_gap_ep = 0.0;
  for (int e = 0; e < opt.grid.n; ++e) {
    const double en = opt.grid.energy(e);
    if (en > gap.valence_max + 0.1 && en < gap.conduction_min - 0.1) {
      in_gap_ball += dos_ball[e];
      in_gap_ep += dos_ep[e];
    }
  }
  EXPECT_GT(in_gap_ep, in_gap_ball);
  // Lesser symmetry survives the extra channel.
  for (int e = 0; e < opt.grid.n; e += 7)
    EXPECT_TRUE(ep.g_lesser()[e].is_anti_hermitian(1e-9));
}

TEST(EPhonon, ComposesWithGw) {
  const device::Structure st = device::make_test_structure(3);
  auto opt = base_options(st);
  opt.grid.n = 24;
  opt.gw_scale = 0.2;
  opt.ephonon.coupling_ev = 0.08;
  opt.max_iterations = 3;
  Simulation s(st, opt);
  const auto history = s.run().history;
  EXPECT_EQ(history.size(), 3u);
  EXPECT_TRUE(std::isfinite(terminal_current_left(s)));
}

TEST(EnergyCurrent, VanishesAtEquilibriumAndFlowsWithBias) {
  const device::Structure st = device::make_test_structure(3);
  auto opt = base_options(st);
  opt.contacts.mu_right = opt.contacts.mu_left;
  Simulation eq(st, opt);
  eq.run();
  EXPECT_NEAR(energy_current_left(eq), 0.0, 1e-10);
  opt.contacts.mu_right = opt.contacts.mu_left - 0.2;
  Simulation biased(st, opt);
  biased.run();
  // Carriers above the band edge carry positive energy through the left
  // contact; the energy current must be finite and conserved.
  EXPECT_GT(std::abs(energy_current_left(biased)), 0.0);
  EXPECT_NEAR(energy_current_left(biased) + energy_current_right(biased),
              0.0, 1e-9 * (1.0 + std::abs(energy_current_left(biased))));
}

}  // namespace
}  // namespace qtx::core
