// Integration tests for the NEGF+scGW core (src/core). The ballistic mode
// (gw_scale = 0) admits exact identities — Meir-Wingreen == Landauer ==
// bond currents, and equilibrium detailed balance — that validate every
// sign and prefactor in the pipeline. The GW mode checks the SCBA loop's
// convergence behaviour and the structural invariants of all quantities.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/observables.hpp"
#include "core/simulation.hpp"

namespace qtx::core {
namespace {

SimulationOptions base_options(const device::Structure& st) {
  SimulationOptions opt;
  opt.grid = EnergyGrid{-6.0, 6.0, 48};
  opt.eta = 0.05;
  const auto gap = st.band_gap();
  // n-type contacts: chemical potential slightly above the conduction edge.
  opt.contacts.mu_left = gap.conduction_min + 0.3;
  opt.contacts.mu_right = gap.conduction_min + 0.1;
  opt.contacts.temperature_k = 300.0;
  opt.gw_scale = 0.0;  // ballistic unless overridden
  return opt;
}

class BallisticFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    structure_ = new device::Structure(device::make_test_structure(4));
    auto opt = base_options(*structure_);
    scba_ = new Simulation(*structure_, opt);
    scba_->run();
  }
  static void TearDownTestSuite() {
    delete scba_;
    delete structure_;
    scba_ = nullptr;
    structure_ = nullptr;
  }
  static device::Structure* structure_;
  static Simulation* scba_;
};

device::Structure* BallisticFixture::structure_ = nullptr;
Simulation* BallisticFixture::scba_ = nullptr;

TEST_F(BallisticFixture, DosIsNonNegative) {
  for (const double d : total_dos(*scba_)) EXPECT_GE(d, -1e-10);
}

TEST_F(BallisticFixture, DosShowsGap) {
  const auto gap = structure_->band_gap();
  const auto dos = total_dos(*scba_);
  const auto& grid = scba_->options().grid;
  double in_gap = 0.0, in_band = 0.0;
  int n_gap = 0, n_band = 0;
  for (int e = 0; e < grid.n; ++e) {
    const double en = grid.energy(e);
    if (en > gap.valence_max + 0.1 && en < gap.conduction_min - 0.1) {
      in_gap += dos[e];
      ++n_gap;
    } else if (en > gap.conduction_min + 0.3 && en < gap.conduction_min + 1.0) {
      in_band += dos[e];
      ++n_band;
    }
  }
  if (n_gap > 0 && n_band > 0) {
    EXPECT_LT(in_gap / n_gap, 0.25 * in_band / n_band)
        << "gap DOS must be strongly suppressed";
  }
}

TEST_F(BallisticFixture, LesserGreaterAreAntiHermitian) {
  for (int e = 0; e < scba_->options().grid.n; e += 7) {
    EXPECT_TRUE(scba_->g_lesser()[e].is_anti_hermitian(1e-10));
    EXPECT_TRUE(scba_->g_greater()[e].is_anti_hermitian(1e-10));
  }
}

TEST_F(BallisticFixture, SpectralFunctionSplitsIntoLesserGreater) {
  // Exact finite-eta identity: G> - G< = (G^R - G^A) + 2 i eta G^R G^A
  // (the eta term is the artificial absorption of the complex-energy
  // broadening). Verified densely to machine precision.
  const double eta = scba_->options().eta;
  const int nb = scba_->layout().nb, bs = scba_->layout().bs;
  for (int e = 0; e < scba_->options().grid.n; e += 11) {
    const la::Matrix gr = la::inverse(scba_->effective_system_matrix(e).dense());
    la::Matrix rhs = gr - gr.dagger();
    rhs += la::mmh(gr, gr) * (2.0 * kI * eta);
    for (int i = 0; i < nb; ++i) {
      la::Matrix lhs = scba_->g_greater()[e].diag(i);
      lhs -= scba_->g_lesser()[e].diag(i);
      const la::Matrix rhs_blk = rhs.block(i * bs, i * bs, bs, bs);
      EXPECT_LT(la::max_abs_diff(lhs, rhs_blk), 1e-9) << "e=" << e
                                                      << " i=" << i;
    }
  }
}

TEST_F(BallisticFixture, MeirWingreenMatchesLandauerExactly) {
  const auto t = transmission(*scba_);
  const auto il = spectral_current_left(*scba_);
  const auto& opt = scba_->options();
  for (int e = 0; e < opt.grid.n; ++e) {
    const double en = opt.grid.energy(e);
    const double fl =
        fermi_dirac(en, opt.contacts.mu_left, opt.contacts.temperature_k);
    const double fr =
        fermi_dirac(en, opt.contacts.mu_right, opt.contacts.temperature_k);
    EXPECT_NEAR(il[e], t[e] * (fl - fr), 1e-8 * (1.0 + std::abs(t[e])))
        << "Caroli identity at E=" << en;
  }
}

TEST_F(BallisticFixture, CurrentIsConservedAcrossContacts) {
  const double il = terminal_current_left(*scba_);
  const double ir = terminal_current_right(*scba_);
  EXPECT_NEAR(il + ir, 0.0, 1e-10 * (1.0 + std::abs(il)));
  EXPECT_GT(il, 0.0) << "mu_L > mu_R must drive positive current";
}

TEST_F(BallisticFixture, TransmissionIsNonNegative) {
  const auto t = transmission(*scba_);
  for (const double v : t) EXPECT_GE(v, -1e-10);
  EXPECT_LE(*std::max_element(t.begin(), t.end()),
            scba_->layout().bs + 1e-6);
}

TEST(BallisticSmallEta, BondCurrentsBecomeUniformAsEtaVanishes) {
  // Finite eta absorbs carriers in every cell, so the continuity equation
  // (uniform bond currents == terminal current) is only restored as
  // eta -> 0; the deviation must shrink linearly with eta.
  const device::Structure st = device::make_test_structure(4);
  auto opt = base_options(st);
  auto deviation = [&](double eta) {
    opt.eta = eta;
    Simulation s(st, opt);
    s.run();
    const auto bonds = bond_currents(s);
    const double il = terminal_current_left(s);
    double dev = 0.0;
    for (const double b : bonds) dev = std::max(dev, std::abs(b - il));
    return std::pair{dev, il};
  };
  const auto [dev_small, il_small] = deviation(1e-5);
  EXPECT_LT(dev_small, 0.01 * std::abs(il_small))
      << "bond currents must match the Meir-Wingreen terminal current";
  const auto [dev_large, il_large] = deviation(1e-3);
  (void)il_large;
  // Measured scaling is linear in eta (100x here); demand at least 20x.
  EXPECT_GT(dev_large, 20.0 * dev_small)
      << "the absorption artifact must scale with eta";
}

TEST(BallisticSmallEta, TransmissionShowsOpenChannelPlateau) {
  // A perfectly periodic device between matched leads transmits every
  // propagating mode: T -> (number of open channels) as eta -> 0.
  const device::Structure st = device::make_test_structure(4);
  auto opt = base_options(st);
  opt.eta = 1e-4;
  Simulation s(st, opt);
  s.run();
  const auto t = transmission(s);
  const double tmax = *std::max_element(t.begin(), t.end());
  EXPECT_GT(tmax, 0.9) << "at least one fully open channel in the band";
  EXPECT_LE(tmax, s.layout().bs + 1e-6);
}

TEST(BallisticEquilibrium, DetailedBalanceHoldsExactly) {
  // At zero bias, G< = -f (G^R - G^A) - 2 i f eta G^R G^A is an exact
  // identity of the ballistic solution (the last term is the finite-eta
  // absorption; see SpectralFunctionSplitsIntoLesserGreater).
  const device::Structure st = device::make_test_structure(3);
  auto opt = base_options(st);
  opt.contacts.mu_right = opt.contacts.mu_left;  // equilibrium
  Simulation s(st, opt);
  s.run();
  const int bs = s.layout().bs;
  for (int e = 0; e < opt.grid.n; e += 3) {
    const double f = fermi_dirac(opt.grid.energy(e), opt.contacts.mu_left,
                                 opt.contacts.temperature_k);
    const la::Matrix gr = la::inverse(s.effective_system_matrix(e).dense());
    la::Matrix want = gr - gr.dagger();
    want += la::mmh(gr, gr) * (2.0 * kI * opt.eta);
    want *= cplx(-f, 0.0);
    for (int i = 0; i < s.layout().nb; ++i) {
      EXPECT_LT(la::max_abs_diff(s.g_lesser()[e].diag(i),
                                 want.block(i * bs, i * bs, bs, bs)),
                1e-9)
          << "e=" << e << " cell=" << i;
    }
  }
  EXPECT_NEAR(terminal_current_left(s), 0.0, 1e-10);
}

TEST(BallisticEquilibrium, DensityIncreasesWithChemicalPotential) {
  const device::Structure st = device::make_test_structure(3);
  auto opt = base_options(st);
  opt.contacts.mu_right = opt.contacts.mu_left;
  Simulation low(st, opt);
  low.run();
  opt.contacts.mu_left += 0.5;
  opt.contacts.mu_right += 0.5;
  Simulation high(st, opt);
  high.run();
  const auto n_low = electron_density(low);
  const auto n_high = electron_density(high);
  double sum_low = std::accumulate(n_low.begin(), n_low.end(), 0.0);
  double sum_high = std::accumulate(n_high.begin(), n_high.end(), 0.0);
  EXPECT_GT(sum_high, sum_low);
  for (const double n : n_low) EXPECT_GE(n, -1e-10);
}

class GwFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    structure_ = new device::Structure(device::make_test_structure(4));
    auto opt = base_options(*structure_);
    opt.gw_scale = 0.3;
    opt.mixing = 0.4;
    opt.max_iterations = 5;
    opt.tol = 1e-6;  // run all 5 iterations
    scba_ = new Simulation(*structure_, opt);
    history_ = scba_->run().history;
  }
  static void TearDownTestSuite() {
    delete scba_;
    delete structure_;
    scba_ = nullptr;
    structure_ = nullptr;
  }
  static device::Structure* structure_;
  static Simulation* scba_;
  static std::vector<IterationResult> history_;
};

device::Structure* GwFixture::structure_ = nullptr;
Simulation* GwFixture::scba_ = nullptr;
std::vector<IterationResult> GwFixture::history_;

TEST_F(GwFixture, SigmaUpdateShrinksAcrossIterations) {
  ASSERT_GE(history_.size(), 3u);
  // Allow transient growth on iteration 2 (Sigma goes 0 -> finite), then
  // require contraction.
  const double late = history_.back().sigma_update;
  const double early = history_[1].sigma_update;
  EXPECT_LT(late, early) << "SCBA must contract";
  EXPECT_LT(late, 0.5);
}

TEST_F(GwFixture, AllQuantitiesKeepLesserSymmetry) {
  for (int e = 0; e < scba_->options().grid.n; e += 9) {
    EXPECT_TRUE(scba_->g_lesser()[e].is_anti_hermitian(1e-9));
    EXPECT_TRUE(scba_->g_greater()[e].is_anti_hermitian(1e-9));
    EXPECT_TRUE(scba_->sigma_lesser(e).is_anti_hermitian(1e-9));
  }
}

TEST_F(GwFixture, KernelTimersCoverPaperRows) {
  const auto& ks = history_.back().kernel_seconds;
  for (const char* name :
       {"G: OBC", "G: RGF", "W: Assembly: Beyn", "W: Assembly: Lyapunov",
        "W: Assembly: LHS", "W: Assembly: RHS", "W: RGF", "Other: P-FFT",
        "Other: Sigma-FFT"}) {
    EXPECT_TRUE(ks.count(name)) << "missing kernel timer " << name;
  }
}

TEST_F(GwFixture, MemoizerKicksInAfterFirstIteration) {
  const auto& stats = scba_->memoizer_stats();
  EXPECT_GT(stats.memoized_calls, 0) << "stabilized OBCs must be memoized";
  // Direct solves happen at least once per (subsystem, contact, energy).
  EXPECT_GT(stats.direct_calls, 0);
  EXPECT_GT(stats.memoized_calls, stats.direct_calls)
      << "after 5 iterations the memoized path must dominate";
}

TEST_F(GwFixture, ScatteringBroadensTheSpectrum) {
  // Electron-electron scattering adds lifetime broadening: the in-gap DOS
  // must grow relative to the ballistic solution, and the current stays
  // the same order of magnitude (it may shift either way at fixed mu as
  // exchange moves the band edges; the I-V example studies the reduction).
  auto opt = scba_->options();
  opt.gw_scale = 0.0;
  Simulation ball(*structure_, opt);
  ball.run();
  const auto gap = structure_->band_gap();
  const auto dos_gw = total_dos(*scba_);
  const auto dos_ball = total_dos(ball);
  const auto& grid = scba_->options().grid;
  double gap_gw = 0.0, gap_ball = 0.0;
  for (int e = 0; e < grid.n; ++e) {
    const double en = grid.energy(e);
    if (en > gap.valence_max + 0.05 && en < gap.conduction_min - 0.05) {
      gap_gw += dos_gw[e];
      gap_ball += dos_ball[e];
    }
  }
  EXPECT_GT(gap_gw, gap_ball) << "GW must add in-gap spectral weight";
  const double i_ball = terminal_current_left(ball);
  const double i_gw = terminal_current_left(*scba_);
  EXPECT_GT(i_ball, 0.0);
  EXPECT_LT(std::abs(i_gw), 10.0 * std::abs(i_ball));
}

TEST_F(GwFixture, FockTermIsHermitian) {
  // The static exchange part of Sigma^R is Hermitian by construction.
  const BlockTridiag sig = scba_->sigma_retarded(scba_->options().grid.n / 2);
  // Its anti-Hermitian part comes only from the dynamic (dissipative)
  // contribution, which must vanish deep outside the spectral support...
  // here we simply check that Sigma^R is not wildly non-analytic: finite
  // entries everywhere.
  EXPECT_LT(sig.max_abs(), 1e3);
}

TEST_F(GwFixture, BandGapRenormalizationIsComputable) {
  const auto bands = band_renormalization(*scba_, 17);
  EXPECT_GT(bands.bare_gap, 0.0);
  EXPECT_GT(bands.corrected_gap, 0.0);
  // GW must actually do something.
  EXPECT_NE(bands.bare_gap, bands.corrected_gap);
}

TEST(GwModes, NestedDissectionMatchesSequentialInsideScba) {
  const device::Structure st = device::make_test_structure(6);
  auto opt = base_options(st);
  opt.gw_scale = 0.25;
  opt.max_iterations = 2;
  opt.grid.n = 24;
  Simulation seq(st, opt);
  seq.run();
  opt.nd_partitions = 3;
  Simulation nd(st, opt);
  nd.run();
  for (int e = 0; e < opt.grid.n; e += 5) {
    EXPECT_LT(bt::max_abs_diff(seq.g_lesser()[e], nd.g_lesser()[e]), 1e-7)
        << "e=" << e;
  }
  EXPECT_NEAR(terminal_current_left(seq), terminal_current_left(nd), 1e-8);
}

TEST(GwModes, MemoizerOnOffGiveSamePhysics) {
  const device::Structure st = device::make_test_structure(3);
  auto opt = base_options(st);
  opt.gw_scale = 0.25;
  opt.max_iterations = 3;
  opt.grid.n = 24;
  opt.use_memoizer = true;
  Simulation with(st, opt);
  with.run();
  opt.use_memoizer = false;
  Simulation without(st, opt);
  without.run();
  EXPECT_NEAR(terminal_current_left(with), terminal_current_left(without),
              1e-5 * (1.0 + std::abs(terminal_current_left(without))));
}

// --- §5.2 symmetry serialization (core/gw.hpp) ----------------------------
// Property tests: serialize_sym keeps only diag + upper blocks; the
// deserializers must reconstruct the dropped lower blocks exactly from the
// lesser/greater symmetry and the retarded/advanced identity.

class SymSerialization : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(SymSerialization, LesserRoundTripsAndRestoresSymmetry) {
  const auto [nb, bs] = GetParam();
  const SymLayout layout{nb, bs};
  for (unsigned seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    BlockTridiag x = BlockTridiag::random_diag_dominant(nb, bs, rng);
    x.anti_hermitize();  // lesser/greater quantities are anti-Hermitian
    const std::vector<cplx> flat = serialize_sym(x);
    ASSERT_EQ(static_cast<std::int64_t>(flat.size()), layout.num_elements());
    const BlockTridiag back = deserialize_lesser(flat, layout);
    EXPECT_LT(bt::max_abs_diff(back, x), 1e-14);
    // Serializing the reconstruction is the identity on the flat storage.
    const std::vector<cplx> flat2 = serialize_sym(back);
    for (std::int64_t k = 0; k < layout.num_elements(); ++k)
      EXPECT_EQ(flat[k], flat2[k]) << "k=" << k;
    // The reconstructed lower blocks obey X_ji = -X_ij†.
    for (int i = 0; i + 1 < nb; ++i)
      EXPECT_LT(la::max_abs_diff(back.lower(i),
                                 back.upper(i).dagger() * cplx(-1.0)),
                1e-14);
  }
}

TEST_P(SymSerialization, RetardedRoundTripsViaJump) {
  const auto [nb, bs] = GetParam();
  const SymLayout layout{nb, bs};
  for (unsigned seed = 4; seed <= 6; ++seed) {
    Rng rng(seed);
    // Random lesser/greater pair -> jump d = X> - X<; random retarded
    // upper/diag elements stored in the same flat layout.
    BlockTridiag xl = BlockTridiag::random_diag_dominant(nb, bs, rng);
    BlockTridiag xg = BlockTridiag::random_diag_dominant(nb, bs, rng);
    xl.anti_hermitize();
    xg.anti_hermitize();
    const std::vector<cplx> flat_l = serialize_sym(xl);
    const std::vector<cplx> flat_g = serialize_sym(xg);
    std::vector<cplx> jump(layout.num_elements());
    for (std::int64_t k = 0; k < layout.num_elements(); ++k)
      jump[k] = flat_g[k] - flat_l[k];
    std::vector<cplx> flat_r(layout.num_elements());
    for (auto& v : flat_r) v = rng.complex_uniform();
    const BlockTridiag xr = deserialize_retarded(flat_r, jump, layout);
    // Diag + upper are verbatim; serializing is again the identity.
    const std::vector<cplx> flat_r2 = serialize_sym(xr);
    for (std::int64_t k = 0; k < layout.num_elements(); ++k)
      EXPECT_EQ(flat_r2[k], flat_r[k]) << "k=" << k;
    // Lower blocks satisfy the element-wise R/A identity
    // X^R_ji = conj(X^R_ij) - conj(X>_ij - X<_ij).
    for (int i = 0; i + 1 < nb; ++i) {
      const la::Matrix jump_blk =
          xg.upper(i) - xl.upper(i);
      for (int a = 0; a < bs; ++a)
        for (int b = 0; b < bs; ++b)
          EXPECT_LT(std::abs(xr.lower(i)(b, a) -
                             (std::conj(xr.upper(i)(a, b)) -
                              std::conj(jump_blk(a, b)))),
                    1e-14)
              << "i=" << i << " a=" << a << " b=" << b;
    }
  }
}

// nb == 1 exercises the no-upper-blocks edge case: the flat layout is the
// single diagonal block and both deserializers must not touch upper/lower.
INSTANTIATE_TEST_SUITE_P(Shapes, SymSerialization,
                         ::testing::Values(std::pair{1, 3}, std::pair{2, 2},
                                           std::pair{4, 3}, std::pair{6, 5}));

TEST(SymSerialization, HermitianRoundTripHermitizesDiagonal) {
  const SymLayout layout{3, 2};
  Rng rng(11);
  std::vector<cplx> flat(layout.num_elements());
  for (auto& v : flat) v = rng.complex_uniform();
  const BlockTridiag h = deserialize_hermitian(flat, layout);
  for (int i = 0; i < 3; ++i)
    EXPECT_LT(la::max_abs_diff(h.diag(i), h.diag(i).dagger()), 1e-14);
  for (int i = 0; i + 1 < 3; ++i)
    EXPECT_LT(la::max_abs_diff(h.lower(i), h.upper(i).dagger()), 1e-14);
}

TEST(GwModes, GatePotentialModulatesCurrent) {
  // A crude FET: lowering the middle-cell barrier turns the device on.
  const device::Structure st = device::make_test_structure(4);
  auto opt = base_options(st);
  opt.cell_potential = {0.0, 0.8, 0.8, 0.0};  // barrier (off state)
  Simulation off(st, opt);
  off.run();
  opt.cell_potential = {0.0, 0.0, 0.0, 0.0};  // no barrier (on state)
  Simulation on(st, opt);
  on.run();
  const double i_off = terminal_current_left(off);
  const double i_on = terminal_current_left(on);
  EXPECT_GT(i_on, i_off * 2.0) << "barrier must suppress current";
}

}  // namespace
}  // namespace qtx::core
