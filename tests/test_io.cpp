// Scenario/IO layer suite (ctest label "io"):
//
//  - string binding of SimulationOptions / StructureParams: parse ->
//    serialize -> parse identity, unknown-key and type-error diagnostics
//  - device preset catalog: every preset builds, quickstart matches
//    make_test_structure(4) exactly
//  - scenario parser: the checked-in scenarios/ decks round-trip through
//    serialize_scenario, and every diagnostic points at <file>:<line>
//  - result writers: golden-file comparison of the full CSV/JSON output of
//    a fixed synthetic result set (regenerate with QTX_UPDATE_GOLDEN=1)
//  - pipeline reuse: a reused EnergyPipeline is bit-identical to a fresh
//    one; sweeps build the engine once when the layout is fixed
//  - the StageRegistry catalog: describe() covers the builtins and every
//    key appears in docs/userguide.md
//  - qtx CLI smoke: the real binary runs the quickstart scenario and its
//    transmission CSV matches tests/golden/quickstart_transmission.txt
//    bit-identically; sweep mode emits a multi-point CSV

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "io/scenario_runner.hpp"

#ifndef QTX_GOLDEN_DIR
#error "QTX_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif
#ifndef QTX_SCENARIO_DIR
#error "QTX_SCENARIO_DIR must point at scenarios/ (set by CMakeLists.txt)"
#endif
#ifndef QTX_DOCS_DIR
#error "QTX_DOCS_DIR must point at docs/ (set by CMakeLists.txt)"
#endif
#ifndef QTX_QTX_BIN
#error "QTX_QTX_BIN must point at the qtx binary (set by CMakeLists.txt)"
#endif

namespace qtx {
namespace {

namespace fs = std::filesystem;

bool update_golden() {
  const char* env = std::getenv("QTX_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Compare \p got against the checked-in golden text verbatim; with
/// QTX_UPDATE_GOLDEN=1 rewrite the golden file instead (commit the diff).
void compare_text_golden(const std::string& name, const std::string& got) {
  const std::string path = std::string(QTX_GOLDEN_DIR) + "/" + name;
  if (update_golden()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    return;
  }
  ASSERT_TRUE(fs::exists(path))
      << "missing golden file " << path
      << "; regenerate with QTX_UPDATE_GOLDEN=1 ./test_io";
  EXPECT_EQ(got, read_file(path)) << "golden " << name << " drifted";
}

/// Golden .txt reader (same format as test_golden: '#' comments, one
/// double per line at %.17g).
std::vector<double> read_golden_values(const std::string& name) {
  std::ifstream in(std::string(QTX_GOLDEN_DIR) + "/" + name + ".txt");
  EXPECT_TRUE(in.good()) << "missing golden " << name;
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    values.push_back(std::strtod(line.c_str(), nullptr));
  }
  return values;
}

std::string scenario_path(const std::string& name) {
  return std::string(QTX_SCENARIO_DIR) + "/" + name;
}

// ---------------------------------------------------------------------------
// SimulationOptions string binding
// ---------------------------------------------------------------------------

TEST(OptionsBinding, SerializeApplyRoundTripsDefaults) {
  const core::SimulationOptions defaults;
  core::SimulationOptions rebuilt;
  rebuilt.eta = -1.0;  // scribble so the round trip must restore it
  for (const core::OptionKV& kv : core::serialize_options(defaults))
    core::set_option(rebuilt, kv.first, kv.second);
  EXPECT_EQ(core::serialize_options(rebuilt),
            core::serialize_options(defaults));
}

TEST(OptionsBinding, RoundTripsAwkwardValues) {
  core::SimulationOptions opt;
  opt.grid = {-5.123456789012345, 7.0 / 3.0, 97};
  opt.eta = 1.0 / 3.0;
  opt.contacts = {0.1 + 0.2, -1e-300, 123.456};
  opt.mixing = 0.7;
  opt.tol = 1e-12;
  opt.cell_potential = {0.0, -0.1, 1.0 / 7.0, 3e17};
  opt.self_energy_channels = {"gw", "ephonon"};
  opt.obc_backend = "beyn";
  opt.num_threads = 8;
  opt.use_memoizer = false;
  core::SimulationOptions rebuilt;
  for (const core::OptionKV& kv : core::serialize_options(opt))
    core::set_option(rebuilt, kv.first, kv.second);
  EXPECT_EQ(core::serialize_options(rebuilt), core::serialize_options(opt));
  EXPECT_EQ(rebuilt.grid.e_min, opt.grid.e_min);  // bit-identical doubles
  EXPECT_EQ(rebuilt.cell_potential, opt.cell_potential);
  EXPECT_EQ(rebuilt.self_energy_channels, opt.self_energy_channels);
}

TEST(OptionsBinding, UnknownKeyListsKnownKeys) {
  core::SimulationOptions opt;
  try {
    core::set_option(opt, "ga_scale", "0.3");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown option key \"ga_scale\""), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("gw_scale"), std::string::npos)
        << "should list known keys: " << msg;
  }
}

TEST(OptionsBinding, TypeErrorNamesKeyAndValue) {
  core::SimulationOptions opt;
  try {
    core::set_option(opt, "eta", "abc");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("\"eta\""), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected a number"), std::string::npos) << msg;
    EXPECT_NE(msg.find("\"abc\""), std::string::npos) << msg;
  }
  EXPECT_THROW(core::set_option(opt, "grid.n", "64.5"), std::runtime_error);
  EXPECT_THROW(core::set_option(opt, "use_memoizer", "maybe"),
               std::runtime_error);
}

TEST(OptionsBinding, RejectsNumericOverflowInsteadOfClamping) {
  core::SimulationOptions opt;
  // "1e999" would clamp to +inf and sail through validate()'s eta > 0.
  EXPECT_THROW(core::set_option(opt, "eta", "1e999"), std::runtime_error);
  // Would wrap through static_cast<int> without the 32-bit range check.
  EXPECT_THROW(core::set_option(opt, "grid.n", "4294967300"),
               std::runtime_error);
  EXPECT_THROW(core::set_option(opt, "max_iterations",
                                "99999999999999999999999"),
               std::runtime_error);
  // Literal inf/nan spellings are typos in a physics deck, not values.
  EXPECT_THROW(core::set_option(opt, "eta", "inf"), std::runtime_error);
  EXPECT_THROW(core::set_option(opt, "eta", "nan"), std::runtime_error);
  // Gradual underflow must stay accepted: tiny serialized values
  // round-trip through provenance headers.
  core::set_option(opt, "eta", "1e-310");
  EXPECT_GT(opt.eta, 0.0);
}

TEST(OptionsBinding, KeysAreStableAndComplete) {
  const std::vector<std::string> keys = core::option_keys();
  // Sticky-default keys (the mixer family) are omitted from a default
  // serialization — the append-only provenance policy — so the serialized
  // set is a subset of the key list, never the other way around.
  const std::vector<core::OptionKV> defaults = core::serialize_options({});
  EXPECT_LT(defaults.size(), keys.size());
  for (const core::OptionKV& kv : defaults)
    EXPECT_NE(std::find(keys.begin(), keys.end(), kv.first), keys.end())
        << kv.first;
  // Spot-check the documented schema anchors (docs/userguide.md table).
  for (const char* k :
       {"grid.n", "eta", "contacts.mu_left", "gw_scale", "obc_backend",
        "greens_backend", "executor", "num_threads", "self_energy_channels",
        "mixer", "mixing_history", "mixing_regularization",
        "divergence_factor"})
    EXPECT_NE(std::find(keys.begin(), keys.end(), k), keys.end()) << k;
}

TEST(OptionsBinding, StickyDefaultMixerKeysSerializeOnlyWhenSet) {
  // Default configuration: byte-stable provenance — no mixer keys at all.
  for (const core::OptionKV& kv : core::serialize_options({}))
    for (const char* sticky : {"mixer", "mixing_history",
                               "mixing_regularization", "divergence_factor"})
      EXPECT_NE(kv.first, sticky);
  // Non-default values must serialize and round-trip exactly.
  core::SimulationOptions opt;
  opt.mixer = "anderson";
  opt.mixing_history = 7;
  opt.mixing_regularization = 1e-3;
  opt.divergence_factor = 25.0;
  const std::vector<core::OptionKV> kvs = core::serialize_options(opt);
  const auto has = [&](const char* key) {
    for (const core::OptionKV& kv : kvs)
      if (kv.first == key) return true;
    return false;
  };
  EXPECT_TRUE(has("mixer"));
  EXPECT_TRUE(has("mixing_history"));
  EXPECT_TRUE(has("mixing_regularization"));
  EXPECT_TRUE(has("divergence_factor"));
  core::SimulationOptions rebuilt;
  for (const core::OptionKV& kv : kvs)
    core::set_option(rebuilt, kv.first, kv.second);
  EXPECT_EQ(rebuilt.mixer, "anderson");
  EXPECT_EQ(rebuilt.mixing_history, 7);
  EXPECT_EQ(rebuilt.mixing_regularization, 1e-3);
  EXPECT_EQ(rebuilt.divergence_factor, 25.0);
}

// ---------------------------------------------------------------------------
// Device presets and StructureParams binding
// ---------------------------------------------------------------------------

TEST(DevicePresets, QuickstartMatchesTestStructure) {
  const device::StructureParams preset = device::device_preset("quickstart");
  const device::StructureParams reference =
      device::make_test_structure(4).params();
  EXPECT_EQ(device::serialize_structure_params(preset),
            device::serialize_structure_params(reference));
}

TEST(DevicePresets, EveryPresetBuildsAStructure) {
  for (const device::DevicePreset& p : device::device_presets()) {
    SCOPED_TRACE(p.name);
    EXPECT_FALSE(p.description.empty());
    const device::Structure st(p.params);  // ctor validates the params
    EXPECT_GE(st.num_cells(), 2);
    EXPECT_GT(st.band_gap().gap(), 0.0) << "presets are semiconducting";
  }
}

TEST(DevicePresets, UnknownPresetListsCatalog) {
  try {
    device::device_preset("nanotube");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown device preset \"nanotube\""),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("nanowire-vacancy"), std::string::npos) << msg;
  }
}

TEST(DevicePresets, ParamBindingRoundTrips) {
  device::StructureParams p = device::device_preset("cnt");
  p.seed = 987654321012345ull;
  p.dimerization = 1.0 / 3.0;
  device::StructureParams rebuilt;
  for (const auto& kv : device::serialize_structure_params(p))
    device::set_structure_param(rebuilt, kv.first, kv.second);
  EXPECT_EQ(device::serialize_structure_params(rebuilt),
            device::serialize_structure_params(p));
}

TEST(DevicePresets, VacancyOrbitalChangesTheDevice) {
  device::StructureParams pristine = device::device_preset("quickstart");
  device::StructureParams defective = pristine;
  defective.vacancy_orbital = 3;
  const auto h0 = device::Structure(pristine).hamiltonian_bt();
  const auto h1 = device::Structure(defective).hamiltonian_bt();
  EXPECT_NE(h0.diag(0)(3, 3), h1.diag(0)(3, 3))
      << "the vacancy orbital's onsite energy must shift";
  EXPECT_THROW(device::Structure([&] {
                 device::StructureParams bad = pristine;
                 bad.vacancy_orbital = 99;  // outside the PUC
                 return bad;
               }()),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Scenario parser
// ---------------------------------------------------------------------------

TEST(ScenarioParser, ParsesTheQuickstartDeck) {
  const io::Scenario s =
      io::parse_scenario_file(scenario_path("quickstart.ini"));
  EXPECT_EQ(s.name, "quickstart");
  EXPECT_EQ(s.device_preset, "quickstart");
  EXPECT_EQ(s.device.num_cells, 4);
  EXPECT_EQ(s.solver.grid.n, 64);
  EXPECT_EQ(s.solver.max_iterations, 4);
  EXPECT_EQ(s.solver.gw_scale, 0.3);
  EXPECT_EQ(s.mu_reference, "conduction-min");
  EXPECT_TRUE(s.has_mu_spec);
  EXPECT_EQ(s.mu_left, 0.3);
  EXPECT_EQ(s.mu_right, 0.1);
  EXPECT_TRUE(s.output.csv);
  EXPECT_TRUE(s.output.json);
  EXPECT_FALSE(s.has_sweep());
}

TEST(ScenarioParser, EveryCheckedInDeckRoundTrips) {
  for (const char* deck : {"quickstart.ini", "nanoribbon_iv.ini",
                           "nanowire_vacancy.ini", "cnt_temperature.ini"}) {
    SCOPED_TRACE(deck);
    const io::Scenario s1 = io::parse_scenario_file(scenario_path(deck));
    const std::string canonical = io::serialize_scenario(s1);
    const io::Scenario s2 = io::parse_scenario_text(canonical, deck);
    EXPECT_EQ(io::serialize_scenario(s2), canonical)
        << "parse(serialize(parse(x))) must be an identity";
  }
}

void expect_parse_error(const std::string& text, const std::string& at,
                        const std::string& fragment) {
  try {
    io::parse_scenario_text(text, "deck.ini");
    FAIL() << "expected ScenarioError for: " << fragment;
  } catch (const io::ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("deck.ini:" + at, 0), 0)
        << "diagnostic must start with file:line, got: " << msg;
    EXPECT_NE(msg.find(fragment), std::string::npos) << msg;
  }
}

TEST(ScenarioParser, DiagnosticsPointAtFileAndLine) {
  expect_parse_error("[solver]\neta = 0.02\netaa = 3\n", "3:",
                     "unknown option key \"etaa\"");
  expect_parse_error("[solver]\neta = abc\n", "2:", "expected a number");
  expect_parse_error("[device]\npreset = warp-core\n", "2:",
                     "unknown device preset");
  expect_parse_error("[device]\nnum_cellz = 4\n", "2:",
                     "unknown device parameter");
  expect_parse_error("eta = 0.02\n", "1:", "before any [section]");
  expect_parse_error("[warp]\n", "1:", "unknown section");
  expect_parse_error("[solver\n", "1:", "malformed section header");
  expect_parse_error("[solver]\njust some words\n", "2:",
                     "expected \"key = value\"");
  expect_parse_error("[solver]\ngrid = -6 6\n", "2:", "3 values");
  // The grid shorthand must range-check n like the grid.n key does.
  expect_parse_error("[solver]\ngrid = -6 6 4294967298\n", "2:",
                     "32-bit range");
  expect_parse_error("[solver]\nmu_reference = fermi\n", "2:",
                     "mu_reference must be one of");
  expect_parse_error("[output]\nformats = csv yaml\n", "2:",
                     "unknown output format \"yaml\"");
  expect_parse_error("[sweep]\nvalues = 1 2 3\n", "2:",
                     "no parameter");  // reported at the last line read
  expect_parse_error("[device]\nnum_cells = 12\npreset = cnt\n", "3:",
                     "\"preset\" must come before");
}

TEST(ScenarioParser, DuplicateKeysAreRejectedWithFileLine) {
  expect_parse_error("[solver]\neta = 0.02\nmixing = 0.5\neta = 0.03\n",
                     "4:", "duplicate key \"eta\" in [solver]");
  expect_parse_error("[device]\npreset = cnt\nnum_cells = 6\nnum_cells = 8\n",
                     "4:", "duplicate key \"num_cells\" in [device]");
  // A reopened section does not reset the bookkeeping.
  expect_parse_error(
      "[solver]\neta = 0.02\n[device]\npreset = cnt\n[solver]\neta = 0.05\n",
      "6:", "duplicate key \"eta\"");
}

TEST(ScenarioParser, SweepOverUnknownOptionKeyFailsAtItsLine) {
  expect_parse_error("[sweep]\nparameter = etaa\nvalues = 1 2\n", "2:",
                     "[sweep] parameter \"etaa\"");
  expect_parse_error("[sweep]\nparameter = etaa\nvalues = 1 2\n", "2:",
                     "known parameters: bias, temperature");
  // String-typed option keys cannot take numeric sweep values: reject at
  // the parameter line instead of failing after the first solved point.
  expect_parse_error("[sweep]\nparameter = mixer\nvalues = 1 2\n", "2:",
                     "string-typed option");
  expect_parse_error("[sweep]\nparameter = obc_backend\nvalues = 1\n", "2:",
                     "string-typed option");
  // bias/temperature and numeric option keys (including the mixer family)
  // all pass the eager validation.
  for (const char* good :
       {"bias", "temperature", "grid.n", "mixing_history",
        "divergence_factor"}) {
    const io::Scenario s = io::parse_scenario_text(
        std::string("[sweep]\nparameter = ") + good + "\nvalues = 1\n",
        "deck.ini");
    EXPECT_EQ(s.sweep.parameter, good);
  }
}

TEST(ScenarioParser, CommentsAndWhitespaceAreTolerated) {
  const io::Scenario s = io::parse_scenario_text(
      "  # full-line comment\n"
      "\n"
      "[solver]   ; trailing comment\n"
      "  eta   =   0.05   # trailing\n"
      "; another full-line comment\n"
      "max_iterations=3\n",
      "deck.ini");
  EXPECT_EQ(s.solver.eta, 0.05);
  EXPECT_EQ(s.solver.max_iterations, 3);
}

TEST(ScenarioParser, DeckWithoutDeviceSectionRunsTheDefaultPreset) {
  // The provenance claims "preset = quickstart"; the device params must
  // actually be the quickstart preset, not StructureParams{} defaults.
  const io::Scenario s =
      io::parse_scenario_text("[solver]\neta = 0.05\n", "deck.ini");
  EXPECT_EQ(s.device_preset, "quickstart");
  EXPECT_EQ(device::serialize_structure_params(s.device),
            device::serialize_structure_params(
                device::device_preset("quickstart")));
}

TEST(ScenarioParser, ExplicitNameSurvivesFileParsing) {
  const std::string deck = "qtx_parser_named.ini";
  {
    std::ofstream out(deck);
    out << "[scenario]\nname = custom-name\n[solver]\neta = 0.05\n";
  }
  EXPECT_EQ(io::parse_scenario_file(deck).name, "custom-name");
}

TEST(ScenarioParser, DeviceOverridesComposeWithPreset) {
  const io::Scenario s = io::parse_scenario_text(
      "[device]\npreset = nanoribbon\nnum_cells = 12\nhopping_ev = 1.5\n",
      "deck.ini");
  EXPECT_EQ(s.device_preset, "nanoribbon");
  EXPECT_EQ(s.device.num_cells, 12);        // override
  EXPECT_EQ(s.device.hopping_ev, 1.5);      // override
  EXPECT_EQ(s.device.dimerization, 0.10);   // preset value kept
}

TEST(ScenarioParser, MuReferenceResolvesAgainstBandEdges) {
  const io::Scenario s = io::parse_scenario_text(
      "[device]\npreset = quickstart\n"
      "[solver]\nmu_reference = conduction-min\nmu_left = 0.3\n"
      "mu_right = 0.1\n",
      "deck.ini");
  const device::Structure st = io::make_structure(s);
  const core::SimulationOptions opt = io::resolved_solver_options(s, st);
  const auto gap = st.band_gap();
  EXPECT_EQ(opt.contacts.mu_left, gap.conduction_min + 0.3);
  EXPECT_EQ(opt.contacts.mu_right, gap.conduction_min + 0.1);
}

// ---------------------------------------------------------------------------
// Line endings and the canonical deck hash
// ---------------------------------------------------------------------------

TEST(ScenarioParser, CrlfDecksParseIdenticallyToLf) {
  const std::string lf =
      "[device]\npreset = quickstart\nnum_cells = 3\n"
      "[solver]\neta = 0.05\nmax_iterations = 2\n";
  std::string crlf;
  for (const char c : lf) crlf += (c == '\n') ? std::string("\r\n") : std::string(1, c);
  const io::Scenario a = io::parse_scenario_text(lf, "lf.ini");
  const io::Scenario b = io::parse_scenario_text(crlf, "crlf.ini");
  EXPECT_EQ(io::serialize_scenario(a), io::serialize_scenario(b));
  EXPECT_EQ(io::canonical_deck_hash(a), io::canonical_deck_hash(b));
}

TEST(ScenarioParser, BareCrLineEndingsAreRejectedWithALocatedError) {
  // A CR-only (classic Mac) deck arrives as one getline "line" full of
  // embedded CRs — reject it with a conversion hint instead of silently
  // mis-parsing everything past the first CR.
  expect_parse_error("[solver]\reta = 0.05\rmax_iterations = 2\r", "1:",
                     "CR-only");
}

TEST(DeckHash, CanonicalTextRoundTripsToTheSameHash) {
  const io::Scenario s = io::parse_scenario_text(
      "[device]\npreset = quickstart\n[solver]\neta = 0.04\n", "a.ini");
  const io::Scenario back =
      io::parse_scenario_text(io::serialize_scenario(s), "b.ini");
  EXPECT_EQ(io::canonical_deck_hash(back), io::canonical_deck_hash(s));
  EXPECT_EQ(io::canonical_deck_hash_hex(s).size(), 16u);
}

TEST(DeckHash, FormattingAndCommentDifferencesCollapse) {
  const io::Scenario plain = io::parse_scenario_text(
      "[solver]\neta = 0.05\nmax_iterations = 3\n", "plain.ini");
  const io::Scenario noisy = io::parse_scenario_text(
      "# a comment\n\n[solver]   ; section\n"
      "max_iterations=3\n  eta   =   0.05   # trailing\n",
      "noisy.ini");
  EXPECT_EQ(io::canonical_deck_hash(noisy), io::canonical_deck_hash(plain));
}

TEST(DeckHash, SingleKeyValueMutationsChangeTheHash) {
  // Property fuzz: for random decks, mutating any one value of the
  // canonical text that survives reparsing must land on a different hash
  // — the guarantee the serve ResultCache keys on.
  Rng rng(20250808);
  auto randint = [&rng](int lo, int hi) {
    return lo + static_cast<int>((rng.uniform() + 1.0) / 2.0 * (hi - lo));
  };
  int mutations_checked = 0;
  for (int trial = 0; trial < 8; ++trial) {
    std::ostringstream deck;
    deck << "[device]\npreset = quickstart\nnum_cells = " << randint(2, 4)
         << "\n[solver]\ngrid = -2.0 2.0 " << randint(4, 16)
         << "\neta = 0.0" << randint(1, 9)
         << "\nmax_iterations = " << randint(1, 4)
         << "\nmixing = 0." << randint(1, 9) << "\n";
    const io::Scenario s = io::parse_scenario_text(deck.str(), "fuzz.ini");
    const std::string canon = io::serialize_scenario(s);
    const std::uint64_t hash = io::canonical_deck_hash(s);

    std::istringstream lines(canon);
    std::string line;
    std::size_t offset = 0;
    while (std::getline(lines, line)) {
      const std::size_t line_start = offset;
      offset += line.size() + 1;
      if (line.find(" = ") == std::string::npos) continue;
      // Append a digit to the value: numeric values change magnitude,
      // string values usually stop parsing (those mutants are skipped).
      std::string mutated = canon;
      mutated.insert(line_start + line.size(), "1");
      io::Scenario m;
      try {
        m = io::parse_scenario_text(mutated, "mutant.ini");
      } catch (const io::ScenarioError&) {
        continue;
      }
      if (io::serialize_scenario(m) == canon) continue;  // no-op mutant
      EXPECT_NE(io::canonical_deck_hash(m), hash)
          << "mutated line collided: " << line;
      ++mutations_checked;
    }
  }
  // The fuzz must actually have exercised a healthy number of mutants.
  EXPECT_GT(mutations_checked, 20);
}

// ---------------------------------------------------------------------------
// Result writers (golden files; regenerate with QTX_UPDATE_GOLDEN=1)
// ---------------------------------------------------------------------------

/// A fixed synthetic result set: deterministic by construction (no wall
/// times from a real run), so the writer output is byte-stable.
io::ScenarioResults synthetic_results() {
  io::ScenarioResults r;
  r.energies = {-1.0, 0.0, 1.0, 2.0};
  r.transmission = {0.0, 1.0 / 3.0, 1.9999999999999998, 4.0};
  r.dos = {0.25, 1e-17, 3.5, 0.125};
  r.density = {1.5, 2.5, 3.5};
  r.current_left = {0.0, 1e-6, 2e-6, 0.0};
  r.current_right = {0.0, -1e-6, -2e-6, 0.0};
  r.terminal_left = 3.0000000000000004e-06;
  r.terminal_right = -3e-06;
  r.result.converged = true;
  r.result.iterations = 2;
  r.result.stop_reason = core::StopReason::kConverged;
  r.result.final_update = 5e-4;
  r.result.total_seconds = 1.5;
  core::IterationResult it1;
  it1.iteration = 1;
  it1.sigma_update = 0.5;
  it1.seconds = 1.0;
  core::IterationResult it2;
  it2.iteration = 2;
  it2.sigma_update = 5e-4;
  it2.seconds = 0.5;
  it2.converged = true;
  it2.stop = core::StopReason::kConverged;
  r.result.history = {it1, it2};
  r.result.kernel_seconds = {{"G: RGF", 0.75}, {"W: RGF", 0.5}};
  r.result.kernel_flops = {{"G: RGF", 123456789}};
  return r;
}

io::Scenario synthetic_scenario() {
  io::Scenario s;
  s.name = "writer-golden";
  s.device_preset = "quickstart";
  s.device = device::device_preset("quickstart");
  s.solver.grid = {-1.0, 2.0, 4};
  s.solver.max_iterations = 2;
  s.sweep.parameter = "bias";
  s.sweep.values = {0.0, 0.1};
  return s;
}

TEST(ResultWriter, CsvFilesMatchGolden) {
  const io::Scenario s = synthetic_scenario();
  const io::ScenarioResults r = synthetic_results();
  const std::string dir = "test_io_writer_out";
  fs::create_directories(dir);
  io::write_result_csvs(dir, s, s.solver, r);
  for (const char* name : {"transmission", "dos", "density", "currents",
                           "trace", "timings"}) {
    SCOPED_TRACE(name);
    compare_text_golden("io_" + std::string(name) + "_csv.txt",
                        read_file(dir + "/" + name + ".csv"));
  }
}

TEST(ResultWriter, JsonMatchesGolden) {
  const io::Scenario s = synthetic_scenario();
  const std::string dir = "test_io_writer_out";
  fs::create_directories(dir);
  const std::string path =
      io::write_result_json(dir, s, s.solver, synthetic_results());
  compare_text_golden("io_results_json.txt", read_file(path));
}

TEST(ResultWriter, SweepCsvMatchesGolden) {
  const io::Scenario s = synthetic_scenario();
  const std::string dir = "test_io_writer_out";
  fs::create_directories(dir);
  io::SweepRow a{0.0, 1e-6, -1e-6, 2, true, 4e-4};
  io::SweepRow b{0.1, 2e-6, -2e-6, 3, false, 2e-2};
  const std::string path = io::write_sweep_csv(dir, s, s.solver, {a, b});
  compare_text_golden("io_sweep_csv.txt", read_file(path));
}

TEST(ResultWriter, CsvColumnsReadBackBitIdentically) {
  const std::vector<double> xs = {-1.0, 1.0 / 3.0, 1e-300, 3.14159};
  const std::vector<double> ys = {0.1 + 0.2, -7.0, 2e17, 0.0};
  std::ostringstream os;
  io::write_csv(os, {"provenance line"}, {{"x", &xs}, {"y", &ys}});
  std::istringstream in(os.str());
  EXPECT_EQ(io::read_csv_column(in, 1), ys);  // exact double equality
  std::istringstream in2(os.str());
  EXPECT_EQ(io::read_csv_column(in2, 0), xs);
}

TEST(ResultWriter, CsvReaderHandlesCrlfAndRejectsBareCr) {
  // CRLF files (Windows editors, git autocrlf) read back exactly like LF
  // ones — the trailing CR must not corrupt the last column.
  std::istringstream crlf("# note\r\nx,y\r\n1,2\r\n3,4\r\n");
  EXPECT_EQ(io::read_csv_column(crlf, 1), (std::vector<double>{2.0, 4.0}));
  // CR-only files used to yield a silently empty column (getline never
  // fires); now they are rejected with a conversion hint.
  std::istringstream cr_only("x,y\r1,2\r3,4\r");
  EXPECT_THROW(io::read_csv_column(cr_only, 1), std::runtime_error);
}

TEST(ResultWriter, RenderMatchesTheWrittenFileBytes) {
  // render_result_json is documented as "the exact bytes write_result_json
  // puts on disk" — the serve daemon depends on that equivalence.
  const io::Scenario s = synthetic_scenario();
  const io::ScenarioResults r = synthetic_results();
  const std::string dir = "test_io_writer_out";
  fs::create_directories(dir);
  const std::string path = io::write_result_json(dir, s, s.solver, r);
  EXPECT_EQ(io::render_result_json(s, s.solver, r), read_file(path));
}

TEST(ResultWriter, ProvenanceRoundTripsThroughTheBindings) {
  const io::Scenario s = synthetic_scenario();
  // Every "solver.key = value" provenance line must re-apply cleanly —
  // the guarantee that a result file fully records its configuration.
  core::SimulationOptions rebuilt;
  for (const std::string& line : io::provenance_lines(s, s.solver)) {
    const std::size_t eq = line.find(" = ");
    if (line.rfind("solver.", 0) != 0 || eq == std::string::npos) continue;
    core::set_option(rebuilt, line.substr(7, eq - 7), line.substr(eq + 3));
  }
  EXPECT_EQ(core::serialize_options(rebuilt),
            core::serialize_options(s.solver));
}

// ---------------------------------------------------------------------------
// Scenario running and pipeline reuse
// ---------------------------------------------------------------------------

/// A deliberately tiny interacting scenario so the runner tests stay fast.
io::Scenario mini_scenario() {
  io::Scenario s;
  s.name = "mini";
  s.device_preset = "quickstart";
  s.device = device::device_preset("quickstart");
  s.solver.grid = {-5.0, 5.0, 12};
  s.solver.eta = 0.05;
  s.solver.gw_scale = 0.2;
  s.solver.mixing = 0.5;
  s.solver.max_iterations = 2;
  s.solver.tol = 1e-6;
  s.mu_reference = "conduction-min";
  s.mu_left = 0.3;
  s.mu_right = 0.1;
  s.has_mu_spec = true;
  return s;
}

TEST(ScenarioRunner, ReusedPipelineIsBitIdentical) {
  const io::Scenario s = mini_scenario();
  const io::RunOutcome fresh = io::run_scenario(s);

  // Second run hands the first run's engine back in: same batches, same
  // backends; reset() must make it cold again.
  const device::Structure st = io::make_structure(s);
  const core::SimulationOptions opt = io::resolved_solver_options(s, st);
  core::Simulation first(st, opt);
  first.run();
  const io::RunOutcome reused = io::run_scenario(
      s, core::StageRegistry::global(), nullptr, first.shared_pipeline());

  ASSERT_EQ(reused.results.transmission.size(),
            fresh.results.transmission.size());
  for (std::size_t i = 0; i < fresh.results.transmission.size(); ++i)
    EXPECT_EQ(reused.results.transmission[i], fresh.results.transmission[i])
        << "entry " << i;
  EXPECT_EQ(reused.results.terminal_left, fresh.results.terminal_left);
}

TEST(ScenarioRunner, IncompatiblePipelineIsRejected) {
  const io::Scenario s = mini_scenario();
  const device::Structure st = io::make_structure(s);
  core::SimulationOptions opt = io::resolved_solver_options(s, st);
  core::Simulation sim(st, opt);
  opt.grid.n = 16;  // different batch layout
  try {
    core::Simulation bad(st, opt, core::StageRegistry::global(),
                         sim.shared_pipeline());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot reuse"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioRunner, BiasSweepReusesOnePipeline) {
  io::Scenario s = mini_scenario();
  s.sweep.parameter = "bias";
  s.sweep.values = {0.0, 0.2};
  const io::SweepOutcome out = io::run_sweep(s);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.pipeline_builds, 1)
      << "a fixed-grid sweep must reuse the energy pipeline";
  // Zero bias collapses the window onto the midpoint: both terminal
  // currents should be (near-)equal and far below the biased point's.
  EXPECT_LT(std::abs(out.rows[0].terminal_left),
            std::abs(out.rows[1].terminal_left));
}

TEST(ScenarioRunner, SweepPointsMatchStandaloneRuns) {
  io::Scenario s = mini_scenario();
  s.sweep.parameter = "temperature";
  s.sweep.values = {200.0, 400.0};
  const io::SweepOutcome sweep = io::run_sweep(s);
  ASSERT_EQ(sweep.rows.size(), 2u);
  for (std::size_t i = 0; i < sweep.rows.size(); ++i) {
    SCOPED_TRACE(i);
    io::Scenario point = s;
    point.sweep = {};  // standalone run of the same physics
    point.solver.contacts.temperature_k = sweep.rows[i].value;
    const device::Structure st = io::make_structure(point);
    core::SimulationOptions opt = io::resolved_solver_options(point, st);
    opt.contacts.temperature_k = sweep.rows[i].value;
    core::Simulation sim(st, opt);
    sim.run();
    EXPECT_EQ(core::terminal_current_left(sim),
              sweep.rows[i].terminal_left)
        << "sweep reuse must not change the physics";
  }
}

TEST(ScenarioRunner, SolverConfigSweepRebuildsPerPoint) {
  // symmetrize is baked into the constructed Green's solvers; reset()
  // cannot re-configure them, so the sweep must rebuild the pipeline.
  io::Scenario s = mini_scenario();
  s.sweep.parameter = "symmetrize";
  s.sweep.values = {1, 0};
  const io::SweepOutcome out = io::run_sweep(s);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.pipeline_builds, 2)
      << "stale symmetrize configuration must not be reused";
}

TEST(ScenarioRunner, GridSweepRebuildsPerPoint) {
  io::Scenario s = mini_scenario();
  s.sweep.parameter = "grid.n";
  s.sweep.values = {8, 12};
  const io::SweepOutcome out = io::run_sweep(s);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.pipeline_builds, 2)
      << "an energy-resolution sweep changes the batch layout";
}

// ---------------------------------------------------------------------------
// Registry catalog and documentation coverage
// ---------------------------------------------------------------------------

TEST(RegistryDescribe, CoversEveryBuiltinWithADescription) {
  const auto backends = core::StageRegistry::global().describe();
  const auto find = [&](const std::string& kind, const std::string& key) {
    for (const core::BackendDescription& b : backends)
      if (b.kind == kind && b.key == key) return b.description;
    return std::string("<missing>");
  };
  for (const char* key : {"memoized", "beyn", "lyapunov"})
    EXPECT_FALSE(find("obc", key).empty() || find("obc", key) == "<missing>")
        << key;
  for (const char* key : {"rgf", "nested-dissection"})
    EXPECT_NE(find("greens", key), "<missing>") << key;
  for (const char* key : {"gw", "fock", "ephonon"})
    EXPECT_NE(find("channel", key), "<missing>") << key;
  for (const char* key : {"sequential", "omp"})
    EXPECT_NE(find("executor", key), "<missing>") << key;
  for (const core::BackendDescription& b : backends)
    EXPECT_FALSE(b.description.empty())
        << "builtin \"" << b.key << "\" needs a one-line description";
}

TEST(RegistryDescribe, UserguideDocumentsEveryRegisteredKey) {
  const std::string guide =
      read_file(std::string(QTX_DOCS_DIR) + "/userguide.md");
  for (const core::BackendDescription& b :
       core::StageRegistry::global().describe()) {
    EXPECT_NE(guide.find("`" + b.key + "`"), std::string::npos)
        << "backend key \"" << b.key << "\" (kind " << b.kind
        << ") is missing from docs/userguide.md — update the backend table";
  }
  for (const std::string& name : device::device_preset_names())
    EXPECT_NE(guide.find("`" + name + "`"), std::string::npos)
        << "device preset \"" << name
        << "\" is missing from docs/userguide.md";
}

// ---------------------------------------------------------------------------
// qtx CLI smoke tests (run the real binary)
// ---------------------------------------------------------------------------

int run_cli(const std::string& args, const std::string& log) {
  const std::string cmd =
      std::string("\"") + QTX_QTX_BIN + "\" " + args + " > " + log + " 2>&1";
  return std::system(cmd.c_str());
}

TEST(QtxCli, RunReproducesTheGoldenTransmissionBitIdentically) {
  const std::string out_dir = "qtx_smoke_out";
  fs::remove_all(out_dir);
  ASSERT_EQ(run_cli("run \"" + scenario_path("quickstart.ini") +
                        "\" --out " + out_dir + " --quiet",
                    "qtx_smoke_run.log"),
            0)
      << read_file("qtx_smoke_run.log");

  std::ifstream csv(out_dir + "/transmission.csv");
  ASSERT_TRUE(csv.good()) << "qtx run must write transmission.csv";
  const std::vector<double> got = io::read_csv_column(csv, 1);
  const std::vector<double> want =
      read_golden_values("quickstart_transmission");
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(got[i], want[i])
        << "CLI transmission drifted from the golden file at entry " << i;
  EXPECT_TRUE(fs::exists(out_dir + "/results.json"));
  EXPECT_TRUE(fs::exists(out_dir + "/dos.csv"));
  EXPECT_TRUE(fs::exists(out_dir + "/trace.csv"));
}

TEST(QtxCli, NativeLaBackendMatchesTheGoldenTransmissionNumerically) {
  // The native split-complex kernels reassociate complex arithmetic, so
  // this path is *numerically* equivalent (kernel-equivalence tolerance),
  // not bit-identical — only the "reference" path pins the goldens.
  const std::string out_dir = "qtx_native_out";
  fs::remove_all(out_dir);
  ASSERT_EQ(run_cli("run \"" + scenario_path("quickstart.ini") +
                        "\" --out " + out_dir +
                        " --set la_backend=native --quiet",
                    "qtx_native_run.log"),
            0)
      << read_file("qtx_native_run.log");
  const std::string json = read_file(out_dir + "/results.json");
  EXPECT_NE(json.find("\"la_backend\": \"native\""), std::string::npos)
      << "provenance must record the non-default la backend key";
  EXPECT_NE(json.find("\"performance\""), std::string::npos)
      << "results.json must carry the achieved-GFLOP/s section";
  EXPECT_NE(json.find("\"host_peak_gflops\""), std::string::npos);
  std::ifstream csv(out_dir + "/transmission.csv");
  ASSERT_TRUE(csv.good());
  const std::vector<double> got = io::read_csv_column(csv, 1);
  const std::vector<double> want =
      read_golden_values("quickstart_transmission");
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-8)
        << "native transmission drifted from the reference at entry " << i;
}

TEST(QtxCli, SweepWritesAMultiPointCsv) {
  // A tiny bias sweep written to a temp deck so the smoke test stays fast.
  const std::string deck = "qtx_smoke_sweep.ini";
  {
    std::ofstream out(deck);
    out << "[device]\npreset = quickstart\n\n"
           "[solver]\ngrid = -5 5 8\neta = 0.05\ngw_scale = 0.2\n"
           "max_iterations = 2\nmu_reference = conduction-min\n"
           "mu_left = 0.3\nmu_right = 0.1\n\n"
           "[sweep]\nparameter = bias\nvalues = 0.0 0.2 0.4\n";
  }
  const std::string out_dir = "qtx_smoke_sweep_out";
  fs::remove_all(out_dir);
  ASSERT_EQ(run_cli("sweep " + deck + " --out " + out_dir + " --quiet",
                    "qtx_smoke_sweep.log"),
            0)
      << read_file("qtx_smoke_sweep.log");
  std::ifstream csv(out_dir + "/sweep.csv");
  ASSERT_TRUE(csv.good());
  const std::vector<double> biases = io::read_csv_column(csv, 0);
  EXPECT_EQ(biases, (std::vector<double>{0.0, 0.2, 0.4}));
  const std::string log = read_file("qtx_smoke_sweep.log");
  EXPECT_NE(log.find("built 1 time"), std::string::npos)
      << "sweep should reuse one pipeline: " << log;
}

TEST(QtxCli, ListBackendsPrintsTheRegistryCatalog) {
  ASSERT_EQ(run_cli("list-backends", "qtx_smoke_backends.log"), 0);
  const std::string out = read_file("qtx_smoke_backends.log");
  for (const core::BackendDescription& b :
       core::StageRegistry::global().describe()) {
    EXPECT_NE(out.find(b.key), std::string::npos)
        << "list-backends must print \"" << b.key << "\"";
    EXPECT_NE(out.find(b.description), std::string::npos)
        << "list-backends must print the description of \"" << b.key
        << "\"";
  }
}

TEST(QtxCli, PrintValidatesAndEchoesTheCanonicalForm) {
  ASSERT_EQ(run_cli("print \"" + scenario_path("quickstart.ini") + "\"",
                    "qtx_smoke_print.log"),
            0);
  const std::string out = read_file("qtx_smoke_print.log");
  EXPECT_NE(out.find("[solver]"), std::string::npos);
  EXPECT_NE(out.find("preset = quickstart"), std::string::npos);
  // The echoed canonical form must itself parse (print | run round trip).
  EXPECT_NO_THROW(io::parse_scenario_text(out, "printed.ini"));
}

TEST(ScenarioOverride, RoutesSolverAndDeviceKeys) {
  io::Scenario s = mini_scenario();
  io::apply_scenario_override(s, "eta", "0.125");
  EXPECT_EQ(s.solver.eta, 0.125);
  io::apply_scenario_override(s, "mixer", "anderson");
  EXPECT_EQ(s.solver.mixer, "anderson");
  io::apply_scenario_override(s, "grid", "-2 2 16");  // shorthand works
  EXPECT_EQ(s.solver.grid.n, 16);
  io::apply_scenario_override(s, "mu_left", "0.5");  // contact spec works
  EXPECT_EQ(s.mu_left, 0.5);
  io::apply_scenario_override(s, "device.num_cells", "6");
  EXPECT_EQ(s.device.num_cells, 6);
  io::apply_scenario_override(s, "device.preset", "cnt");
  EXPECT_EQ(s.device_preset, "cnt");
  EXPECT_EQ(s.device.num_cells, device::device_preset("cnt").num_cells)
      << "re-selecting a preset resets the device parameters";
}

TEST(ScenarioOverride, DiagnosticsCarryTheSetPrefix) {
  io::Scenario s = mini_scenario();
  try {
    io::apply_scenario_override(s, "etaa", "3");
    FAIL() << "expected ScenarioError";
  } catch (const io::ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind("--set etaa=3:", 0), 0) << msg;
    EXPECT_NE(msg.find("unknown option key"), std::string::npos) << msg;
  }
  EXPECT_THROW(io::apply_scenario_override(s, "eta", "banana"),
               io::ScenarioError);
  EXPECT_THROW(io::apply_scenario_override(s, "device.num_cellz", "4"),
               io::ScenarioError);
}

TEST(QtxCli, SetOverridesDeckKeysWithoutEditingTheFile) {
  const std::string out_dir = "qtx_set_out";
  fs::remove_all(out_dir);
  ASSERT_EQ(run_cli("run \"" + scenario_path("quickstart.ini") +
                        "\" --out " + out_dir +
                        " --set max_iterations=1 --set mixer=adaptive "
                        "--set device.num_cells=6 --quiet",
                    "qtx_set_run.log"),
            0)
      << read_file("qtx_set_run.log");
  const std::string json = read_file(out_dir + "/results.json");
  EXPECT_NE(json.find("\"iterations\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mixer\": \"adaptive\""), std::string::npos);
  EXPECT_NE(json.find("\"num_cells\": \"6\""), std::string::npos);
}

TEST(QtxCli, BadSetValuesFailWithUsefulDiagnostics) {
  // Unknown key: scenario error (exit 1) carrying the --set prefix.
  EXPECT_NE(run_cli("run \"" + scenario_path("quickstart.ini") +
                        "\" --set etaa=3",
                    "qtx_set_err.log"),
            0);
  const std::string err = read_file("qtx_set_err.log");
  EXPECT_NE(err.find("--set etaa=3"), std::string::npos) << err;
  // Malformed KEY=VALUE: usage error.
  EXPECT_NE(run_cli("run \"" + scenario_path("quickstart.ini") +
                        "\" --set eta",
                    "qtx_set_err2.log"),
            0);
  EXPECT_NE(read_file("qtx_set_err2.log").find("KEY=VALUE"),
            std::string::npos);
}

TEST(QtxCli, ErrorsExitNonZeroWithFileLineDiagnostics) {
  EXPECT_NE(run_cli("run no_such_scenario.ini", "qtx_smoke_err.log"), 0);
  EXPECT_NE(read_file("qtx_smoke_err.log").find("qtx: error:"),
            std::string::npos);
  const std::string deck = "qtx_smoke_bad.ini";
  {
    std::ofstream out(deck);
    out << "[solver]\neta = banana\n";
  }
  EXPECT_NE(run_cli("run " + deck, "qtx_smoke_err2.log"), 0);
  const std::string err = read_file("qtx_smoke_err2.log");
  EXPECT_NE(err.find(deck + ":2:"), std::string::npos)
      << "diagnostic must carry file:line — got: " << err;
  EXPECT_NE(run_cli("frobnicate", "qtx_smoke_err3.log"), 0);
}

}  // namespace
}  // namespace qtx
