// Table 6 reproduction: large-scale simulations on Alps and Frontier,
// projected through the calibrated machine model (see
// src/core/perf_model.hpp and the DESIGN.md substitution table). The
// workload column is reproduced exactly from the paper's own Table 4/5
// measurements combined with the energy counts; the time/performance
// columns come from the machine model.

#include <cstdio>

#include "core/perf_model.hpp"

using namespace qtx;
using namespace qtx::core;

namespace {

struct PaperRow {
  double workload_pflop, time_s, pflops, pct_rmax, pct_rpeak;
};

void print_row(const FullScaleRow& r, const PaperRow& p) {
  std::printf("%-9s %-6s %3d %6d %8d | %11.1f %8.2f %8.1f %7.1f %7.1f\n",
              r.machine.c_str(), r.device.c_str(), r.ps, r.nodes,
              r.total_energies, r.workload_pflop, r.time_s, r.pflops,
              r.pct_rmax, r.pct_rpeak);
  std::printf("%-9s %-6s %35s | %11.1f %8.2f %8.1f %7.1f %7.1f\n", "  paper",
              "", "", p.workload_pflop, p.time_s, p.pflops, p.pct_rmax,
              p.pct_rpeak);
}

}  // namespace

int main() {
  std::printf("=== Table 6: full-scale runs (model vs paper) ===\n\n");
  std::printf("%-9s %-6s %3s %6s %8s | %11s %8s %8s %7s %7s\n", "Machine",
              "Dev", "PS", "Nodes", "N_E", "Work[Pflop]", "t[s]", "Pflop/s",
              "%Rmax", "%Rpeak");
  // Paper %Rmax/%Rpeak references use the node-count-scaled machine share
  // (the parenthesized "(#N scaled)" values of Table 6), matching our
  // per-unit accounting.
  ScalingConfig cfg;
  print_row(project_full_scale(frontier(), device::nr(24), 2, 9400, 37600,
                               cfg),
            {37978.933, 36.789, 1032.345, 80.0, 51.3});
  print_row(project_full_scale(frontier(), device::nr(40), 4, 9400, 18800,
                               cfg),
            {48252.738, 42.104, 1146.037, 86.5, 57.0});
  print_row(project_full_scale(alps(), device::nr(23), 1, 2350, 9400, cfg),
            {7833.885, 23.286, 336.420, 85.6, 64.8});
  print_row(project_full_scale(alps(), device::nr(44), 2, 2350, 4700, cfg),
            {8686.874, 25.353, 342.637, 87.2, 65.9});
  std::printf(
      "\nThe NR-40 row is the paper's headline: >1 Eflop/s sustained FP64.\n"
      "Workloads agree to <0.3%% because the paper's Table 6 workloads are\n"
      "exactly (per-energy workload) x (energy count), which our Table 4/5\n"
      "anchored model reproduces; times/efficiencies follow the calibrated\n"
      "machine model (kernel sustained fraction + network contention).\n");
  return 0;
}
