#!/usr/bin/env python3
"""Gate BENCH_serve_throughput.json against bench/references.json.

Usage: check_serve_throughput.py <BENCH_serve_throughput.json> [references.json]

Stdlib only. Each reference gate names a metric in the bench JSON plus a
floor ("min") or an exact expectation ("equals"). Gates flagged
wall_time only bind when the bench machine reported hardware_threads >= 2
— a single-core box serializes the phases and makes every speedup ratio
noise — matching the in-binary gate policy of bench_serve_throughput.cpp.
Exits 0 when every binding gate holds, 1 otherwise.
"""

import json
import os
import sys


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    bench_path = argv[1]
    refs_path = (
        argv[2]
        if len(argv) > 2
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "references.json")
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(refs_path) as f:
        refs = json.load(f)

    name = bench.get("bench", "")
    gates = refs.get(name, {}).get("gates", [])
    if not gates:
        print(f"no reference gates for bench {name!r} in {refs_path}")
        return 1

    hw = int(bench.get("hardware_threads", 1))
    failures = 0
    for gate in gates:
        metric = gate["metric"]
        value = bench.get(metric)
        binding = not gate.get("wall_time", False) or hw >= 2
        if value is None:
            print(f"FAIL {metric}: missing from {bench_path}")
            failures += 1
            continue
        if "equals" in gate:
            ok = value == gate["equals"]
            want = f"== {gate['equals']}"
        else:
            ok = float(value) >= float(gate["min"])
            want = f">= {gate['min']}"
        status = "PASS" if ok else ("SKIP" if not binding else "FAIL")
        note = "" if binding else " (wall-time gate, single core)"
        print(f"{status} {metric}: {value} (want {want}){note}")
        if binding and not ok:
            failures += 1
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
