// §4.4 ablation: FFT-based energy convolutions vs direct O(N_E^2) sums —
// the optimization that makes 10^4..10^5 energy points tractable. Uses
// google-benchmark for the timing sweep and prints the crossover.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fft/convolution.hpp"

using namespace qtx;

namespace {

std::vector<cplx> random_series(int n, unsigned seed) {
  Rng rng(seed);
  std::vector<cplx> v(n);
  for (auto& x : v) x = rng.complex_uniform();
  return v;
}

void BM_PolarizationFft(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fft::EnergyConvolver conv(n, 0.01);
  const auto g_lt = random_series(n, 1), g_gt = random_series(n, 2);
  std::vector<cplx> p_lt, p_gt;
  for (auto _ : state) {
    conv.polarization(g_lt, g_gt, p_lt, p_gt);
    benchmark::DoNotOptimize(p_lt.data());
  }
  state.SetComplexityN(n);
}

void BM_PolarizationDirect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fft::EnergyConvolver conv(n, 0.01);
  const auto g_lt = random_series(n, 1), g_gt = random_series(n, 2);
  std::vector<cplx> p_lt, p_gt;
  for (auto _ : state) {
    conv.polarization_direct(g_lt, g_gt, p_lt, p_gt);
    benchmark::DoNotOptimize(p_lt.data());
  }
  state.SetComplexityN(n);
}

void BM_SelfEnergyFft(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fft::EnergyConvolver conv(n, 0.01);
  const auto g_lt = random_series(n, 1), g_gt = random_series(n, 2);
  const auto w_lt = random_series(n, 3), w_gt = random_series(n, 4);
  std::vector<cplx> s_lt, s_gt;
  for (auto _ : state) {
    conv.self_energy(g_lt, g_gt, w_lt, w_gt, s_lt, s_gt);
    benchmark::DoNotOptimize(s_lt.data());
  }
  state.SetComplexityN(n);
}

void BM_SelfEnergyDirect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fft::EnergyConvolver conv(n, 0.01);
  const auto g_lt = random_series(n, 1), g_gt = random_series(n, 2);
  const auto w_lt = random_series(n, 3), w_gt = random_series(n, 4);
  std::vector<cplx> s_lt, s_gt;
  for (auto _ : state) {
    conv.self_energy_direct(g_lt, g_gt, w_lt, w_gt, s_lt, s_gt);
    benchmark::DoNotOptimize(s_lt.data());
  }
  state.SetComplexityN(n);
}

}  // namespace

BENCHMARK(BM_PolarizationFft)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity(benchmark::oNLogN);
BENCHMARK(BM_PolarizationDirect)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(BM_SelfEnergyFft)->RangeMultiplier(4)->Range(64, 16384)
    ->Complexity(benchmark::oNLogN);
BENCHMARK(BM_SelfEnergyDirect)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oNSquared);

BENCHMARK_MAIN();
