// Fig. 6 reproduction: weak scaling in the number of energy points.
//
// Part A (measured): the real distributed pipeline (G-solve -> transpose ->
// P-FFT -> transpose -> W-solve -> transpose -> Sigma-FFT) over EVERY comm
// transport registered with the StageRegistry ("device-direct" *CCL
// analogue, "host-staged" MPI analogue, "socket" wire transport), rank
// counts 1..8, constant energies/rank — plus a real-process mode that
// forks the socket ranks with par::launch_ranks, the same engine behind
// `qtx run --ranks`.
//
// Part B (projected): the calibrated machine model over the paper's node
// counts for NR-40 (Frontier) and NR-23 (Alps), annotated with the parallel
// efficiency at the largest scale (paper: 82.0% / 84.7%).
//
// Emits BENCH_fig6_weak_scaling.json (current working directory) and exits
// non-zero if the in-process transports disagree on the bytes-moved
// accounting (they must all move the same payload bytes — that is what
// makes the Fig. 6 backend curves comparable).

#include <cstdio>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/perf_model.hpp"
#include "core/stage_registry.hpp"
#include "par/launcher.hpp"

using namespace qtx;
using namespace qtx::core;

namespace {

struct MeasuredRow {
  std::string backend;
  std::string mode;  // "threads" (CommGroup) or "processes" (launch_ranks)
  int ranks = 0;
  int energies = 0;
  DistributedStats stats;
};

/// Fork \p ranks real worker processes over the socket transport and run
/// one distributed iteration; rank 0 hands its (world-aggregated) stats
/// back to the parent through a temp file, since the workers share no
/// memory with us. Returns false if the launch failed.
bool run_process_mode(int ranks, const device::Structure& st,
                      const SimulationOptions& opt, DistributedStats& out) {
  const char* path = "BENCH_fig6_ranked_stats.tmp";
  std::remove(path);
  const par::LaunchReport report =
      par::launch_ranks(ranks, 600.0, [&](par::Comm& c) {
        const DistributedStats s = distributed_iteration(c, st, opt);
        if (c.rank() == 0) {
          FILE* f = std::fopen(path, "w");
          if (f != nullptr) {
            std::fprintf(f, "%.17g %.17g %.17g %lld\n", s.compute_s,
                         s.comm_s, s.total_s,
                         static_cast<long long>(s.bytes_sent));
            std::fclose(f);
          }
        }
      });
  if (!report.ok()) {
    std::printf("  launch failed: %s\n", report.diagnostic.c_str());
    return false;
  }
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  long long bytes = 0;
  const int got = std::fscanf(f, "%lg %lg %lg %lld", &out.compute_s,
                              &out.comm_s, &out.total_s, &bytes);
  std::fclose(f);
  std::remove(path);
  out.bytes_sent = bytes;
  return got == 4;
}

}  // namespace

int main() {
  std::printf("=== Fig. 6 (A): measured weak scaling, all transports ===\n\n");
  const device::Structure st = device::make_test_structure(4);
  SimulationOptions opt;
  opt.eta = 0.05;
  const auto gap = st.band_gap();
  opt.contacts.mu_left = gap.conduction_min + 0.3;
  opt.contacts.mu_right = gap.conduction_min + 0.1;
  opt.gw_scale = 0.3;
  const int energies_per_rank = 8;

  std::vector<MeasuredRow> rows;
  for (const std::string& key : StageRegistry::global().comm_keys()) {
    std::printf("backend: %s (thread ranks)\n", key.c_str());
    std::printf("%6s %6s %12s %12s %12s %10s %12s\n", "ranks", "N_E",
                "compute[s]", "comm[s]", "total[s]", "eff", "GB moved");
    double t1 = 0.0;
    for (const int ranks : {1, 2, 4, 8}) {
      opt.grid = EnergyGrid{-6.0, 6.0, ranks * energies_per_rank};
      const auto world =
          StageRegistry::global().make_comm(key, ranks, opt);
      const DistributedStats s = distributed_iteration(*world, st, opt);
      if (ranks == 1) t1 = s.total_s;
      std::printf("%6d %6d %12.3f %12.3f %12.3f %10.2f %12.3f\n", ranks,
                  opt.grid.n, s.compute_s, s.comm_s, s.total_s,
                  t1 / s.total_s, s.bytes_sent / 1e9);
      rows.push_back({key, "threads", ranks, opt.grid.n, s});
    }
    std::printf("\n");
  }

  // Real-process mode: the socket transport spanning forked workers — the
  // engine behind `qtx run --ranks N`, here driving the same iteration.
  std::printf("backend: socket (forked worker processes)\n");
  std::printf("%6s %6s %12s %12s %12s %12s\n", "ranks", "N_E", "compute[s]",
              "comm[s]", "total[s]", "GB moved");
  for (const int ranks : {1, 2, 4}) {
    opt.grid = EnergyGrid{-6.0, 6.0, ranks * energies_per_rank};
    DistributedStats s;
    if (!run_process_mode(ranks, st, opt, s)) continue;
    std::printf("%6d %6d %12.3f %12.3f %12.3f %12.3f\n", ranks, opt.grid.n,
                s.compute_s, s.comm_s, s.total_s, s.bytes_sent / 1e9);
    rows.push_back({"socket", "processes", ranks, opt.grid.n, s});
  }
  std::printf(
      "\n(one physical core serves all ranks here, so wall-clock efficiency\n"
      "reflects serialized compute; the communication column and the\n"
      "backend gap are the measured quantities of interest)\n\n");

  // Accounting gate: every in-process transport must report the same
  // payload-byte total for the same (ranks, N_E) configuration.
  bool bytes_match = true;
  for (const MeasuredRow& r : rows) {
    if (r.mode != "threads") continue;
    for (const MeasuredRow& ref : rows) {
      if (ref.mode != "threads" || ref.ranks != r.ranks) continue;
      if (ref.stats.bytes_sent != r.stats.bytes_sent) {
        std::printf("BYTE MISMATCH at %d ranks: %s moved %lld, %s moved "
                    "%lld\n",
                    r.ranks, r.backend.c_str(),
                    static_cast<long long>(r.stats.bytes_sent),
                    ref.backend.c_str(),
                    static_cast<long long>(ref.stats.bytes_sent));
        bytes_match = false;
      }
    }
  }

  std::printf("=== Fig. 6 (B): projected weak scaling (machine model) ===\n");
  struct Series {
    const char* label;
    MachineSpec machine;
    device::DeviceConfig dev;
    int ps;
    std::vector<int> nodes;
  };
  const std::vector<Series> series = {
      {"Frontier NR-40 (PS=4)", frontier(), device::nr(40), 4,
       {16, 64, 256, 1024, 4096, 9400}},
      {"Frontier NR-24 (PS=2)", frontier(), device::nr(24), 2,
       {16, 64, 256, 1024, 4096, 9400}},
      {"Alps NR-23 (PS=1)", alps(), device::nr(23), 1,
       {8, 32, 128, 512, 1024, 2350}},
      {"Alps NR-44 (PS=2)", alps(), device::nr(44), 2,
       {8, 32, 128, 512, 1024, 2350}},
  };
  for (const auto& s : series) {
    for (const auto backend : {NetBackend::kCcl, NetBackend::kHostMpi}) {
      ScalingConfig cfg;
      cfg.ps = s.ps;
      cfg.backend = backend;
      const auto pts = project_weak_scaling(s.machine, s.dev, s.nodes, cfg);
      std::printf("\n%s — %s\n", s.label,
                  backend == NetBackend::kCcl ? "*CCL" : "host MPI");
      std::printf("%8s %9s %12s %10s %10s %9s %10s\n", "nodes", "N_E",
                  "compute[s]", "comm[s]", "total[s]", "eff", "Pflop/s");
      for (const auto& p : pts)
        std::printf("%8d %9d %12.2f %10.2f %10.2f %8.1f%% %10.1f\n", p.nodes,
                    p.total_energies, p.compute_s, p.comm_s, p.total_s,
                    100.0 * p.efficiency, p.pflops);
    }
  }
  std::printf(
      "\nPaper anchors: 82.0%% efficiency for NR-40 at 9,400 Frontier\n"
      "nodes; 84.7%% for NR-23 on Alps; host MPI overtakes *CCL at scale\n"
      "(the *CCL instability of §7.2).\n");

  FILE* json = std::fopen("BENCH_fig6_weak_scaling.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"fig6_weak_scaling\",\n"
                 "  \"energies_per_rank\": %d,\n"
                 "  \"bytes_accounting_match\": %s,\n"
                 "  \"measured\": [\n",
                 energies_per_rank, bytes_match ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const MeasuredRow& r = rows[i];
      std::fprintf(json,
                   "    {\"backend\": \"%s\", \"mode\": \"%s\", "
                   "\"ranks\": %d, \"energies\": %d, "
                   "\"compute_s\": %.6f, \"comm_s\": %.6f, "
                   "\"total_s\": %.6f, \"bytes_sent\": %lld}%s\n",
                   r.backend.c_str(), r.mode.c_str(), r.ranks, r.energies,
                   r.stats.compute_s, r.stats.comm_s, r.stats.total_s,
                   static_cast<long long>(r.stats.bytes_sent),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_fig6_weak_scaling.json\n");
  }
  return bytes_match ? 0 : 1;
}
