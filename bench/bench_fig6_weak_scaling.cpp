// Fig. 6 reproduction: weak scaling in the number of energy points.
//
// Part A (measured): the real distributed pipeline (G-solve -> transpose ->
// P-FFT -> transpose -> W-solve -> transpose -> Sigma-FFT) over the
// thread-backed communicator, with both backends (*CCL-analogue zero-copy
// vs host-staged MPI-analogue), rank counts 1..8, constant energies/rank.
//
// Part B (projected): the calibrated machine model over the paper's node
// counts for NR-40 (Frontier) and NR-23 (Alps), annotated with the parallel
// efficiency at the largest scale (paper: 82.0% / 84.7%).

#include <cstdio>

#include "core/distributed.hpp"
#include "core/perf_model.hpp"

using namespace qtx;
using namespace qtx::core;

int main() {
  std::printf("=== Fig. 6 (A): measured weak scaling, thread ranks ===\n\n");
  const device::Structure st = device::make_test_structure(4);
  SimulationOptions opt;
  opt.eta = 0.05;
  const auto gap = st.band_gap();
  opt.contacts.mu_left = gap.conduction_min + 0.3;
  opt.contacts.mu_right = gap.conduction_min + 0.1;
  opt.gw_scale = 0.3;
  const int energies_per_rank = 8;
  for (const auto backend :
       {par::Backend::kDeviceDirect, par::Backend::kHostStaged}) {
    std::printf("backend: %s\n", backend == par::Backend::kDeviceDirect
                                     ? "*CCL-like (device direct)"
                                     : "host-MPI-like (staged)");
    std::printf("%6s %6s %12s %12s %12s %10s %12s\n", "ranks", "N_E",
                "compute[s]", "comm[s]", "total[s]", "eff", "GB moved");
    double t1 = 0.0;
    for (const int ranks : {1, 2, 4, 8}) {
      opt.grid = EnergyGrid{-6.0, 6.0, ranks * energies_per_rank};
      par::CommWorld world(ranks, backend);
      const DistributedStats s = distributed_iteration(world, st, opt);
      if (ranks == 1) t1 = s.total_s;
      std::printf("%6d %6d %12.3f %12.3f %12.3f %10.2f %12.3f\n", ranks,
                  opt.grid.n, s.compute_s, s.comm_s, s.total_s,
                  t1 / s.total_s, s.bytes_sent / 1e9);
    }
    std::printf("\n");
  }
  std::printf(
      "(one physical core serves all ranks here, so wall-clock efficiency\n"
      "reflects serialized compute; the communication column and the\n"
      "backend gap are the measured quantities of interest)\n\n");

  std::printf("=== Fig. 6 (B): projected weak scaling (machine model) ===\n");
  struct Series {
    const char* label;
    MachineSpec machine;
    device::DeviceConfig dev;
    int ps;
    std::vector<int> nodes;
  };
  const std::vector<Series> series = {
      {"Frontier NR-40 (PS=4)", frontier(), device::nr(40), 4,
       {16, 64, 256, 1024, 4096, 9400}},
      {"Frontier NR-24 (PS=2)", frontier(), device::nr(24), 2,
       {16, 64, 256, 1024, 4096, 9400}},
      {"Alps NR-23 (PS=1)", alps(), device::nr(23), 1,
       {8, 32, 128, 512, 1024, 2350}},
      {"Alps NR-44 (PS=2)", alps(), device::nr(44), 2,
       {8, 32, 128, 512, 1024, 2350}},
  };
  for (const auto& s : series) {
    for (const auto backend : {NetBackend::kCcl, NetBackend::kHostMpi}) {
      ScalingConfig cfg;
      cfg.ps = s.ps;
      cfg.backend = backend;
      const auto pts = project_weak_scaling(s.machine, s.dev, s.nodes, cfg);
      std::printf("\n%s — %s\n", s.label,
                  backend == NetBackend::kCcl ? "*CCL" : "host MPI");
      std::printf("%8s %9s %12s %10s %10s %9s %10s\n", "nodes", "N_E",
                  "compute[s]", "comm[s]", "total[s]", "eff", "Pflop/s");
      for (const auto& p : pts)
        std::printf("%8d %9d %12.2f %10.2f %10.2f %8.1f%% %10.1f\n", p.nodes,
                    p.total_energies, p.compute_s, p.comm_s, p.total_s,
                    100.0 * p.efficiency, p.pflops);
    }
  }
  std::printf(
      "\nPaper anchors: 82.0%% efficiency for NR-40 at 9,400 Frontier\n"
      "nodes; 84.7%% for NR-23 on Alps; host MPI overtakes *CCL at scale\n"
      "(the *CCL instability of §7.2).\n");
  return 0;
}
