// §4.3 micro-benchmark: the sequential RGF selected solver vs the dense
// reference, and the nested-dissection solver at several partition counts.
// RGF's O(N_B N_BS^3) vs dense O((N_B N_BS)^3) is the reason selected
// inversion is mandatory at device scale.

#include <benchmark/benchmark.h>

#include "rgf/nested_dissection.hpp"

using namespace qtx;

namespace {

struct Problem {
  bt::BlockTridiag m, bl, bg;
};

Problem make_problem(int nb, int bs) {
  Rng rng(nb * 131 + bs);
  Problem p{bt::BlockTridiag::random_diag_dominant(nb, bs, rng),
            bt::BlockTridiag::random_diag_dominant(nb, bs, rng),
            bt::BlockTridiag::random_diag_dominant(nb, bs, rng)};
  p.bl.anti_hermitize();
  p.bg.anti_hermitize();
  return p;
}

void BM_RgfSelected(benchmark::State& state) {
  const Problem p = make_problem(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const auto s = rgf::rgf_solve(p.m, p.bl, p.bg);
    benchmark::DoNotOptimize(s.xr.diag(0).data());
  }
}

void BM_DenseReference(benchmark::State& state) {
  const Problem p = make_problem(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  for (auto _ : state) {
    const auto s = rgf::reference_solve(p.m, p.bl, p.bg);
    benchmark::DoNotOptimize(s.xr.diag(0).data());
  }
}

void BM_NestedDissection(benchmark::State& state) {
  const Problem p = make_problem(static_cast<int>(state.range(0)), 16);
  rgf::NdOptions opt;
  opt.num_partitions = static_cast<int>(state.range(1));
  opt.num_threads = opt.num_partitions;
  for (auto _ : state) {
    const auto s = rgf::nd_solve(p.m, p.bl, p.bg, opt);
    benchmark::DoNotOptimize(s.sel.xr.diag(0).data());
  }
}

}  // namespace

BENCHMARK(BM_RgfSelected)
    ->Args({4, 16})->Args({8, 16})->Args({16, 16})->Args({32, 16})
    ->Args({8, 32})->Args({8, 64});
BENCHMARK(BM_DenseReference)
    ->Args({4, 16})->Args({8, 16})->Args({16, 16})->Args({32, 16})
    ->Args({8, 32});
BENCHMARK(BM_NestedDissection)
    ->Args({32, 2})->Args({32, 4})->Args({32, 8});

BENCHMARK_MAIN();
