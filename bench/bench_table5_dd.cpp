// Table 5 reproduction: spatial domain decomposition with P_S = 2 and 4 on
// scaled-down analogues of NR-24 / NR-40 (and NR-44 / NR-80). Reported per
// partition: workload and time, reproducing the paper's finding that the
// boundary partitions perform ~60% of the middle partitions' workload (the
// fill-in of Fig. 5) and that the reduced system adds O(P_S N_BS^3) work.

#include <cstdio>

#include "common/timer.hpp"
#include "device/structure.hpp"
#include "rgf/nested_dissection.hpp"

using namespace qtx;

namespace {

struct Case {
  const char* name;
  const char* paper;
  int num_cells;
  int ps;
};

}  // namespace

int main() {
  std::printf("=== Table 5: domain-decomposed solve, per-partition ===\n\n");
  const Case cases[] = {
      {"NR-24*", "paper: top 483.5 / bottom 526.5 Tflop, P_S=2", 24, 2},
      {"NR-40*", "paper: 490.7/771.8/771.8/532.4 Tflop, P_S=4", 40, 4},
      {"NR-44*", "paper (Alps): 899.5/948.8, P_S=2", 44, 2},
      {"NR-80*", "paper (Alps): 906.6/1536.4x2/954.6, P_S=4", 80, 4},
  };
  for (const Case& c : cases) {
    device::StructureParams p;
    p.num_cells = c.num_cells;
    p.orbitals_per_puc = 8;
    p.nu = 2;
    p.nu_h = 2;
    const device::Structure st{p};
    const auto h = st.hamiltonian_bt();
    const int nb = h.num_blocks(), bs = h.block_size();
    bt::BlockTridiag m(nb, bs);
    for (int i = 0; i < nb; ++i) {
      m.diag(i) = la::Matrix::identity(bs) * cplx(0.5, 0.05);
      m.diag(i) -= h.diag(i);
    }
    for (int i = 0; i + 1 < nb; ++i) {
      m.upper(i) = h.upper(i) * cplx(-1.0);
      m.lower(i) = h.lower(i) * cplx(-1.0);
    }
    Rng rng(11);
    bt::BlockTridiag bl = bt::BlockTridiag::random_diag_dominant(nb, bs, rng);
    bt::BlockTridiag bg = bt::BlockTridiag::random_diag_dominant(nb, bs, rng);
    bl.anti_hermitize();
    bg.anti_hermitize();
    rgf::NdOptions opt;
    opt.num_partitions = c.ps;
    Stopwatch sw;
    const rgf::NdSolution nd = rgf::nd_solve(m, bl, bg, opt);
    const double total_ms = sw.seconds() * 1e3;
    std::printf("--- %s: %d cells x %d, P_S = %d   [%s]\n", c.name, nb, bs,
                c.ps, c.paper);
    double top = 0.0, mid = 0.0;
    for (size_t i = 0; i < nd.stats.size(); ++i) {
      const auto& s = nd.stats[i];
      std::printf("  partition %zu (blocks %2d..%2d): %8.3f Gflop\n", i,
                  s.first_block, s.last_block, s.flops / 1e9);
      if (i == 0) top = static_cast<double>(s.flops);
      if (i == 1 && c.ps > 2) mid = static_cast<double>(s.flops);
    }
    std::printf("  reduced system: %8.3f Gflop; total time %.1f ms\n",
                nd.reduced_flops / 1e9, total_ms);
    if (mid > 0.0)
      std::printf("  boundary/middle workload ratio: %.2f (paper ~0.6)\n",
                  top / mid);
    std::printf("\n");
  }
  return 0;
}
