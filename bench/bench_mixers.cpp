// Self-consistency acceleration bench: runs the quickstart and nanoribbon
// presets through Simulation::run() with each builtin mixer (linear,
// anderson, adaptive) at the same tolerance and records
// iterations-to-convergence and wall time per mixer. Reproduces the paper
// context that motivates the accel layer: plain linear damping converges
// slowly or stagnates on realistic GW devices, while history-based
// (Anderson/DIIS) acceleration keeps the SCBA loop tractable.
//
// Gates:
//   - iteration gate (always enforced): anderson must converge and reach
//     the tolerance in strictly fewer SCBA iterations than linear on every
//     preset (a non-converged run counts as the full budget).
//   - timing gate (multi-core hosts only, like bench_energy_pipeline's
//     speedup gate): anderson must also be faster in wall time than linear.
//     On single-core or sanitizer machines the timing is reported and the
//     gate recorded as skipped — wall time is too noisy without cores.
//
// Emits BENCH_mixers.json (current working directory) and exits non-zero
// if an enforced gate fails.
//
//   ./bench_mixers

#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/simulation.hpp"
#include "device/presets.hpp"
#include "par/thread_pool.hpp"

using namespace qtx;

namespace {

struct Workload {
  const char* preset;
  int n_energies;
  int max_iterations;
};

struct Sample {
  std::string preset;
  std::string mixer;
  int iterations = 0;
  bool converged = false;
  double final_update = 0.0;
  double seconds = 0.0;
  const char* stop = "";
};

Sample run_one(const Workload& w, const std::string& mixer_key) {
  const device::Structure st(device::device_preset(w.preset));
  const auto gap = st.band_gap();
  core::Simulation sim =
      core::SimulationBuilder(st)
          .grid(-6.0, 6.0, w.n_energies)
          .eta(0.1)
          .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
          .gw(0.3)
          .mixing(0.4)
          .mixer(mixer_key)
          .max_iterations(w.max_iterations)
          .tolerance(1e-3)  // the quickstart deck's golden tolerance
          .build();
  Stopwatch sw;
  const core::TransportResult res = sim.run();
  Sample s;
  s.preset = w.preset;
  s.mixer = mixer_key;
  s.iterations = res.iterations;
  s.converged = res.converged;
  s.final_update = res.final_update;
  s.seconds = sw.seconds();
  s.stop = core::to_string(res.stop_reason);
  return s;
}

/// Iterations-to-tolerance with non-convergence counting as the full
/// budget (so a stagnating linear run compares as "worst case").
int effective_iterations(const Sample& s, const Workload& w) {
  return s.converged ? s.iterations : w.max_iterations;
}

}  // namespace

int main() {
  const std::vector<Workload> workloads = {
      {"quickstart", 24, 30},
      {"nanoribbon", 24, 30},
  };
  const std::vector<std::string> mixers = {"linear", "anderson", "adaptive"};
  const int hw = par::ThreadPool::hardware_threads();

  std::printf("=== SCBA mixer comparison (tol 1e-3, gw_scale 0.3, "
              "mixing 0.4, eta 0.1) ===\n\n");
  std::printf("%-12s %-10s %6s %10s %11s %10s\n", "preset", "mixer", "iters",
              "converged", "final", "seconds");

  std::vector<Sample> samples;
  bool iteration_gate = true;
  bool timing_ok = true;
  for (const Workload& w : workloads) {
    const Sample* linear = nullptr;
    const Sample* anderson = nullptr;
    for (const std::string& m : mixers) {
      samples.push_back(run_one(w, m));
      const Sample& s = samples.back();
      std::printf("%-12s %-10s %6d %10s %11.3e %10.3f\n", s.preset.c_str(),
                  s.mixer.c_str(), s.iterations,
                  s.converged ? "yes" : "NO", s.final_update, s.seconds);
    }
    for (const Sample& s : samples) {
      if (s.preset != w.preset) continue;
      if (s.mixer == "linear") linear = &s;
      if (s.mixer == "anderson") anderson = &s;
    }
    const bool fewer = anderson->converged &&
                       effective_iterations(*anderson, w) <
                           effective_iterations(*linear, w);
    iteration_gate = iteration_gate && fewer;
    timing_ok = timing_ok && anderson->seconds < linear->seconds;
    std::printf("  -> anderson %d vs linear %d iterations [%s]\n",
                effective_iterations(*anderson, w),
                effective_iterations(*linear, w), fewer ? "PASS" : "FAIL");
  }

  const bool timing_enforced = hw >= 2;
  std::printf("\nhardware threads: %d\n", hw);
  std::printf("iteration gate (anderson strictly fewer than linear, every "
              "preset): %s\n",
              iteration_gate ? "PASS" : "FAIL");
  if (timing_enforced) {
    std::printf("timing gate (anderson wall < linear wall): %s\n",
                timing_ok ? "PASS" : "FAIL");
  } else {
    std::printf("timing gate (anderson wall < linear wall): skipped — only "
                "%d hardware thread%s (measured %s)\n",
                hw, hw == 1 ? "" : "s", timing_ok ? "faster" : "slower");
  }

  const bool pass = iteration_gate && (!timing_enforced || timing_ok);
  FILE* json = std::fopen("BENCH_mixers.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"mixers\",\n"
                 "  \"tolerance\": 1e-3,\n"
                 "  \"hardware_threads\": %d,\n"
                 "  \"samples\": [\n",
                 hw);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(json,
                   "    {\"preset\": \"%s\", \"mixer\": \"%s\", "
                   "\"iterations\": %d, \"converged\": %s, "
                   "\"final_update\": %.6e, \"seconds\": %.6f, "
                   "\"stop\": \"%s\"}%s\n",
                   s.preset.c_str(), s.mixer.c_str(), s.iterations,
                   s.converged ? "true" : "false", s.final_update, s.seconds,
                   s.stop, i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"iteration_gate\": %s,\n"
                 "  \"timing_gate_enforced\": %s,\n"
                 "  \"timing_ok\": %s,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 iteration_gate ? "true" : "false",
                 timing_enforced ? "true" : "false",
                 timing_ok ? "true" : "false", pass ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_mixers.json\n");
  }
  return pass ? 0 : 1;
}
