// Scaling bench for the parallel energy pipeline: runs the tier-1
// (quickstart) device through Simulation::run() at 1/2/4/8 energy-loop
// workers, reports the speedup over the sequential path, and verifies the
// engine's headline guarantee — bit-identical observables for every thread
// count (hash compare, always enforced).
//
// The >= 2x-at-4-threads acceptance gate is enforced when the machine
// actually has >= 4 hardware threads; on smaller machines (or under
// sanitizers) the speedup is reported but the gate is recorded as skipped —
// a wall-clock speedup cannot exist without cores to run on.
//
// Emits BENCH_energy_pipeline.json (current working directory) and exits
// non-zero if determinism or an enforced gate fails.
//
//   ./bench_energy_pipeline

#include <bit>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "core/observables.hpp"
#include "core/simulation.hpp"
#include "par/thread_pool.hpp"

using namespace qtx;

namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t mix(std::uint64_t hash, double value) {
  return fnv1a(hash, std::bit_cast<std::uint64_t>(value));
}

core::SimulationBuilder tier1_builder(const device::Structure& st) {
  const auto gap = st.band_gap();
  return core::SimulationBuilder(st)
      .grid(-6.0, 6.0, 64)
      .eta(0.02)
      .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
      .gw(0.3)
      .mixing(0.4)
      .max_iterations(2)     // fixed two-iteration workload
      .tolerance(1e-12);
}

struct Sample {
  int threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
  std::uint64_t hash = 0;
};

Sample measure(const device::Structure& st, int threads, int reps) {
  Sample s;
  s.threads = threads;
  s.seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    core::Simulation sim = tier1_builder(st).num_threads(threads).build();
    Stopwatch sw;
    const core::TransportResult res = sim.run();
    s.seconds = std::min(s.seconds, sw.seconds());
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const auto& it : res.history) h = mix(h, it.sigma_update);
    for (const double v : core::transmission(sim)) h = mix(h, v);
    for (const double v : core::electron_density(sim)) h = mix(h, v);
    h = mix(h, core::terminal_current_left(sim));
    s.hash = h;
  }
  return s;
}

}  // namespace

int main() {
  std::printf("=== Energy-pipeline scaling (tier-1 device, 64 energies, "
              "2 SCBA iterations) ===\n\n");
  const device::Structure st = device::make_test_structure(4);
  const int hw = par::ThreadPool::hardware_threads();
  const int reps = 2;

  std::vector<Sample> samples;
  for (const int threads : {1, 2, 4, 8})
    samples.push_back(measure(st, threads, reps));
  for (Sample& s : samples) s.speedup = samples[0].seconds / s.seconds;

  bool deterministic = true;
  for (const Sample& s : samples)
    deterministic = deterministic && (s.hash == samples[0].hash);

  std::printf("%8s %10s %9s %18s\n", "threads", "seconds", "speedup",
              "observable hash");
  for (const Sample& s : samples)
    std::printf("%8d %10.3f %8.2fx %018llx\n", s.threads, s.seconds,
                s.speedup, static_cast<unsigned long long>(s.hash));
  std::printf("\nhardware threads: %d\n", hw);
  std::printf("determinism across thread counts: %s\n",
              deterministic ? "bit-identical [PASS]" : "DIVERGED [FAIL]");

  // Gate: >= 2x at 4 workers, enforceable only where 4 cores exist.
  const double speedup4 = samples[2].speedup;
  const bool enforced = hw >= 4;
  const bool speedup_ok = !enforced || speedup4 >= 2.0;
  if (enforced) {
    std::printf("speedup gate (>= 2.0x at 4 threads): %.2fx [%s]\n", speedup4,
                speedup_ok ? "PASS" : "FAIL");
  } else {
    std::printf("speedup gate (>= 2.0x at 4 threads): skipped — only %d "
                "hardware thread%s (measured %.2fx)\n",
                hw, hw == 1 ? "" : "s", speedup4);
  }

  const bool pass = deterministic && speedup_ok;
  FILE* json = std::fopen("BENCH_energy_pipeline.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"energy_pipeline\",\n"
                 "  \"device\": \"quickstart (4 cells)\",\n"
                 "  \"n_energies\": 64,\n"
                 "  \"scba_iterations\": 2,\n"
                 "  \"hardware_threads\": %d,\n"
                 "  \"samples\": [\n",
                 hw);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(json,
                   "    {\"threads\": %d, \"seconds\": %.6f, "
                   "\"speedup\": %.3f}%s\n",
                   s.threads, s.seconds, s.speedup,
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"deterministic_across_thread_counts\": %s,\n"
                 "  \"speedup_at_4_threads\": %.3f,\n"
                 "  \"speedup_threshold\": 2.0,\n"
                 "  \"speedup_gate_enforced\": %s,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 deterministic ? "true" : "false", speedup4,
                 enforced ? "true" : "false", pass ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_energy_pipeline.json\n");
  }
  return pass ? 0 : 1;
}
