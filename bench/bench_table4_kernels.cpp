// Table 4 reproduction: per-kernel workload, time, and performance per SCBA
// iteration, with and without OBC memoization, on scaled-down analogues of
// the paper's NW-1 / NW-2 / NR-16 / NR-23 devices. The substrate here is a
// CPU and a synthetic Hamiltonian, so absolute numbers differ from the
// GH200/MI250X measurements — the reproduced *shape* is the kernel
// decomposition and the memoizer's effect on the OBC-heavy rows (paper:
// 2.00x / 3.77x per-energy speed-up on NW-1 / NW-2, and Beyn+Lyapunov times
// collapsing when memoized).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/simulation.hpp"

using namespace qtx;

namespace {

struct MiniDevice {
  const char* name;
  const char* paper_note;
  int num_cells;
  int orbitals;  // per PUC; transport cell = 2 PUCs
  int energies;
};

/// Per-kernel ledger of one steady-state iteration, collected through the
/// streaming on_kernel_timing observer — the bench never touches driver
/// internals.
struct KernelLedger {
  std::map<std::string, double> seconds;
  std::map<std::string, std::int64_t> flops;
};

KernelLedger measure(const device::Structure& st, int ne, bool memoizer) {
  const auto gap = st.band_gap();
  KernelLedger ledger;
  core::Simulation sim =
      core::SimulationBuilder(st)
          .grid(-6.0, 6.0, ne)
          .eta(0.05)
          .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
          .gw(0.3)
          .obc_backend(memoizer ? "memoized" : "beyn")
          .on_kernel_timing([&ledger](const core::KernelTiming& sample) {
            // Keep only the steady iteration (see below).
            if (sample.iteration == 3) {
              ledger.seconds[sample.kernel] = sample.seconds;
              ledger.flops[sample.kernel] = sample.flops;
            }
          })
          .build();
  // Paper §6.3: discard the first iterations (JIT/warm-up analogue: direct
  // OBC solves fill the caches); report the median-like steady iteration.
  sim.iterate();
  sim.iterate();
  sim.iterate();
  return ledger;
}

}  // namespace

int main() {
  const std::vector<MiniDevice> devices = {
      {"NW-1*", "paper NW-1: 18 cells, NBS 416, 1.27x/2.00x", 9, 6, 24},
      {"NW-2*", "paper NW-2: 16 cells, NBS 2016, 2.45x/3.77x", 16, 8, 16},
      {"NR-16*", "paper NR-16: NBS 3408, 72.9% Rpeak w/ memo", 16, 10, 12},
      {"NR-23*", "paper NR-23: 23 cells (Alps)", 23, 10, 12},
  };
  const std::vector<std::string> rows = {
      "G: OBC",           "G: RGF",           "W: Assembly: Beyn",
      "W: Assembly: Lyapunov", "W: Assembly: LHS", "W: Assembly: RHS",
      "W: RGF",           "Other: P-FFT",     "Other: Sigma-FFT"};
  std::printf("=== Table 4: per-kernel workload/time per SCBA iteration ===\n");
  for (const MiniDevice& d : devices) {
    device::StructureParams p;
    p.num_cells = d.num_cells;
    p.orbitals_per_puc = d.orbitals;
    p.nu = 2;
    p.nu_h = 2;
    const device::Structure st{p};
    std::printf("\n--- %s (%d cells x %d orbitals, %d energies) [%s]\n",
                d.name, d.num_cells, 2 * d.orbitals, d.energies,
                d.paper_note);
    const auto off = measure(st, d.energies, false);
    const auto on = measure(st, d.energies, true);
    std::printf("%-24s %12s %12s %12s %9s\n", "Kernel", "Work[Gflop]",
                "t_off[ms]", "t_on[ms]", "speedup");
    double t_off_tot = 0.0, t_on_tot = 0.0, work_tot = 0.0;
    for (const auto& row : rows) {
      const double work =
          (on.flops.count(row) ? on.flops.at(row) : 0) / 1e9;
      const double toff =
          (off.seconds.count(row) ? off.seconds.at(row) : 0) * 1e3;
      const double ton =
          (on.seconds.count(row) ? on.seconds.at(row) : 0) * 1e3;
      std::printf("%-24s %12.3f %12.2f %12.2f %9.2f\n", row.c_str(), work,
                  toff, ton, (ton > 0) ? toff / ton : 0.0);
      t_off_tot += toff;
      t_on_tot += ton;
      work_tot += work;
    }
    std::printf("%-24s %12.3f %12.2f %12.2f %9.2f\n", "Total", work_tot,
                t_off_tot, t_on_tot, t_off_tot / t_on_tot);
    std::printf("per-energy: %.2f ms (off) / %.2f ms (on); "
                "sustained %.2f Gflop/s\n",
                t_off_tot / d.energies, t_on_tot / d.energies,
                work_tot / (t_on_tot / 1e3));
  }
  std::printf(
      "\nShape checks vs paper Table 4: (i) RGF rows dominate the workload,\n"
      "(ii) Beyn/Lyapunov rows collapse with memoization while RGF rows are\n"
      "unchanged, (iii) the memoizer's total speed-up grows with the OBC\n"
      "share, as in the paper's NW-2 (3.77x) vs NW-1 (2.00x).\n");
  return 0;
}
