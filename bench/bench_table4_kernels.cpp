// Table 4 reproduction: per-kernel workload, time, and performance per SCBA
// iteration, with and without OBC memoization, on scaled-down analogues of
// the paper's NW-1 / NW-2 / NR-16 / NR-23 devices. The substrate here is a
// CPU and a synthetic Hamiltonian, so absolute numbers differ from the
// GH200/MI250X measurements — the reproduced *shape* is the kernel
// decomposition and the memoizer's effect on the OBC-heavy rows (paper:
// 2.00x / 3.77x per-energy speed-up on NW-1 / NW-2, and Beyn+Lyapunov times
// collapsing when memoized).
//
// PR 6 extension: every kernel row is also scored as achieved GFLOP/s
// against the measured single-core host peak (core::measure_host_peak), and
// a gemm microbench compares every registered la backend against the
// "reference" oracle at paper-relevant block sizes.
//
// Gates:
//   - equivalence gate (always enforced): every registered la backend must
//     reproduce the reference gemm result to 1e-10 on the microbench
//     operands (the full property suite lives in test_la_backends).
//   - speedup gate (multi-core hosts only, like bench_mixers' timing gate):
//     "native" must be >= 1.5x faster than "reference" on gemm at n >= 128.
//     On single-core or sanitizer machines the ratio is reported and the
//     gate recorded as skipped — wall time is too noisy without cores.
//
// Emits BENCH_table4_kernels.json (current working directory) and exits
// non-zero if an enforced gate fails.
//
//   ./bench_table4_kernels

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/perf_model.hpp"
#include "core/simulation.hpp"
#include "la/la.hpp"
#include "par/thread_pool.hpp"

using namespace qtx;

namespace {

struct MiniDevice {
  const char* name;
  const char* paper_note;
  int num_cells;
  int orbitals;  // per PUC; transport cell = 2 PUCs
  int energies;
};

/// Per-kernel ledger of one steady-state iteration, collected through the
/// streaming on_kernel_timing observer — the bench never touches driver
/// internals.
struct KernelLedger {
  std::map<std::string, double> seconds;
  std::map<std::string, std::int64_t> flops;
};

KernelLedger measure(const device::Structure& st, int ne, bool memoizer) {
  const auto gap = st.band_gap();
  KernelLedger ledger;
  core::Simulation sim =
      core::SimulationBuilder(st)
          .grid(-6.0, 6.0, ne)
          .eta(0.05)
          .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
          .gw(0.3)
          .obc_backend(memoizer ? "memoized" : "beyn")
          .on_kernel_timing([&ledger](const core::KernelTiming& sample) {
            // Keep only the steady iteration (see below).
            if (sample.iteration == 3) {
              ledger.seconds[sample.kernel] = sample.seconds;
              ledger.flops[sample.kernel] = sample.flops;
            }
          })
          .build();
  // Paper §6.3: discard the first iterations (JIT/warm-up analogue: direct
  // OBC solves fill the caches); report the median-like steady iteration.
  sim.iterate();
  sim.iterate();
  sim.iterate();
  return ledger;
}

/// One la-backend gemm measurement: best-of-3 wall time of c = a*b at
/// \p n, plus the max |difference| against the reference-backend result.
struct GemmSample {
  std::string backend;
  int n = 0;
  double seconds = 0.0;  // best of 3
  double gflops = 0.0;
  double pct_of_peak = 0.0;
  double max_diff_vs_reference = 0.0;
};

GemmSample measure_gemm(const std::string& backend, int n,
                        const la::Matrix& a, const la::Matrix& b,
                        const la::Matrix& reference_c) {
  la::BackendGuard guard(backend);
  GemmSample s;
  s.backend = backend;
  s.n = n;
  la::Matrix c(n, n);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch sw;
    la::gemm(cplx{1.0, 0.0}, a, la::Op::kNone, b, la::Op::kNone,
             cplx{0.0, 0.0}, c);
    const double t = sw.seconds();
    if (t < best) best = t;
  }
  s.seconds = best;
  const double flops = 8.0 * double(n) * double(n) * double(n);
  s.gflops = core::achieved_gflops(flops, best);
  s.pct_of_peak = core::pct_of_host_peak(s.gflops);
  s.max_diff_vs_reference = la::max_abs_diff(c, reference_c);
  return s;
}

std::string json_escape_rowname(const std::string& row) {
  std::string out;
  for (char ch : row) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

int main() {
  const std::vector<MiniDevice> devices = {
      {"NW-1*", "paper NW-1: 18 cells, NBS 416, 1.27x/2.00x", 9, 6, 24},
      {"NW-2*", "paper NW-2: 16 cells, NBS 2016, 2.45x/3.77x", 16, 8, 16},
      {"NR-16*", "paper NR-16: NBS 3408, 72.9% Rpeak w/ memo", 16, 10, 12},
      {"NR-23*", "paper NR-23: 23 cells (Alps)", 23, 10, 12},
  };
  const std::vector<std::string> rows = {
      "G: OBC",           "G: RGF",           "W: Assembly: Beyn",
      "W: Assembly: Lyapunov", "W: Assembly: LHS", "W: Assembly: RHS",
      "W: RGF",           "Other: P-FFT",     "Other: Sigma-FFT"};

  const int hw = par::ThreadPool::hardware_threads();
  const core::HostPeak& peak = core::measure_host_peak();
  std::printf("host peak: %.2f GFLOP/s single-core FMA (measured in %.0f ms, "
              "%d hardware threads)\n\n",
              peak.fma_gflops, peak.measure_seconds * 1e3, hw);

  FILE* json = std::fopen("BENCH_table4_kernels.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"table4_kernels\",\n"
                 "  \"hardware_threads\": %d,\n"
                 "  \"host_peak_gflops\": %.4f,\n"
                 "  \"devices\": [\n",
                 hw, peak.fma_gflops);
  }

  std::printf("=== Table 4: per-kernel workload/time per SCBA iteration ===\n");
  for (std::size_t di = 0; di < devices.size(); ++di) {
    const MiniDevice& d = devices[di];
    device::StructureParams p;
    p.num_cells = d.num_cells;
    p.orbitals_per_puc = d.orbitals;
    p.nu = 2;
    p.nu_h = 2;
    const device::Structure st{p};
    std::printf("\n--- %s (%d cells x %d orbitals, %d energies) [%s]\n",
                d.name, d.num_cells, 2 * d.orbitals, d.energies,
                d.paper_note);
    const auto off = measure(st, d.energies, false);
    const auto on = measure(st, d.energies, true);
    if (json) {
      std::fprintf(json,
                   "    {\"device\": \"%s\", \"num_cells\": %d, "
                   "\"energies\": %d, \"kernels\": [\n",
                   d.name, d.num_cells, d.energies);
    }
    std::printf("%-24s %12s %12s %12s %9s %10s %7s\n", "Kernel",
                "Work[Gflop]", "t_off[ms]", "t_on[ms]", "speedup",
                "GFLOP/s", "%peak");
    double t_off_tot = 0.0, t_on_tot = 0.0, work_tot = 0.0;
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
      const std::string& row = rows[ri];
      const double work =
          (on.flops.count(row) ? on.flops.at(row) : 0) / 1e9;
      const double toff =
          (off.seconds.count(row) ? off.seconds.at(row) : 0) * 1e3;
      const double ton =
          (on.seconds.count(row) ? on.seconds.at(row) : 0) * 1e3;
      // Achieved rate on the memoized (production-path) run.
      const double gflops = core::achieved_gflops(work * 1e9, ton / 1e3);
      const double pct = core::pct_of_host_peak(gflops);
      std::printf("%-24s %12.3f %12.2f %12.2f %9.2f %10.2f %7.1f\n",
                  row.c_str(), work, toff, ton,
                  (ton > 0) ? toff / ton : 0.0, gflops, pct);
      if (json) {
        std::fprintf(json,
                     "      {\"kernel\": \"%s\", \"work_gflop\": %.6f, "
                     "\"t_off_ms\": %.4f, \"t_on_ms\": %.4f, "
                     "\"gflops\": %.4f, \"pct_of_peak\": %.2f}%s\n",
                     json_escape_rowname(row).c_str(), work, toff, ton,
                     gflops, pct, ri + 1 < rows.size() ? "," : "");
      }
      t_off_tot += toff;
      t_on_tot += ton;
      work_tot += work;
    }
    std::printf("%-24s %12.3f %12.2f %12.2f %9.2f\n", "Total", work_tot,
                t_off_tot, t_on_tot, t_off_tot / t_on_tot);
    std::printf("per-energy: %.2f ms (off) / %.2f ms (on); "
                "sustained %.2f Gflop/s\n",
                t_off_tot / d.energies, t_on_tot / d.energies,
                work_tot / (t_on_tot / 1e3));
    if (json) {
      std::fprintf(json, "    ]}%s\n",
                   di + 1 < devices.size() ? "," : "");
    }
  }

  // --- la-backend gemm microbench -----------------------------------------
  // Paper-relevant dense block sizes: 128 covers the NR cross-sections
  // above, 256 the next octave. The "reference" row is the baseline the
  // speedup gate divides by.
  const std::vector<std::string> backends = la::builtin_backend_names();
  const std::vector<int> sizes = {128, 256};
  std::printf("\n=== la-backend gemm microbench (c = a*b, best of 3) ===\n");
  std::printf("%-12s %6s %12s %10s %7s %14s\n", "backend", "n", "t[ms]",
              "GFLOP/s", "%peak", "maxdiff(ref)");
  std::vector<GemmSample> gemm_samples;
  bool equivalence_ok = true;
  double worst_native_ratio = 1e300;
  for (int n : sizes) {
    Rng rng(2025 + n);
    const la::Matrix a = la::Matrix::random_hermitian(n, rng);
    const la::Matrix b = la::Matrix::random_hermitian(n, rng);
    la::Matrix ref_c(n, n);
    {
      la::BackendGuard guard("reference");
      la::gemm(cplx{1.0, 0.0}, a, la::Op::kNone, b, la::Op::kNone,
               cplx{0.0, 0.0}, ref_c);
    }
    double reference_s = 0.0, native_s = 0.0;
    for (const std::string& backend : backends) {
      gemm_samples.push_back(measure_gemm(backend, n, a, b, ref_c));
      const GemmSample& s = gemm_samples.back();
      std::printf("%-12s %6d %12.3f %10.2f %7.1f %14.3e\n",
                  s.backend.c_str(), s.n, s.seconds * 1e3, s.gflops,
                  s.pct_of_peak, s.max_diff_vs_reference);
      equivalence_ok = equivalence_ok && s.max_diff_vs_reference < 1e-10;
      if (s.backend == "reference") reference_s = s.seconds;
      if (s.backend == "native") native_s = s.seconds;
    }
    if (reference_s > 0.0 && native_s > 0.0) {
      const double ratio = reference_s / native_s;
      if (ratio < worst_native_ratio) worst_native_ratio = ratio;
    }
  }
  if (worst_native_ratio == 1e300) worst_native_ratio = 0.0;

  const bool speedup_enforced = hw >= 4;
  const bool speedup_ok = worst_native_ratio >= 1.5;
  std::printf("\nequivalence gate (every backend within 1e-10 of reference): "
              "%s\n",
              equivalence_ok ? "PASS" : "FAIL");
  if (speedup_enforced) {
    std::printf("speedup gate (native >= 1.5x reference gemm, n >= 128): %s "
                "(worst ratio %.2fx)\n",
                speedup_ok ? "PASS" : "FAIL", worst_native_ratio);
  } else {
    std::printf("speedup gate (native >= 1.5x reference gemm, n >= 128): "
                "skipped — only %d hardware thread%s (measured %.2fx)\n",
                hw, hw == 1 ? "" : "s", worst_native_ratio);
  }

  const bool pass = equivalence_ok && (!speedup_enforced || speedup_ok);
  if (json) {
    std::fprintf(json, "  ],\n  \"gemm_microbench\": [\n");
    for (std::size_t i = 0; i < gemm_samples.size(); ++i) {
      const GemmSample& s = gemm_samples[i];
      std::fprintf(json,
                   "    {\"backend\": \"%s\", \"n\": %d, "
                   "\"seconds\": %.6f, \"gflops\": %.4f, "
                   "\"pct_of_peak\": %.2f, "
                   "\"max_diff_vs_reference\": %.3e}%s\n",
                   s.backend.c_str(), s.n, s.seconds, s.gflops,
                   s.pct_of_peak, s.max_diff_vs_reference,
                   i + 1 < gemm_samples.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"equivalence_gate\": %s,\n"
                 "  \"native_speedup_ratio\": %.4f,\n"
                 "  \"speedup_gate_enforced\": %s,\n"
                 "  \"speedup_ok\": %s,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 equivalence_ok ? "true" : "false", worst_native_ratio,
                 speedup_enforced ? "true" : "false",
                 speedup_ok ? "true" : "false", pass ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_table4_kernels.json\n");
  }

  std::printf(
      "\nShape checks vs paper Table 4: (i) RGF rows dominate the workload,\n"
      "(ii) Beyn/Lyapunov rows collapse with memoization while RGF rows are\n"
      "unchanged, (iii) the memoizer's total speed-up grows with the OBC\n"
      "share, as in the paper's NW-2 (3.77x) vs NW-1 (2.00x).\n");
  return pass ? 0 : 1;
}
