#!/usr/bin/env python3
"""Gate BENCH_*.json outputs against bench/references.json.

Usage: check_bench.py <BENCH_*.json>... [--references refs.json]
                      [--trajectory trajectory.jsonl]

Stdlib only. Every bench binary emits a BENCH_<name>.json with a
top-level "bench" key; this script looks that name up in the references
file and checks each listed gate. A gate names a metric in the bench
JSON plus a floor ("min") or an exact expectation ("equals"). Gates
flagged wall_time only bind when the bench machine reported
hardware_threads >= 2 (benches that omit the key count as single-core) —
a one-core box serializes the phases and makes every speedup ratio
noise — matching the in-binary gate policy of the benches themselves.

A bench JSON whose name has no gates in the references file is a hard
failure: every bench that emits JSON must be gated (ROADMAP item 5), so
adding a bench without references is caught here rather than silently
unchecked.

With --trajectory, one JSON line per checked bench is appended to the
given file: {"date", "bench", "hardware_threads", "pass", "metrics"}
where metrics holds the gated values. The file is an append-only log —
the speed story across PRs — so this script never rewrites prior lines.

Exits 0 when every binding gate of every given bench holds, 1 otherwise.
"""

import datetime
import json
import os
import sys


def check_bench(bench_path, refs):
    """Gate one bench JSON; returns (failures, trajectory_record)."""
    with open(bench_path) as f:
        bench = json.load(f)

    name = bench.get("bench", "")
    gates = refs.get(name, {}).get("gates", [])
    if not gates:
        print(f"FAIL {bench_path}: no reference gates for bench {name!r}"
              " (every BENCH_*.json must be gated — add an entry to"
              " bench/references.json)")
        return 1, None

    hw = int(bench.get("hardware_threads", 1))
    failures = 0
    metrics = {}
    for gate in gates:
        metric = gate["metric"]
        value = bench.get(metric)
        binding = not gate.get("wall_time", False) or hw >= 2
        if value is None:
            print(f"FAIL {name}.{metric}: missing from {bench_path}")
            failures += 1
            continue
        metrics[metric] = value
        if "equals" in gate:
            ok = value == gate["equals"]
            want = f"== {gate['equals']}"
        else:
            ok = float(value) >= float(gate["min"])
            want = f">= {gate['min']}"
        status = "PASS" if ok else ("SKIP" if not binding else "FAIL")
        note = "" if binding else " (wall-time gate, single core)"
        print(f"{status} {name}.{metric}: {value} (want {want}){note}")
        if binding and not ok:
            failures += 1

    record = {
        "date": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "bench": name,
        "hardware_threads": hw,
        "pass": failures == 0,
        "metrics": metrics,
    }
    return failures, record


def main(argv):
    bench_paths = []
    refs_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "references.json")
    trajectory_path = None
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--references":
            i += 1
            refs_path = argv[i]
        elif arg == "--trajectory":
            i += 1
            trajectory_path = argv[i]
        else:
            bench_paths.append(arg)
        i += 1
    if not bench_paths:
        print(__doc__.strip())
        return 2

    with open(refs_path) as f:
        refs = json.load(f)

    failures = 0
    records = []
    for bench_path in sorted(bench_paths):
        bench_failures, record = check_bench(bench_path, refs)
        failures += bench_failures
        if record is not None:
            records.append(record)

    if trajectory_path is not None and records:
        with open(trajectory_path, "a") as f:
            for record in records:
                f.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"appended {len(records)} record(s) to {trajectory_path}")

    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
