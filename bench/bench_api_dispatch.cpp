// Micro-bench for the Simulation facade's registry dispatch: the stage
// backends (ObcSolver / GreensSolver / SelfEnergyChannel) are resolved by
// string key once per Simulation and then invoked through a virtual call per
// energy point. This bench quantifies that indirection against the
// direct-call baseline and reports it as a fraction of one SCBA iteration on
// the quickstart device — the acceptance bar is < 1%.
//
// Emits BENCH_api_dispatch.json (current working directory) and exits
// non-zero if the overhead bound is violated.
//
//   ./bench_api_dispatch

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/timer.hpp"
#include "core/simulation.hpp"

using namespace qtx;

namespace {

/// Minimal backend: the solve body is a counter bump, so the measured loop
/// time is dominated by the call mechanism itself (conservative bound on the
/// dispatch overhead — any real solve amortizes it further).
class CountingSolver final : public core::GreensSolver {
 public:
  std::string_view name() const override { return "counting"; }
  rgf::SelectedSolution solve(const bt::BlockTridiag&, const bt::BlockTridiag&,
                              const bt::BlockTridiag&) override {
    ++calls;
    return {};
  }
  std::int64_t calls = 0;
};

std::int64_t direct_calls = 0;

rgf::SelectedSolution counting_direct(const bt::BlockTridiag&,
                                      const bt::BlockTridiag&,
                                      const bt::BlockTridiag&) {
  ++direct_calls;
  return {};
}

}  // namespace

int main() {
  std::printf("=== API dispatch overhead vs direct-call baseline ===\n\n");

  // --- 1. Per-call dispatch cost ------------------------------------------
  const std::int64_t reps = 2'000'000;
  const bt::BlockTridiag dummy;
  core::StageRegistry registry = core::StageRegistry::with_builtins();
  registry.register_greens("counting", [](const core::SimulationOptions&) {
    return std::make_unique<CountingSolver>();
  });
  core::SimulationOptions dummy_opt;
  std::unique_ptr<core::GreensSolver> via_registry =
      registry.make_greens("counting", dummy_opt);

  Stopwatch sw;
  for (std::int64_t i = 0; i < reps; ++i)
    (void)counting_direct(dummy, dummy, dummy);
  const double direct_s = sw.seconds();
  sw.restart();
  for (std::int64_t i = 0; i < reps; ++i)
    (void)via_registry->solve(dummy, dummy, dummy);
  const double virtual_s = sw.seconds();
  const double direct_ns = direct_s / reps * 1e9;
  const double virtual_ns = virtual_s / reps * 1e9;
  const double overhead_ns = std::max(0.0, virtual_ns - direct_ns);
  std::printf("per-call: direct %.2f ns, via registry backend %.2f ns "
              "(overhead %.2f ns over %lld calls)\n",
              direct_ns, virtual_ns, overhead_ns,
              static_cast<long long>(reps));

  // --- 2. Registry key resolution (paid once per Simulation) --------------
  sw.restart();
  const int lookups = 100'000;
  for (int i = 0; i < lookups; ++i)
    (void)registry.make_greens("rgf", dummy_opt);
  const double make_ns = sw.seconds() / lookups * 1e9;
  std::printf("make_greens(\"rgf\"): %.1f ns per construction "
              "(one OBC + one Green's construction per energy batch at "
              "Simulation build)\n\n",
              make_ns);

  // --- 3. One SCBA iteration on the quickstart device ---------------------
  const device::Structure st = device::make_test_structure(4);
  const auto gap = st.band_gap();
  core::Simulation sim =
      core::SimulationBuilder(st)
          .grid(-6.0, 6.0, 64)
          .eta(0.02)
          .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
          .gw(0.3)
          .mixing(0.4)
          .build();
  sim.iterate();  // warm-up: fill OBC caches
  const core::IterationResult steady = sim.iterate();
  // Virtual-call sites per iteration: per energy point, 2 surface solves in
  // the G stage plus 2 surface + 4 Stein solves in the W stage, and one
  // GreensSolver::solve per G and W system.
  const int ne = sim.options().grid.n;
  const std::int64_t dispatches = static_cast<std::int64_t>(ne) * 10;
  const double overhead_s = dispatches * overhead_ns / 1e9;
  const double fraction = overhead_s / steady.seconds;
  const bool pass = fraction < 0.01;
  std::printf("SCBA iteration (quickstart device, %d energies): %.3f s\n",
              ne, steady.seconds);
  std::printf("%lld dispatches/iteration -> %.2e s overhead "
              "(%.2e%% of the iteration) [%s]\n",
              static_cast<long long>(dispatches), overhead_s,
              100.0 * fraction, pass ? "PASS < 1%" : "FAIL >= 1%");

  FILE* json = std::fopen("BENCH_api_dispatch.json", "w");
  if (json) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"api_dispatch\",\n"
                 "  \"direct_ns_per_call\": %.3f,\n"
                 "  \"registry_ns_per_call\": %.3f,\n"
                 "  \"overhead_ns_per_call\": %.3f,\n"
                 "  \"make_greens_ns\": %.1f,\n"
                 "  \"dispatches_per_iteration\": %lld,\n"
                 "  \"scba_iteration_seconds\": %.6f,\n"
                 "  \"overhead_fraction_of_iteration\": %.3e,\n"
                 "  \"threshold\": 0.01,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 direct_ns, virtual_ns, overhead_ns, make_ns,
                 static_cast<long long>(dispatches), steady.seconds, fraction,
                 pass ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_api_dispatch.json\n");
  }
  return pass ? 0 : 1;
}
