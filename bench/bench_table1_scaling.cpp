// Table 1 reproduction (the scalability column): the paper classifies
// NEGF+scGW as O(N_E N_B N_BS^3) per SCBA iteration, against the O(N_AO^3)+
// of dense full-matrix approaches. This harness measures our solver's FLOP
// counts over sweeps of each parameter and fits the exponents, then shows
// the RGF-vs-dense workload ratio that makes selected inversion mandatory.

#include <cmath>
#include <cstdio>

#include "common/flops.hpp"
#include "rgf/sequential.hpp"

using namespace qtx;

namespace {

std::int64_t rgf_flops(int nb, int bs) {
  Rng rng(nb * 100 + bs);
  bt::BlockTridiag m = bt::BlockTridiag::random_diag_dominant(nb, bs, rng);
  bt::BlockTridiag bl = bt::BlockTridiag::random_diag_dominant(nb, bs, rng);
  bt::BlockTridiag bg = bl;
  bl.anti_hermitize();
  bg.anti_hermitize();
  FlopLedger::reset();
  (void)rgf::rgf_solve(m, bl, bg);
  return FlopLedger::total();
}

std::int64_t dense_flops(int nb, int bs) {
  Rng rng(nb * 100 + bs);
  bt::BlockTridiag m = bt::BlockTridiag::random_diag_dominant(nb, bs, rng);
  bt::BlockTridiag bl = m, bg = m;
  FlopLedger::reset();
  (void)rgf::reference_solve(m, bl, bg);
  return FlopLedger::total();
}

double fit_exponent(const std::vector<std::pair<double, double>>& xy) {
  // Least-squares slope of log y vs log x.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : xy) {
    const double lx = std::log(x), ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double n = static_cast<double>(xy.size());
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace

int main() {
  std::printf("=== Table 1: complexity of the selected NEGF+GW solver ===\n\n");
  // N_B sweep at fixed N_BS.
  std::vector<std::pair<double, double>> nb_sweep;
  std::printf("N_B sweep (N_BS = 16):   ");
  for (const int nb : {4, 8, 16, 32}) {
    const auto fl = rgf_flops(nb, 16);
    nb_sweep.push_back({nb, static_cast<double>(fl)});
    std::printf("N_B=%d: %.2f Gflop  ", nb, fl / 1e9);
  }
  const double exp_nb = fit_exponent(nb_sweep);
  std::printf("\n  fitted exponent in N_B: %.2f (paper: 1)\n\n", exp_nb);
  // N_BS sweep at fixed N_B.
  std::vector<std::pair<double, double>> bs_sweep;
  std::printf("N_BS sweep (N_B = 6):    ");
  for (const int bs : {8, 16, 32, 64}) {
    const auto fl = rgf_flops(6, bs);
    bs_sweep.push_back({bs, static_cast<double>(fl)});
    std::printf("N_BS=%d: %.2f Gflop  ", bs, fl / 1e9);
  }
  const double exp_bs = fit_exponent(bs_sweep);
  std::printf("\n  fitted exponent in N_BS: %.2f (paper: 3)\n\n", exp_bs);
  // RGF vs dense.
  std::printf("selected (RGF) vs dense O(N_AO^3) solve:\n");
  for (const int nb : {4, 8, 16}) {
    const auto r = rgf_flops(nb, 16);
    const auto d = dense_flops(nb, 16);
    std::printf("  N_B=%2d: RGF %.2f Gflop, dense %.2f Gflop, ratio %.1fx\n",
                nb, r / 1e9, d / 1e9, static_cast<double>(d) / r);
  }
  std::printf(
      "\nThe dense/selected ratio grows as N_B^2 — at the paper's N_B = 40,\n"
      "N_BS = 3408 the dense approach would be ~1600x more expensive,\n"
      "matching Table 1's O(N_E N_B N_BS^3) vs O(N_AO^3) classification.\n");
  return 0;
}
