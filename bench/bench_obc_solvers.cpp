// §4.2 micro-benchmark: the three retarded OBC solvers (fixed point,
// Sancho-Rubio decimation, Beyn contour integral) and the two Lyapunov
// solvers (doubling iteration vs direct Schur), on physical lead blocks of
// the synthetic device. Reproduces the paper's method discussion: fixed
// point needs O(100) iterations, Sancho-Rubio O(10), Beyn is direct; the
// warm-started fixed point (the memoizer's fast path) beats everything.

#include <benchmark/benchmark.h>

#include "device/structure.hpp"
#include "obc/obc.hpp"

using namespace qtx;

namespace {

struct Lead {
  la::Matrix m, n, np;
};

Lead make_lead(double energy, double eta) {
  static const device::Structure st = device::make_test_structure(4);
  static const bt::BlockTridiag h = st.hamiltonian_bt();
  Lead l;
  l.m = la::Matrix::identity(h.block_size()) * cplx(energy, eta);
  l.m -= h.diag(0);
  l.n = h.upper(0) * cplx(-1.0);
  l.np = h.lower(0) * cplx(-1.0);
  return l;
}

void BM_SurfaceFixedPoint(benchmark::State& state) {
  const Lead l = make_lead(0.5, 0.05);
  int iters = 0;
  for (auto _ : state) {
    const auto r = obc::surface_fixed_point(l.m, l.n, l.np);
    iters = r.iterations;
    benchmark::DoNotOptimize(r.x.data());
  }
  state.counters["iterations"] = iters;
}

void BM_SurfaceFixedPointWarm(benchmark::State& state) {
  const Lead l = make_lead(0.5, 0.05);
  const auto exact = obc::surface_sancho_rubio(l.m, l.n, l.np);
  int iters = 0;
  for (auto _ : state) {
    const auto r = obc::surface_fixed_point(l.m, l.n, l.np, exact.x);
    iters = r.iterations;
    benchmark::DoNotOptimize(r.x.data());
  }
  state.counters["iterations"] = iters;
}

void BM_SurfaceSanchoRubio(benchmark::State& state) {
  const Lead l = make_lead(0.5, 0.05);
  int iters = 0;
  for (auto _ : state) {
    const auto r = obc::surface_sancho_rubio(l.m, l.n, l.np);
    iters = r.iterations;
    benchmark::DoNotOptimize(r.x.data());
  }
  state.counters["iterations"] = iters;
}

void BM_SurfaceBeyn(benchmark::State& state) {
  const Lead l = make_lead(0.5, 0.05);
  for (auto _ : state) {
    const auto r = obc::surface_beyn(l.m, l.n, l.np);
    benchmark::DoNotOptimize(r.x.data());
  }
}

void BM_SteinDoubling(benchmark::State& state) {
  Rng rng(5);
  la::Matrix a = la::Matrix::random(32, 32, rng);
  a *= cplx(0.5 / a.frobenius_norm());
  const la::Matrix q = la::Matrix::random_hermitian(32, rng);
  for (auto _ : state) {
    const auto r = obc::stein_doubling(q, a, -1.0);
    benchmark::DoNotOptimize(r.x.data());
  }
}

void BM_SteinDirectSchur(benchmark::State& state) {
  Rng rng(5);
  la::Matrix a = la::Matrix::random(32, 32, rng);
  a *= cplx(0.5 / a.frobenius_norm());
  const la::Matrix q = la::Matrix::random_hermitian(32, rng);
  for (auto _ : state) {
    const la::Matrix x = obc::stein_direct(q, a, -1.0);
    benchmark::DoNotOptimize(x.data());
  }
}

}  // namespace

BENCHMARK(BM_SurfaceFixedPoint);
BENCHMARK(BM_SurfaceFixedPointWarm);
BENCHMARK(BM_SurfaceSanchoRubio);
BENCHMARK(BM_SurfaceBeyn);
BENCHMARK(BM_SteinDoubling);
BENCHMARK(BM_SteinDirectSchur);

BENCHMARK_MAIN();
