// §5.3 ablation: OBC memoization across SCBA iterations. Reproduces the
// paper's observation that the boundary blocks stabilize after a few
// iterations, letting warm-started fixed-point iterations replace the
// direct solvers — and that the switch happens dynamically at runtime.

#include <cstdio>

#include "core/simulation.hpp"

using namespace qtx;

int main() {
  std::printf("=== §5.3 ablation: OBC memoization ===\n\n");
  const device::Structure st = device::make_test_structure(4);
  const auto gap = st.band_gap();
  const core::SimulationBuilder base =
      core::SimulationBuilder(st)
          .grid(-6.0, 6.0, 32)
          .eta(0.05)
          .contacts(gap.conduction_min + 0.3, gap.conduction_min + 0.1)
          .gw(0.3)
          .mixing(0.4);

  for (const bool memo : {false, true}) {
    core::Simulation sim = core::SimulationBuilder(base)
                               .obc_backend(memo ? "memoized" : "beyn")
                               .build();
    std::printf("memoizer %s:\n", memo ? "ON " : "OFF");
    std::printf("%6s %14s %14s %12s %12s\n", "iter", "OBC time [ms]",
                "total [ms]", "direct", "memoized");
    std::int64_t prev_direct = 0, prev_memo = 0;
    for (int it = 0; it < 5; ++it) {
      const auto r = sim.iterate();
      double obc_ms = 0.0;
      for (const char* k :
           {"G: OBC", "W: Assembly: Beyn", "W: Assembly: Lyapunov"})
        if (r.kernel_seconds.count(k)) obc_ms += r.kernel_seconds.at(k) * 1e3;
      const auto& s = sim.memoizer_stats();
      std::printf("%6d %14.2f %14.2f %12lld %12lld\n", r.iteration, obc_ms,
                  r.seconds * 1e3,
                  static_cast<long long>(s.direct_calls - prev_direct),
                  static_cast<long long>(s.memoized_calls - prev_memo));
      prev_direct = s.direct_calls;
      prev_memo = s.memoized_calls;
    }
    if (memo) {
      const auto& s = sim.memoizer_stats();
      std::printf("  avg fixed-point iterations per memoized solve: %.1f "
                  "(paper: <10 for w≶, ~20 for x^R)\n",
                  static_cast<double>(s.fpi_iterations) /
                      std::max<std::int64_t>(1, s.memoized_calls));
    }
    std::printf("\n");
  }
  std::printf("Shape check vs paper: with memoization, the first iteration\n"
              "pays the direct cost (cache fill) and subsequent iterations\n"
              "dispatch almost entirely to warm-started fixed point,\n"
              "collapsing the OBC rows of Table 4.\n");
  return 0;
}
