// Serve-daemon throughput: what the warm-pipeline pool and the result
// cache buy over cold solves, measured through the real wire path (an
// in-process serve::Server plus the blocking serve::Client — the same
// code `qtx serve` / `qtx submit` run).
//
// Three phases, one fresh daemon each, R identical mini-deck requests per
// phase:
//
//   cold    cache off, pool off   — every request builds its engine
//   pool    cache off, pool on    — requests 2..R reuse a warm engine
//   cached  cache on,  pool on    — requests 2..R are cache hits
//
// Emits BENCH_serve_throughput.json (current working directory; gated by
// bench/check_serve_throughput.py against bench/references.json) and
// exits non-zero when a gate fails. Correctness gates (every response
// ok, every stripped payload bit-identical to a cold `qtx run`, pool
// warm-hit and cache-hit counts exact) always apply; the wall-clock
// speedup gates only bind on multi-core hosts, where timing is
// meaningful.

#include <cstdio>
#include <string>
#include <vector>

#include <cstdlib>
#include <unistd.h>

#include <chrono>

#include "io/result_writer.hpp"
#include "io/scenario_runner.hpp"
#include "par/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace qtx;

namespace {

/// Small-but-real deck (matches tests/test_serve.cpp): 2 quickstart
/// cells, 8 energies, 2 SCBA iterations.
constexpr const char* kMiniDeck =
    "[device]\n"
    "preset = quickstart\n"
    "num_cells = 2\n"
    "\n"
    "[solver]\n"
    "grid = -2.0 2.0 8\n"
    "eta = 0.05\n"
    "max_iterations = 2\n"
    "tolerance = 1e-3\n";

constexpr int kRequests = 6;  ///< R per phase

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Phase {
  std::string name;
  double seconds = 0.0;            ///< wall time of the R submissions
  double scenarios_per_second = 0.0;
  serve::ServerStats stats;
  bool all_ok = true;
  bool identical = true;  ///< every stripped payload == the cold reference
};

/// Run one daemon configuration and push R requests through it.
Phase run_phase(const std::string& name, const std::string& socket_dir,
                std::size_t cache_bytes, int pool_max_idle,
                const std::string& reference_stripped) {
  Phase phase;
  phase.name = name;

  serve::ServerOptions opt;
  opt.socket_path = socket_dir + "/" + name + ".sock";
  opt.workers = 1;  // serial phase — throughput here measures reuse, not cores
  opt.cache_bytes = cache_bytes;
  opt.pool_max_idle = pool_max_idle;
  serve::Server server(opt);
  server.start();

  const serve::Client client(opt.socket_path);
  const double t0 = now_seconds();
  for (int i = 0; i < kRequests; ++i) {
    const serve::Client::Response r = client.submit(kMiniDeck);
    if (!r.ok) {
      std::printf("  [%s] request %d FAILED: %s\n", name.c_str(), i,
                  r.error.c_str());
      phase.all_ok = false;
      continue;
    }
    if (serve::strip_volatile_sections(r.payload) != reference_stripped) {
      std::printf("  [%s] request %d diverged from the cold reference\n",
                  name.c_str(), i);
      phase.identical = false;
    }
  }
  phase.seconds = now_seconds() - t0;
  server.stop();
  phase.stats = server.stats();
  phase.scenarios_per_second =
      phase.seconds > 0.0 ? kRequests / phase.seconds : 0.0;
  std::printf("%-8s %8.3f s  %8.2f scenarios/s  (pool warm %lld, cache "
              "hits %lld)\n",
              name.c_str(), phase.seconds, phase.scenarios_per_second,
              phase.stats.pool.warm_hits, phase.stats.cache.hits);
  return phase;
}

}  // namespace

int main() {
  std::printf("=== serve throughput: cold vs warm pool vs result cache ===\n");
  std::printf("(%d requests per phase, mini quickstart deck)\n\n", kRequests);

  char socket_dir[] = "/tmp/qtx_bench_serve_XXXXXX";
  if (::mkdtemp(socket_dir) == nullptr) {
    std::printf("cannot create socket directory\n");
    return 1;
  }

  // The reference every served payload must reproduce: a cold in-process
  // run of the same deck, normalized the way Server::solve normalizes.
  io::Scenario s = io::parse_scenario_text(kMiniDeck, "request.ini");
  if (s.name.empty()) s.name = io::scenario_path_stem("request.ini");
  s.output = io::OutputSpec{};
  s.output.directory.clear();
  const io::RunOutcome ref =
      io::run_scenario(s, core::StageRegistry::global(), nullptr);
  const std::string reference_stripped = serve::strip_volatile_sections(
      io::render_result_json(s, ref.resolved, ref.results));

  const Phase cold = run_phase("cold", socket_dir, 0, 0, reference_stripped);
  const Phase pool = run_phase("pool", socket_dir, 0, 2, reference_stripped);
  const Phase cached =
      run_phase("cached", socket_dir, 64ull << 20, 2, reference_stripped);
  ::rmdir(socket_dir);

  const double cache_hit_rate =
      static_cast<double>(cached.stats.cache.hits) / kRequests;
  const double pool_over_cold =
      cold.scenarios_per_second > 0.0
          ? pool.scenarios_per_second / cold.scenarios_per_second
          : 0.0;
  const double cached_over_cold =
      cold.scenarios_per_second > 0.0
          ? cached.scenarios_per_second / cold.scenarios_per_second
          : 0.0;
  const int hw = par::ThreadPool::hardware_threads();

  std::printf("\ncache hit rate %.2f, pool/cold %.2fx, cached/cold %.2fx "
              "(%d hardware threads)\n",
              cache_hit_rate, pool_over_cold, cached_over_cold, hw);

  // Gates. Counts and bit-identity always bind; the wall-clock speedups
  // only on multi-core hosts (a loaded single-core box makes any timing
  // ratio noise). check_serve_throughput.py applies the same rule to
  // bench/references.json.
  struct GateRow {
    const char* name;
    bool pass;
    bool wall_time;
  };
  const std::vector<GateRow> gates = {
      {"all_requests_ok", cold.all_ok && pool.all_ok && cached.all_ok,
       false},
      {"payloads_bit_identical",
       cold.identical && pool.identical && cached.identical, false},
      {"pool_warm_hits_exact", pool.stats.pool.warm_hits == kRequests - 1,
       false},
      {"cold_phase_never_warm",
       cold.stats.pool.warm_hits == 0 && cold.stats.cache.hits == 0, false},
      {"cache_hit_rate_positive", cache_hit_rate > 0.0, false},
      {"pool_at_least_cold", pool_over_cold >= 1.0, true},
      {"cached_at_least_cold", cached_over_cold >= 1.0, true},
  };

  bool pass = true;
  for (const GateRow& g : gates) {
    const bool binding = !g.wall_time || hw >= 2;
    std::printf("gate %-26s %s%s\n", g.name, g.pass ? "PASS" : "FAIL",
                binding ? "" : " (not binding: single core)");
    if (binding && !g.pass) pass = false;
  }

  FILE* json = std::fopen("BENCH_serve_throughput.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"serve_throughput\",\n"
                 "  \"requests_per_phase\": %d,\n"
                 "  \"hardware_threads\": %d,\n"
                 "  \"cold_scenarios_per_second\": %.6f,\n"
                 "  \"pool_scenarios_per_second\": %.6f,\n"
                 "  \"cached_scenarios_per_second\": %.6f,\n"
                 "  \"pool_over_cold\": %.6f,\n"
                 "  \"cached_over_cold\": %.6f,\n"
                 "  \"cache_hit_rate\": %.6f,\n"
                 "  \"pool_warm_hits\": %lld,\n"
                 "  \"payloads_bit_identical\": %s,\n"
                 "  \"gates\": [\n",
                 kRequests, hw, cold.scenarios_per_second,
                 pool.scenarios_per_second, cached.scenarios_per_second,
                 pool_over_cold, cached_over_cold, cache_hit_rate,
                 pool.stats.pool.warm_hits,
                 cold.identical && pool.identical && cached.identical
                     ? "true"
                     : "false");
    for (std::size_t i = 0; i < gates.size(); ++i) {
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"pass\": %s, "
                   "\"wall_time\": %s}%s\n",
                   gates[i].name, gates[i].pass ? "true" : "false",
                   gates[i].wall_time ? "true" : "false",
                   i + 1 < gates.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_serve_throughput.json\n");
  }
  return pass ? 0 : 1;
}
