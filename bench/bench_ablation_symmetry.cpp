// §5.2 ablation: exploiting the lesser/greater symmetry X≶_ij = -X≶*_ji.
// Measures (i) the storage footprint of the symmetric vs full BT
// representation, and (ii) the communication volume of the energy<->element
// transposition with and without symmetric serialization — the paper's
// "memory cost is significantly lowered ... communication volume during
// data transposition and the time to calculate B≶_scatt are halved".

#include <cstdio>

#include "bsparse/bsparse.hpp"
#include "core/gw.hpp"
#include "par/distribution.hpp"

using namespace qtx;

int main() {
  std::printf("=== §5.2 ablation: symmetry-exploiting storage ===\n\n");
  std::printf("%6s %6s %14s %14s %8s\n", "N_B", "N_BS", "full [MB]",
              "symmetric [MB]", "ratio");
  for (const auto& [nb, bs] :
       std::vector<std::pair<int, int>>{{16, 416}, {16, 2016}, {40, 3408}}) {
    // Computed from the container layouts (allocating the paper-sized
    // matrices would need tens of GB): full = diag + upper + lower blocks,
    // symmetric = diag + upper only.
    const double per_block = sizeof(cplx) * static_cast<double>(bs) * bs;
    const double full = per_block * (nb + 2 * (nb - 1)) / 1e6;
    const double sym = per_block * (nb + (nb - 1)) / 1e6;
    std::printf("%6d %6d %14.1f %14.1f %8.2f\n", nb, bs, full, sym,
                full / sym);
  }
  std::printf("\n(asymptotic off-diagonal ratio 2x; NW-1/NW-2/NR-40 blockings"
              " above)\n\n");

  // Transposition volume: the element count halves, hence the all-to-all
  // payload halves — measured through the communicator's byte counter.
  const int ranks = 4, ne = 32, nb = 8, bs = 32;
  const core::SymLayout layout{nb, bs};
  const std::int64_t sym_elems = layout.num_elements();           // diag+upper
  const std::int64_t full_elems = (3 * nb - 2) * static_cast<std::int64_t>(bs) * bs;
  std::printf("transposition volume, %d ranks, %d energies, %dx%d blocks:\n",
              ranks, ne, nb, bs);
  std::int64_t bytes_sym = 0, bytes_full = 0;
  for (const bool symmetric : {false, true}) {
    const std::int64_t k = symmetric ? sym_elems : full_elems;
    par::CommWorld world(ranks);
    par::Transposer t(ne, k, ranks);
    world.run([&](par::Comm& c) {
      std::vector<cplx> data(t.energies().count(c.rank()) * k, cplx(1.0));
      auto elem = t.to_element_layout(c, data);
      (void)t.to_energy_layout(c, elem);
    });
    if (symmetric)
      bytes_sym = world.total_bytes_sent();
    else
      bytes_full = world.total_bytes_sent();
  }
  std::printf("  full elements:      %8.2f MB moved\n", bytes_full / 1e6);
  std::printf("  symmetric elements: %8.2f MB moved\n", bytes_sym / 1e6);
  std::printf("  reduction: %.2fx (paper: communication volume halved)\n",
              static_cast<double>(bytes_full) / bytes_sym);
  return 0;
}
