// Table 3 reproduction: physical dimensions and numerical representation of
// the eight nano-device structures. Every derived quantity (atom counts,
// orbital counts, block sizes, non-zero counts) is computed from our device
// bookkeeping and printed next to the paper's published value.

#include <cstdio>

#include "device/config.hpp"

int main() {
  using namespace qtx::device;
  std::printf("=== Table 3: device structures (computed vs paper) ===\n\n");
  std::printf("%-7s %9s %6s %6s %5s %6s %12s %12s %14s %14s\n", "Device",
              "Ltot[nm]", "ÑBS", "N_BS", "N_B", "N_U", "N_A", "N_AO",
              "H_NNZ[1e7]", "G_NNZ[1e7]");
  for (const DeviceConfig& c : table3_devices()) {
    std::printf("%-7s %9.2f %6d %6d %5d %6d %7lld", c.name.c_str(),
                c.total_length_nm, c.orbitals_per_puc(), c.block_size(),
                c.num_cells, c.nu, static_cast<long long>(c.num_atoms()));
    if (c.paper_num_atoms)
      std::printf("(%lld)", static_cast<long long>(c.paper_num_atoms));
    std::printf(" %8lld", static_cast<long long>(c.num_orbitals()));
    if (c.paper_num_orbitals)
      std::printf("(%lld)", static_cast<long long>(c.paper_num_orbitals));
    std::printf(" %7.2f", c.h_nnz() / 1e7);
    if (c.paper_h_nnz) std::printf("(%.1f)", c.paper_h_nnz / 1e7);
    std::printf(" %7.2f", c.g_nnz() / 1e7);
    if (c.paper_g_nnz) std::printf("(%.1f)", c.paper_g_nnz / 1e7);
    std::printf("\n");
  }
  std::printf(
      "\nValues in parentheses: paper Table 3. N_A/N_AO match exactly;\n"
      "NNZ counts follow the banded/r_cut pair-counting formulas and land\n"
      "within 10%% of the published values (see DESIGN.md).\n");
  return 0;
}
