#!/usr/bin/env bash
# CI entry point.
#
#   ./ci.sh              # all stages
#   ./ci.sh build-test   # tier-1 verify: Debug + Release, -Werror, ctest
#   ./ci.sh tsan         # ThreadSanitizer build running the "api",
#                        # "parallel", and "accel" ctest labels (the suites
#                        # that exercise the energy pipeline's threading and
#                        # the mixers' parallel energy loops)
#   ./ci.sh blas         # Release build with QTX_WITH_BLAS=ON running the
#                        # "la-backend" ctest label (kernel equivalence of
#                        # every registered la backend + the table4 bench
#                        # gate). Degrades gracefully: without CBLAS/LAPACKE
#                        # the "blas" backend simply isn't registered and
#                        # the label covers reference + native only.
#   ./ci.sh docs         # doxygen (skipped if unavailable); fails on
#                        # undocumented-public-symbol warnings in the
#                        # tracked core/io headers
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

build_test() {
  for config in Debug Release; do
    build_dir="build-ci-${config,,}"
    echo "=== [$config] configure ==="
    cmake -B "$build_dir" -S . \
      -DCMAKE_BUILD_TYPE="$config" \
      -DQTX_WERROR=ON
    echo "=== [$config] build ==="
    cmake --build "$build_dir" -j "$JOBS"
    echo "=== [$config] header self-sufficiency check ==="
    cmake --build "$build_dir" --target qtx_header_check -j "$JOBS"
    echo "=== [$config] deprecated Scba shim compile check ==="
    # The legacy API must keep compiling under -Werror with only the
    # deprecation warning itself waived (-Wno-deprecated-declarations is set
    # on the target), proving both API paths stay buildable.
    cmake --build "$build_dir" --target scba_compat -j "$JOBS"
    echo "=== [$config] ctest (includes the -L api facade suite) ==="
    ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
  done
}

tsan() {
  build_dir="build-ci-tsan"
  echo "=== [TSan] configure ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DQTX_BUILD_BENCHES=OFF \
    -DQTX_BUILD_EXAMPLES=OFF
  echo "=== [TSan] build (api + parallel + accel suites) ==="
  cmake --build "$build_dir" -j "$JOBS" \
    --target test_api test_parallel test_accel qtx
  echo "=== [TSan] ctest -L 'api|parallel|accel' ==="
  # The race-sensitive suites: the facade (observers, registry), the energy
  # pipeline (thread pool, work stealing, determinism at 8 workers), and
  # the accel layer (mixers running on the parallel energy loop).
  ctest --test-dir "$build_dir" -L "api|parallel|accel" --output-on-failure \
    -j "$JOBS"
}

blas() {
  build_dir="build-ci-blas"
  echo "=== [BLAS] configure (QTX_WITH_BLAS=ON) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DQTX_WERROR=ON \
    -DQTX_WITH_BLAS=ON 2>&1 | tee "${build_dir}-configure.log"
  if ! grep -q 'la "blas" backend: /' "${build_dir}-configure.log"; then
    echo "=== [BLAS] note: CBLAS/LAPACKE not found — the la-backend label" \
         "runs against reference + native only ==="
  fi
  echo "=== [BLAS] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [BLAS] ctest -L la-backend ==="
  # test_la_backends iterates the registry at runtime, so the "blas" rows
  # are exercised exactly when the configure step found the libraries;
  # bench.table4_kernels emits BENCH_table4_kernels.json either way.
  ctest --test-dir "$build_dir" -L la-backend --output-on-failure -j "$JOBS"
}

docs() {
  # Non-fatal when doxygen is absent (e.g. minimal containers); when it
  # runs, undocumented-public-symbol warnings in the tracked headers are
  # hard failures — the API-reference contract of docs/userguide.md.
  if ! command -v doxygen > /dev/null 2>&1; then
    echo "=== [docs] doxygen not found — skipping (install doxygen to run"
    echo "    the documentation check locally) ==="
    return 0
  fi
  echo "=== [docs] doxygen ==="
  mkdir -p build-docs
  doxygen Doxyfile
  tracked='src/core/simulation\.hpp|src/core/options\.hpp|src/core/stages\.hpp|src/core/stage_registry\.hpp|src/io/[a-z_]*\.hpp|src/accel/[a-z_]*\.hpp'
  if grep -E "$tracked" build-docs/doxygen-warnings.log 2>/dev/null \
      | grep -i "is not documented" > build-docs/undocumented.log; then
    echo "=== [docs] FAILED: undocumented public symbols in tracked" \
         "headers ===" >&2
    cat build-docs/undocumented.log >&2
    return 1
  fi
  echo "=== [docs] tracked headers fully documented" \
       "(html in build-docs/html) ==="
}

case "$STAGE" in
  build-test) build_test ;;
  tsan) tsan ;;
  blas) blas ;;
  docs) docs ;;
  all)
    build_test
    tsan
    blas
    docs
    ;;
  *)
    echo "unknown stage '$STAGE' (expected: build-test, tsan, blas, docs," \
         "all)" >&2
    exit 2
    ;;
esac

echo "CI passed (stage: $STAGE)."
