#!/usr/bin/env bash
# CI entry point: runs the tier-1 verify (configure, build, ctest) in Debug
# and Release configurations with warnings treated as errors, plus the
# standalone-header compile check. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

for config in Debug Release; do
  build_dir="build-ci-${config,,}"
  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE="$config" \
    -DQTX_WERROR=ON
  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$config] header self-sufficiency check ==="
  cmake --build "$build_dir" --target qtx_header_check -j "$JOBS"
  echo "=== [$config] deprecated Scba shim compile check ==="
  # The legacy API must keep compiling under -Werror with only the
  # deprecation warning itself waived (-Wno-deprecated-declarations is set
  # on the target), proving both API paths stay buildable.
  cmake --build "$build_dir" --target scba_compat -j "$JOBS"
  echo "=== [$config] ctest (includes the -L api facade suite) ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
done

echo "CI passed: Debug + Release builds, header check, and all tests green."
