#!/usr/bin/env bash
# CI entry point.
#
#   ./ci.sh              # all stages
#   ./ci.sh build-test   # tier-1 verify: Debug + Release, -Werror, ctest
#   ./ci.sh lint         # qtx-lint static analysis: the repo's own src/
#                        # tree must be violation-free (layer DAG,
#                        # determinism, hygiene — see CONTRIBUTING.md
#                        # "Invariants"), plus the lint fixture suite.
#                        # Writes build-ci-lint/lint-report.txt.
#   ./ci.sh tsan         # QTX_SANITIZE=thread build running the "api",
#                        # "parallel", and "accel" ctest labels (the suites
#                        # that exercise the energy pipeline's threading and
#                        # the mixers' parallel energy loops)
#   ./ci.sh asan-ubsan   # QTX_SANITIZE=address,undefined build running the
#                        # FULL ctest suite; UBSan findings are fatal
#                        # (-fno-sanitize-recover), so any signed overflow,
#                        # invalid read, or leak fails the stage
#   ./ci.sh blas         # Release build with QTX_WITH_BLAS=ON running the
#                        # "la-backend" ctest label (kernel equivalence of
#                        # every registered la backend + the table4 bench
#                        # gate). Degrades gracefully: without CBLAS/LAPACKE
#                        # the "blas" backend simply isn't registered and
#                        # the label covers reference + native only.
#   ./ci.sh ranks        # Release build running the "comm" ctest label
#                        # (collective contract of every registered comm
#                        # backend + the forked-process launcher's fault
#                        # handling), the golden.ranked_quickstart
#                        # cross-process determinism gate, and the Fig. 6
#                        # weak-scaling bench (emits
#                        # BENCH_fig6_weak_scaling.json). Ranks are
#                        # processes, not threads — runs on a single-core
#                        # container.
#   ./ci.sh serve        # Release build running the "serve|golden" ctest
#                        # labels (serve daemon unit + end-to-end suites,
#                        # the golden.served_quickstart determinism gate)
#                        # and the serve-throughput bench (emits
#                        # BENCH_serve_throughput.json, gated against
#                        # bench/references.json by bench/check_bench.py)
#   ./ci.sh obs          # Release build running the "obs" ctest label
#                        # (span nesting/determinism, trace + metrics
#                        # rendering, serve stats round trip), then an
#                        # end-to-end traced quickstart: qtx run --trace
#                        # --metrics, python3 validates the Chrome trace
#                        # JSON (>= 1 span per SCBA iteration per stage
#                        # kind) and the metrics snapshot, and a live
#                        # daemon is scraped via qtx submit --stats
#   ./ci.sh tidy         # clang-tidy over the src/ tree with the curated
#                        # .clang-tidy check set (skipped with a notice when
#                        # clang-tidy is not installed)
#   ./ci.sh docs         # doxygen (skipped if unavailable); fails on
#                        # undocumented-public-symbol warnings in the
#                        # tracked core/io/analysis headers
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
STAGE="${1:-all}"

build_test() {
  for config in Debug Release; do
    build_dir="build-ci-${config,,}"
    echo "=== [$config] configure ==="
    cmake -B "$build_dir" -S . \
      -DCMAKE_BUILD_TYPE="$config" \
      -DQTX_WERROR=ON
    echo "=== [$config] build ==="
    cmake --build "$build_dir" -j "$JOBS"
    echo "=== [$config] header self-sufficiency check ==="
    cmake --build "$build_dir" --target qtx_header_check -j "$JOBS"
    echo "=== [$config] deprecated Scba shim compile check ==="
    # The legacy API must keep compiling under -Werror with only the
    # deprecation warning itself waived (-Wno-deprecated-declarations is set
    # on the target), proving both API paths stay buildable.
    cmake --build "$build_dir" --target scba_compat -j "$JOBS"
    echo "=== [$config] ctest (includes the -L api facade suite) ==="
    ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
  done
  if command -v python3 > /dev/null 2>&1; then
    echo "=== [build-test] gate every BENCH_*.json against" \
         "bench/references.json ==="
    # The Release ctest pass above ran the bench label, so the Release
    # tree holds a fresh BENCH_*.json per bench binary; each run is also
    # appended to the bench/trajectory.jsonl perf log (ROADMAP item 5).
    python3 bench/check_bench.py build-ci-release/BENCH_*.json \
      --trajectory bench/trajectory.jsonl
  else
    echo "=== [build-test] python3 not found — skipping the bench gate ==="
  fi
}

lint() {
  build_dir="build-ci-lint"
  echo "=== [lint] configure ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DQTX_WERROR=ON \
    -DQTX_BUILD_BENCHES=OFF \
    -DQTX_BUILD_EXAMPLES=OFF
  echo "=== [lint] build qtx-lint + fixture suite ==="
  cmake --build "$build_dir" -j "$JOBS" --target qtx_lint test_lint
  echo "=== [lint] qtx-lint over the repository src/ tree ==="
  # The report is uploaded as a CI artifact by the analyze job; --report
  # still writes it when violations are found (exit 1 fails the stage).
  "$build_dir/qtx-lint" --root . --report "$build_dir/lint-report.txt"
  echo "=== [lint] ctest -L lint (fixture diagnostics + exit codes) ==="
  ctest --test-dir "$build_dir" -L lint --output-on-failure -j "$JOBS"
}

tsan() {
  build_dir="build-ci-tsan"
  echo "=== [TSan] configure (QTX_SANITIZE=thread) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DQTX_SANITIZE=thread \
    -DQTX_BUILD_BENCHES=OFF \
    -DQTX_BUILD_EXAMPLES=OFF
  echo "=== [TSan] build (api + parallel + accel + comm + serve + obs" \
       "suites) ==="
  cmake --build "$build_dir" -j "$JOBS" \
    --target test_api test_parallel test_accel test_comm_transport \
    test_serve test_obs qtx
  echo "=== [TSan] ctest -L 'api|parallel|accel|comm|serve|obs' ==="
  # The race-sensitive suites: the facade (observers, registry), the energy
  # pipeline (thread pool, work stealing, determinism at 8 workers), the
  # accel layer (mixers running on the parallel energy loop), the comm
  # transports (the socket wire framing runs its ranks as threads here, so
  # TSan sees every frame enqueue/drain), the serve daemon (acceptor +
  # worker threads sharing the pipeline pool, result cache, and stats), and
  # the obs layer (per-thread span buffers and metrics polled mid-run —
  # including TimerRegistry::all()/seconds() against concurrent add()).
  ctest --test-dir "$build_dir" -L "api|parallel|accel|comm|serve|obs" \
    --output-on-failure -j "$JOBS"
}

asan_ubsan() {
  build_dir="build-ci-asan"
  echo "=== [ASan+UBSan] configure (QTX_SANITIZE=address,undefined) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DQTX_SANITIZE=address,undefined
  echo "=== [ASan+UBSan] build (full tree) ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [ASan+UBSan] ctest (full suite) ==="
  # halt_on_error makes ASan failures terminate the offending test;
  # leak detection stays on where the kernel allows ptrace (it degrades to
  # a notice inside restricted containers).
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

blas() {
  build_dir="build-ci-blas"
  echo "=== [BLAS] configure (QTX_WITH_BLAS=ON) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DQTX_WERROR=ON \
    -DQTX_WITH_BLAS=ON 2>&1 | tee "${build_dir}-configure.log"
  if ! grep -q 'la "blas" backend: /' "${build_dir}-configure.log"; then
    echo "=== [BLAS] note: CBLAS/LAPACKE not found — the la-backend label" \
         "runs against reference + native only ==="
  fi
  echo "=== [BLAS] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [BLAS] ctest -L la-backend ==="
  # test_la_backends iterates the registry at runtime, so the "blas" rows
  # are exercised exactly when the configure step found the libraries;
  # bench.table4_kernels emits BENCH_table4_kernels.json either way.
  ctest --test-dir "$build_dir" -L la-backend --output-on-failure -j "$JOBS"
}

ranks() {
  build_dir="build-ci-ranks"
  echo "=== [ranks] configure (Release) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DQTX_WERROR=ON \
    -DQTX_BUILD_EXAMPLES=OFF
  echo "=== [ranks] build (comm suite + qtx + fig6 bench) ==="
  cmake --build "$build_dir" -j "$JOBS" \
    --target test_comm_transport qtx bench_fig6_weak_scaling
  echo "=== [ranks] ctest -L 'comm|golden' ==="
  # The collective contract against every registered transport, the
  # launcher fault-injection cases, and the 1/2/4-rank cross-process
  # determinism goldens. Ranks are forked processes, not threads, so this
  # stage is meaningful even on a single-core runner.
  ctest --test-dir "$build_dir" -L "comm|golden" --output-on-failure \
    -j "$JOBS"
  echo "=== [ranks] Fig. 6 weak-scaling bench (all transports +" \
       "real-process mode) ==="
  (cd "$build_dir" && ./bench_fig6_weak_scaling)
  if command -v python3 > /dev/null 2>&1; then
    echo "=== [ranks] gate BENCH_fig6_weak_scaling.json against" \
         "bench/references.json ==="
    python3 bench/check_bench.py "$build_dir/BENCH_fig6_weak_scaling.json" \
      --trajectory bench/trajectory.jsonl
  else
    echo "=== [ranks] python3 not found — skipping the reference gate ==="
  fi
}

serve() {
  build_dir="build-ci-serve"
  echo "=== [serve] configure (Release) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DQTX_WERROR=ON \
    -DQTX_BUILD_EXAMPLES=OFF
  echo "=== [serve] build (serve suite + qtx + throughput bench) ==="
  cmake --build "$build_dir" -j "$JOBS" \
    --target test_serve test_golden qtx bench_serve_throughput
  echo "=== [serve] ctest -L 'serve|golden' ==="
  # The daemon's unit suites (cache, pool, frame/request codecs), the
  # end-to-end socket tests (bit-identity, drain, backpressure,
  # timeouts), and the golden determinism gates including
  # golden.served_quickstart (a served quickstart deck must reproduce
  # tests/golden/quickstart_transmission.txt exactly).
  ctest --test-dir "$build_dir" -L "serve|golden" --output-on-failure \
    -j "$JOBS"
  echo "=== [serve] throughput bench (cold vs warm pool vs cache) ==="
  (cd "$build_dir" && ./bench_serve_throughput)
  if command -v python3 > /dev/null 2>&1; then
    echo "=== [serve] gate BENCH_serve_throughput.json against" \
         "bench/references.json ==="
    python3 bench/check_bench.py \
      "$build_dir/BENCH_serve_throughput.json" \
      --trajectory bench/trajectory.jsonl
  else
    echo "=== [serve] python3 not found — skipping the reference gate ==="
  fi
}

obs() {
  build_dir="build-ci-obs"
  echo "=== [obs] configure (Release) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DQTX_WERROR=ON \
    -DQTX_BUILD_BENCHES=OFF \
    -DQTX_BUILD_EXAMPLES=OFF
  echo "=== [obs] build (obs suite + qtx) ==="
  cmake --build "$build_dir" -j "$JOBS" --target test_obs qtx
  echo "=== [obs] ctest -L obs ==="
  # Span nesting + cross-thread-count determinism, Chrome trace rendering
  # and per-rank merge, metrics snapshot/JSON/Prometheus stability, and
  # the serve stats frame round trip against an in-process daemon.
  ctest --test-dir "$build_dir" -L obs --output-on-failure -j "$JOBS"
  echo "=== [obs] traced quickstart (qtx run --trace --metrics) ==="
  "$build_dir/qtx" run scenarios/quickstart.ini \
    --out "$build_dir/obs-quickstart" \
    --trace "$build_dir/trace.json" \
    --metrics "$build_dir/metrics.json" --quiet
  if command -v python3 > /dev/null 2>&1; then
    echo "=== [obs] validate the trace + metrics JSON ==="
    # Hard acceptance invariant: the trace is valid JSON with at least one
    # span per SCBA iteration per stage kind, and the metrics snapshot is
    # valid JSON carrying the FLOP totals.
    python3 - "$build_dir/trace.json" "$build_dir/metrics.json" << 'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
stages = {}
for e in events:
    if e["cat"] == "stage" and "iteration" in e["args"]:
        stages.setdefault(e["args"]["iteration"], set()).add(e["name"])
iterations = sorted(a["iteration"] for a in
                    (e["args"] for e in events if e["cat"] == "iteration"))
assert iterations, "no scba.iteration spans in the trace"
required = {"G: OBC", "G: RGF", "W: Assembly: LHS", "W: Assembly: RHS",
            "W: RGF", "Other: P-FFT", "Other: Sigma-FFT", "mix"}
for it in iterations:
    missing = required - stages.get(it, set())
    assert not missing, f"iteration {it} missing stage spans: {missing}"
assert any(e["cat"] == "kernel" for e in events), "no la kernel spans"
metrics = json.load(open(sys.argv[2]))
assert metrics["counters"].get("qtx.flops.total", 0) > 0
assert metrics["counters"].get("qtx.run.completed") == 1
print(f"trace ok: {len(events)} spans over {len(iterations)} iterations;"
      f" metrics ok: {len(metrics['counters'])} counters,"
      f" {len(metrics['gauges'])} gauges")
EOF
  else
    echo "=== [obs] python3 not found — skipping the JSON validation ==="
  fi
  echo "=== [obs] live daemon scrape (qtx submit --stats) ==="
  sock="$build_dir/obs-ci.sock"
  "$build_dir/qtx" serve --socket "$sock" --workers 1 --quiet \
    > "$build_dir/obs-serve.log" 2>&1 &
  serve_pid=$!
  trap 'kill "$serve_pid" 2> /dev/null || true' RETURN
  for _ in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.2
  done
  "$build_dir/qtx" submit scenarios/quickstart.ini --socket "$sock" \
    --quiet > /dev/null
  stats="$("$build_dir/qtx" submit --stats --socket "$sock")"
  echo "$stats" | grep -q '"qtx.serve.requests_ok": 1' \
    || { echo "stats scrape missing qtx.serve.requests_ok=1:"; \
         echo "$stats"; kill "$serve_pid" 2> /dev/null; exit 1; }
  echo "$stats" > "$build_dir/serve-stats.json"
  "$build_dir/qtx" submit --shutdown --socket "$sock" --quiet > /dev/null
  wait "$serve_pid" 2> /dev/null || true
  trap - RETURN
  echo "=== [obs] stats scrape ok (snapshot in $build_dir/serve-stats.json) ==="
}

tidy() {
  # Non-fatal when clang-tidy is absent (e.g. minimal containers); when it
  # runs, the curated .clang-tidy check set (bugprone-*, concurrency-*,
  # performance-*) is a hard gate over every library/app translation unit.
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "=== [tidy] clang-tidy not found — skipping (install clang-tidy"
    echo "    to run the static-analysis check locally) ==="
    return 0
  fi
  build_dir="build-ci-tidy"
  echo "=== [tidy] configure (compile_commands.json) ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DQTX_BUILD_BENCHES=OFF
  echo "=== [tidy] clang-tidy over src/ + apps/ ==="
  # shellcheck disable=SC2046
  clang-tidy -p "$build_dir" --quiet \
    $(find src apps -name '*.cpp' | sort)
}

docs() {
  # Non-fatal when doxygen is absent (e.g. minimal containers); when it
  # runs, undocumented-public-symbol warnings in the tracked headers are
  # hard failures — the API-reference contract of docs/userguide.md.
  if ! command -v doxygen > /dev/null 2>&1; then
    echo "=== [docs] doxygen not found — skipping (install doxygen to run"
    echo "    the documentation check locally) ==="
    return 0
  fi
  echo "=== [docs] doxygen ==="
  mkdir -p build-docs
  doxygen Doxyfile
  tracked='src/core/simulation\.hpp|src/core/options\.hpp|src/core/stages\.hpp|src/core/stage_registry\.hpp|src/io/[a-z_]*\.hpp|src/accel/[a-z_]*\.hpp|src/analysis/[a-z_]*\.hpp|src/serve/[a-z_]*\.hpp|src/obs/[a-z_]*\.hpp'
  if grep -E "$tracked" build-docs/doxygen-warnings.log 2>/dev/null \
      | grep -i "is not documented" > build-docs/undocumented.log; then
    echo "=== [docs] FAILED: undocumented public symbols in tracked" \
         "headers ===" >&2
    cat build-docs/undocumented.log >&2
    return 1
  fi
  echo "=== [docs] tracked headers fully documented" \
       "(html in build-docs/html) ==="
}

case "$STAGE" in
  build-test) build_test ;;
  lint) lint ;;
  tsan) tsan ;;
  asan-ubsan) asan_ubsan ;;
  blas) blas ;;
  ranks) ranks ;;
  serve) serve ;;
  obs) obs ;;
  tidy) tidy ;;
  docs) docs ;;
  all)
    build_test
    lint
    tsan
    asan_ubsan
    blas
    ranks
    serve
    obs
    tidy
    docs
    ;;
  *)
    echo "unknown stage '$STAGE' (expected: build-test, lint, tsan," \
         "asan-ubsan, blas, ranks, serve, obs, tidy, docs, all)" >&2
    exit 2
    ;;
esac

echo "CI passed (stage: $STAGE)."
