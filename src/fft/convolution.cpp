#include "fft/convolution.hpp"

#include "common/check.hpp"
#include "fft/fft.hpp"

namespace qtx::fft {

EnergyConvolver::EnergyConvolver(int n_energy, double de)
    : n_(n_energy), de_(de) {
  QTX_CHECK(n_energy > 0 && de > 0.0);
  // Sigma needs a length-(3N-2) linear convolution; one padded size serves
  // every kernel.
  m_ = next_pow2(3 * n_ - 2);
  buf_a_.resize(m_);
  buf_b_.resize(m_);
}

void EnergyConvolver::correlate(const std::vector<cplx>& a,
                                const std::vector<cplx>& b,
                                std::vector<cplx>& out) {
  // Cross-correlation c[k] = sum_m a[m + k] conj(b[m]) via the standard
  // identity c = IFFT(FFT(a) . conj(FFT(b))). Padding to m_ >= 2N keeps the
  // circular correlation equal to the linear one on k in [0, N).
  std::fill(buf_a_.begin(), buf_a_.end(), cplx(0.0));
  std::fill(buf_b_.begin(), buf_b_.end(), cplx(0.0));
  std::copy(a.begin(), a.end(), buf_a_.begin());
  std::copy(b.begin(), b.end(), buf_b_.begin());
  fft(buf_a_);
  fft(buf_b_);
  for (int k = 0; k < m_; ++k) buf_a_[k] *= std::conj(buf_b_[k]);
  ifft(buf_a_);
  out.resize(n_);
  for (int k = 0; k < n_; ++k) out[k] = buf_a_[k];
}

void EnergyConvolver::polarization(const std::vector<cplx>& g_lt,
                                   const std::vector<cplx>& g_gt,
                                   std::vector<cplx>& p_lt,
                                   std::vector<cplx>& p_gt) {
  QTX_CHECK(static_cast<int>(g_lt.size()) == n_ &&
            static_cast<int>(g_gt.size()) == n_);
  // P<_ij(w) = (i dE/2pi) sum_E G<_ij(E) conj(G>_ij(E - w))
  //          = (i dE/2pi) sum_m g_lt[m + k] conj(g_gt[m]).
  const cplx pref = kI * de_ / (2.0 * kPi);
  correlate(g_lt, g_gt, p_lt);
  for (auto& v : p_lt) v *= pref;
  correlate(g_gt, g_lt, p_gt);
  for (auto& v : p_gt) v *= pref;
}

void EnergyConvolver::polarization_direct(const std::vector<cplx>& g_lt,
                                          const std::vector<cplx>& g_gt,
                                          std::vector<cplx>& p_lt,
                                          std::vector<cplx>& p_gt) {
  const cplx pref = kI * de_ / (2.0 * kPi);
  p_lt.assign(n_, cplx(0.0));
  p_gt.assign(n_, cplx(0.0));
  for (int k = 0; k < n_; ++k) {
    cplx slt = 0.0, sgt = 0.0;
    for (int m = 0; m + k < n_; ++m) {
      slt += g_lt[m + k] * std::conj(g_gt[m]);
      sgt += g_gt[m + k] * std::conj(g_lt[m]);
    }
    p_lt[k] = pref * slt;
    p_gt[k] = pref * sgt;
  }
}

void EnergyConvolver::self_energy(const std::vector<cplx>& g_lt,
                                  const std::vector<cplx>& g_gt,
                                  const std::vector<cplx>& w_lt,
                                  const std::vector<cplx>& w_gt,
                                  std::vector<cplx>& s_lt,
                                  std::vector<cplx>& s_gt) {
  QTX_CHECK(static_cast<int>(g_lt.size()) == n_ &&
            static_cast<int>(w_lt.size()) == n_);
  const cplx pref = kI * de_ / (2.0 * kPi);
  // Full-range bosonic series, index shift s = N-1:
  //   wfull[k + s] = W(w_k),  k in (-N, N),
  // with negative frequencies from the lesser/greater symmetry.
  const int s = n_ - 1;
  const int full = 2 * n_ - 1;
  auto convolve_full = [&](const std::vector<cplx>& g,
                           const std::vector<cplx>& w_pos,
                           const std::vector<cplx>& w_other,
                           std::vector<cplx>& out) {
    std::vector<cplx> wfull(full);
    for (int k = 0; k < n_; ++k) wfull[k + s] = w_pos[k];
    for (int k = 1; k < n_; ++k) wfull[s - k] = boson_negative(w_other, k);
    // Linear convolution c = g * wfull; Sigma(E_n) = pref * c[n + s].
    std::fill(buf_a_.begin(), buf_a_.end(), cplx(0.0));
    std::fill(buf_b_.begin(), buf_b_.end(), cplx(0.0));
    std::copy(g.begin(), g.end(), buf_a_.begin());
    std::copy(wfull.begin(), wfull.end(), buf_b_.begin());
    fft(buf_a_);
    fft(buf_b_);
    for (int k = 0; k < m_; ++k) buf_a_[k] *= buf_b_[k];
    ifft(buf_a_);
    out.resize(n_);
    for (int i = 0; i < n_; ++i) out[i] = pref * buf_a_[i + s];
  };
  convolve_full(g_lt, w_lt, w_gt, s_lt);
  convolve_full(g_gt, w_gt, w_lt, s_gt);
}

void EnergyConvolver::self_energy_direct(const std::vector<cplx>& g_lt,
                                         const std::vector<cplx>& g_gt,
                                         const std::vector<cplx>& w_lt,
                                         const std::vector<cplx>& w_gt,
                                         std::vector<cplx>& s_lt,
                                         std::vector<cplx>& s_gt) {
  const cplx pref = kI * de_ / (2.0 * kPi);
  s_lt.assign(n_, cplx(0.0));
  s_gt.assign(n_, cplx(0.0));
  for (int i = 0; i < n_; ++i) {
    cplx alt = 0.0, agt = 0.0;
    for (int k = -(n_ - 1); k < n_; ++k) {
      const int ge = i - k;  // index of G(E - w_k)
      if (ge < 0 || ge >= n_) continue;
      const cplx wl = (k >= 0) ? w_lt[k] : boson_negative(w_gt, -k);
      const cplx wg = (k >= 0) ? w_gt[k] : boson_negative(w_lt, -k);
      alt += g_lt[ge] * wl;
      agt += g_gt[ge] * wg;
    }
    s_lt[i] = pref * alt;
    s_gt[i] = pref * agt;
  }
}

namespace {

/// Shared causal-window pipeline: given the jump d(E) = X>(E) - X<(E) laid
/// out in a zero-padded length-m buffer, overwrite it with the spectrum of
/// theta(t) d(t).
///
/// With the convention X(E) = int dt e^{iEt} X(t), "to the time domain" is
/// the forward FFT (phases e^{-2 pi i q p / m}), so indices q in [0, m/2]
/// represent t >= 0. Half-weights at q = 0 and q = m/2 make the identity
/// X^R - X^A = X> - X< hold exactly on the discrete grid.
void causal_window(std::vector<cplx>& buf) {
  const int m = static_cast<int>(buf.size());
  fft(buf);  // energy -> time
  buf[0] *= 0.5;
  buf[m / 2] *= 0.5;
  for (int q = m / 2 + 1; q < m; ++q) buf[q] = cplx(0.0);
  ifft(buf);  // time -> energy
}

}  // namespace

void EnergyConvolver::retarded_fermion(const std::vector<cplx>& x_lt,
                                       const std::vector<cplx>& x_gt,
                                       std::vector<cplx>& x_r) {
  QTX_CHECK(static_cast<int>(x_lt.size()) == n_);
  std::fill(buf_a_.begin(), buf_a_.end(), cplx(0.0));
  for (int i = 0; i < n_; ++i) buf_a_[i] = x_gt[i] - x_lt[i];
  causal_window(buf_a_);
  x_r.resize(n_);
  for (int i = 0; i < n_; ++i) x_r[i] = buf_a_[i];
}

void EnergyConvolver::retarded_boson(const std::vector<cplx>& x_lt,
                                     const std::vector<cplx>& x_gt,
                                     std::vector<cplx>& x_r) {
  QTX_CHECK(static_cast<int>(x_lt.size()) == n_);
  // Full transfer-grid jump, centred at index s = N-1. The causal window
  // commutes with circular index shifts (a shift in energy is a modulation
  // in time, and the window is a pointwise product there), so no explicit
  // recentring is needed.
  const int s = n_ - 1;
  std::fill(buf_a_.begin(), buf_a_.end(), cplx(0.0));
  for (int k = 0; k < n_; ++k) buf_a_[k + s] = x_gt[k] - x_lt[k];
  for (int k = 1; k < n_; ++k)
    buf_a_[s - k] = boson_negative(x_lt, k) - boson_negative(x_gt, k);
  causal_window(buf_a_);
  x_r.resize(n_);
  for (int k = 0; k < n_; ++k) x_r[k] = buf_a_[k + s];
}

}  // namespace qtx::fft
