#pragma once

/// \file fft.hpp
/// Complex FFT used by the energy-convolution kernels (paper §4.4): the
/// element-wise P- and Sigma-convolutions over the energy grid are evaluated
/// as products in the (Fourier-conjugate) time domain, reducing the cost per
/// matrix element from O(N_E^2) to O(N_E log N_E).
///
/// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform;
/// arbitrary lengths fall back to Bluestein's chirp-z algorithm so callers
/// never need to care about padding granularity.

#include <vector>

#include "common/types.hpp"

namespace qtx::fft {

/// In-place forward DFT: X_k = sum_n x_n exp(-2 pi i k n / N).
void fft(std::vector<cplx>& x);

/// In-place inverse DFT (normalized by 1/N): x_n = (1/N) sum_k X_k
/// exp(+2 pi i k n / N).
void ifft(std::vector<cplx>& x);

/// Smallest power of two >= n.
int next_pow2(int n);

/// O(N^2) reference DFT for tests and the FFT-ablation benchmark.
std::vector<cplx> dft_reference(const std::vector<cplx>& x, bool inverse);

}  // namespace qtx::fft
