#include "fft/fft.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/flops.hpp"

namespace qtx::fft {
namespace {

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

/// Iterative radix-2 Cooley-Tukey with bit-reversal permutation.
void fft_pow2(std::vector<cplx>& x, bool inverse) {
  const int n = static_cast<int>(x.size());
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / len * (inverse ? 1.0 : -1.0);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      cplx w(1.0);
      for (int j = 0; j < len / 2; ++j) {
        const cplx u = x[i + j];
        const cplx v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  FlopLedger::add(flop_count::fft(n));
}

/// Bluestein chirp-z: expresses an arbitrary-length DFT as a convolution,
/// evaluated with a power-of-two FFT.
void fft_bluestein(std::vector<cplx>& x, bool inverse) {
  const int n = static_cast<int>(x.size());
  const int m = next_pow2(2 * n - 1);
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<cplx> chirp(n);
  for (int k = 0; k < n; ++k) {
    // Use k^2 mod 2n to avoid overflow / precision loss for large k.
    const long long k2 = static_cast<long long>(k) * k % (2LL * n);
    const double ang = sign * kPi * static_cast<double>(k2) / n;
    chirp[k] = cplx(std::cos(ang), std::sin(ang));
  }
  std::vector<cplx> a(m, cplx(0.0)), b(m, cplx(0.0));
  for (int k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (int k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);
  fft_pow2(a, false);
  fft_pow2(b, false);
  for (int k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, true);
  const double inv_m = 1.0 / m;
  for (int k = 0; k < n; ++k) x[k] = a[k] * inv_m * chirp[k];
}

}  // namespace

int next_pow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& x) {
  if (x.size() <= 1) return;
  if (is_pow2(static_cast<int>(x.size()))) {
    fft_pow2(x, false);
  } else {
    fft_bluestein(x, false);
  }
}

void ifft(std::vector<cplx>& x) {
  if (x.size() <= 1) return;
  if (is_pow2(static_cast<int>(x.size()))) {
    fft_pow2(x, true);
  } else {
    fft_bluestein(x, true);
  }
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (auto& v : x) v *= inv_n;
}

std::vector<cplx> dft_reference(const std::vector<cplx>& x, bool inverse) {
  const int n = static_cast<int>(x.size());
  std::vector<cplx> out(n, cplx(0.0));
  const double sign = inverse ? 1.0 : -1.0;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * kPi * k * j / n;
      out[k] += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
  }
  if (inverse)
    for (auto& v : out) v *= 1.0 / n;
  return out;
}

}  // namespace qtx::fft
