#pragma once

/// \file convolution.hpp
/// Energy-convolution engine (paper §4.4, Eq. 3). Computes, per matrix
/// element (i, j), the polarization and self-energy convolutions over the
/// energy axis, plus the causal (retarded) reconstructions.
///
/// Conventions (see DESIGN.md "Physics conventions"):
///  - Fermionic quantities (G, Sigma) live on the grid E_n = E_min + n dE,
///    n in [0, N).
///  - Bosonic quantities (P, W) live on the transfer grid w_k = k dE,
///    k in [0, N); their negative-frequency values follow from the exact
///    identity X<_ij(-w) = -conj(X>_ij(w)) — the same lesser/greater symmetry
///    the paper exploits to halve storage and communication (§5.2).
///  - Polarization:   P≶_ij(w)  = (i dE/2pi) sum_E G≶_ij(E) conj(G≷_ij(E-w))
///    (the partner series G_ji enters through anti-Hermiticity, which is why
///    one energy series per stored element suffices).
///  - Self-energy:    S≶_ij(E)  = (i dE/2pi) sum_w G≶_ij(E-w) W≶_ij(w)
///    with the w-sum running over both signs via the identity above.
///  - Retarded parts: X^R(t) = theta(t) (X>(t) - X<(t)), evaluated by
///    windowing the inverse FFT in the time domain.
///
/// All routines exist in two versions: FFT-accelerated (O(N log N)) and
/// direct (O(N^2)) — the latter as a reference for tests and for the paper's
/// complexity-ablation benchmark.

#include <vector>

#include "common/types.hpp"

namespace qtx::fft {

/// Per-element convolution workspace. Construct once per (thread, grid) and
/// reuse across matrix elements; buffers are recycled between calls.
class EnergyConvolver {
 public:
  /// \param n_energy grid size N (same for fermionic and bosonic grids)
  /// \param de       grid spacing in eV
  EnergyConvolver(int n_energy, double de);

  int n_energy() const { return n_; }
  double de() const { return de_; }

  /// P≶_ij(w >= 0) from the G≶_ij energy series.
  void polarization(const std::vector<cplx>& g_lt,
                    const std::vector<cplx>& g_gt, std::vector<cplx>& p_lt,
                    std::vector<cplx>& p_gt);

  /// Sigma≶_ij(E) from G≶_ij and the dynamic screened interaction W≶_ij
  /// (bosonic, w >= 0 stored).
  void self_energy(const std::vector<cplx>& g_lt,
                   const std::vector<cplx>& g_gt,
                   const std::vector<cplx>& w_lt,
                   const std::vector<cplx>& w_gt, std::vector<cplx>& s_lt,
                   std::vector<cplx>& s_gt);

  /// Retarded reconstruction on the fermionic grid:
  /// X^R(E) = FT[theta(t) (X>(t) - X<(t))].
  void retarded_fermion(const std::vector<cplx>& x_lt,
                        const std::vector<cplx>& x_gt,
                        std::vector<cplx>& x_r);

  /// Retarded reconstruction on the bosonic grid (w >= 0 stored, negative
  /// frequencies supplied by the lesser/greater symmetry).
  void retarded_boson(const std::vector<cplx>& x_lt,
                      const std::vector<cplx>& x_gt, std::vector<cplx>& x_r);

  /// O(N^2) reference implementations (tests + ablation bench).
  void polarization_direct(const std::vector<cplx>& g_lt,
                           const std::vector<cplx>& g_gt,
                           std::vector<cplx>& p_lt, std::vector<cplx>& p_gt);
  void self_energy_direct(const std::vector<cplx>& g_lt,
                          const std::vector<cplx>& g_gt,
                          const std::vector<cplx>& w_lt,
                          const std::vector<cplx>& w_gt,
                          std::vector<cplx>& s_lt, std::vector<cplx>& s_gt);

 private:
  /// Cross-correlation c[k] = sum_m a[m + k] b[m], k in [0, N), via FFT.
  void correlate(const std::vector<cplx>& a, const std::vector<cplx>& b,
                 std::vector<cplx>& out);

  int n_;
  double de_;
  int m_;  ///< padded FFT length
  std::vector<cplx> buf_a_, buf_b_;
};

/// Bosonic negative-frequency extension: value of X<_ij at -w_k given the
/// stored positive-frequency series (identity X<(-w) = -conj(X>(w))).
inline cplx boson_negative(const std::vector<cplx>& other_component, int k) {
  return -std::conj(other_component[k]);
}

}  // namespace qtx::fft
