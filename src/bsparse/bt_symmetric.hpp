#pragma once

/// \file bt_symmetric.hpp
/// Symmetry-exploiting storage for lesser/greater quantities (paper §5.2).
/// Every X≶ satisfies X≶_ij = -X≶*_ji, so only the block diagonal (projected
/// onto the anti-Hermitian subspace) and the upper off-diagonal blocks are
/// stored; the lower blocks are reconstructed on access as -upper†. This
/// halves the memory footprint and — in the distributed pipeline — the
/// communication volume of the energy↔element transposition.

#include <utility>
#include <vector>

#include "bsparse/block_tridiag.hpp"

namespace qtx::bt {

class BtSymmetric {
 public:
  BtSymmetric() = default;

  BtSymmetric(int nb, int bs) : nb_(nb), bs_(bs) {
    QTX_CHECK(nb >= 1 && bs >= 1);
    diag_.assign(nb, Matrix(bs, bs));
    upper_.assign(nb > 1 ? nb - 1 : 0, Matrix(bs, bs));
  }

  /// Compress a full BT matrix, projecting out any symmetry-violating part
  /// (this implements the paper's on-the-fly symmetrization: writing into
  /// the symmetric storage *is* the symmetrization).
  static BtSymmetric from_full(const BlockTridiag& x) {
    BtSymmetric out(x.num_blocks(), x.block_size());
    for (int i = 0; i < x.num_blocks(); ++i) {
      out.diag_[i] = x.diag(i);
      out.diag_[i].anti_hermitize();
    }
    for (int i = 0; i + 1 < x.num_blocks(); ++i) {
      Matrix u = x.upper(i);
      u -= x.lower(i).dagger();
      u *= cplx(0.5);
      out.upper_[i] = std::move(u);
    }
    return out;
  }

  BlockTridiag to_full() const {
    BlockTridiag out(nb_, bs_);
    for (int i = 0; i < nb_; ++i) out.diag(i) = diag_[i];
    for (int i = 0; i + 1 < nb_; ++i) {
      out.upper(i) = upper_[i];
      out.lower(i) = lower(i);
    }
    return out;
  }

  int num_blocks() const { return nb_; }
  int block_size() const { return bs_; }

  Matrix& diag(int i) { return diag_.at(i); }
  const Matrix& diag(int i) const { return diag_.at(i); }
  Matrix& upper(int i) { return upper_.at(i); }
  const Matrix& upper(int i) const { return upper_.at(i); }

  /// Lower block (i+1, i) = -upper(i)†, materialized on demand.
  Matrix lower(int i) const { return upper_.at(i).dagger() * cplx(-1.0); }

  /// Re-project the diagonal blocks (cheap; upper blocks carry no redundant
  /// counterpart so they need no projection).
  void enforce() {
    for (auto& d : diag_) d.anti_hermitize();
  }

  size_t memory_bytes() const {
    const size_t per_block = sizeof(cplx) * bs_ * bs_;
    return per_block * (diag_.size() + upper_.size());
  }

 private:
  int nb_ = 0;
  int bs_ = 0;
  std::vector<Matrix> diag_, upper_;
};

}  // namespace qtx::bt
