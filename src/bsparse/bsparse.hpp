#pragma once

/// \file bsparse.hpp
/// Umbrella header for the block-sparse containers.

#include "bsparse/block_banded.hpp"
#include "bsparse/block_tridiag.hpp"
#include "bsparse/bt_symmetric.hpp"
