#include "bsparse/block_banded.hpp"
#include <algorithm>

namespace qtx::bt {

BlockBanded bb_multiply(const BlockBanded& a, const BlockBanded& b) {
  QTX_CHECK(a.num_blocks() == b.num_blocks() &&
            a.block_size() == b.block_size());
  const int nb = a.num_blocks(), bs = a.block_size();
  const int bw = std::min(nb - 1, a.bandwidth() + b.bandwidth());
  BlockBanded c(nb, bs, bw);
  for (int i = 0; i < nb; ++i) {
    for (int j = std::max(0, i - bw); j <= std::min(nb - 1, i + bw); ++j) {
      Matrix& cij = c.block(i, j);
      for (int k = std::max({0, i - a.bandwidth(), j - b.bandwidth()});
           k <= std::min({nb - 1, i + a.bandwidth(), j + b.bandwidth()});
           ++k) {
        la::gemm(1.0, a.block(i, k), la::Op::kNone, b.block(k, j),
                 la::Op::kNone, 1.0, cij);
      }
    }
  }
  return c;
}

BlockBanded bb_congruence(const BlockBanded& a, const BlockBanded& x) {
  // A X A† evaluated as (A X) A†; the dagger of a banded matrix has the
  // same band, with block (i,j) = A(j,i)†.
  const BlockBanded ax = bb_multiply(a, x);
  QTX_CHECK(ax.num_blocks() == a.num_blocks());
  const int nb = a.num_blocks(), bs = a.block_size();
  const int bw = std::min(nb - 1, ax.bandwidth() + a.bandwidth());
  BlockBanded c(nb, bs, bw);
  for (int i = 0; i < nb; ++i) {
    for (int j = std::max(0, i - bw); j <= std::min(nb - 1, i + bw); ++j) {
      Matrix& cij = c.block(i, j);
      // c_ij = sum_k ax_ik (a†)_kj = sum_k ax_ik a_jk†.
      for (int k = std::max({0, i - ax.bandwidth(), j - a.bandwidth()});
           k <= std::min({nb - 1, i + ax.bandwidth(), j + a.bandwidth()});
           ++k) {
        la::gemm(1.0, ax.block(i, k), la::Op::kNone, a.block(j, k),
                 la::Op::kConjTrans, 1.0, cij);
      }
    }
  }
  return c;
}

BlockTridiag regroup_to_bt(const BlockBanded& a, int g) {
  const int nb = a.num_blocks(), bs = a.block_size();
  QTX_CHECK_MSG(nb % g == 0, "regroup factor must divide block count");
  const int nb_c = nb / g, bs_c = bs * g;
  // The coarse matrix is block-tridiagonal only if every stored fine block
  // outside the coarse BT pattern vanishes.
  for (int i = 0; i < nb; ++i) {
    for (int j = std::max(0, i - a.bandwidth());
         j <= std::min(nb - 1, i + a.bandwidth()); ++j) {
      if (std::abs(i / g - j / g) > 1)
        QTX_CHECK_MSG(a.block(i, j).max_abs() == 0.0,
                      "fine block (" << i << "," << j
                                     << ") lies outside the coarse "
                                        "block-tridiagonal pattern");
    }
  }
  BlockTridiag out(nb_c, bs_c);
  for (int bi = 0; bi < nb_c; ++bi) {
    for (int u = 0; u < g; ++u) {
      for (int v = 0; v < g; ++v) {
        const int i = bi * g + u;
        // Diagonal coarse block.
        {
          const int j = bi * g + v;
          if (a.stored(i, j)) out.diag(bi).set_block(u * bs, v * bs,
                                                     a.block(i, j));
        }
        // Upper coarse block (bi, bi + 1).
        if (bi + 1 < nb_c) {
          const int j = (bi + 1) * g + v;
          if (a.stored(i, j)) out.upper(bi).set_block(u * bs, v * bs,
                                                      a.block(i, j));
        }
        // Lower coarse block (bi + 1, bi).
        if (bi + 1 < nb_c) {
          const int i2 = (bi + 1) * g + u;
          const int j = bi * g + v;
          if (a.stored(i2, j)) out.lower(bi).set_block(u * bs, v * bs,
                                                       a.block(i2, j));
        }
      }
    }
  }
  return out;
}

BlockBanded split_blocks(const BlockTridiag& a, int g) {
  const int nb_c = a.num_blocks(), bs_c = a.block_size();
  QTX_CHECK(bs_c % g == 0);
  const int bs = bs_c / g, nb = nb_c * g;
  // A coarse BT matrix covers fine blocks up to |i - j| <= 2g - 1.
  BlockBanded out(nb, bs, std::min(nb - 1, 2 * g - 1));
  auto scatter = [&](const Matrix& blk, int coarse_i, int coarse_j) {
    for (int u = 0; u < g; ++u)
      for (int v = 0; v < g; ++v) {
        const int i = coarse_i * g + u, j = coarse_j * g + v;
        if (out.stored(i, j))
          out.block(i, j) = blk.block(u * bs, v * bs, bs, bs);
      }
  };
  for (int i = 0; i < nb_c; ++i) scatter(a.diag(i), i, i);
  for (int i = 0; i + 1 < nb_c; ++i) {
    scatter(a.upper(i), i, i + 1);
    scatter(a.lower(i), i + 1, i);
  }
  return out;
}

}  // namespace qtx::bt
