#pragma once

/// \file block_banded.hpp
/// General block-banded matrix with block half-bandwidth \c bw (blocks (i,j)
/// with |i - j| <= bw are stored). The W-assembly step (paper §4.3.1)
/// produces such matrices: V·P^R grows to half-bandwidth 2 and V·P≶·V† to 3
/// before being truncated back to the r_cut-justified BT pattern.

#include <cmath>
#include <vector>

#include "bsparse/block_tridiag.hpp"

namespace qtx::bt {

class BlockBanded {
 public:
  BlockBanded() = default;

  BlockBanded(int nb, int bs, int bw) : nb_(nb), bs_(bs), bw_(bw) {
    QTX_CHECK(nb >= 1 && bs >= 1 && bw >= 0);
    blocks_.assign(static_cast<size_t>(nb) * (2 * bw + 1), Matrix());
    for (int i = 0; i < nb; ++i)
      for (int d = -bw; d <= bw; ++d)
        if (in_range(i, i + d)) slot(i, d) = Matrix(bs, bs);
  }

  explicit BlockBanded(const BlockTridiag& t) : BlockBanded(t.num_blocks(), t.block_size(), 1) {
    for (int i = 0; i < nb_; ++i) block(i, i) = t.diag(i);
    for (int i = 0; i + 1 < nb_; ++i) {
      block(i, i + 1) = t.upper(i);
      block(i + 1, i) = t.lower(i);
    }
  }

  int num_blocks() const { return nb_; }
  int block_size() const { return bs_; }
  int bandwidth() const { return bw_; }
  int dim() const { return nb_ * bs_; }

  bool stored(int i, int j) const {
    return in_range(i, j) && std::abs(i - j) <= bw_;
  }

  Matrix& block(int i, int j) {
    QTX_CHECK_MSG(stored(i, j), "block (" << i << "," << j
                                          << ") outside band " << bw_);
    return slot(i, j - i);
  }
  const Matrix& block(int i, int j) const {
    QTX_CHECK_MSG(stored(i, j), "block (" << i << "," << j
                                          << ") outside band " << bw_);
    return const_cast<BlockBanded*>(this)->slot(i, j - i);
  }

  Matrix dense() const {
    Matrix out(dim(), dim());
    for (int i = 0; i < nb_; ++i)
      for (int d = -bw_; d <= bw_; ++d)
        if (in_range(i, i + d)) out.set_block(i * bs_, (i + d) * bs_,
                                              block(i, i + d));
    return out;
  }

  /// Truncate to the block-tridiagonal pattern (r_cut truncation of the
  /// assembly products, paper §4.1/§4.3.1).
  BlockTridiag truncate_to_bt() const {
    BlockTridiag out(nb_, bs_);
    for (int i = 0; i < nb_; ++i) out.diag(i) = block(i, i);
    if (bw_ >= 1) {
      for (int i = 0; i + 1 < nb_; ++i) {
        out.upper(i) = block(i, i + 1);
        out.lower(i) = block(i + 1, i);
      }
    }
    return out;
  }

  size_t memory_bytes() const {
    size_t blocks = 0;
    for (int i = 0; i < nb_; ++i)
      for (int d = -bw_; d <= bw_; ++d)
        if (in_range(i, i + d)) ++blocks;
    return blocks * sizeof(cplx) * bs_ * bs_;
  }

 private:
  bool in_range(int i, int j) const {
    return i >= 0 && i < nb_ && j >= 0 && j < nb_;
  }
  Matrix& slot(int i, int d) {
    return blocks_[static_cast<size_t>(i) * (2 * bw_ + 1) + (d + bw_)];
  }

  int nb_ = 0;
  int bs_ = 0;
  int bw_ = 0;
  std::vector<Matrix> blocks_;
};

/// C = A · B on block-banded operands; the result has half-bandwidth
/// bw(A) + bw(B), clipped to the matrix extent.
BlockBanded bb_multiply(const BlockBanded& a, const BlockBanded& b);

/// Congruence product A · X · A† (used for B≶ = V P≶ V†, paper Table 2).
BlockBanded bb_congruence(const BlockBanded& a, const BlockBanded& x);

/// Merge groups of \c g consecutive blocks into larger transport cells
/// (paper §4.3: grouping N_U primitive blocks into cells of size N_BS makes
/// a block-banded matrix block-tridiagonal). Requires bw <= g so the result
/// is BT, and nb % g == 0.
BlockTridiag regroup_to_bt(const BlockBanded& a, int g);

/// Inverse of regroup_to_bt's block counting: split a BT matrix whose blocks
/// are g x g grids of sub-blocks back into the fine pattern (testing aid).
BlockBanded split_blocks(const BlockTridiag& a, int g);

}  // namespace qtx::bt
