#pragma once

/// \file block_tridiag.hpp
/// Block-tridiagonal (BT) matrix container — the central data structure of
/// the NEGF+scGW solver (paper Fig. 2). A nanowire/nanoribbon device maps
/// onto a block-banded matrix whose primitive-cell blocks are grouped into
/// N_B transport cells of size N_BS, yielding a BT sparsity pattern that the
/// RGF and nested-dissection solvers exploit.

#include <vector>

#include "la/la.hpp"

namespace qtx::bt {

using la::Matrix;

/// Uniform block-tridiagonal matrix: \c nb diagonal blocks of size \c bs,
/// upper blocks (i, i+1) and lower blocks (i+1, i).
class BlockTridiag {
 public:
  BlockTridiag() = default;

  BlockTridiag(int nb, int bs) : nb_(nb), bs_(bs) {
    QTX_CHECK(nb >= 1 && bs >= 1);
    diag_.assign(nb, Matrix(bs, bs));
    upper_.assign(nb > 1 ? nb - 1 : 0, Matrix(bs, bs));
    lower_.assign(nb > 1 ? nb - 1 : 0, Matrix(bs, bs));
  }

  static BlockTridiag identity(int nb, int bs) {
    BlockTridiag m(nb, bs);
    for (int i = 0; i < nb; ++i) m.diag(i) = Matrix::identity(bs);
    return m;
  }

  /// Random Hermitian BT matrix (tests).
  static BlockTridiag random_hermitian(int nb, int bs, Rng& rng) {
    BlockTridiag m(nb, bs);
    for (int i = 0; i < nb; ++i) m.diag(i) = Matrix::random_hermitian(bs, rng);
    for (int i = 0; i + 1 < nb; ++i) {
      m.upper(i) = Matrix::random(bs, bs, rng);
      m.lower(i) = m.upper(i).dagger();
    }
    return m;
  }

  /// Random diagonally dominant BT matrix — well-conditioned system matrix
  /// stand-in for solver tests.
  static BlockTridiag random_diag_dominant(int nb, int bs, Rng& rng,
                                           double dominance = 4.0) {
    BlockTridiag m(nb, bs);
    for (int i = 0; i < nb; ++i)
      m.diag(i) = Matrix::random_diag_dominant(bs, rng, dominance);
    for (int i = 0; i + 1 < nb; ++i) {
      m.upper(i) = Matrix::random(bs, bs, rng);
      m.lower(i) = Matrix::random(bs, bs, rng);
    }
    return m;
  }

  int num_blocks() const { return nb_; }
  int block_size() const { return bs_; }
  int dim() const { return nb_ * bs_; }

  Matrix& diag(int i) { return diag_.at(i); }
  const Matrix& diag(int i) const { return diag_.at(i); }
  /// Block (i, i+1).
  Matrix& upper(int i) { return upper_.at(i); }
  const Matrix& upper(int i) const { return upper_.at(i); }
  /// Block (i+1, i).
  Matrix& lower(int i) { return lower_.at(i); }
  const Matrix& lower(int i) const { return lower_.at(i); }

  /// Materialize as dense (reference solvers and tests only).
  Matrix dense() const {
    Matrix out(dim(), dim());
    for (int i = 0; i < nb_; ++i) out.set_block(i * bs_, i * bs_, diag_[i]);
    for (int i = 0; i + 1 < nb_; ++i) {
      out.set_block(i * bs_, (i + 1) * bs_, upper_[i]);
      out.set_block((i + 1) * bs_, i * bs_, lower_[i]);
    }
    return out;
  }

  BlockTridiag dagger() const {
    BlockTridiag out(nb_, bs_);
    for (int i = 0; i < nb_; ++i) out.diag_[i] = diag_[i].dagger();
    for (int i = 0; i + 1 < nb_; ++i) {
      out.upper_[i] = lower_[i].dagger();
      out.lower_[i] = upper_[i].dagger();
    }
    return out;
  }

  BlockTridiag& operator+=(const BlockTridiag& o) {
    QTX_CHECK(nb_ == o.nb_ && bs_ == o.bs_);
    for (int i = 0; i < nb_; ++i) diag_[i] += o.diag_[i];
    for (int i = 0; i + 1 < nb_; ++i) {
      upper_[i] += o.upper_[i];
      lower_[i] += o.lower_[i];
    }
    return *this;
  }

  BlockTridiag& operator-=(const BlockTridiag& o) {
    QTX_CHECK(nb_ == o.nb_ && bs_ == o.bs_);
    for (int i = 0; i < nb_; ++i) diag_[i] -= o.diag_[i];
    for (int i = 0; i + 1 < nb_; ++i) {
      upper_[i] -= o.upper_[i];
      lower_[i] -= o.lower_[i];
    }
    return *this;
  }

  BlockTridiag& operator*=(cplx s) {
    for (auto& d : diag_) d *= s;
    for (auto& u : upper_) u *= s;
    for (auto& l : lower_) l *= s;
    return *this;
  }

  /// Enforce X_ij = -X†_ji on all blocks (paper §5.2 symmetrization):
  /// diagonal blocks are projected onto the anti-Hermitian subspace and the
  /// lower off-diagonals are replaced by -upper†.
  void anti_hermitize() {
    for (auto& d : diag_) d.anti_hermitize();
    for (int i = 0; i + 1 < nb_; ++i) {
      Matrix u = upper_[i];
      u -= lower_[i].dagger();
      u *= cplx(0.5);
      upper_[i] = u;
      lower_[i] = u.dagger() * cplx(-1.0);
    }
  }

  bool is_anti_hermitian(double tol = 1e-12) const {
    for (const auto& d : diag_)
      if (!d.is_anti_hermitian(tol)) return false;
    for (int i = 0; i + 1 < nb_; ++i) {
      Matrix sum = upper_[i] + lower_[i].dagger();
      if (sum.max_abs() > tol) return false;
    }
    return true;
  }

  bool is_hermitian(double tol = 1e-12) const {
    for (const auto& d : diag_)
      if (!d.is_hermitian(tol)) return false;
    for (int i = 0; i + 1 < nb_; ++i) {
      Matrix diff = upper_[i] - lower_[i].dagger();
      if (diff.max_abs() > tol) return false;
    }
    return true;
  }

  double max_abs() const {
    double m = 0.0;
    for (const auto& d : diag_) m = std::max(m, d.max_abs());
    for (const auto& u : upper_) m = std::max(m, u.max_abs());
    for (const auto& l : lower_) m = std::max(m, l.max_abs());
    return m;
  }

  /// Bytes of complex payload (memory-ablation benchmark, paper §5.2).
  size_t memory_bytes() const {
    const size_t per_block = sizeof(cplx) * bs_ * bs_;
    return per_block * (diag_.size() + upper_.size() + lower_.size());
  }

 private:
  int nb_ = 0;
  int bs_ = 0;
  std::vector<Matrix> diag_, upper_, lower_;
};

/// Largest block-wise |A - B| over the BT pattern.
inline double max_abs_diff(const BlockTridiag& a, const BlockTridiag& b) {
  QTX_CHECK(a.num_blocks() == b.num_blocks() &&
            a.block_size() == b.block_size());
  double m = 0.0;
  for (int i = 0; i < a.num_blocks(); ++i)
    m = std::max(m, la::max_abs_diff(a.diag(i), b.diag(i)));
  for (int i = 0; i + 1 < a.num_blocks(); ++i) {
    m = std::max(m, la::max_abs_diff(a.upper(i), b.upper(i)));
    m = std::max(m, la::max_abs_diff(a.lower(i), b.lower(i)));
  }
  return m;
}

}  // namespace qtx::bt
