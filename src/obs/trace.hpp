#pragma once

/// \file trace.hpp
/// Tracing half of the qtx::obs observability layer: RAII spans recorded
/// into per-thread buffers and exported as Chrome/Perfetto trace-event
/// JSON. The span hierarchy mirrors the paper's performance breakdowns —
/// run → SCBA iteration → stage (OBC / G-RGF / W / Σ / mix) → la kernel —
/// with each span tagged by thread, rank, and energy/batch so a traced run
/// reproduces the Table 4 / Fig. 6 decomposition visually in Perfetto.
///
/// Tracing is off by default and allocation-light when disabled: a
/// disabled Span construction is a single relaxed atomic load, no
/// allocation, no clock read. Enabled spans append to the calling
/// thread's own buffer (uncontended block mutex, same pattern as
/// FlopLedger), so worker threads never contend; collect_trace() locks
/// the registry plus each block in turn.

#include <cstdint>
#include <string>
#include <vector>

namespace qtx::obs {

/// Category of a trace span, mapped to the Chrome trace-event "cat" field.
enum class SpanKind {
  kRun,        ///< one full SCBA solve
  kIteration,  ///< one SCBA outer iteration
  kStage,      ///< a stage kernel block: G-OBC, G-RGF, P, W, Sigma, mix
  kKernel,     ///< an individual la kernel call (gemm / LU) — detail level
  kPipeline,   ///< an energy-pipeline batch execution
  kServe,      ///< a serve-daemon request lifecycle
};

/// Stable lowercase name of \p kind ("run", "iteration", "stage", ...).
const char* to_string(SpanKind kind);

/// One completed span, flushed out of the per-thread buffers.
struct TraceEvent {
  std::string name;         ///< span name, e.g. "G: RGF"
  SpanKind kind{};          ///< category
  std::uint64_t id = 0;     ///< process-unique span id (1-based)
  std::uint64_t parent_id = 0;  ///< enclosing span on the same thread; 0 = root
  double start_us = 0.0;    ///< monotonic start timestamp, microseconds
  double dur_us = 0.0;      ///< duration, microseconds
  int thread_index = 0;     ///< stable per-thread index (registration order)
  int rank = 0;             ///< communicator rank (0 for single-process runs)
  int depth = 0;            ///< nesting depth on the owning thread (0 = root)
  int iteration = -1;       ///< SCBA iteration tag, -1 when untagged
  long long energy = -1;    ///< energy-point index tag, -1 when untagged
  long long batch = -1;     ///< energy-batch index tag, -1 when untagged
};

/// Optional tags attached to a Span at construction.
struct SpanArgs {
  int iteration = -1;     ///< SCBA iteration number
  long long energy = -1;  ///< energy-point index
  long long batch = -1;   ///< energy-batch index
};

/// Whether span recording is currently enabled (default: off).
bool tracing_enabled();

/// Globally enable/disable span recording. Cheap to toggle; disabled spans
/// cost one relaxed atomic load.
void set_tracing_enabled(bool on);

/// Whether kKernel spans are recorded (default: off — per-gemm spans are
/// the detail level and can dominate trace size on large runs). Only
/// consulted when tracing_enabled() is also true.
bool kernel_tracing_enabled();

/// Enable/disable the kKernel detail level.
void set_kernel_tracing_enabled(bool on);

/// Rank tag stamped on every span recorded by this process (default 0).
int trace_rank();

/// Set the rank tag — called by ranked workers after fork so merged traces
/// attribute spans to the right process row in Perfetto.
void set_trace_rank(int rank);

/// RAII trace span. Construction opens the span (recording the monotonic
/// start time and the enclosing span on this thread), destruction closes
/// it and appends a TraceEvent to the calling thread's buffer. When
/// tracing is disabled the constructor returns immediately.
class Span {
 public:
  /// Open a span named \p name in category \p kind with optional tags.
  /// \p name must outlive the span (string literals in practice).
  Span(const char* name, SpanKind kind, SpanArgs args = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  const char* name_ = "";
  SpanKind kind_{};
  SpanArgs args_{};
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  int depth_ = 0;
  double start_us_ = 0.0;
};

/// Snapshot every completed span recorded so far, across all threads,
/// sorted deterministically by (rank, thread_index, start_us, id).
std::vector<TraceEvent> collect_trace();

/// Discard every recorded span (open spans keep their bookkeeping and
/// will still record on close). Does not change the enabled flags.
void reset_trace();

/// Render \p events as a Chrome trace-event JSON document ("X" complete
/// events plus process/thread-name metadata), loadable in Perfetto and
/// chrome://tracing. One event per line, stable ordering.
std::string render_chrome_trace(const std::vector<TraceEvent>& events);

/// collect_trace() + render_chrome_trace() + write to \p path. Throws
/// std::runtime_error when the file cannot be written.
void write_chrome_trace(const std::string& path);

/// Merge Chrome trace JSON files previously written by
/// write_chrome_trace() (one per rank) into a single document at
/// \p output_path. Inputs that do not exist are skipped; returns the
/// number of inputs merged.
int merge_chrome_traces(const std::vector<std::string>& inputs,
                        const std::string& output_path);

}  // namespace qtx::obs
