#pragma once

/// \file metrics.hpp
/// Metrics half of the qtx::obs observability layer: a process-wide
/// registry of counters, gauges, and histograms under one dotted
/// namespace (`qtx.flops.*`, `qtx.time.*`, `qtx.comm.*`, `qtx.obc.*`,
/// `qtx.serve.*`), with deterministic ordered snapshots exportable as
/// JSON or Prometheus text exposition.
///
/// Layering note: `common` cannot depend on `obs`, so the legacy
/// telemetry sources (TimerRegistry, FlopLedger) are *pulled* into the
/// snapshot by snapshot_process() rather than pushing on their hot
/// paths; higher layers (io, serve) push their own metrics directly.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace qtx::obs {

/// Summary statistics of an observed-value series (histogram metric).
struct HistogramStats {
  std::uint64_t count = 0;  ///< number of observations
  double sum = 0.0;         ///< sum of observed values
  double min = 0.0;         ///< smallest observed value (0 when count == 0)
  double max = 0.0;         ///< largest observed value (0 when count == 0)
};

/// A point-in-time copy of every metric, ordered by name (std::map), so
/// rendered output is byte-stable for identical inputs.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;    ///< monotone counts
  std::map<std::string, double> gauges;            ///< last-set values
  std::map<std::string, HistogramStats> histograms;  ///< value series
};

/// Thread-safe metric store. All operations take one internal mutex —
/// callers are snapshot-time pushes and per-request serve updates, never
/// per-kernel hot paths (those stay on FlopLedger/TimerRegistry's
/// per-thread blocks and are absorbed by snapshot_process()).
class MetricsRegistry {
 public:
  /// Add \p delta to the counter named \p name (created at 0).
  void add_counter(const std::string& name, std::int64_t delta = 1);

  /// Set the gauge named \p name to \p value.
  void set_gauge(const std::string& name, double value);

  /// Record \p value into the histogram named \p name.
  void observe(const std::string& name, double value);

  /// Copy out every metric, ordered by name.
  MetricsSnapshot snapshot() const;

  /// Drop every metric.
  void reset();

  /// The process-wide registry used by the runner, the serve daemon, and
  /// the `--metrics` CLI flag. Never destroyed (immortal heap singleton).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot data_;
};

/// Snapshot \p registry and absorb the legacy telemetry sources:
/// TimerRegistry totals become `qtx.time.<kernel>.seconds` gauges and
/// FlopLedger per-phase totals become `qtx.flops.phase.<phase>` counters
/// plus `qtx.flops.total`.
MetricsSnapshot snapshot_process(
    MetricsRegistry& registry = MetricsRegistry::global());

/// Render \p snapshot as a deterministic JSON document
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
std::string to_json(const MetricsSnapshot& snapshot);

/// Render \p snapshot in the Prometheus text exposition format. Metric
/// names are sanitized ([^a-zA-Z0-9_] → '_'); histograms expand to
/// _count / _sum / _min / _max series.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// snapshot_process() + render + write to \p path: Prometheus text when
/// \p path ends in ".prom", JSON otherwise. Throws std::runtime_error
/// when the file cannot be written.
void write_metrics(const std::string& path);

}  // namespace qtx::obs
