#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>

#include "common/check.hpp"
#include "common/flops.hpp"
#include "common/timer.hpp"

namespace qtx::obs {
namespace {

void append_json_key(std::string& out, const std::string& key) {
  out += '"';
  for (const char c : key) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; we map everything else
/// (dots, spaces, the "G: OBC" kernel names) to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void MetricsRegistry::add_counter(const std::string& name,
                                  std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.counters[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.gauges[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& h = data_.histograms[name];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.sum += value;
  ++h.count;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = MetricsSnapshot{};
}

MetricsRegistry& MetricsRegistry::global() {
  // Immortal: serve worker threads may scrape during static destruction.
  static auto* r = new MetricsRegistry();
  return *r;
}

MetricsSnapshot snapshot_process(MetricsRegistry& registry) {
  MetricsSnapshot snap = registry.snapshot();
  std::int64_t flops_total = 0;
  for (const auto& [phase, flops] : FlopLedger::by_phase()) {
    snap.counters["qtx.flops.phase." + phase] += flops;
    flops_total += flops;
  }
  if (flops_total > 0) snap.counters["qtx.flops.total"] += flops_total;
  for (const auto& [name, seconds] : TimerRegistry::all()) {
    snap.gauges["qtx.time." + name + ".seconds"] = seconds;
  }
  return snap;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_key(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_key(out, name);
    out += ": " + format_double(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_key(out, name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + format_double(h.sum);
    out += ", \"min\": " + format_double(h.min);
    out += ", \"max\": " + format_double(h.max) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + format_double(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " summary\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
    out += p + "_sum " + format_double(h.sum) + "\n";
    out += p + "_min " + format_double(h.min) + "\n";
    out += p + "_max " + format_double(h.max) + "\n";
  }
  return out;
}

void write_metrics(const std::string& path) {
  const MetricsSnapshot snap = snapshot_process();
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string doc = prom ? to_prometheus(snap) : to_json(snap);
  std::ofstream f(path, std::ios::binary);
  QTX_CHECK_MSG(f.good(),
                "cannot open metrics output file \"" + path + "\"");
  f << doc;
  f.close();
  QTX_CHECK_MSG(f.good(), "failed writing metrics output file \"" + path +
                              "\"");
}

}  // namespace qtx::obs
