#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "common/check.hpp"

namespace qtx::obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_kernel_enabled{false};
std::atomic<int> g_rank{0};
std::atomic<std::uint64_t> g_next_id{0};
std::atomic<int> g_next_thread_index{0};

/// Monotonic microseconds. steady_clock is CLOCK_MONOTONIC on Linux and
/// survives fork with the same timebase, so per-rank traces merged by the
/// launcher stay aligned on one axis.
double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread event buffer, registered in a global list so collection can
/// aggregate across threads. Same lifetime discipline as FlopLedger: the
/// owner thread takes its own (uncontended) block mutex on the hot path;
/// collectors take the registry mutex plus each block's mutex in turn.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::vector<std::uint64_t> stack;  // open span ids; owner thread only
  int thread_index = 0;
};

// Registry and its mutex are heap-allocated immortals: per-thread blocks
// must stay reachable through them at process exit (static destruction
// would orphan the blocks and break threads outliving it).
std::mutex& registry_mutex() {
  static auto* m = new std::mutex();
  return *m;
}
std::vector<ThreadBuffer*>& registry() {
  static auto* r = new std::vector<ThreadBuffer*>();
  return *r;
}

ThreadBuffer& local() {
  thread_local ThreadBuffer* tb = [] {
    auto* p = new ThreadBuffer();  // lives for process lifetime
    p->thread_index =
        g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(p);
    return p;
  }();
  return *tb;
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRun: return "run";
    case SpanKind::kIteration: return "iteration";
    case SpanKind::kStage: return "stage";
    case SpanKind::kKernel: return "kernel";
    case SpanKind::kPipeline: return "pipeline";
    case SpanKind::kServe: return "serve";
  }
  return "unknown";
}

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool kernel_tracing_enabled() {
  return g_enabled.load(std::memory_order_relaxed) &&
         g_kernel_enabled.load(std::memory_order_relaxed);
}

void set_kernel_tracing_enabled(bool on) {
  g_kernel_enabled.store(on, std::memory_order_relaxed);
}

int trace_rank() { return g_rank.load(std::memory_order_relaxed); }

void set_trace_rank(int rank) {
  g_rank.store(rank, std::memory_order_relaxed);
}

Span::Span(const char* name, SpanKind kind, SpanArgs args) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (kind == SpanKind::kKernel &&
      !g_kernel_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  active_ = true;
  name_ = name;
  kind_ = kind;
  args_ = args;
  id_ = g_next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  auto& tb = local();
  parent_id_ = tb.stack.empty() ? 0 : tb.stack.back();
  depth_ = static_cast<int>(tb.stack.size());
  tb.stack.push_back(id_);
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  const double end_us = now_us();
  auto& tb = local();
  if (!tb.stack.empty() && tb.stack.back() == id_) tb.stack.pop_back();
  TraceEvent e;
  e.name = name_;
  e.kind = kind_;
  e.id = id_;
  e.parent_id = parent_id_;
  e.start_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.thread_index = tb.thread_index;
  e.rank = g_rank.load(std::memory_order_relaxed);
  e.depth = depth_;
  e.iteration = args_.iteration;
  e.energy = args_.energy;
  e.batch = args_.batch;
  std::lock_guard<std::mutex> lock(tb.mutex);
  tb.events.push_back(std::move(e));
}

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (auto* tb : registry()) {
      std::lock_guard<std::mutex> block(tb->mutex);
      out.insert(out.end(), tb->events.begin(), tb->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.thread_index != b.thread_index) {
                return a.thread_index < b.thread_index;
              }
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.id < b.id;
            });
  return out;
}

void reset_trace() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto* tb : registry()) {
    std::lock_guard<std::mutex> block(tb->mutex);
    tb->events.clear();
  }
}

std::string render_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out;
  out += "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Process/thread name metadata so Perfetto labels the rows.
  std::vector<std::pair<int, int>> seen_threads;  // (rank, thread)
  std::vector<int> seen_ranks;
  for (const auto& e : events) {
    if (std::find(seen_ranks.begin(), seen_ranks.end(), e.rank) ==
        seen_ranks.end()) {
      seen_ranks.push_back(e.rank);
    }
    const auto key = std::make_pair(e.rank, e.thread_index);
    if (std::find(seen_threads.begin(), seen_threads.end(), key) ==
        seen_threads.end()) {
      seen_threads.push_back(key);
    }
  }
  std::sort(seen_ranks.begin(), seen_ranks.end());
  std::sort(seen_threads.begin(), seen_threads.end());
  for (const int rank : seen_ranks) {
    sep();
    out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(rank) +
           ", \"tid\": 0, \"args\": {\"name\": \"qtx rank " +
           std::to_string(rank) + "\"}}";
  }
  for (const auto& [rank, tid] : seen_threads) {
    sep();
    out += "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(rank) + ", \"tid\": " + std::to_string(tid) +
           ", \"args\": {\"name\": \"thread " + std::to_string(tid) +
           "\"}}";
  }
  for (const auto& e : events) {
    sep();
    out += "  {\"name\": \"";
    append_json_escaped(out, e.name);
    out += "\", \"cat\": \"";
    out += to_string(e.kind);
    out += "\", \"ph\": \"X\", \"ts\": ";
    append_number(out, e.start_us);
    out += ", \"dur\": ";
    append_number(out, e.dur_us);
    out += ", \"pid\": " + std::to_string(e.rank);
    out += ", \"tid\": " + std::to_string(e.thread_index);
    out += ", \"args\": {\"id\": " + std::to_string(e.id);
    out += ", \"parent\": " + std::to_string(e.parent_id);
    out += ", \"depth\": " + std::to_string(e.depth);
    if (e.iteration >= 0) {
      out += ", \"iteration\": " + std::to_string(e.iteration);
    }
    if (e.energy >= 0) out += ", \"energy\": " + std::to_string(e.energy);
    if (e.batch >= 0) out += ", \"batch\": " + std::to_string(e.batch);
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  const std::string doc = render_chrome_trace(collect_trace());
  std::ofstream f(path, std::ios::binary);
  QTX_CHECK_MSG(f.good(), "cannot open trace output file \"" + path + "\"");
  f << doc;
  f.close();
  QTX_CHECK_MSG(f.good(), "failed writing trace output file \"" + path +
                              "\"");
}

int merge_chrome_traces(const std::vector<std::string>& inputs,
                        const std::string& output_path) {
  // write_chrome_trace emits one event per line between the
  // "{"traceEvents": [" header and the "]..." footer; merging is the
  // concatenation of those event lines across inputs.
  std::vector<std::string> event_lines;
  int merged = 0;
  for (const auto& path : inputs) {
    std::ifstream f(path, std::ios::binary);
    if (!f.good()) continue;
    ++merged;
    std::string line;
    bool in_events = false;
    while (std::getline(f, line)) {
      if (!in_events) {
        if (line.find("\"traceEvents\"") != std::string::npos) {
          in_events = true;
        }
        continue;
      }
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      if (line[first] != '{') break;  // hit the closing "]" footer
      std::string ev = line.substr(first);
      while (!ev.empty() && (ev.back() == ',' || ev.back() == '\r')) {
        ev.pop_back();
      }
      event_lines.push_back(std::move(ev));
    }
  }
  std::string out;
  out += "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < event_lines.size(); ++i) {
    out += "  " + event_lines[i];
    if (i + 1 < event_lines.size()) out += ",";
    out += "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  std::ofstream f(output_path, std::ios::binary);
  QTX_CHECK_MSG(f.good(), "cannot open merged trace output file \"" +
                              output_path + "\"");
  f << out;
  return merged;
}

}  // namespace qtx::obs
