#include "obc/surface.hpp"

namespace qtx::obc {

double surface_residual(const Matrix& x, const Matrix& m, const Matrix& n,
                        const Matrix& np) {
  const Matrix rhs = la::inverse(m - la::mmm(n, x, np));
  return la::max_abs_diff(x, rhs);
}

FixedPointResult surface_fixed_point(const Matrix& m, const Matrix& n,
                                     const Matrix& np,
                                     const std::optional<Matrix>& guess,
                                     const FixedPointOptions& opt) {
  FixedPointResult r;
  r.x = guess ? *guess : la::inverse(m);
  for (int it = 1; it <= opt.max_iter; ++it) {
    Matrix next = la::inverse(m - la::mmm(n, r.x, np));
    const double dx = la::max_abs_diff(next, r.x);
    const double scale = next.max_abs();
    r.x = std::move(next);
    r.iterations = it;
    if (dx <= opt.tol * std::max(1.0, scale)) {
      r.converged = true;
      break;
    }
  }
  return r;
}

SanchoRubioResult surface_sancho_rubio(const Matrix& m, const Matrix& n,
                                       const Matrix& np,
                                       const SanchoRubioOptions& opt) {
  // Decimation of the semi-infinite chain with uniform blocks
  // M_ii = m, M_{i,i+1} = n (into the lead), M_{i+1,i} = n'.
  // Each sweep eliminates every second cell, doubling the decimated depth.
  Matrix es = m;   // effective surface block
  Matrix e = m;    // effective bulk block
  Matrix a = n;    // effective forward coupling
  Matrix b = np;   // effective backward coupling
  SanchoRubioResult r;
  for (int it = 1; it <= opt.max_iter; ++it) {
    const Matrix inv = la::inverse(e);
    const Matrix aib = la::mmm(a, inv, b);
    const Matrix bia = la::mmm(b, inv, a);
    es -= aib;
    e -= aib;
    e -= bia;
    a = la::mmm(a, inv, a) * cplx(-1.0);
    b = la::mmm(b, inv, b) * cplx(-1.0);
    r.iterations = it;
    if (a.max_abs() * b.max_abs() <=
        opt.tol * std::max(1.0, es.max_abs() * es.max_abs())) {
      r.converged = true;
      break;
    }
  }
  r.x = la::inverse(es);
  return r;
}

}  // namespace qtx::obc
