#pragma once

/// \file obc.hpp
/// Umbrella header for the open-boundary-condition solvers.

#include "obc/beyn.hpp"
#include "obc/lyapunov.hpp"
#include "obc/memoizer.hpp"
#include "obc/surface.hpp"
