#include "obc/memoizer.hpp"

namespace qtx::obc {

Matrix solve_surface_direct(const Matrix& m, const Matrix& n,
                            const Matrix& np, int beyn_quadrature) {
  // Method ladder: Beyn (accurate, direct) -> Sancho-Rubio (robust) ->
  // fixed point (last resort). Each rung is accepted only if its residual
  // on the surface equation passes.
  BeynOptions bopt;
  bopt.quadrature_points = beyn_quadrature;
  const BeynSurfaceResult beyn = surface_beyn(m, n, np, bopt);
  if (beyn.ok && surface_residual(beyn.x, m, n, np) < 1e-6) return beyn.x;
  const SanchoRubioResult sr = surface_sancho_rubio(m, n, np);
  if (sr.converged && surface_residual(sr.x, m, n, np) < 1e-6) return sr.x;
  const FixedPointResult fp =
      surface_fixed_point(m, n, np, sr.converged ? std::optional<Matrix>(sr.x)
                                                 : std::nullopt);
  return fp.x;
}

Matrix ObcMemoizer::solve_surface(const ObcKey& key, const Matrix& m,
                                  const Matrix& n, const Matrix& np) {
  if (opt_.enabled) {
    auto it = surface_cache_.find(key);
    if (it != surface_cache_.end() && it->second.same_shape(m)) {
      // Probe with two fixed-point steps to estimate the contraction rate.
      const Matrix& x0 = it->second;
      const Matrix x1 = la::inverse(m - la::mmm(n, x0, np));
      const Matrix x2 = la::inverse(m - la::mmm(n, x1, np));
      const double d1 = la::max_abs_diff(x1, x0);
      const double d2 = la::max_abs_diff(x2, x1);
      const double scale = std::max(1.0, x2.max_abs());
      if (d2 <= opt_.tol * scale) {
        stats_.memoized_calls += 1;
        stats_.fpi_iterations += 2;
        surface_cache_[key] = x2;
        return x2;
      }
      const double rate = (d1 > 0.0) ? d2 / d1 : 0.0;
      // Predicted error after the remaining budget; geometric decay.
      if (rate < 1.0) {
        const double predicted =
            d2 * std::pow(rate, opt_.n_fpi - 2) / (1.0 - rate);
        if (predicted <= opt_.tol * scale) {
          FixedPointOptions fopt;
          fopt.max_iter = opt_.n_fpi - 2;
          fopt.tol = opt_.tol;
          const FixedPointResult r = surface_fixed_point(m, n, np, x2, fopt);
          if (r.converged ||
              surface_residual(r.x, m, n, np) <= 10.0 * opt_.tol * scale) {
            stats_.memoized_calls += 1;
            stats_.fpi_iterations += 2 + r.iterations;
            surface_cache_[key] = r.x;
            return r.x;
          }
        }
      }
    }
  }
  stats_.direct_calls += 1;
  Matrix x = solve_surface_direct(m, n, np, opt_.beyn_quadrature);
  surface_cache_[key] = x;
  return x;
}

Matrix ObcMemoizer::solve_stein(const ObcKey& key, const Matrix& q,
                                const Matrix& a, double sigma) {
  if (opt_.enabled) {
    auto it = stein_cache_.find(key);
    if (it != stein_cache_.end() && it->second.same_shape(q)) {
      const Matrix& x0 = it->second;
      Matrix x1 = q;
      x1.add_scaled(sigma, la::mmmh(a, x0, a));
      Matrix x2 = q;
      x2.add_scaled(sigma, la::mmmh(a, x1, a));
      const double d1 = la::max_abs_diff(x1, x0);
      const double d2 = la::max_abs_diff(x2, x1);
      const double scale = std::max(1.0, x2.max_abs());
      if (d2 <= opt_.tol * scale) {
        stats_.memoized_calls += 1;
        stats_.fpi_iterations += 2;
        stein_cache_[key] = x2;
        return x2;
      }
      const double rate = (d1 > 0.0) ? d2 / d1 : 0.0;
      if (rate < 1.0) {
        const double predicted =
            d2 * std::pow(rate, opt_.n_fpi - 2) / (1.0 - rate);
        if (predicted <= opt_.tol * scale) {
          SteinIterOptions sopt;
          sopt.max_iter = opt_.n_fpi - 2;
          sopt.tol = opt_.tol;
          const SteinResult r = stein_fixed_point(q, a, sigma, x2, sopt);
          if (r.converged ||
              stein_residual(r.x, q, a, sigma) <= 10.0 * opt_.tol * scale) {
            stats_.memoized_calls += 1;
            stats_.fpi_iterations += 2 + r.iterations;
            stein_cache_[key] = r.x;
            return r.x;
          }
        }
      }
    }
  }
  stats_.direct_calls += 1;
  Matrix x = stein_direct(q, a, sigma);
  stein_cache_[key] = x;
  return x;
}

}  // namespace qtx::obc
