#pragma once

/// \file memoizer.hpp
/// OBC memoization (paper §5.3). Across SCBA iterations the boundary blocks
/// stabilize; once the cached solution from the previous iteration is close
/// to the new one, a handful of warm-started fixed-point iterations replaces
/// the expensive direct solver (Beyn for x^R, Schur-Lyapunov for w≶).
///
/// The memoizer estimates, from the first two fixed-point updates, whether
/// convergence within the allotted N_FPI iterations is achievable (the
/// paper's "predefined condition"); if not, it calls the direct solver. A
/// fixed N_FPI keeps all ranks load-balanced, as the paper emphasizes.
/// Either way the cache is refreshed, and counters record the dispatch
/// decisions for the ablation benchmark.

#include <compare>
#include <cstdint>
#include <map>
#include <optional>

#include "obc/beyn.hpp"
#include "obc/lyapunov.hpp"
#include "obc/surface.hpp"

namespace qtx::obc {

struct MemoizerOptions {
  bool enabled = true;
  int n_fpi = 20;          ///< fixed fixed-point budget (paper's N_FPI)
  double tol = 1e-8;       ///< target residual of the memoized solve
  int beyn_quadrature = 128;
};

struct MemoizerStats {
  std::int64_t direct_calls = 0;
  std::int64_t memoized_calls = 0;
  std::int64_t fpi_iterations = 0;
  void reset() { *this = MemoizerStats{}; }
};

/// Cache key: one entry per (subsystem, contact, energy-index) triple.
struct ObcKey {
  int subsystem;  ///< 0 = electrons (G), 1 = screened Coulomb (W)
  int contact;    ///< 0 = left, 1 = right
  int energy;     ///< energy-grid index
  auto operator<=>(const ObcKey&) const = default;
};

class ObcMemoizer {
 public:
  explicit ObcMemoizer(const MemoizerOptions& opt = {}) : opt_(opt) {}

  /// Retarded surface Green's function x = (m - n x n')^{-1}: memoized
  /// fixed point when predicted convergent, else Beyn with Sancho-Rubio
  /// fallback.
  Matrix solve_surface(const ObcKey& key, const Matrix& m, const Matrix& n,
                       const Matrix& np);

  /// Lesser/greater boundary function X = Q + sigma A X A†: memoized fixed
  /// point, else direct Schur solve.
  Matrix solve_stein(const ObcKey& key, const Matrix& q, const Matrix& a,
                     double sigma);

  const MemoizerStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }
  void clear_cache() {
    surface_cache_.clear();
    stein_cache_.clear();
  }
  const MemoizerOptions& options() const { return opt_; }
  void set_enabled(bool on) { opt_.enabled = on; }

 private:
  MemoizerOptions opt_;
  MemoizerStats stats_;
  std::map<ObcKey, Matrix> surface_cache_;
  std::map<ObcKey, Matrix> stein_cache_;
};

/// Direct surface solve used by the memoizer's slow path and by callers that
/// never memoize: Beyn, falling back to Sancho-Rubio when the mode count is
/// deficient, falling back to long fixed-point iteration as a last resort.
Matrix solve_surface_direct(const Matrix& m, const Matrix& n,
                            const Matrix& np, int beyn_quadrature = 64);

}  // namespace qtx::obc
