#include "obc/beyn.hpp"

#include <cmath>

#include "common/flops.hpp"

namespace qtx::obc {
namespace {

Matrix eval_poly(const std::vector<Matrix>& coeffs, cplx z) {
  Matrix a = coeffs.back();
  for (int p = static_cast<int>(coeffs.size()) - 2; p >= 0; --p) {
    a *= z;
    a += coeffs[p];
  }
  return a;
}

}  // namespace

BeynEigResult beyn_pevp(const std::vector<Matrix>& coeffs,
                        const BeynOptions& opt) {
  QTX_CHECK(coeffs.size() >= 2);
  const int n = coeffs.front().rows();
  const cplx c(opt.center_re, opt.center_im);
  BeynEigResult out;
  // Moment integrals Q_p = (1/2 pi i) \oint z^p A(z)^{-1} dz, trapezoid rule
  // on the circle; the probe matrix is the identity (L = N columns), which
  // is robust for the moderate N_BS blocks of the leads.
  Matrix q0(n, n), q1(n, n);
  for (int k = 0; k < opt.quadrature_points; ++k) {
    const double th = 2.0 * kPi * k / opt.quadrature_points;
    const cplx e(std::cos(th), std::sin(th));
    const cplx z = c + opt.radius * e;
    const la::LuFactors f = la::lu_factor(eval_poly(coeffs, z));
    if (f.singular) continue;  // quadrature point on a pole; skip
    const Matrix ainv = la::lu_solve(f, Matrix::identity(n));
    const cplx w = opt.radius * e / static_cast<double>(opt.quadrature_points);
    q0.add_scaled(w, ainv);
    q1.add_scaled(w * z, ainv);
  }
  const la::SvdResult svd = la::svd(q0);
  const int rank = la::svd_rank(svd, opt.svd_tol);
  if (rank == 0) {
    out.ok = true;  // no eigenvalues inside the contour
    out.vectors = Matrix(n, 0);
    return out;
  }
  // Compress: B = U_r† Q1 W_r S_r^{-1}, eigenpairs of B lift to the PEVP.
  Matrix ur(n, rank), wr(n, rank);
  for (int j = 0; j < rank; ++j)
    for (int i = 0; i < n; ++i) {
      ur(i, j) = svd.u(i, j);
      wr(i, j) = svd.v(i, j);
    }
  Matrix b = la::mm(la::hmm(ur, q1), wr);
  for (int j = 0; j < rank; ++j) {
    const double inv = 1.0 / svd.s[j];
    for (int i = 0; i < rank; ++i) b(i, j) *= inv;
  }
  const la::EigResult eig = la::eig(b);
  if (!eig.converged) return out;
  // Lift, filter by contour membership and residual.
  std::vector<cplx> vals;
  std::vector<int> keep;
  Matrix lifted = la::mm(ur, eig.vectors);
  for (int j = 0; j < rank; ++j) {
    const cplx lam = eig.values[j];
    if (std::abs(lam - c) > opt.radius * (1.0 + 1e-10)) continue;
    Matrix phi(n, 1);
    for (int i = 0; i < n; ++i) phi(i, 0) = lifted(i, j);
    const Matrix res = la::mm(eval_poly(coeffs, lam), phi);
    double scale = 0.0;
    for (const auto& cm : coeffs) scale = std::max(scale, cm.max_abs());
    if (res.max_abs() > opt.residual_tol * std::max(1.0, scale)) continue;
    vals.push_back(lam);
    keep.push_back(j);
  }
  out.values = std::move(vals);
  out.vectors = Matrix(n, static_cast<int>(keep.size()));
  for (size_t jj = 0; jj < keep.size(); ++jj)
    for (int i = 0; i < n; ++i) out.vectors(i, static_cast<int>(jj)) =
        lifted(i, keep[jj]);
  out.ok = true;
  return out;
}

BeynSurfaceResult surface_beyn(const Matrix& m, const Matrix& n,
                               const Matrix& np, const BeynOptions& opt) {
  const int nb = m.rows();
  BeynSurfaceResult out;
  const BeynEigResult modes = beyn_pevp({np, m, n}, opt);
  out.modes_found = static_cast<int>(modes.values.size());
  if (!modes.ok || out.modes_found != nb) return out;  // fall back
  // S = Phi Lambda Phi^{-1}: the one-cell propagation map of the decaying
  // solutions; x = (m + n S)^{-1}.
  Matrix phi_lam = modes.vectors;
  for (int j = 0; j < nb; ++j)
    for (int i = 0; i < nb; ++i) phi_lam(i, j) *= modes.values[j];
  const la::LuFactors f = la::lu_factor(modes.vectors);
  if (f.singular) return out;
  const Matrix s = la::lu_solve_right(f, phi_lam);
  const Matrix msys = m + la::mm(n, s);
  const la::LuFactors fm = la::lu_factor(msys);
  if (fm.singular) return out;
  out.x = la::lu_solve(fm, Matrix::identity(nb));
  out.ok = true;
  return out;
}

}  // namespace qtx::obc
