#pragma once

/// \file beyn.hpp
/// Beyn contour-integral solver for polynomial eigenvalue problems (paper
/// §4.2.1, Eq. 6) and the direct surface-Green's-function construction built
/// on it.
///
/// The lead's propagating/decaying modes solve A(lambda) phi = 0 with
/// A(z) = n' + z m + z^2 n (block-tridiagonal leads; the general-degree form
/// sum_p z^p C_p is supported for multi-cell couplings). Beyn's algorithm
/// computes all eigenpairs inside a contour by evaluating two moment
/// integrals of A(z)^{-1} over quadrature points, compressing with an SVD,
/// and solving a small dense eigenvalue problem — the SVD + non-symmetric
/// EVP combination the paper dispatches to CPU (§5.1).
///
/// The decaying modes (|lambda| < 1) assemble the propagation matrix
/// S = Phi Lambda Phi^{-1}; the surface Green's function follows as
/// x = (m + n S)^{-1}, which satisfies the fixed-point equation of
/// surface.hpp exactly.

#include <optional>
#include <vector>

#include "la/la.hpp"

namespace qtx::obc {

using la::Matrix;

struct BeynOptions {
  int quadrature_points = 128;  ///< trapezoid points on the circle; modes
                                ///< approach |lambda| = 1 as eta -> 0, and
                                ///< the trapezoid error grows with poles
                                ///< near the contour
  double radius = 1.0;         ///< contour radius (unit circle for leads)
  double center_re = 0.0;
  double center_im = 0.0;
  double svd_tol = 1e-10;       ///< rank cut on the zeroth moment
  double residual_tol = 1e-6;   ///< per-mode acceptance ||A(l) phi||
};

struct BeynEigResult {
  std::vector<cplx> values;
  Matrix vectors;  ///< columns, one per accepted eigenvalue
  bool ok = false;
};

/// All eigenpairs of the PEVP sum_p z^p coeffs[p] inside the contour.
BeynEigResult beyn_pevp(const std::vector<Matrix>& coeffs,
                        const BeynOptions& opt = {});

struct BeynSurfaceResult {
  Matrix x;
  int modes_found = 0;
  bool ok = false;  ///< false => caller should fall back to Sancho-Rubio
};

/// Direct surface solver: QEP modes inside the unit circle -> S -> x.
/// Requires exactly N modes inside the contour (generic for eta > 0);
/// returns ok = false otherwise so the caller can fall back.
BeynSurfaceResult surface_beyn(const Matrix& m, const Matrix& n,
                               const Matrix& np, const BeynOptions& opt = {});

}  // namespace qtx::obc
