#include "obc/lyapunov.hpp"

namespace qtx::obc {

double stein_residual(const Matrix& x, const Matrix& q, const Matrix& a,
                      double sigma) {
  Matrix r = x - q;
  r.add_scaled(-sigma, la::mmmh(a, x, a));
  return r.frobenius_norm();
}

SteinResult stein_doubling(const Matrix& q, const Matrix& a, double sigma,
                           const SteinIterOptions& opt) {
  SteinResult r;
  r.x = q;
  Matrix p = a;
  double sign = sigma;
  const double qscale = std::max(1.0, q.frobenius_norm());
  for (int it = 1; it <= opt.max_iter; ++it) {
    const Matrix term = la::mmmh(p, r.x, p);
    r.x.add_scaled(sign, term);
    r.iterations = it;
    if (term.frobenius_norm() <= opt.tol * qscale) {
      r.converged = true;
      break;
    }
    if (r.x.frobenius_norm() > 1e12 * qscale) break;  // rho(A) >= 1: diverged
    p = la::mm(p, p);
    sign = 1.0;  // sigma^{2^k} = +1 for k >= 1
  }
  // A convergence claim must survive the residual check; the squaring
  // iteration can otherwise report a small final increment on a divergent
  // trajectory.
  if (r.converged && stein_residual(r.x, q, a, sigma) > 1e-6 * qscale)
    r.converged = false;
  return r;
}

SteinResult stein_fixed_point(const Matrix& q, const Matrix& a, double sigma,
                              const std::optional<Matrix>& guess,
                              const SteinIterOptions& opt) {
  SteinResult r;
  r.x = guess ? *guess : q;
  for (int it = 1; it <= opt.max_iter; ++it) {
    Matrix next = q;
    next.add_scaled(sigma, la::mmmh(a, r.x, a));
    const double dx = la::max_abs_diff(next, r.x);
    r.x = std::move(next);
    r.iterations = it;
    if (dx <= opt.tol * std::max(1.0, r.x.max_abs())) {
      r.converged = true;
      break;
    }
  }
  return r;
}

Matrix stein_direct(const Matrix& q, const Matrix& a, double sigma) {
  // X = Q + s A X A†. With A = U T U† (Schur) and Y = U† X U, Qt = U† Q U:
  //   Y = Qt + s T Y T†.
  // Solve for columns j = n-1 .. 0: [Y T†](:,j) = Y(:,j) conj(T_jj) + c_j
  // with c_j = sum_{l>j} Y(:,l) conj(T_jl) known, so
  //   (I - s conj(T_jj) T) Y(:,j) = Qt(:,j) + s T c_j,
  // an upper-triangular solve per column (Kitagawa's method).
  const int n = q.rows();
  QTX_CHECK(a.square() && q.square() && a.rows() == n);
  const la::SchurResult s = la::schur(a);
  QTX_CHECK_MSG(s.converged, "Schur iteration failed in stein_direct");
  const Matrix qt = la::mm(la::hmm(s.u, q), s.u);
  Matrix y(n, n);
  std::vector<cplx> cj(n), rhs(n);
  for (int j = n - 1; j >= 0; --j) {
    for (int i = 0; i < n; ++i) cj[i] = 0.0;
    for (int l = j + 1; l < n; ++l) {
      const cplx tjl = std::conj(s.t(j, l));
      if (tjl == cplx(0.0)) continue;
      for (int i = 0; i < n; ++i) cj[i] += y(i, l) * tjl;
    }
    // rhs = Qt(:,j) + s T c_j.
    for (int i = 0; i < n; ++i) {
      cplx tc = 0.0;
      for (int l = i; l < n; ++l) tc += s.t(i, l) * cj[l];
      rhs[i] = qt(i, j) + sigma * tc;
    }
    // Upper-triangular solve (I - s conj(T_jj) T) y(:,j) = rhs.
    const cplx w = sigma * std::conj(s.t(j, j));
    for (int i = n - 1; i >= 0; --i) {
      cplx acc = rhs[i];
      for (int l = i + 1; l < n; ++l) acc += w * s.t(i, l) * y(l, j);
      const cplx diag = cplx(1.0) - w * s.t(i, i);
      QTX_CHECK_MSG(std::abs(diag) > 1e-300,
                    "Stein equation singular: |l_i l_j| = 1");
      y(i, j) = acc / diag;
    }
  }
  return la::mm(la::mm(s.u, y), s.u.dagger());
}

}  // namespace qtx::obc
