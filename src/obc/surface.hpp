#pragma once

/// \file surface.hpp
/// Retarded open-boundary-condition solvers (paper §4.2.1). All solve the
/// nonlinear surface equation
///
///     x = (m - n x n')^{-1}                                   (paper Eq. 4)
///
/// where m, n, n' are the lead-cell blocks of M(E) - B^R_scatt(E): m is the
/// on-cell block, n couples the surface cell one cell deeper into the lead,
/// and n' couples back. Three methods are provided, mirroring the paper:
/// plain fixed-point iteration (Eq. 5), Sancho-Rubio decimation, and the
/// Beyn contour-integral solver (in beyn.hpp).

#include <optional>

#include "la/la.hpp"

namespace qtx::obc {

using la::Matrix;

/// Residual ||x - (m - n x n')^{-1}||_F — the convergence measure shared by
/// every solver and test.
double surface_residual(const Matrix& x, const Matrix& m, const Matrix& n,
                        const Matrix& np);

struct FixedPointOptions {
  int max_iter = 5000;
  double tol = 1e-10;  ///< on ||x_{i+1} - x_i||_F / ||x_{i+1}||_F
};

struct FixedPointResult {
  Matrix x;
  int iterations = 0;
  bool converged = false;
};

/// Fixed-point iteration x_{i+1} = (m - n x_i n')^{-1} (paper Eq. 5),
/// optionally warm-started — the memoizer's fast path (§5.3).
FixedPointResult surface_fixed_point(const Matrix& m, const Matrix& n,
                                     const Matrix& np,
                                     const std::optional<Matrix>& guess = {},
                                     const FixedPointOptions& opt = {});

struct SanchoRubioOptions {
  int max_iter = 60;
  double tol = 1e-12;  ///< on the decimated coupling norms
};

struct SanchoRubioResult {
  Matrix x;
  int iterations = 0;
  bool converged = false;
};

/// Sancho-Rubio decimation: doubles the effective lead depth per iteration,
/// converging in O(10) steps where fixed-point needs O(100) (paper §4.2.1).
SanchoRubioResult surface_sancho_rubio(const Matrix& m, const Matrix& n,
                                       const Matrix& np,
                                       const SanchoRubioOptions& opt = {});

}  // namespace qtx::obc
