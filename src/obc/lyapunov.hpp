#pragma once

/// \file lyapunov.hpp
/// Discrete-time Lyapunov (Stein) equation solvers for the lesser/greater
/// screened-Coulomb boundary conditions (paper §4.2.2, Eq. 7):
///
///     X = Q + sigma * A X A†,   sigma = +-1.
///
/// The paper's w≶ recursion is of this form with blocks extracted from P, V,
/// and w^R. Two solvers are provided, mirroring the paper's discussion:
///  - a squaring ("doubling") iteration of the convergent series
///    X = sum_j sigma^j A^j Q (A†)^j, requiring rho(A) < 1, and
///  - the direct method via complex Schur decomposition (Kitagawa [26]),
///    robust for any spectrum with |lambda_i(A) lambda_j(A)| != 1.

#include <optional>

#include "la/la.hpp"

namespace qtx::obc {

using la::Matrix;

/// Residual ||X - Q - sigma A X A†||_F.
double stein_residual(const Matrix& x, const Matrix& q, const Matrix& a,
                      double sigma);

struct SteinIterOptions {
  int max_iter = 60;  ///< squaring steps; depth doubles per step
  double tol = 1e-12;
};

struct SteinResult {
  Matrix x;
  int iterations = 0;
  bool converged = false;
};

/// Squaring iteration: S_{k+1} = S_k + s_k P_k S_k P_k†, P_{k+1} = P_k^2,
/// with s_0 = sigma and s_k = +1 afterwards (sign of sigma^{2^k}).
SteinResult stein_doubling(const Matrix& q, const Matrix& a, double sigma,
                           const SteinIterOptions& opt = {});

/// Plain fixed-point iteration X_{k+1} = Q + sigma A X_k A†, optionally
/// warm-started — the memoizer's fast path for w≶ (paper §5.3).
SteinResult stein_fixed_point(const Matrix& q, const Matrix& a, double sigma,
                              const std::optional<Matrix>& guess = {},
                              const SteinIterOptions& opt = {});

/// Direct solver via Schur decomposition of A; O(n^3), no spectral-radius
/// restriction (only |l_i l_j| != 1).
Matrix stein_direct(const Matrix& q, const Matrix& a, double sigma);

}  // namespace qtx::obc
