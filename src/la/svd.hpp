#pragma once

/// \file svd.hpp
/// One-sided Jacobi SVD. The Beyn contour-integral OBC solver (paper §4.2.1)
/// performs an SVD of its zeroth moment matrix to extract the eigenspace
/// dimension; Jacobi is chosen for its robustness and simplicity at the
/// moderate block sizes (N_BS) involved.

#include <vector>

#include "la/matrix.hpp"

namespace qtx::la {

/// A = U diag(s) V† with singular values sorted descending. U is m x r,
/// V is n x r where r = min(m, n).
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix v;
};

SvdResult svd(const Matrix& a);

/// Numerical rank: number of singular values > tol * s_max.
int svd_rank(const SvdResult& r, double tol = 1e-12);

}  // namespace qtx::la
