#pragma once

/// \file eig_herm.hpp
/// Hermitian eigensolver (two-sided complex Jacobi). Used for band-structure
/// observables (diagonalizing H(k)) and for validating the synthetic DFT
/// Hamiltonians produced by src/device.

#include <vector>

#include "la/matrix.hpp"

namespace qtx::la {

/// A = V diag(w) V† with real eigenvalues sorted ascending and orthonormal
/// eigenvector columns.
struct HermEigResult {
  std::vector<double> values;
  Matrix vectors;
};

HermEigResult eig_hermitian(const Matrix& a);

}  // namespace qtx::la
