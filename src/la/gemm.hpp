#pragma once

/// \file gemm.hpp
/// Complex GEMM — the kernel that dominates the paper's workload (§6.3:
/// "the workload ... is dominated by BLAS level 3 calls (mainly GEMM)").
/// Loop orders are chosen for unit-stride access on the column-major Matrix;
/// every call reports its FP64 operation count to the FlopLedger, mirroring
/// the paper's rocprof/NCU workload accounting.

#include "la/matrix.hpp"

namespace qtx::la {

/// Operation applied to a GEMM operand.
enum class Op {
  kNone,       ///< op(A) = A
  kConjTrans,  ///< op(A) = A†
};

/// C = alpha * op(A) * op(B) + beta * C.
void gemm(cplx alpha, const Matrix& a, Op opa, const Matrix& b, Op opb,
          cplx beta, Matrix& c);

/// Convenience products covering every combination used by the solvers.
/// Naming: m = plain operand, h = conjugate-transposed operand.
Matrix mm(const Matrix& a, const Matrix& b);    ///< A · B
Matrix mmh(const Matrix& a, const Matrix& b);   ///< A · B†
Matrix hmm(const Matrix& a, const Matrix& b);   ///< A† · B
Matrix hmmh(const Matrix& a, const Matrix& b);  ///< A† · B†

/// Triple products A · B · C (and daggered variants), used pervasively by the
/// RGF recursions; evaluated left-to-right.
Matrix mmm(const Matrix& a, const Matrix& b, const Matrix& c);
Matrix mmmh(const Matrix& a, const Matrix& b, const Matrix& c);  ///< A·B·C†

}  // namespace qtx::la
