#pragma once

/// \file qr.hpp
/// Householder QR. Used to orthonormalize Beyn probe subspaces and as a
/// building block for least-squares solves in the mode-space surface-function
/// reconstruction (paper §4.2.1).

#include "la/matrix.hpp"

namespace qtx::la {

/// Thin QR of an m x n matrix with m >= n: A = Q R with Q m x n having
/// orthonormal columns and R n x n upper triangular.
struct QrFactors {
  Matrix q;
  Matrix r;
};

QrFactors qr_factor(const Matrix& a);

/// Least-squares solve min ||A x - b||_2 for full-column-rank A via QR.
Matrix qr_least_squares(const Matrix& a, const Matrix& b);

}  // namespace qtx::la
