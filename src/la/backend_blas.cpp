// The optional "blas" backend: bindings to system CBLAS/LAPACKE, compiled
// in only when CMake finds both (QTX_HAVE_CBLAS). On builds without them
// this translation unit degrades to the two availability stubs, keeping
// the la layer free of any *hard* BLAS/LAPACK dependency (CONTRIBUTING).

#include "la/backend.hpp"

#ifdef QTX_HAVE_CBLAS

#include <cblas.h>
#include <lapacke.h>

namespace qtx::la {
namespace {

/// LAPACK ipiv is 1-based with the same "row i swapped with ipiv[i] at
/// step i" convention as LuFactors::piv; shift on the way in/out.
std::vector<lapack_int> to_lapack_piv(const std::vector<int>& piv) {
  std::vector<lapack_int> out(piv.size());
  for (std::size_t i = 0; i < piv.size(); ++i)
    out[i] = static_cast<lapack_int>(piv[i] + 1);
  return out;
}

/// Plain (non-conjugating) transpose, for routing X A = B through
/// zgetrs('T'): A^T X^T = B^T.
Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i) t(j, i) = a(i, j);
  return t;
}

class BlasBackend final : public Backend {
 public:
  std::string_view name() const override { return "blas"; }

  void gemm_accumulate(cplx alpha, const Matrix& a, Op opa, const Matrix& b,
                       Op opb, Matrix& c) const override {
    const int m = c.rows(), n = c.cols();
    const int k = (opa == Op::kNone) ? a.cols() : a.rows();
    if (m == 0 || n == 0) return;
    const cplx beta(1.0);  // the dispatcher already applied the real beta
    cblas_zgemm(CblasColMajor,
                opa == Op::kNone ? CblasNoTrans : CblasConjTrans,
                opb == Op::kNone ? CblasNoTrans : CblasConjTrans, m, n, k,
                &alpha, a.data(), a.rows() > 0 ? a.rows() : 1, b.data(),
                b.rows() > 0 ? b.rows() : 1, &beta, c.data(), m);
  }

  LuFactors lu_factor(const Matrix& a) const override {
    const int n = a.rows();
    LuFactors f{a, std::vector<int>(n), false};
    std::vector<lapack_int> ipiv(n);
    const lapack_int info = LAPACKE_zgetrf(
        LAPACK_COL_MAJOR, n, n,
        reinterpret_cast<lapack_complex_double*>(f.lu.data()), n > 0 ? n : 1,
        ipiv.data());
    f.singular = info > 0;
    for (int i = 0; i < n; ++i) f.piv[i] = static_cast<int>(ipiv[i]) - 1;
    return f;
  }

  Matrix lu_solve(const LuFactors& f, const Matrix& b) const override {
    const int n = f.lu.rows();
    Matrix x = b;
    std::vector<lapack_int> ipiv = to_lapack_piv(f.piv);
    LAPACKE_zgetrs(
        LAPACK_COL_MAJOR, 'N', n, x.cols(),
        reinterpret_cast<const lapack_complex_double*>(f.lu.data()),
        n > 0 ? n : 1, ipiv.data(),
        reinterpret_cast<lapack_complex_double*>(x.data()), n > 0 ? n : 1);
    return x;
  }

  Matrix lu_solve_right(const LuFactors& f, const Matrix& b) const override {
    const int n = f.lu.rows();
    Matrix xt = transpose(b);  // A^T X^T = B^T
    std::vector<lapack_int> ipiv = to_lapack_piv(f.piv);
    LAPACKE_zgetrs(
        LAPACK_COL_MAJOR, 'T', n, xt.cols(),
        reinterpret_cast<const lapack_complex_double*>(f.lu.data()),
        n > 0 ? n : 1, ipiv.data(),
        reinterpret_cast<lapack_complex_double*>(xt.data()), n > 0 ? n : 1);
    return transpose(xt);
  }
};

}  // namespace

bool blas_backend_available() { return true; }

std::unique_ptr<Backend> make_blas_backend() {
  return std::make_unique<BlasBackend>();
}

}  // namespace qtx::la

#else  // !QTX_HAVE_CBLAS

namespace qtx::la {

bool blas_backend_available() { return false; }

std::unique_ptr<Backend> make_blas_backend() { return nullptr; }

}  // namespace qtx::la

#endif
