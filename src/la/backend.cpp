#include "la/backend.hpp"

#include <atomic>
#include <mutex>
#include <sstream>
#include <utility>

namespace qtx::la {
namespace {

std::mutex g_backend_mutex;

/// Backends ever installed, retained for the process lifetime so the
/// lock-free readers of g_active can never observe a destroyed instance.
std::vector<std::shared_ptr<const Backend>>& retained() {
  static std::vector<std::shared_ptr<const Backend>> r;
  return r;
}

const Backend* reference_singleton() {
  static const std::unique_ptr<Backend> ref = make_reference_backend();
  return ref.get();
}

std::atomic<const Backend*>& active_slot() {
  static std::atomic<const Backend*> slot{nullptr};
  return slot;
}

}  // namespace

std::vector<std::string> builtin_backend_names() {
  std::vector<std::string> names = {"native", "reference"};
  if (blas_backend_available()) names.insert(names.begin(), "blas");
  return names;  // sorted
}

std::unique_ptr<Backend> make_builtin_backend(const std::string& name) {
  if (name == "reference") return make_reference_backend();
  if (name == "native") return make_native_backend();
  if (name == "blas" && blas_backend_available()) return make_blas_backend();
  std::ostringstream os;
  os << "unknown la backend \"" << name << "\"; builtin keys:";
  for (const std::string& k : builtin_backend_names()) os << " \"" << k << '"';
  if (name == "blas")
    os << " (\"blas\" exists but this build found no CBLAS/LAPACKE)";
  throw std::runtime_error(os.str());
}

const Backend& active_backend() {
  const Backend* b = active_slot().load(std::memory_order_acquire);
  return b ? *b : *reference_singleton();
}

std::string active_backend_name() {
  return std::string(active_backend().name());
}

void set_active_backend(std::shared_ptr<const Backend> backend) {
  std::lock_guard<std::mutex> lock(g_backend_mutex);
  const Backend* raw = backend ? backend.get() : reference_singleton();
  if (backend) retained().push_back(std::move(backend));
  active_slot().store(raw, std::memory_order_release);
}

void set_active_backend(const std::string& name) {
  if (name == "reference") {
    // Use the shared singleton instead of piling up retained instances on
    // the common restore-the-default path.
    std::lock_guard<std::mutex> lock(g_backend_mutex);
    active_slot().store(reference_singleton(), std::memory_order_release);
    return;
  }
  set_active_backend(
      std::shared_ptr<const Backend>(make_builtin_backend(name)));
}

BackendGuard::BackendGuard(const std::string& name)
    : previous_(active_backend_name()) {
  set_active_backend(name);
}

BackendGuard::~BackendGuard() { set_active_backend(previous_); }

}  // namespace qtx::la
