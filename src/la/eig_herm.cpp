#include "la/eig_herm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/flops.hpp"

namespace qtx::la {

HermEigResult eig_hermitian(const Matrix& a_in) {
  QTX_CHECK(a_in.square());
  QTX_CHECK_MSG(a_in.is_hermitian(1e-10 * (1.0 + a_in.max_abs())),
                "eig_hermitian requires a Hermitian matrix");
  const int n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::identity(n);
  const int max_sweeps = 60;
  const double tol = 1e-14;
  FlopLedger::add(8LL * 12 * n * n * n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < j; ++i) off += std::norm(a(i, j));
    if (std::sqrt(off) <= tol * (1.0 + a.max_abs()) * n) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const cplx apq = a(p, q);
        const double gamma = std::abs(apq);
        if (gamma <= tol * (std::abs(a(p, p)) + std::abs(a(q, q)) + 1e-300))
          continue;
        // Phase-folded real Jacobi rotation zeroing a_pq.
        const cplx phase = apq / gamma;
        const double app = a(p, p).real(), aqq = a(q, q).real();
        const double tau = (aqq - app) / (2.0 * gamma);
        const double t = ((tau >= 0.0) ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        const cplx sp = sn * phase;
        // A := J† A J with J = [[cs, sp], [-conj(sp), cs]] on (p, q);
        // apply to columns then rows (keeping Hermiticity exactly).
        for (int i = 0; i < n; ++i) {
          const cplx x = a(i, p), y = a(i, q);
          a(i, p) = cs * x - std::conj(sp) * y;
          a(i, q) = sp * x + cs * y;
        }
        for (int i = 0; i < n; ++i) {
          const cplx x = a(p, i), y = a(q, i);
          a(p, i) = cs * x - sp * y;
          a(q, i) = std::conj(sp) * x + cs * y;
        }
        a(p, q) = 0.0;
        a(q, p) = 0.0;
        a(p, p) = cplx(a(p, p).real(), 0.0);
        a(q, q) = cplx(a(q, q).real(), 0.0);
        for (int i = 0; i < n; ++i) {
          const cplx x = v(i, p), y = v(i, q);
          v(i, p) = cs * x - std::conj(sp) * y;
          v(i, q) = sp * x + cs * y;
        }
      }
    }
  }
  std::vector<double> w(n);
  for (int i = 0; i < n; ++i) w[i] = a(i, i).real();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return w[i] < w[j]; });
  HermEigResult out{std::vector<double>(n), Matrix(n, n)};
  for (int j = 0; j < n; ++j) {
    out.values[j] = w[order[j]];
    for (int i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace qtx::la
