#include "la/gemm.hpp"

#include "common/flops.hpp"
#include "la/backend.hpp"
#include "obs/trace.hpp"

namespace qtx::la {

void gemm(cplx alpha, const Matrix& a, Op opa, const Matrix& b, Op opb,
          cplx beta, Matrix& c) {
  const int m = (opa == Op::kNone) ? a.rows() : a.cols();
  const int k = (opa == Op::kNone) ? a.cols() : a.rows();
  const int kb = (opb == Op::kNone) ? b.rows() : b.cols();
  const int n = (opb == Op::kNone) ? b.cols() : b.rows();
  QTX_CHECK_MSG(k == kb, "gemm inner dimensions mismatch: " << k << " vs "
                                                            << kb);
  QTX_CHECK_MSG(c.rows() == m && c.cols() == n,
                "gemm output shape mismatch: got " << c.rows() << "x"
                                                   << c.cols() << ", want "
                                                   << m << "x" << n);
  // c is scaled/zeroed before a and b are read, so an aliased output would
  // silently corrupt the product.
  QTX_CHECK_MSG(&c != &a && &c != &b,
                "gemm output c must not alias an input operand (c "
                "is scaled by beta before op(a)*op(b) is read); use a "
                "temporary");
  if (beta == cplx(0.0)) {
    c.fill(0.0);
  } else if (beta != cplx(1.0)) {
    c *= beta;
  }
  FlopLedger::add(flop_count::gemm(m, n, k));
  // Kernel-detail spans are double-gated (see set_kernel_tracing_enabled):
  // at default trace verbosity this is one relaxed atomic load.
  const obs::Span span("la.gemm", obs::SpanKind::kKernel);
  active_backend().gemm_accumulate(alpha, a, opa, b, opb, c);
}

Matrix mm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, Op::kNone, b, Op::kNone, 0.0, c);
  return c;
}

Matrix mmh(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  gemm(1.0, a, Op::kNone, b, Op::kConjTrans, 0.0, c);
  return c;
}

Matrix hmm(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  gemm(1.0, a, Op::kConjTrans, b, Op::kNone, 0.0, c);
  return c;
}

Matrix hmmh(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.rows());
  gemm(1.0, a, Op::kConjTrans, b, Op::kConjTrans, 0.0, c);
  return c;
}

Matrix mmm(const Matrix& a, const Matrix& b, const Matrix& c) {
  return mm(mm(a, b), c);
}

Matrix mmmh(const Matrix& a, const Matrix& b, const Matrix& c) {
  return mmh(mm(a, b), c);
}

}  // namespace qtx::la
