#include "la/gemm.hpp"

#include "common/flops.hpp"

namespace qtx::la {
namespace {

/// C += alpha * A * B, column-major, jki order: the inner loop is a
/// unit-stride complex axpy over a column of A into a column of C.
void gemm_nn(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    const cplx* bj = b.col(j);
    for (int l = 0; l < k; ++l) {
      const cplx w = alpha * bj[l];
      if (w == cplx(0.0)) continue;
      const cplx* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += w * al[i];
    }
  }
}

/// C += alpha * A† * B: inner loop is a unit-stride dot product of two
/// columns.
void gemm_cn(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.cols(), k = a.rows(), n = b.cols();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    const cplx* bj = b.col(j);
    for (int i = 0; i < m; ++i) {
      const cplx* ai = a.col(i);
      cplx s = 0.0;
      for (int l = 0; l < k; ++l) s += std::conj(ai[l]) * bj[l];
      cj[i] += alpha * s;
    }
  }
}

/// C += alpha * A * B†: axpy of column l of A scaled by conj(B(j,l)).
void gemm_nc(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    for (int l = 0; l < k; ++l) {
      const cplx w = alpha * std::conj(b(j, l));
      if (w == cplx(0.0)) continue;
      const cplx* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += w * al[i];
    }
  }
}

/// C += alpha * A† * B†: dot of column i of A with row j of B.
void gemm_cc(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.cols(), k = a.rows(), n = b.rows();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    for (int i = 0; i < m; ++i) {
      const cplx* ai = a.col(i);
      cplx s = 0.0;
      for (int l = 0; l < k; ++l) s += std::conj(ai[l]) * std::conj(b(j, l));
      cj[i] += alpha * s;
    }
  }
}

}  // namespace

void gemm(cplx alpha, const Matrix& a, Op opa, const Matrix& b, Op opb,
          cplx beta, Matrix& c) {
  const int m = (opa == Op::kNone) ? a.rows() : a.cols();
  const int k = (opa == Op::kNone) ? a.cols() : a.rows();
  const int kb = (opb == Op::kNone) ? b.rows() : b.cols();
  const int n = (opb == Op::kNone) ? b.cols() : b.rows();
  QTX_CHECK_MSG(k == kb, "gemm inner dimensions mismatch: " << k << " vs "
                                                            << kb);
  QTX_CHECK_MSG(c.rows() == m && c.cols() == n,
                "gemm output shape mismatch: got " << c.rows() << "x"
                                                   << c.cols() << ", want "
                                                   << m << "x" << n);
  if (beta == cplx(0.0)) {
    c.fill(0.0);
  } else if (beta != cplx(1.0)) {
    c *= beta;
  }
  FlopLedger::add(flop_count::gemm(m, n, k));
  if (opa == Op::kNone && opb == Op::kNone) {
    gemm_nn(alpha, a, b, c);
  } else if (opa == Op::kConjTrans && opb == Op::kNone) {
    gemm_cn(alpha, a, b, c);
  } else if (opa == Op::kNone && opb == Op::kConjTrans) {
    gemm_nc(alpha, a, b, c);
  } else {
    gemm_cc(alpha, a, b, c);
  }
}

Matrix mm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, Op::kNone, b, Op::kNone, 0.0, c);
  return c;
}

Matrix mmh(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  gemm(1.0, a, Op::kNone, b, Op::kConjTrans, 0.0, c);
  return c;
}

Matrix hmm(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  gemm(1.0, a, Op::kConjTrans, b, Op::kNone, 0.0, c);
  return c;
}

Matrix hmmh(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.rows());
  gemm(1.0, a, Op::kConjTrans, b, Op::kConjTrans, 0.0, c);
  return c;
}

Matrix mmm(const Matrix& a, const Matrix& b, const Matrix& c) {
  return mm(mm(a, b), c);
}

Matrix mmmh(const Matrix& a, const Matrix& b, const Matrix& c) {
  return mmh(mm(a, b), c);
}

}  // namespace qtx::la
