// The "reference" backend: the original portable loops of gemm.cpp/lu.cpp,
// moved here verbatim. This is the oracle every optimized backend is
// checked against (tests/test_la_backends.cpp) and the path all golden
// files are pinned to — do not "optimize" it; change the numerics only
// with a golden regeneration.

#include <cmath>

#include "la/backend.hpp"

namespace qtx::la {
namespace {

/// C += alpha * A * B, column-major, jki order: the inner loop is a
/// unit-stride complex axpy over a column of A into a column of C.
void gemm_nn(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    const cplx* bj = b.col(j);
    for (int l = 0; l < k; ++l) {
      const cplx w = alpha * bj[l];
      if (w == cplx(0.0)) continue;
      const cplx* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += w * al[i];
    }
  }
}

/// C += alpha * A† * B: inner loop is a unit-stride dot product of two
/// columns.
void gemm_cn(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.cols(), k = a.rows(), n = b.cols();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    const cplx* bj = b.col(j);
    for (int i = 0; i < m; ++i) {
      const cplx* ai = a.col(i);
      cplx s = 0.0;
      for (int l = 0; l < k; ++l) s += std::conj(ai[l]) * bj[l];
      cj[i] += alpha * s;
    }
  }
}

/// C += alpha * A * B†: axpy of column l of A scaled by conj(B(j,l)).
void gemm_nc(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    for (int l = 0; l < k; ++l) {
      const cplx w = alpha * std::conj(b(j, l));
      if (w == cplx(0.0)) continue;
      const cplx* al = a.col(l);
      for (int i = 0; i < m; ++i) cj[i] += w * al[i];
    }
  }
}

/// C += alpha * A† * B†: dot of column i of A with row j of B.
void gemm_cc(cplx alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.cols(), k = a.rows(), n = b.rows();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    for (int i = 0; i < m; ++i) {
      const cplx* ai = a.col(i);
      cplx s = 0.0;
      for (int l = 0; l < k; ++l) s += std::conj(ai[l]) * std::conj(b(j, l));
      cj[i] += alpha * s;
    }
  }
}

class ReferenceBackend final : public Backend {
 public:
  std::string_view name() const override { return "reference"; }

  void gemm_accumulate(cplx alpha, const Matrix& a, Op opa, const Matrix& b,
                       Op opb, Matrix& c) const override {
    if (opa == Op::kNone && opb == Op::kNone) {
      gemm_nn(alpha, a, b, c);
    } else if (opa == Op::kConjTrans && opb == Op::kNone) {
      gemm_cn(alpha, a, b, c);
    } else if (opa == Op::kNone && opb == Op::kConjTrans) {
      gemm_nc(alpha, a, b, c);
    } else {
      gemm_cc(alpha, a, b, c);
    }
  }

  LuFactors lu_factor(const Matrix& a) const override {
    const int n = a.rows();
    LuFactors f{a, std::vector<int>(n), false};
    Matrix& m = f.lu;
    for (int k = 0; k < n; ++k) {
      // Partial pivoting: largest magnitude in column k at/below the
      // diagonal.
      int p = k;
      double best = std::abs(m(k, k));
      for (int i = k + 1; i < n; ++i) {
        const double v = std::abs(m(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      f.piv[k] = p;
      if (best == 0.0) {
        f.singular = true;
        continue;
      }
      if (p != k)
        for (int j = 0; j < n; ++j) std::swap(m(k, j), m(p, j));
      const cplx inv_piv = 1.0 / m(k, k);
      for (int i = k + 1; i < n; ++i) m(i, k) *= inv_piv;
      for (int j = k + 1; j < n; ++j) {
        const cplx ukj = m(k, j);
        if (ukj == cplx(0.0)) continue;
        cplx* mj = m.col(j);
        const cplx* mk = m.col(k);
        for (int i = k + 1; i < n; ++i) mj[i] -= mk[i] * ukj;
      }
    }
    return f;
  }

  Matrix lu_solve(const LuFactors& f, const Matrix& b) const override {
    const int n = f.lu.rows();
    const int nrhs = b.cols();
    Matrix x = b;
    // Apply the recorded row swaps.
    for (int k = 0; k < n; ++k) {
      const int p = f.piv[k];
      if (p != k)
        for (int j = 0; j < nrhs; ++j) std::swap(x(k, j), x(p, j));
    }
    // Forward substitution with unit lower-triangular L.
    for (int j = 0; j < nrhs; ++j) {
      cplx* xj = x.col(j);
      for (int k = 0; k < n; ++k) {
        const cplx xk = xj[k];
        if (xk == cplx(0.0)) continue;
        const cplx* lk = f.lu.col(k);
        for (int i = k + 1; i < n; ++i) xj[i] -= lk[i] * xk;
      }
    }
    // Back substitution with U.
    for (int j = 0; j < nrhs; ++j) {
      cplx* xj = x.col(j);
      for (int k = n - 1; k >= 0; --k) {
        xj[k] /= f.lu(k, k);
        const cplx xk = xj[k];
        if (xk == cplx(0.0)) continue;
        const cplx* uk = f.lu.col(k);
        for (int i = 0; i < k; ++i) xj[i] -= uk[i] * xk;
      }
    }
    return x;
  }

  Matrix lu_solve_right(const LuFactors& f, const Matrix& b) const override {
    // X A = B with P A = L U means X = ((B U^-1) L^-1) P, evaluated as two
    // triangular sweeps over columns followed by the column permutation.
    const int n = f.lu.rows();
    const int nlhs = b.rows();
    Matrix x = b;
    // Solve X' U = B  (forward over columns k): X'(:,k) = (B(:,k) -
    // sum_{j<k} X'(:,j) U(j,k)) / U(k,k).
    for (int k = 0; k < n; ++k) {
      const cplx* uk = f.lu.col(k);
      cplx* xk = x.col(k);
      for (int j = 0; j < k; ++j) {
        const cplx ujk = uk[j];
        if (ujk == cplx(0.0)) continue;
        const cplx* xj = x.col(j);
        for (int i = 0; i < nlhs; ++i) xk[i] -= xj[i] * ujk;
      }
      const cplx inv = 1.0 / uk[k];
      for (int i = 0; i < nlhs; ++i) xk[i] *= inv;
    }
    // Solve X'' L = X' (backward over columns k, unit diagonal).
    for (int k = n - 1; k >= 0; --k) {
      cplx* xk = x.col(k);
      for (int j = k + 1; j < n; ++j) {
        const cplx ljk = f.lu(j, k);
        if (ljk == cplx(0.0)) continue;
        const cplx* xj = x.col(j);
        for (int i = 0; i < nlhs; ++i) xk[i] -= xj[i] * ljk;
      }
    }
    // Undo the row permutation: columns of X were computed in pivoted
    // order.
    for (int k = n - 1; k >= 0; --k) {
      const int p = f.piv[k];
      if (p != k)
        for (int i = 0; i < nlhs; ++i) std::swap(x(i, k), x(i, p));
    }
    return x;
  }
};

}  // namespace

std::unique_ptr<Backend> make_reference_backend() {
  return std::make_unique<ReferenceBackend>();
}

}  // namespace qtx::la
