#pragma once

/// \file backend.hpp
/// Pluggable dense-kernel backends for the `la` layer.
///
/// The free functions `la::gemm` / `la::lu_factor` / `la::lu_solve` /
/// `la::lu_solve_right` stay the public kernel API, but their O(n^3) bodies
/// dispatch through a process-global *active backend*:
///
///   - "reference": the original portable unit-stride loops — the oracle
///     every other backend is checked against; all golden files are pinned
///     to this path (the default).
///   - "native":    cache-blocked, split real/imaginary arithmetic (avoids
///     the __muldc3 slow path of std::complex multiplies) with
///     small-matrix fast paths.
///   - "blas":      system CBLAS/LAPACKE bindings, compiled in only when
///     CMake finds the headers and libraries (QTX_HAVE_CBLAS).
///
/// The dispatcher — not the backend — owns shape checks, aliasing checks,
/// beta pre-scaling, and FlopLedger accounting, so every backend is counted
/// and validated identically and a backend body only ever *accumulates*
/// into c.
///
/// The active backend is process-global because the kernels are invoked
/// deep inside the RGF/OBC/bsparse layers with no options context. It is
/// stored behind an atomic pointer (safe to read from concurrent energy
/// workers); installing a backend retains it for the process lifetime, so a
/// stale reader can never observe a destroyed backend. Running two
/// Simulations with *different* la backends concurrently in one process is
/// not supported — the most recently installed backend wins.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "la/gemm.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"

namespace qtx::la {

/// Abstract dense-kernel backend. Implementations must be stateless (or
/// internally synchronized): one instance serves every thread of the
/// parallel energy loop.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry key of this backend ("reference", "native", "blas", ...).
  virtual std::string_view name() const = 0;

  /// C += alpha * op(A) * op(B). The dispatcher has already validated the
  /// shapes, rejected aliasing, applied beta to c, and charged the
  /// FlopLedger.
  virtual void gemm_accumulate(cplx alpha, const Matrix& a, Op opa,
                               const Matrix& b, Op opb, Matrix& c) const = 0;

  /// P·A = L·U with partial pivoting. Must follow the LuFactors
  /// conventions of lu.hpp exactly (0-based piv, "row k swapped with
  /// piv[k] at step k", singular flag with the elimination step skipped on
  /// a zero pivot) so factors interoperate across backends.
  virtual LuFactors lu_factor(const Matrix& a) const = 0;

  /// Solve A X = B from factors of A (the dispatcher rejects singular f).
  virtual Matrix lu_solve(const LuFactors& f, const Matrix& b) const = 0;

  /// Solve X A = B from factors of A.
  virtual Matrix lu_solve_right(const LuFactors& f, const Matrix& b) const = 0;
};

/// The portable oracle backend (the historic loops, unchanged).
std::unique_ptr<Backend> make_reference_backend();

/// Cache-blocked split-complex backend.
std::unique_ptr<Backend> make_native_backend();

/// CBLAS/LAPACKE backend; returns nullptr when compiled without
/// QTX_HAVE_CBLAS (use blas_backend_available() to probe).
std::unique_ptr<Backend> make_blas_backend();

/// Was the "blas" backend compiled in (CMake found CBLAS + LAPACKE)?
bool blas_backend_available();

/// Keys of the builtin backends available in this build, sorted
/// ("blas" only when compiled in).
std::vector<std::string> builtin_backend_names();

/// Instantiate a builtin by key; throws std::runtime_error with the known
/// keys on an unknown (or unavailable) key.
std::unique_ptr<Backend> make_builtin_backend(const std::string& name);

/// The backend the free kernel functions currently dispatch through.
/// Defaults to "reference"; never null.
const Backend& active_backend();

/// Key of the active backend (for logs and benches).
std::string active_backend_name();

/// Install \p backend as the process-global active backend. The instance
/// is retained for the process lifetime (see the file comment); passing
/// nullptr restores "reference".
void set_active_backend(std::shared_ptr<const Backend> backend);

/// Convenience: install a builtin by key (throws on unknown keys).
void set_active_backend(const std::string& name);

/// RAII guard: installs \p name on construction, restores the previously
/// active backend on destruction. For tests and benches that compare
/// backends without leaking the selection into later tests.
class BackendGuard {
 public:
  explicit BackendGuard(const std::string& name);
  ~BackendGuard();
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  std::string previous_;
};

}  // namespace qtx::la
