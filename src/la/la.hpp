#pragma once

/// \file la.hpp
/// Umbrella header for the dense linear-algebra substrate.

#include "la/backend.hpp"
#include "la/eig_herm.hpp"
#include "la/gemm.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"
#include "la/schur.hpp"
#include "la/svd.hpp"
