#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/flops.hpp"

namespace qtx::la {
namespace {

/// One-sided Jacobi on a tall (m >= n) matrix: rotate column pairs until all
/// are mutually orthogonal; the column norms are then the singular values.
SvdResult svd_tall(const Matrix& a_in) {
  Matrix a = a_in;
  const int m = a.rows(), n = a.cols();
  Matrix v = Matrix::identity(n);
  const double tol = 1e-14;
  const int max_sweeps = 60;
  FlopLedger::add(8LL * m * n * n * 10);  // rough ledger entry for the sweeps
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        cplx* ap = a.col(p);
        cplx* aq = a.col(q);
        double app = 0.0, aqq = 0.0;
        cplx apq = 0.0;
        for (int i = 0; i < m; ++i) {
          app += std::norm(ap[i]);
          aqq += std::norm(aq[i]);
          apq += std::conj(ap[i]) * aq[i];
        }
        const double gamma = std::abs(apq);
        if (gamma <= tol * std::sqrt(app * aqq) || gamma == 0.0) continue;
        converged = false;
        // Rotation angle from tan(2 theta) = 2|apq| / (aqq - app); the phase
        // of apq is folded into the rotation so it stays real.
        const cplx phase = apq / gamma;
        const double tau = (aqq - app) / (2.0 * gamma);
        const double t = ((tau >= 0.0) ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        const cplx sp = sn * phase;  // sn * e^{i phi}
        for (int i = 0; i < m; ++i) {
          const cplx x = ap[i], y = aq[i];
          ap[i] = cs * x - std::conj(sp) * y;
          aq[i] = sp * x + cs * y;
        }
        cplx* vp = v.col(p);
        cplx* vq = v.col(q);
        for (int i = 0; i < n; ++i) {
          const cplx x = vp[i], y = vq[i];
          vp[i] = cs * x - std::conj(sp) * y;
          vq[i] = sp * x + cs * y;
        }
      }
    }
    if (converged) break;
  }
  // Column norms are the singular values; normalize to get U.
  std::vector<double> s(n);
  Matrix u(m, n);
  for (int j = 0; j < n; ++j) {
    double nrm2 = 0.0;
    const cplx* aj = a.col(j);
    for (int i = 0; i < m; ++i) nrm2 += std::norm(aj[i]);
    s[j] = std::sqrt(nrm2);
    if (s[j] > 0.0) {
      const double inv = 1.0 / s[j];
      for (int i = 0; i < m; ++i) u(i, j) = aj[i] * inv;
    } else {
      // Zero column: leave U column zero; it pairs with sigma = 0 and is
      // never used by rank-truncated consumers.
    }
  }
  // Sort descending by singular value.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return s[i] > s[j]; });
  SvdResult out{Matrix(m, n), std::vector<double>(n), Matrix(n, n)};
  for (int j = 0; j < n; ++j) {
    const int src = order[j];
    out.s[j] = s[src];
    for (int i = 0; i < m; ++i) out.u(i, j) = u(i, src);
    for (int i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

}  // namespace

SvdResult svd(const Matrix& a) {
  if (a.rows() >= a.cols()) return svd_tall(a);
  // Wide matrix: A = U S V†  <=>  A† = V S U†.
  SvdResult t = svd_tall(a.dagger());
  return {std::move(t.v), std::move(t.s), std::move(t.u)};
}

int svd_rank(const SvdResult& r, double tol) {
  if (r.s.empty()) return 0;
  const double cut = tol * r.s.front();
  int rank = 0;
  for (const double v : r.s)
    if (v > cut) ++rank;
  return rank;
}

}  // namespace qtx::la
