#pragma once

/// \file schur.hpp
/// Complex Schur decomposition A = U T U† via Householder-Hessenberg
/// reduction followed by the shifted QR iteration with deflation.
///
/// Two paper kernels depend on it:
///  - the reduced (non-symmetric) eigenvalue problem at the end of the Beyn
///    contour-integral OBC algorithm (§4.2.1), and
///  - the direct discrete-time Lyapunov solver for the lesser/greater
///    screened-Coulomb boundary conditions (§4.2.2, Kitagawa's method),
/// the two operations the paper singles out as performing poorly on GPUs and
/// dispatching to CPU (§5.1).

#include <vector>

#include "la/matrix.hpp"

namespace qtx::la {

/// A = U T U† with U unitary and T upper triangular; eigenvalues on diag(T).
struct SchurResult {
  Matrix u;
  Matrix t;
  bool converged = true;
};

SchurResult schur(const Matrix& a, int max_iter_per_eig = 60);

/// Eigenvalues and (right) eigenvectors of a general complex matrix via
/// Schur + triangular back-substitution. Vectors are normalized to unit
/// 2-norm and stored as columns.
struct EigResult {
  std::vector<cplx> values;
  Matrix vectors;
  bool converged = true;
};

EigResult eig(const Matrix& a);

/// Reduce A to upper Hessenberg form H = Q† A Q (helper, exposed for tests).
struct HessenbergResult {
  Matrix h;
  Matrix q;
};

HessenbergResult hessenberg(const Matrix& a);

}  // namespace qtx::la
