#pragma once

/// \file lu.hpp
/// LU factorization with partial pivoting — backbone of every block inverse
/// in the RGF recursions (paper Eq. 9) and of the linear solves on the Beyn
/// contour (paper §4.2.1).

#include <vector>

#include "la/matrix.hpp"

namespace qtx::la {

/// Packed LU factors P·A = L·U with unit-diagonal L stored below the
/// diagonal of \c lu and U on/above it.
struct LuFactors {
  Matrix lu;
  std::vector<int> piv;  ///< row i was swapped with piv[i] during elimination
  bool singular = false;
};

/// Factor A (square). Never throws on singularity; check \c singular.
LuFactors lu_factor(const Matrix& a);

/// Solve A X = B for X given factors of A. B may have any number of columns.
Matrix lu_solve(const LuFactors& f, const Matrix& b);

/// Solve X A = B, i.e. X = B A⁻¹, via the identity X† solves A† X† = B†.
Matrix lu_solve_right(const LuFactors& f, const Matrix& b);

/// A⁻¹ via LU. Throws if A is numerically singular.
Matrix inverse(const Matrix& a);

/// log|det A| and the complex phase of det A from the factors; handy for
/// sanity checks on conditioning.
cplx determinant(const LuFactors& f);

}  // namespace qtx::la
