#pragma once

/// \file matrix.hpp
/// Dense column-major complex matrix — the working currency of every QuaTrEx
/// kernel. Blocks of the block-tridiagonal system matrices (paper Fig. 2) are
/// instances of this class; the RGF recursions (paper Eqs. 9–12), the OBC
/// solvers, and the assembly steps all operate on it.

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace qtx::la {

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized r x c matrix.
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols) {
    QTX_CHECK(rows >= 0 && cols >= 0);
  }

  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols); }

  /// Matrix with iid entries uniform in the complex square [-1,1]^2.
  static Matrix random(int rows, int cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) v = rng.complex_uniform();
    return m;
  }

  /// Random Hermitian matrix (A = A†).
  static Matrix random_hermitian(int n, Rng& rng) {
    Matrix a = random(n, n, rng);
    Matrix h(n, n);
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        h(i, j) = 0.5 * (a(i, j) + std::conj(a(j, i)));
    return h;
  }

  /// Random diagonally dominant matrix — always invertible; used as a
  /// well-conditioned stand-in for system-matrix blocks in tests.
  static Matrix random_diag_dominant(int n, Rng& rng, double dominance = 2.0) {
    Matrix a = random(n, n, rng);
    for (int i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (int j = 0; j < n; ++j) row_sum += std::abs(a(i, j));
      a(i, i) += cplx(dominance * row_sum, 0.0);
    }
    return a;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool square() const { return rows_ == cols_; }

  cplx& operator()(int i, int j) {
    return data_[static_cast<size_t>(j) * rows_ + i];
  }
  cplx operator()(int i, int j) const {
    return data_[static_cast<size_t>(j) * rows_ + i];
  }

  cplx* data() { return data_.data(); }
  const cplx* data() const { return data_.data(); }
  cplx* col(int j) { return data_.data() + static_cast<size_t>(j) * rows_; }
  const cplx* col(int j) const {
    return data_.data() + static_cast<size_t>(j) * rows_;
  }

  /// Conjugate transpose A†.
  Matrix dagger() const {
    Matrix out(cols_, rows_);
    for (int j = 0; j < cols_; ++j)
      for (int i = 0; i < rows_; ++i) out(j, i) = std::conj((*this)(i, j));
    return out;
  }

  /// Plain transpose Aᵀ.
  Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (int j = 0; j < cols_; ++j)
      for (int i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
    return out;
  }

  /// Element-wise complex conjugate.
  Matrix conjugate() const {
    Matrix out(rows_, cols_);
    for (size_t k = 0; k < data_.size(); ++k)
      out.data_[k] = std::conj(data_[k]);
    return out;
  }

  Matrix& operator+=(const Matrix& o) {
    QTX_CHECK(same_shape(o));
    for (size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    QTX_CHECK(same_shape(o));
    for (size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
    return *this;
  }
  Matrix& operator*=(cplx s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(cplx s, Matrix a) { return a *= s; }
  friend Matrix operator*(Matrix a, cplx s) { return a *= s; }

  /// this += s * o (complex axpy over all entries).
  void add_scaled(cplx s, const Matrix& o) {
    QTX_CHECK(same_shape(o));
    for (size_t k = 0; k < data_.size(); ++k) data_[k] += s * o.data_[k];
  }

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  cplx trace() const {
    QTX_CHECK(square());
    cplx t = 0.0;
    for (int i = 0; i < rows_; ++i) t += (*this)(i, i);
    return t;
  }

  double frobenius_norm() const {
    double s = 0.0;
    for (const auto& v : data_) s += std::norm(v);
    return std::sqrt(s);
  }

  double max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) m = std::max(m, std::abs(v));
    return m;
  }

  bool is_hermitian(double tol = 1e-12) const {
    if (!square()) return false;
    for (int j = 0; j < cols_; ++j)
      for (int i = 0; i <= j; ++i)
        if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol)
          return false;
    return true;
  }

  /// Lesser/greater symmetry X = -X† (paper §5.2), i.e. anti-Hermitian.
  bool is_anti_hermitian(double tol = 1e-12) const {
    if (!square()) return false;
    for (int j = 0; j < cols_; ++j)
      for (int i = 0; i <= j; ++i)
        if (std::abs((*this)(i, j) + std::conj((*this)(j, i))) > tol)
          return false;
    return true;
  }

  /// Contiguous sub-matrix copy: rows [r0, r0+nr), cols [c0, c0+nc).
  Matrix block(int r0, int c0, int nr, int nc) const {
    // nr/nc checked for sign explicitly: "r0 + nr <= rows_" alone would
    // admit negative extents.
    QTX_CHECK(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0 &&
              r0 + nr <= rows_ && c0 + nc <= cols_);
    Matrix out(nr, nc);
    for (int j = 0; j < nc; ++j)
      for (int i = 0; i < nr; ++i) out(i, j) = (*this)(r0 + i, c0 + j);
    return out;
  }

  /// Write \p src into the sub-matrix starting at (r0, c0).
  void set_block(int r0, int c0, const Matrix& src) {
    QTX_CHECK(r0 >= 0 && c0 >= 0 && r0 + src.rows() <= rows_ &&
              c0 + src.cols() <= cols_);
    for (int j = 0; j < src.cols(); ++j)
      for (int i = 0; i < src.rows(); ++i)
        (*this)(r0 + i, c0 + j) = src(i, j);
  }

  /// Accumulate \p src into the sub-matrix starting at (r0, c0).
  void add_block(int r0, int c0, const Matrix& src, cplx scale = 1.0) {
    QTX_CHECK(r0 >= 0 && c0 >= 0 && r0 + src.rows() <= rows_ &&
              c0 + src.cols() <= cols_);
    for (int j = 0; j < src.cols(); ++j)
      for (int i = 0; i < src.rows(); ++i)
        (*this)(r0 + i, c0 + j) += scale * src(i, j);
  }

  void fill(cplx v) {
    for (auto& x : data_) x = v;
  }

  /// In-place (A - A†)/2 projection onto the anti-Hermitian subspace —
  /// the paper's §5.2 symmetrization for lesser/greater block diagonals.
  void anti_hermitize() {
    QTX_CHECK(square());
    for (int j = 0; j < cols_; ++j)
      for (int i = 0; i <= j; ++i) {
        const cplx v = 0.5 * ((*this)(i, j) - std::conj((*this)(j, i)));
        (*this)(i, j) = v;
        (*this)(j, i) = -std::conj(v);
      }
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<cplx> data_;
};

/// Largest |A_ij - B_ij|; the workhorse comparison in tests.
inline double max_abs_diff(const Matrix& a, const Matrix& b) {
  QTX_CHECK(a.same_shape(b));
  double m = 0.0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace qtx::la
