#include "la/lu.hpp"

#include "common/flops.hpp"
#include "la/backend.hpp"
#include "obs/trace.hpp"

namespace qtx::la {

LuFactors lu_factor(const Matrix& a) {
  QTX_CHECK(a.square());
  FlopLedger::add(flop_count::lu(a.rows()));
  const obs::Span span("la.lu_factor", obs::SpanKind::kKernel);
  return active_backend().lu_factor(a);
}

Matrix lu_solve(const LuFactors& f, const Matrix& b) {
  QTX_CHECK_MSG(!f.singular, "lu_solve on singular factorization");
  const int n = f.lu.rows();
  QTX_CHECK(b.rows() == n);
  FlopLedger::add(flop_count::lu_solve(n, b.cols()));
  const obs::Span span("la.lu_solve", obs::SpanKind::kKernel);
  return active_backend().lu_solve(f, b);
}

Matrix lu_solve_right(const LuFactors& f, const Matrix& b) {
  QTX_CHECK_MSG(!f.singular, "lu_solve_right on singular factorization");
  const int n = f.lu.rows();
  QTX_CHECK(b.cols() == n);
  FlopLedger::add(flop_count::lu_solve(n, b.rows()));
  const obs::Span span("la.lu_solve_right", obs::SpanKind::kKernel);
  return active_backend().lu_solve_right(f, b);
}

Matrix inverse(const Matrix& a) {
  const LuFactors f = lu_factor(a);
  QTX_CHECK_MSG(!f.singular, "inverse of singular matrix (n=" << a.rows()
                                                              << ")");
  return lu_solve(f, Matrix::identity(a.rows()));
}

cplx determinant(const LuFactors& f) {
  cplx d = 1.0;
  for (int i = 0; i < f.lu.rows(); ++i) {
    d *= f.lu(i, i);
    if (f.piv[i] != i) d = -d;
  }
  return d;
}

}  // namespace qtx::la
