#include "la/lu.hpp"

#include <cmath>

#include "common/flops.hpp"

namespace qtx::la {

LuFactors lu_factor(const Matrix& a) {
  QTX_CHECK(a.square());
  const int n = a.rows();
  LuFactors f{a, std::vector<int>(n), false};
  Matrix& m = f.lu;
  FlopLedger::add(flop_count::lu(n));
  for (int k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    int p = k;
    double best = std::abs(m(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(m(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    f.piv[k] = p;
    if (best == 0.0) {
      f.singular = true;
      continue;
    }
    if (p != k)
      for (int j = 0; j < n; ++j) std::swap(m(k, j), m(p, j));
    const cplx inv_piv = 1.0 / m(k, k);
    for (int i = k + 1; i < n; ++i) m(i, k) *= inv_piv;
    for (int j = k + 1; j < n; ++j) {
      const cplx ukj = m(k, j);
      if (ukj == cplx(0.0)) continue;
      cplx* mj = m.col(j);
      const cplx* mk = m.col(k);
      for (int i = k + 1; i < n; ++i) mj[i] -= mk[i] * ukj;
    }
  }
  return f;
}

Matrix lu_solve(const LuFactors& f, const Matrix& b) {
  QTX_CHECK_MSG(!f.singular, "lu_solve on singular factorization");
  const int n = f.lu.rows();
  QTX_CHECK(b.rows() == n);
  const int nrhs = b.cols();
  Matrix x = b;
  FlopLedger::add(flop_count::lu_solve(n, nrhs));
  // Apply the recorded row swaps.
  for (int k = 0; k < n; ++k) {
    const int p = f.piv[k];
    if (p != k)
      for (int j = 0; j < nrhs; ++j) std::swap(x(k, j), x(p, j));
  }
  // Forward substitution with unit lower-triangular L.
  for (int j = 0; j < nrhs; ++j) {
    cplx* xj = x.col(j);
    for (int k = 0; k < n; ++k) {
      const cplx xk = xj[k];
      if (xk == cplx(0.0)) continue;
      const cplx* lk = f.lu.col(k);
      for (int i = k + 1; i < n; ++i) xj[i] -= lk[i] * xk;
    }
  }
  // Back substitution with U.
  for (int j = 0; j < nrhs; ++j) {
    cplx* xj = x.col(j);
    for (int k = n - 1; k >= 0; --k) {
      xj[k] /= f.lu(k, k);
      const cplx xk = xj[k];
      if (xk == cplx(0.0)) continue;
      const cplx* uk = f.lu.col(k);
      for (int i = 0; i < k; ++i) xj[i] -= uk[i] * xk;
    }
  }
  return x;
}

Matrix lu_solve_right(const LuFactors& f, const Matrix& b) {
  // X A = B with P A = L U means X = ((B U^-1) L^-1) P, evaluated as two
  // triangular sweeps over columns followed by the column permutation.
  QTX_CHECK_MSG(!f.singular, "lu_solve_right on singular factorization");
  const int n = f.lu.rows();
  QTX_CHECK(b.cols() == n);
  const int nlhs = b.rows();
  Matrix x = b;
  FlopLedger::add(flop_count::lu_solve(n, nlhs));
  // Solve X' U = B  (forward over columns k): X'(:,k) = (B(:,k) - sum_{j<k}
  // X'(:,j) U(j,k)) / U(k,k).
  for (int k = 0; k < n; ++k) {
    const cplx* uk = f.lu.col(k);
    cplx* xk = x.col(k);
    for (int j = 0; j < k; ++j) {
      const cplx ujk = uk[j];
      if (ujk == cplx(0.0)) continue;
      const cplx* xj = x.col(j);
      for (int i = 0; i < nlhs; ++i) xk[i] -= xj[i] * ujk;
    }
    const cplx inv = 1.0 / uk[k];
    for (int i = 0; i < nlhs; ++i) xk[i] *= inv;
  }
  // Solve X'' L = X' (backward over columns k, unit diagonal).
  for (int k = n - 1; k >= 0; --k) {
    cplx* xk = x.col(k);
    for (int j = k + 1; j < n; ++j) {
      const cplx ljk = f.lu(j, k);
      if (ljk == cplx(0.0)) continue;
      const cplx* xj = x.col(j);
      for (int i = 0; i < nlhs; ++i) xk[i] -= xj[i] * ljk;
    }
  }
  // Undo the row permutation: columns of X were computed in pivoted order.
  for (int k = n - 1; k >= 0; --k) {
    const int p = f.piv[k];
    if (p != k)
      for (int i = 0; i < nlhs; ++i) std::swap(x(i, k), x(i, p));
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  const LuFactors f = lu_factor(a);
  QTX_CHECK_MSG(!f.singular, "inverse of singular matrix (n=" << a.rows()
                                                              << ")");
  return lu_solve(f, Matrix::identity(a.rows()));
}

cplx determinant(const LuFactors& f) {
  cplx d = 1.0;
  for (int i = 0; i < f.lu.rows(); ++i) {
    d *= f.lu(i, i);
    if (f.piv[i] != i) d = -d;
  }
  return d;
}

}  // namespace qtx::la
