// The "native" backend: cache-blocked, unit-stride, SIMD-friendly kernels.
//
// std::complex<double> arithmetic compiles to the C99 Annex G semantics:
// every multiply carries a NaN-recovery branch into __muldc3, which blocks
// vectorization of the hot loops. This backend splits operands into planar
// real/imaginary panels once per call (thread-local scratch, no steady-state
// allocations) and runs the O(n^3) loops on plain doubles, which the
// compiler auto-vectorizes. Results agree with the "reference" oracle to
// rounding (same operation count, different accumulation order) — the
// equivalence suite in tests/test_la_backends.cpp is the gate.

#include <cmath>
#include <cstddef>
#include <vector>

#include "la/backend.hpp"

namespace qtx::la {
namespace {

/// Below this operation count (8*m*n*k), packing overhead dominates: use
/// the direct split-arithmetic triple loop instead (small-matrix fast
/// path — RGF/OBC call gemm on many small corner blocks).
constexpr std::int64_t kSmallGemmFlops = 8 * 12 * 12 * 12;

/// Thread-local planar scratch (one set per energy-pipeline worker).
struct Scratch {
  std::vector<double> ar, ai, br, bi, cr, ci;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

inline void resize(std::vector<double>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

/// Pack op(X) into column-major planar re/im panels of shape rows x cols.
void pack(const Matrix& x, Op op, double* re, double* im, int rows,
          int cols) {
  if (op == Op::kNone) {
    const cplx* src = x.data();
    const std::size_t n = static_cast<std::size_t>(rows) * cols;
    for (std::size_t i = 0; i < n; ++i) {
      re[i] = src[i].real();
      im[i] = src[i].imag();
    }
    return;
  }
  // op(X) = X†: out(i, j) = conj(x(j, i)).
  for (int j = 0; j < cols; ++j) {
    double* rj = re + static_cast<std::size_t>(j) * rows;
    double* ij = im + static_cast<std::size_t>(j) * rows;
    for (int i = 0; i < rows; ++i) {
      const cplx v = x(j, i);
      rj[i] = v.real();
      ij[i] = -v.imag();
    }
  }
}

/// Direct split-arithmetic loop for small blocks; conj resolved per
/// element (the branch is perfectly predicted: op is loop-invariant).
void gemm_small(cplx alpha, const Matrix& a, Op opa, const Matrix& b,
                Op opb, Matrix& c, int m, int n, int k) {
  const double alr = alpha.real(), ali = alpha.imag();
  for (int j = 0; j < n; ++j) {
    cplx* cj = c.col(j);
    for (int l = 0; l < k; ++l) {
      const cplx be = (opb == Op::kNone) ? b(l, j) : std::conj(b(j, l));
      const double wr = alr * be.real() - ali * be.imag();
      const double wi = alr * be.imag() + ali * be.real();
      if (wr == 0.0 && wi == 0.0) continue;
      for (int i = 0; i < m; ++i) {
        const cplx ae = (opa == Op::kNone) ? a(i, l) : std::conj(a(l, i));
        cj[i] += cplx(wr * ae.real() - wi * ae.imag(),
                      wr * ae.imag() + wi * ae.real());
      }
    }
  }
}

class NativeBackend final : public Backend {
 public:
  std::string_view name() const override { return "native"; }

  void gemm_accumulate(cplx alpha, const Matrix& a, Op opa, const Matrix& b,
                       Op opb, Matrix& c) const override {
    const int m = c.rows(), n = c.cols();
    const int k = (opa == Op::kNone) ? a.cols() : a.rows();
    if (8LL * m * n * k <= kSmallGemmFlops) {
      gemm_small(alpha, a, opa, b, opb, c, m, n, k);
      return;
    }
    Scratch& s = scratch();
    const std::size_t mk = static_cast<std::size_t>(m) * k;
    const std::size_t kn = static_cast<std::size_t>(k) * n;
    const std::size_t mn = static_cast<std::size_t>(m) * n;
    resize(s.ar, mk);
    resize(s.ai, mk);
    resize(s.br, kn);
    resize(s.bi, kn);
    resize(s.cr, mn);
    resize(s.ci, mn);
    pack(a, opa, s.ar.data(), s.ai.data(), m, k);
    pack(b, opb, s.br.data(), s.bi.data(), k, n);
    const double alr = alpha.real(), ali = alpha.imag();
    for (int j = 0; j < n; ++j) {
      double* cr = s.cr.data() + static_cast<std::size_t>(j) * m;
      double* ci = s.ci.data() + static_cast<std::size_t>(j) * m;
      for (int i = 0; i < m; ++i) cr[i] = 0.0;
      for (int i = 0; i < m; ++i) ci[i] = 0.0;
      const double* bjr = s.br.data() + static_cast<std::size_t>(j) * k;
      const double* bji = s.bi.data() + static_cast<std::size_t>(j) * k;
      int l = 0;
      // Two rank-1 updates per pass: twice the independent FMA chains in
      // the unit-stride inner loop.
      for (; l + 1 < k; l += 2) {
        const double w0r = alr * bjr[l] - ali * bji[l];
        const double w0i = alr * bji[l] + ali * bjr[l];
        const double w1r = alr * bjr[l + 1] - ali * bji[l + 1];
        const double w1i = alr * bji[l + 1] + ali * bjr[l + 1];
        const double* a0r = s.ar.data() + static_cast<std::size_t>(l) * m;
        const double* a0i = s.ai.data() + static_cast<std::size_t>(l) * m;
        const double* a1r = a0r + m;
        const double* a1i = a0i + m;
        for (int i = 0; i < m; ++i) {
          cr[i] += w0r * a0r[i] - w0i * a0i[i] + w1r * a1r[i] -
                   w1i * a1i[i];
          ci[i] += w0r * a0i[i] + w0i * a0r[i] + w1r * a1i[i] +
                   w1i * a1r[i];
        }
      }
      if (l < k) {
        const double wr = alr * bjr[l] - ali * bji[l];
        const double wi = alr * bji[l] + ali * bjr[l];
        const double* a0r = s.ar.data() + static_cast<std::size_t>(l) * m;
        const double* a0i = s.ai.data() + static_cast<std::size_t>(l) * m;
        for (int i = 0; i < m; ++i) {
          cr[i] += wr * a0r[i] - wi * a0i[i];
          ci[i] += wr * a0i[i] + wi * a0r[i];
        }
      }
      cplx* cj = c.col(j);
      for (int i = 0; i < m; ++i) cj[i] += cplx(cr[i], ci[i]);
    }
  }

  LuFactors lu_factor(const Matrix& a) const override {
    // Same pivoting path and singular handling as the reference oracle
    // (factors must interoperate); the trailing rank-1 update runs in
    // split arithmetic.
    const int n = a.rows();
    LuFactors f{a, std::vector<int>(n), false};
    Matrix& m = f.lu;
    for (int k = 0; k < n; ++k) {
      int p = k;
      double best = std::abs(m(k, k));
      for (int i = k + 1; i < n; ++i) {
        const double v = std::abs(m(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      f.piv[k] = p;
      if (best == 0.0) {
        f.singular = true;
        continue;
      }
      if (p != k)
        for (int j = 0; j < n; ++j) std::swap(m(k, j), m(p, j));
      const cplx inv_piv = 1.0 / m(k, k);
      for (int i = k + 1; i < n; ++i) m(i, k) *= inv_piv;
      for (int j = k + 1; j < n; ++j) {
        const cplx ukj = m(k, j);
        if (ukj == cplx(0.0)) continue;
        const double ur = ukj.real(), ui = ukj.imag();
        cplx* mj = m.col(j);
        const cplx* mk = m.col(k);
        for (int i = k + 1; i < n; ++i) {
          const double lr = mk[i].real(), li = mk[i].imag();
          mj[i] -= cplx(lr * ur - li * ui, lr * ui + li * ur);
        }
      }
    }
    return f;
  }

  Matrix lu_solve(const LuFactors& f, const Matrix& b) const override {
    const int n = f.lu.rows();
    const int nrhs = b.cols();
    Matrix x = b;
    for (int k = 0; k < n; ++k) {
      const int p = f.piv[k];
      if (p != k)
        for (int j = 0; j < nrhs; ++j) std::swap(x(k, j), x(p, j));
    }
    for (int j = 0; j < nrhs; ++j) {
      cplx* xj = x.col(j);
      for (int k = 0; k < n; ++k) {
        const cplx xk = xj[k];
        if (xk == cplx(0.0)) continue;
        const double xr = xk.real(), xi = xk.imag();
        const cplx* lk = f.lu.col(k);
        for (int i = k + 1; i < n; ++i) {
          const double lr = lk[i].real(), li = lk[i].imag();
          xj[i] -= cplx(lr * xr - li * xi, lr * xi + li * xr);
        }
      }
    }
    for (int j = 0; j < nrhs; ++j) {
      cplx* xj = x.col(j);
      for (int k = n - 1; k >= 0; --k) {
        xj[k] /= f.lu(k, k);
        const cplx xk = xj[k];
        if (xk == cplx(0.0)) continue;
        const double xr = xk.real(), xi = xk.imag();
        const cplx* uk = f.lu.col(k);
        for (int i = 0; i < k; ++i) {
          const double ur = uk[i].real(), ui = uk[i].imag();
          xj[i] -= cplx(ur * xr - ui * xi, ur * xi + ui * xr);
        }
      }
    }
    return x;
  }

  Matrix lu_solve_right(const LuFactors& f, const Matrix& b) const override {
    const int n = f.lu.rows();
    const int nlhs = b.rows();
    Matrix x = b;
    for (int k = 0; k < n; ++k) {
      const cplx* uk = f.lu.col(k);
      cplx* xk = x.col(k);
      for (int j = 0; j < k; ++j) {
        const cplx ujk = uk[j];
        if (ujk == cplx(0.0)) continue;
        const double ur = ujk.real(), ui = ujk.imag();
        const cplx* xj = x.col(j);
        for (int i = 0; i < nlhs; ++i) {
          const double vr = xj[i].real(), vi = xj[i].imag();
          xk[i] -= cplx(vr * ur - vi * ui, vr * ui + vi * ur);
        }
      }
      const cplx inv = 1.0 / uk[k];
      for (int i = 0; i < nlhs; ++i) xk[i] *= inv;
    }
    for (int k = n - 1; k >= 0; --k) {
      cplx* xk = x.col(k);
      for (int j = k + 1; j < n; ++j) {
        const cplx ljk = f.lu(j, k);
        if (ljk == cplx(0.0)) continue;
        const double lr = ljk.real(), li = ljk.imag();
        const cplx* xj = x.col(j);
        for (int i = 0; i < nlhs; ++i) {
          const double vr = xj[i].real(), vi = xj[i].imag();
          xk[i] -= cplx(vr * lr - vi * li, vr * li + vi * lr);
        }
      }
    }
    for (int k = n - 1; k >= 0; --k) {
      const int p = f.piv[k];
      if (p != k)
        for (int i = 0; i < nlhs; ++i) std::swap(x(i, k), x(i, p));
    }
    return x;
  }
};

}  // namespace

std::unique_ptr<Backend> make_native_backend() {
  return std::make_unique<NativeBackend>();
}

}  // namespace qtx::la
