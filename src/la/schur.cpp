#include "la/schur.hpp"

#include <cmath>

#include "common/flops.hpp"
#include "la/gemm.hpp"

namespace qtx::la {
namespace {

/// Complex Givens rotation: unitary G = [[c, s], [-conj(s), c]] with c real
/// such that G [f; g]ᵀ has zero second component.
struct Givens {
  double c;
  cplx s;
};

Givens make_givens(cplx f, cplx g) {
  if (g == cplx(0.0)) return {1.0, 0.0};
  if (f == cplx(0.0)) {
    // Top row becomes s*g = |g|; bottom row vanishes since f = 0.
    return {0.0, std::conj(g) / std::abs(g)};
  }
  const double af = std::abs(f), ag = std::abs(g);
  const double d = std::hypot(af, ag);
  const double c = af / d;
  const cplx s = (f / af) * std::conj(g) / d;
  return {c, s};
}

/// Wilkinson shift: the eigenvalue of the trailing 2x2 block closest to its
/// bottom-right entry.
cplx wilkinson_shift(const Matrix& h, int hi) {
  const cplx a = h(hi - 1, hi - 1), b = h(hi - 1, hi);
  const cplx c = h(hi, hi - 1), d = h(hi, hi);
  const cplx tr = a + d;
  const cplx det = a * d - b * c;
  const cplx disc = std::sqrt(tr * tr - 4.0 * det);
  const cplx l1 = 0.5 * (tr + disc);
  const cplx l2 = 0.5 * (tr - disc);
  return (std::abs(l1 - d) < std::abs(l2 - d)) ? l1 : l2;
}

}  // namespace

HessenbergResult hessenberg(const Matrix& a) {
  QTX_CHECK(a.square());
  const int n = a.rows();
  Matrix h = a;
  Matrix q = Matrix::identity(n);
  FlopLedger::add(8LL * 10 * n * n * n / 3);
  for (int k = 0; k < n - 2; ++k) {
    // Householder vector annihilating H(k+2:n, k).
    double xnorm2 = 0.0;
    for (int i = k + 1; i < n; ++i) xnorm2 += std::norm(h(i, k));
    const double xnorm = std::sqrt(xnorm2);
    if (xnorm == 0.0) continue;
    const cplx x0 = h(k + 1, k);
    const double ax0 = std::abs(x0);
    const cplx phase = (ax0 == 0.0) ? cplx(1.0) : x0 / ax0;
    const cplx alpha = -phase * xnorm;
    std::vector<cplx> v(n - k - 1);
    v[0] = x0 - alpha;
    for (int i = k + 2; i < n; ++i) v[i - k - 1] = h(i, k);
    double vnorm2 = 0.0;
    for (const auto& vi : v) vnorm2 += std::norm(vi);
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;
    // H := P H P with P = I - beta v v† acting on rows/cols k+1..n-1.
    for (int j = k; j < n; ++j) {  // left: rows k+1..n-1
      cplx dot = 0.0;
      for (int i = k + 1; i < n; ++i) dot += std::conj(v[i - k - 1]) * h(i, j);
      dot *= beta;
      for (int i = k + 1; i < n; ++i) h(i, j) -= dot * v[i - k - 1];
    }
    for (int i = 0; i < n; ++i) {  // right: cols k+1..n-1
      cplx dot = 0.0;
      for (int j = k + 1; j < n; ++j) dot += h(i, j) * v[j - k - 1];
      dot *= beta;
      for (int j = k + 1; j < n; ++j)
        h(i, j) -= dot * std::conj(v[j - k - 1]);
    }
    for (int i = 0; i < n; ++i) {  // accumulate Q := Q P
      cplx dot = 0.0;
      for (int j = k + 1; j < n; ++j) dot += q(i, j) * v[j - k - 1];
      dot *= beta;
      for (int j = k + 1; j < n; ++j)
        q(i, j) -= dot * std::conj(v[j - k - 1]);
    }
  }
  // Clean numerical noise below the first subdiagonal.
  for (int j = 0; j < n - 2; ++j)
    for (int i = j + 2; i < n; ++i) h(i, j) = 0.0;
  return {std::move(h), std::move(q)};
}

SchurResult schur(const Matrix& a, int max_iter_per_eig) {
  QTX_CHECK(a.square());
  const int n = a.rows();
  if (n == 0) return {Matrix(), Matrix(), true};
  if (n == 1) return {Matrix::identity(1), a, true};
  auto [h, q] = hessenberg(a);
  FlopLedger::add(8LL * 10 * n * n * n);
  const double eps = 1e-15;
  int hi = n - 1;
  int iter = 0;
  int total_budget = max_iter_per_eig * n;
  bool converged = true;
  while (hi > 0) {
    // Deflate: zero negligible subdiagonals and shrink the active block.
    int lo = hi;
    while (lo > 0) {
      const double sub = std::abs(h(lo, lo - 1));
      if (sub <=
          eps * (std::abs(h(lo - 1, lo - 1)) + std::abs(h(lo, lo)))) {
        h(lo, lo - 1) = 0.0;
        break;
      }
      --lo;
    }
    if (lo == hi) {
      hi -= 1;
      iter = 0;
      continue;
    }
    if (--total_budget < 0) {
      converged = false;
      break;
    }
    // Shifted QR sweep on the active block [lo, hi].
    cplx sigma;
    if (++iter % 12 == 0) {
      // Exceptional shift to escape rare stagnation.
      sigma = h(hi, hi) + cplx(std::abs(h(hi, hi - 1)), 0.0);
    } else {
      sigma = wilkinson_shift(h, hi);
    }
    cplx x = h(lo, lo) - sigma;
    cplx z = h(lo + 1, lo);
    for (int k = lo; k < hi; ++k) {
      const Givens g = make_givens(x, z);
      // Rows k, k+1 (columns >= max(lo, k-1)).
      const int jstart = std::max(lo, k - 1);
      for (int j = jstart; j < n; ++j) {
        const cplx t1 = h(k, j), t2 = h(k + 1, j);
        h(k, j) = g.c * t1 + g.s * t2;
        h(k + 1, j) = -std::conj(g.s) * t1 + g.c * t2;
      }
      // Columns k, k+1 (rows <= min(hi, k+2)); right-multiply by G†.
      const int iend = std::min(hi, k + 2);
      for (int i = 0; i <= iend; ++i) {
        const cplx t1 = h(i, k), t2 = h(i, k + 1);
        h(i, k) = g.c * t1 + std::conj(g.s) * t2;
        h(i, k + 1) = -g.s * t1 + g.c * t2;
      }
      for (int i = 0; i < n; ++i) {  // accumulate Q := Q G†
        const cplx t1 = q(i, k), t2 = q(i, k + 1);
        q(i, k) = g.c * t1 + std::conj(g.s) * t2;
        q(i, k + 1) = -g.s * t1 + g.c * t2;
      }
      if (k < hi - 1) {
        x = h(k + 1, k);
        z = h(k + 2, k);
      }
    }
  }
  // Zero the strictly-lower triangle (numerical dust below subdiagonals that
  // were deflated).
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) h(i, j) = 0.0;
  return {std::move(q), std::move(h), converged};
}

EigResult eig(const Matrix& a) {
  const int n = a.rows();
  SchurResult s = schur(a);
  EigResult out;
  out.converged = s.converged;
  out.values.resize(n);
  for (int i = 0; i < n; ++i) out.values[i] = s.t(i, i);
  // Right eigenvectors of T by back-substitution: (T - lambda_j I) y = 0 with
  // y_j = 1. Small-denominator guard perturbs near-defective pairs.
  Matrix y(n, n);
  for (int j = 0; j < n; ++j) {
    y(j, j) = 1.0;
    for (int i = j - 1; i >= 0; --i) {
      cplx sum = 0.0;
      for (int k = i + 1; k <= j; ++k) sum += s.t(i, k) * y(k, j);
      cplx denom = s.t(i, i) - s.t(j, j);
      const double scale = std::abs(s.t(i, i)) + std::abs(s.t(j, j)) + 1.0;
      if (std::abs(denom) < 1e-14 * scale)
        denom = cplx(1e-14 * scale, 1e-14 * scale);
      y(i, j) = -sum / denom;
    }
  }
  out.vectors = mm(s.u, y);
  for (int j = 0; j < n; ++j) {
    double nrm2 = 0.0;
    for (int i = 0; i < n; ++i) nrm2 += std::norm(out.vectors(i, j));
    const double inv = 1.0 / std::sqrt(nrm2);
    for (int i = 0; i < n; ++i) out.vectors(i, j) *= inv;
  }
  return out;
}

}  // namespace qtx::la
