#include "la/qr.hpp"

#include <cmath>

#include "common/flops.hpp"
#include "la/gemm.hpp"

namespace qtx::la {

QrFactors qr_factor(const Matrix& a) {
  const int m = a.rows(), n = a.cols();
  QTX_CHECK_MSG(m >= n, "qr_factor requires rows >= cols");
  Matrix r = a;
  // Householder vectors stored per column; Q accumulated afterwards.
  std::vector<std::vector<cplx>> vs(n);
  std::vector<cplx> betas(n);
  FlopLedger::add(8LL * 2 * m * n * n / 3);
  for (int k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating R(k+1:m, k).
    double xnorm2 = 0.0;
    for (int i = k; i < m; ++i) xnorm2 += std::norm(r(i, k));
    const double xnorm = std::sqrt(xnorm2);
    std::vector<cplx> v(m - k);
    if (xnorm == 0.0) {
      betas[k] = 0.0;
      vs[k] = std::move(v);
      continue;
    }
    const cplx x0 = r(k, k);
    const double ax0 = std::abs(x0);
    // alpha = -sign(x0) * ||x||, with sign(0) := 1.
    const cplx phase = (ax0 == 0.0) ? cplx(1.0) : x0 / ax0;
    const cplx alpha = -phase * xnorm;
    v[0] = x0 - alpha;
    for (int i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (const auto& vi : v) vnorm2 += std::norm(vi);
    const cplx beta = (vnorm2 == 0.0) ? cplx(0.0) : cplx(2.0 / vnorm2);
    // R := (I - beta v v†) R on the trailing panel.
    for (int j = k; j < n; ++j) {
      cplx dot = 0.0;
      for (int i = k; i < m; ++i) dot += std::conj(v[i - k]) * r(i, j);
      dot *= beta;
      for (int i = k; i < m; ++i) r(i, j) -= dot * v[i - k];
    }
    betas[k] = beta;
    vs[k] = std::move(v);
  }
  // Accumulate thin Q by applying the reflectors to the leading columns of I.
  Matrix q(m, n);
  for (int j = 0; j < n; ++j) q(j, j) = 1.0;
  for (int k = n - 1; k >= 0; --k) {
    const auto& v = vs[k];
    const cplx beta = betas[k];
    if (beta == cplx(0.0)) continue;
    for (int j = 0; j < n; ++j) {
      cplx dot = 0.0;
      for (int i = k; i < m; ++i) dot += std::conj(v[i - k]) * q(i, j);
      dot *= beta;
      for (int i = k; i < m; ++i) q(i, j) -= dot * v[i - k];
    }
  }
  // Zero the strictly-lower part of R and truncate to n x n.
  Matrix rr(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) rr(i, j) = r(i, j);
  return {std::move(q), std::move(rr)};
}

Matrix qr_least_squares(const Matrix& a, const Matrix& b) {
  const auto [q, r] = qr_factor(a);
  // x = R^-1 Q† b via back substitution.
  Matrix y(q.cols(), b.cols());
  gemm(1.0, q, Op::kConjTrans, b, Op::kNone, 0.0, y);
  const int n = r.rows();
  for (int j = 0; j < y.cols(); ++j) {
    for (int k = n - 1; k >= 0; --k) {
      QTX_CHECK_MSG(std::abs(r(k, k)) > 0.0, "rank-deficient least squares");
      y(k, j) /= r(k, k);
      const cplx yk = y(k, j);
      for (int i = 0; i < k; ++i) y(i, j) -= r(i, k) * yk;
    }
  }
  return y;
}

}  // namespace qtx::la
