#pragma once

/// \file nested_dissection.hpp
/// Spatial domain decomposition of the selected solver (paper §5.4, Fig. 5).
///
/// The block-tridiagonal system is split into P_S contiguous partitions. The
/// top partition eliminates downward, the bottom upward, and each middle
/// partition eliminates its interior while carrying fill-in blocks that
/// couple the frontier to the partition's top boundary — the orange blocks
/// of Fig. 5, an O(N_B / P_S) extra workload that makes middle partitions
/// ~1.6x more expensive than boundary ones (paper Table 5). The surviving
/// boundary unknowns form a reduced block-tridiagonal system of 2 P_S - 2
/// blocks, solved with the sequential RGF; back-substitution then recovers
/// the selected blocks inside every partition concurrently.
///
/// Both the retarded selected inverse and the quadratic lesser/greater
/// solves are decomposed; the RHS undergoes the same congruence transform as
/// in the sequential solver, extended with fill tracking.

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "rgf/sequential.hpp"

namespace qtx::rgf {

struct NdOptions {
  int num_partitions = 2;  ///< paper's P_S
  int num_threads = 1;     ///< partitions processed concurrently if > 1
  bool symmetrize = true;  ///< paper §5.2 on-the-fly symmetrization
  /// Apply the nested-dissection scheme to the reduced system recursively
  /// (paper §5.4: "These additional costs can nevertheless be distributed
  /// over multiple ranks by applying the nested-dissection scheme to the
  /// reduced system recursively"). Levels halve the partition count until
  /// the reduced system is small.
  bool recursive_reduced = false;
};

/// Per-partition workload accounting for the Table 5 reproduction.
struct PartitionStats {
  int first_block = 0;
  int last_block = 0;
  std::int64_t flops = 0;
  double seconds = 0.0;
};

struct NdSolution {
  SelectedSolution sel;
  std::vector<PartitionStats> stats;  ///< one entry per partition
  std::int64_t reduced_flops = 0;     ///< reduced-system solve workload
};

/// Distributed selected solve; bit-compatible (up to roundoff) with
/// rgf_solve. Requires num_blocks >= 2 * num_partitions.
NdSolution nd_solve(const BlockTridiag& m, const BlockTridiag& b_lesser,
                    const BlockTridiag& b_greater, const NdOptions& opt = {});

/// Contiguous partition ranges [first, last] for nb blocks over ps parts.
std::vector<std::pair<int, int>> nd_partition_ranges(int nb, int ps);

}  // namespace qtx::rgf
