#pragma once

/// \file sequential.hpp
/// Sequential recursive Green's function (RGF) solver (paper §4.3.2).
/// Computes the "selected" solution of the quadratic matrix problem
///
///     M X≶ M† = B≶            (paper Eq. 1, with M = eM(E))
///
/// together with the selected inverse X^R = M^{-1}: the diagonal and first
/// off-diagonal blocks of X^R and X≶, which is everything the r_cut-truncated
/// NEGF+GW pipeline consumes. The implementation follows the forward/backward
/// Schur-complement recursions of Eqs. 9-12, generalized to non-Hermitian M
/// (the congruence transform of the right-hand side uses M_{i,i-1}†, which
/// coincides with the paper's eM†_{i-1,i} for Hermitian patterns).

#include "bsparse/bsparse.hpp"

namespace qtx::rgf {

using bt::BlockTridiag;
using la::Matrix;

/// Selected blocks of the retarded and lesser/greater solutions.
struct SelectedSolution {
  BlockTridiag xr;  ///< selected inverse M^{-1}
  BlockTridiag xl;  ///< lesser  M^{-1} B< M^{-†}
  BlockTridiag xg;  ///< greater M^{-1} B> M^{-†}
};

struct RgfOptions {
  /// Enforce X≶_ij = -X≶*_ji on the outputs (paper §5.2 on-the-fly
  /// symmetrization). Requires B≶ anti-Hermitian for consistency.
  bool symmetrize = true;
};

/// Selected inverse only (retarded problem).
BlockTridiag rgf_retarded(const BlockTridiag& m);

/// Full selected solve for X^R, X<, X>.
SelectedSolution rgf_solve(const BlockTridiag& m, const BlockTridiag& b_lesser,
                           const BlockTridiag& b_greater,
                           const RgfOptions& opt = {});

/// Dense reference (tests, ablation benches): materializes M^{-1} and
/// M^{-1} B M^{-†} and extracts the BT pattern.
SelectedSolution reference_solve(const BlockTridiag& m,
                                 const BlockTridiag& b_lesser,
                                 const BlockTridiag& b_greater);

/// Dense selected inverse reference.
BlockTridiag reference_retarded(const BlockTridiag& m);

/// Extract the BT pattern from a dense matrix (testing aid).
BlockTridiag extract_bt(const Matrix& dense, int nb, int bs);

}  // namespace qtx::rgf
