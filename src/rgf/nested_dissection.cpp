#include "rgf/nested_dissection.hpp"

#include <string>

#include "common/flops.hpp"
#include "common/timer.hpp"

namespace qtx::rgf {
namespace {

/// Congruence update of one RHS entry:
///   B̂_ab -= L_a B_jb + B_aj L_b† - L_a B_jj L_b†.
/// Helper for the repeated pattern; callers pass the relevant blocks.
Matrix congruence(const Matrix& b_ab, const Matrix& l_a, const Matrix& b_jb,
                  const Matrix& b_aj, const Matrix& l_b, const Matrix& b_jj) {
  Matrix v = b_ab;
  v -= la::mm(l_a, b_jb);
  v -= la::mmh(b_aj, l_b);
  v += la::mmh(la::mm(l_a, b_jj), l_b);
  return v;
}

/// Elimination trace of one middle partition for one RHS.
struct RhsTrace {
  // Snapshots at the moment block j was eliminated (j = s+1 .. e-1).
  std::vector<Matrix> rjj, rsj, rjs;
  // Reduced contributions after the last elimination.
  Matrix rss, rse, res, ree;
};

/// Elimination trace of one middle partition (LHS).
struct MidTrace {
  std::vector<Matrix> x;         // D_j^{-1} at elimination time
  std::vector<Matrix> fsj, fjs;  // fills M̂_{s,j}, M̂_{j,s} at elimination
  Matrix ds, de, fse, fes;       // reduced contributions
  RhsTrace lt, gt;
};

/// Elimination trace of the top (or bottom) partition for both RHSs.
struct EdgeTrace {
  std::vector<Matrix> x;     // local inverses along the sweep
  std::vector<Matrix> bh_l;  // bhat (lesser) at elimination time
  std::vector<Matrix> bh_g;  // bhat (greater)
  Matrix d, rl, rg;          // reduced contributions (boundary block)
};

EdgeTrace eliminate_top(const BlockTridiag& m, const BlockTridiag& bl,
                        const BlockTridiag& bg, int e) {
  EdgeTrace t;
  t.x.resize(e);
  t.bh_l.resize(e);
  t.bh_g.resize(e);
  Matrix d = m.diag(0);
  Matrix rl = bl.diag(0);
  Matrix rg = bg.diag(0);
  for (int j = 0; j < e; ++j) {
    t.x[j] = la::inverse(d);
    t.bh_l[j] = rl;
    t.bh_g[j] = rg;
    const Matrix l = la::mm(m.lower(j), t.x[j]);
    d = m.diag(j + 1) - la::mm(l, m.upper(j));
    rl = congruence(bl.diag(j + 1), l, bl.upper(j), bl.lower(j), l, t.bh_l[j]);
    rg = congruence(bg.diag(j + 1), l, bg.upper(j), bg.lower(j), l, t.bh_g[j]);
  }
  t.d = std::move(d);
  t.rl = std::move(rl);
  t.rg = std::move(rg);
  return t;
}

EdgeTrace eliminate_bottom(const BlockTridiag& m, const BlockTridiag& bl,
                           const BlockTridiag& bg, int s) {
  const int nb = m.num_blocks();
  EdgeTrace t;
  const int count = nb - 1 - s;
  t.x.resize(count);
  t.bh_l.resize(count);
  t.bh_g.resize(count);
  Matrix d = m.diag(nb - 1);
  Matrix rl = bl.diag(nb - 1);
  Matrix rg = bg.diag(nb - 1);
  for (int j = nb - 1; j > s; --j) {
    const int idx = j - s - 1;
    t.x[idx] = la::inverse(d);
    t.bh_l[idx] = rl;
    t.bh_g[idx] = rg;
    const Matrix l = la::mm(m.upper(j - 1), t.x[idx]);
    d = m.diag(j - 1) - la::mm(l, m.lower(j - 1));
    rl = congruence(bl.diag(j - 1), l, bl.lower(j - 1), bl.upper(j - 1), l,
                    t.bh_l[idx]);
    rg = congruence(bg.diag(j - 1), l, bg.lower(j - 1), bg.upper(j - 1), l,
                    t.bh_g[idx]);
  }
  t.d = std::move(d);
  t.rl = std::move(rl);
  t.rg = std::move(rg);
  return t;
}

MidTrace eliminate_middle(const BlockTridiag& m, const BlockTridiag& bl,
                          const BlockTridiag& bg, int s, int e) {
  MidTrace t;
  const int count = e - s - 1;
  t.x.resize(count);
  t.fsj.resize(count);
  t.fjs.resize(count);
  t.lt.rjj.resize(count);
  t.lt.rsj.resize(count);
  t.lt.rjs.resize(count);
  t.gt.rjj.resize(count);
  t.gt.rsj.resize(count);
  t.gt.rjs.resize(count);
  // Frontier state.
  Matrix ds = m.diag(s);
  Matrix dj = (count > 0) ? m.diag(s + 1) : Matrix();
  Matrix fsj = (count > 0) ? m.upper(s) : Matrix();
  Matrix fjs = (count > 0) ? m.lower(s) : Matrix();
  Matrix rss_l = bl.diag(s), rss_g = bg.diag(s);
  Matrix rsj_l = (count > 0) ? bl.upper(s) : Matrix();
  Matrix rjs_l = (count > 0) ? bl.lower(s) : Matrix();
  Matrix rjj_l = (count > 0) ? bl.diag(s + 1) : Matrix();
  Matrix rsj_g = (count > 0) ? bg.upper(s) : Matrix();
  Matrix rjs_g = (count > 0) ? bg.lower(s) : Matrix();
  Matrix rjj_g = (count > 0) ? bg.diag(s + 1) : Matrix();
  for (int j = s + 1; j < e; ++j) {
    const int idx = j - s - 1;
    t.x[idx] = la::inverse(dj);
    t.fsj[idx] = fsj;
    t.fjs[idx] = fjs;
    t.lt.rjj[idx] = rjj_l;
    t.lt.rsj[idx] = rsj_l;
    t.lt.rjs[idx] = rjs_l;
    t.gt.rjj[idx] = rjj_g;
    t.gt.rsj[idx] = rsj_g;
    t.gt.rjs[idx] = rjs_g;
    const Matrix& xj = t.x[idx];
    const Matrix ls = la::mm(fsj, xj);              // L_s = F_sj x_j
    const Matrix lnext = la::mm(m.lower(j), xj);    // L_{j+1} = M_{j+1,j} x_j
    // LHS updates.
    Matrix ds_new = ds - la::mm(ls, fjs);
    Matrix fsj_new = la::mm(ls, m.upper(j)) * cplx(-1.0);
    Matrix fjs_new = la::mm(lnext, fjs) * cplx(-1.0);
    Matrix dj_new = m.diag(j + 1) - la::mm(lnext, m.upper(j));
    // RHS updates, pairs (a,b) in {s, j+1}^2. Originals: B̂_{s,j+1} = 0,
    // B̂_{j+1,j+1} = B diag, B̂_{j,j+1} = B upper, B̂_{j+1,j} = B lower.
    auto rhs_update = [&](const BlockTridiag& b, Matrix& rss, Matrix& rsj,
                          Matrix& rjs, Matrix& rjj) {
      const Matrix lsr = la::mm(ls, rjj);    // L_s B̂_jj
      const Matrix lnr = la::mm(lnext, rjj); // L_{j+1} B̂_jj
      Matrix rss_new = rss;
      rss_new -= la::mm(ls, rjs);
      rss_new -= la::mmh(rsj, ls);
      rss_new += la::mmh(lsr, ls);
      Matrix rsnext(rss.rows(), rss.cols());
      rsnext -= la::mm(ls, b.upper(j));
      rsnext -= la::mmh(rsj, lnext);
      rsnext += la::mmh(lsr, lnext);
      Matrix rnexts(rss.rows(), rss.cols());
      rnexts -= la::mm(lnext, rjs);
      rnexts -= la::mmh(b.lower(j), ls);
      rnexts += la::mmh(lnr, ls);
      Matrix rnextnext = b.diag(j + 1);
      rnextnext -= la::mm(lnext, b.upper(j));
      rnextnext -= la::mmh(b.lower(j), lnext);
      rnextnext += la::mmh(lnr, lnext);
      rss = std::move(rss_new);
      rsj = std::move(rsnext);
      rjs = std::move(rnexts);
      rjj = std::move(rnextnext);
    };
    rhs_update(bl, rss_l, rsj_l, rjs_l, rjj_l);
    rhs_update(bg, rss_g, rsj_g, rjs_g, rjj_g);
    ds = std::move(ds_new);
    dj = std::move(dj_new);
    fsj = std::move(fsj_new);
    fjs = std::move(fjs_new);
  }
  t.ds = std::move(ds);
  t.de = (count > 0) ? std::move(dj) : m.diag(e);
  t.fse = (count > 0) ? std::move(fsj) : m.upper(s);
  t.fes = (count > 0) ? std::move(fjs) : m.lower(s);
  t.lt.rss = std::move(rss_l);
  t.lt.rse = (count > 0) ? std::move(rsj_l) : bl.upper(s);
  t.lt.res = (count > 0) ? std::move(rjs_l) : bl.lower(s);
  t.lt.ree = (count > 0) ? std::move(rjj_l) : bl.diag(e);
  t.gt.rss = std::move(rss_g);
  t.gt.rse = (count > 0) ? std::move(rsj_g) : bg.upper(s);
  t.gt.res = (count > 0) ? std::move(rjs_g) : bg.lower(s);
  t.gt.ree = (count > 0) ? std::move(rjj_g) : bg.diag(e);
  return t;
}

/// Back-substitute the top partition (interior j = e-1 .. 0, neighbor set
/// {j+1}); seeds X_{e,e} from the reduced solve. Standard sequential RGF
/// backward recursions.
void backsub_top(const BlockTridiag& m, const BlockTridiag& bl,
                 const BlockTridiag& bg, const EdgeTrace& t, int e,
                 SelectedSolution& out) {
  for (int j = e - 1; j >= 0; --j) {
    const Matrix& xj = t.x[j];
    const Matrix& g1 = out.xr.diag(j + 1);
    const Matrix xmu = la::mm(xj, m.upper(j));
    const Matrix mlx = la::mm(m.lower(j), xj);
    out.xr.upper(j) = la::mm(xmu, g1) * cplx(-1.0);
    out.xr.lower(j) = la::mm(g1, mlx) * cplx(-1.0);
    out.xr.diag(j) = xj + la::mmm(xmu, g1, mlx);
    auto lesser_step = [&](const BlockTridiag& b, const Matrix& bh,
                           BlockTridiag& xo) {
      const Matrix& gl1 = xo.diag(j + 1);
      const Matrix k = la::mm(g1, mlx) * cplx(-1.0);  // [M^-1]_{j+1,j}
      Matrix inner2 = la::mm(k, bh);
      inner2 += la::mm(g1, b.lower(j));
      Matrix inner3 = la::mmh(bh, k);
      inner3 += la::mmh(b.upper(j), g1);
      Matrix d = la::mmmh(xj, bh, xj);
      d -= la::mmh(la::mmm(xj, m.upper(j), inner2), xj);
      d -= la::mmh(la::mmh(la::mm(xj, inner3), m.upper(j)), xj);
      d += la::mmh(la::mmh(la::mmm(xj, m.upper(j), gl1), m.upper(j)), xj);
      xo.diag(j) = std::move(d);
      Matrix up = inner3;
      up -= la::mm(m.upper(j), gl1);
      xo.upper(j) = la::mm(xj, up);
      Matrix lo = inner2;
      lo -= la::mmh(gl1, m.upper(j));
      xo.lower(j) = la::mmh(lo, xj);
    };
    lesser_step(bl, t.bh_l[j], out.xl);
    lesser_step(bg, t.bh_g[j], out.xg);
  }
}

/// Back-substitute the bottom partition (interior j = s+1 .. nb-1 upward,
/// neighbor set {j-1}); seeds X_{s,s}.
void backsub_bottom(const BlockTridiag& m, const BlockTridiag& bl,
                    const BlockTridiag& bg, const EdgeTrace& t, int s,
                    SelectedSolution& out) {
  const int nb = m.num_blocks();
  for (int j = s + 1; j < nb; ++j) {
    const int idx = j - s - 1;
    const Matrix& xj = t.x[idx];
    const Matrix& g0 = out.xr.diag(j - 1);
    const Matrix xml = la::mm(xj, m.lower(j - 1));  // x_j M_{j,j-1}
    const Matrix mux = la::mm(m.upper(j - 1), xj);  // M_{j-1,j} x_j
    out.xr.lower(j - 1) = la::mm(xml, g0) * cplx(-1.0);  // X_{j,j-1}
    out.xr.upper(j - 1) = la::mm(g0, mux) * cplx(-1.0);  // X_{j-1,j}
    out.xr.diag(j) = xj + la::mmm(xml, g0, mux);
    auto lesser_step = [&](const BlockTridiag& b, const Matrix& bh,
                           BlockTridiag& xo) {
      const Matrix& gl0 = xo.diag(j - 1);
      const Matrix k = la::mm(g0, mux) * cplx(-1.0);  // [M^-1]_{j-1,j}
      Matrix inner2 = la::mm(k, bh);
      inner2 += la::mm(g0, b.upper(j - 1));
      Matrix inner3 = la::mmh(bh, k);
      inner3 += la::mmh(b.lower(j - 1), g0);
      Matrix d = la::mmmh(xj, bh, xj);
      d -= la::mmh(la::mmm(xj, m.lower(j - 1), inner2), xj);
      d -= la::mmh(la::mmh(la::mm(xj, inner3), m.lower(j - 1)), xj);
      d += la::mmh(la::mmh(la::mmm(xj, m.lower(j - 1), gl0), m.lower(j - 1)),
                   xj);
      xo.diag(j) = std::move(d);
      // X≶_{j,j-1} = x (bh K† + B_{j,j-1} G0† - M_{j,j-1} Gl0).
      Matrix lo = inner3;
      lo -= la::mm(m.lower(j - 1), gl0);
      xo.lower(j - 1) = la::mm(xj, lo);
      // X≶_{j-1,j} = (K bh + G0 B_{j-1,j} - Gl0 M_{j,j-1}†) x†.
      Matrix up = inner2;
      up -= la::mmh(gl0, m.lower(j - 1));
      xo.upper(j - 1) = la::mmh(up, xj);
    };
    lesser_step(bl, t.bh_l[idx], out.xl);
    lesser_step(bg, t.bh_g[idx], out.xg);
  }
}

/// Back-substitute a middle partition (interior j = e-1 .. s+1, neighbor set
/// {s, j+1}); seeds X at the four (s/e) corner combinations. Maintains the
/// running cross blocks X_{s,j}, X_{j,s} (retarded and lesser/greater).
void backsub_middle(const BlockTridiag& m, const BlockTridiag& bl,
                    const BlockTridiag& bg, const MidTrace& t, int s, int e,
                    const Matrix& xr_se, const Matrix& xr_es,
                    const Matrix& xl_se, const Matrix& xl_es,
                    const Matrix& xg_se, const Matrix& xg_es,
                    SelectedSolution& out) {
  // Running "known" blocks, initialized at the (s, e) pair.
  Matrix xr_sn = xr_se, xr_ns = xr_es;      // X^R_{s,j+1}, X^R_{j+1,s}
  Matrix xl_sn = xl_se, xl_ns = xl_es;
  Matrix xg_sn = xg_se, xg_ns = xg_es;
  const Matrix& xr_ss = out.xr.diag(s);
  for (int j = e - 1; j > s; --j) {
    const int idx = j - s - 1;
    const Matrix& xj = t.x[idx];
    const Matrix& fsj = t.fsj[idx];
    const Matrix& fjs = t.fjs[idx];
    const Matrix& mu = m.upper(j);   // M̂_{j,j+1}
    const Matrix& ml = m.lower(j);   // M̂_{j+1,j}
    const Matrix& xr_nn = out.xr.diag(j + 1);
    // Retarded: X_{j,b} = -x_j sum_a M̂_{ja} X_{ab};
    //           X_{b,j} = -sum_a X_{ba} M̂_{aj} x_j.
    Matrix xr_js = la::mm(xj, la::mm(fjs, xr_ss) + la::mm(mu, xr_ns)) *
                   cplx(-1.0);
    Matrix xr_jn = la::mm(xj, la::mm(fjs, xr_sn) + la::mm(mu, xr_nn)) *
                   cplx(-1.0);
    Matrix xr_sj = la::mm(la::mm(xr_ss, fsj) + la::mm(xr_sn, ml), xj) *
                   cplx(-1.0);
    Matrix xr_nj = la::mm(la::mm(xr_ns, fsj) + la::mm(xr_nn, ml), xj) *
                   cplx(-1.0);
    // X_jj = x_j + x_j [sum_ab M̂_{ja} X_{ab} M̂_{bj}] x_j.
    Matrix mid = la::mmm(fjs, xr_ss, fsj);
    mid += la::mmm(fjs, xr_sn, ml);
    mid += la::mmm(mu, xr_ns, fsj);
    mid += la::mmm(mu, xr_nn, ml);
    out.xr.diag(j) = xj + la::mmm(xj, mid, xj);
    out.xr.upper(j) = xr_jn;
    out.xr.lower(j) = xr_nj;
    if (j == s + 1) {
      out.xr.upper(s) = xr_sj;
      out.xr.lower(s) = xr_js;
    }
    // Lesser/greater: general two-neighbor formulas (see sequential.hpp
    // derivation). K_a = [M^-1]_{a,j} = -sum_b X^R_{ab} M̂_{bj} x_j.
    auto lg_step = [&](const BlockTridiag& b, const RhsTrace& rt,
                       BlockTridiag& xo, Matrix& x_sn, Matrix& x_ns) {
      const Matrix& bh = rt.rjj[idx];
      const Matrix& bsj = rt.rsj[idx];  // B̂_{s,j}
      const Matrix& bjs = rt.rjs[idx];  // B̂_{j,s}
      const Matrix& bjn = b.upper(j);   // B̂_{j,j+1} (original)
      const Matrix& bnj = b.lower(j);   // B̂_{j+1,j}
      const Matrix& x_nn = xo.diag(j + 1);
      const Matrix& x_ss_l = xo.diag(s);
      const Matrix k_s = xr_sj;  // [M^-1]_{s,j} computed above
      const Matrix k_n = xr_nj;  // [M^-1]_{j+1,j}
      // Phi_a = K_a bh + sum_b X^R_{ab} B̂_{bj}  (a in {s, j+1}).
      Matrix phi_s = la::mm(k_s, bh);
      phi_s += la::mm(xr_ss, bsj);
      phi_s += la::mm(xr_sn, bnj);
      Matrix phi_n = la::mm(k_n, bh);
      phi_n += la::mm(xr_ns, bsj);
      phi_n += la::mm(xr_nn, bnj);
      // Psi_b = bh K_b† + sum_a B̂_{ja} X^R_{ba}†  (b in {s, j+1}).
      Matrix psi_s = la::mmh(bh, k_s);
      psi_s += la::mmh(bjs, xr_ss);
      psi_s += la::mmh(bjn, xr_sn);
      Matrix psi_n = la::mmh(bh, k_n);
      psi_n += la::mmh(bjs, xr_ns);
      psi_n += la::mmh(bjn, xr_nn);
      // Diagonal: T1 + T2 + T3 + T4.
      Matrix d = la::mmmh(xj, bh, xj);
      Matrix t2 = la::mm(fjs, phi_s);
      t2 += la::mm(mu, phi_n);
      d -= la::mmh(la::mm(xj, t2), xj);
      Matrix t3 = la::mmh(psi_s, fjs);
      t3 += la::mmh(psi_n, mu);
      d -= la::mmh(la::mm(xj, t3), xj);
      Matrix t4 = la::mmh(la::mm(fjs, x_ss_l), fjs);
      t4 += la::mmh(la::mm(fjs, x_sn), mu);
      t4 += la::mmh(la::mm(mu, x_ns), fjs);
      t4 += la::mmh(la::mm(mu, x_nn), mu);
      d += la::mmh(la::mm(xj, t4), xj);
      xo.diag(j) = std::move(d);
      // Cross blocks: X≶_{j,b} = x_j (Psi_b - sum_a M̂_{ja} X≶_{ab}),
      //               X≶_{b,j} = (Phi_b - sum_a X≶_{ba} M̂_{aj}†...) x_j†.
      Matrix row_n = psi_n;
      row_n -= la::mm(fjs, x_sn);
      row_n -= la::mm(mu, x_nn);
      Matrix row_s = psi_s;
      row_s -= la::mm(fjs, x_ss_l);
      row_s -= la::mm(mu, x_ns);
      Matrix col_n = phi_n;
      col_n -= la::mmh(x_ns, fjs);
      col_n -= la::mmh(x_nn, mu);
      Matrix col_s = phi_s;
      col_s -= la::mmh(x_ss_l, fjs);
      col_s -= la::mmh(x_sn, mu);
      xo.upper(j) = la::mm(xj, row_n);          // X≶_{j,j+1}
      xo.lower(j) = la::mmh(col_n, xj);         // X≶_{j+1,j}
      Matrix x_js = la::mm(xj, row_s);          // X≶_{j,s}
      Matrix x_sj = la::mmh(col_s, xj);         // X≶_{s,j}
      if (j == s + 1) {
        xo.upper(s) = std::move(x_sj);
        xo.lower(s) = std::move(x_js);
      } else {
        x_sn = std::move(x_sj);
        x_ns = std::move(x_js);
      }
    };
    lg_step(bl, t.lt, out.xl, xl_sn, xl_ns);
    lg_step(bg, t.gt, out.xg, xg_sn, xg_ns);
    // Advance the retarded running blocks.
    if (j != s + 1) {
      xr_sn = std::move(xr_sj);
      xr_ns = std::move(xr_js);
    }
  }
}

}  // namespace

namespace {
/// Recursion depth marker so nested calls attribute FLOPs to distinct
/// ledger phases (outer per-partition stats stay clean).
thread_local int g_nd_depth = 0;
}  // namespace

std::vector<std::pair<int, int>> nd_partition_ranges(int nb, int ps) {
  QTX_CHECK_MSG(nb >= 2 * ps, "need >= 2 blocks per partition");
  std::vector<std::pair<int, int>> ranges(ps);
  const int base = nb / ps, extra = nb % ps;
  int start = 0;
  for (int p = 0; p < ps; ++p) {
    const int size = base + (p < extra ? 1 : 0);
    ranges[p] = {start, start + size - 1};
    start += size;
  }
  return ranges;
}

NdSolution nd_solve(const BlockTridiag& m, const BlockTridiag& b_lesser,
                    const BlockTridiag& b_greater, const NdOptions& opt) {
  const int nb = m.num_blocks(), bs = m.block_size();
  const int ps = opt.num_partitions;
  QTX_CHECK(ps >= 2);
  const auto ranges = nd_partition_ranges(nb, ps);
  const auto flops_baseline = FlopLedger::by_phase();
  NdSolution nd;
  nd.stats.resize(ps);
  for (int p = 0; p < ps; ++p) {
    nd.stats[p].first_block = ranges[p].first;
    nd.stats[p].last_block = ranges[p].second;
  }
  // ---------------------------------------------------------------- phase 1
  // Partition eliminations (parallel).
  EdgeTrace top, bottom;
  std::vector<MidTrace> mids(ps);
  const std::string phase_prefix =
      "nd:d" + std::to_string(g_nd_depth) + ":partition";
  auto run_elim = [&](int p) {
    Stopwatch sw;
    FlopLedger::begin_phase(phase_prefix + std::to_string(p));
    if (p == 0) {
      top = eliminate_top(m, b_lesser, b_greater, ranges[0].second);
    } else if (p == ps - 1) {
      bottom = eliminate_bottom(m, b_lesser, b_greater, ranges[p].first);
    } else {
      mids[p] = eliminate_middle(m, b_lesser, b_greater, ranges[p].first,
                                 ranges[p].second);
    }
    nd.stats[p].seconds += sw.seconds();
  };
  if (opt.num_threads > 1) {
    std::vector<std::thread> workers;
    for (int p = 0; p < ps; ++p) workers.emplace_back(run_elim, p);
    for (auto& w : workers) w.join();
  } else {
    for (int p = 0; p < ps; ++p) run_elim(p);
  }
  // ---------------------------------------------------------------- phase 2
  // Reduced system over the boundary blocks [e_0, s_1, e_1, ..., s_{ps-1}].
  FlopLedger::begin_phase("nd:reduced");
  const std::int64_t flops_before_reduced = FlopLedger::total();
  const int nr = 2 * ps - 2;
  BlockTridiag rm(nr, bs), rbl(nr, bs), rbg(nr, bs);
  // Boundary index bookkeeping: reduced index -> original block.
  std::vector<int> orig(nr);
  {
    int r = 0;
    orig[r++] = ranges[0].second;
    for (int p = 1; p < ps - 1; ++p) {
      orig[r++] = ranges[p].first;
      orig[r++] = ranges[p].second;
    }
    orig[r++] = ranges[ps - 1].first;
  }
  // Diagonals.
  rm.diag(0) = top.d;
  rbl.diag(0) = top.rl;
  rbg.diag(0) = top.rg;
  {
    int r = 1;
    for (int p = 1; p < ps - 1; ++p) {
      rm.diag(r) = mids[p].ds;
      rbl.diag(r) = mids[p].lt.rss;
      rbg.diag(r) = mids[p].gt.rss;
      rm.diag(r + 1) = mids[p].de;
      rbl.diag(r + 1) = mids[p].lt.ree;
      rbg.diag(r + 1) = mids[p].gt.ree;
      r += 2;
    }
    rm.diag(nr - 1) = bottom.d;
    rbl.diag(nr - 1) = bottom.rl;
    rbg.diag(nr - 1) = bottom.rg;
  }
  // Couplings: alternate between original inter-partition blocks and the
  // fill blocks internal to middle partitions.
  for (int r = 0; r + 1 < nr; ++r) {
    const int a = orig[r], b = orig[r + 1];
    if (b == a + 1) {  // inter-partition boundary: original blocks
      rm.upper(r) = m.upper(a);
      rm.lower(r) = m.lower(a);
      rbl.upper(r) = b_lesser.upper(a);
      rbl.lower(r) = b_lesser.lower(a);
      rbg.upper(r) = b_greater.upper(a);
      rbg.lower(r) = b_greater.lower(a);
    } else {  // (s_p, e_p) pair inside a middle partition: fills
      const int p = 1 + (r - 1) / 2;
      rm.upper(r) = mids[p].fse;
      rm.lower(r) = mids[p].fes;
      rbl.upper(r) = mids[p].lt.rse;
      rbl.lower(r) = mids[p].lt.res;
      rbg.upper(r) = mids[p].gt.rse;
      rbg.lower(r) = mids[p].gt.res;
    }
  }
  SelectedSolution red;
  if (opt.recursive_reduced && nr >= 8) {
    // Recurse on the reduced BT system with half the partitions (§5.4's
    // extension); the recursion bottoms out in the sequential solver.
    NdOptions ropt = opt;
    ropt.num_partitions = std::max(2, std::min(ps / 2, nr / 2));
    ropt.num_threads = std::min(opt.num_threads, ropt.num_partitions);
    ropt.symmetrize = false;
    ++g_nd_depth;
    red = nd_solve(rm, rbl, rbg, ropt).sel;
    --g_nd_depth;
  } else {
    RgfOptions ropt;
    ropt.symmetrize = false;  // symmetrization applies once, at the end
    red = rgf_solve(rm, rbl, rbg, ropt);
  }
  nd.reduced_flops = FlopLedger::total() - flops_before_reduced;
  // Scatter the reduced solution to the output boundary blocks.
  nd.sel.xr = BlockTridiag(nb, bs);
  nd.sel.xl = BlockTridiag(nb, bs);
  nd.sel.xg = BlockTridiag(nb, bs);
  for (int r = 0; r < nr; ++r) {
    nd.sel.xr.diag(orig[r]) = red.xr.diag(r);
    nd.sel.xl.diag(orig[r]) = red.xl.diag(r);
    nd.sel.xg.diag(orig[r]) = red.xg.diag(r);
  }
  for (int r = 0; r + 1 < nr; ++r) {
    const int a = orig[r];
    if (orig[r + 1] == a + 1) {  // adjacent in the original ordering
      nd.sel.xr.upper(a) = red.xr.upper(r);
      nd.sel.xr.lower(a) = red.xr.lower(r);
      nd.sel.xl.upper(a) = red.xl.upper(r);
      nd.sel.xl.lower(a) = red.xl.lower(r);
      nd.sel.xg.upper(a) = red.xg.upper(r);
      nd.sel.xg.lower(a) = red.xg.lower(r);
    }
  }
  // ---------------------------------------------------------------- phase 3
  // Back-substitution (parallel).
  auto run_backsub = [&](int p) {
    Stopwatch sw;
    FlopLedger::begin_phase(phase_prefix + std::to_string(p));
    if (p == 0) {
      backsub_top(m, b_lesser, b_greater, top, ranges[0].second, nd.sel);
    } else if (p == ps - 1) {
      backsub_bottom(m, b_lesser, b_greater, bottom, ranges[p].first, nd.sel);
    } else {
      const int r = 1 + (p - 1) * 2;  // reduced index of s_p
      backsub_middle(m, b_lesser, b_greater, mids[p], ranges[p].first,
                     ranges[p].second, red.xr.upper(r), red.xr.lower(r),
                     red.xl.upper(r), red.xl.lower(r), red.xg.upper(r),
                     red.xg.lower(r), nd.sel);
    }
    nd.stats[p].seconds += sw.seconds();
  };
  if (opt.num_threads > 1) {
    std::vector<std::thread> workers;
    for (int p = 0; p < ps; ++p) workers.emplace_back(run_backsub, p);
    for (auto& w : workers) w.join();
  } else {
    for (int p = 0; p < ps; ++p) run_backsub(p);
  }
  // Per-partition FLOP totals from the ledger phases (delta against entry,
  // so repeated nd_solve calls account independently).
  const auto phases = FlopLedger::by_phase();
  for (int p = 0; p < ps; ++p) {
    const std::string key = phase_prefix + std::to_string(p);
    const auto it = phases.find(key);
    if (it != phases.end()) {
      std::int64_t base = 0;
      const auto bit = flops_baseline.find(key);
      if (bit != flops_baseline.end()) base = bit->second;
      nd.stats[p].flops = it->second - base;
    }
  }
  FlopLedger::begin_phase("unattributed");
  if (opt.symmetrize) {
    nd.sel.xl.anti_hermitize();
    nd.sel.xg.anti_hermitize();
  }
  return nd;
}

}  // namespace qtx::rgf
