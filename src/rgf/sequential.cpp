#include "rgf/sequential.hpp"

namespace qtx::rgf {

BlockTridiag rgf_retarded(const BlockTridiag& m) {
  const int nb = m.num_blocks(), bs = m.block_size();
  // Forward pass (paper Eq. 9): x_i = (M_ii - M_{i,i-1} x_{i-1} M_{i-1,i})^-1.
  std::vector<Matrix> x(nb);
  x[0] = la::inverse(m.diag(0));
  for (int i = 1; i < nb; ++i)
    x[i] = la::inverse(m.diag(i) -
                       la::mmm(m.lower(i - 1), x[i - 1], m.upper(i - 1)));
  // Backward pass (paper Eq. 11) plus the first off-diagonals.
  BlockTridiag out(nb, bs);
  out.diag(nb - 1) = x[nb - 1];
  for (int i = nb - 2; i >= 0; --i) {
    const Matrix& g1 = out.diag(i + 1);
    const Matrix xmu = la::mm(x[i], m.upper(i));        // x_i M_{i,i+1}
    const Matrix mlx = la::mm(m.lower(i), x[i]);        // M_{i+1,i} x_i
    out.upper(i) = la::mm(xmu, g1) * cplx(-1.0);        // X_{i,i+1}
    out.lower(i) = la::mm(g1, mlx) * cplx(-1.0);        // X_{i+1,i}
    out.diag(i) = x[i] + la::mmm(xmu, g1, mlx);
  }
  return out;
}

namespace {

/// One quadratic solve X = M^{-1} B M^{-†} through the RGF recursions.
BlockTridiag rgf_quadratic(const BlockTridiag& m, const BlockTridiag& b,
                           const std::vector<Matrix>& x,
                           const BlockTridiag& xr) {
  const int nb = m.num_blocks(), bs = m.block_size();
  // Forward congruence transform of the RHS diagonal:
  //   bhat_i = B_ii - L B_{i-1,i} - B_{i,i-1} L† + L bhat_{i-1} L†,
  //   L = M_{i,i-1} x_{i-1}.
  std::vector<Matrix> bhat(nb);
  bhat[0] = b.diag(0);
  for (int i = 1; i < nb; ++i) {
    const Matrix l = la::mm(m.lower(i - 1), x[i - 1]);
    Matrix v = b.diag(i);
    v -= la::mm(l, b.upper(i - 1));
    v -= la::mmh(b.lower(i - 1), l);
    v += la::mmmh(l, bhat[i - 1], l);
    bhat[i] = std::move(v);
  }
  // Backward pass (paper Eq. 12 generalized; see sequential.hpp).
  BlockTridiag out(nb, bs);
  out.diag(nb - 1) = la::mmmh(x[nb - 1], bhat[nb - 1], x[nb - 1]);
  for (int i = nb - 2; i >= 0; --i) {
    const Matrix& g1 = xr.diag(i + 1);     // X^R_{i+1,i+1}
    const Matrix& gl1 = out.diag(i + 1);   // X≶_{i+1,i+1}
    const Matrix& mu = m.upper(i);
    const Matrix& ml = m.lower(i);
    const Matrix& bu = b.upper(i);
    const Matrix& bl = b.lower(i);
    const Matrix& bh = bhat[i];
    const Matrix& xi = x[i];
    // K = [M^{-1}]_{i+1,i} = -G1 ml x_i (exact inverse entry).
    const Matrix k = la::mmm(g1, ml, xi) * cplx(-1.0);
    const Matrix xbh = la::mmmh(xi, bh, xi);  // T1 = x bh x†
    // T2 = -x mu (K bh + G1 bl) x†.
    Matrix inner2 = la::mm(k, bh);
    inner2 += la::mm(g1, bl);
    const Matrix t2 = la::mmh(la::mmm(xi, mu, inner2), xi) * cplx(-1.0);
    // T3 = -x (bh K† + bu G1†) mu† x†.
    Matrix inner3 = la::mmh(bh, k);
    inner3 += la::mmh(bu, g1);
    const Matrix t3 =
        la::mmh(la::mmh(la::mm(xi, inner3), mu), xi) * cplx(-1.0);
    // T4 = x mu Gl1 mu† x†.
    const Matrix t4 = la::mmh(la::mmh(la::mmm(xi, mu, gl1), mu), xi);
    Matrix d = xbh;
    d += t2;
    d += t3;
    d += t4;
    out.diag(i) = std::move(d);
    // Off-diagonals:
    //   X≶_{i,i+1} = x (bh K† + bu G1† - mu Gl1),
    //   X≶_{i+1,i} = (K bh + G1 bl - Gl1 mu†) x†.
    Matrix up = la::mmh(bh, k);
    up += la::mmh(bu, g1);
    up -= la::mm(mu, gl1);
    out.upper(i) = la::mm(xi, up);
    Matrix lo = la::mm(k, bh);
    lo += la::mm(g1, bl);
    lo -= la::mmh(gl1, mu);
    out.lower(i) = la::mmh(lo, xi);
  }
  return out;
}

}  // namespace

SelectedSolution rgf_solve(const BlockTridiag& m,
                           const BlockTridiag& b_lesser,
                           const BlockTridiag& b_greater,
                           const RgfOptions& opt) {
  const int nb = m.num_blocks();
  // Shared forward pass for the local inverses x_i.
  std::vector<Matrix> x(nb);
  x[0] = la::inverse(m.diag(0));
  for (int i = 1; i < nb; ++i)
    x[i] = la::inverse(m.diag(i) -
                       la::mmm(m.lower(i - 1), x[i - 1], m.upper(i - 1)));
  SelectedSolution s;
  // Retarded backward pass.
  s.xr = BlockTridiag(nb, m.block_size());
  s.xr.diag(nb - 1) = x[nb - 1];
  for (int i = nb - 2; i >= 0; --i) {
    const Matrix& g1 = s.xr.diag(i + 1);
    const Matrix xmu = la::mm(x[i], m.upper(i));
    const Matrix mlx = la::mm(m.lower(i), x[i]);
    s.xr.upper(i) = la::mm(xmu, g1) * cplx(-1.0);
    s.xr.lower(i) = la::mm(g1, mlx) * cplx(-1.0);
    s.xr.diag(i) = x[i] + la::mmm(xmu, g1, mlx);
  }
  s.xl = rgf_quadratic(m, b_lesser, x, s.xr);
  s.xg = rgf_quadratic(m, b_greater, x, s.xr);
  if (opt.symmetrize) {
    s.xl.anti_hermitize();
    s.xg.anti_hermitize();
  }
  return s;
}

BlockTridiag extract_bt(const Matrix& dense, int nb, int bs) {
  BlockTridiag out(nb, bs);
  for (int i = 0; i < nb; ++i)
    out.diag(i) = dense.block(i * bs, i * bs, bs, bs);
  for (int i = 0; i + 1 < nb; ++i) {
    out.upper(i) = dense.block(i * bs, (i + 1) * bs, bs, bs);
    out.lower(i) = dense.block((i + 1) * bs, i * bs, bs, bs);
  }
  return out;
}

BlockTridiag reference_retarded(const BlockTridiag& m) {
  const Matrix minv = la::inverse(m.dense());
  return extract_bt(minv, m.num_blocks(), m.block_size());
}

SelectedSolution reference_solve(const BlockTridiag& m,
                                 const BlockTridiag& b_lesser,
                                 const BlockTridiag& b_greater) {
  const Matrix minv = la::inverse(m.dense());
  SelectedSolution s;
  s.xr = extract_bt(minv, m.num_blocks(), m.block_size());
  const Matrix xl = la::mmh(la::mm(minv, b_lesser.dense()), minv);
  const Matrix xg = la::mmh(la::mm(minv, b_greater.dense()), minv);
  s.xl = extract_bt(xl, m.num_blocks(), m.block_size());
  s.xg = extract_bt(xg, m.num_blocks(), m.block_size());
  return s;
}

}  // namespace qtx::rgf
