#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/timer.hpp"
#include "serve/protocol.hpp"

namespace qtx::serve {
namespace {

/// Connect to \p path; returns the fd or -1 with errno set.
int try_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

/// Responses are results.json documents — megabytes at the very most; the
/// reader limit only guards against a corrupt length prefix.
constexpr std::size_t kMaxResponseBytes = 1ull << 30;

}  // namespace

Client::Client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

int Client::connect_fd() const {
  const int fd = try_connect(socket_path_);
  if (fd < 0) {
    throw FrameError("cannot connect to qtx serve at \"" + socket_path_ +
                     "\": " + std::strerror(errno));
  }
  return fd;
}

Client::Response Client::submit(
    const std::string& deck_text, const std::string& deck_name,
    const std::vector<std::pair<std::string, std::string>>& overrides)
    const {
  Request request;
  request.deck_text = deck_text;
  request.deck_name = deck_name;
  request.overrides = overrides;

  const int fd = connect_fd();
  Response response;
  try {
    try {
      write_frame(fd, kFrameRequest, encode_request(request));
    } catch (const FrameError&) {
      // The server may reject straight from the header (oversized
      // request) and close its end while we are still sending the
      // payload — the send surfaces EPIPE, but the error frame is
      // already queued on our side of the socket. Only when no error
      // frame can be read either is the send failure the real story.
      Frame rejected;
      bool got_reply = false;
      try {
        got_reply = read_frame(fd, rejected, kMaxResponseBytes);
      } catch (const FrameError&) {
        got_reply = false;
      }
      if (!got_reply || rejected.type != kFrameError) throw;
      response.error = std::move(rejected.payload);
      ::close(fd);
      return response;
    }
    Frame frame;
    if (!read_frame(fd, frame, kMaxResponseBytes)) {
      response.error = "server closed the connection without replying";
    } else if (frame.type == kFrameResponse) {
      response.ok = true;
      response.payload = std::move(frame.payload);
    } else if (frame.type == kFrameError) {
      response.error = std::move(frame.payload);
    } else {
      response.error =
          "unexpected frame type " + std::to_string(frame.type) +
          " in reply";
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return response;
}

Client::Response Client::stats() const {
  const int fd = connect_fd();
  Response response;
  try {
    write_frame(fd, kFrameStats, "");
    Frame frame;
    if (!read_frame(fd, frame, kMaxResponseBytes)) {
      response.error = "server closed the connection without replying";
    } else if (frame.type == kFrameResponse) {
      response.ok = true;
      response.payload = std::move(frame.payload);
    } else if (frame.type == kFrameError) {
      response.error = std::move(frame.payload);
    } else {
      response.error = "unexpected frame type " +
                       std::to_string(frame.type) + " in stats reply";
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return response;
}

bool Client::shutdown() const {
  const int fd = try_connect(socket_path_);
  if (fd < 0) return false;  // nothing listening — already down
  bool acked = false;
  try {
    write_frame(fd, kFrameShutdown, "");
    Frame frame;
    acked = read_frame(fd, frame, kMaxResponseBytes) &&
            frame.type == kFrameShutdownAck;
  } catch (const FrameError&) {
    acked = false;
  }
  ::close(fd);
  return acked;
}

bool Client::wait_ready(const std::string& socket_path, double timeout_s) {
  const Stopwatch elapsed;
  for (;;) {
    const int fd = try_connect(socket_path);
    if (fd >= 0) {
      ::close(fd);  // probe only; the server reads EOF and moves on
      return true;
    }
    if (elapsed.seconds() >= timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace qtx::serve
