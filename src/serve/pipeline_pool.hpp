#pragma once

/// \file pipeline_pool.hpp
/// Warm-engine pool of the serve daemon: idle `core::EnergyPipeline`
/// instances shelved under their reuse key — the device layout hash
/// prefixed to `core::pipeline_reuse_key` (batch layout + resolved
/// backend/executor keys + build-time solver settings) — and checked out
/// by later requests for the same configuration. This is the PR 4
/// `shared_pipeline()`/`reset()` machinery lifted across *requests*
/// instead of sweep points: a checked-out pipeline skips the engine build
/// (thread-pool spin-up, per-batch solver construction) while the
/// Simulation's reuse-mismatch validation still guards the handoff, so an
/// incompatible deck can only ever force a cold build, never a wrong one.
/// Reused pipelines produce bit-identical numbers to freshly built ones —
/// the invariant `reset()` documents and test_serve re-pins end to end.
///
/// Thread-safe: checkout/checkin take the internal mutex. A checked-out
/// pipeline is owned by exactly one request at a time (the pool holds no
/// reference while it is out), so workers never share a live engine.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/energy_pipeline.hpp"

namespace qtx::serve {

class PipelinePool {
 public:
  /// Warm-hit / cold-build counters (`stats()`).
  struct Stats {
    long long warm_hits = 0;    ///< checkouts served from the shelf
    long long cold_builds = 0;  ///< checkouts that found nothing
    long long discarded = 0;    ///< checkins dropped by the idle cap
    long long idle = 0;         ///< pipelines shelved right now
  };

  /// Pool keeping at most \p max_idle_per_key idle pipelines per reuse
  /// key. 0 disables pooling: every checkout is a cold build and every
  /// checkin is discarded (the cold bench phase's configuration).
  explicit PipelinePool(int max_idle_per_key = 2);

  /// Take a warm pipeline for \p key, or nullptr when none is shelved
  /// (count a cold build). The caller owns the result until checkin.
  std::shared_ptr<core::EnergyPipeline> checkout(const std::string& key);

  /// Return \p pipeline to the shelf for \p key; dropped (not shelved)
  /// when the key already holds max_idle_per_key idle pipelines or
  /// \p pipeline is null.
  void checkin(const std::string& key,
               std::shared_ptr<core::EnergyPipeline> pipeline);

  Stats stats() const;  ///< consistent snapshot of the counters

 private:
  mutable std::mutex mutex_;
  int max_idle_per_key_;
  std::map<std::string,
           std::vector<std::shared_ptr<core::EnergyPipeline>>>
      shelves_;
  long long warm_hits_ = 0;
  long long cold_builds_ = 0;
  long long discarded_ = 0;
  long long idle_ = 0;
};

}  // namespace qtx::serve
