#pragma once

/// \file result_cache.hpp
/// Content-addressed result cache of the serve daemon: canonical deck hash
/// (`io::canonical_deck_hash`) → rendered results.json bytes, evicted LRU
/// under a byte budget. Because the key is the hash of the *canonical*
/// serialized deck, two requests hit the same entry exactly when they
/// parse to the same scenario — formatting, comment, and key-order
/// differences all collapse — and any single key/value change is a miss
/// (the property test_io pins on the hash). Cached payloads carry no
/// "serve" section; per-request provenance is appended at response time,
/// so a hit returns the stored bytes verbatim and stays bit-identical to
/// the cold run that populated it.
///
/// Thread-safe: every operation takes the internal mutex (lookups from N
/// workers race only on the LRU order, which the mutex serializes).

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace qtx::serve {

class ResultCache {
 public:
  /// Hit/miss/eviction counters plus the current occupancy, as one
  /// consistent snapshot (`stats()`).
  struct Stats {
    long long hits = 0;        ///< lookups that returned a payload
    long long misses = 0;      ///< lookups that found nothing
    long long evictions = 0;   ///< entries displaced by the byte budget
    long long entries = 0;     ///< live entries right now
    long long bytes = 0;       ///< payload bytes held right now
  };

  /// Cache holding at most \p max_bytes of payload. 0 disables caching
  /// entirely: every lookup misses and every insert is dropped (the
  /// configuration the bit-identity tests and the cold bench phase use).
  explicit ResultCache(std::size_t max_bytes);

  /// Look up \p key; on a hit copies the payload into \p payload, marks the
  /// entry most-recently-used, and returns true. Counts a hit or a miss.
  bool lookup(std::uint64_t key, std::string& payload);

  /// Insert (or refresh) \p key → \p payload, then evict least-recently-
  /// used entries until the byte budget holds again. A payload larger than
  /// the whole budget is not inserted at all (it could only evict
  /// everything and then fail to fit).
  void insert(std::uint64_t key, const std::string& payload);

  Stats stats() const;  ///< consistent snapshot of the counters

 private:
  void evict_to_budget();  // callers hold mutex_

  mutable std::mutex mutex_;
  std::size_t max_bytes_;
  std::size_t held_bytes_ = 0;
  /// MRU order, front = most recent; the map points into the list.
  std::list<std::pair<std::uint64_t, std::string>> lru_;
  std::map<std::uint64_t,
           std::list<std::pair<std::uint64_t, std::string>>::iterator>
      index_;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
};

}  // namespace qtx::serve
