#include "serve/result_cache.hpp"

namespace qtx::serve {

ResultCache::ResultCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

bool ResultCache::lookup(std::uint64_t key, std::string& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  // Refresh recency: move the entry to the MRU front (iterators stay
  // valid across splice, so the index needs no update).
  lru_.splice(lru_.begin(), lru_, it->second);
  payload = it->second->second;
  ++hits_;
  return true;
}

void ResultCache::insert(std::uint64_t key, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (payload.size() > max_bytes_) return;  // covers max_bytes_ == 0
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same deck re-solved, e.g. after eviction races).
    held_bytes_ -= it->second->second.size();
    held_bytes_ += payload.size();
    it->second->second = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, payload);
    index_[key] = lru_.begin();
    held_bytes_ += payload.size();
  }
  evict_to_budget();
}

void ResultCache::evict_to_budget() {
  while (held_bytes_ > max_bytes_ && !lru_.empty()) {
    const auto& victim = lru_.back();
    held_bytes_ -= victim.second.size();
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = static_cast<long long>(lru_.size());
  s.bytes = static_cast<long long>(held_bytes_);
  return s;
}

}  // namespace qtx::serve
