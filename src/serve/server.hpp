#pragma once

/// \file server.hpp
/// The `qtx serve` daemon: a long-lived AF_UNIX service that accepts
/// scenario decks (serve/protocol.hpp frames), solves them on a small
/// worker pool, and answers with results.json payloads bit-identical to a
/// cold `qtx run` of the same deck. Two reuse layers amortize the cost the
/// paper's production setting pays once per run:
///
///   - `ResultCache` — content-addressed (canonical deck hash → rendered
///     payload): an identical request never recomputes at all;
///   - `PipelinePool` — warm `EnergyPipeline` engines shelved per
///     (device layout, backend configuration): a compatible request skips
///     the engine build, and the Simulation reuse-mismatch validation
///     forces a cold build on anything incompatible.
///
/// Requests flow acceptor → bounded queue → workers. When the queue is
/// full the acceptor answers an immediate error (backpressure instead of
/// unbounded memory); a request that waited past the per-request timeout
/// is answered with a timeout error when a worker finally reaches it (the
/// solve itself is never preempted — the timeout bounds *queue* time).
/// `request_stop()` — async-signal-safe, so a SIGTERM handler may call it
/// directly — and the client shutdown frame both begin a graceful drain:
/// in-flight solves complete and answer normally, still-queued requests
/// get a clear "draining" error, then every thread joins.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "core/stage_registry.hpp"
#include "serve/pipeline_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"

namespace qtx::serve {

/// Configuration of a `Server` (all knobs the `qtx serve` CLI exposes).
struct ServerOptions {
  std::string socket_path;       ///< AF_UNIX path to bind (required)
  int workers = 1;               ///< solver worker threads
  int queue_capacity = 16;       ///< pending requests before backpressure
  std::size_t cache_bytes = 64ull << 20;  ///< ResultCache budget (0 = off)
  std::size_t max_request_bytes = 1ull << 20;  ///< request frame limit
  double request_timeout_s = 300.0;  ///< max queue wait before a timeout error
  int pool_max_idle = 2;         ///< idle pipelines per pool key (0 = off)
};

/// Aggregate counters of a running (or drained) server.
struct ServerStats {
  long long requests_ok = 0;     ///< requests answered with a response frame
  long long requests_error = 0;  ///< requests answered with an error frame
  ResultCache::Stats cache;      ///< hit/miss/eviction counters
  PipelinePool::Stats pool;      ///< warm-hit/cold-build counters
};

class Server {
 public:
  /// Configure against \p registry (the scenario runs resolve their
  /// backends there; tests inject instrumented registries). The registry
  /// must outlive the server. Nothing binds until `start()`.
  explicit Server(ServerOptions options,
                  const core::StageRegistry& registry =
                      core::StageRegistry::global());

  /// Drains and joins if still running, then removes the socket file.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket, start the acceptor and worker threads, and return
  /// (the daemon runs on its own threads). Throws std::runtime_error when
  /// the path is too long for sockaddr_un or the bind/listen fails.
  void start();

  /// Begin a graceful drain. Async-signal-safe (one write(2) to an
  /// internal pipe, no locks), so a SIGTERM/SIGINT handler may call it on
  /// a started server. Safe to call more than once.
  void request_stop();

  /// Block until the drain completes and every thread has joined. Returns
  /// immediately if the server never started or already drained.
  void wait();

  /// `request_stop()` + `wait()`.
  void stop();

  /// True between a successful `start()` and the end of `wait()`.
  bool running() const;

  ServerStats stats() const;              ///< consistent counter snapshot

  /// The metrics-snapshot JSON answered to a `stats` frame: refreshes the
  /// daemon's `qtx.serve.*` gauges into obs::MetricsRegistry::global(),
  /// then renders the unified process snapshot (obs::snapshot_process).
  std::string render_stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct PendingRequest {
    int fd = -1;              ///< connection owning the reply
    std::string payload;      ///< raw request-frame payload
    double arrival_seconds;   ///< monotonic enqueue time
  };

  void acceptor_loop();
  void worker_loop();
  void begin_drain();
  void handle_connection(int fd);
  void handle_request(int fd, const std::string& payload,
                      double queue_seconds);
  std::string solve(const std::string& payload, ServeInfo& info);

  ServerOptions options_;
  const core::StageRegistry* registry_;
  ResultCache cache_;
  PipelinePool pool_;

  int listen_fd_ = -1;
  int stop_pipe_rd_ = -1;
  int stop_pipe_wr_ = -1;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool stopping_ = false;
  bool started_ = false;
  bool joined_ = false;
  long long requests_ok_ = 0;
  long long requests_error_ = 0;
};

}  // namespace qtx::serve
