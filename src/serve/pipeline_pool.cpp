#include "serve/pipeline_pool.hpp"

namespace qtx::serve {

PipelinePool::PipelinePool(int max_idle_per_key)
    : max_idle_per_key_(max_idle_per_key) {}

std::shared_ptr<core::EnergyPipeline> PipelinePool::checkout(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shelves_.find(key);
  if (it == shelves_.end() || it->second.empty()) {
    ++cold_builds_;
    return nullptr;
  }
  std::shared_ptr<core::EnergyPipeline> pipeline =
      std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) shelves_.erase(it);
  --idle_;
  ++warm_hits_;
  return pipeline;
}

void PipelinePool::checkin(const std::string& key,
                           std::shared_ptr<core::EnergyPipeline> pipeline) {
  if (!pipeline) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto& shelf = shelves_[key];
  if (static_cast<int>(shelf.size()) >= max_idle_per_key_) {
    if (shelf.empty()) shelves_.erase(key);  // max_idle_per_key_ == 0
    ++discarded_;
    return;
  }
  shelf.push_back(std::move(pipeline));
  ++idle_;
}

PipelinePool::Stats PipelinePool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.warm_hits = warm_hits_;
  s.cold_builds = cold_builds_;
  s.discarded = discarded_;
  s.idle = idle_;
  return s;
}

}  // namespace qtx::serve
