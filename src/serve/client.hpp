#pragma once

/// \file client.hpp
/// Blocking client of the `qtx serve` daemon — the single wire-path
/// implementation the `qtx submit` CLI, the serve tests, and
/// `bench_serve_throughput` all go through, so every consumer exercises
/// the real frame protocol rather than an in-process shortcut. One
/// connection per call (the protocol's one-request-per-connection rule);
/// no state is kept between calls beyond the socket path.

#include <string>
#include <utility>
#include <vector>

namespace qtx::serve {

class Client {
 public:
  /// Outcome of one `submit`.
  struct Response {
    bool ok = false;      ///< true when a response frame arrived
    std::string payload;  ///< results.json bytes (with "serve" section)
    std::string error;    ///< the error-frame message when !ok
  };

  /// Client for the daemon listening on \p socket_path. Nothing connects
  /// until a call is made.
  explicit Client(std::string socket_path);

  /// Submit \p deck_text for solving: connect, send the request frame
  /// (deck + \p overrides applied in order; \p deck_name labels file:line
  /// diagnostics and the scenario-name fallback), and block until the
  /// response or error frame arrives. Throws FrameError when the daemon
  /// cannot be reached or the connection dies mid-exchange.
  Response submit(const std::string& deck_text,
                  const std::string& deck_name = "request.ini",
                  const std::vector<std::pair<std::string, std::string>>&
                      overrides = {}) const;

  /// Ask the daemon to drain and exit. Returns true when the shutdown-ack
  /// frame came back, false when nothing is listening (already gone).
  bool shutdown() const;

  /// Scrape the daemon's live metrics snapshot (a stats frame): `ok` with
  /// the obs::MetricsRegistry JSON snapshot as the payload, or the error
  /// message. Answered by the acceptor without entering the worker queue,
  /// so scraping never disturbs in-flight requests. Throws FrameError
  /// when the daemon cannot be reached.
  Response stats() const;

  /// Poll-connect until the daemon accepts on \p socket_path or
  /// \p timeout_s elapses (10 ms retry cadence). The probe connection is
  /// closed without sending — the server treats that as a no-op. For
  /// scripts and tests racing a freshly forked `qtx serve`.
  static bool wait_ready(const std::string& socket_path, double timeout_s);

  const std::string& socket_path() const { return socket_path_; }

 private:
  int connect_fd() const;  // throws FrameError when nothing listens

  std::string socket_path_;
};

}  // namespace qtx::serve
