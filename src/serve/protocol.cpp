#include "serve/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace qtx::serve {
namespace {

namespace qs = qtx::strings;

[[noreturn]] void fail_errno(const char* what) {
  std::ostringstream os;
  os << what << ": " << std::strerror(errno);
  throw FrameError(os.str());
}

/// recv exactly \p n bytes into \p buf; returns bytes read before EOF.
std::size_t recv_all(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return got;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv failed");
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

void send_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here instead of a
    // process-wide SIGPIPE — library code must not change signal
    // dispositions behind the app's back.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      fail_errno("send failed");
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace

bool read_frame(int fd, Frame& frame, std::size_t max_payload_bytes) {
  char header[kFrameHeaderBytes];
  const std::size_t got = recv_all(fd, header, sizeof header);
  if (got == 0) return false;  // clean EOF before any byte
  if (got < sizeof header) {
    std::ostringstream os;
    os << "truncated frame header (" << got << " of " << sizeof header
       << " bytes)";
    throw FrameError(os.str());
  }
  std::uint64_t count = 0;
  std::memcpy(&frame.type, header, sizeof frame.type);
  std::memcpy(&count, header + sizeof frame.type, sizeof count);
  if (count > max_payload_bytes) {
    std::ostringstream os;
    os << "frame payload of " << count << " bytes exceeds the limit of "
       << max_payload_bytes << " bytes";
    throw OversizedFrame(os.str());
  }
  frame.payload.resize(static_cast<std::size_t>(count));
  if (count > 0) {
    const std::size_t body = recv_all(fd, frame.payload.data(),
                                      frame.payload.size());
    if (body < frame.payload.size()) {
      std::ostringstream os;
      os << "truncated frame payload (" << body << " of "
         << frame.payload.size() << " bytes)";
      throw FrameError(os.str());
    }
  }
  return true;
}

void write_frame(int fd, std::uint64_t type, const std::string& payload) {
  char header[kFrameHeaderBytes];
  const std::uint64_t count = payload.size();
  std::memcpy(header, &type, sizeof type);
  std::memcpy(header + sizeof type, &count, sizeof count);
  send_all(fd, header, sizeof header);
  if (!payload.empty()) send_all(fd, payload.data(), payload.size());
}

std::string encode_request(const Request& request) {
  std::ostringstream os;
  os << "qtx-serve 1 run\n";
  os << "name " << request.deck_name << "\n";
  for (const auto& [key, value] : request.overrides)
    os << "set " << key << "=" << value << "\n";
  os << "deck\n";
  os << request.deck_text;
  return os.str();
}

Request decode_request(const std::string& payload) {
  Request request;
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != "qtx-serve 1 run") {
    throw FrameError("malformed request: expected the \"qtx-serve 1 run\" "
                     "magic line, got \"" + line + "\"");
  }
  bool saw_deck = false;
  while (std::getline(in, line)) {
    if (line == "deck") {
      saw_deck = true;
      break;
    }
    if (line.rfind("name ", 0) == 0) {
      request.deck_name = line.substr(5);
      continue;
    }
    if (line.rfind("set ", 0) == 0) {
      const std::string kv = line.substr(4);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw FrameError("malformed request: override \"" + line +
                         "\" is not \"set key=value\"");
      }
      request.overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
      continue;
    }
    throw FrameError("malformed request: unexpected preamble line \"" +
                     line + "\" (expected \"name\", \"set\", or \"deck\")");
  }
  if (!saw_deck) {
    throw FrameError("malformed request: missing the \"deck\" marker line");
  }
  // The deck is everything after the marker, verbatim.
  std::ostringstream deck;
  deck << in.rdbuf();
  request.deck_text = deck.str();
  return request;
}

std::string append_serve_section(const std::string& results_json,
                                 const ServeInfo& info) {
  // render_result_json documents end "...}}\n": the last section's close
  // glued to the top-level '}' (JsonWriter writes no newline at depth 0),
  // then the trailing newline. Splice the new section between the two.
  QTX_CHECK_MSG(results_json.size() >= 2 &&
                    results_json[results_json.size() - 1] == '\n' &&
                    results_json[results_json.size() - 2] == '}',
                "append_serve_section expects render_result_json output "
                "(document must end \"}\\n\")");
  std::ostringstream section;
  section << ",\n  \"serve\": {\n"
          << "    \"cache_hit\": " << (info.cache_hit ? "true" : "false")
          << ",\n"
          << "    \"pipeline\": \""
          << (info.cache_hit ? "cached" : info.warm_pipeline ? "warm"
                                                             : "cold")
          << "\",\n"
          << "    \"queue_seconds\": " << qs::format_double(info.queue_seconds)
          << ",\n"
          << "    \"solve_seconds\": " << qs::format_double(info.solve_seconds)
          << "\n  }";
  std::string out = results_json;
  out.insert(out.size() - 2, section.str());
  return out;
}

std::string strip_volatile_sections(const std::string& results_json) {
  std::istringstream in(results_json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = qs::trim(line);
    // Scalar wall times (iteration history, result totals).
    if (t.rfind("\"seconds\":", 0) == 0 ||
        t.rfind("\"total_seconds\":", 0) == 0)
      continue;
    const bool block = t.rfind("\"kernel_seconds\": {", 0) == 0 ||
                       t.rfind("\"performance\": {", 0) == 0 ||
                       t.rfind("\"serve\": {", 0) == 0;
    if (!block) {
      out << line << "\n";
      continue;
    }
    // Consume the whole block by brace depth (kernel names contain no
    // braces). Whatever follows the block's own closing brace on its last
    // line — typically the glued top-level '}' — survives, minus the
    // separator comma that belonged to the dropped member.
    int depth = 0;
    std::string remainder;
    std::string cur = line;
    for (;;) {
      bool closed = false;
      for (std::size_t i = 0; i < cur.size(); ++i) {
        if (cur[i] == '{') {
          ++depth;
        } else if (cur[i] == '}') {
          --depth;
          if (depth == 0) {
            remainder = cur.substr(i + 1);
            closed = true;
            break;
          }
        }
      }
      if (closed || !std::getline(in, cur)) break;
    }
    if (!remainder.empty() && remainder.front() == ',')
      remainder.erase(0, 1);
    if (!remainder.empty()) out << remainder << "\n";
  }
  return out.str();
}

}  // namespace qtx::serve
