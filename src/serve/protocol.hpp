#pragma once

/// \file protocol.hpp
/// Wire protocol of the `qtx serve` daemon: length-prefixed frames over an
/// AF_UNIX stream socket, deliberately the same 16-byte header shape as
/// `par::SocketComm` ({u64 type, u64 count} in native byte order) so the
/// repo has exactly one framing idiom. For serve frames `count` is the
/// payload size in bytes and `type` selects the message:
///
///   0 request       deck text + overrides (see encode_request)
///   1 response      a results.json payload (UTF-8 bytes, verbatim)
///   2 error         a located "<file>:<line>: ..." diagnostic string
///   3 shutdown      client asks the server to drain and exit (no payload)
///   4 shutdown-ack  server confirms the drain has begun (no payload)
///   5 stats         client asks for a live metrics snapshot (no payload);
///                   answered with a response frame carrying the
///                   obs::MetricsRegistry JSON snapshot, synchronously
///                   from the acceptor so it never queues behind solves
///
/// One request per connection (connect → request frame → response/error
/// frame → close): no pipelining, no reconnect state, so a crashed client
/// can never wedge a worker. The request payload is plain text:
///
///     qtx-serve 1 run
///     name <label for file:line diagnostics>
///     set <key>=<value>          # zero or more, applied in order
///     deck
///     <the scenario deck, verbatim until EOF>
///
/// Responses are byte-identical to what a cold `qtx run` of the same deck
/// writes to results.json, plus an appended "serve" provenance section
/// (cache hit?, warm or cold pipeline?, queue wait, solve wall time).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qtx::serve {

/// Frame type codes (the `type` header field).
inline constexpr std::uint64_t kFrameRequest = 0;
inline constexpr std::uint64_t kFrameResponse = 1;
inline constexpr std::uint64_t kFrameError = 2;
inline constexpr std::uint64_t kFrameShutdown = 3;
inline constexpr std::uint64_t kFrameShutdownAck = 4;
inline constexpr std::uint64_t kFrameStats = 5;

/// Bytes of the {u64 type, u64 count} frame header.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Malformed or truncated wire traffic (bad header, short read/write,
/// socket error). The server answers these with an error frame and closes.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A frame whose declared payload size exceeds the reader's limit. Raised
/// *before* reading the payload, so an adversarial 16-byte header cannot
/// make the server allocate gigabytes.
class OversizedFrame : public FrameError {
 public:
  using FrameError::FrameError;
};

/// One decoded frame: the type code and the raw payload bytes.
struct Frame {
  std::uint64_t type = 0;  ///< kFrameRequest ... kFrameStats
  std::string payload;     ///< `count` bytes, verbatim
};

/// Blocking read of one frame from \p fd. Returns false on a clean EOF
/// before any header byte (the peer closed without sending — e.g. a
/// connect-probe); throws FrameError on truncation or socket errors and
/// OversizedFrame when the header announces more than
/// \p max_payload_bytes.
bool read_frame(int fd, Frame& frame, std::size_t max_payload_bytes);

/// Blocking write of one frame (header + payload) to \p fd; throws
/// FrameError when the peer is gone. SIGPIPE is suppressed per-call
/// (MSG_NOSIGNAL), not process-wide.
void write_frame(int fd, std::uint64_t type, const std::string& payload);

/// One decoded request: the deck to run plus CLI-style overrides.
struct Request {
  std::string deck_text;  ///< scenario deck, verbatim
  /// Label for diagnostics and the scenario-name file-stem fallback; the
  /// default matches what error messages show for anonymous submissions.
  std::string deck_name = "request.ini";
  /// `--set key=value` pairs, applied to the parsed deck in order.
  std::vector<std::pair<std::string, std::string>> overrides;
};

/// Serialize \p request into the request-frame payload text.
std::string encode_request(const Request& request);

/// Parse a request-frame payload; throws FrameError with a "malformed
/// request:" message on anything that does not follow encode_request's
/// grammar (unknown magic line, override without '=', missing deck
/// marker).
Request decode_request(const std::string& payload);

/// Per-request provenance appended to a response's results.json as the
/// "serve" section.
struct ServeInfo {
  bool cache_hit = false;       ///< payload came from the ResultCache
  bool warm_pipeline = false;   ///< solved on a pool-checked-out pipeline
  double queue_seconds = 0.0;   ///< time spent waiting in the request queue
  double solve_seconds = 0.0;   ///< wall time of the solve (0 on cache hit)
};

/// Splice the "serve" provenance section into a rendered results.json
/// document (appended as the last top-level member, the same append-only
/// pattern as the "performance" and "comm" sections). The input must be
/// `io::render_result_json` output; the result is what goes on the wire.
std::string append_serve_section(const std::string& results_json,
                                 const ServeInfo& info);

/// Drop the wall-time-bearing parts of a results.json document — every
/// "seconds"/"total_seconds" line and the "kernel_seconds", "performance",
/// and "serve" sections — so two runs of the same deck can be compared
/// byte-for-byte on everything deterministic (physics observables,
/// provenance, convergence history). This is the comparison the serve
/// tests and throughput bench use to assert served payloads are
/// bit-identical to cold runs; it relies on the one-value-per-line layout
/// of io::JsonWriter, not on general JSON parsing.
std::string strip_volatile_sections(const std::string& results_json);

}  // namespace qtx::serve
