#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/timer.hpp"
#include "io/result_writer.hpp"
#include "io/scenario_parser.hpp"
#include "io/scenario_runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qtx::serve {
namespace {

/// Monotonic seconds for queue-wait and solve-time provenance.
double now_seconds() { return monotonic_seconds(); }

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Best-effort error reply: the peer may already be gone, which must not
/// take the server down with it.
void try_reply_error(int fd, const std::string& message) {
  try {
    write_frame(fd, kFrameError, message);
  } catch (const FrameError&) {
  }
}

/// The device half of a pool key: preset + every structure parameter, so
/// two requests share warm engines only when they run the same layout
/// (the pipeline itself never sees the device, hence the prefix).
std::string device_layout_key(const io::Scenario& s) {
  std::ostringstream os;
  os << "preset=" << s.device_preset;
  for (const auto& [key, value] :
       device::serialize_structure_params(s.device))
    os << "|" << key << "=" << value;
  return os.str();
}

}  // namespace

Server::Server(ServerOptions options, const core::StageRegistry& registry)
    : options_(std::move(options)),
      registry_(&registry),
      cache_(options_.cache_bytes),
      pool_(options_.pool_max_idle) {}

Server::~Server() {
  if (started_ && !joined_) {
    request_stop();
    wait();
  }
  close_quiet(stop_pipe_rd_);
  close_quiet(stop_pipe_wr_);
  if (!options_.socket_path.empty())
    ::unlink(options_.socket_path.c_str());
}

void Server::start() {
  if (started_) throw std::runtime_error("serve::Server already started");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error(
        "socket path \"" + options_.socket_path +
        "\" is empty or too long for an AF_UNIX address (max " +
        std::to_string(sizeof addr.sun_path - 1) + " bytes)");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error(std::string("cannot create stop pipe: ") +
                             std::strerror(errno));
  }
  stop_pipe_rd_ = pipe_fds[0];
  stop_pipe_wr_ = pipe_fds[1];

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("cannot create socket: ") +
                             std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale path from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot bind/listen on \"" +
                             options_.socket_path + "\": " + err);
  }

  started_ = true;
  acceptor_ = std::thread([this] { acceptor_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Server::request_stop() {
  // Async-signal-safe: one write(2), no locks, no allocation. The acceptor
  // converts the byte into the locked drain transition.
  if (stop_pipe_wr_ >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t r = ::write(stop_pipe_wr_, &byte, 1);
  }
}

void Server::wait() {
  if (!started_ || joined_) return;
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  close_quiet(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  joined_ = true;
}

void Server::stop() {
  request_stop();
  wait();
}

bool Server::running() const { return started_ && !joined_; }

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.requests_ok = requests_ok_;
    s.requests_error = requests_error_;
  }
  s.cache = cache_.stats();
  s.pool = pool_.stats();
  return s;
}

std::string Server::render_stats() const {
  // Refresh the daemon gauges into the process registry, then export the
  // full unified snapshot (which also absorbs TimerRegistry/FlopLedger).
  auto& m = obs::MetricsRegistry::global();
  const ServerStats s = stats();
  m.set_gauge("qtx.serve.requests_ok", static_cast<double>(s.requests_ok));
  m.set_gauge("qtx.serve.requests_error",
              static_cast<double>(s.requests_error));
  m.set_gauge("qtx.serve.cache.hits", static_cast<double>(s.cache.hits));
  m.set_gauge("qtx.serve.cache.misses",
              static_cast<double>(s.cache.misses));
  m.set_gauge("qtx.serve.cache.evictions",
              static_cast<double>(s.cache.evictions));
  m.set_gauge("qtx.serve.cache.entries",
              static_cast<double>(s.cache.entries));
  m.set_gauge("qtx.serve.cache.bytes", static_cast<double>(s.cache.bytes));
  const long long cache_lookups = s.cache.hits + s.cache.misses;
  m.set_gauge("qtx.serve.cache.hit_rate",
              cache_lookups > 0
                  ? static_cast<double>(s.cache.hits) /
                        static_cast<double>(cache_lookups)
                  : 0.0);
  m.set_gauge("qtx.serve.pool.warm_hits",
              static_cast<double>(s.pool.warm_hits));
  m.set_gauge("qtx.serve.pool.cold_builds",
              static_cast<double>(s.pool.cold_builds));
  m.set_gauge("qtx.serve.pool.discarded",
              static_cast<double>(s.pool.discarded));
  m.set_gauge("qtx.serve.pool.idle", static_cast<double>(s.pool.idle));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    m.set_gauge("qtx.serve.queue_depth",
                static_cast<double>(queue_.size()));
    m.set_gauge("qtx.serve.workers", static_cast<double>(options_.workers));
  }
  return obs::to_json(obs::snapshot_process(m));
}

void Server::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

void Server::acceptor_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_rd_, POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failed — drain rather than spin
    }
    if (fds[1].revents != 0) break;  // request_stop() fired
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket is gone
    }
    handle_connection(fd);
    // A shutdown frame flips stopping_; stop accepting from then on.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
  }
  begin_drain();
}

void Server::handle_connection(int fd) {
  // Bound the header/payload read so a stalled client cannot wedge the
  // acceptor (workers never read from sockets, only reply).
  timeval timeout{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  Frame frame;
  try {
    if (!read_frame(fd, frame, options_.max_request_bytes)) {
      close_quiet(fd);  // connect-probe (e.g. Client::wait_ready)
      return;
    }
  } catch (const FrameError& e) {
    try_reply_error(fd, std::string("request rejected: ") + e.what());
    close_quiet(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_error_;
    return;
  }

  if (frame.type == kFrameShutdown) {
    try {
      write_frame(fd, kFrameShutdownAck, "");
    } catch (const FrameError&) {
    }
    close_quiet(fd);
    begin_drain();
    return;
  }
  if (frame.type == kFrameStats) {
    // Answered synchronously from the acceptor: a scrape never enters the
    // worker queue, so it cannot disturb (or be blocked by) in-flight
    // solves.
    try {
      write_frame(fd, kFrameResponse, render_stats());
    } catch (const FrameError&) {
    }
    close_quiet(fd);
    return;
  }
  if (frame.type != kFrameRequest) {
    try_reply_error(fd, "request rejected: unknown frame type " +
                            std::to_string(frame.type));
    close_quiet(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_error_;
    return;
  }

  PendingRequest pending;
  pending.fd = fd;
  pending.payload = std::move(frame.payload);
  pending.arrival_seconds = now_seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      ++requests_error_;
      try_reply_error(
          fd, "server queue is full (" +
                  std::to_string(options_.queue_capacity) +
                  " pending requests) — retry later or raise --queue");
      close_quiet(fd);
      return;
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    PendingRequest req;
    bool draining = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to answer
      req = std::move(queue_.front());
      queue_.pop_front();
      draining = stopping_;
    }
    const double queue_seconds = now_seconds() - req.arrival_seconds;
    if (draining) {
      // Graceful drain: in-flight solves complete, but requests that were
      // still queued when the stop arrived get a clear error.
      try_reply_error(req.fd,
                      "server is draining (shutdown requested) — this "
                      "request was still queued; resubmit elsewhere");
      close_quiet(req.fd);
      std::lock_guard<std::mutex> lock(mutex_);
      ++requests_error_;
      continue;
    }
    if (queue_seconds > options_.request_timeout_s) {
      std::ostringstream os;
      os << "request timed out in the queue (waited "
         << static_cast<long long>(queue_seconds)
         << " s, --request-timeout is "
         << static_cast<long long>(options_.request_timeout_s) << " s)";
      try_reply_error(req.fd, os.str());
      close_quiet(req.fd);
      std::lock_guard<std::mutex> lock(mutex_);
      ++requests_error_;
      continue;
    }
    handle_request(req.fd, req.payload, queue_seconds);
  }
}

void Server::handle_request(int fd, const std::string& payload,
                            double queue_seconds) {
  const obs::Span span("serve.request", obs::SpanKind::kServe);
  ServeInfo info;
  info.queue_seconds = queue_seconds;
  auto& m = obs::MetricsRegistry::global();
  m.observe("qtx.serve.queue_seconds", queue_seconds);
  bool counted_ok = false;
  try {
    const std::string body = solve(payload, info);
    const std::string reply = append_serve_section(body, info);
    // Publish the request's metrics BEFORE the response frame goes out:
    // a client that scrapes stats right after its submit returns must
    // observe its own request in the counters.
    m.observe("qtx.serve.solve_seconds", info.solve_seconds);
    m.add_counter(info.cache_hit ? "qtx.serve.requests_cached"
                                 : "qtx.serve.requests_solved");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++requests_ok_;
    }
    counted_ok = true;
    write_frame(fd, kFrameResponse, reply);
  } catch (const std::exception& e) {
    try_reply_error(fd, e.what());
    // A reply failure after a successful solve (client hung up) stays
    // counted as ok — the solve itself did not fail.
    if (!counted_ok) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++requests_error_;
    }
  }
  close_quiet(fd);
}

std::string Server::solve(const std::string& payload, ServeInfo& info) {
  const Request request = decode_request(payload);
  io::Scenario s = io::parse_scenario_text(request.deck_text,
                                           request.deck_name);
  if (s.name.empty()) s.name = io::scenario_path_stem(request.deck_name);
  for (const auto& [key, value] : request.overrides)
    io::apply_scenario_override(s, key, value);
  if (s.has_sweep()) {
    throw io::ScenarioError(
        request.deck_name +
        ": [sweep] decks cannot be served — submit one request per sweep "
        "point (the pipeline pool makes the repeats warm)");
  }
  // The daemon never writes files; blanking the output spec also folds
  // output-only deck differences into one cache entry.
  s.output = io::OutputSpec{};
  s.output.directory.clear();

  const std::uint64_t key = io::canonical_deck_hash(s);
  std::string body;
  if (cache_.lookup(key, body)) {
    info.cache_hit = true;
    return body;
  }

  const device::Structure structure = io::make_structure(s);
  const core::SimulationOptions resolved =
      io::resolved_solver_options(s, structure);
  const std::string pool_key =
      device_layout_key(s) + "||" +
      core::pipeline_reuse_key(resolved.grid.n, resolved);
  std::shared_ptr<core::EnergyPipeline> pipeline = pool_.checkout(pool_key);
  // The Simulation constructor throws on a reuse mismatch; the key should
  // make one impossible, but a cold build beats taking the request down.
  if (pipeline &&
      !pipeline->reuse_mismatch(resolved.grid.n, resolved).empty()) {
    pipeline.reset();
  }
  info.warm_pipeline = pipeline != nullptr;
  const double t0 = now_seconds();
  io::RunOutcome out =
      io::run_scenario(s, *registry_, nullptr, std::move(pipeline));
  info.solve_seconds = now_seconds() - t0;
  pool_.checkin(pool_key, std::move(out.pipeline));
  body = io::render_result_json(s, out.resolved, out.results);
  cache_.insert(key, body);
  return body;
}

}  // namespace qtx::serve
