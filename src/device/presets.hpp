#pragma once

/// \file presets.hpp
/// Device scenario catalog: named, parameterized `StructureParams` presets
/// plus a text binding so scenario files (io/scenario_parser.hpp) and the
/// `qtx` CLI can select a geometry by name and override any parameter
/// per-key — the reproduction's stand-in for the paper's per-device input
/// decks (Table 3 geometries).
///
/// Presets:
///   - "quickstart"       — the canonical 4-cell test chain every tutorial,
///                          golden file, and smoke test runs
///   - "nanoribbon"       — longer, narrower-gap ribbon for I-V sweeps
///                          (source - gated channel - drain studies)
///   - "nanowire-vacancy" — quickstart-like wire with a periodic vacancy
///                          defect (one dangling site per PUC)
///   - "cnt"              — CNT-like cell: single-PUC transport cells with
///                          graphene-like hopping and weak dimerization
///
/// Every preset is a plain `StructureParams` value; overriding a key with
/// `set_structure_param` composes naturally ("preset = nanoribbon" then
/// "num_cells = 12" in a scenario's [device] section).

#include <string>
#include <utility>
#include <vector>

#include "device/structure.hpp"

namespace qtx::device {

/// One catalog entry: name, one-line description, and the parameter set.
struct DevicePreset {
  std::string name;
  std::string description;
  StructureParams params;
};

/// The full catalog, in documentation order (see docs/userguide.md).
const std::vector<DevicePreset>& device_presets();

/// Catalog names, in catalog order (for CLI listings and error messages).
std::vector<std::string> device_preset_names();

/// Look up a preset's parameters by name. Throws std::runtime_error listing
/// the known names on an unknown \p name.
StructureParams device_preset(const std::string& name);

/// Set one StructureParams field from text by its dotted key (field names:
/// "orbitals_per_puc", "nu", "nu_h", "num_cells", "puc_length_nm",
/// "hopping_ev", "dimerization", "decay_length_nm", "coulomb_onsite_ev",
/// "coulomb_screening_nm", "r_cut_nm", "onsite_disorder_ev", "seed",
/// "vacancy_orbital", "vacancy_shift_ev"). Throws std::runtime_error on an
/// unknown key (listing the known keys) or a malformed value.
void set_structure_param(StructureParams& params, const std::string& key,
                         const std::string& value);

/// Every bindable device parameter as {key, canonical value}, in a fixed
/// order; round-trips through `set_structure_param` exactly (doubles are
/// "%.17g"-formatted).
std::vector<std::pair<std::string, std::string>> serialize_structure_params(
    const StructureParams& params);

/// All bindable device-parameter keys, in serialization order.
std::vector<std::string> structure_param_keys();

}  // namespace qtx::device
