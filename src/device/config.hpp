#pragma once

/// \file config.hpp
/// Device-structure bookkeeping mirroring paper Table 3. Each preset encodes
/// the published nanowire/nanoribbon geometry parameters; the derived
/// quantities (atom counts, orbital counts, block sizes, non-zero counts)
/// follow from the same formulas the paper tabulates:
///
///   ÑBS   = 4 * Si_per_PUC + 1 * H_per_PUC     (4 MLWFs per Si, 1 per H)
///   N_BS  = ÑBS * N_U
///   N_A   = (Si + H)_per_PUC * N_U * N_B
///   N_AO  = ÑBS * N_U * N_B
///   H_NNZ = ÑBS^2 * (N_PUC (2 N_U^H + 1) - N_U^H (N_U^H + 1))
///           (block-banded pattern with Hamiltonian reach N_U^H PUCs)
///
/// G_NNZ uses the same banded formula with the r_cut-limited reach of the
/// Coulomb matrix, including the fractional PUC coverage of r_cut.

#include <cstdint>
#include <string>
#include <vector>

namespace qtx::device {

struct DeviceConfig {
  std::string name;

  // Geometry (paper Table 3).
  double total_length_nm = 0.0;   ///< L_tot
  double cross_section_nm2 = 0.0; ///< A
  double circumference_nm = 0.0;  ///< C
  double r_cut_angstrom = 0.0;    ///< interaction cutoff

  // Composition per primitive unit cell.
  int si_per_puc = 0;
  int h_per_puc = 0;

  // Blocking.
  int nu = 0;    ///< primitive cells per transport cell (G)
  int nu_w = 0;  ///< primitive cells per transport cell (W)
  int nu_h = 0;  ///< Hamiltonian coupling reach in PUCs
  int num_cells = 0;  ///< N_B transport cells (G)

  // Published reference values for validation (0 if not reported).
  std::int64_t paper_num_atoms = 0;
  std::int64_t paper_num_orbitals = 0;
  std::int64_t paper_h_nnz = 0;
  std::int64_t paper_g_nnz = 0;

  int atoms_per_puc() const { return si_per_puc + h_per_puc; }
  int orbitals_per_puc() const { return 4 * si_per_puc + h_per_puc; }
  int num_pucs() const { return nu * num_cells; }
  int block_size() const { return orbitals_per_puc() * nu; }
  int block_size_w() const { return orbitals_per_puc() * nu_w; }
  int num_cells_w() const { return num_pucs() / nu_w; }
  double puc_length_nm() const { return total_length_nm / num_pucs(); }

  std::int64_t num_atoms() const {
    return static_cast<std::int64_t>(atoms_per_puc()) * num_pucs();
  }
  std::int64_t num_orbitals() const {
    return static_cast<std::int64_t>(orbitals_per_puc()) * num_pucs();
  }

  /// Non-zeros of a PUC-block-banded matrix with reach \p reach PUCs:
  /// full band minus the triangular corners.
  std::int64_t banded_nnz(double reach) const;

  std::int64_t h_nnz() const { return banded_nnz(nu_h); }
  /// Coulomb-type reach in (fractional) PUCs from r_cut.
  double coulomb_reach_pucs() const {
    return 0.1 * r_cut_angstrom / puc_length_nm();  // 10 A = 1 nm
  }
  std::int64_t g_nnz() const { return banded_nnz(coulomb_reach_pucs()); }
};

/// Paper Table 3 presets.
DeviceConfig nw1();
DeviceConfig nw2();
/// Nanoribbon with \p num_cells transport cells (NR-16/23/24/40/44/80).
DeviceConfig nr(int num_cells);

/// All eight structures benchmarked in the paper, in Table 3 order.
std::vector<DeviceConfig> table3_devices();

}  // namespace qtx::device
