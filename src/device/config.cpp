#include "device/config.hpp"

#include <cmath>

#include "common/check.hpp"

namespace qtx::device {
namespace {

/// Fraction of orbital pairs between two unit-length segments at integer
/// separation d whose distance is below \p reach (both in PUC units). The
/// pair-separation u = (y - x) + d with x, y uniform in [0,1] has the
/// triangular density 1 - |u - d|, giving the closed form below.
double pair_fraction(double reach, int d) {
  const double t = reach - d;
  if (t <= -1.0) return 0.0;
  if (t >= 1.0) return 1.0;
  if (t <= 0.0) return 0.5 * (1.0 + t) * (1.0 + t);
  return 1.0 - 0.5 * (1.0 - t) * (1.0 - t);
}

}  // namespace

std::int64_t DeviceConfig::banded_nnz(double reach) const {
  const std::int64_t nbs = orbitals_per_puc();
  const std::int64_t npuc = num_pucs();
  const bool integral = std::abs(reach - std::round(reach)) < 1e-12;
  double factor = 0.0;
  if (integral) {
    // Full-block band: every h_ij block up to |i-j| = reach is dense
    // (Hamiltonian truncation happens at whole-block granularity).
    const int u = static_cast<int>(std::round(reach));
    factor = static_cast<double>(npuc);
    for (int d = 1; d <= u && d < npuc; ++d)
      factor += 2.0 * static_cast<double>(npuc - d);
  } else {
    // Distance-based truncation (r_cut acts on orbital pairs): blocks at
    // separation d keep only the pair fraction within reach.
    factor = static_cast<double>(npuc) * pair_fraction(reach, 0);
    for (int d = 1; d < npuc; ++d) {
      const double f = pair_fraction(reach, d);
      if (f == 0.0) break;
      factor += 2.0 * f * static_cast<double>(npuc - d);
    }
  }
  return static_cast<std::int64_t>(std::llround(
      static_cast<double>(nbs) * static_cast<double>(nbs) * factor));
}

DeviceConfig nw1() {
  DeviceConfig c;
  c.name = "NW-1";
  c.total_length_nm = 39.1;
  c.cross_section_nm2 = 0.8;
  c.circumference_nm = 3.1;
  c.r_cut_angstrom = 10.95;
  c.si_per_puc = 21;  // 4*21 + 20 = 104 = paper's ÑBS
  c.h_per_puc = 20;
  c.nu = 4;
  c.nu_w = 8;
  c.nu_h = 3;
  c.num_cells = 18;
  c.paper_num_atoms = 2952;
  c.paper_num_orbitals = 7488;
  c.paper_h_nnz = 5000000;      // 0.5e7
  c.paper_g_nnz = 3000000;      // 0.3e7
  return c;
}

DeviceConfig nw2() {
  DeviceConfig c;
  c.name = "NW-2";
  c.total_length_nm = 34.7;
  c.cross_section_nm2 = 4.3;
  c.circumference_nm = 6.9;
  c.r_cut_angstrom = 7.15;
  c.si_per_puc = 113;  // 4*113 + 52 = 504
  c.h_per_puc = 52;
  c.nu = 4;
  c.nu_w = 4;
  c.nu_h = 4;
  c.num_cells = 16;
  c.paper_num_atoms = 10560;
  c.paper_num_orbitals = 32256;
  c.paper_h_nnz = 141000000;    // 14.1e7
  c.paper_g_nnz = 43000000;     // 4.3e7
  return c;
}

DeviceConfig nr(int num_cells) {
  QTX_CHECK(num_cells >= 2);
  DeviceConfig c;
  c.name = "NR-" + std::to_string(num_cells);
  c.total_length_nm = 2.172 * num_cells;
  c.cross_section_nm2 = 7.5;
  c.circumference_nm = 13.0;
  c.r_cut_angstrom = 7.5;
  c.si_per_puc = 196;  // 4*196 + 68 = 852; 264 atoms/PUC, 1056 per cell
  c.h_per_puc = 68;
  c.nu = 4;
  c.nu_w = 4;
  c.nu_h = 4;
  c.num_cells = num_cells;
  switch (num_cells) {
    case 16:
      c.paper_num_atoms = 16896;
      c.paper_num_orbitals = 54528;
      c.paper_h_nnz = 404000000;  // 40.4e7
      c.paper_g_nnz = 126000000;  // 12.6e7
      break;
    case 24:
      c.paper_num_atoms = 25344;
      c.paper_num_orbitals = 81792;
      c.paper_h_nnz = 613000000;  // 61.3e7
      c.paper_g_nnz = 190000000;  // 19.0e7
      break;
    case 40:
      c.paper_num_atoms = 42240;
      c.paper_num_orbitals = 136320;
      c.paper_h_nnz = 1031000000;  // 103.1e7
      c.paper_g_nnz = 318000000;   // 31.8e7
      break;
    case 23:
      c.paper_num_atoms = 24288;
      break;
    case 44:
      c.paper_num_atoms = 46464;
      break;
    case 80:
      c.paper_num_atoms = 84480;
      break;
    default:
      break;  // generic NR-N (formula column of Table 3)
  }
  return c;
}

std::vector<DeviceConfig> table3_devices() {
  return {nw1(), nw2(), nr(16), nr(23), nr(24), nr(40), nr(44), nr(80)};
}

}  // namespace qtx::device
