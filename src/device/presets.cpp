#include "device/presets.hpp"

#include <sstream>
#include <stdexcept>

#include "common/binding.hpp"

namespace qtx::device {
namespace {

namespace qs = qtx::strings;

StructureParams quickstart_params() {
  // Exactly make_test_structure(4): the device of the README quickstart,
  // the golden-file suite, and the CLI smoke test. Keep in sync with
  // device/structure.cpp (asserted by tests/test_io.cpp).
  StructureParams p;
  p.orbitals_per_puc = 8;
  p.nu = 2;
  p.nu_h = 2;
  p.num_cells = 4;
  p.hopping_ev = 2.0;
  p.dimerization = 0.15;
  p.r_cut_nm = 1.0;
  return p;
}

StructureParams nanoribbon_params() {
  // Longer channel with a narrower gap: room for a source - gated channel -
  // drain profile (cell_potential) and bias sweeps.
  StructureParams p;
  p.orbitals_per_puc = 8;
  p.nu = 2;
  p.nu_h = 2;
  p.num_cells = 6;
  p.hopping_ev = 2.0;
  p.dimerization = 0.10;
  p.r_cut_nm = 1.0;
  return p;
}

StructureParams nanowire_vacancy_params() {
  // Quickstart-like wire with a periodic vacancy defect: one orbital per
  // PUC pushed out of the transport window, plus a mild onsite spread —
  // backscattering without breaking the block periodicity.
  StructureParams p = quickstart_params();
  p.num_cells = 6;
  p.vacancy_orbital = 3;
  p.vacancy_shift_ev = 8.0;
  p.onsite_disorder_ev = 0.05;
  return p;
}

StructureParams cnt_params() {
  // CNT-like periodic cell: one PUC per transport cell, graphene-like
  // nearest-neighbour hopping (2.7 eV) with weak dimerization (a small
  // curvature-induced gap) and a graphene-scale lattice period.
  StructureParams p;
  p.orbitals_per_puc = 10;
  p.nu = 1;
  p.nu_h = 1;
  p.num_cells = 8;
  p.puc_length_nm = 0.426;
  p.hopping_ev = 2.7;
  p.dimerization = 0.05;
  p.decay_length_nm = 0.02;
  p.coulomb_onsite_ev = 3.0;
  p.r_cut_nm = 0.8;
  return p;
}

using Binder = qtx::binding::FieldBinder<StructureParams>;

const std::vector<Binder>& binders() {
  namespace qb = qtx::binding;
  static const std::vector<Binder> table = [] {
    std::vector<Binder> b;
    b.push_back(qb::bind_int("orbitals_per_puc",
                             &StructureParams::orbitals_per_puc));
    b.push_back(qb::bind_int("nu", &StructureParams::nu));
    b.push_back(qb::bind_int("nu_h", &StructureParams::nu_h));
    b.push_back(qb::bind_int("num_cells", &StructureParams::num_cells));
    b.push_back(qb::bind_double("puc_length_nm",
                                &StructureParams::puc_length_nm));
    b.push_back(qb::bind_double("hopping_ev", &StructureParams::hopping_ev));
    b.push_back(
        qb::bind_double("dimerization", &StructureParams::dimerization));
    b.push_back(qb::bind_double("decay_length_nm",
                                &StructureParams::decay_length_nm));
    b.push_back(qb::bind_double("coulomb_onsite_ev",
                                &StructureParams::coulomb_onsite_ev));
    b.push_back(qb::bind_double("coulomb_screening_nm",
                                &StructureParams::coulomb_screening_nm));
    b.push_back(qb::bind_double("r_cut_nm", &StructureParams::r_cut_nm));
    b.push_back(qb::bind_double("onsite_disorder_ev",
                                &StructureParams::onsite_disorder_ev));
    b.push_back({"seed",
                 [](StructureParams& p, const std::string& v) {
                   p.seed = qs::parse_uint64(v);
                 },
                 [](const StructureParams& p) {
                   return std::to_string(p.seed);
                 }});
    b.push_back(qb::bind_int("vacancy_orbital",
                             &StructureParams::vacancy_orbital));
    b.push_back(qb::bind_double("vacancy_shift_ev",
                                &StructureParams::vacancy_shift_ev));
    return b;
  }();
  return table;
}

}  // namespace

const std::vector<DevicePreset>& device_presets() {
  static const std::vector<DevicePreset> catalog = {
      {"quickstart",
       "4-cell dimerized test chain (the golden-file device; gap ~0.6 eV)",
       quickstart_params()},
      {"nanoribbon",
       "6-cell narrower-gap ribbon for gate/bias sweeps (source - channel - "
       "drain)",
       nanoribbon_params()},
      {"nanowire-vacancy",
       "6-cell wire with a periodic vacancy defect (one dangling site per "
       "PUC) and mild onsite disorder",
       nanowire_vacancy_params()},
      {"cnt",
       "CNT-like periodic cell: 1 PUC per transport cell, graphene-like "
       "hopping, weak dimerization",
       cnt_params()},
  };
  return catalog;
}

std::vector<std::string> device_preset_names() {
  std::vector<std::string> names;
  names.reserve(device_presets().size());
  for (const DevicePreset& p : device_presets()) names.push_back(p.name);
  return names;
}

StructureParams device_preset(const std::string& name) {
  for (const DevicePreset& p : device_presets())
    if (p.name == name) return p.params;
  std::ostringstream os;
  os << "unknown device preset \"" << name << "\"; known presets: ";
  const auto names = device_preset_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ", ";
    os << names[i];
  }
  throw std::runtime_error(os.str());
}

void set_structure_param(StructureParams& params, const std::string& key,
                         const std::string& value) {
  qtx::binding::set_field(binders(), "device parameter", params, key, value);
}

std::vector<std::pair<std::string, std::string>> serialize_structure_params(
    const StructureParams& params) {
  return qtx::binding::serialize_fields(binders(), params);
}

std::vector<std::string> structure_param_keys() {
  return qtx::binding::field_keys(binders());
}

}  // namespace qtx::device
