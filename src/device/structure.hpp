#pragma once

/// \file structure.hpp
/// Synthetic MLWF-like device model — the reproduction's substitute for the
/// paper's VASP + Wannier90 inputs (see DESIGN.md, substitution table).
///
/// The paper's pipeline computes a primitive-unit-cell (PUC) Hamiltonian in a
/// maximally-localized Wannier basis, with coupling blocks h_ij reaching N_U
/// neighbouring PUCs, and a bare Coulomb matrix V truncated at r_cut; the
/// device Hamiltonian is the periodic repetition of that PUC (paper §4.1).
/// This module generates matrices with exactly that structure:
///
///  - orbitals form a dimerized (SSH-like) chain with exponentially decaying
///    longer-range hoppings, giving a controllable band gap at half filling
///    — the role the Si/H nanostructure's gap plays in the paper;
///  - identical blocks for every PUC (periodicity), Hermitian by
///    construction;
///  - an Ohno-potential bare Coulomb matrix V_ab = U / sqrt(1 + (r/a)^2)
///    truncated at r_cut, reproducing the r_cut-banded sparsity of Fig. 2.
///
/// Every NEGF+GW kernel downstream consumes only this structure, so swapping
/// in real Wannier data would be a pure I/O change.

#include <cstdint>
#include <vector>

#include "bsparse/bsparse.hpp"

namespace qtx::device {

using la::Matrix;

struct StructureParams {
  int orbitals_per_puc = 8;  ///< ÑBS; even values give clean half filling
  int nu = 2;                ///< PUCs per transport cell (N_U)
  int nu_h = 2;              ///< Hamiltonian coupling reach in PUCs (<= nu)
  int num_cells = 6;         ///< transport cells (N_B)
  double puc_length_nm = 0.543;  ///< silicon-like lattice period
  double hopping_ev = 2.0;       ///< nearest-neighbour |t|
  double dimerization = 0.15;    ///< SSH delta; band gap ~ 2 t delta
  double decay_length_nm = 0.03; ///< exponential decay of long hops; must be
                                 ///< well below the orbital spacing so the
                                 ///< dimerization gap survives
  double coulomb_onsite_ev = 2.0;    ///< Ohno U
  double coulomb_screening_nm = 0.3; ///< Ohno length a
  double r_cut_nm = 1.0;             ///< interaction cutoff (paper r_cut)
  double onsite_disorder_ev = 0.0;   ///< deterministic per-orbital spread
  std::uint64_t seed = 1234;         ///< seed for the onsite spread
  /// Vacancy-defect model: orbital index within the PUC whose onsite energy
  /// is shifted by `vacancy_shift_ev`, pushing it out of the transport
  /// window — a periodic vacancy superlattice (one dangling site per PUC).
  /// -1 (the default) disables the defect.
  int vacancy_orbital = -1;
  double vacancy_shift_ev = 8.0;  ///< onsite shift of the vacancy orbital
};

class Structure {
 public:
  explicit Structure(const StructureParams& p);

  const StructureParams& params() const { return p_; }
  int orbitals_per_puc() const { return p_.orbitals_per_puc; }
  int block_size() const { return p_.orbitals_per_puc * p_.nu; }
  int num_cells() const { return p_.num_cells; }
  int num_pucs() const { return p_.nu * p_.num_cells; }
  int dim() const { return block_size() * num_cells(); }

  /// PUC-level Hamiltonian block h_{i,i+d}, d in [0, h_reach()]. d = 0 is
  /// the Hermitian intra-cell block.
  const Matrix& h_puc(int d) const { return h_.at(d); }
  int h_reach() const { return static_cast<int>(h_.size()) - 1; }

  /// PUC-level bare-Coulomb block v_{i,i+d}, d in [0, v_reach()].
  const Matrix& v_puc(int d) const { return v_.at(d); }
  int v_reach() const { return static_cast<int>(v_.size()) - 1; }

  /// Device Hamiltonian / Coulomb matrix at transport-cell granularity
  /// (N_B blocks of size N_BS), the BT pattern of paper Fig. 2.
  bt::BlockTridiag hamiltonian_bt() const;
  bt::BlockTridiag coulomb_bt() const;

  /// Bloch Hamiltonian H(k) = h_0 + sum_d (h_d e^{ikd} + h_d† e^{-ikd}),
  /// k in units of 1/PUC (k in [-pi, pi]).
  Matrix bloch_hamiltonian(double k) const;

  /// Band energies over a uniform k grid; bands[ik][band] ascending.
  std::vector<std::vector<double>> band_structure(int nk) const;

  struct GapInfo {
    double valence_max;
    double conduction_min;
    double gap() const { return conduction_min - valence_max; }
    double midgap() const { return 0.5 * (conduction_min + valence_max); }
  };
  /// Band edges around half filling, scanned over \p nk k-points.
  GapInfo band_gap(int nk = 64) const;

  /// Position of orbital \p o of PUC \p puc along the transport axis (nm).
  double orbital_position_nm(int puc, int o) const;

  /// Exact non-zero counts of the generated matrices (Table 3 validation).
  std::int64_t nnz_hamiltonian() const;
  std::int64_t nnz_coulomb() const;

 private:
  StructureParams p_;
  std::vector<Matrix> h_;  ///< h_[d] couples PUC i to PUC i+d
  std::vector<Matrix> v_;
};

/// Small default structure used across tests and examples: 4 transport cells
/// of 2 PUCs x 8 orbitals, gap ~0.6 eV.
Structure make_test_structure(int num_cells = 4);

}  // namespace qtx::device
