#include "device/structure.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace qtx::device {

Structure::Structure(const StructureParams& p) : p_(p) {
  QTX_CHECK(p.orbitals_per_puc >= 2 && p.nu >= 1 && p.num_cells >= 2);
  QTX_CHECK_MSG(p.nu_h <= p.nu,
                "Hamiltonian reach must fit inside one transport cell");
  const int m = p.orbitals_per_puc;
  const double dx = p.puc_length_nm / m;  // orbital spacing along the chain

  // Deterministic onsite spread, identical in every PUC (periodicity).
  Rng rng(p.seed);
  std::vector<double> onsite(m, 0.0);
  for (int o = 0; o < m; ++o)
    onsite[o] = p.onsite_disorder_ev * rng.uniform();
  // Vacancy defect: push one orbital per PUC out of the transport window.
  if (p.vacancy_orbital >= 0) {
    QTX_CHECK_MSG(p.vacancy_orbital < m,
                  "vacancy_orbital must index an orbital of the PUC (got "
                      << p.vacancy_orbital << ", PUC has " << m
                      << " orbitals)");
    onsite[p.vacancy_orbital] += p.vacancy_shift_ev;
  }

  // Hamiltonian blocks h_[d](o, o') couple orbital o of PUC 0 with orbital
  // o' of PUC d. Chain index n = puc * m + o; hoppings depend on the chain
  // distance with SSH dimerization on nearest neighbours.
  h_.assign(p.nu_h + 1, Matrix(m, m));
  for (int d = 0; d <= p.nu_h; ++d) {
    for (int o = 0; o < m; ++o) {
      for (int op = 0; op < m; ++op) {
        const int n = o;
        const int np = d * m + op;
        if (d == 0 && op == o) {
          h_[d](o, op) = cplx(onsite[o], 0.0);
          continue;
        }
        const int dist = std::abs(np - n);
        if (d == 0 && op < o) continue;  // fill upper, mirror below
        double t;
        if (dist == 1) {
          // Dimerized nearest-neighbour bond: strength alternates with the
          // bond index min(n, np).
          const int bond = std::min(n, np);
          const double sign = (bond % 2 == 0) ? 1.0 : -1.0;
          t = -p.hopping_ev * (1.0 + sign * p.dimerization);
        } else {
          const double r = dist * dx;
          t = -p.hopping_ev * std::exp(-(r - dx) / p.decay_length_nm);
          if (std::abs(t) < 1e-12) continue;
        }
        h_[d](o, op) = cplx(t, 0.0);
        if (d == 0) h_[d](op, o) = cplx(t, 0.0);
      }
    }
  }

  // Bare Coulomb (Ohno potential) truncated at r_cut; reach in PUCs.
  const int vreach =
      std::min(p.nu, static_cast<int>(std::ceil(p.r_cut_nm / p.puc_length_nm)));
  v_.assign(vreach + 1, Matrix(m, m));
  for (int d = 0; d <= vreach; ++d) {
    for (int o = 0; o < m; ++o) {
      for (int op = 0; op < m; ++op) {
        const double r =
            std::abs((d * m + op - o)) * dx;
        if (r > p.r_cut_nm) continue;
        const double a = p.coulomb_screening_nm;
        v_[d](o, op) =
            cplx(p.coulomb_onsite_ev / std::sqrt(1.0 + (r / a) * (r / a)),
                 0.0);
      }
    }
  }
  QTX_CHECK_MSG(v_puc(0).is_hermitian(1e-14), "V intra-block must be Hermitian");
  QTX_CHECK_MSG(h_puc(0).is_hermitian(1e-14), "h intra-block must be Hermitian");
}

namespace {

/// Assemble PUC-level blocks into a banded matrix over all PUCs, then
/// regroup into transport cells (paper Fig. 2 construction).
bt::BlockTridiag assemble(const std::vector<Matrix>& blocks, int m, int npuc,
                          int nu) {
  const int reach = static_cast<int>(blocks.size()) - 1;
  bt::BlockBanded fine(npuc, m, std::min(reach, npuc - 1));
  for (int i = 0; i < npuc; ++i) {
    for (int d = -std::min(reach, i); d <= std::min(reach, npuc - 1 - i);
         ++d) {
      if (d >= 0)
        fine.block(i, i + d) = blocks[d];
      else
        fine.block(i, i + d) = blocks[-d].dagger();
    }
  }
  return bt::regroup_to_bt(fine, nu);
}

}  // namespace

bt::BlockTridiag Structure::hamiltonian_bt() const {
  return assemble(h_, p_.orbitals_per_puc, num_pucs(), p_.nu);
}

bt::BlockTridiag Structure::coulomb_bt() const {
  return assemble(v_, p_.orbitals_per_puc, num_pucs(), p_.nu);
}

Matrix Structure::bloch_hamiltonian(double k) const {
  Matrix hk = h_[0];
  for (int d = 1; d <= h_reach(); ++d) {
    const cplx phase(std::cos(k * d), std::sin(k * d));
    hk.add_scaled(phase, h_[d]);
    hk.add_scaled(std::conj(phase), h_[d].dagger());
  }
  return hk;
}

std::vector<std::vector<double>> Structure::band_structure(int nk) const {
  std::vector<std::vector<double>> bands(nk);
  for (int ik = 0; ik < nk; ++ik) {
    const double k = -kPi + 2.0 * kPi * ik / (nk - 1);
    bands[ik] = la::eig_hermitian(bloch_hamiltonian(k)).values;
  }
  return bands;
}

Structure::GapInfo Structure::band_gap(int nk) const {
  const auto bands = band_structure(nk);
  const int m = p_.orbitals_per_puc;
  const int nv = m / 2;  // half filling
  GapInfo g{-1e300, 1e300};
  for (const auto& bk : bands) {
    g.valence_max = std::max(g.valence_max, bk[nv - 1]);
    g.conduction_min = std::min(g.conduction_min, bk[nv]);
  }
  return g;
}

double Structure::orbital_position_nm(int puc, int o) const {
  const double dx = p_.puc_length_nm / p_.orbitals_per_puc;
  return (puc * p_.orbitals_per_puc + o + 0.5) * dx;
}

std::int64_t Structure::nnz_hamiltonian() const {
  std::int64_t nnz = 0;
  const int npuc = num_pucs();
  for (int d = 0; d <= h_reach(); ++d) {
    std::int64_t blk = 0;
    for (int o = 0; o < p_.orbitals_per_puc; ++o)
      for (int op = 0; op < p_.orbitals_per_puc; ++op)
        if (h_[d](o, op) != cplx(0.0)) ++blk;
    nnz += (d == 0) ? blk * npuc : 2 * blk * (npuc - d);
  }
  return nnz;
}

std::int64_t Structure::nnz_coulomb() const {
  std::int64_t nnz = 0;
  const int npuc = num_pucs();
  for (int d = 0; d <= v_reach(); ++d) {
    std::int64_t blk = 0;
    for (int o = 0; o < p_.orbitals_per_puc; ++o)
      for (int op = 0; op < p_.orbitals_per_puc; ++op)
        if (v_[d](o, op) != cplx(0.0)) ++blk;
    nnz += (d == 0) ? blk * npuc : 2 * blk * (npuc - d);
  }
  return nnz;
}

Structure make_test_structure(int num_cells) {
  StructureParams p;
  p.orbitals_per_puc = 8;
  p.nu = 2;
  p.nu_h = 2;
  p.num_cells = num_cells;
  p.hopping_ev = 2.0;
  p.dimerization = 0.15;
  p.r_cut_nm = 1.0;
  return Structure(p);
}

}  // namespace qtx::device
