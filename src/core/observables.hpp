#pragma once

/// \file observables.hpp
/// Physical observables derived from the selected Green's-function blocks
/// (paper §4.5): local/total density of states, charge density, spectral
/// and terminal currents (Meir-Wingreen), bond currents (continuity check),
/// ballistic transmission, and the GW-renormalized band structure.

#include <vector>

#include "core/simulation.hpp"

namespace qtx::core {

/// Total DOS(E) = -1/pi Im Tr G^R(E), one value per grid point.
std::vector<double> total_dos(const Simulation& s);

/// Local DOS per transport cell: ldos[cell][e].
std::vector<std::vector<double>> local_dos(const Simulation& s);

/// Electron density per transport cell: n_i = -i (dE/2pi) sum_E Tr G<_ii.
std::vector<double> electron_density(const Simulation& s);

/// Spectral current at the left contact (Meir-Wingreen integrand):
///   i_L(E) = Tr[Sigma<_L(E) G>_00(E) - Sigma>_L(E) G<_00(E)].
/// Real and positive for f_L > f_R in a conducting window.
std::vector<double> spectral_current_left(const Simulation& s);
std::vector<double> spectral_current_right(const Simulation& s);

/// Terminal current I_L = (dE/2pi) sum_E i_L(E) (units: e/hbar per spin).
double terminal_current_left(const Simulation& s);
double terminal_current_right(const Simulation& s);

/// Energy current I^E_L = (dE/2pi) sum_E E i_L(E) (paper §4.5's I_dE):
/// the energy flux carried into the device through the left contact.
double energy_current_left(const Simulation& s);
double energy_current_right(const Simulation& s);

/// Bond current through interface i -> i+1 from the off-diagonal lesser
/// blocks; constant across i in steady state (exactly so in ballistic runs).
std::vector<double> bond_currents(const Simulation& s);

/// Ballistic transmission T(E) = Tr[Gamma_L G^R_{0,N-1} Gamma_R G^A_{N-1,0}]
/// evaluated from the current self-energy state.
std::vector<double> transmission(const Simulation& s);

/// Landauer current from a transmission curve: (dE/2pi) sum T (f_L - f_R).
double landauer_current(const Simulation& s, const std::vector<double>& t);

/// GW band-structure renormalization: quasiparticle energies from
/// H(k) + Re Sigma^R(E~band) along the 1D Brillouin zone. Returns bands
/// [ik][band] for the bare and corrected Hamiltonians.
struct BandRenormalization {
  std::vector<double> k;                       ///< k points (1/PUC units)
  std::vector<std::vector<double>> bare;       ///< DFT-like bands
  std::vector<std::vector<double>> corrected;  ///< GW-corrected bands
  double bare_gap = 0.0;
  double corrected_gap = 0.0;
};
BandRenormalization band_renormalization(const Simulation& s, int nk = 33);

}  // namespace qtx::core
