#include "core/perf_model.hpp"

#include <cmath>
#include <cstdint>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace qtx::core {

MachineSpec alps() {
  // Paper §6.1: 2,600 nodes x 4 GH200; FP64 tensor peak 67 Tflop/s;
  // Rpeak/Rmax per superchip 55.3/41.8 Tflop/s; 96 GB HBM; 25 GB/s NIC.
  return {"Alps", 2600, 4, 67.0, 55.3, 41.8, 96.0, 25.0, 0.76};
}

MachineSpec frontier() {
  // 9,604 nodes x 4 MI250X (8 GCDs); per GCD: 47.9 peak, 26.8 Rpeak,
  // 17.6 Rmax; 64 GB HBM; 25 GB/s NIC per MI250X -> 12.5 per GCD.
  return {"Frontier", 9604, 8, 47.9, 26.8, 17.6, 64.0, 12.5, 0.674};
}

namespace {

/// Two-point linear fits through the paper's measured NR-16 / NR-23
/// per-energy workloads (Table 4, in Tflop): the length-dependent kernels
/// scale linearly in the transport-cell count N_B, the OBC-type kernels are
/// constant (they only see the cross-section).
struct NrFit {
  double g_obc, beyn, lyap, other;   // constants
  double rgf_slope, rgf_icept;       // per-cell (applies to G and W RGF)
  double lhs_slope, lhs_icept;
  double rhs_slope, rhs_icept;
};

NrFit nr_fit(bool memoizer) {
  if (memoizer) {
    return {5.809, 5.809, 5.875, 1.338,
            (244.077 - 167.704) / 7.0, 167.704 - 16.0 * (244.077 - 167.704) / 7.0,
            (64.504 - 44.287) / 7.0, 44.287 - 16.0 * (64.504 - 44.287) / 7.0,
            (261.904 - 181.056) / 7.0,
            181.056 - 16.0 * (261.904 - 181.056) / 7.0};
  }
  return {9.686, 7.629, 8.486, 3.345,
          (244.077 - 167.704) / 7.0, 167.704 - 16.0 * (244.077 - 167.704) / 7.0,
          (64.504 - 44.287) / 7.0, 44.287 - 16.0 * (64.504 - 44.287) / 7.0,
          (261.904 - 181.056) / 7.0,
          181.056 - 16.0 * (261.904 - 181.056) / 7.0};
}

/// Domain-decomposition workload inflation (fill-in + reduced system),
/// anchored to the paper's Table 5 per-energy totals: f(1) = 1,
/// f(2) = 1010.078 / model(NR-24), f(4) = 2566.635 / model(NR-40).
double dd_factor(int ps) {
  if (ps <= 1) return 1.0;
  const double x = ps - 1;
  return 1.0 + 0.113 * x + 0.0478 * x * x;
}

}  // namespace

DeviceWorkload nr_workload(int num_cells, bool memoizer, int ps) {
  const NrFit f = nr_fit(memoizer);
  DeviceWorkload w;
  w.g_obc = f.g_obc;
  w.g_rgf = f.rgf_slope * num_cells + f.rgf_icept;
  w.w_rgf = w.g_rgf;
  w.w_assembly = f.beyn + f.lyap + (f.lhs_slope * num_cells + f.lhs_icept) +
                 (f.rhs_slope * num_cells + f.rhs_icept);
  w.other = f.other;
  const double fac = dd_factor(ps);
  w.g_rgf *= fac;
  w.w_rgf *= fac;
  w.w_assembly *= fac;
  return w;
}

namespace {

/// Per-unit communication seconds for one SCBA iteration: six transposition
/// passes (G≶ down, W≶ down, Sigma≶ back) of the symmetric selected
/// elements, against an effective bandwidth degraded by network contention
/// at scale. Host-staged MPI pays an extra HBM round trip per payload.
double comm_seconds(const MachineSpec& m, const device::DeviceConfig& dev,
                    int units, int energies_per_unit, int ps,
                    NetBackend backend) {
  const double bytes_per_energy =
      0.5 * static_cast<double>(dev.g_nnz()) * 16.0;  // symmetric storage
  const double volume_gb =
      6.0 * bytes_per_energy * energies_per_unit / ps / 1e9;
  double bw = m.nic_gbps;
  // Contention model: all-to-all across N units degrades the effective
  // per-unit bandwidth logarithmically (switch hops / congestion).
  const double contention = 1.0 + 0.22 * std::log2(std::max(1.0, units / 8.0));
  bw /= contention;
  if (backend == NetBackend::kHostMpi) bw /= 1.8;  // staging round trip
  // *CCL instability at extreme scale (paper §7.2): effective bandwidth
  // collapses beyond ~2k units on Alps-like fabrics; modelled as an extra
  // penalty that makes host MPI preferable there.
  if (backend == NetBackend::kCcl && units > 2048)
    bw /= 1.0 + 0.9 * std::log2(units / 2048.0);
  return volume_gb / bw;
}

}  // namespace

std::vector<ScalingPoint> project_weak_scaling(
    const MachineSpec& machine, const device::DeviceConfig& dev,
    const std::vector<int>& node_counts, const ScalingConfig& cfg) {
  QTX_CHECK(!node_counts.empty());
  std::vector<ScalingPoint> out;
  const DeviceWorkload w = nr_workload(dev.num_cells, true, cfg.ps);
  double t_base = 0.0;
  const double eff = (cfg.kernel_efficiency > 0.0)
                         ? cfg.kernel_efficiency
                         : machine.sustained_fraction;
  for (const int nodes : node_counts) {
    const int units = nodes * machine.units_per_node;
    const int total_e = units * cfg.energies_per_unit / cfg.ps;
    ScalingPoint p;
    p.nodes = nodes;
    p.total_energies = total_e;
    // Per-unit compute: its share of the per-energy workload, plus the FFT
    // ("Other") term whose per-element cost grows with log of the global
    // energy count.
    const double fft_growth =
        std::log2(std::max(2.0, static_cast<double>(total_e))) /
        std::log2(std::max(2.0, static_cast<double>(
                                    machine.units_per_node *
                                    cfg.energies_per_unit / cfg.ps)));
    const double per_unit_tflop =
        (w.total() - w.other) * cfg.energies_per_unit / cfg.ps +
        w.other * cfg.energies_per_unit / cfg.ps * fft_growth;
    p.compute_s = per_unit_tflop / (machine.unit_rpeak_tflops * eff);
    p.comm_s = comm_seconds(machine, dev, units, cfg.energies_per_unit,
                            cfg.ps, cfg.backend);
    p.total_s = p.compute_s + p.comm_s;
    p.pflops = w.total() * total_e / p.total_s / 1e3;
    if (t_base == 0.0) t_base = p.total_s;
    p.efficiency = t_base / p.total_s;
    out.push_back(p);
  }
  return out;
}

FullScaleRow project_full_scale(const MachineSpec& machine,
                                const device::DeviceConfig& dev, int ps,
                                int nodes, int total_energies,
                                const ScalingConfig& cfg) {
  FullScaleRow row;
  row.machine = machine.name;
  row.device = dev.name;
  row.ps = ps;
  row.nodes = nodes;
  row.total_energies = total_energies;
  const DeviceWorkload w = nr_workload(dev.num_cells, true, ps);
  row.workload_pflop = w.total() * total_energies / 1e3;
  const int units = nodes * machine.units_per_node;
  const double eff = (cfg.kernel_efficiency > 0.0)
                         ? cfg.kernel_efficiency
                         : machine.sustained_fraction;
  const double per_unit_tflop = w.total() * total_energies / units;
  const double compute_s =
      per_unit_tflop / (machine.unit_rpeak_tflops * eff);
  const double comm_s =
      comm_seconds(machine, dev, units,
                   std::max(1, units > 0 ? total_energies * ps / units : 1),
                   ps, cfg.backend);
  row.time_s = compute_s + comm_s;
  row.pflops = row.workload_pflop / row.time_s;
  row.pct_rmax =
      100.0 * row.pflops * 1e3 / (machine.unit_rmax_tflops * units);
  row.pct_rpeak =
      100.0 * row.pflops * 1e3 / (machine.unit_rpeak_tflops * units);
  return row;
}

// ---------------------------------------------------------------------------
// Measured host peak
// ---------------------------------------------------------------------------

namespace {

/// One batch of independent multiply-add chains: kLanes accumulators x
/// \p iters fused multiply-adds each. The lane loop has no cross-lane
/// dependency, so the compiler vectorizes it at whatever SIMD width the
/// build targets — the same ceiling the la kernels compile against — while
/// the per-lane carry across iterations keeps it from collapsing the loop.
constexpr int kPeakLanes = 64;

double fma_batch(std::int64_t iters, double seed) {
  double acc[kPeakLanes];
  for (int l = 0; l < kPeakLanes; ++l) acc[l] = seed + 0.01 * l;
  const double m = 1.0 + 1e-9, c = 1e-9;
  for (std::int64_t i = 0; i < iters; ++i)
    for (int l = 0; l < kPeakLanes; ++l) acc[l] = acc[l] * m + c;
  double sum = 0.0;
  for (int l = 0; l < kPeakLanes; ++l) sum += acc[l];
  return sum;
}

HostPeak measure_host_peak_impl() {
  HostPeak peak;
  Stopwatch total;
  // Calibrate the batch size to ~2 ms, then take the best of 5 timed runs
  // (best-of filters scheduler noise; the peak is a ceiling, not a mean).
  std::int64_t iters = 1 << 16;
  // qtx-lint: allow(volatile) — optimizer sink for the FMA microkernel
  // result, not synchronization; single-threaded calibration loop.
  volatile double sink = 0.0;
  for (;;) {
    Stopwatch sw;
    sink = sink + fma_batch(iters, 1.0);
    const double s = sw.seconds();
    if (s >= 2e-3 || iters >= (std::int64_t{1} << 26)) break;
    iters *= 2;
  }
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch sw;
    sink = sink + fma_batch(iters, 1.0 + rep);
    const double s = sw.seconds();
    // kPeakLanes chains x (1 mul + 1 add) per iteration.
    const double gflops =
        2.0 * kPeakLanes * static_cast<double>(iters) / s / 1e9;
    if (gflops > best) best = gflops;
  }
  peak.fma_gflops = best;
  peak.measure_seconds = total.seconds();
  return peak;
}

}  // namespace

const HostPeak& measure_host_peak() {
  static const HostPeak peak = measure_host_peak_impl();
  return peak;
}

double achieved_gflops(double flops, double seconds) {
  return seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
}

double pct_of_host_peak(double gflops) {
  const double peak = measure_host_peak().fma_gflops;
  return peak > 0.0 ? 100.0 * gflops / peak : 0.0;
}

}  // namespace qtx::core
