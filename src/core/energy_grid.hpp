#pragma once

/// \file energy_grid.hpp
/// Uniform energy grids. Fermionic quantities (G, Sigma) live on
/// [e_min, e_max]; bosonic quantities (P, W) live on the transfer grid
/// w_k = k * de with the same spacing and point count, their negative
/// frequencies supplied by the lesser/greater symmetry (see
/// fft/convolution.hpp).

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace qtx::core {

struct EnergyGrid {
  double e_min = -5.0;
  double e_max = 5.0;
  int n = 64;

  double de() const { return (e_max - e_min) / (n - 1); }
  double energy(int i) const { return e_min + i * de(); }
  double omega(int k) const { return k * de(); }

  void validate() const {
    QTX_CHECK(n >= 2);
    QTX_CHECK(e_max > e_min);
  }
};

/// One contiguous shard of the energy grid, scheduled as a unit by the
/// parallel energy pipeline (core/energy_pipeline.hpp).
struct EnergyBatch {
  int begin = 0;  ///< first energy index (inclusive)
  int end = 0;    ///< one past the last energy index
  int index = 0;  ///< batch ordinal; keys the pipeline's per-batch workspace
  int size() const { return end - begin; }
};

/// Shard [0, n_energies) into contiguous batches of \p batch_size points;
/// the last batch is ragged when batch_size does not divide n_energies.
/// batch_size <= 0 selects the auto policy of one point per batch (maximum
/// work-stealing granularity). The layout depends only on
/// (n_energies, batch_size) — never on the worker count — so per-batch
/// solver state (OBC caches) is schedule-independent and results stay
/// bit-identical for every thread count.
inline std::vector<EnergyBatch> make_energy_batches(int n_energies,
                                                    int batch_size) {
  QTX_CHECK(n_energies >= 0);
  if (batch_size <= 0) batch_size = 1;
  std::vector<EnergyBatch> batches;
  batches.reserve((n_energies + batch_size - 1) / std::max(batch_size, 1));
  for (int b = 0, i = 0; b < n_energies; b += batch_size, ++i)
    batches.push_back({b, std::min(n_energies, b + batch_size), i});
  return batches;
}

}  // namespace qtx::core
