#pragma once

/// \file energy_grid.hpp
/// Uniform energy grids. Fermionic quantities (G, Sigma) live on
/// [e_min, e_max]; bosonic quantities (P, W) live on the transfer grid
/// w_k = k * de with the same spacing and point count, their negative
/// frequencies supplied by the lesser/greater symmetry (see
/// fft/convolution.hpp).

#include "common/check.hpp"
#include "common/types.hpp"

namespace qtx::core {

struct EnergyGrid {
  double e_min = -5.0;
  double e_max = 5.0;
  int n = 64;

  double de() const { return (e_max - e_min) / (n - 1); }
  double energy(int i) const { return e_min + i * de(); }
  double omega(int k) const { return k * de(); }

  void validate() const {
    QTX_CHECK(n >= 2);
    QTX_CHECK(e_max > e_min);
  }
};

}  // namespace qtx::core
