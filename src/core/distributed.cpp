#include "core/distributed.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <optional>

#include "common/timer.hpp"
#include "core/assembly.hpp"
#include "core/contacts.hpp"
#include "core/energy_pipeline.hpp"
#include "core/gw.hpp"
#include "core/stage_registry.hpp"
#include "fft/convolution.hpp"
#include "obs/trace.hpp"

namespace qtx::core {

// ---------------------------------------------------------------------------
// EnergyShardExchange
// ---------------------------------------------------------------------------

EnergyShardExchange::EnergyShardExchange(par::Comm& comm,
                                         par::BlockDistribution dist)
    : comm_(&comm), dist_(dist) {
  QTX_CHECK(dist_.parts == comm.size());
}

void EnergyShardExchange::post(int e, const std::vector<cplx>& payload) {
  QTX_CHECK_MSG(dist_.owner(e) == comm_->rank(),
                "EnergyShardExchange::post: energy "
                    << e << " is owned by rank " << dist_.owner(e)
                    << ", not by posting rank " << comm_->rank());
  // First cell tags the message with its energy index, so receivers match
  // payloads regardless of the order concurrent workers posted them in.
  std::vector<cplx> msg;
  msg.reserve(payload.size() + 1);
  msg.push_back(cplx(static_cast<double>(e), 0.0));
  msg.insert(msg.end(), payload.begin(), payload.end());
  std::lock_guard<std::mutex> lock(mutex_);
  for (int r = 0; r < comm_->size(); ++r)
    if (r != comm_->rank()) comm_->send(r, msg);
}

void EnergyShardExchange::complete(
    const std::function<void(int, std::vector<cplx>)>& fill) {
  for (int r = 0; r < comm_->size(); ++r) {
    if (r == comm_->rank()) continue;
    const std::int64_t expected = dist_.count(r);
    for (std::int64_t m = 0; m < expected; ++m) {
      std::vector<cplx> msg = comm_->recv(r);
      QTX_CHECK(!msg.empty());
      const int e = static_cast<int>(std::llround(msg.front().real()));
      QTX_CHECK_MSG(dist_.owner(e) == r, "EnergyShardExchange: rank "
                                             << r << " sent energy " << e
                                             << " it does not own");
      msg.erase(msg.begin());
      fill(e, std::move(msg));
    }
  }
}

// ---------------------------------------------------------------------------
// distributed_iteration
// ---------------------------------------------------------------------------

DistributedStats distributed_iteration(par::Comm& comm,
                                       const device::Structure& structure,
                                       const SimulationOptions& opt) {
  opt.validate(structure.num_cells());
  const SymLayout layout{structure.num_cells(), structure.block_size()};
  const int ne = opt.grid.n;
  BlockTridiag h = structure.hamiltonian_bt();
  if (!opt.cell_potential.empty()) apply_cell_potential(h, opt.cell_potential);
  BlockTridiag v = structure.coulomb_bt();
  v *= cplx(opt.gw_scale, 0.0);
  par::Transposer transposer(ne, layout.num_elements(), comm.size());
  const int nb = layout.nb;
  const BlockTridiag zero_sigma(nb, layout.bs);
  const std::int64_t bytes_at_entry = comm.bytes_sent();

  double compute_s = 0.0, comm_s = 0.0;
  Stopwatch phase;
  const std::int64_t e0 = transposer.energies().offset(comm.rank());
  const std::int64_t ne_mine = transposer.energies().count(comm.rank());
  // Per-rank energy pipeline over this rank's grid slice — the same
  // engine (batching, executor policy, per-batch OBC caches) that backs
  // Simulation, resolved from the same registry keys. With the default
  // num_threads = 1 each rank runs its slice sequentially; > 1 nests
  // shared-memory workers inside every rank.
  EnergyPipeline pipeline(static_cast<int>(ne_mine), opt,
                          StageRegistry::global());
  // Phase spans: optional::emplace ends the previous phase's span before
  // the next begins, mirroring the compute_s/comm_s bookkeeping exactly.
  std::optional<obs::Span> pspan;
  // ---- G stage (energy layout) --------------------------------------
  pspan.emplace("dist: G", obs::SpanKind::kStage);
  phase.restart();
  std::vector<cplx> g_lt_flat(ne_mine * layout.num_elements());
  std::vector<cplx> g_gt_flat(ne_mine * layout.num_elements());
  pipeline.for_each_energy([&](int el, int ws) {
    const int e = static_cast<int>(e0 + el);
    BlockTridiag m =
        assemble_electron_lhs(opt.grid.energy(e), opt.eta, h, zero_sigma);
    const ElectronObc ob = electron_obc(m, opt.grid.energy(e), opt.contacts,
                                        pipeline.obc(ws), e);
    m.diag(0) -= ob.sigma_r_left;
    m.diag(nb - 1) -= ob.sigma_r_right;
    BlockTridiag bl(nb, layout.bs), bg(nb, layout.bs);
    bl.diag(0) += ob.sigma_l_left;
    bl.diag(nb - 1) += ob.sigma_l_right;
    bg.diag(0) += ob.sigma_g_left;
    bg.diag(nb - 1) += ob.sigma_g_right;
    const rgf::SelectedSolution sel = pipeline.greens(ws).solve(m, bl, bg);
    const std::vector<cplx> lt = serialize_sym(sel.xl);
    const std::vector<cplx> gt = serialize_sym(sel.xg);
    std::copy(lt.begin(), lt.end(),
              g_lt_flat.begin() + el * layout.num_elements());
    std::copy(gt.begin(), gt.end(),
              g_gt_flat.begin() + el * layout.num_elements());
  });
  compute_s += phase.seconds();
  // ---- transpose to element layout ----------------------------------
  pspan.emplace("dist: exchange G", obs::SpanKind::kStage);
  phase.restart();
  std::vector<cplx> lt_elem = transposer.to_element_layout(comm, g_lt_flat);
  std::vector<cplx> gt_elem = transposer.to_element_layout(comm, g_gt_flat);
  comm_s += phase.seconds();
  // ---- P stage (element layout) -------------------------------------
  pspan.emplace("dist: P", obs::SpanKind::kStage);
  phase.restart();
  const std::int64_t k_mine = transposer.elements().count(comm.rank());
  fft::EnergyConvolver conv(ne, opt.grid.de());
  std::vector<cplx> p_lt_elem(k_mine * ne), p_gt_elem(k_mine * ne),
      p_r_elem(k_mine * ne);
  {
    std::vector<cplx> slt(ne), sgt(ne), olt, ogt, org;
    for (std::int64_t k = 0; k < k_mine; ++k) {
      for (int e = 0; e < ne; ++e) {
        slt[e] = lt_elem[k * ne + e];
        sgt[e] = gt_elem[k * ne + e];
      }
      conv.polarization(slt, sgt, olt, ogt);
      conv.retarded_boson(olt, ogt, org);
      for (int e = 0; e < ne; ++e) {
        p_lt_elem[k * ne + e] = olt[e];
        p_gt_elem[k * ne + e] = ogt[e];
        p_r_elem[k * ne + e] = org[e];
      }
    }
  }
  compute_s += phase.seconds();
  // ---- transpose P back, solve W (energy layout) ---------------------
  pspan.emplace("dist: exchange P", obs::SpanKind::kStage);
  phase.restart();
  std::vector<cplx> p_lt_en = transposer.to_energy_layout(comm, p_lt_elem);
  std::vector<cplx> p_gt_en = transposer.to_energy_layout(comm, p_gt_elem);
  std::vector<cplx> p_r_en = transposer.to_energy_layout(comm, p_r_elem);
  comm_s += phase.seconds();
  pspan.emplace("dist: W", obs::SpanKind::kStage);
  phase.restart();
  std::vector<cplx> w_lt_flat(ne_mine * layout.num_elements());
  std::vector<cplx> w_gt_flat(ne_mine * layout.num_elements());
  pipeline.for_each_energy([&](int el, int ws) {
    const int w = static_cast<int>(e0 + el);
    std::vector<cplx> flt(layout.num_elements()), fgt(layout.num_elements()),
        fr(layout.num_elements()), jump(layout.num_elements());
    for (std::int64_t k = 0; k < layout.num_elements(); ++k) {
      flt[k] = p_lt_en[el * layout.num_elements() + k];
      fgt[k] = p_gt_en[el * layout.num_elements() + k];
      fr[k] = p_r_en[el * layout.num_elements() + k];
      jump[k] = fgt[k] - flt[k];
    }
    const BlockTridiag p_r = deserialize_retarded(fr, jump, layout);
    const BlockTridiag p_lt = deserialize_lesser(flt, layout);
    const BlockTridiag p_gt = deserialize_lesser(fgt, layout);
    BlockTridiag m = assemble_w_lhs(v, p_r);
    BlockTridiag bl = assemble_w_rhs(v, p_lt);
    BlockTridiag bg = assemble_w_rhs(v, p_gt);
    const WObc ob = w_obc(m, bl, bg, pipeline.obc(ws), w);
    m.diag(0) -= ob.br_left;
    m.diag(nb - 1) -= ob.br_right;
    bl.diag(0) += ob.bl_left;
    bl.diag(nb - 1) += ob.bl_right;
    bg.diag(0) += ob.bg_left;
    bg.diag(nb - 1) += ob.bg_right;
    const rgf::SelectedSolution sel = pipeline.greens(ws).solve(m, bl, bg);
    const std::vector<cplx> lt = serialize_sym(sel.xl);
    const std::vector<cplx> gt = serialize_sym(sel.xg);
    std::copy(lt.begin(), lt.end(),
              w_lt_flat.begin() + el * layout.num_elements());
    std::copy(gt.begin(), gt.end(),
              w_gt_flat.begin() + el * layout.num_elements());
  });
  compute_s += phase.seconds();
  // ---- transpose W, Sigma convolution, transpose back ----------------
  pspan.emplace("dist: exchange W", obs::SpanKind::kStage);
  phase.restart();
  std::vector<cplx> wlt_elem = transposer.to_element_layout(comm, w_lt_flat);
  std::vector<cplx> wgt_elem = transposer.to_element_layout(comm, w_gt_flat);
  comm_s += phase.seconds();
  pspan.emplace("dist: Sigma", obs::SpanKind::kStage);
  phase.restart();
  std::vector<cplx> s_lt_elem(k_mine * ne), s_gt_elem(k_mine * ne);
  {
    std::vector<cplx> slt(ne), sgt(ne), wl(ne), wg(ne), olt, ogt;
    for (std::int64_t k = 0; k < k_mine; ++k) {
      for (int e = 0; e < ne; ++e) {
        slt[e] = lt_elem[k * ne + e];
        sgt[e] = gt_elem[k * ne + e];
        wl[e] = wlt_elem[k * ne + e];
        wg[e] = wgt_elem[k * ne + e];
      }
      conv.self_energy(slt, sgt, wl, wg, olt, ogt);
      for (int e = 0; e < ne; ++e) {
        s_lt_elem[k * ne + e] = olt[e];
        s_gt_elem[k * ne + e] = ogt[e];
      }
    }
  }
  compute_s += phase.seconds();
  pspan.emplace("dist: exchange Sigma", obs::SpanKind::kStage);
  phase.restart();
  std::vector<cplx> s_lt_en = transposer.to_energy_layout(comm, s_lt_elem);
  std::vector<cplx> s_gt_en = transposer.to_energy_layout(comm, s_gt_elem);
  comm_s += phase.seconds();
  // ---- mix (energy layout, per rank) ---------------------------------
  // The same registry dispatch Simulation::compute_sigma_and_mix
  // performs: each rank mixes its grid slice through the resolved
  // accel::Mixer, starting from this iteration's zero self-energy.
  pspan.emplace("dist: mix", obs::SpanKind::kStage);
  phase.restart();
  std::vector<std::vector<cplx>> cur_lt(
      ne_mine, std::vector<cplx>(layout.num_elements(), cplx(0.0)));
  std::vector<std::vector<cplx>> cur_gt = cur_lt;
  std::vector<std::vector<cplx>> new_lt(ne_mine), new_gt(ne_mine);
  pipeline.for_each_energy([&](int el, int) {
    new_lt[el].assign(s_lt_en.begin() + el * layout.num_elements(),
                      s_lt_en.begin() + (el + 1) * layout.num_elements());
    new_gt[el].assign(s_gt_en.begin() + el * layout.num_elements(),
                      s_gt_en.begin() + (el + 1) * layout.num_elements());
  });
  const std::unique_ptr<accel::Mixer> mixer =
      StageRegistry::global().make_mixer(opt.resolved_mixer(), opt);
  accel::SigmaState state;
  state.lesser = &cur_lt;
  state.greater = &cur_gt;
  accel::SigmaProposal proposal;
  proposal.lesser = &new_lt;
  proposal.greater = &new_gt;
  const accel::MixOutcome mixed = mixer->mix(
      state, proposal, [&](const std::function<void(int)>& fn) {
        pipeline.for_each_energy([&](int el, int) { fn(el); });
      });
  compute_s += phase.seconds();
  pspan.reset();
  // ---- aggregate ------------------------------------------------------
  DistributedStats stats;
  stats.compute_s = comm.allreduce_max(compute_s);
  stats.comm_s = comm.allreduce_max(comm_s);
  stats.total_s = stats.compute_s + stats.comm_s;
  stats.sigma_update = comm.allreduce_max(mixed.update);
  // Exact below 2^53 bytes: integer counters carried through the double
  // allreduce (the fold itself is ordered, see Comm::allreduce_sum).
  const double bytes_mine =
      static_cast<double>(comm.bytes_sent() - bytes_at_entry);
  stats.bytes_sent = static_cast<std::int64_t>(comm.allreduce_sum(bytes_mine));
  return stats;
}

DistributedStats distributed_iteration(par::CommGroup& world,
                                       const device::Structure& structure,
                                       const SimulationOptions& opt) {
  world.reset_byte_counter();
  DistributedStats stats;
  std::mutex stats_mutex;
  world.run([&](par::Comm& comm) {
    const DistributedStats mine = distributed_iteration(comm, structure, opt);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats = mine;
    }
  });
  // The world counter also covers the stats allreduces themselves — keep
  // the historic exact accounting for in-process worlds.
  stats.bytes_sent = world.total_bytes_sent();
  return stats;
}

}  // namespace qtx::core
