#include "core/scba.hpp"

#include "common/flops.hpp"
#include "common/timer.hpp"

namespace qtx::core {

Scba::Scba(const device::Structure& structure, const ScbaOptions& opt)
    : structure_(structure),
      opt_(opt),
      h_eff_(structure.hamiltonian_bt()),
      v_(structure.coulomb_bt()),
      layout_{structure.num_cells(), structure.block_size()},
      engine_(opt.grid, layout_),
      ephonon_(opt.grid, layout_, opt.ephonon) {
  opt_.grid.validate();
  if (!opt_.cell_potential.empty())
    apply_cell_potential(h_eff_, opt_.cell_potential);
  v_ *= cplx(opt_.gw_scale, 0.0);
  obc::MemoizerOptions mopt;
  mopt.enabled = opt_.use_memoizer;
  memo_ = obc::ObcMemoizer(mopt);
  const int ne = opt_.grid.n;
  const int nb = layout_.nb, bs = layout_.bs;
  gr_.assign(ne, BlockTridiag(nb, bs));
  glt_.assign(ne, BlockTridiag(nb, bs));
  ggt_.assign(ne, BlockTridiag(nb, bs));
  wlt_.assign(ne, BlockTridiag(nb, bs));
  wgt_.assign(ne, BlockTridiag(nb, bs));
  sig_lt_.assign(ne, std::vector<cplx>(layout_.num_elements(), cplx(0.0)));
  sig_gt_ = sig_lt_;
  sig_r_ = sig_lt_;
  sig_fock_.assign(layout_.num_elements(), cplx(0.0));
  obc_lt_l_.resize(ne);
  obc_gt_l_.resize(ne);
  obc_lt_r_.resize(ne);
  obc_gt_r_.resize(ne);
  obc_r_l_.resize(ne);
  obc_r_r_.resize(ne);
}

BlockTridiag Scba::sigma_retarded(int e) const {
  std::vector<cplx> jump(layout_.num_elements());
  for (std::int64_t k = 0; k < layout_.num_elements(); ++k)
    jump[k] = sig_gt_[e][k] - sig_lt_[e][k];
  BlockTridiag s = deserialize_retarded(sig_r_[e], jump, layout_);
  const BlockTridiag fock = deserialize_hermitian(sig_fock_, layout_);
  s += fock;
  return s;
}

BlockTridiag Scba::sigma_lesser(int e) const {
  return deserialize_lesser(sig_lt_[e], layout_);
}

BlockTridiag Scba::effective_system_matrix(int e) const {
  BlockTridiag m = assemble_electron_lhs(opt_.grid.energy(e), opt_.eta,
                                         h_eff_, sigma_retarded(e));
  m.diag(0) -= obc_r_l_[e];
  m.diag(layout_.nb - 1) -= obc_r_r_[e];
  return m;
}

rgf::SelectedSolution Scba::selected_solve(const BlockTridiag& m,
                                           const BlockTridiag& bl,
                                           const BlockTridiag& bg) {
  if (opt_.nd_partitions > 1) {
    rgf::NdOptions nopt;
    nopt.num_partitions = opt_.nd_partitions;
    nopt.num_threads = opt_.nd_threads;
    nopt.symmetrize = opt_.symmetrize;
    return nd_solve(m, bl, bg, nopt).sel;
  }
  rgf::RgfOptions ropt;
  ropt.symmetrize = opt_.symmetrize;
  return rgf_solve(m, bl, bg, ropt);
}

void Scba::solve_g() {
  const int ne = opt_.grid.n;
  const int nb = layout_.nb;
  for (int e = 0; e < ne; ++e) {
    const double energy = opt_.grid.energy(e);
    BlockTridiag m;
    ElectronObc ob;
    {
      ScopedTimer t("G: OBC");
      FlopPhase f("G: OBC");
      m = assemble_electron_lhs(energy, opt_.eta, h_eff_, sigma_retarded(e));
      ob = electron_obc(m, energy, opt_.contacts, memo_, e);
      m.diag(0) -= ob.sigma_r_left;
      m.diag(nb - 1) -= ob.sigma_r_right;
      obc_r_l_[e] = ob.sigma_r_left;
      obc_r_r_[e] = ob.sigma_r_right;
      obc_lt_l_[e] = ob.sigma_l_left;
      obc_gt_l_[e] = ob.sigma_g_left;
      obc_lt_r_[e] = ob.sigma_l_right;
      obc_gt_r_[e] = ob.sigma_g_right;
    }
    {
      ScopedTimer t("G: RGF");
      FlopPhase f("G: RGF");
      BlockTridiag bl = deserialize_lesser(sig_lt_[e], layout_);
      BlockTridiag bg = deserialize_lesser(sig_gt_[e], layout_);
      bl.diag(0) += ob.sigma_l_left;
      bl.diag(nb - 1) += ob.sigma_l_right;
      bg.diag(0) += ob.sigma_g_left;
      bg.diag(nb - 1) += ob.sigma_g_right;
      rgf::SelectedSolution sel = selected_solve(m, bl, bg);
      gr_[e] = std::move(sel.xr);
      glt_[e] = std::move(sel.xl);
      ggt_[e] = std::move(sel.xg);
    }
  }
}

void Scba::compute_polarization() {
  ScopedTimer t("Other: P-FFT");
  FlopPhase f("Other: P-FFT");
  const int ne = opt_.grid.n;
  std::vector<std::vector<cplx>> g_lt(ne), g_gt(ne);
  for (int e = 0; e < ne; ++e) {
    g_lt[e] = serialize_sym(glt_[e]);
    g_gt[e] = serialize_sym(ggt_[e]);
  }
  engine_.polarization(g_lt, g_gt, p_lt_, p_gt_, p_r_);
}

void Scba::solve_w() {
  const int ne = opt_.grid.n;
  const int nb = layout_.nb;
  for (int w = 0; w < ne; ++w) {
    BlockTridiag m, bl, bg;
    {
      ScopedTimer t("W: Assembly: LHS");
      FlopPhase f("W: Assembly: LHS");
      std::vector<cplx> jump(layout_.num_elements());
      for (std::int64_t k = 0; k < layout_.num_elements(); ++k)
        jump[k] = p_gt_[w][k] - p_lt_[w][k];
      const BlockTridiag p_r = deserialize_retarded(p_r_[w], jump, layout_);
      m = assemble_w_lhs(v_, p_r);
    }
    {
      ScopedTimer t("W: Assembly: RHS");
      FlopPhase f("W: Assembly: RHS");
      const BlockTridiag p_lt = deserialize_lesser(p_lt_[w], layout_);
      const BlockTridiag p_gt = deserialize_lesser(p_gt_[w], layout_);
      bl = assemble_w_rhs(v_, p_lt);
      bg = assemble_w_rhs(v_, p_gt);
    }
    const WObc ob = w_obc(m, bl, bg, memo_, w);
    m.diag(0) -= ob.br_left;
    m.diag(nb - 1) -= ob.br_right;
    bl.diag(0) += ob.bl_left;
    bl.diag(nb - 1) += ob.bl_right;
    bg.diag(0) += ob.bg_left;
    bg.diag(nb - 1) += ob.bg_right;
    {
      ScopedTimer t("W: RGF");
      FlopPhase f("W: RGF");
      rgf::SelectedSolution sel = selected_solve(m, bl, bg);
      wlt_[w] = std::move(sel.xl);
      wgt_[w] = std::move(sel.xg);
    }
  }
}

double Scba::compute_sigma_and_mix() {
  const int ne = opt_.grid.n;
  std::vector<std::vector<cplx>> g_lt(ne), g_gt(ne), w_lt(ne), w_gt(ne);
  std::vector<std::vector<cplx>> s_lt, s_gt, s_r;
  std::vector<cplx> s_fock;
  {
    ScopedTimer t("Other: Sigma-FFT");
    FlopPhase f("Other: Sigma-FFT");
    for (int e = 0; e < ne; ++e) {
      g_lt[e] = serialize_sym(glt_[e]);
      g_gt[e] = serialize_sym(ggt_[e]);
    }
    if (opt_.gw_scale != 0.0) {
      for (int e = 0; e < ne; ++e) {
        w_lt[e] = serialize_sym(wlt_[e]);
        w_gt[e] = serialize_sym(wgt_[e]);
      }
      const std::vector<cplx> v_flat = serialize_sym(v_);
      engine_.self_energy(g_lt, g_gt, w_lt, w_gt, v_flat, opt_.fock_scale,
                          s_lt, s_gt, s_r, s_fock);
    } else {
      s_lt.assign(ne, std::vector<cplx>(layout_.num_elements(), cplx(0.0)));
      s_gt = s_lt;
      s_r = s_lt;
      s_fock.assign(layout_.num_elements(), cplx(0.0));
    }
    ephonon_.accumulate(g_lt, g_gt, s_lt, s_gt, s_r);
  }
  // Mixing and convergence metric on the Sigma< flats.
  const double alpha = opt_.mixing;
  double diff2 = 0.0, norm2 = 0.0;
  for (int e = 0; e < ne; ++e) {
    for (std::int64_t k = 0; k < layout_.num_elements(); ++k) {
      const cplx delta = s_lt[e][k] - sig_lt_[e][k];
      diff2 += std::norm(delta);
      norm2 += std::norm(s_lt[e][k]);
      sig_lt_[e][k] += alpha * delta;
      sig_gt_[e][k] += alpha * (s_gt[e][k] - sig_gt_[e][k]);
      sig_r_[e][k] += alpha * (s_r[e][k] - sig_r_[e][k]);
    }
  }
  for (std::int64_t k = 0; k < layout_.num_elements(); ++k)
    sig_fock_[k] += alpha * (s_fock[k] - sig_fock_[k]);
  return (norm2 > 0.0) ? std::sqrt(diff2 / norm2) : 0.0;
}

IterationResult Scba::iterate() {
  Stopwatch total;
  const auto t0 = TimerRegistry::all();
  const auto f0 = FlopLedger::by_phase();
  solve_g();
  if (opt_.gw_scale != 0.0) {
    compute_polarization();
    solve_w();
  }
  if (opt_.gw_scale != 0.0 || ephonon_.enabled()) {
    last_update_ = compute_sigma_and_mix();
  } else {
    last_update_ = 0.0;  // ballistic: nothing to update
  }
  ++iteration_;
  IterationResult r;
  r.iteration = iteration_;
  r.sigma_update = last_update_;
  r.seconds = total.seconds();
  for (const auto& [name, sec] : TimerRegistry::all()) {
    const auto it = t0.find(name);
    const double before = (it == t0.end()) ? 0.0 : it->second;
    if (sec - before > 0.0) r.kernel_seconds[name] = sec - before;
  }
  for (const auto& [name, fl] : FlopLedger::by_phase()) {
    const auto it = f0.find(name);
    const std::int64_t before = (it == f0.end()) ? 0 : it->second;
    if (fl - before > 0) r.kernel_flops[name] = fl - before;
  }
  return r;
}

std::vector<IterationResult> Scba::run() {
  std::vector<IterationResult> history;
  const bool interacting = opt_.gw_scale != 0.0 || ephonon_.enabled();
  for (int it = 0; it < opt_.max_iterations; ++it) {
    history.push_back(iterate());
    if (!interacting) break;  // ballistic: one pass suffices
    if (it > 0 && converged()) break;
  }
  return history;
}

}  // namespace qtx::core
