#pragma once

/// \file scba.hpp
/// Self-consistent Born approximation driver (paper §3.2, Fig. 3): the
/// G -> P -> W -> Sigma cycle evaluated over the energy grid until the GW
/// self-energy stops changing. Per-kernel wall times and FLOP counts are
/// recorded under the same kernel names as the paper's Table 4 rows
/// (G: OBC, G: RGF, W: Assembly {Beyn, Lyapunov, LHS, RHS}, W: RGF, Other),
/// so the benchmark harnesses can print directly comparable tables.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/assembly.hpp"
#include "core/contacts.hpp"
#include "core/energy_grid.hpp"
#include "core/ephonon.hpp"
#include "core/gw.hpp"
#include "device/structure.hpp"
#include "rgf/nested_dissection.hpp"

namespace qtx::core {

struct ScbaOptions {
  EnergyGrid grid;
  double eta = 0.05;  ///< retarded broadening (eV)
  ContactParams contacts;
  double mixing = 0.5;        ///< Sigma update damping
  int max_iterations = 15;
  double tol = 1e-4;          ///< on the relative Sigma< update
  bool use_memoizer = true;   ///< paper §5.3
  bool symmetrize = true;     ///< paper §5.2
  int nd_partitions = 1;      ///< P_S; 1 = sequential RGF (paper §5.4)
  int nd_threads = 1;
  double gw_scale = 1.0;  ///< scales V in the GW loop; 0 = ballistic NEGF
  double fock_scale = 1.0;
  std::vector<double> cell_potential;  ///< optional gate/bias profile
  /// Electron-phonon channel (paper §8 extension); composes with GW.
  EPhononParams ephonon;
};

/// Timing/convergence record of one SCBA iteration.
struct IterationResult {
  int iteration = 0;
  double sigma_update = 0.0;  ///< ||dSigma<|| / ||Sigma<||
  double seconds = 0.0;
  std::map<std::string, double> kernel_seconds;
  std::map<std::string, std::int64_t> kernel_flops;
};

class Scba {
 public:
  Scba(const device::Structure& structure, const ScbaOptions& opt);

  /// One SCBA iteration (G -> P -> W -> Sigma -> mix).
  IterationResult iterate();

  /// Iterate until the Sigma update falls below tol or the budget runs out.
  std::vector<IterationResult> run();

  bool converged() const { return last_update_ <= opt_.tol; }
  int iteration() const { return iteration_; }
  double last_update() const { return last_update_; }

  // --- state accessors (energy-major) -----------------------------------
  const std::vector<BlockTridiag>& g_retarded() const { return gr_; }
  const std::vector<BlockTridiag>& g_lesser() const { return glt_; }
  const std::vector<BlockTridiag>& g_greater() const { return ggt_; }
  /// Scattering self-energy, materialized for energy index \p e.
  BlockTridiag sigma_retarded(int e) const;
  BlockTridiag sigma_lesser(int e) const;
  /// Boundary (contact) injections stored during the last G solve.
  const std::vector<la::Matrix>& obc_lesser_left() const { return obc_lt_l_; }
  const std::vector<la::Matrix>& obc_greater_left() const { return obc_gt_l_; }
  const std::vector<la::Matrix>& obc_lesser_right() const { return obc_lt_r_; }
  const std::vector<la::Matrix>& obc_greater_right() const {
    return obc_gt_r_;
  }
  /// Assembled eM(E) including OBC corner corrections (for observables).
  BlockTridiag effective_system_matrix(int e) const;
  const obc::MemoizerStats& memoizer_stats() const { return memo_.stats(); }

  const ScbaOptions& options() const { return opt_; }
  const device::Structure& structure() const { return structure_; }
  const SymLayout& layout() const { return layout_; }
  const BlockTridiag& hamiltonian() const { return h_eff_; }

 private:
  void solve_g();
  void compute_polarization();
  void solve_w();
  double compute_sigma_and_mix();

  rgf::SelectedSolution selected_solve(const BlockTridiag& m,
                                       const BlockTridiag& bl,
                                       const BlockTridiag& bg);

  device::Structure structure_;
  ScbaOptions opt_;
  BlockTridiag h_eff_;  ///< Hamiltonian + external potential
  BlockTridiag v_;      ///< bare Coulomb, scaled by gw_scale
  SymLayout layout_;
  GwEngine engine_;
  EPhononSelfEnergy ephonon_;
  obc::ObcMemoizer memo_;

  // Green's functions (energy-major BT).
  std::vector<BlockTridiag> gr_, glt_, ggt_;
  // Screened interaction stacks for the W stage (bosonic grid).
  std::vector<BlockTridiag> wlt_, wgt_;
  // Polarization flats (element layout along the second index).
  std::vector<std::vector<cplx>> p_lt_, p_gt_, p_r_;
  // GW self-energy, stored as flats (primary storage; BT materialized on
  // demand). sig_r_ holds the dynamic part only; Fock is separate.
  std::vector<std::vector<cplx>> sig_lt_, sig_gt_, sig_r_;
  std::vector<cplx> sig_fock_;
  // Contact injections per energy (for Meir-Wingreen currents).
  std::vector<la::Matrix> obc_lt_l_, obc_gt_l_, obc_lt_r_, obc_gt_r_;
  std::vector<la::Matrix> obc_r_l_, obc_r_r_;

  int iteration_ = 0;
  double last_update_ = 1e300;
};

}  // namespace qtx::core
