#pragma once

/// \file scba.hpp
/// Deprecated compatibility shim over the `qtx::core::Simulation` facade.
///
/// The monolithic `Scba` driver of the pre-facade releases was redesigned
/// into `Simulation` + `SimulationBuilder` + `StageRegistry` (see
/// core/simulation.hpp and the migration notes in docs/userguide.md,
/// "Migrating from Scba"). `Scba` remains for one release as a thin
/// deprecated subclass that preserves the historic constructor and the
/// materialize-everything `run()` contract.
///
/// Migration:
///   - `ScbaOptions` is now an alias of `SimulationOptions` (core/options.hpp)
///     and gained string-keyed backend selection plus `validate()`.
///   - `Scba scba(st, opt); scba.run();` becomes
///     `SimulationBuilder(st).options(opt).build().run()` — the returned
///     `TransportResult` carries the converged flag, stop reason, kernel
///     ledgers, and the full iteration history.
///   - Streaming consumers register `on_iteration` / `on_kernel_timing`
///     observers instead of polling the history vector.

#include "core/simulation.hpp"

namespace qtx::core {

/// Deprecated: construct a `Simulation` (ideally via `SimulationBuilder`)
/// instead. All accessors are inherited from `Simulation`; only the historic
/// vector-returning `run()` differs.
class [[deprecated(
    "Scba is a compatibility shim; use qtx::core::Simulation / "
    "SimulationBuilder (core/simulation.hpp) — migration notes in "
    "docs/userguide.md, \"Migrating from Scba\"")]] Scba
    : public Simulation {
 public:
  Scba(const device::Structure& structure, const ScbaOptions& opt)
      : Simulation(structure, opt) {}

  /// Old contract: iterate until convergence or budget exhaustion and
  /// materialize the whole history. The final element records why the loop
  /// stopped (IterationResult::stop / ::converged).
  std::vector<IterationResult> run() { return Simulation::run().history; }
};

}  // namespace qtx::core
