#pragma once

/// \file gw.hpp
/// Element-wise GW convolution stage (paper §4.4, Fig. 3d). After the data
/// transposition, each stored matrix element (i, j) carries its full energy
/// series; the polarization and self-energy follow from per-element FFT
/// convolutions, and the retarded functions from causal reconstruction.
///
/// Storage exploits the §5.2 symmetry: only diagonal-block and upper-block
/// elements are serialized. The lower elements of P^R / Sigma^R (which do
/// NOT obey the lesser/greater symmetry) are recovered exactly from
///     X^R_ji(E) = conj(X^R_ij(E)) - conj(X>_ij(E) - X<_ij(E)),
/// the discrete retarded-minus-advanced identity of the causal window.

#include <cstdint>
#include <vector>

#include "bsparse/bsparse.hpp"
#include "core/energy_grid.hpp"
#include "fft/convolution.hpp"

namespace qtx::core {

using bt::BlockTridiag;
using bt::BtSymmetric;

/// Serialization of the symmetric (diag + upper) BT storage into a flat
/// element vector; fixed layout shared by all quantities.
struct SymLayout {
  int nb = 0;
  int bs = 0;

  std::int64_t diag_elements() const {
    return static_cast<std::int64_t>(nb) * bs * bs;
  }
  std::int64_t num_elements() const {
    return static_cast<std::int64_t>(2 * nb - 1) * bs * bs;
  }
};

/// Flatten diag + upper blocks (column-major within blocks).
std::vector<cplx> serialize_sym(const BlockTridiag& x);

/// Rebuild a full BT matrix from a flat element vector, with lower blocks
/// from the lesser/greater symmetry (-upper†).
BlockTridiag deserialize_lesser(const std::vector<cplx>& flat,
                                const SymLayout& layout);

/// Rebuild a retarded BT matrix: lower elements from the R/A identity using
/// the jump d = X> - X< (same flat layout).
BlockTridiag deserialize_retarded(const std::vector<cplx>& flat_r,
                                  const std::vector<cplx>& flat_jump,
                                  const SymLayout& layout);

/// Element-wise GW kernels operating on energy-major stacks
/// stack[e][k] with k indexing the SymLayout elements.
class GwEngine {
 public:
  GwEngine(const EnergyGrid& grid, const SymLayout& layout)
      : grid_(grid), layout_(layout), conv_(grid.n, grid.de()) {}

  const SymLayout& layout() const { return layout_; }

  /// P≶(w>=0) and the bosonic jump d_P = P> - P< per element.
  void polarization(const std::vector<std::vector<cplx>>& g_lt,
                    const std::vector<std::vector<cplx>>& g_gt,
                    std::vector<std::vector<cplx>>& p_lt,
                    std::vector<std::vector<cplx>>& p_gt,
                    std::vector<std::vector<cplx>>& p_r);

  /// Sigma≶(E), the dynamic Sigma^R(E), and the static Fock term
  /// Sigma^F_ij = (i dE / 2 pi) V_ij sum_E G<_ij(E), all per element.
  /// \p v_elements is the serialized bare Coulomb matrix.
  void self_energy(const std::vector<std::vector<cplx>>& g_lt,
                   const std::vector<std::vector<cplx>>& g_gt,
                   const std::vector<std::vector<cplx>>& w_lt,
                   const std::vector<std::vector<cplx>>& w_gt,
                   const std::vector<cplx>& v_elements, double fock_scale,
                   std::vector<std::vector<cplx>>& s_lt,
                   std::vector<std::vector<cplx>>& s_gt,
                   std::vector<std::vector<cplx>>& s_r,
                   std::vector<cplx>& s_fock);

 private:
  EnergyGrid grid_;
  SymLayout layout_;
  fft::EnergyConvolver conv_;
};

/// Materialize the Hermitian Fock matrix from its serialized elements
/// (lower blocks = +upper†).
BlockTridiag deserialize_hermitian(const std::vector<cplx>& flat,
                                   const SymLayout& layout);

}  // namespace qtx::core
