#pragma once

/// \file options.hpp
/// Validated solver options for the `qtx::core::Simulation` facade.
///
/// `SimulationOptions` carries every physics and backend knob of the SCBA
/// driver (paper §3.2, Fig. 3). Backends are selected by *string key* —
/// resolved against a `StageRegistry` at construction time — so examples and
/// benchmarks can switch OBC / Green's-function / self-energy implementations
/// at runtime instead of recompiling option combinations:
///
///   - `obc_backend`:    "memoized" (§5.3), "beyn", "lyapunov"
///   - `greens_backend`: "rgf" (§4.3.2), "nested-dissection" (§5.4)
///   - `self_energy_channels`: any combination of "gw", "fock", "ephonon"
///   - `mixer`:          "linear" (the historic damped update), "anderson"
///                       (DIIS over mixing_history residuals), "adaptive"
///   - `la_backend`:     "reference" (portable oracle loops), "native"
///                       (cache-blocked split-complex), "blas" (optional
///                       CBLAS/LAPACKE bindings, when compiled in)
///
/// The sentinel `kAutoBackend` ("auto", the default) picks the backend the
/// legacy flat options imply: `use_memoizer`, `nd_partitions`, `gw_scale`,
/// and `ephonon.coupling_ev`, which keeps the deprecated `Scba` shim
/// bit-compatible with the pre-facade driver.
///
/// `validate()` rejects inconsistent inputs with actionable messages
/// (thrown as std::runtime_error via QTX_CHECK_MSG) *before* any O(n^3)
/// work starts; every constructor of `Simulation` calls it.

#include <string>
#include <utility>
#include <vector>

#include "core/energy_grid.hpp"
#include "core/ephonon.hpp"

namespace qtx::core {

/// Contact (lead) parameters shared by both subsystems (paper §4.2).
struct ContactParams {
  double mu_left = 0.0;   ///< left chemical potential (eV)
  double mu_right = 0.0;  ///< right chemical potential (eV)
  double temperature_k = kRoomTemperatureK;  ///< contact temperature (K)
};

/// Sentinel backend key: resolve from the legacy flat options.
inline constexpr const char* kAutoBackend = "auto";

/// Full option set of the SCBA driver. Plain aggregate so callers can still
/// fill fields directly; `SimulationBuilder` provides the fluent spelling.
struct SimulationOptions {
  // --- physics ------------------------------------------------------------
  EnergyGrid grid;        ///< fermionic energy window and point count
  double eta = 0.05;  ///< retarded broadening (eV); must be > 0
  ContactParams contacts; ///< lead chemical potentials and temperature
  double mixing = 0.5;  ///< Sigma update damping, in (0, 1]
  int max_iterations = 15;  ///< SCBA iteration budget
  double tol = 1e-4;      ///< on the relative Sigma< update; must be > 0

  // --- self-consistency acceleration (src/accel) ---------------------------
  /// Anderson residual-history window (iterates kept); used by the
  /// "anderson" mixer, ignored by "linear"/"adaptive".
  int mixing_history = 4;
  /// Relative Tikhonov regularization of the Anderson least-squares system.
  double mixing_regularization = 1e-8;
  /// Divergence threshold of the convergence monitor: stop with
  /// StopReason::kDiverged once the residual grew and exceeds this factor
  /// times the best residual seen. 0 disables detection.
  double divergence_factor = 10.0;
  double gw_scale = 1.0;  ///< scales V in the GW loop; 0 = ballistic NEGF
  double fock_scale = 1.0;  ///< scales the static (Fock) exchange
  std::vector<double> cell_potential;  ///< optional gate/bias profile
  /// Electron-phonon channel (paper §8 extension); composes with GW.
  EPhononParams ephonon;

  // --- legacy backend knobs (consumed by the "auto" resolution) -----------
  bool use_memoizer = true;  ///< paper §5.3
  bool symmetrize = true;    ///< paper §5.2
  int nd_partitions = 1;     ///< P_S; 1 = sequential RGF (paper §5.4)
  int nd_threads = 1;        ///< threads per nested-dissection solve

  // --- parallel energy-loop execution (core/energy_pipeline.hpp) ----------
  /// Worker threads of the energy pipeline; 1 = sequential energy loop.
  /// Use par::ThreadPool::hardware_threads() for one worker per core.
  int num_threads = 1;
  /// Energy points per scheduled batch (each batch owns a private stage
  /// workspace). 0 = auto: one point per batch. The batch layout never
  /// depends on num_threads, so results are bit-identical for every
  /// thread count.
  int energy_batch = 0;

  // --- backend selection by registry key ----------------------------------
  std::string obc_backend = kAutoBackend;     ///< "memoized", "beyn", ...
  std::string greens_backend = kAutoBackend;  ///< "rgf", "nested-dissection"
  /// Self-energy channels, composed additively. {"auto"} resolves from
  /// gw_scale / ephonon.coupling_ev; an explicit empty list is ballistic.
  std::vector<std::string> self_energy_channels = {kAutoBackend};
  /// Energy-loop execution policy: "sequential" or "omp" (fork-join over
  /// the work-stealing thread pool). "auto" picks "omp" iff num_threads > 1.
  std::string executor = kAutoBackend;
  /// Self-consistency mixer key: "linear", "anderson", "adaptive" (or a
  /// custom registration). "auto" resolves to "linear" — the damped update
  /// the driver has always performed, bit-identically.
  std::string mixer = kAutoBackend;
  /// Dense linear-algebra kernel backend key (la/backend.hpp):
  /// "reference" (portable oracle loops — golden files are pinned to this
  /// path), "native" (cache-blocked split-complex kernels), "blas" (system
  /// CBLAS/LAPACKE, registered only when compiled in). "auto" resolves to
  /// "reference". The selection is installed process-globally at
  /// Simulation construction (the kernels are invoked deep inside the
  /// RGF/OBC layers with no options context), so the most recently
  /// constructed Simulation's choice wins.
  std::string la_backend = kAutoBackend;
  /// Communicator transport key (par/comm.hpp, registry kind "comm"):
  /// "device-direct" (in-process mailbox, zero-copy hand-off — the *CCL
  /// analogue), "host-staged" (in-process mailbox with host staging copies
  /// — the host-MPI analogue), "socket" (AF_UNIX length-prefixed frames,
  /// the transport behind multi-process `qtx run --ranks`). "auto"
  /// resolves to "device-direct" for in-process worlds; the `qtx run`
  /// launcher requires "socket" (or "auto") in ranked mode.
  std::string comm_backend = kAutoBackend;

  /// Resolve the "auto" sentinels against the legacy flat knobs.
  std::string resolved_obc_backend() const;
  std::string resolved_greens_backend() const;
  std::vector<std::string> resolved_channels() const;
  std::string resolved_executor() const;
  /// Resolve the "auto" mixer sentinel (defaults to "linear").
  std::string resolved_mixer() const;
  /// Resolve the "auto" la-backend sentinel (defaults to "reference").
  std::string resolved_la_backend() const;
  /// Resolve the "auto" comm-backend sentinel (defaults to "device-direct").
  std::string resolved_comm_backend() const;

  /// Reject inconsistent inputs with actionable messages (throws
  /// std::runtime_error). \p num_cells is the device's transport-cell count,
  /// needed to check cell_potential length and nested-dissection geometry.
  void validate(int num_cells) const;
};

/// Historic name of the option struct; kept as a plain alias so existing
/// option-building code compiles unchanged against the new facade.
using ScbaOptions = SimulationOptions;

// ---------------------------------------------------------------------------
// String binding — the text interface of SimulationOptions
//
// Every field of SimulationOptions is addressable by a dotted key string
// ("eta", "grid.n", "contacts.mu_left", "self_energy_channels", ...). The
// scenario-file layer (io/scenario_parser.hpp) and the sweep mode are built
// on this binding, and `serialize_options` feeds the provenance headers the
// result writers stamp on every output file. Doubles are formatted with
// "%.17g", so parse -> serialize -> parse is an identity.
//
// Append-only provenance: option keys added after the output formats
// shipped (the mixer family) are sticky-default — serialize_options omits
// them while they hold their default, so default-configuration provenance
// headers (and the golden files pinning them) stay byte-identical across
// releases. Non-default values always serialize and round-trip.
// ---------------------------------------------------------------------------

/// One serialized option: {key, value} as canonical text.
using OptionKV = std::pair<std::string, std::string>;

/// Set the option addressed by \p key from text. Throws std::runtime_error
/// on an unknown key (the message lists every known key) or a value of the
/// wrong type (the message names the expected type and the offending text).
void set_option(SimulationOptions& opt, const std::string& key,
                const std::string& value);

/// Every bindable option as {key, canonical value} in a fixed documented
/// order — the provenance block of the result writers. Round-trips:
/// applying the pairs to a default-constructed SimulationOptions with
/// set_option reproduces \p opt exactly.
std::vector<OptionKV> serialize_options(const SimulationOptions& opt);

/// All bindable option keys, in serialization order (for error messages,
/// docs, and the userguide schema table test).
std::vector<std::string> option_keys();

}  // namespace qtx::core
