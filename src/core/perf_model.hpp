#pragma once

/// \file perf_model.hpp
/// Machine performance model — the reproduction's substitute for access to
/// Alps and Frontier (DESIGN.md substitution table). The model combines
///
///  - the paper's published machine constants (§6.1: per-GPU/GCD peaks,
///    NIC bandwidths, node counts, Rmax/Rpeak),
///  - per-energy workloads that follow the O(N_E N_B N_BS^3) complexity and
///    are anchored to the paper's own Table 4/5 measurements (the Table 6
///    workload column is reproduced *exactly* by
///    total_energies x per-energy-workload, which validates the model), and
///  - kernel efficiencies and a network-contention curve calibrated so the
///    solver's measured small-scale behaviour extrapolates to the published
///    full-scale numbers,
///
/// and projects weak-scaling curves (Fig. 6) and full-scale rows (Table 6).

#include <string>
#include <vector>

#include "device/config.hpp"

namespace qtx::core {

struct MachineSpec {
  std::string name;
  int total_nodes = 0;
  int units_per_node = 0;      ///< GPUs (Alps) or GCDs (Frontier)
  double unit_peak_tflops = 0;  ///< vendor FP64 peak per unit
  double unit_rpeak_tflops = 0; ///< HPL Rpeak share per unit
  double unit_rmax_tflops = 0;  ///< HPL Rmax share per unit
  double hbm_gb_per_unit = 0;
  double nic_gbps = 0;  ///< bidirectional network bandwidth per unit (GB/s)
  /// Sustained fraction of Rpeak the solver's GEMM-dominated kernels reach
  /// (calibrated against the paper's Table 6 rows).
  double sustained_fraction = 0.7;

  int total_units() const { return total_nodes * units_per_node; }
};

/// Paper §6.1 constants.
MachineSpec alps();
MachineSpec frontier();

/// Per-energy, per-SCBA-iteration workload in Tflop, split by kernel
/// (Table 4 rows). Derived from the O(N_B N_BS^3) complexity with
/// coefficients anchored to the paper's measured NR-16 column.
struct DeviceWorkload {
  double g_obc = 0;
  double g_rgf = 0;
  double w_assembly = 0;
  double w_rgf = 0;
  double other = 0;

  double total() const { return g_obc + g_rgf + w_assembly + w_rgf + other; }
};

/// Workload for an NR-class device with \p num_cells transport cells,
/// memoizer on/off. With ps > 1 the domain-decomposition fill-in and
/// reduced-system overheads are included (paper §5.4/Table 5).
DeviceWorkload nr_workload(int num_cells, bool memoizer, int ps = 1);

struct ScalingPoint {
  int nodes = 0;
  int total_energies = 0;
  double compute_s = 0;
  double comm_s = 0;
  double total_s = 0;
  double pflops = 0;
  double efficiency = 0;  ///< vs the smallest node count in the sweep
};

enum class NetBackend { kCcl, kHostMpi };

struct ScalingConfig {
  int energies_per_unit = 1;  ///< grid points resident per GPU/GCD
  int ps = 1;                 ///< spatial partitions sharing one energy
  /// Sustained/Rpeak fraction; <= 0 means "use the machine's calibrated
  /// default".
  double kernel_efficiency = 0.0;
  NetBackend backend = NetBackend::kCcl;
};

/// Weak-scaling projection over \p node_counts (Fig. 6 reproduction).
std::vector<ScalingPoint> project_weak_scaling(
    const MachineSpec& machine, const device::DeviceConfig& dev,
    const std::vector<int>& node_counts, const ScalingConfig& cfg);

/// One full-scale row (Table 6 reproduction).
struct FullScaleRow {
  std::string machine;
  std::string device;
  int ps = 0;
  int nodes = 0;
  int total_energies = 0;
  double workload_pflop = 0;
  double time_s = 0;
  double pflops = 0;
  double pct_rmax = 0;
  double pct_rpeak = 0;
};

FullScaleRow project_full_scale(const MachineSpec& machine,
                                const device::DeviceConfig& dev, int ps,
                                int nodes, int total_energies,
                                const ScalingConfig& cfg);

// ---------------------------------------------------------------------------
// Measured host peak — the denominator of "achieved GFLOP/s vs peak"
// ---------------------------------------------------------------------------

/// Single-core FP64 peak of the *host this process runs on*, measured (not
/// read from a spec sheet) so the kernel-efficiency numbers emitted into
/// BENCH_table4_kernels.json and results.json are comparable across hosts.
struct HostPeak {
  /// Sustained GFLOP/s of a register-resident FMA chain on one core. This
  /// is the practical single-thread ceiling the la backends are scored
  /// against; 0 only if measurement failed.
  double fma_gflops = 0.0;
  double measure_seconds = 0.0;  ///< wall time spent measuring
};

/// Measure (once) and cache the host peak for this process. The microkernel
/// runs ~10 ms of independent FMA chains on one thread; repeated calls
/// return the cached result, so result writers can stamp it for free.
const HostPeak& measure_host_peak();

/// Achieved GFLOP/s of a kernel that executed \p flops in \p seconds.
double achieved_gflops(double flops, double seconds);

/// \p gflops as a percentage of the measured host FMA peak (0 if the peak
/// measurement failed).
double pct_of_host_peak(double gflops);

}  // namespace qtx::core
