#pragma once

/// \file distributed.hpp
/// One distributed SCBA iteration over the thread-backed communicator —
/// the measured counterpart of the paper's Fig. 3 pipeline: every rank owns
/// a slice of the energy grid for the solver stages and a slice of the
/// selected elements for the FFT stages, with all-to-all transpositions in
/// between. Used by the weak-scaling benchmark (Fig. 6 reproduction) with
/// both communication backends.

#include <cstdint>

#include "core/options.hpp"
#include "device/structure.hpp"
#include "par/distribution.hpp"

namespace qtx::core {

struct DistributedStats {
  double compute_s = 0.0;  ///< max across ranks
  double comm_s = 0.0;     ///< max across ranks (transposition waits)
  double total_s = 0.0;
  std::int64_t bytes_sent = 0;  ///< total across ranks
  /// Relative Sigma< update of the mixing stage (max across ranks). The
  /// iteration starts from zero self-energy, so this is 1 by construction
  /// whenever the computed Sigma is non-zero — it validates that every
  /// rank dispatches its mix through the registry-resolved accel::Mixer.
  double sigma_update = 0.0;
};

/// Run one G -> P -> W -> Sigma iteration with the grid distributed over
/// \p world's ranks. The physics matches Simulation::iterate() with zero
/// initial self-energy; the return value aggregates per-rank timings. Each
/// rank runs its grid slice through its own EnergyPipeline (the same
/// batching / executor / per-batch-workspace engine that backs Simulation),
/// resolved from \p opt's backend keys against the global StageRegistry;
/// opt.num_threads > 1 nests shared-memory workers inside every rank. The
/// final Sigma mix also dispatches per rank through the registry-resolved
/// accel::Mixer (opt.mixer), mirroring Simulation::compute_sigma_and_mix.
DistributedStats distributed_iteration(par::CommWorld& world,
                                       const device::Structure& structure,
                                       const SimulationOptions& opt);

}  // namespace qtx::core
