#pragma once

/// \file distributed.hpp
/// One distributed SCBA iteration over a pluggable communicator — the
/// measured counterpart of the paper's Fig. 3 pipeline: every rank owns a
/// slice of the energy grid for the solver stages and a slice of the
/// selected elements for the FFT stages, with all-to-all transpositions in
/// between. Used by the weak-scaling benchmark (Fig. 6 reproduction) with
/// every registered comm backend, and — through the per-rank overload — by
/// real multi-process worlds launched with `par::launch_ranks`.
///
/// `EnergyShardExchange` is the building block behind sharded
/// `Simulation` runs (`Simulation::distribute_over`): each rank solves only
/// its owned energy points and posts the per-energy results to its peers
/// *as they complete*, so the Σ exchange overlaps the remaining G/W solves;
/// received payloads are bitwise copies of the owner's state, which keeps
/// multi-rank runs bit-identical to sequential ones.

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/options.hpp"
#include "device/structure.hpp"
#include "par/distribution.hpp"

namespace qtx::core {

struct DistributedStats {
  double compute_s = 0.0;  ///< max across ranks
  double comm_s = 0.0;     ///< max across ranks (transposition waits)
  double total_s = 0.0;
  std::int64_t bytes_sent = 0;  ///< total across ranks
  /// Relative Sigma< update of the mixing stage (max across ranks). The
  /// iteration starts from zero self-energy, so this is 1 by construction
  /// whenever the computed Sigma is non-zero — it validates that every
  /// rank dispatches its mix through the registry-resolved accel::Mixer.
  double sigma_update = 0.0;
};

/// Run one G -> P -> W -> Sigma iteration with the grid distributed over
/// \p world's ranks. The physics matches Simulation::iterate() with zero
/// initial self-energy; the return value aggregates per-rank timings. Each
/// rank runs its grid slice through its own EnergyPipeline (the same
/// batching / executor / per-batch-workspace engine that backs Simulation),
/// resolved from \p opt's backend keys against the global StageRegistry;
/// opt.num_threads > 1 nests shared-memory workers inside every rank. The
/// final Sigma mix also dispatches per rank through the registry-resolved
/// accel::Mixer (opt.mixer), mirroring Simulation::compute_sigma_and_mix.
DistributedStats distributed_iteration(par::CommGroup& world,
                                       const device::Structure& structure,
                                       const SimulationOptions& opt);

/// Per-rank body of the distributed iteration, for callers that already
/// *are* a rank — worker processes forked by `par::launch_ranks`, or a
/// custom `CommGroup::run` closure. Every rank returns the same aggregated
/// timings (allreduce_max folds); bytes_sent is the exact world total of
/// this iteration's traffic (integer counters allreduced, exact below
/// 2^53 bytes).
DistributedStats distributed_iteration(par::Comm& comm,
                                       const device::Structure& structure,
                                       const SimulationOptions& opt);

/// Asynchronous replication of per-energy solver state across ranks. Each
/// rank posts every energy point it owns (under \p dist) as soon as its
/// solve completes — sends are *posted* (mailboxes never block; the socket
/// transport enqueues frames and flushes opportunistically), so the
/// exchange overlaps the remaining solves. complete() then receives
/// dist.count(peer) messages from every peer and hands each to the caller
/// keyed by its energy index, after which every rank holds bitwise-equal
/// state for the full grid. post() is thread-safe (pipeline workers post
/// concurrently); complete() must be called once, after the local solve
/// loop has joined.
class EnergyShardExchange {
 public:
  /// \p dist shards [0, dist.total) energy indices over comm.size() ranks.
  EnergyShardExchange(par::Comm& comm, par::BlockDistribution dist);

  /// Post owned energy \p e's serialized state to every peer rank.
  void post(int e, const std::vector<cplx>& payload);

  /// Receive every peer-owned energy's payload; calls
  /// \p fill(e, payload) once per non-owned energy (in arrival order —
  /// payloads are self-identifying, so arrival order does not matter).
  void complete(const std::function<void(int, std::vector<cplx>)>& fill);

 private:
  par::Comm* comm_;
  par::BlockDistribution dist_;
  std::mutex mutex_;  ///< serializes posts from concurrent pipeline workers
};

}  // namespace qtx::core
