#pragma once

/// \file stage_registry.hpp
/// String-keyed factories for the pluggable pipeline stages of
/// core/stages.hpp. A `Simulation` resolves its backends against one
/// registry at construction; `StageRegistry::global()` comes with the
/// built-in backends pre-registered:
///
///   - ObcSolver:          "memoized" (§5.3), "beyn", "lyapunov"
///   - GreensSolver:       "rgf" (§4.3.2), "nested-dissection" (§5.4)
///   - SelfEnergyChannel:  "gw", "fock", "ephonon"
///   - accel::Mixer:       "linear", "anderson", "adaptive" (src/accel)
///   - EnergyLoopExecutor: "sequential", "omp" (work-stealing thread pool)
///   - la::Backend:        "reference", "native", and "blas" when compiled
///                         against CBLAS/LAPACKE (src/la/backend.hpp)
///   - par::CommGroup:     "device-direct", "host-staged" (in-process
///                         mailbox transports), "socket" (AF_UNIX frame
///                         transport shared with `qtx run --ranks`)
///
/// Unknown keys fail fast with the list of known keys. New backends
/// register with `register_obc` / `register_greens` / `register_channel` /
/// `register_mixer` / `register_executor` / `register_la` / `register_comm`
/// on a local registry (or on `global()` for process-wide availability) —
/// no recompilation of the driver required.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/mixer.hpp"
#include "core/options.hpp"
#include "core/stages.hpp"
#include "la/backend.hpp"
#include "par/comm.hpp"

namespace qtx::core {

/// One registered backend, for docs and the `qtx list-backends` command:
/// the stage kind ("obc", "greens", "channel", "mixer", "executor"), the
/// registry key, and a one-line human-readable description.
struct BackendDescription {
  /// "obc", "greens", "channel", "mixer", "executor", "la", or "comm".
  std::string kind;
  std::string key;          ///< registry key, e.g. "memoized"
  std::string description;  ///< one-line human-readable summary
};

/// String-keyed factories for the three stage kinds. A `Simulation` resolves
/// its backends against one registry at construction; `global()` comes with
/// the built-in backends pre-registered.
class StageRegistry {
 public:
  /// Factory signature for OBC backends.
  using ObcFactory =
      std::function<std::unique_ptr<ObcSolver>(const SimulationOptions&)>;
  /// Factory signature for Green's-function backends.
  using GreensFactory =
      std::function<std::unique_ptr<GreensSolver>(const SimulationOptions&)>;
  /// Factory signature for self-energy channels.
  using ChannelFactory = std::function<std::unique_ptr<SelfEnergyChannel>(
      const SimulationOptions&, const SymLayout&)>;
  /// Factory signature for energy-loop execution policies.
  using ExecutorFactory = std::function<std::unique_ptr<EnergyLoopExecutor>(
      const SimulationOptions&)>;
  /// Factory signature for self-consistency mixers (src/accel).
  using MixerFactory =
      std::function<std::unique_ptr<accel::Mixer>(const SimulationOptions&)>;
  /// Factory signature for dense linear-algebra kernel backends (src/la).
  using LaFactory =
      std::function<std::unique_ptr<la::Backend>(const SimulationOptions&)>;
  /// Factory signature for communicator transports (src/par): builds a
  /// \p size-rank world of the keyed transport family.
  using CommFactory = std::function<std::unique_ptr<par::CommGroup>(
      int size, const SimulationOptions&)>;

  /// Empty registry (no backends). Most callers want `with_builtins()`.
  StageRegistry() = default;

  /// A registry pre-populated with the built-in backends listed above.
  static StageRegistry with_builtins();

  /// Process-wide registry with the built-ins; custom backends registered
  /// here are visible to every Simulation that uses the default registry.
  static StageRegistry& global();

  /// Register a backend under \p key (re-registering replaces, so tests can
  /// shadow built-ins). Keys must be non-empty and not "auto". The optional
  /// \p description is the one-liner surfaced by `describe()` and
  /// `qtx list-backends`.
  void register_obc(const std::string& key, ObcFactory factory,
                    std::string description = "");
  void register_greens(const std::string& key, GreensFactory factory,
                       std::string description = "");
  void register_channel(const std::string& key, ChannelFactory factory,
                        std::string description = "");
  void register_executor(const std::string& key, ExecutorFactory factory,
                         std::string description = "");
  void register_mixer(const std::string& key, MixerFactory factory,
                      std::string description = "");
  void register_la(const std::string& key, LaFactory factory,
                   std::string description = "");
  void register_comm(const std::string& key, CommFactory factory,
                     std::string description = "");

  /// Instantiate a backend; throws with the known-key list on unknown keys.
  std::unique_ptr<ObcSolver> make_obc(const std::string& key,
                                      const SimulationOptions& opt) const;
  std::unique_ptr<GreensSolver> make_greens(const std::string& key,
                                            const SimulationOptions& opt) const;
  std::unique_ptr<SelfEnergyChannel> make_channel(
      const std::string& key, const SimulationOptions& opt,
      const SymLayout& layout) const;
  std::unique_ptr<EnergyLoopExecutor> make_executor(
      const std::string& key, const SimulationOptions& opt) const;
  std::unique_ptr<accel::Mixer> make_mixer(const std::string& key,
                                           const SimulationOptions& opt) const;
  std::unique_ptr<la::Backend> make_la(const std::string& key,
                                       const SimulationOptions& opt) const;
  /// Instantiate a \p size-rank communicator world of the keyed transport.
  std::unique_ptr<par::CommGroup> make_comm(const std::string& key, int size,
                                            const SimulationOptions& opt) const;

  /// Registered keys, sorted (for docs, error messages, and tests).
  std::vector<std::string> obc_keys() const;
  std::vector<std::string> greens_keys() const;
  std::vector<std::string> channel_keys() const;
  std::vector<std::string> executor_keys() const;
  std::vector<std::string> mixer_keys() const;
  std::vector<std::string> la_keys() const;
  std::vector<std::string> comm_keys() const;

  /// Every registered backend with its kind, key, and one-line description,
  /// ordered by kind (obc, greens, channel, mixer, executor, la, comm) then
  /// key.
  /// This
  /// is the single generated source of the backend table:
  /// `qtx list-backends` prints it, and a test asserts every key appears in
  /// docs/userguide.md.
  std::vector<BackendDescription> describe() const;

 private:
  /// Factory plus the describe() one-liner.
  template <class Factory>
  struct Entry {
    Factory factory;
    std::string description;
  };

  std::map<std::string, Entry<ObcFactory>> obc_;
  std::map<std::string, Entry<GreensFactory>> greens_;
  std::map<std::string, Entry<ChannelFactory>> channels_;
  std::map<std::string, Entry<ExecutorFactory>> executors_;
  std::map<std::string, Entry<MixerFactory>> mixers_;
  std::map<std::string, Entry<LaFactory>> la_;
  std::map<std::string, Entry<CommFactory>> comm_;
};

}  // namespace qtx::core
