#pragma once

/// \file simulation.hpp
/// The public solver facade: `Simulation`, built fluently through
/// `SimulationBuilder`, running the paper's Fig. 3 pipeline
/// (G -> P -> W -> Sigma) with pluggable stage backends (core/stages.hpp),
/// validated options (core/options.hpp), streaming observers, and a
/// structured `TransportResult`.
///
/// Quickstart:
///
///     auto sim = qtx::core::SimulationBuilder(structure)
///                    .grid(-6.0, 6.0, 64)
///                    .eta(0.02)
///                    .contacts(mu_left, mu_right)
///                    .gw(0.3)
///                    .num_threads(8)              // parallel energy loop;
///                                                 // bit-identical results
///                    .obc_backend("memoized")     // or "beyn", "lyapunov"
///                    .greens_backend("rgf")       // or "nested-dissection"
///                    .on_iteration([](const qtx::core::IterationResult& r) {
///                      std::printf("iter %d: %.3e\n", r.iteration,
///                                  r.sigma_update);
///                    })
///                    .build();                    // validates options
///     qtx::core::TransportResult res = sim.run();
///
/// Per-kernel wall times and FLOP counts are recorded under the paper's
/// Table 4 row names (G: OBC, G: RGF, W: Assembly {Beyn, Lyapunov, LHS,
/// RHS}, W: RGF, Other) and streamed through `on_kernel_timing` so bench
/// harnesses never reach into driver internals.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/assembly.hpp"
#include "core/contacts.hpp"
#include "core/energy_pipeline.hpp"
#include "core/stage_registry.hpp"
#include "device/structure.hpp"

namespace qtx::core {

/// Why `Simulation::run()` stopped iterating (satellite of the SCBA
/// convergence contract: callers no longer diff iteration() against
/// max_iterations).
enum class StopReason {
  kNone = 0,            ///< not a final iteration (e.g. manual iterate())
  kConverged,           ///< sigma_update fell below tol
  kBudgetExhausted,     ///< max_iterations reached without convergence
  kNonInteracting,      ///< ballistic run: one pass is exact
};

/// Human-readable stop reason (for logs and benches).
const char* to_string(StopReason reason);

/// Timing/convergence record of one SCBA iteration.
struct IterationResult {
  int iteration = 0;
  double sigma_update = 0.0;  ///< ||dSigma<|| / ||Sigma<||
  double seconds = 0.0;
  /// Final-iteration annotations, set by run(): whether the loop had
  /// converged at this point and why it stopped (kNone mid-run).
  bool converged = false;
  StopReason stop = StopReason::kNone;
  std::map<std::string, double> kernel_seconds;
  std::map<std::string, std::int64_t> kernel_flops;
};

/// One per-kernel timing sample, streamed after every iteration (Table 4
/// ledger feed).
struct KernelTiming {
  std::string kernel;        ///< Table 4 row name, e.g. "G: RGF"
  int iteration = 0;         ///< SCBA iteration the sample belongs to
  double seconds = 0.0;
  std::int64_t flops = 0;
};

/// Structured outcome of a `Simulation::run()`.
struct TransportResult {
  bool converged = false;
  int iterations = 0;
  StopReason stop_reason = StopReason::kNone;
  double final_update = 0.0;   ///< last ||dSigma<|| / ||Sigma<||
  double total_seconds = 0.0;  ///< wall time of the whole loop
  /// Per-kernel ledgers summed over all iterations (Table 4 rows).
  std::map<std::string, double> kernel_seconds;
  std::map<std::string, std::int64_t> kernel_flops;
  /// Every IterationResult, in order; back() carries the stop annotation.
  std::vector<IterationResult> history;
};

/// SCBA driver facade (paper §3.2): owns the device state, resolves its
/// stage backends from a `StageRegistry` at construction (validating the
/// options first), and exposes the converged Green's functions and
/// self-energies to the observables layer (core/observables.hpp).
class Simulation {
 public:
  using IterationCallback = std::function<void(const IterationResult&)>;
  using KernelTimingCallback = std::function<void(const KernelTiming&)>;

  /// Validates \p opt (throws std::runtime_error on inconsistent input) and
  /// resolves the configured backends against \p registry.
  Simulation(const device::Structure& structure, const SimulationOptions& opt,
             const StageRegistry& registry = StageRegistry::global());

  Simulation(Simulation&&) = default;
  Simulation& operator=(Simulation&&) = default;

  /// One SCBA iteration (G -> P -> W -> Sigma -> mix). Streams per-kernel
  /// timings to the kernel observers; iteration observers fire from run().
  IterationResult iterate();

  /// Iterate until the Sigma update falls below tol or the budget runs out,
  /// streaming each IterationResult to the iteration observers as it
  /// completes. The final IterationResult (and the returned TransportResult)
  /// record whether the loop converged and why it stopped.
  TransportResult run();

  /// Streaming observers; may be registered repeatedly (all fire, in
  /// registration order).
  void on_iteration(IterationCallback cb);
  void on_kernel_timing(KernelTimingCallback cb);

  bool converged() const { return last_update_ <= opt_.tol; }
  int iteration() const { return iteration_; }
  double last_update() const { return last_update_; }

  // --- backends ----------------------------------------------------------
  /// First batch workspace's backends (every batch runs the same backend
  /// kind; per-batch instances only isolate mutable solver state).
  const ObcSolver& obc_solver() const { return pipeline_.obc(0); }
  const GreensSolver& greens_solver() const { return pipeline_.greens(0); }
  const std::vector<std::unique_ptr<SelfEnergyChannel>>& channels() const {
    return channels_;
  }
  /// OBC dispatch counters of the active backend, summed over all batch
  /// workspaces (kept under the historic name; valid for every backend,
  /// not just "memoized"). Returned by value: the aggregate is a snapshot,
  /// so successive calls never alias each other.
  obc::MemoizerStats memoizer_stats() const { return pipeline_.obc_stats(); }
  /// The parallel energy-loop engine (executor policy, batch layout).
  const EnergyPipeline& pipeline() const { return pipeline_; }

  // --- state accessors (energy-major) ------------------------------------
  const std::vector<BlockTridiag>& g_retarded() const { return gr_; }
  const std::vector<BlockTridiag>& g_lesser() const { return glt_; }
  const std::vector<BlockTridiag>& g_greater() const { return ggt_; }
  /// Scattering self-energy, materialized for energy index \p e.
  BlockTridiag sigma_retarded(int e) const;
  BlockTridiag sigma_lesser(int e) const;
  /// Boundary (contact) injections stored during the last G solve.
  const std::vector<la::Matrix>& obc_lesser_left() const { return obc_lt_l_; }
  const std::vector<la::Matrix>& obc_greater_left() const { return obc_gt_l_; }
  const std::vector<la::Matrix>& obc_lesser_right() const { return obc_lt_r_; }
  const std::vector<la::Matrix>& obc_greater_right() const {
    return obc_gt_r_;
  }
  /// Assembled eM(E) including OBC corner corrections (for observables).
  BlockTridiag effective_system_matrix(int e) const;

  const SimulationOptions& options() const { return opt_; }
  const device::Structure& structure() const { return structure_; }
  const SymLayout& layout() const { return layout_; }
  const BlockTridiag& hamiltonian() const { return h_eff_; }

 private:
  void solve_g();
  void compute_polarization();
  void solve_w();
  double compute_sigma_and_mix();

  device::Structure structure_;
  SimulationOptions opt_;
  BlockTridiag h_eff_;  ///< Hamiltonian + external potential
  BlockTridiag v_;      ///< bare Coulomb, scaled by gw_scale
  SymLayout layout_;
  GwEngine engine_;  ///< element-wise P stage (paper §4.4)

  // Parallel energy-loop engine: executor policy plus per-batch OBC /
  // Green's-function workspaces (resolved from the registry).
  EnergyPipeline pipeline_;
  // Self-energy channels (shared across batches; they run in the global
  // sequential reduction stage, never on pipeline workers).
  std::vector<std::unique_ptr<SelfEnergyChannel>> channels_;
  bool needs_w_ = false;  ///< some channel consumes W≶

  // Streaming observers.
  std::vector<IterationCallback> iteration_observers_;
  std::vector<KernelTimingCallback> kernel_observers_;

  // Green's functions (energy-major BT).
  std::vector<BlockTridiag> gr_, glt_, ggt_;
  // Screened interaction stacks for the W stage (bosonic grid).
  std::vector<BlockTridiag> wlt_, wgt_;
  // Polarization flats (element layout along the second index).
  std::vector<std::vector<cplx>> p_lt_, p_gt_, p_r_;
  // Scattering self-energy, stored as flats (primary storage; BT
  // materialized on demand). sig_r_ holds the dynamic part only; the static
  // (Fock) part is separate.
  std::vector<std::vector<cplx>> sig_lt_, sig_gt_, sig_r_;
  std::vector<cplx> sig_fock_;
  // Contact injections per energy (for Meir-Wingreen currents).
  std::vector<la::Matrix> obc_lt_l_, obc_gt_l_, obc_lt_r_, obc_gt_r_;
  std::vector<la::Matrix> obc_r_l_, obc_r_r_;

  int iteration_ = 0;
  double last_update_ = 1e300;
};

/// Fluent builder for `Simulation`. Collects options and observers, then
/// `build()` validates and constructs. The builder is copyable, so a base
/// configuration can be forked per scenario (see examples/nanoribbon_iv).
class SimulationBuilder {
 public:
  explicit SimulationBuilder(const device::Structure& structure)
      : structure_(&structure) {}

  /// Bulk-replace the option struct (observers are kept).
  SimulationBuilder& options(const SimulationOptions& opt);

  // --- physics ------------------------------------------------------------
  SimulationBuilder& grid(double e_min, double e_max, int n);
  SimulationBuilder& grid(const EnergyGrid& g);
  SimulationBuilder& eta(double value);
  SimulationBuilder& contacts(double mu_left, double mu_right,
                              double temperature_k = kRoomTemperatureK);
  SimulationBuilder& mixing(double value);
  SimulationBuilder& max_iterations(int value);
  SimulationBuilder& tolerance(double value);
  /// Enable the GW channel: scales V by \p scale (0 = ballistic) and the
  /// static exchange by \p fock_scale.
  SimulationBuilder& gw(double scale, double fock_scale = 1.0);
  /// Ballistic NEGF: no interaction channels, single exact pass.
  SimulationBuilder& ballistic();
  SimulationBuilder& cell_potential(std::vector<double> phi);
  SimulationBuilder& ephonon(const EPhononParams& params);

  // --- parallel execution -------------------------------------------------
  /// Energy-loop worker threads (1 = sequential). Results are bit-identical
  /// for every value; see core/energy_pipeline.hpp for the guarantee.
  SimulationBuilder& num_threads(int value);
  /// Energy points per scheduled batch (0 = auto: one point per batch).
  SimulationBuilder& energy_batch(int value);
  /// Execution policy key ("sequential", "omp"); default "auto" resolves
  /// from num_threads.
  SimulationBuilder& executor(std::string key);

  // --- backend selection --------------------------------------------------
  SimulationBuilder& memoizer(bool enabled);
  SimulationBuilder& symmetrize(bool enabled);
  SimulationBuilder& obc_backend(std::string key);
  SimulationBuilder& greens_backend(std::string key);
  /// Select "nested-dissection" with P_S = \p partitions (paper §5.4).
  SimulationBuilder& nested_dissection(int partitions, int threads = 1);
  SimulationBuilder& self_energy_channels(std::vector<std::string> keys);
  SimulationBuilder& add_channel(std::string key);
  /// Resolve backends against \p registry instead of StageRegistry::global().
  SimulationBuilder& registry(const StageRegistry& reg);

  // --- observers ----------------------------------------------------------
  SimulationBuilder& on_iteration(Simulation::IterationCallback cb);
  SimulationBuilder& on_kernel_timing(Simulation::KernelTimingCallback cb);

  const SimulationOptions& peek_options() const { return opt_; }

  /// Validate and construct. Throws std::runtime_error on invalid options
  /// or unknown backend keys.
  Simulation build() const;

 private:
  const device::Structure* structure_;
  SimulationOptions opt_;
  const StageRegistry* registry_ = nullptr;
  std::vector<Simulation::IterationCallback> iteration_observers_;
  std::vector<Simulation::KernelTimingCallback> kernel_observers_;
};

}  // namespace qtx::core
