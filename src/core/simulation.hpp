#pragma once

/// \file simulation.hpp
/// The public solver facade: `Simulation`, built fluently through
/// `SimulationBuilder`, running the paper's Fig. 3 pipeline
/// (G -> P -> W -> Sigma) with pluggable stage backends (core/stages.hpp),
/// validated options (core/options.hpp), streaming observers, and a
/// structured `TransportResult`.
///
/// Quickstart:
///
///     auto sim = qtx::core::SimulationBuilder(structure)
///                    .grid(-6.0, 6.0, 64)
///                    .eta(0.02)
///                    .contacts(mu_left, mu_right)
///                    .gw(0.3)
///                    .num_threads(8)              // parallel energy loop;
///                                                 // bit-identical results
///                    .obc_backend("memoized")     // or "beyn", "lyapunov"
///                    .greens_backend("rgf")       // or "nested-dissection"
///                    .on_iteration([](const qtx::core::IterationResult& r) {
///                      std::printf("iter %d: %.3e\n", r.iteration,
///                                  r.sigma_update);
///                    })
///                    .build();                    // validates options
///     qtx::core::TransportResult res = sim.run();
///
/// Per-kernel wall times and FLOP counts are recorded under the paper's
/// Table 4 row names (G: OBC, G: RGF, W: Assembly {Beyn, Lyapunov, LHS,
/// RHS}, W: RGF, Other) and streamed through `on_kernel_timing` so bench
/// harnesses never reach into driver internals.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/convergence.hpp"
#include "accel/mixer.hpp"
#include "core/assembly.hpp"
#include "core/contacts.hpp"
#include "core/energy_pipeline.hpp"
#include "core/stage_registry.hpp"
#include "device/structure.hpp"

namespace qtx::core {

/// Why `Simulation::run()` stopped iterating (satellite of the SCBA
/// convergence contract: callers no longer diff iteration() against
/// max_iterations).
enum class StopReason {
  kNone = 0,            ///< not a final iteration (e.g. manual iterate())
  kConverged,           ///< sigma_update fell below tol
  kBudgetExhausted,     ///< max_iterations reached without convergence
  kNonInteracting,      ///< ballistic run: one pass is exact
  kDiverged,            ///< the convergence monitor flagged residual growth
};

/// Human-readable stop reason (for logs and benches).
const char* to_string(StopReason reason);

/// Timing/convergence record of one SCBA iteration.
struct IterationResult {
  int iteration = 0;          ///< 1-based SCBA iteration number
  double sigma_update = 0.0;  ///< ||dSigma<|| / ||Sigma<||
  double seconds = 0.0;       ///< wall time of this iteration
  /// Damping the mixer actually applied this iteration (0 when no mixing
  /// stage ran, i.e. ballistic; adaptive mixers move it between steps).
  double damping = 0.0;
  /// Residual growth ratio sigma_update / previous sigma_update, from the
  /// convergence monitor (0 on the first interacting iteration).
  double residual_ratio = 0.0;
  /// Final-iteration annotations, set by run(): whether the loop had
  /// converged at this point and why it stopped (kNone mid-run).
  bool converged = false;
  StopReason stop = StopReason::kNone;  ///< see `converged` above
  std::map<std::string, double> kernel_seconds;       ///< Table 4 rows (s)
  std::map<std::string, std::int64_t> kernel_flops;   ///< Table 4 rows
};

/// One per-kernel timing sample, streamed after every iteration (Table 4
/// ledger feed).
struct KernelTiming {
  std::string kernel;        ///< Table 4 row name, e.g. "G: RGF"
  int iteration = 0;         ///< SCBA iteration the sample belongs to
  double seconds = 0.0;      ///< wall seconds spent in this kernel
  std::int64_t flops = 0;    ///< FLOPs attributed to this kernel
};

/// Structured outcome of a `Simulation::run()`.
struct TransportResult {
  bool converged = false;  ///< did the Sigma update fall below tol?
  int iterations = 0;      ///< iterations performed by this run()
  StopReason stop_reason = StopReason::kNone;  ///< why the loop ended
  double final_update = 0.0;   ///< last ||dSigma<|| / ||Sigma<||
  double total_seconds = 0.0;  ///< wall time of the whole loop
  /// Per-kernel ledgers summed over all iterations (Table 4 rows).
  std::map<std::string, double> kernel_seconds;
  std::map<std::string, std::int64_t> kernel_flops;
  /// Every IterationResult, in order; back() carries the stop annotation.
  std::vector<IterationResult> history;
};

/// SCBA driver facade (paper §3.2): owns the device state, resolves its
/// stage backends from a `StageRegistry` at construction (validating the
/// options first), and exposes the converged Green's functions and
/// self-energies to the observables layer (core/observables.hpp).
class Simulation {
 public:
  /// Observer signature for per-iteration results (see on_iteration).
  using IterationCallback = std::function<void(const IterationResult&)>;
  /// Observer signature for per-kernel timing samples (see on_kernel_timing).
  using KernelTimingCallback = std::function<void(const KernelTiming&)>;

  /// Validates \p opt (throws std::runtime_error on inconsistent input) and
  /// resolves the configured backends against \p registry. When \p pipeline
  /// is non-null the engine is *reused* instead of rebuilt — the sweep
  /// mode's lever for keeping one thread pool across scenario points. The
  /// pipeline must match the new options (`EnergyPipeline::reuse_mismatch`
  /// must be empty; checked here) and is reset to its cold state first, so
  /// a reused pipeline yields bit-identical results to a fresh one.
  Simulation(const device::Structure& structure, const SimulationOptions& opt,
             const StageRegistry& registry = StageRegistry::global(),
             std::shared_ptr<EnergyPipeline> pipeline = nullptr);

  Simulation(Simulation&&) = default;             ///< movable, not copyable
  Simulation& operator=(Simulation&&) = default;  ///< movable, not copyable

  /// One SCBA iteration (G -> P -> W -> Sigma -> mix). Streams per-kernel
  /// timings to the kernel observers; iteration observers fire from run().
  IterationResult iterate();

  /// Iterate until the Sigma update falls below tol or the budget runs out,
  /// streaming each IterationResult to the iteration observers as it
  /// completes. The final IterationResult (and the returned TransportResult)
  /// record whether the loop converged and why it stopped.
  TransportResult run();

  /// Streaming observers; may be registered repeatedly (all fire, in
  /// registration order).
  void on_iteration(IterationCallback cb);
  void on_kernel_timing(KernelTimingCallback cb);

  /// Shard the energy grid over \p comm's ranks: this rank solves only its
  /// owned energy points in the G and W stages and replicates the rest from
  /// its peers through an `EnergyShardExchange` (core/distributed.hpp) —
  /// per-energy payloads are posted asynchronously as each solve completes,
  /// so the exchange overlaps the remaining solves. Received state is a
  /// bitwise copy of the owner's, and the P / Sigma / mixing stages run
  /// replicated on the full grid, so every rank (and therefore a ranked
  /// `qtx run`) stays bit-identical to the sequential run. \p comm must
  /// outlive this Simulation; call before iterate()/run().
  void distribute_over(par::Comm& comm);

  /// Has the Sigma update fallen below tol?
  bool converged() const { return last_update_ <= opt_.tol; }
  /// Total iterations performed (including manual iterate() calls).
  int iteration() const { return iteration_; }
  /// The most recent ||dSigma<|| / ||Sigma<||.
  double last_update() const { return last_update_; }

  // --- backends ----------------------------------------------------------
  /// First batch workspace's backends (every batch runs the same backend
  /// kind; per-batch instances only isolate mutable solver state).
  const ObcSolver& obc_solver() const { return pipeline_->obc(0); }
  const GreensSolver& greens_solver() const { return pipeline_->greens(0); }
  /// The resolved self-energy channels, in configuration order.
  const std::vector<std::unique_ptr<SelfEnergyChannel>>& channels() const {
    return channels_;
  }
  /// The resolved self-consistency mixer (registry key opt.mixer).
  const accel::Mixer& mixer() const { return *mixer_; }
  /// Residual history + divergence/stagnation diagnostics of this run.
  const accel::ConvergenceMonitor& monitor() const { return monitor_; }
  /// OBC dispatch counters of the active backend, summed over all batch
  /// workspaces (kept under the historic name; valid for every backend,
  /// not just "memoized"). Returned by value: the aggregate is a snapshot,
  /// so successive calls never alias each other.
  obc::MemoizerStats memoizer_stats() const { return pipeline_->obc_stats(); }
  /// The parallel energy-loop engine (executor policy, batch layout).
  const EnergyPipeline& pipeline() const { return *pipeline_; }
  /// Shared handle to the engine, for reuse by a later Simulation (the
  /// sweep mode passes it back through the constructor / builder so N
  /// sweep points share one thread pool instead of building N).
  ///
  /// Handing the pipeline to a new Simulation is a *transfer*: adoption
  /// resets the per-batch solver workspaces, so this Simulation must not
  /// iterate() afterwards (its observables and accessors stay valid —
  /// they read materialized state, not the pipeline).
  std::shared_ptr<EnergyPipeline> shared_pipeline() const {
    return pipeline_;
  }

  // --- state accessors (energy-major) ------------------------------------
  /// Retarded Green's function, one BlockTridiag per energy point.
  const std::vector<BlockTridiag>& g_retarded() const { return gr_; }
  /// Lesser Green's function, one BlockTridiag per energy point.
  const std::vector<BlockTridiag>& g_lesser() const { return glt_; }
  /// Greater Green's function, one BlockTridiag per energy point.
  const std::vector<BlockTridiag>& g_greater() const { return ggt_; }
  /// Scattering self-energy, materialized for energy index \p e.
  BlockTridiag sigma_retarded(int e) const;
  /// Lesser scattering self-energy, materialized for energy index \p e.
  BlockTridiag sigma_lesser(int e) const;
  /// Boundary (contact) injections stored during the last G solve.
  const std::vector<la::Matrix>& obc_lesser_left() const { return obc_lt_l_; }
  /// Greater contact injection at the left lead, per energy.
  const std::vector<la::Matrix>& obc_greater_left() const { return obc_gt_l_; }
  /// Lesser contact injection at the right lead, per energy.
  const std::vector<la::Matrix>& obc_lesser_right() const { return obc_lt_r_; }
  /// Greater contact injection at the right lead, per energy.
  const std::vector<la::Matrix>& obc_greater_right() const {
    return obc_gt_r_;
  }
  /// Assembled eM(E) including OBC corner corrections (for observables).
  BlockTridiag effective_system_matrix(int e) const;

  /// The validated option set this simulation runs with.
  const SimulationOptions& options() const { return opt_; }
  /// The device being simulated (copied at construction).
  const device::Structure& structure() const { return structure_; }
  /// Element layout of the serialized stacks (core/gw.hpp).
  const SymLayout& layout() const { return layout_; }
  /// Effective Hamiltonian (device H + external cell potential).
  const BlockTridiag& hamiltonian() const { return h_eff_; }

 private:
  void solve_g();
  void compute_polarization();
  void solve_w();
  accel::MixOutcome compute_sigma_and_mix();

  device::Structure structure_;
  SimulationOptions opt_;
  BlockTridiag h_eff_;  ///< Hamiltonian + external potential
  BlockTridiag v_;      ///< bare Coulomb, scaled by gw_scale
  SymLayout layout_;
  GwEngine engine_;  ///< element-wise P stage (paper §4.4)

  // Parallel energy-loop engine: executor policy plus per-batch OBC /
  // Green's-function workspaces (resolved from the registry). Held shared
  // so sweep drivers can hand one engine from run to run.
  std::shared_ptr<EnergyPipeline> pipeline_;
  // Self-energy channels (shared across batches; they run in the global
  // sequential reduction stage, never on pipeline workers).
  std::vector<std::unique_ptr<SelfEnergyChannel>> channels_;
  bool needs_w_ = false;  ///< some channel consumes W≶
  // Self-consistency acceleration (src/accel): the mixing policy the Sigma
  // stage dispatches through, and the residual monitor feeding
  // StopReason::kDiverged and the per-iteration diagnostics.
  std::unique_ptr<accel::Mixer> mixer_;
  accel::ConvergenceMonitor monitor_;
  // Energy-grid sharding (distribute_over): non-null means the G/W stages
  // solve only this rank's energy points and replicate the rest via the
  // shard exchange. Not owned.
  par::Comm* comm_ = nullptr;

  // Streaming observers.
  std::vector<IterationCallback> iteration_observers_;
  std::vector<KernelTimingCallback> kernel_observers_;

  // Green's functions (energy-major BT).
  std::vector<BlockTridiag> gr_, glt_, ggt_;
  // Screened interaction stacks for the W stage (bosonic grid).
  std::vector<BlockTridiag> wlt_, wgt_;
  // Polarization flats (element layout along the second index).
  std::vector<std::vector<cplx>> p_lt_, p_gt_, p_r_;
  // Scattering self-energy, stored as flats (primary storage; BT
  // materialized on demand). sig_r_ holds the dynamic part only; the static
  // (Fock) part is separate.
  std::vector<std::vector<cplx>> sig_lt_, sig_gt_, sig_r_;
  std::vector<cplx> sig_fock_;
  // Contact injections per energy (for Meir-Wingreen currents).
  std::vector<la::Matrix> obc_lt_l_, obc_gt_l_, obc_lt_r_, obc_gt_r_;
  std::vector<la::Matrix> obc_r_l_, obc_r_r_;

  int iteration_ = 0;
  double last_update_ = 1e300;
  double last_damping_ = 0.0;  ///< damping the last mix step applied
};

/// Fluent builder for `Simulation`. Collects options and observers, then
/// `build()` validates and constructs. The builder is copyable, so a base
/// configuration can be forked per scenario (see examples/nanoribbon_iv).
class SimulationBuilder {
 public:
  /// Builds against \p structure (held by pointer; must outlive build()).
  explicit SimulationBuilder(const device::Structure& structure)
      : structure_(&structure) {}

  /// Bulk-replace the option struct (observers are kept).
  SimulationBuilder& options(const SimulationOptions& opt);

  // --- physics ------------------------------------------------------------
  /// Uniform energy grid: \p n points on [\p e_min, \p e_max] (eV).
  SimulationBuilder& grid(double e_min, double e_max, int n);
  /// Set the energy grid directly.
  SimulationBuilder& grid(const EnergyGrid& g);
  /// Retarded broadening (eV); must be > 0.
  SimulationBuilder& eta(double value);
  /// Contact chemical potentials (eV) and temperature (K).
  SimulationBuilder& contacts(double mu_left, double mu_right,
                              double temperature_k = kRoomTemperatureK);
  /// Sigma update damping, in (0, 1].
  SimulationBuilder& mixing(double value);
  /// Self-consistency mixer key ("linear", "anderson", "adaptive");
  /// default "auto" resolves to "linear".
  SimulationBuilder& mixer(std::string key);
  /// Anderson residual-history window (iterates kept).
  SimulationBuilder& mixing_history(int value);
  /// Relative regularization of the Anderson least-squares solve.
  SimulationBuilder& mixing_regularization(double value);
  /// Divergence threshold of the convergence monitor (0 disables).
  SimulationBuilder& divergence_factor(double value);
  /// SCBA iteration budget.
  SimulationBuilder& max_iterations(int value);
  /// Convergence threshold on the relative Sigma< update.
  SimulationBuilder& tolerance(double value);
  /// Enable the GW channel: scales V by \p scale (0 = ballistic) and the
  /// static exchange by \p fock_scale.
  SimulationBuilder& gw(double scale, double fock_scale = 1.0);
  /// Ballistic NEGF: no interaction channels, single exact pass.
  SimulationBuilder& ballistic();
  /// Per-transport-cell gate/bias potential (eV); one entry per cell.
  SimulationBuilder& cell_potential(std::vector<double> phi);
  /// Electron-phonon channel parameters (enables it if coupling != 0).
  SimulationBuilder& ephonon(const EPhononParams& params);

  // --- parallel execution -------------------------------------------------
  /// Energy-loop worker threads (1 = sequential). Results are bit-identical
  /// for every value; see core/energy_pipeline.hpp for the guarantee.
  SimulationBuilder& num_threads(int value);
  /// Energy points per scheduled batch (0 = auto: one point per batch).
  SimulationBuilder& energy_batch(int value);
  /// Execution policy key ("sequential", "omp"); default "auto" resolves
  /// from num_threads.
  SimulationBuilder& executor(std::string key);
  /// Reuse an existing energy pipeline (e.g. a previous run's
  /// `Simulation::shared_pipeline()`) instead of building a new one. The
  /// pipeline must match the final options at build() time; it is reset, so
  /// results stay bit-identical to a fresh build. One-shot: the handle is
  /// *consumed* by the next build() — a second build() of this builder
  /// constructs its own engine rather than silently sharing mutable
  /// solver workspaces between two live Simulations. (A builder copied
  /// *before* build() still duplicates the handle: fork first, then set
  /// the pipeline on the fork that will run.)
  SimulationBuilder& pipeline(std::shared_ptr<EnergyPipeline> p);

  // --- backend selection --------------------------------------------------
  /// Legacy knob behind obc_backend = "auto" (paper §5.3).
  SimulationBuilder& memoizer(bool enabled);
  /// Exploit the lesser/greater symmetry (paper §5.2).
  SimulationBuilder& symmetrize(bool enabled);
  /// OBC backend by registry key ("memoized", "beyn", "lyapunov").
  SimulationBuilder& obc_backend(std::string key);
  /// Green's-function backend by key ("rgf", "nested-dissection").
  SimulationBuilder& greens_backend(std::string key);
  /// Dense linear-algebra backend by key ("reference", "native", "blas").
  /// Installed process-globally at construction; see options.hpp.
  SimulationBuilder& la_backend(std::string key);
  /// Select "nested-dissection" with P_S = \p partitions (paper §5.4).
  SimulationBuilder& nested_dissection(int partitions, int threads = 1);
  /// Replace the self-energy channel list (keys compose additively).
  SimulationBuilder& self_energy_channels(std::vector<std::string> keys);
  /// Append one self-energy channel key (drops the "auto" sentinel).
  SimulationBuilder& add_channel(std::string key);
  /// Resolve backends against \p registry instead of StageRegistry::global().
  SimulationBuilder& registry(const StageRegistry& reg);

  // --- observers ----------------------------------------------------------
  /// Register a per-iteration observer on the built Simulation.
  SimulationBuilder& on_iteration(Simulation::IterationCallback cb);
  /// Register a per-kernel timing observer on the built Simulation.
  SimulationBuilder& on_kernel_timing(Simulation::KernelTimingCallback cb);

  /// The options accumulated so far (pre-validation).
  const SimulationOptions& peek_options() const { return opt_; }

  /// Validate and construct. Throws std::runtime_error on invalid options
  /// or unknown backend keys.
  Simulation build() const;

 private:
  const device::Structure* structure_;
  SimulationOptions opt_;
  const StageRegistry* registry_ = nullptr;
  // mutable: build() is const but consumes the one-shot reuse handle.
  mutable std::shared_ptr<EnergyPipeline> pipeline_;
  std::vector<Simulation::IterationCallback> iteration_observers_;
  std::vector<Simulation::KernelTimingCallback> kernel_observers_;
};

}  // namespace qtx::core
