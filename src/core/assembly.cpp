#include "core/assembly.hpp"

namespace qtx::core {

BlockTridiag assemble_electron_lhs(double energy, double eta,
                                   const BlockTridiag& h,
                                   const BlockTridiag& sigma_r) {
  QTX_CHECK(h.num_blocks() == sigma_r.num_blocks() &&
            h.block_size() == sigma_r.block_size());
  const int nb = h.num_blocks(), bs = h.block_size();
  BlockTridiag m(nb, bs);
  const cplx z(energy, eta);
  for (int i = 0; i < nb; ++i) {
    Matrix d = Matrix::identity(bs) * z;
    d -= h.diag(i);
    d -= sigma_r.diag(i);
    m.diag(i) = std::move(d);
  }
  for (int i = 0; i + 1 < nb; ++i) {
    Matrix u = h.upper(i) * cplx(-1.0);
    u -= sigma_r.upper(i);
    m.upper(i) = std::move(u);
    Matrix l = h.lower(i) * cplx(-1.0);
    l -= sigma_r.lower(i);
    m.lower(i) = std::move(l);
  }
  return m;
}

BlockTridiag assemble_w_lhs(const BlockTridiag& v, const BlockTridiag& p_r) {
  // I - V P^R: the product has block half-bandwidth 2; the r_cut truncation
  // keeps the BT pattern (paper §4.3.1).
  const bt::BlockBanded vp = bt::bb_multiply(bt::BlockBanded(v),
                                             bt::BlockBanded(p_r));
  BlockTridiag m = vp.truncate_to_bt();
  m *= cplx(-1.0);
  for (int i = 0; i < m.num_blocks(); ++i)
    m.diag(i) += Matrix::identity(m.block_size());
  return m;
}

BlockTridiag assemble_w_rhs(const BlockTridiag& v, const BlockTridiag& p) {
  // V P≶ V†, half-bandwidth 3 before truncation.
  return bt::bb_congruence(bt::BlockBanded(v), bt::BlockBanded(p))
      .truncate_to_bt();
}

void apply_cell_potential(BlockTridiag& h, const std::vector<double>& phi) {
  QTX_CHECK(static_cast<int>(phi.size()) == h.num_blocks());
  for (int i = 0; i < h.num_blocks(); ++i)
    for (int a = 0; a < h.block_size(); ++a)
      h.diag(i)(a, a) += cplx(phi[i], 0.0);
}

}  // namespace qtx::core
