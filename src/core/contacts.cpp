#include "core/contacts.hpp"

#include "common/flops.hpp"
#include "common/timer.hpp"

namespace qtx::core {
namespace {

/// Gamma = i (Sigma - Sigma†).
Matrix broadening(const Matrix& sigma) {
  Matrix g = sigma - sigma.dagger();
  g *= kI;
  return g;
}

}  // namespace

ElectronObc electron_obc(const BlockTridiag& m, double energy,
                         const ContactParams& contacts,
                         ObcSolver& solver, int energy_index) {
  const int nb = m.num_blocks();
  ElectronObc out;
  // Left lead: cells ..., -2, -1 replicate the device edge. The surface
  // equation couples one cell deeper via M_{j,j-1} = lower pattern.
  {
    const Matrix& md = m.diag(0);
    const Matrix& u = m.upper(0);
    const Matrix& l = m.lower(0);
    const Matrix g =
        solver.solve_surface(obc::ObcKey{0, 0, energy_index}, md, l, u);
    out.sigma_r_left = la::mmm(l, g, u);
    const Matrix gamma = broadening(out.sigma_r_left);
    const double f =
        fermi_dirac(energy, contacts.mu_left, contacts.temperature_k);
    out.sigma_l_left = gamma * (kI * f);
    out.sigma_g_left = gamma * (-kI * (1.0 - f));
  }
  // Right lead: cells nb, nb+1, ... couple deeper via M_{j,j+1} = upper.
  {
    const Matrix& md = m.diag(nb - 1);
    const Matrix& u = m.upper(nb - 2);
    const Matrix& l = m.lower(nb - 2);
    const Matrix g =
        solver.solve_surface(obc::ObcKey{0, 1, energy_index}, md, u, l);
    out.sigma_r_right = la::mmm(u, g, l);
    const Matrix gamma = broadening(out.sigma_r_right);
    const double f =
        fermi_dirac(energy, contacts.mu_right, contacts.temperature_k);
    out.sigma_l_right = gamma * (kI * f);
    out.sigma_g_right = gamma * (-kI * (1.0 - f));
  }
  return out;
}

WObc w_obc(const BlockTridiag& m_w, const BlockTridiag& b_lesser,
           const BlockTridiag& b_greater, ObcSolver& solver,
           int omega_index) {
  const int nb = m_w.num_blocks();
  WObc out;
  // Left lead.
  {
    const Matrix& md = m_w.diag(0);
    const Matrix& u = m_w.upper(0);
    const Matrix& l = m_w.lower(0);
    Matrix g;
    {
      ScopedTimer t("W: Assembly: Beyn");
      FlopPhase f("W: Assembly: Beyn");
      g = solver.solve_surface(obc::ObcKey{1, 0, omega_index}, md, l, u);
    }
    ScopedTimer t("W: Assembly: Lyapunov");
    FlopPhase fp("W: Assembly: Lyapunov");
    out.br_left = la::mmm(l, g, u);
    // Lesser/greater: w = q + a w a† with a = g l and
    // q = g (b_d - (l g) b_u - b_l (l g)†) g†  (see contacts.hpp).
    const Matrix a = la::mm(g, l);
    const Matrix lg = la::mm(l, g);
    auto solve = [&](const BlockTridiag& b, int sub) {
      const Matrix& bd = b.diag(0);
      const Matrix& bu = b.upper(0);
      const Matrix& blo = b.lower(0);
      Matrix inner = bd;
      inner -= la::mm(lg, bu);
      inner -= la::mmh(blo, lg);
      const Matrix q = la::mmmh(g, inner, g);
      const Matrix w =
          solver.solve_stein(obc::ObcKey{sub, 0, omega_index}, q, a, 1.0);
      // Boundary RHS correction: -(l g) b_u - b_l (l g)† + l w l†.
      Matrix corr = la::mm(lg, bu) * cplx(-1.0);
      corr -= la::mmh(blo, lg);
      corr += la::mmmh(l, w, l);
      return corr;
    };
    out.bl_left = solve(b_lesser, 2);
    out.bg_left = solve(b_greater, 3);
  }
  // Right lead (mirror).
  {
    const Matrix& md = m_w.diag(nb - 1);
    const Matrix& u = m_w.upper(nb - 2);
    const Matrix& l = m_w.lower(nb - 2);
    Matrix g;
    {
      ScopedTimer t("W: Assembly: Beyn");
      FlopPhase f("W: Assembly: Beyn");
      g = solver.solve_surface(obc::ObcKey{1, 1, omega_index}, md, u, l);
    }
    ScopedTimer t("W: Assembly: Lyapunov");
    FlopPhase fp("W: Assembly: Lyapunov");
    out.br_right = la::mmm(u, g, l);
    const Matrix a = la::mm(g, u);
    const Matrix ug = la::mm(u, g);
    auto solve = [&](const BlockTridiag& b, int sub) {
      const Matrix& bd = b.diag(nb - 1);
      const Matrix& bu = b.upper(nb - 2);
      const Matrix& blo = b.lower(nb - 2);
      Matrix inner = bd;
      inner -= la::mm(ug, blo);
      inner -= la::mmh(bu, ug);
      const Matrix q = la::mmmh(g, inner, g);
      const Matrix w =
          solver.solve_stein(obc::ObcKey{sub, 1, omega_index}, q, a, 1.0);
      Matrix corr = la::mm(ug, blo) * cplx(-1.0);
      corr -= la::mmh(bu, ug);
      corr += la::mmmh(u, w, u);
      return corr;
    };
    out.bl_right = solve(b_lesser, 2);
    out.bg_right = solve(b_greater, 3);
  }
  return out;
}

}  // namespace qtx::core
