#include "core/stage_registry.hpp"

#include "common/reduction.hpp"
#include "par/comm_socket.hpp"
#include "par/thread_pool.hpp"
#include "rgf/nested_dissection.hpp"

#include <sstream>
#include <utility>

namespace qtx::core {
namespace {

// ---------------------------------------------------------------------------
// OBC backends
// ---------------------------------------------------------------------------

/// §5.3 memoizer adapter: warm-started fixed point with direct fallback.
class MemoizedObcSolver final : public ObcSolver {
 public:
  explicit MemoizedObcSolver(const obc::MemoizerOptions& opt) : memo_(opt) {}
  std::string_view name() const override { return "memoized"; }
  la::Matrix solve_surface(const obc::ObcKey& key, const la::Matrix& m,
                           const la::Matrix& n,
                           const la::Matrix& np) override {
    return memo_.solve_surface(key, m, n, np);
  }
  la::Matrix solve_stein(const obc::ObcKey& key, const la::Matrix& q,
                         const la::Matrix& a, double sigma) override {
    return memo_.solve_stein(key, q, a, sigma);
  }
  const obc::MemoizerStats& stats() const override { return memo_.stats(); }
  void reset() override {
    memo_.clear_cache();
    memo_.reset_stats();
  }

 private:
  obc::ObcMemoizer memo_;
};

/// Direct adapter over obc/beyn.hpp: contour-integral surface solves (with
/// the Sancho-Rubio / fixed-point safety ladder) and Schur Stein solves,
/// every time — no cross-iteration state.
class BeynObcSolver final : public ObcSolver {
 public:
  explicit BeynObcSolver(int quadrature) : quadrature_(quadrature) {}
  std::string_view name() const override { return "beyn"; }
  la::Matrix solve_surface(const obc::ObcKey&, const la::Matrix& m,
                           const la::Matrix& n,
                           const la::Matrix& np) override {
    stats_.direct_calls += 1;
    return obc::solve_surface_direct(m, n, np, quadrature_);
  }
  la::Matrix solve_stein(const obc::ObcKey&, const la::Matrix& q,
                         const la::Matrix& a, double sigma) override {
    stats_.direct_calls += 1;
    return obc::stein_direct(q, a, sigma);
  }
  const obc::MemoizerStats& stats() const override { return stats_; }
  void reset() override { stats_.reset(); }

 private:
  int quadrature_;
  obc::MemoizerStats stats_;
};

/// Iterative adapter over obc/lyapunov.hpp and the Sancho-Rubio decimation:
/// surface solves by decimation, Stein solves by the doubling ("squaring")
/// iteration, each falling back to the direct solver when not convergent.
class LyapunovObcSolver final : public ObcSolver {
 public:
  std::string_view name() const override { return "lyapunov"; }
  la::Matrix solve_surface(const obc::ObcKey&, const la::Matrix& m,
                           const la::Matrix& n,
                           const la::Matrix& np) override {
    const obc::SanchoRubioResult sr = obc::surface_sancho_rubio(m, n, np);
    if (sr.converged && obc::surface_residual(sr.x, m, n, np) < 1e-6) {
      stats_.memoized_calls += 1;
      stats_.fpi_iterations += sr.iterations;
      return sr.x;
    }
    stats_.direct_calls += 1;
    return obc::solve_surface_direct(m, n, np);
  }
  la::Matrix solve_stein(const obc::ObcKey&, const la::Matrix& q,
                         const la::Matrix& a, double sigma) override {
    const obc::SteinResult r = obc::stein_doubling(q, a, sigma);
    if (r.converged) {
      stats_.memoized_calls += 1;
      stats_.fpi_iterations += r.iterations;
      return r.x;
    }
    stats_.direct_calls += 1;
    return obc::stein_direct(q, a, sigma);
  }
  const obc::MemoizerStats& stats() const override { return stats_; }
  void reset() override { stats_.reset(); }

 private:
  obc::MemoizerStats stats_;
};

// ---------------------------------------------------------------------------
// Green's-function backends
// ---------------------------------------------------------------------------

class SequentialRgfSolver final : public GreensSolver {
 public:
  explicit SequentialRgfSolver(bool symmetrize) {
    opt_.symmetrize = symmetrize;
  }
  std::string_view name() const override { return "rgf"; }
  rgf::SelectedSolution solve(const bt::BlockTridiag& m,
                              const bt::BlockTridiag& bl,
                              const bt::BlockTridiag& bg) override {
    return rgf::rgf_solve(m, bl, bg, opt_);
  }

 private:
  rgf::RgfOptions opt_;
};

class NestedDissectionSolver final : public GreensSolver {
 public:
  explicit NestedDissectionSolver(const rgf::NdOptions& opt) : opt_(opt) {}
  std::string_view name() const override { return "nested-dissection"; }
  rgf::SelectedSolution solve(const bt::BlockTridiag& m,
                              const bt::BlockTridiag& bl,
                              const bt::BlockTridiag& bg) override {
    return rgf::nd_solve(m, bl, bg, opt_).sel;
  }

 private:
  rgf::NdOptions opt_;
};

// ---------------------------------------------------------------------------
// Energy-loop execution policies
// ---------------------------------------------------------------------------

/// One batch after the other on the calling thread — the reference schedule
/// every parallel policy must reproduce bit-identically.
class SequentialExecutor final : public EnergyLoopExecutor {
 public:
  std::string_view name() const override { return "sequential"; }
  int concurrency() const override { return 1; }
  void for_each_batch(
      const std::vector<EnergyBatch>& batches,
      const std::function<void(const EnergyBatch&)>& fn) override {
    for (const EnergyBatch& b : batches) fn(b);
  }
};

/// OpenMP-style fork-join over the work-stealing thread pool: every
/// for_each_batch scatters the batches across the workers and joins before
/// returning (the implicit barrier of an `omp parallel for`).
class OmpExecutor final : public EnergyLoopExecutor {
 public:
  explicit OmpExecutor(int num_threads) : pool_(num_threads) {}
  std::string_view name() const override { return "omp"; }
  int concurrency() const override { return pool_.size(); }
  void for_each_batch(
      const std::vector<EnergyBatch>& batches,
      const std::function<void(const EnergyBatch&)>& fn) override {
    pool_.parallel_for(static_cast<int>(batches.size()),
                       [&](int i) { fn(batches[i]); });
  }

 private:
  par::ThreadPool pool_;
};

// ---------------------------------------------------------------------------
// Self-energy channels
// ---------------------------------------------------------------------------

/// Dynamic GW self-energy plus static Fock exchange (paper §4.4).
class GwChannel final : public SelfEnergyChannel {
 public:
  GwChannel(const SimulationOptions& opt, const SymLayout& layout)
      : engine_(opt.grid, layout), fock_scale_(opt.fock_scale) {}
  std::string_view name() const override { return "gw"; }
  bool needs_screened_interaction() const override { return true; }
  void accumulate(const SelfEnergyInput& in,
                  SelfEnergyAccumulator& out) override {
    QTX_CHECK_MSG(in.w_lesser != nullptr && in.w_greater != nullptr,
                  "the \"gw\" channel needs the screened-interaction stacks; "
                  "the driver must run the P and W stages first");
    std::vector<std::vector<cplx>> s_lt, s_gt, s_r;
    std::vector<cplx> s_fock;
    engine_.self_energy(*in.g_lesser, *in.g_greater, *in.w_lesser,
                        *in.w_greater, *in.v_elements, fock_scale_, s_lt,
                        s_gt, s_r, s_fock);
    const int ne = static_cast<int>(s_lt.size());
    for (int e = 0; e < ne; ++e) {
      const std::int64_t nk = static_cast<std::int64_t>(s_lt[e].size());
      for (std::int64_t k = 0; k < nk; ++k) {
        (*out.s_lesser)[e][k] += s_lt[e][k];
        (*out.s_greater)[e][k] += s_gt[e][k];
        (*out.s_retarded)[e][k] += s_r[e][k];
      }
    }
    for (std::size_t k = 0; k < s_fock.size(); ++k)
      (*out.s_fock)[k] += s_fock[k];
  }

 private:
  GwEngine engine_;
  double fock_scale_;
};

/// Static (Hartree-Fock) exchange only: Sigma^F_ij = (i dE / 2 pi) V_ij
/// sum_E G<_ij(E), no screened interaction required.
class FockChannel final : public SelfEnergyChannel {
 public:
  explicit FockChannel(double fock_scale) : fock_scale_(fock_scale) {}
  std::string_view name() const override { return "fock"; }
  void accumulate(const SelfEnergyInput& in,
                  SelfEnergyAccumulator& out) override {
    const int ne = in.grid->n;
    const std::int64_t nk = in.layout->num_elements();
    const cplx pref = kI * in.grid->de() / (2.0 * kPi) * fock_scale_;
    std::vector<cplx> glt(static_cast<std::size_t>(ne));
    for (std::int64_t k = 0; k < nk; ++k) {
      for (int e = 0; e < ne; ++e)
        glt[static_cast<std::size_t>(e)] = (*in.g_lesser)[e][k];
      // Ascending-energy fold via the shared ordered reduction —
      // bit-identical to the historic running sum.
      const cplx gsum = ordered_sum(glt);
      (*out.s_fock)[k] += pref * (*in.v_elements)[k] * gsum;
    }
  }

 private:
  double fock_scale_;
};

/// Electron-phonon SCBA channel (paper §8) — adapter over core/ephonon.hpp.
class EPhononChannel final : public SelfEnergyChannel {
 public:
  EPhononChannel(const SimulationOptions& opt, const SymLayout& layout)
      : ep_(opt.grid, layout, opt.ephonon) {}
  std::string_view name() const override { return "ephonon"; }
  void accumulate(const SelfEnergyInput& in,
                  SelfEnergyAccumulator& out) override {
    ep_.accumulate(*in.g_lesser, *in.g_greater, *out.s_lesser,
                   *out.s_greater, *out.s_retarded);
  }

 private:
  EPhononSelfEnergy ep_;
};

// ---------------------------------------------------------------------------
// Self-consistency mixers (adapters over src/accel)
// ---------------------------------------------------------------------------

/// Map the facade's option fields onto the accel layer's MixerOptions.
accel::MixerOptions mixer_options(const SimulationOptions& opt) {
  accel::MixerOptions m;
  m.damping = opt.mixing;
  m.history = opt.mixing_history;
  m.regularization = opt.mixing_regularization;
  return m;
}

// ---------------------------------------------------------------------------
// Registry plumbing
// ---------------------------------------------------------------------------

template <class Map>
std::vector<std::string> sorted_keys(const Map& m) {
  std::vector<std::string> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  return keys;  // std::map iterates sorted
}

template <class Map>
std::string key_list(const Map& m) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ", ";
    os << '"' << k << '"';
    first = false;
  }
  return os.str();
}

void check_key(const std::string& key) {
  QTX_CHECK_MSG(!key.empty() && key != kAutoBackend,
                "backend keys must be non-empty and not \"auto\", got \""
                    << key << "\"");
}

}  // namespace

void StageRegistry::register_obc(const std::string& key, ObcFactory factory,
                                 std::string description) {
  check_key(key);
  obc_[key] = {std::move(factory), std::move(description)};
}

void StageRegistry::register_greens(const std::string& key,
                                    GreensFactory factory,
                                    std::string description) {
  check_key(key);
  greens_[key] = {std::move(factory), std::move(description)};
}

void StageRegistry::register_channel(const std::string& key,
                                     ChannelFactory factory,
                                     std::string description) {
  check_key(key);
  channels_[key] = {std::move(factory), std::move(description)};
}

void StageRegistry::register_executor(const std::string& key,
                                      ExecutorFactory factory,
                                      std::string description) {
  check_key(key);
  executors_[key] = {std::move(factory), std::move(description)};
}

void StageRegistry::register_mixer(const std::string& key,
                                   MixerFactory factory,
                                   std::string description) {
  check_key(key);
  mixers_[key] = {std::move(factory), std::move(description)};
}

void StageRegistry::register_la(const std::string& key, LaFactory factory,
                                std::string description) {
  check_key(key);
  la_[key] = {std::move(factory), std::move(description)};
}

void StageRegistry::register_comm(const std::string& key, CommFactory factory,
                                  std::string description) {
  check_key(key);
  comm_[key] = {std::move(factory), std::move(description)};
}

std::unique_ptr<ObcSolver> StageRegistry::make_obc(
    const std::string& key, const SimulationOptions& opt) const {
  const auto it = obc_.find(key);
  QTX_CHECK_MSG(it != obc_.end(), "unknown OBC backend \""
                                      << key << "\"; registered keys: "
                                      << key_list(obc_));
  return it->second.factory(opt);
}

std::unique_ptr<GreensSolver> StageRegistry::make_greens(
    const std::string& key, const SimulationOptions& opt) const {
  const auto it = greens_.find(key);
  QTX_CHECK_MSG(it != greens_.end(), "unknown Green's-function backend \""
                                         << key << "\"; registered keys: "
                                         << key_list(greens_));
  return it->second.factory(opt);
}

std::unique_ptr<SelfEnergyChannel> StageRegistry::make_channel(
    const std::string& key, const SimulationOptions& opt,
    const SymLayout& layout) const {
  const auto it = channels_.find(key);
  QTX_CHECK_MSG(it != channels_.end(), "unknown self-energy channel \""
                                           << key << "\"; registered keys: "
                                           << key_list(channels_));
  return it->second.factory(opt, layout);
}

std::unique_ptr<EnergyLoopExecutor> StageRegistry::make_executor(
    const std::string& key, const SimulationOptions& opt) const {
  const auto it = executors_.find(key);
  QTX_CHECK_MSG(it != executors_.end(), "unknown energy-loop executor \""
                                            << key << "\"; registered keys: "
                                            << key_list(executors_));
  return it->second.factory(opt);
}

std::unique_ptr<accel::Mixer> StageRegistry::make_mixer(
    const std::string& key, const SimulationOptions& opt) const {
  const auto it = mixers_.find(key);
  QTX_CHECK_MSG(it != mixers_.end(), "unknown self-consistency mixer \""
                                         << key << "\"; registered keys: "
                                         << key_list(mixers_));
  return it->second.factory(opt);
}

std::vector<std::string> StageRegistry::obc_keys() const {
  return sorted_keys(obc_);
}
std::vector<std::string> StageRegistry::greens_keys() const {
  return sorted_keys(greens_);
}
std::vector<std::string> StageRegistry::channel_keys() const {
  return sorted_keys(channels_);
}
std::vector<std::string> StageRegistry::executor_keys() const {
  return sorted_keys(executors_);
}

std::unique_ptr<la::Backend> StageRegistry::make_la(
    const std::string& key, const SimulationOptions& opt) const {
  const auto it = la_.find(key);
  QTX_CHECK_MSG(it != la_.end(), "unknown linear-algebra backend \""
                                     << key << "\"; registered keys: "
                                     << key_list(la_));
  return it->second.factory(opt);
}

std::vector<std::string> StageRegistry::mixer_keys() const {
  return sorted_keys(mixers_);
}

std::vector<std::string> StageRegistry::la_keys() const {
  return sorted_keys(la_);
}

std::unique_ptr<par::CommGroup> StageRegistry::make_comm(
    const std::string& key, int size, const SimulationOptions& opt) const {
  const auto it = comm_.find(key);
  QTX_CHECK_MSG(it != comm_.end(), "unknown comm backend \""
                                       << key << "\"; registered keys: "
                                       << key_list(comm_));
  return it->second.factory(size, opt);
}

std::vector<std::string> StageRegistry::comm_keys() const {
  return sorted_keys(comm_);
}

std::vector<BackendDescription> StageRegistry::describe() const {
  std::vector<BackendDescription> out;
  out.reserve(obc_.size() + greens_.size() + channels_.size() +
              mixers_.size() + executors_.size() + la_.size() + comm_.size());
  for (const auto& [k, e] : obc_) out.push_back({"obc", k, e.description});
  for (const auto& [k, e] : greens_)
    out.push_back({"greens", k, e.description});
  for (const auto& [k, e] : channels_)
    out.push_back({"channel", k, e.description});
  for (const auto& [k, e] : mixers_)
    out.push_back({"mixer", k, e.description});
  for (const auto& [k, e] : executors_)
    out.push_back({"executor", k, e.description});
  for (const auto& [k, e] : la_) out.push_back({"la", k, e.description});
  for (const auto& [k, e] : comm_) out.push_back({"comm", k, e.description});
  return out;  // std::map iterates sorted within each kind
}

StageRegistry StageRegistry::with_builtins() {
  StageRegistry reg;
  reg.register_obc(
      "memoized",
      [](const SimulationOptions&) {
        obc::MemoizerOptions mopt;
        mopt.enabled = true;
        return std::make_unique<MemoizedObcSolver>(mopt);
      },
      "warm-started fixed-point OBC solves with direct fallback (paper "
      "§5.3); the default");
  reg.register_obc(
      "beyn",
      [](const SimulationOptions&) {
        return std::make_unique<BeynObcSolver>(
            obc::MemoizerOptions{}.beyn_quadrature);
      },
      "direct Beyn contour-integral surface solves + Schur Stein solves, "
      "no cross-iteration state");
  reg.register_obc(
      "lyapunov",
      [](const SimulationOptions&) {
        return std::make_unique<LyapunovObcSolver>();
      },
      "Sancho-Rubio decimation surface solves + Lyapunov doubling Stein "
      "solves, direct fallback");
  reg.register_greens(
      "rgf",
      [](const SimulationOptions& opt) {
        return std::make_unique<SequentialRgfSolver>(opt.symmetrize);
      },
      "sequential recursive Green's-function selected solver (paper "
      "§4.3.2); the default");
  reg.register_greens(
      "nested-dissection",
      [](const SimulationOptions& opt) {
        rgf::NdOptions nopt;
        nopt.num_partitions = opt.nd_partitions;
        nopt.num_threads = opt.nd_threads;
        nopt.symmetrize = opt.symmetrize;
        return std::make_unique<NestedDissectionSolver>(nopt);
      },
      "spatial domain decomposition over nd_partitions transport-cell "
      "partitions (paper §5.4)");
  reg.register_channel(
      "gw",
      [](const SimulationOptions& opt, const SymLayout& layout) {
        return std::make_unique<GwChannel>(opt, layout);
      },
      "dynamic GW self-energy plus static Fock exchange (paper §4.4)");
  reg.register_channel(
      "fock",
      [](const SimulationOptions& opt, const SymLayout&) {
        return std::make_unique<FockChannel>(opt.fock_scale);
      },
      "static Hartree-Fock exchange only; skips the P and W stages");
  reg.register_channel(
      "ephonon",
      [](const SimulationOptions& opt, const SymLayout& layout) {
        return std::make_unique<EPhononChannel>(opt, layout);
      },
      "deformation-potential electron-phonon SCBA channel (paper §8)");
  reg.register_mixer(
      "linear",
      [](const SimulationOptions& opt) {
        return accel::make_linear_mixer(mixer_options(opt));
      },
      "damped fixed-point Sigma update (sigma += mixing * delta), "
      "bit-identical to the historic driver; the default");
  reg.register_mixer(
      "anderson",
      [](const SimulationOptions& opt) {
        return accel::make_anderson_mixer(mixer_options(opt));
      },
      "Anderson/DIIS acceleration over a mixing_history residual window "
      "(regularized least squares)");
  reg.register_mixer(
      "adaptive",
      [](const SimulationOptions& opt) {
        return accel::make_adaptive_mixer(mixer_options(opt));
      },
      "linear mixing with automatic damping back-off on residual growth");
  reg.register_executor(
      "sequential",
      [](const SimulationOptions&) {
        return std::make_unique<SequentialExecutor>();
      },
      "one energy batch after the other on the calling thread; the "
      "reference schedule");
  reg.register_executor(
      "omp",
      [](const SimulationOptions& opt) {
        return std::make_unique<OmpExecutor>(opt.num_threads);
      },
      "fork-join energy batches over the work-stealing thread pool "
      "(num_threads workers)");
  reg.register_la(
      "reference",
      [](const SimulationOptions&) { return la::make_reference_backend(); },
      "portable unit-stride oracle loops for gemm/LU; golden files are "
      "pinned to this path; the default");
  reg.register_la(
      "native",
      [](const SimulationOptions&) { return la::make_native_backend(); },
      "cache-blocked split-complex gemm/LU kernels, same pivoting as "
      "reference; validated by the la-backend equivalence suite");
  if (la::blas_backend_available()) {
    reg.register_la(
        "blas",
        [](const SimulationOptions&) { return la::make_blas_backend(); },
        "system CBLAS/LAPACKE bindings (zgemm/zgetrf/zgetrs); available "
        "because the build found cblas.h and lapacke.h");
  }
  reg.register_comm(
      "device-direct",
      [](int size, const SimulationOptions&) {
        return std::make_unique<par::CommWorld>(size,
                                                par::Backend::kDeviceDirect);
      },
      "in-process mailbox transport with zero-copy payload hand-off (the "
      "*CCL analogue of Fig. 6); the default");
  reg.register_comm(
      "host-staged",
      [](int size, const SimulationOptions&) {
        return std::make_unique<par::CommWorld>(size,
                                                par::Backend::kHostStaged);
      },
      "in-process mailbox transport staging every payload through a host "
      "buffer (the host-MPI analogue of Fig. 6)");
  reg.register_comm(
      "socket",
      [](int size, const SimulationOptions&) {
        return std::make_unique<par::SocketWorld>(size);
      },
      "length-prefixed frames over AF_UNIX socket pairs — the wire "
      "transport behind multi-process `qtx run --ranks`");
  return reg;
}

StageRegistry& StageRegistry::global() {
  static StageRegistry reg = with_builtins();
  return reg;
}

}  // namespace qtx::core
