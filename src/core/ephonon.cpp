#include "core/ephonon.hpp"

#include <cmath>

#include "fft/convolution.hpp"

namespace qtx::core {

double bose_einstein(double energy_ev, double temperature_k) {
  const double kt = kBoltzmannEvPerK * temperature_k;
  const double x = energy_ev / kt;
  if (x > 40.0) return 0.0;
  return 1.0 / (std::exp(x) - 1.0);
}

EPhononSelfEnergy::EPhononSelfEnergy(const EnergyGrid& grid,
                                     const SymLayout& layout,
                                     const EPhononParams& params)
    : grid_(grid), layout_(layout), params_(params) {
  shift_ = static_cast<int>(std::round(params.phonon_energy_ev / grid.de()));
  QTX_CHECK_MSG(shift_ >= 0, "phonon energy must be non-negative");
}

void EPhononSelfEnergy::accumulate(
    const std::vector<std::vector<cplx>>& g_lt,
    const std::vector<std::vector<cplx>>& g_gt,
    std::vector<std::vector<cplx>>& s_lt, std::vector<std::vector<cplx>>& s_gt,
    std::vector<std::vector<cplx>>& s_r) const {
  if (!enabled()) return;
  const int ne = grid_.n;
  const double d2 = params_.coupling_ev * params_.coupling_ev;
  const double nb =
      bose_einstein(params_.phonon_energy_ev, params_.temperature_k);
  const std::int64_t diag_end = layout_.diag_elements();
  const std::int64_t k_end =
      params_.diagonal_blocks_only ? diag_end : layout_.num_elements();
  // Per-element lesser/greater, then the causal window for the retarded
  // part (reusing the GW machinery).
  fft::EnergyConvolver conv(ne, grid_.de());
  std::vector<cplx> lt(ne), gt(ne), r;
  auto at = [&](const std::vector<std::vector<cplx>>& stack, int e,
                std::int64_t k) -> cplx {
    if (e < 0 || e >= ne) return cplx(0.0);
    return stack[e][k];
  };
  for (std::int64_t k = 0; k < k_end; ++k) {
    for (int e = 0; e < ne; ++e) {
      // Sigma<(E) = D^2 [(N+1) G<(E+w0) + N G<(E-w0)]
      lt[e] = d2 * ((nb + 1.0) * at(g_lt, e + shift_, k) +
                    nb * at(g_lt, e - shift_, k));
      // Sigma>(E) = D^2 [(N+1) G>(E-w0) + N G>(E+w0)]
      gt[e] = d2 * ((nb + 1.0) * at(g_gt, e - shift_, k) +
                    nb * at(g_gt, e + shift_, k));
    }
    conv.retarded_fermion(lt, gt, r);
    for (int e = 0; e < ne; ++e) {
      s_lt[e][k] += lt[e];
      s_gt[e][k] += gt[e];
      s_r[e][k] += r[e];
    }
  }
}

}  // namespace qtx::core
