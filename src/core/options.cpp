#include "core/options.hpp"

#include "common/binding.hpp"

namespace qtx::core {

std::string SimulationOptions::resolved_obc_backend() const {
  if (obc_backend != kAutoBackend) return obc_backend;
  return use_memoizer ? "memoized" : "beyn";
}

std::string SimulationOptions::resolved_greens_backend() const {
  if (greens_backend != kAutoBackend) return greens_backend;
  return (nd_partitions > 1) ? "nested-dissection" : "rgf";
}

std::string SimulationOptions::resolved_executor() const {
  if (executor != kAutoBackend) return executor;
  return (num_threads > 1) ? "omp" : "sequential";
}

std::string SimulationOptions::resolved_mixer() const {
  return (mixer == kAutoBackend) ? "linear" : mixer;
}

std::string SimulationOptions::resolved_la_backend() const {
  return (la_backend == kAutoBackend) ? "reference" : la_backend;
}

std::string SimulationOptions::resolved_comm_backend() const {
  return (comm_backend == kAutoBackend) ? "device-direct" : comm_backend;
}

std::vector<std::string> SimulationOptions::resolved_channels() const {
  if (!(self_energy_channels.size() == 1 &&
        self_energy_channels[0] == kAutoBackend)) {
    return self_energy_channels;
  }
  std::vector<std::string> keys;
  if (gw_scale != 0.0) keys.push_back("gw");
  if (ephonon.coupling_ev != 0.0) keys.push_back("ephonon");
  return keys;
}

void SimulationOptions::validate(int num_cells) const {
  QTX_CHECK_MSG(num_cells >= 2,
                "the device must have at least 2 transport cells (got "
                    << num_cells << ")");
  QTX_CHECK_MSG(grid.n >= 2, "the energy grid must have at least 2 points "
                             "(got grid.n = "
                                 << grid.n << "); set grid = EnergyGrid{"
                                              "e_min, e_max, n}");
  QTX_CHECK_MSG(grid.e_max > grid.e_min,
                "the energy grid is empty: e_max ("
                    << grid.e_max << ") must exceed e_min (" << grid.e_min
                    << ")");
  QTX_CHECK_MSG(eta > 0.0, "eta (retarded broadening) must be > 0, got "
                               << eta
                               << "; a non-positive eta breaks causality of "
                                  "G^R and every OBC solver");
  QTX_CHECK_MSG(mixing > 0.0 && mixing <= 1.0,
                "mixing (Sigma damping) must lie in (0, 1], got " << mixing);
  QTX_CHECK_MSG(mixing_history >= 1,
                "mixing_history (Anderson residual window) must be >= 1, "
                "got "
                    << mixing_history);
  QTX_CHECK_MSG(mixing_regularization >= 0.0,
                "mixing_regularization must be >= 0, got "
                    << mixing_regularization);
  QTX_CHECK_MSG(divergence_factor == 0.0 || divergence_factor > 1.0,
                "divergence_factor must be 0 (detection disabled) or > 1, "
                "got "
                    << divergence_factor
                    << "; a factor <= 1 would flag ordinary residual noise "
                       "as divergence");
  QTX_CHECK_MSG(max_iterations >= 1,
                "max_iterations must be >= 1, got " << max_iterations);
  QTX_CHECK_MSG(tol > 0.0, "tol (SCBA convergence threshold) must be > 0, "
                           "got "
                               << tol);
  QTX_CHECK_MSG(gw_scale >= 0.0,
                "gw_scale must be >= 0 (0 disables the GW channel), got "
                    << gw_scale);
  QTX_CHECK_MSG(contacts.temperature_k > 0.0,
                "contacts.temperature_k must be > 0 K, got "
                    << contacts.temperature_k);
  QTX_CHECK_MSG(cell_potential.empty() ||
                    static_cast<int>(cell_potential.size()) == num_cells,
                "cell_potential has " << cell_potential.size()
                                      << " entries but the device has "
                                      << num_cells
                                      << " transport cells; provide one "
                                         "potential per cell (or leave it "
                                         "empty)");
  QTX_CHECK_MSG(nd_threads >= 1,
                "nd_threads must be >= 1, got " << nd_threads);
  QTX_CHECK_MSG(num_threads >= 1,
                "num_threads must be >= 1 (1 = sequential energy loop), got "
                    << num_threads
                    << "; use par::ThreadPool::hardware_threads() for one "
                       "worker per core");
  QTX_CHECK_MSG(energy_batch >= 0,
                "energy_batch must be >= 0 (0 = auto: one energy point per "
                "batch), got "
                    << energy_batch);
  QTX_CHECK_MSG(nd_partitions <= 1 ||
                    resolved_greens_backend() == "nested-dissection",
                "nd_partitions = "
                    << nd_partitions << " has no effect: greens_backend \""
                    << resolved_greens_backend()
                    << "\" never partitions the device; set greens_backend = "
                       "\"nested-dissection\" to shard the transport cells, "
                       "or leave nd_partitions at 1");
  QTX_CHECK_MSG(num_threads == 1 || nd_threads == 1 ||
                    resolved_greens_backend() != "nested-dissection",
                "num_threads ("
                    << num_threads
                    << ") > 1 runs energy batches on parallel workers; "
                       "combining it with nd_threads ("
                    << nd_threads
                    << ") > 1 would oversubscribe every worker with nested "
                       "spatial threads — parallelize over energies "
                       "(num_threads) or over partitions (nd_threads), not "
                       "both");
  if (resolved_greens_backend() == "nested-dissection") {
    QTX_CHECK_MSG(nd_partitions >= 2,
                  "the nested-dissection Green's solver needs nd_partitions "
                  ">= 2, got "
                      << nd_partitions
                      << "; use greens_backend = \"rgf\" for a sequential "
                         "solve");
    QTX_CHECK_MSG(num_cells % nd_partitions == 0,
                  "nd_partitions (" << nd_partitions
                                    << ") must divide the cell count ("
                                    << num_cells
                                    << ") for load-balanced partitions "
                                       "(paper §5.4)");
    QTX_CHECK_MSG(num_cells >= 2 * nd_partitions,
                  "nested dissection needs at least 2 cells per partition: "
                  "nd_partitions = "
                      << nd_partitions << " but the device has only "
                      << num_cells << " cells");
  }
  QTX_CHECK_MSG(ephonon.coupling_ev >= 0.0,
                "ephonon.coupling_ev must be >= 0, got "
                    << ephonon.coupling_ev);
  if (ephonon.coupling_ev != 0.0) {
    QTX_CHECK_MSG(ephonon.phonon_energy_ev > 0.0,
                  "ephonon.phonon_energy_ev must be > 0 when the channel is "
                  "enabled, got "
                      << ephonon.phonon_energy_ev);
    QTX_CHECK_MSG(ephonon.temperature_k > 0.0,
                  "ephonon.temperature_k must be > 0 K, got "
                      << ephonon.temperature_k);
  }
  QTX_CHECK_MSG(!resolved_obc_backend().empty(),
                "obc_backend must not be empty");
  QTX_CHECK_MSG(!resolved_greens_backend().empty(),
                "greens_backend must not be empty");
  QTX_CHECK_MSG(!resolved_executor().empty(),
                "executor must not be empty; use \"sequential\" or \"omp\"");
  QTX_CHECK_MSG(!resolved_mixer().empty(),
                "mixer must not be empty; use \"linear\", \"anderson\", or "
                "\"adaptive\"");
  QTX_CHECK_MSG(!resolved_la_backend().empty(),
                "la_backend must not be empty; use \"reference\", "
                "\"native\", or \"blas\"");
  QTX_CHECK_MSG(!resolved_comm_backend().empty(),
                "comm_backend must not be empty; use \"device-direct\", "
                "\"host-staged\", or \"socket\"");
  const std::vector<std::string> channels = resolved_channels();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const std::string& key = channels[i];
    QTX_CHECK_MSG(!key.empty() && key != kAutoBackend,
                  "self_energy_channels may use the single-entry {\"auto\"} "
                  "sentinel or explicit keys, not a mix");
    for (std::size_t j = 0; j < i; ++j) {
      QTX_CHECK_MSG(channels[j] != key,
                    "self_energy_channels lists \""
                        << key << "\" twice; channels accumulate "
                                  "additively, so a duplicate would double "
                                  "its Sigma contribution");
    }
  }
}

// ---------------------------------------------------------------------------
// String binding (instance of the common/binding.hpp framework)
// ---------------------------------------------------------------------------

namespace {

namespace qs = qtx::strings;
using Binder = qtx::binding::FieldBinder<SimulationOptions>;

/// Binder for a double nested one struct deep (grid.*, contacts.*,
/// ephonon.*): member-pointer chains keep the table declarative.
template <class Sub>
Binder bind_sub_double(const char* key, Sub SimulationOptions::*sub,
                       double Sub::*field) {
  return {key,
          [sub, field](SimulationOptions& o, const std::string& v) {
            o.*sub.*field = qs::parse_double(v);
          },
          [sub, field](const SimulationOptions& o) {
            return qs::format_double(o.*sub.*field);
          }};
}

/// Mark \p b sticky-default: serialize_options omits it at \p default_text
/// (the append-only provenance policy — see the header comment).
Binder sticky_default(Binder b, std::string default_text) {
  b.omit_when = std::move(default_text);
  return b;
}

/// The full binding table, in serialization order. Keys mirror the C++
/// field paths so the scenario schema and the struct stay in sync by
/// inspection (documented in docs/userguide.md, "Scenario file schema").
const std::vector<Binder>& binders() {
  namespace qb = qtx::binding;
  static const std::vector<Binder> table = [] {
    std::vector<Binder> b;
    // Physics.
    b.push_back(bind_sub_double("grid.e_min", &SimulationOptions::grid,
                                &EnergyGrid::e_min));
    b.push_back(bind_sub_double("grid.e_max", &SimulationOptions::grid,
                                &EnergyGrid::e_max));
    b.push_back({"grid.n",
                 [](SimulationOptions& o, const std::string& v) {
                   o.grid.n = qs::parse_int32(v);
                 },
                 [](const SimulationOptions& o) {
                   return std::to_string(o.grid.n);
                 }});
    b.push_back(qb::bind_double("eta", &SimulationOptions::eta));
    b.push_back(bind_sub_double("contacts.mu_left",
                                &SimulationOptions::contacts,
                                &ContactParams::mu_left));
    b.push_back(bind_sub_double("contacts.mu_right",
                                &SimulationOptions::contacts,
                                &ContactParams::mu_right));
    b.push_back(bind_sub_double("contacts.temperature_k",
                                &SimulationOptions::contacts,
                                &ContactParams::temperature_k));
    b.push_back(qb::bind_double("mixing", &SimulationOptions::mixing));
    b.push_back(
        qb::bind_int("max_iterations", &SimulationOptions::max_iterations));
    b.push_back(qb::bind_double("tol", &SimulationOptions::tol));
    b.push_back(qb::bind_double("gw_scale", &SimulationOptions::gw_scale));
    b.push_back(
        qb::bind_double("fock_scale", &SimulationOptions::fock_scale));
    b.push_back({"cell_potential",
                 [](SimulationOptions& o, const std::string& v) {
                   o.cell_potential = qs::parse_double_list(v);
                 },
                 [](const SimulationOptions& o) {
                   return qs::format_double_list(o.cell_potential);
                 }});
    // Electron-phonon channel.
    b.push_back(bind_sub_double("ephonon.coupling_ev",
                                &SimulationOptions::ephonon,
                                &EPhononParams::coupling_ev));
    b.push_back(bind_sub_double("ephonon.phonon_energy_ev",
                                &SimulationOptions::ephonon,
                                &EPhononParams::phonon_energy_ev));
    b.push_back(bind_sub_double("ephonon.temperature_k",
                                &SimulationOptions::ephonon,
                                &EPhononParams::temperature_k));
    b.push_back({"ephonon.diagonal_blocks_only",
                 [](SimulationOptions& o, const std::string& v) {
                   o.ephonon.diagonal_blocks_only = qs::parse_bool(v);
                 },
                 [](const SimulationOptions& o) {
                   return std::string(
                       o.ephonon.diagonal_blocks_only ? "true" : "false");
                 }});
    // Legacy backend knobs.
    b.push_back(
        qb::bind_bool("use_memoizer", &SimulationOptions::use_memoizer));
    b.push_back(qb::bind_bool("symmetrize", &SimulationOptions::symmetrize));
    b.push_back(
        qb::bind_int("nd_partitions", &SimulationOptions::nd_partitions));
    b.push_back(qb::bind_int("nd_threads", &SimulationOptions::nd_threads));
    // Parallel energy loop.
    b.push_back(
        qb::bind_int("num_threads", &SimulationOptions::num_threads));
    b.push_back(
        qb::bind_int("energy_batch", &SimulationOptions::energy_batch));
    // Backend selection.
    b.push_back(
        qb::bind_string("obc_backend", &SimulationOptions::obc_backend));
    b.push_back(qb::bind_string("greens_backend",
                                &SimulationOptions::greens_backend));
    b.push_back({"self_energy_channels",
                 [](SimulationOptions& o, const std::string& v) {
                   o.self_energy_channels = qs::split_list(v);
                 },
                 [](const SimulationOptions& o) {
                   return qs::join(o.self_energy_channels);
                 }});
    b.push_back(qb::bind_string("executor", &SimulationOptions::executor));
    // Self-consistency acceleration (sticky-default: a default-configured
    // run serializes exactly as it did before the mixer family existed, so
    // provenance golden files never churn; see common/binding.hpp).
    b.push_back(sticky_default(
        qb::bind_string("mixer", &SimulationOptions::mixer), kAutoBackend));
    b.push_back(sticky_default(
        qb::bind_int("mixing_history", &SimulationOptions::mixing_history),
        std::to_string(SimulationOptions{}.mixing_history)));
    b.push_back(sticky_default(
        qb::bind_double("mixing_regularization",
                        &SimulationOptions::mixing_regularization),
        qs::format_double(SimulationOptions{}.mixing_regularization)));
    b.push_back(sticky_default(
        qb::bind_double("divergence_factor",
                        &SimulationOptions::divergence_factor),
        qs::format_double(SimulationOptions{}.divergence_factor)));
    // Dense-kernel backend (sticky-default, same append-only policy).
    b.push_back(sticky_default(
        qb::bind_string("la_backend", &SimulationOptions::la_backend),
        kAutoBackend));
    // Communicator transport (sticky-default, same append-only policy).
    b.push_back(sticky_default(
        qb::bind_string("comm_backend", &SimulationOptions::comm_backend),
        kAutoBackend));
    return b;
  }();
  return table;
}

}  // namespace

void set_option(SimulationOptions& opt, const std::string& key,
                const std::string& value) {
  qtx::binding::set_field(binders(), "option key", opt, key, value);
}

std::vector<OptionKV> serialize_options(const SimulationOptions& opt) {
  return qtx::binding::serialize_fields(binders(), opt);
}

std::vector<std::string> option_keys() {
  return qtx::binding::field_keys(binders());
}

}  // namespace qtx::core
