#include "core/options.hpp"

namespace qtx::core {

std::string SimulationOptions::resolved_obc_backend() const {
  if (obc_backend != kAutoBackend) return obc_backend;
  return use_memoizer ? "memoized" : "beyn";
}

std::string SimulationOptions::resolved_greens_backend() const {
  if (greens_backend != kAutoBackend) return greens_backend;
  return (nd_partitions > 1) ? "nested-dissection" : "rgf";
}

std::string SimulationOptions::resolved_executor() const {
  if (executor != kAutoBackend) return executor;
  return (num_threads > 1) ? "omp" : "sequential";
}

std::vector<std::string> SimulationOptions::resolved_channels() const {
  if (!(self_energy_channels.size() == 1 &&
        self_energy_channels[0] == kAutoBackend)) {
    return self_energy_channels;
  }
  std::vector<std::string> keys;
  if (gw_scale != 0.0) keys.push_back("gw");
  if (ephonon.coupling_ev != 0.0) keys.push_back("ephonon");
  return keys;
}

void SimulationOptions::validate(int num_cells) const {
  QTX_CHECK_MSG(num_cells >= 2,
                "the device must have at least 2 transport cells (got "
                    << num_cells << ")");
  QTX_CHECK_MSG(grid.n >= 2, "the energy grid must have at least 2 points "
                             "(got grid.n = "
                                 << grid.n << "); set grid = EnergyGrid{"
                                              "e_min, e_max, n}");
  QTX_CHECK_MSG(grid.e_max > grid.e_min,
                "the energy grid is empty: e_max ("
                    << grid.e_max << ") must exceed e_min (" << grid.e_min
                    << ")");
  QTX_CHECK_MSG(eta > 0.0, "eta (retarded broadening) must be > 0, got "
                               << eta
                               << "; a non-positive eta breaks causality of "
                                  "G^R and every OBC solver");
  QTX_CHECK_MSG(mixing > 0.0 && mixing <= 1.0,
                "mixing (Sigma damping) must lie in (0, 1], got " << mixing);
  QTX_CHECK_MSG(max_iterations >= 1,
                "max_iterations must be >= 1, got " << max_iterations);
  QTX_CHECK_MSG(tol > 0.0, "tol (SCBA convergence threshold) must be > 0, "
                           "got "
                               << tol);
  QTX_CHECK_MSG(gw_scale >= 0.0,
                "gw_scale must be >= 0 (0 disables the GW channel), got "
                    << gw_scale);
  QTX_CHECK_MSG(contacts.temperature_k > 0.0,
                "contacts.temperature_k must be > 0 K, got "
                    << contacts.temperature_k);
  QTX_CHECK_MSG(cell_potential.empty() ||
                    static_cast<int>(cell_potential.size()) == num_cells,
                "cell_potential has " << cell_potential.size()
                                      << " entries but the device has "
                                      << num_cells
                                      << " transport cells; provide one "
                                         "potential per cell (or leave it "
                                         "empty)");
  QTX_CHECK_MSG(nd_threads >= 1,
                "nd_threads must be >= 1, got " << nd_threads);
  QTX_CHECK_MSG(num_threads >= 1,
                "num_threads must be >= 1 (1 = sequential energy loop), got "
                    << num_threads
                    << "; use par::ThreadPool::hardware_threads() for one "
                       "worker per core");
  QTX_CHECK_MSG(energy_batch >= 0,
                "energy_batch must be >= 0 (0 = auto: one energy point per "
                "batch), got "
                    << energy_batch);
  QTX_CHECK_MSG(nd_partitions <= 1 ||
                    resolved_greens_backend() == "nested-dissection",
                "nd_partitions = "
                    << nd_partitions << " has no effect: greens_backend \""
                    << resolved_greens_backend()
                    << "\" never partitions the device; set greens_backend = "
                       "\"nested-dissection\" to shard the transport cells, "
                       "or leave nd_partitions at 1");
  QTX_CHECK_MSG(num_threads == 1 || nd_threads == 1 ||
                    resolved_greens_backend() != "nested-dissection",
                "num_threads ("
                    << num_threads
                    << ") > 1 runs energy batches on parallel workers; "
                       "combining it with nd_threads ("
                    << nd_threads
                    << ") > 1 would oversubscribe every worker with nested "
                       "spatial threads — parallelize over energies "
                       "(num_threads) or over partitions (nd_threads), not "
                       "both");
  if (resolved_greens_backend() == "nested-dissection") {
    QTX_CHECK_MSG(nd_partitions >= 2,
                  "the nested-dissection Green's solver needs nd_partitions "
                  ">= 2, got "
                      << nd_partitions
                      << "; use greens_backend = \"rgf\" for a sequential "
                         "solve");
    QTX_CHECK_MSG(num_cells % nd_partitions == 0,
                  "nd_partitions (" << nd_partitions
                                    << ") must divide the cell count ("
                                    << num_cells
                                    << ") for load-balanced partitions "
                                       "(paper §5.4)");
    QTX_CHECK_MSG(num_cells >= 2 * nd_partitions,
                  "nested dissection needs at least 2 cells per partition: "
                  "nd_partitions = "
                      << nd_partitions << " but the device has only "
                      << num_cells << " cells");
  }
  QTX_CHECK_MSG(ephonon.coupling_ev >= 0.0,
                "ephonon.coupling_ev must be >= 0, got "
                    << ephonon.coupling_ev);
  if (ephonon.coupling_ev != 0.0) {
    QTX_CHECK_MSG(ephonon.phonon_energy_ev > 0.0,
                  "ephonon.phonon_energy_ev must be > 0 when the channel is "
                  "enabled, got "
                      << ephonon.phonon_energy_ev);
    QTX_CHECK_MSG(ephonon.temperature_k > 0.0,
                  "ephonon.temperature_k must be > 0 K, got "
                      << ephonon.temperature_k);
  }
  QTX_CHECK_MSG(!resolved_obc_backend().empty(),
                "obc_backend must not be empty");
  QTX_CHECK_MSG(!resolved_greens_backend().empty(),
                "greens_backend must not be empty");
  QTX_CHECK_MSG(!resolved_executor().empty(),
                "executor must not be empty; use \"sequential\" or \"omp\"");
  const std::vector<std::string> channels = resolved_channels();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const std::string& key = channels[i];
    QTX_CHECK_MSG(!key.empty() && key != kAutoBackend,
                  "self_energy_channels may use the single-entry {\"auto\"} "
                  "sentinel or explicit keys, not a mix");
    for (std::size_t j = 0; j < i; ++j) {
      QTX_CHECK_MSG(channels[j] != key,
                    "self_energy_channels lists \""
                        << key << "\" twice; channels accumulate "
                                  "additively, so a duplicate would double "
                                  "its Sigma contribution");
    }
  }
}

}  // namespace qtx::core
