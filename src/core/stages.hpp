#pragma once

/// \file stages.hpp
/// Abstract stage interfaces of the Fig. 3 pipeline: the seams along which
/// the SCBA driver is pluggable.
///
/// The SCBA cycle decomposes into three replaceable stages, mirroring the
/// paper's kernel taxonomy (Table 4):
///
///   - `ObcSolver`         — open-boundary solves: the retarded surface
///                           Green's function x = (m - n x n')^{-1} and the
///                           lesser/greater Stein equation X = Q + s A X A†
///                           (paper §4.2). Backends: "memoized" (§5.3 warm-
///                           started fixed point with direct fallback),
///                           "beyn" (direct contour integral + Schur Stein),
///                           "lyapunov" (Sancho-Rubio decimation + doubling).
///   - `GreensSolver`      — the selected quadratic solve M X≶ M† = B≶ and
///                           selected inverse (paper §4.3). Backends: "rgf"
///                           (sequential, §4.3.2) and "nested-dissection"
///                           (spatial domain decomposition, §5.4).
///   - `SelfEnergyChannel` — additive scattering self-energies evaluated on
///                           the serialized element stacks (paper §4.4).
///                           Backends: "gw" (dynamic GW + Fock), "fock"
///                           (static exchange only), "ephonon" (§8).
///
/// Channels compose: the driver zero-initializes the Sigma stacks and lets
/// every configured channel accumulate into them, so GW + e-phonon (or any
/// custom channel) coexist without driver changes.
///
/// A fourth pluggable stage kind — the self-consistency `accel::Mixer`
/// ("linear", "anderson", "adaptive") that turns the raw Sigma proposal
/// into the next iterate — lives in src/accel/mixer.hpp (below this layer)
/// and is registered/resolved through the same `StageRegistry`.
///
/// This header carries only the abstract interfaces, so low-level consumers
/// (core/contacts.hpp) stay free of the facade's dependency tree; the
/// string-keyed `StageRegistry` that instantiates backends lives in
/// core/stage_registry.hpp.

#include <functional>
#include <string_view>
#include <vector>

#include "core/energy_grid.hpp"
#include "core/gw.hpp"
#include "obc/memoizer.hpp"
#include "rgf/sequential.hpp"

namespace qtx::core {

// ---------------------------------------------------------------------------
// Stage interfaces
// ---------------------------------------------------------------------------

/// Open-boundary-condition backend: the two lead-level solves consumed by
/// `electron_obc` / `w_obc` (core/contacts.hpp). Implementations memoize (or
/// not) across SCBA iterations keyed by `obc::ObcKey`; `stats()` feeds the
/// §5.3 ablation benchmark for every backend uniformly.
class ObcSolver {
 public:
  virtual ~ObcSolver() = default;

  /// Registry key of this backend (e.g. "beyn").
  virtual std::string_view name() const = 0;

  /// Retarded surface Green's function x = (m - n x n')^{-1} (paper Eq. 4).
  virtual la::Matrix solve_surface(const obc::ObcKey& key, const la::Matrix& m,
                                   const la::Matrix& n,
                                   const la::Matrix& np) = 0;

  /// Lesser/greater boundary function X = Q + sigma A X A† (paper Eq. 7).
  virtual la::Matrix solve_stein(const obc::ObcKey& key, const la::Matrix& q,
                                 const la::Matrix& a, double sigma) = 0;

  /// Dispatch counters (direct vs memoized solves, fixed-point iterations).
  virtual const obc::MemoizerStats& stats() const = 0;

  /// Drop any cross-iteration state (caches, counters).
  virtual void reset() {}
};

/// Selected-solution backend for the per-energy block-tridiagonal systems of
/// both subsystems (G and W).
class GreensSolver {
 public:
  virtual ~GreensSolver() = default;

  /// Registry key of this backend (e.g. "rgf").
  virtual std::string_view name() const = 0;

  /// Selected X^R = M^{-1} and X≶ = M^{-1} B≶ M^{-†} (paper Eqs. 9-12).
  virtual rgf::SelectedSolution solve(const bt::BlockTridiag& m,
                                      const bt::BlockTridiag& b_lesser,
                                      const bt::BlockTridiag& b_greater) = 0;
};

/// Inputs available to a self-energy channel: the serialized energy-major
/// element stacks (layout: core/gw.hpp SymLayout). The screened-interaction
/// stacks are only populated when some configured channel requested them.
struct SelfEnergyInput {
  const EnergyGrid* grid = nullptr;    ///< the fermionic energy grid
  const SymLayout* layout = nullptr;   ///< element layout of the stacks
  const std::vector<std::vector<cplx>>* g_lesser = nullptr;   ///< G< stack
  const std::vector<std::vector<cplx>>* g_greater = nullptr;  ///< G> stack
  const std::vector<std::vector<cplx>>* w_lesser = nullptr;   ///< may be null
  const std::vector<std::vector<cplx>>* w_greater = nullptr;  ///< may be null
  const std::vector<cplx>* v_elements = nullptr;  ///< serialized scaled V
};

/// Accumulation targets: zero-initialized by the driver each iteration;
/// channels *add* their contribution so multiple channels compose.
struct SelfEnergyAccumulator {
  std::vector<std::vector<cplx>>* s_lesser = nullptr;    ///< Sigma< target
  std::vector<std::vector<cplx>>* s_greater = nullptr;   ///< Sigma> target
  std::vector<std::vector<cplx>>* s_retarded = nullptr;  ///< dynamic part
  std::vector<cplx>* s_fock = nullptr;  ///< static (Hermitian) part
};

/// Execution policy of the per-energy stage chain (assemble -> OBC -> RGF):
/// the seam the parallel energy pipeline (core/energy_pipeline.hpp) plugs
/// into. Backends: "sequential" (one batch after the other on the calling
/// thread) and "omp" (fork-join over the work-stealing par::ThreadPool —
/// the shared-memory analogue of the paper's per-rank energy parallelism).
class EnergyLoopExecutor {
 public:
  virtual ~EnergyLoopExecutor() = default;

  /// Registry key of this policy (e.g. "omp").
  virtual std::string_view name() const = 0;

  /// Worker count the policy schedules onto (1 for sequential).
  virtual int concurrency() const = 0;

  /// Invoke fn(batch) exactly once per batch. Implementations may run
  /// batches concurrently and in any order; fn must touch only per-batch
  /// workspaces and the per-energy output slots of its own batch, which is
  /// what makes the result schedule-independent.
  virtual void for_each_batch(
      const std::vector<EnergyBatch>& batches,
      const std::function<void(const EnergyBatch&)>& fn) = 0;
};

/// One additive scattering self-energy (paper Fig. 3d; §8 for extensions).
class SelfEnergyChannel {
 public:
  virtual ~SelfEnergyChannel() = default;

  /// Registry key of this channel (e.g. "gw").
  virtual std::string_view name() const = 0;

  /// True if the channel consumes W≶ — the driver then runs the P and W
  /// stages of the pipeline before calling accumulate().
  virtual bool needs_screened_interaction() const { return false; }

  /// Add this channel's Sigma contribution into \p out.
  virtual void accumulate(const SelfEnergyInput& in,
                          SelfEnergyAccumulator& out) = 0;
};

}  // namespace qtx::core
