#pragma once

/// \file contacts.hpp
/// Open-boundary-condition orchestration for both subsystems (paper §4.2).
///
/// Electrons: the retarded boundary self-energy comes from the lead surface
/// Green's function (Beyn / Sancho-Rubio / memoized fixed point); the
/// lesser/greater injections follow from the fluctuation-dissipation theorem
/// with the contact Fermi levels, Sigma< = i f Gamma, Sigma> = -i (1-f)
/// Gamma.
///
/// Screened Coulomb: the retarded correction uses the same surface machinery
/// on eM_W = I - V P^R; the lesser/greater boundary functions solve the
/// discrete-time Lyapunov (Stein) equation w≶ = q + a w≶ a† with blocks
/// extracted from the lead cells of the assembled W system (paper Eq. 7).
///
/// Both orchestrators dispatch the lead-level solves through the abstract
/// `ObcSolver` stage (core/stages.hpp), so the memoized, direct-Beyn, and
/// Lyapunov backends are interchangeable at runtime.

#include "bsparse/bsparse.hpp"
#include "core/options.hpp"
#include "core/stages.hpp"

namespace qtx::core {

using bt::BlockTridiag;
using la::Matrix;

/// Per-energy electron boundary blocks. The retarded blocks are subtracted
/// from eM's corner diagonals; the lesser/greater blocks add to B≶.
struct ElectronObc {
  Matrix sigma_r_left, sigma_r_right;
  Matrix sigma_l_left, sigma_l_right;
  Matrix sigma_g_left, sigma_g_right;
};

/// Compute the electron OBC from the (pre-correction) system matrix eM(E).
/// The lead unit cells replicate eM's edge blocks, as in the paper's
/// periodic-contact construction (Fig. 2).
ElectronObc electron_obc(const BlockTridiag& m, double energy,
                         const ContactParams& contacts, ObcSolver& solver,
                         int energy_index);

/// Per-frequency screened-Coulomb boundary blocks.
struct WObc {
  Matrix br_left, br_right;  ///< subtract from eM_W corners
  Matrix bl_left, bl_right;  ///< add to B< corners
  Matrix bg_left, bg_right;  ///< add to B> corners
};

/// Compute the W OBC from the assembled eM_W(w) and RHS B≶_W(w) edge blocks.
WObc w_obc(const BlockTridiag& m_w, const BlockTridiag& b_lesser,
           const BlockTridiag& b_greater, ObcSolver& solver, int omega_index);

}  // namespace qtx::core
