#pragma once

/// \file ephonon.hpp
/// Electron-phonon scattering self-energy — the paper's §8 extension
/// ("other types of scattering, such as electron-phonon or electron-photon,
/// can be readily integrated"). Implements the standard deformation-
/// potential self-consistent Born self-energy with a dispersionless phonon
/// of energy w0 (the model of the SC'19 dissipative-transport predecessor,
/// Ziogas et al. [52]):
///
///   Sigma<(E) = D^2 [ (N+1) G<(E + w0) + N G<(E - w0) ]
///   Sigma>(E) = D^2 [ (N+1) G>(E - w0) + N G>(E + w0) ]
///
/// with N the Bose-Einstein occupation of the phonon mode. The retarded
/// part follows from the same causal reconstruction as the GW self-energy.
/// The local (deformation-potential) approximation restricts the self-energy
/// to the diagonal blocks by default.

#include <vector>

#include "core/energy_grid.hpp"
#include "core/gw.hpp"

namespace qtx::core {

struct EPhononParams {
  double coupling_ev = 0.0;       ///< D; 0 disables the channel
  double phonon_energy_ev = 0.05; ///< w0 (optical phonon)
  double temperature_k = kRoomTemperatureK;
  bool diagonal_blocks_only = true;  ///< local approximation
};

/// Bose-Einstein occupation of the phonon mode.
double bose_einstein(double energy_ev, double temperature_k);

class EPhononSelfEnergy {
 public:
  EPhononSelfEnergy(const EnergyGrid& grid, const SymLayout& layout,
                    const EPhononParams& params);

  bool enabled() const { return params_.coupling_ev != 0.0; }
  const EPhononParams& params() const { return params_; }

  /// Compute Sigma≶/Sigma^R flats from the G≶ energy-major stacks and
  /// accumulate them into the provided self-energy stacks.
  void accumulate(const std::vector<std::vector<cplx>>& g_lt,
                  const std::vector<std::vector<cplx>>& g_gt,
                  std::vector<std::vector<cplx>>& s_lt,
                  std::vector<std::vector<cplx>>& s_gt,
                  std::vector<std::vector<cplx>>& s_r) const;

 private:
  EnergyGrid grid_;
  SymLayout layout_;
  EPhononParams params_;
  int shift_ = 0;  ///< w0 in grid points
};

}  // namespace qtx::core
