#pragma once

/// \file energy_pipeline.hpp
/// Shared-memory parallel execution engine for the energy loop — the
/// reproduction of the paper's central scaling lever (§5.1): every SCBA
/// iteration solves independent Green's-function/OBC problems per energy
/// point before a global self-energy exchange.
///
/// The pipeline shards the energy grid into contiguous batches
/// (`make_energy_batches`, core/energy_grid.hpp), resolves an
/// `EnergyLoopExecutor` ("sequential" or the work-stealing "omp" policy)
/// from the `StageRegistry`, and keeps one stage workspace (ObcSolver +
/// GreensSolver) per *batch* — not per worker. Because the batch layout and
/// the OBC caches are keyed by energy index only, the numbers a run
/// produces are bit-identical for every `num_threads`, including 1: a
/// worker never reads another batch's solver state, and every per-energy
/// result lands in its own output slot.
///
/// Scalar convergence metrics are the one true reduction of the loop;
/// `ordered_sum` folds per-energy partials in ascending index order so the
/// floating-point association is schedule-independent too.
///
/// Both drivers run on this engine: `Simulation` (whole grid per process)
/// and `distributed_iteration` (each rank pipelines its grid slice).

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/stage_registry.hpp"

namespace qtx::core {

/// Private solver state of one batch: OBC caches (memoizer warm-starts) and
/// the Green's-function solver, never shared between concurrent batches.
struct StageWorkspace {
  std::unique_ptr<ObcSolver> obc;
  std::unique_ptr<GreensSolver> greens;
};

class EnergyPipeline {
 public:
  /// Shards [0, n_energies) by \p opt.energy_batch and resolves the
  /// executor plus one per-batch workspace set from \p registry, using
  /// \p opt's backend keys (the same resolution the Simulation facade
  /// performs). \p opt must already be validated.
  EnergyPipeline(int n_energies, const SimulationOptions& opt,
                 const StageRegistry& registry);

  const std::vector<EnergyBatch>& batches() const { return batches_; }
  int num_batches() const { return static_cast<int>(batches_.size()); }

  /// Worker count of the resolved execution policy (1 for sequential).
  int concurrency() const { return executor_->concurrency(); }
  std::string_view executor_name() const { return executor_->name(); }

  /// Per-batch stage backends. Callers running inside for_each_batch /
  /// for_each_energy must only touch the workspace of their own batch.
  ObcSolver& obc(int batch) { return *workspaces_[batch].obc; }
  GreensSolver& greens(int batch) { return *workspaces_[batch].greens; }
  const ObcSolver& obc(int batch) const { return *workspaces_[batch].obc; }
  const GreensSolver& greens(int batch) const {
    return *workspaces_[batch].greens;
  }

  /// Run fn(batch) exactly once per batch, possibly concurrently; blocks
  /// until every batch finished (fork-join).
  void for_each_batch(const std::function<void(const EnergyBatch&)>& fn);

  /// Run fn(energy, batch_index) for every energy in [0, n_energies);
  /// energies within a batch run in ascending order on one worker.
  void for_each_energy(const std::function<void(int, int)>& fn);

  /// OBC dispatch counters summed over all batch workspaces (batch order,
  /// so the aggregate is deterministic as well).
  obc::MemoizerStats obc_stats() const;

  /// Drop every batch workspace's cross-iteration state (OBC caches and
  /// dispatch counters), returning the pipeline to its freshly constructed
  /// state. A reused pipeline therefore produces bit-identical results to a
  /// newly built one — the invariant the sweep mode's pipeline sharing
  /// rests on.
  void reset();

  /// Empty string when this pipeline can be reused for a run over
  /// \p n_energies points with \p opt (same batch layout, same resolved
  /// backend and executor keys, same worker count); otherwise a
  /// human-readable reason for the mismatch.
  std::string reuse_mismatch(int n_energies, const SimulationOptions& opt)
      const;

 private:
  std::vector<EnergyBatch> batches_;
  std::vector<StageWorkspace> workspaces_;
  std::unique_ptr<EnergyLoopExecutor> executor_;
  // Options the solver workspaces were *constructed* with: reset() cannot
  // change these, so reuse_mismatch must reject runs that need different
  // values (a symmetrize or nd_partitions sweep rebuilds per point).
  bool built_symmetrize_ = true;
  int built_nd_partitions_ = 1;
  int built_nd_threads_ = 1;
};

/// Canonical reuse key of a run over \p n_energies points with \p opt: the
/// exact fields `reuse_mismatch` compares (batch layout, resolved OBC /
/// Green's-function / executor keys, worker count when the executor is
/// "omp", and the build-time symmetrize / nested-dissection settings),
/// folded into one deterministic string. Two runs share a key exactly when
/// a pipeline built for either is reusable for the other, which makes the
/// key safe to shelve warm pipelines under — the serve layer's
/// `PipelinePool` keys its checkouts with it (prefixed by the device
/// layout, which the pipeline itself never sees).
std::string pipeline_reuse_key(int n_energies, const SimulationOptions& opt);

/// Deterministic ordered reduction: folds the partials in index order,
/// independent of the schedule that produced them, so the sum is bit-stable
/// across thread counts and batch layouts.
double ordered_sum(const std::vector<double>& partials);

}  // namespace qtx::core
