#pragma once

/// \file assembly.hpp
/// Assembly of the per-energy linear systems (paper §4.3.1, Table 2).
///
/// Electron subsystem:  eM(E) = (E + i eta) S - H - Sigma^R_scatt(E),
/// with S = I in the orthogonal MLWF basis; the retarded OBC blocks are
/// subtracted at the corners, and B≶ = Sigma≶_scatt + Sigma≶_OBC.
///
/// Screened-Coulomb subsystem:  eM_W(w) = I - V P^R(w), B≶_W = V P≶(w) V†,
/// evaluated as block-tridiagonal products whose bandwidth grows to 2 and 3
/// before being truncated back to the r_cut-justified BT pattern (the
/// paper's approach; keeping the products banded is what makes the W
/// assembly GEMM-dominated).

#include <vector>

#include "bsparse/bsparse.hpp"

namespace qtx::core {

using bt::BlockTridiag;
using la::Matrix;

/// eM(E) for the electron system (no OBC corners yet).
BlockTridiag assemble_electron_lhs(double energy, double eta,
                                   const BlockTridiag& h,
                                   const BlockTridiag& sigma_r);

/// eM_W(w) = I - V P^R(w), truncated to BT.
BlockTridiag assemble_w_lhs(const BlockTridiag& v, const BlockTridiag& p_r);

/// B≶_W = V P≶ V†, truncated to BT.
BlockTridiag assemble_w_rhs(const BlockTridiag& v, const BlockTridiag& p);

/// Add an external electrostatic potential: H_ii += phi_i * I per transport
/// cell (gate/source/drain profile of the FET examples).
void apply_cell_potential(BlockTridiag& h, const std::vector<double>& phi);

}  // namespace qtx::core
