#include "core/gw.hpp"

#include "common/flops.hpp"
#include "common/reduction.hpp"

namespace qtx::core {

std::vector<cplx> serialize_sym(const BlockTridiag& x) {
  const int nb = x.num_blocks(), bs = x.block_size();
  std::vector<cplx> out;
  out.reserve(static_cast<size_t>(2 * nb - 1) * bs * bs);
  for (int i = 0; i < nb; ++i) {
    const la::Matrix& d = x.diag(i);
    out.insert(out.end(), d.data(), d.data() + static_cast<size_t>(bs) * bs);
  }
  for (int i = 0; i + 1 < nb; ++i) {
    const la::Matrix& u = x.upper(i);
    out.insert(out.end(), u.data(), u.data() + static_cast<size_t>(bs) * bs);
  }
  return out;
}

namespace {

la::Matrix block_from(const std::vector<cplx>& flat, std::int64_t offset,
                      int bs) {
  la::Matrix m(bs, bs);
  std::copy(flat.begin() + offset,
            flat.begin() + offset + static_cast<std::int64_t>(bs) * bs,
            m.data());
  return m;
}

}  // namespace

BlockTridiag deserialize_lesser(const std::vector<cplx>& flat,
                                const SymLayout& layout) {
  const int nb = layout.nb, bs = layout.bs;
  QTX_CHECK(static_cast<std::int64_t>(flat.size()) == layout.num_elements());
  BlockTridiag out(nb, bs);
  const std::int64_t bsz = static_cast<std::int64_t>(bs) * bs;
  for (int i = 0; i < nb; ++i) out.diag(i) = block_from(flat, i * bsz, bs);
  for (int i = 0; i + 1 < nb; ++i) {
    out.upper(i) = block_from(flat, (nb + i) * bsz, bs);
    out.lower(i) = out.upper(i).dagger() * cplx(-1.0);
  }
  return out;
}

BlockTridiag deserialize_retarded(const std::vector<cplx>& flat_r,
                                  const std::vector<cplx>& flat_jump,
                                  const SymLayout& layout) {
  const int nb = layout.nb, bs = layout.bs;
  QTX_CHECK(static_cast<std::int64_t>(flat_r.size()) ==
            layout.num_elements());
  BlockTridiag out(nb, bs);
  const std::int64_t bsz = static_cast<std::int64_t>(bs) * bs;
  for (int i = 0; i < nb; ++i) out.diag(i) = block_from(flat_r, i * bsz, bs);
  for (int i = 0; i + 1 < nb; ++i) {
    out.upper(i) = block_from(flat_r, (nb + i) * bsz, bs);
    const la::Matrix jump = block_from(flat_jump, (nb + i) * bsz, bs);
    // X^R_ji = conj(X^R_ij) - conj(d_ij), element-wise: as a block,
    // lower = (upper - jump) conjugate-transposed... element (j,i) of the
    // lower block at position (b, a) corresponds to upper-block entry (a, b).
    la::Matrix lower(bs, bs);
    for (int a = 0; a < bs; ++a)
      for (int b = 0; b < bs; ++b)
        lower(b, a) = std::conj(out.upper(i)(a, b)) - std::conj(jump(a, b));
    out.lower(i) = std::move(lower);
  }
  return out;
}

BlockTridiag deserialize_hermitian(const std::vector<cplx>& flat,
                                   const SymLayout& layout) {
  const int nb = layout.nb, bs = layout.bs;
  BlockTridiag out(nb, bs);
  const std::int64_t bsz = static_cast<std::int64_t>(bs) * bs;
  for (int i = 0; i < nb; ++i) {
    out.diag(i) = block_from(flat, i * bsz, bs);
    // Hermitize the diagonal against elementwise roundoff.
    la::Matrix& d = out.diag(i);
    for (int a = 0; a < bs; ++a)
      for (int b = 0; b <= a; ++b) {
        const cplx v = 0.5 * (d(b, a) + std::conj(d(a, b)));
        d(b, a) = v;
        d(a, b) = std::conj(v);
      }
  }
  for (int i = 0; i + 1 < nb; ++i) {
    out.upper(i) = block_from(flat, (nb + i) * bsz, bs);
    out.lower(i) = out.upper(i).dagger();
  }
  return out;
}

void GwEngine::polarization(const std::vector<std::vector<cplx>>& g_lt,
                            const std::vector<std::vector<cplx>>& g_gt,
                            std::vector<std::vector<cplx>>& p_lt,
                            std::vector<std::vector<cplx>>& p_gt,
                            std::vector<std::vector<cplx>>& p_r) {
  const int ne = grid_.n;
  const std::int64_t nk = layout_.num_elements();
  QTX_CHECK(static_cast<int>(g_lt.size()) == ne);
  p_lt.assign(ne, std::vector<cplx>(nk));
  p_gt.assign(ne, std::vector<cplx>(nk));
  p_r.assign(ne, std::vector<cplx>(nk));
  std::vector<cplx> series_lt(ne), series_gt(ne), out_lt, out_gt, out_r;
  for (std::int64_t k = 0; k < nk; ++k) {
    for (int e = 0; e < ne; ++e) {
      series_lt[e] = g_lt[e][k];
      series_gt[e] = g_gt[e][k];
    }
    conv_.polarization(series_lt, series_gt, out_lt, out_gt);
    conv_.retarded_boson(out_lt, out_gt, out_r);
    for (int e = 0; e < ne; ++e) {
      p_lt[e][k] = out_lt[e];
      p_gt[e][k] = out_gt[e];
      p_r[e][k] = out_r[e];
    }
  }
}

void GwEngine::self_energy(const std::vector<std::vector<cplx>>& g_lt,
                           const std::vector<std::vector<cplx>>& g_gt,
                           const std::vector<std::vector<cplx>>& w_lt,
                           const std::vector<std::vector<cplx>>& w_gt,
                           const std::vector<cplx>& v_elements,
                           double fock_scale,
                           std::vector<std::vector<cplx>>& s_lt,
                           std::vector<std::vector<cplx>>& s_gt,
                           std::vector<std::vector<cplx>>& s_r,
                           std::vector<cplx>& s_fock) {
  const int ne = grid_.n;
  const std::int64_t nk = layout_.num_elements();
  QTX_CHECK(static_cast<std::int64_t>(v_elements.size()) == nk);
  s_lt.assign(ne, std::vector<cplx>(nk));
  s_gt.assign(ne, std::vector<cplx>(nk));
  s_r.assign(ne, std::vector<cplx>(nk));
  s_fock.assign(nk, cplx(0.0));
  const cplx fock_pref = kI * grid_.de() / (2.0 * kPi) * fock_scale;
  std::vector<cplx> glt(ne), ggt(ne), wlt(ne), wgt(ne);
  std::vector<cplx> out_lt, out_gt, out_r;
  for (std::int64_t k = 0; k < nk; ++k) {
    for (int e = 0; e < ne; ++e) {
      glt[e] = g_lt[e][k];
      ggt[e] = g_gt[e][k];
      wlt[e] = w_lt[e][k];
      wgt[e] = w_gt[e][k];
    }
    // Fold through the shared ordered reduction (ascending energy index,
    // bit-identical to the historic running sum).
    const cplx gsum = ordered_sum(glt);
    conv_.self_energy(glt, ggt, wlt, wgt, out_lt, out_gt);
    conv_.retarded_fermion(out_lt, out_gt, out_r);
    for (int e = 0; e < ne; ++e) {
      s_lt[e][k] = out_lt[e];
      s_gt[e][k] = out_gt[e];
      s_r[e][k] = out_r[e];
    }
    s_fock[k] = fock_pref * v_elements[k] * gsum;
  }
}

}  // namespace qtx::core
