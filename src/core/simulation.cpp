#include "core/simulation.hpp"

#include <utility>

#include "common/flops.hpp"
#include "common/timer.hpp"
#include "core/distributed.hpp"
#include "obs/trace.hpp"

namespace qtx::core {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kConverged:
      return "converged";
    case StopReason::kBudgetExhausted:
      return "budget-exhausted";
    case StopReason::kNonInteracting:
      return "non-interacting";
    case StopReason::kDiverged:
      return "diverged";
  }
  return "unknown";
}

namespace {

/// Validates before any member construction so the actionable validate()
/// diagnostics fire ahead of deeper invariant checks (e.g. the FFT
/// convolver's grid preconditions).
const SimulationOptions& validated(const SimulationOptions& opt,
                                   int num_cells) {
  opt.validate(num_cells);
  return opt;
}

/// Reuse \p pipeline when compatible with the run (reset to its cold state
/// so the results match a fresh build bit-identically), else build anew.
std::shared_ptr<EnergyPipeline> acquire_pipeline(
    std::shared_ptr<EnergyPipeline> pipeline, const SimulationOptions& opt,
    const StageRegistry& registry) {
  if (pipeline) {
    const std::string mismatch = pipeline->reuse_mismatch(opt.grid.n, opt);
    QTX_CHECK_MSG(mismatch.empty(),
                  "cannot reuse the provided EnergyPipeline: " << mismatch);
    pipeline->reset();
    return pipeline;
  }
  return std::make_shared<EnergyPipeline>(opt.grid.n, opt, registry);
}

// --- shard-exchange wire helpers: bitwise flat (de)serialization ----------

void append_matrix(const la::Matrix& m, std::vector<cplx>& out) {
  out.insert(out.end(), m.data(),
             m.data() + static_cast<std::size_t>(m.rows()) * m.cols());
}

void read_matrix(la::Matrix& m, const std::vector<cplx>& in,
                 std::size_t& pos) {
  const std::size_t n = static_cast<std::size_t>(m.rows()) * m.cols();
  std::copy(in.begin() + static_cast<std::ptrdiff_t>(pos),
            in.begin() + static_cast<std::ptrdiff_t>(pos + n), m.data());
  pos += n;
}

void append_bt(const BlockTridiag& b, std::vector<cplx>& out) {
  for (int i = 0; i < b.num_blocks(); ++i) append_matrix(b.diag(i), out);
  for (int i = 0; i + 1 < b.num_blocks(); ++i) append_matrix(b.upper(i), out);
  for (int i = 0; i + 1 < b.num_blocks(); ++i) append_matrix(b.lower(i), out);
}

void read_bt(BlockTridiag& b, const std::vector<cplx>& in, std::size_t& pos) {
  for (int i = 0; i < b.num_blocks(); ++i) read_matrix(b.diag(i), in, pos);
  for (int i = 0; i + 1 < b.num_blocks(); ++i) read_matrix(b.upper(i), in, pos);
  for (int i = 0; i + 1 < b.num_blocks(); ++i) read_matrix(b.lower(i), in, pos);
}

}  // namespace

void Simulation::distribute_over(par::Comm& comm) {
  QTX_CHECK_MSG(comm.size() <= opt_.grid.n,
                "distribute_over: " << comm.size() << " ranks for only "
                                    << opt_.grid.n << " energy points");
  comm_ = &comm;
}

Simulation::Simulation(const device::Structure& structure,
                       const SimulationOptions& opt,
                       const StageRegistry& registry,
                       std::shared_ptr<EnergyPipeline> pipeline)
    : structure_(structure),
      opt_(validated(opt, structure.num_cells())),
      h_eff_(structure.hamiltonian_bt()),
      v_(structure.coulomb_bt()),
      layout_{structure.num_cells(), structure.block_size()},
      engine_(opt.grid, layout_),
      pipeline_(acquire_pipeline(std::move(pipeline), opt_, registry)),
      mixer_(registry.make_mixer(opt_.resolved_mixer(), opt_)),
      monitor_(opt_.divergence_factor) {
  // Dense-kernel backend: installed process-globally because the la kernels
  // are invoked deep inside the RGF/OBC layers with no options context. The
  // most recently constructed Simulation's choice wins (see options.hpp).
  la::set_active_backend(std::shared_ptr<const la::Backend>(
      registry.make_la(opt_.resolved_la_backend(), opt_)));
  for (const std::string& key : opt_.resolved_channels())
    channels_.push_back(registry.make_channel(key, opt_, layout_));
  for (const auto& ch : channels_)
    needs_w_ = needs_w_ || ch->needs_screened_interaction();
  if (!opt_.cell_potential.empty())
    apply_cell_potential(h_eff_, opt_.cell_potential);
  v_ *= cplx(opt_.gw_scale, 0.0);
  const int ne = opt_.grid.n;
  const int nb = layout_.nb, bs = layout_.bs;
  gr_.assign(ne, BlockTridiag(nb, bs));
  glt_.assign(ne, BlockTridiag(nb, bs));
  ggt_.assign(ne, BlockTridiag(nb, bs));
  wlt_.assign(ne, BlockTridiag(nb, bs));
  wgt_.assign(ne, BlockTridiag(nb, bs));
  sig_lt_.assign(ne, std::vector<cplx>(layout_.num_elements(), cplx(0.0)));
  sig_gt_ = sig_lt_;
  sig_r_ = sig_lt_;
  sig_fock_.assign(layout_.num_elements(), cplx(0.0));
  obc_lt_l_.resize(ne);
  obc_gt_l_.resize(ne);
  obc_lt_r_.resize(ne);
  obc_gt_r_.resize(ne);
  obc_r_l_.resize(ne);
  obc_r_r_.resize(ne);
}

void Simulation::on_iteration(IterationCallback cb) {
  iteration_observers_.push_back(std::move(cb));
}

void Simulation::on_kernel_timing(KernelTimingCallback cb) {
  kernel_observers_.push_back(std::move(cb));
}

BlockTridiag Simulation::sigma_retarded(int e) const {
  std::vector<cplx> jump(layout_.num_elements());
  for (std::int64_t k = 0; k < layout_.num_elements(); ++k)
    jump[k] = sig_gt_[e][k] - sig_lt_[e][k];
  BlockTridiag s = deserialize_retarded(sig_r_[e], jump, layout_);
  const BlockTridiag fock = deserialize_hermitian(sig_fock_, layout_);
  s += fock;
  return s;
}

BlockTridiag Simulation::sigma_lesser(int e) const {
  return deserialize_lesser(sig_lt_[e], layout_);
}

BlockTridiag Simulation::effective_system_matrix(int e) const {
  BlockTridiag m = assemble_electron_lhs(opt_.grid.energy(e), opt_.eta,
                                         h_eff_, sigma_retarded(e));
  m.diag(0) -= obc_r_l_[e];
  m.diag(layout_.nb - 1) -= obc_r_r_[e];
  return m;
}

void Simulation::solve_g() {
  const int nb = layout_.nb;
  // Energy sharding (distribute_over): each rank solves only its owned
  // energies and posts the per-energy state to its peers as it completes,
  // overlapping the exchange with the remaining solves.
  const bool sharded = comm_ != nullptr && comm_->size() > 1;
  const par::BlockDistribution dist{opt_.grid.n,
                                    sharded ? comm_->size() : 1};
  std::unique_ptr<EnergyShardExchange> exchange;
  if (sharded) exchange = std::make_unique<EnergyShardExchange>(*comm_, dist);
  // Assemble -> OBC -> RGF per energy, batches possibly concurrent. Every
  // write lands in this energy's own slot and every solver call uses this
  // batch's private workspace, so the schedule cannot change the result.
  pipeline_->for_each_energy([&](int e, int batch) {
    if (sharded && dist.owner(e) != comm_->rank()) return;
    const double energy = opt_.grid.energy(e);
    BlockTridiag m;
    ElectronObc ob;
    {
      ScopedTimer t("G: OBC");
      FlopPhase f("G: OBC");
      const obs::Span span("G: OBC", obs::SpanKind::kStage,
                           {.iteration = iteration_ + 1, .energy = e,
                            .batch = batch});
      m = assemble_electron_lhs(energy, opt_.eta, h_eff_, sigma_retarded(e));
      ob = electron_obc(m, energy, opt_.contacts, pipeline_->obc(batch), e);
      m.diag(0) -= ob.sigma_r_left;
      m.diag(nb - 1) -= ob.sigma_r_right;
      obc_r_l_[e] = ob.sigma_r_left;
      obc_r_r_[e] = ob.sigma_r_right;
      obc_lt_l_[e] = ob.sigma_l_left;
      obc_gt_l_[e] = ob.sigma_g_left;
      obc_lt_r_[e] = ob.sigma_l_right;
      obc_gt_r_[e] = ob.sigma_g_right;
    }
    {
      ScopedTimer t("G: RGF");
      FlopPhase f("G: RGF");
      const obs::Span span("G: RGF", obs::SpanKind::kStage,
                           {.iteration = iteration_ + 1, .energy = e,
                            .batch = batch});
      BlockTridiag bl = deserialize_lesser(sig_lt_[e], layout_);
      BlockTridiag bg = deserialize_lesser(sig_gt_[e], layout_);
      bl.diag(0) += ob.sigma_l_left;
      bl.diag(nb - 1) += ob.sigma_l_right;
      bg.diag(0) += ob.sigma_g_left;
      bg.diag(nb - 1) += ob.sigma_g_right;
      rgf::SelectedSolution sel = pipeline_->greens(batch).solve(m, bl, bg);
      gr_[e] = std::move(sel.xr);
      glt_[e] = std::move(sel.xl);
      ggt_[e] = std::move(sel.xg);
    }
    if (sharded) {
      std::vector<cplx> payload;
      append_bt(gr_[e], payload);
      append_bt(glt_[e], payload);
      append_bt(ggt_[e], payload);
      append_matrix(obc_r_l_[e], payload);
      append_matrix(obc_r_r_[e], payload);
      append_matrix(obc_lt_l_[e], payload);
      append_matrix(obc_gt_l_[e], payload);
      append_matrix(obc_lt_r_[e], payload);
      append_matrix(obc_gt_r_[e], payload);
      exchange->post(e, payload);
    }
  });
  if (sharded) {
    const int bs = layout_.bs;
    exchange->complete([&](int e, std::vector<cplx> payload) {
      std::size_t pos = 0;
      read_bt(gr_[e], payload, pos);
      read_bt(glt_[e], payload, pos);
      read_bt(ggt_[e], payload, pos);
      obc_r_l_[e] = la::Matrix(bs, bs);
      obc_r_r_[e] = la::Matrix(bs, bs);
      obc_lt_l_[e] = la::Matrix(bs, bs);
      obc_gt_l_[e] = la::Matrix(bs, bs);
      obc_lt_r_[e] = la::Matrix(bs, bs);
      obc_gt_r_[e] = la::Matrix(bs, bs);
      read_matrix(obc_r_l_[e], payload, pos);
      read_matrix(obc_r_r_[e], payload, pos);
      read_matrix(obc_lt_l_[e], payload, pos);
      read_matrix(obc_gt_l_[e], payload, pos);
      read_matrix(obc_lt_r_[e], payload, pos);
      read_matrix(obc_gt_r_[e], payload, pos);
      QTX_CHECK(pos == payload.size());
    });
  }
}

void Simulation::compute_polarization() {
  ScopedTimer t("Other: P-FFT");
  FlopPhase f("Other: P-FFT");
  const obs::Span span("Other: P-FFT", obs::SpanKind::kStage,
                       {.iteration = iteration_ + 1});
  const int ne = opt_.grid.n;
  std::vector<std::vector<cplx>> g_lt(ne), g_gt(ne);
  pipeline_->for_each_energy([&](int e, int) {
    g_lt[e] = serialize_sym(glt_[e]);
    g_gt[e] = serialize_sym(ggt_[e]);
  });
  engine_.polarization(g_lt, g_gt, p_lt_, p_gt_, p_r_);
}

void Simulation::solve_w() {
  const int nb = layout_.nb;
  const bool sharded = comm_ != nullptr && comm_->size() > 1;
  const par::BlockDistribution dist{opt_.grid.n,
                                    sharded ? comm_->size() : 1};
  std::unique_ptr<EnergyShardExchange> exchange;
  if (sharded) exchange = std::make_unique<EnergyShardExchange>(*comm_, dist);
  pipeline_->for_each_energy([&](int w, int batch) {
    if (sharded && dist.owner(w) != comm_->rank()) return;
    BlockTridiag m, bl, bg;
    {
      ScopedTimer t("W: Assembly: LHS");
      FlopPhase f("W: Assembly: LHS");
      const obs::Span span("W: Assembly: LHS", obs::SpanKind::kStage,
                           {.iteration = iteration_ + 1, .energy = w,
                            .batch = batch});
      std::vector<cplx> jump(layout_.num_elements());
      for (std::int64_t k = 0; k < layout_.num_elements(); ++k)
        jump[k] = p_gt_[w][k] - p_lt_[w][k];
      const BlockTridiag p_r = deserialize_retarded(p_r_[w], jump, layout_);
      m = assemble_w_lhs(v_, p_r);
    }
    {
      ScopedTimer t("W: Assembly: RHS");
      FlopPhase f("W: Assembly: RHS");
      const obs::Span span("W: Assembly: RHS", obs::SpanKind::kStage,
                           {.iteration = iteration_ + 1, .energy = w,
                            .batch = batch});
      const BlockTridiag p_lt = deserialize_lesser(p_lt_[w], layout_);
      const BlockTridiag p_gt = deserialize_lesser(p_gt_[w], layout_);
      bl = assemble_w_rhs(v_, p_lt);
      bg = assemble_w_rhs(v_, p_gt);
    }
    const WObc ob = w_obc(m, bl, bg, pipeline_->obc(batch), w);
    m.diag(0) -= ob.br_left;
    m.diag(nb - 1) -= ob.br_right;
    bl.diag(0) += ob.bl_left;
    bl.diag(nb - 1) += ob.bl_right;
    bg.diag(0) += ob.bg_left;
    bg.diag(nb - 1) += ob.bg_right;
    {
      ScopedTimer t("W: RGF");
      FlopPhase f("W: RGF");
      const obs::Span span("W: RGF", obs::SpanKind::kStage,
                           {.iteration = iteration_ + 1, .energy = w,
                            .batch = batch});
      rgf::SelectedSolution sel = pipeline_->greens(batch).solve(m, bl, bg);
      wlt_[w] = std::move(sel.xl);
      wgt_[w] = std::move(sel.xg);
    }
    if (sharded) {
      std::vector<cplx> payload;
      append_bt(wlt_[w], payload);
      append_bt(wgt_[w], payload);
      exchange->post(w, payload);
    }
  });
  if (sharded) {
    exchange->complete([&](int w, std::vector<cplx> payload) {
      std::size_t pos = 0;
      read_bt(wlt_[w], payload, pos);
      read_bt(wgt_[w], payload, pos);
      QTX_CHECK(pos == payload.size());
    });
  }
}

accel::MixOutcome Simulation::compute_sigma_and_mix() {
  const int ne = opt_.grid.n;
  std::vector<std::vector<cplx>> g_lt(ne), g_gt(ne), w_lt, w_gt;
  std::vector<std::vector<cplx>> s_lt, s_gt, s_r;
  std::vector<cplx> s_fock;
  {
    ScopedTimer t("Other: Sigma-FFT");
    FlopPhase f("Other: Sigma-FFT");
    const obs::Span span("Other: Sigma-FFT", obs::SpanKind::kStage,
                         {.iteration = iteration_ + 1});
    pipeline_->for_each_energy([&](int e, int) {
      g_lt[e] = serialize_sym(glt_[e]);
      g_gt[e] = serialize_sym(ggt_[e]);
    });
    s_lt.assign(ne, std::vector<cplx>(layout_.num_elements(), cplx(0.0)));
    s_gt = s_lt;
    s_r = s_lt;
    s_fock.assign(layout_.num_elements(), cplx(0.0));
    const std::vector<cplx> v_flat = serialize_sym(v_);
    SelfEnergyInput in;
    in.grid = &opt_.grid;
    in.layout = &layout_;
    in.g_lesser = &g_lt;
    in.g_greater = &g_gt;
    in.v_elements = &v_flat;
    if (needs_w_) {
      w_lt.resize(ne);
      w_gt.resize(ne);
      pipeline_->for_each_energy([&](int e, int) {
        w_lt[e] = serialize_sym(wlt_[e]);
        w_gt[e] = serialize_sym(wgt_[e]);
      });
      in.w_lesser = &w_lt;
      in.w_greater = &w_gt;
    }
    SelfEnergyAccumulator acc;
    acc.s_lesser = &s_lt;
    acc.s_greater = &s_gt;
    acc.s_retarded = &s_r;
    acc.s_fock = &s_fock;
    for (const auto& ch : channels_) ch->accumulate(in, acc);
  }
  // Mixing and convergence metric on the Sigma< flats, dispatched through
  // the resolved accel::Mixer. The mixer touches per-energy slots only
  // inside the pipeline's energy loop and folds its scalar reductions in
  // ascending energy order, so the metric — and the mixed state — stay
  // bit-stable for every thread count and batch layout (the default
  // "linear" policy reproduces the historic damped update exactly).
  accel::SigmaState state;
  state.lesser = &sig_lt_;
  state.greater = &sig_gt_;
  state.retarded = &sig_r_;
  state.fock = &sig_fock_;
  accel::SigmaProposal proposal;
  proposal.lesser = &s_lt;
  proposal.greater = &s_gt;
  proposal.retarded = &s_r;
  proposal.fock = &s_fock;
  const accel::EnergyLoop loop = [this](const std::function<void(int)>& fn) {
    pipeline_->for_each_energy([&](int e, int) { fn(e); });
  };
  const obs::Span span("mix", obs::SpanKind::kStage,
                       {.iteration = iteration_ + 1});
  return mixer_->mix(state, proposal, loop);
}

IterationResult Simulation::iterate() {
  Stopwatch total;
  const obs::Span span("scba.iteration", obs::SpanKind::kIteration,
                       {.iteration = iteration_ + 1});
  const auto t0 = TimerRegistry::all();
  const auto f0 = FlopLedger::by_phase();
  solve_g();
  if (needs_w_) {
    compute_polarization();
    solve_w();
  }
  if (!channels_.empty()) {
    const accel::MixOutcome mixed = compute_sigma_and_mix();
    last_update_ = mixed.update;
    last_damping_ = mixed.damping;
    monitor_.push(mixed.update);
  } else {
    last_update_ = 0.0;  // ballistic: nothing to update
    last_damping_ = 0.0;
  }
  ++iteration_;
  IterationResult r;
  r.iteration = iteration_;
  r.sigma_update = last_update_;
  r.damping = last_damping_;
  r.residual_ratio = channels_.empty() ? 0.0 : monitor_.ratio();
  r.seconds = total.seconds();
  for (const auto& [name, sec] : TimerRegistry::all()) {
    const auto it = t0.find(name);
    const double before = (it == t0.end()) ? 0.0 : it->second;
    if (sec - before > 0.0) r.kernel_seconds[name] = sec - before;
  }
  for (const auto& [name, fl] : FlopLedger::by_phase()) {
    const auto it = f0.find(name);
    const std::int64_t before = (it == f0.end()) ? 0 : it->second;
    if (fl - before > 0) r.kernel_flops[name] = fl - before;
  }
  for (const auto& cb : kernel_observers_) {
    for (const auto& [name, sec] : r.kernel_seconds) {
      KernelTiming sample;
      sample.kernel = name;
      sample.iteration = r.iteration;
      sample.seconds = sec;
      const auto it = r.kernel_flops.find(name);
      sample.flops = (it == r.kernel_flops.end()) ? 0 : it->second;
      cb(sample);
    }
  }
  return r;
}

TransportResult Simulation::run() {
  TransportResult res;
  Stopwatch total;
  const obs::Span span("simulation.run", obs::SpanKind::kRun);
  const bool interacting = !channels_.empty();
  for (int it = 0; it < opt_.max_iterations; ++it) {
    IterationResult r = iterate();
    if (!interacting) {
      r.stop = StopReason::kNonInteracting;  // ballistic: one pass is exact
      r.converged = true;
    } else if (it > 0 && converged()) {
      r.stop = StopReason::kConverged;
      r.converged = true;
    } else if (monitor_.diverged()) {
      // Residual growth past divergence_factor x the best residual seen:
      // stop with a diagnostic instead of burning the iteration budget.
      r.stop = StopReason::kDiverged;
      r.converged = false;
    } else if (it + 1 == opt_.max_iterations) {
      r.stop = StopReason::kBudgetExhausted;
      r.converged = converged();
    }
    for (const auto& [name, sec] : r.kernel_seconds)
      res.kernel_seconds[name] += sec;
    for (const auto& [name, fl] : r.kernel_flops)
      res.kernel_flops[name] += fl;
    res.history.push_back(r);
    for (const auto& cb : iteration_observers_) cb(res.history.back());
    if (r.stop != StopReason::kNone) break;
  }
  const IterationResult& last = res.history.back();
  res.converged = last.converged;
  // Iterations performed by *this* run (manual iterate() warm-ups are
  // visible through iteration(), not here).
  res.iterations = static_cast<int>(res.history.size());
  res.stop_reason = last.stop;
  res.final_update = last.sigma_update;
  res.total_seconds = total.seconds();
  return res;
}

// ---------------------------------------------------------------------------
// SimulationBuilder
// ---------------------------------------------------------------------------

SimulationBuilder& SimulationBuilder::options(const SimulationOptions& opt) {
  opt_ = opt;
  return *this;
}

SimulationBuilder& SimulationBuilder::grid(double e_min, double e_max,
                                           int n) {
  opt_.grid = EnergyGrid{e_min, e_max, n};
  return *this;
}

SimulationBuilder& SimulationBuilder::grid(const EnergyGrid& g) {
  opt_.grid = g;
  return *this;
}

SimulationBuilder& SimulationBuilder::eta(double value) {
  opt_.eta = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::contacts(double mu_left,
                                               double mu_right,
                                               double temperature_k) {
  opt_.contacts.mu_left = mu_left;
  opt_.contacts.mu_right = mu_right;
  opt_.contacts.temperature_k = temperature_k;
  return *this;
}

SimulationBuilder& SimulationBuilder::mixing(double value) {
  opt_.mixing = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::mixer(std::string key) {
  opt_.mixer = std::move(key);
  return *this;
}

SimulationBuilder& SimulationBuilder::mixing_history(int value) {
  opt_.mixing_history = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::mixing_regularization(double value) {
  opt_.mixing_regularization = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::divergence_factor(double value) {
  opt_.divergence_factor = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::max_iterations(int value) {
  opt_.max_iterations = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::tolerance(double value) {
  opt_.tol = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::gw(double scale, double fock_scale) {
  opt_.gw_scale = scale;
  opt_.fock_scale = fock_scale;
  return *this;
}

SimulationBuilder& SimulationBuilder::ballistic() {
  opt_.gw_scale = 0.0;
  return *this;
}

SimulationBuilder& SimulationBuilder::cell_potential(
    std::vector<double> phi) {
  opt_.cell_potential = std::move(phi);
  return *this;
}

SimulationBuilder& SimulationBuilder::ephonon(const EPhononParams& params) {
  opt_.ephonon = params;
  return *this;
}

SimulationBuilder& SimulationBuilder::num_threads(int value) {
  opt_.num_threads = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::energy_batch(int value) {
  opt_.energy_batch = value;
  return *this;
}

SimulationBuilder& SimulationBuilder::executor(std::string key) {
  opt_.executor = std::move(key);
  return *this;
}

SimulationBuilder& SimulationBuilder::pipeline(
    std::shared_ptr<EnergyPipeline> p) {
  pipeline_ = std::move(p);
  return *this;
}

SimulationBuilder& SimulationBuilder::memoizer(bool enabled) {
  opt_.use_memoizer = enabled;
  return *this;
}

SimulationBuilder& SimulationBuilder::symmetrize(bool enabled) {
  opt_.symmetrize = enabled;
  return *this;
}

SimulationBuilder& SimulationBuilder::obc_backend(std::string key) {
  opt_.obc_backend = std::move(key);
  return *this;
}

SimulationBuilder& SimulationBuilder::greens_backend(std::string key) {
  opt_.greens_backend = std::move(key);
  return *this;
}

SimulationBuilder& SimulationBuilder::la_backend(std::string key) {
  opt_.la_backend = std::move(key);
  return *this;
}

SimulationBuilder& SimulationBuilder::nested_dissection(int partitions,
                                                        int threads) {
  opt_.greens_backend = "nested-dissection";
  opt_.nd_partitions = partitions;
  opt_.nd_threads = threads;
  return *this;
}

SimulationBuilder& SimulationBuilder::self_energy_channels(
    std::vector<std::string> keys) {
  opt_.self_energy_channels = std::move(keys);
  return *this;
}

SimulationBuilder& SimulationBuilder::add_channel(std::string key) {
  if (opt_.self_energy_channels.size() == 1 &&
      opt_.self_energy_channels[0] == kAutoBackend) {
    opt_.self_energy_channels.clear();
  }
  opt_.self_energy_channels.push_back(std::move(key));
  return *this;
}

SimulationBuilder& SimulationBuilder::registry(const StageRegistry& reg) {
  registry_ = &reg;
  return *this;
}

SimulationBuilder& SimulationBuilder::on_iteration(
    Simulation::IterationCallback cb) {
  iteration_observers_.push_back(std::move(cb));
  return *this;
}

SimulationBuilder& SimulationBuilder::on_kernel_timing(
    Simulation::KernelTimingCallback cb) {
  kernel_observers_.push_back(std::move(cb));
  return *this;
}

Simulation SimulationBuilder::build() const {
  // The reuse handle is one-shot (see pipeline()): moving it out keeps two
  // build() calls from wiring both Simulations to one mutable engine.
  Simulation sim(*structure_, opt_,
                 registry_ ? *registry_ : StageRegistry::global(),
                 std::move(pipeline_));
  for (const auto& cb : iteration_observers_) sim.on_iteration(cb);
  for (const auto& cb : kernel_observers_) sim.on_kernel_timing(cb);
  return sim;
}

}  // namespace qtx::core
