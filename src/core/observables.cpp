#include "core/observables.hpp"

#include <algorithm>
#include <cmath>

#include "common/reduction.hpp"

namespace qtx::core {
namespace {

double im_trace(const la::Matrix& m) {
  double s = 0.0;
  for (int i = 0; i < m.rows(); ++i) s += m(i, i).imag();
  return s;
}

}  // namespace

std::vector<double> total_dos(const Simulation& s) {
  const int ne = s.options().grid.n;
  const int nb = s.layout().nb;
  std::vector<double> dos(ne, 0.0);
  for (int e = 0; e < ne; ++e) {
    const auto& gr = s.g_retarded()[e];
    double t = 0.0;
    for (int i = 0; i < nb; ++i) t += im_trace(gr.diag(i));
    dos[e] = -t / kPi;
  }
  return dos;
}

std::vector<std::vector<double>> local_dos(const Simulation& s) {
  const int ne = s.options().grid.n;
  const int nb = s.layout().nb;
  std::vector<std::vector<double>> ldos(nb, std::vector<double>(ne, 0.0));
  for (int e = 0; e < ne; ++e)
    for (int i = 0; i < nb; ++i)
      ldos[i][e] = -im_trace(s.g_retarded()[e].diag(i)) / kPi;
  return ldos;
}

std::vector<double> electron_density(const Simulation& s) {
  const int ne = s.options().grid.n;
  const int nb = s.layout().nb;
  const double pref = s.options().grid.de() / (2.0 * kPi);
  std::vector<double> n(nb, 0.0);
  for (int e = 0; e < ne; ++e)
    for (int i = 0; i < nb; ++i) {
      // -i Tr G<_ii: G< is anti-Hermitian so the trace is purely imaginary.
      n[i] += pref * im_trace(s.g_lesser()[e].diag(i));
    }
  return n;
}

namespace {

double mw_integrand(const la::Matrix& sig_l, const la::Matrix& sig_g,
                    const la::Matrix& g_l, const la::Matrix& g_g) {
  // Tr[Sigma< G> - Sigma> G<], real by the anti-Hermitian structure.
  cplx t = 0.0;
  const int n = sig_l.rows();
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < n; ++k)
      t += sig_l(i, k) * g_g(k, i) - sig_g(i, k) * g_l(k, i);
  return t.real();
}

}  // namespace

std::vector<double> spectral_current_left(const Simulation& s) {
  const int ne = s.options().grid.n;
  std::vector<double> cur(ne, 0.0);
  for (int e = 0; e < ne; ++e)
    cur[e] = mw_integrand(s.obc_lesser_left()[e], s.obc_greater_left()[e],
                          s.g_lesser()[e].diag(0), s.g_greater()[e].diag(0));
  return cur;
}

std::vector<double> spectral_current_right(const Simulation& s) {
  const int ne = s.options().grid.n;
  const int last = s.layout().nb - 1;
  std::vector<double> cur(ne, 0.0);
  for (int e = 0; e < ne; ++e)
    cur[e] =
        mw_integrand(s.obc_lesser_right()[e], s.obc_greater_right()[e],
                     s.g_lesser()[e].diag(last), s.g_greater()[e].diag(last));
  return cur;
}

double terminal_current_left(const Simulation& s) {
  const auto cur = spectral_current_left(s);
  return ordered_sum(cur) * s.options().grid.de() / (2.0 * kPi);
}

double terminal_current_right(const Simulation& s) {
  const auto cur = spectral_current_right(s);
  return ordered_sum(cur) * s.options().grid.de() / (2.0 * kPi);
}

double energy_current_left(const Simulation& s) {
  const auto cur = spectral_current_left(s);
  const auto& grid = s.options().grid;
  std::vector<double> terms(static_cast<std::size_t>(grid.n));
  for (int e = 0; e < grid.n; ++e)
    terms[static_cast<std::size_t>(e)] = grid.energy(e) * cur[e];
  return ordered_sum(terms) * grid.de() / (2.0 * kPi);
}

double energy_current_right(const Simulation& s) {
  const auto cur = spectral_current_right(s);
  const auto& grid = s.options().grid;
  std::vector<double> terms(static_cast<std::size_t>(grid.n));
  for (int e = 0; e < grid.n; ++e)
    terms[static_cast<std::size_t>(e)] = grid.energy(e) * cur[e];
  return ordered_sum(terms) * grid.de() / (2.0 * kPi);
}

std::vector<double> bond_currents(const Simulation& s) {
  // I_{i -> i+1} = (dE/2pi) sum_E 2 Re Tr[H_{i,i+1} G<_{i+1,i}(E)]
  // (continuity-equation derivation; kinetic H carries the coherent
  // current, exact in ballistic runs).
  const int ne = s.options().grid.n;
  const int nb = s.layout().nb;
  const double pref = s.options().grid.de() / (2.0 * kPi);
  const BlockTridiag& h = s.hamiltonian();
  std::vector<double> bonds(nb - 1, 0.0);
  for (int e = 0; e < ne; ++e) {
    for (int i = 0; i + 1 < nb; ++i) {
      cplx t = 0.0;
      const la::Matrix& hu = h.upper(i);
      const la::Matrix& gl = s.g_lesser()[e].lower(i);
      for (int a = 0; a < hu.rows(); ++a)
        for (int k = 0; k < hu.cols(); ++k) t += hu(a, k) * gl(k, a);
      bonds[i] += pref * 2.0 * t.real();
    }
  }
  return bonds;
}

std::vector<double> transmission(const Simulation& s) {
  const int ne = s.options().grid.n;
  const int nb = s.layout().nb;
  std::vector<double> t(ne, 0.0);
  for (int e = 0; e < ne; ++e) {
    const BlockTridiag m = s.effective_system_matrix(e);
    // Corner block G^R_{0, nb-1} from the left-forward factors:
    // G_{i,N-1} = -x_i M_{i,i+1} G_{i+1,N-1}, G_{N-1,N-1} = x_{N-1}.
    std::vector<la::Matrix> x(nb);
    x[0] = la::inverse(m.diag(0));
    for (int i = 1; i < nb; ++i)
      x[i] = la::inverse(m.diag(i) -
                         la::mmm(m.lower(i - 1), x[i - 1], m.upper(i - 1)));
    la::Matrix corner = x[nb - 1];
    for (int i = nb - 2; i >= 0; --i)
      corner = la::mmm(x[i], m.upper(i), corner) * cplx(-1.0);
    // Gamma_L/R recovered from the stored contact injections via
    // Sigma> - Sigma< = -i Gamma.
    la::Matrix gamma_l = s.obc_greater_left()[e] - s.obc_lesser_left()[e];
    gamma_l *= kI;
    la::Matrix gamma_r = s.obc_greater_right()[e] - s.obc_lesser_right()[e];
    gamma_r *= kI;
    const la::Matrix m1 = la::mm(gamma_l, corner);
    const la::Matrix m2 = la::mmh(la::mm(m1, gamma_r), corner);
    double tr = 0.0;
    for (int i = 0; i < m2.rows(); ++i) tr += m2(i, i).real();
    t[e] = tr;
  }
  return t;
}

double landauer_current(const Simulation& s, const std::vector<double>& t) {
  const auto& opt = s.options();
  std::vector<double> terms(static_cast<std::size_t>(opt.grid.n));
  for (int e = 0; e < opt.grid.n; ++e) {
    const double en = opt.grid.energy(e);
    const double fl =
        fermi_dirac(en, opt.contacts.mu_left, opt.contacts.temperature_k);
    const double fr =
        fermi_dirac(en, opt.contacts.mu_right, opt.contacts.temperature_k);
    terms[static_cast<std::size_t>(e)] = t[e] * (fl - fr);
  }
  return ordered_sum(terms) * opt.grid.de() / (2.0 * kPi);
}

BandRenormalization band_renormalization(const Simulation& s, int nk) {
  BandRenormalization out;
  const device::Structure& st = s.structure();
  const int m = st.orbitals_per_puc();
  const int nv = m / 2;
  const int mid_cell = s.layout().nb / 2;
  const auto& grid = s.options().grid;
  out.k.resize(nk);
  out.bare.resize(nk);
  out.corrected.resize(nk);
  double bare_vmax = -1e300, bare_cmin = 1e300;
  double corr_vmax = -1e300, corr_cmin = 1e300;
  for (int ik = 0; ik < nk; ++ik) {
    const double k = -kPi + 2.0 * kPi * ik / (nk - 1);
    out.k[ik] = k;
    const la::Matrix hk = st.bloch_hamiltonian(k);
    const auto bare = la::eig_hermitian(hk);
    out.bare[ik] = bare.values;
    out.corrected[ik].resize(m);
    for (int band = 0; band < m; ++band) {
      // Evaluate Sigma^R at the bare band energy (first-order QP shift).
      const double e_band =
          std::clamp(bare.values[band], grid.e_min, grid.e_max);
      const int ei = static_cast<int>(
          std::round((e_band - grid.e_min) / grid.de()));
      const BlockTridiag sig = s.sigma_retarded(ei);
      // Sigma(k) from the middle transport cell: central-PUC diagonal
      // sub-block plus intra-cell PUC coupling.
      const la::Matrix& blk = sig.diag(mid_cell);
      const la::Matrix s0 = blk.block(0, 0, m, m);
      la::Matrix sk = s0;
      if (st.params().nu > 1) {
        const la::Matrix s1 = blk.block(0, m, m, m);
        const cplx ph(std::cos(k), std::sin(k));
        sk.add_scaled(ph, s1);
        sk.add_scaled(std::conj(ph), s1.dagger());
      }
      // Hermitian (level-shift) part.
      la::Matrix herm(m, m);
      for (int a = 0; a < m; ++a)
        for (int b = 0; b < m; ++b)
          herm(a, b) = 0.5 * (sk(a, b) + std::conj(sk(b, a)));
      const auto qp = la::eig_hermitian(hk + herm);
      out.corrected[ik][band] = qp.values[band];
    }
    bare_vmax = std::max(bare_vmax, out.bare[ik][nv - 1]);
    bare_cmin = std::min(bare_cmin, out.bare[ik][nv]);
    corr_vmax = std::max(corr_vmax, out.corrected[ik][nv - 1]);
    corr_cmin = std::min(corr_cmin, out.corrected[ik][nv]);
  }
  out.bare_gap = bare_cmin - bare_vmax;
  out.corrected_gap = corr_cmin - corr_vmax;
  return out;
}

}  // namespace qtx::core
