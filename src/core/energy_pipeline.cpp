#include "core/energy_pipeline.hpp"

namespace qtx::core {

EnergyPipeline::EnergyPipeline(int n_energies, const SimulationOptions& opt,
                               const StageRegistry& registry)
    : batches_(make_energy_batches(n_energies, opt.energy_batch)) {
  const std::string obc_key = opt.resolved_obc_backend();
  const std::string greens_key = opt.resolved_greens_backend();
  workspaces_.reserve(batches_.size());
  for (std::size_t b = 0; b < batches_.size(); ++b) {
    StageWorkspace ws;
    ws.obc = registry.make_obc(obc_key, opt);
    ws.greens = registry.make_greens(greens_key, opt);
    workspaces_.push_back(std::move(ws));
  }
  executor_ = registry.make_executor(opt.resolved_executor(), opt);
}

void EnergyPipeline::for_each_batch(
    const std::function<void(const EnergyBatch&)>& fn) {
  executor_->for_each_batch(batches_, fn);
}

void EnergyPipeline::for_each_energy(
    const std::function<void(int, int)>& fn) {
  executor_->for_each_batch(batches_, [&fn](const EnergyBatch& b) {
    for (int e = b.begin; e < b.end; ++e) fn(e, b.index);
  });
}

obc::MemoizerStats EnergyPipeline::obc_stats() const {
  obc::MemoizerStats total;
  for (const StageWorkspace& ws : workspaces_) {
    const obc::MemoizerStats& s = ws.obc->stats();
    total.direct_calls += s.direct_calls;
    total.memoized_calls += s.memoized_calls;
    total.fpi_iterations += s.fpi_iterations;
  }
  return total;
}

double ordered_sum(const std::vector<double>& partials) {
  double sum = 0.0;
  for (const double p : partials) sum += p;
  return sum;
}

}  // namespace qtx::core
