#include "core/energy_pipeline.hpp"

#include <sstream>

#include "common/reduction.hpp"
#include "obs/trace.hpp"

namespace qtx::core {

EnergyPipeline::EnergyPipeline(int n_energies, const SimulationOptions& opt,
                               const StageRegistry& registry)
    : batches_(make_energy_batches(n_energies, opt.energy_batch)),
      built_symmetrize_(opt.symmetrize),
      built_nd_partitions_(opt.nd_partitions),
      built_nd_threads_(opt.nd_threads) {
  const std::string obc_key = opt.resolved_obc_backend();
  const std::string greens_key = opt.resolved_greens_backend();
  workspaces_.reserve(batches_.size());
  for (std::size_t b = 0; b < batches_.size(); ++b) {
    StageWorkspace ws;
    ws.obc = registry.make_obc(obc_key, opt);
    ws.greens = registry.make_greens(greens_key, opt);
    workspaces_.push_back(std::move(ws));
  }
  executor_ = registry.make_executor(opt.resolved_executor(), opt);
}

void EnergyPipeline::for_each_batch(
    const std::function<void(const EnergyBatch&)>& fn) {
  // The obs span wraps the batch *inside* the executor, so it lands on the
  // worker thread that actually ran the batch (stage spans nest under it).
  executor_->for_each_batch(batches_, [&fn](const EnergyBatch& b) {
    const obs::Span span("pipeline.batch", obs::SpanKind::kPipeline,
                         {.batch = b.index});
    fn(b);
  });
}

void EnergyPipeline::for_each_energy(
    const std::function<void(int, int)>& fn) {
  for_each_batch([&fn](const EnergyBatch& b) {
    for (int e = b.begin; e < b.end; ++e) fn(e, b.index);
  });
}

obc::MemoizerStats EnergyPipeline::obc_stats() const {
  obc::MemoizerStats total;
  for (const StageWorkspace& ws : workspaces_) {
    const obc::MemoizerStats& s = ws.obc->stats();
    total.direct_calls += s.direct_calls;
    total.memoized_calls += s.memoized_calls;
    total.fpi_iterations += s.fpi_iterations;
  }
  return total;
}

void EnergyPipeline::reset() {
  for (StageWorkspace& ws : workspaces_) ws.obc->reset();
}

std::string EnergyPipeline::reuse_mismatch(
    int n_energies, const SimulationOptions& opt) const {
  std::ostringstream os;
  const std::vector<EnergyBatch> want =
      make_energy_batches(n_energies, opt.energy_batch);
  if (want.size() != batches_.size()) {
    os << "batch layout changed: " << batches_.size() << " batches held vs "
       << want.size() << " required (grid.n or energy_batch differ)";
    return os.str();
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i].begin != batches_[i].begin ||
        want[i].end != batches_[i].end) {
      os << "batch " << i << " spans [" << batches_[i].begin << ", "
         << batches_[i].end << ") but the new run needs [" << want[i].begin
         << ", " << want[i].end << ")";
      return os.str();
    }
  }
  if (!workspaces_.empty()) {
    if (workspaces_[0].obc->name() != opt.resolved_obc_backend()) {
      os << "OBC backend \"" << workspaces_[0].obc->name()
         << "\" held but \"" << opt.resolved_obc_backend() << "\" required";
      return os.str();
    }
    if (workspaces_[0].greens->name() != opt.resolved_greens_backend()) {
      os << "Green's-function backend \"" << workspaces_[0].greens->name()
         << "\" held but \"" << opt.resolved_greens_backend()
         << "\" required";
      return os.str();
    }
  }
  if (executor_->name() != opt.resolved_executor()) {
    os << "executor \"" << executor_->name() << "\" held but \""
       << opt.resolved_executor() << "\" required";
    return os.str();
  }
  if (opt.resolved_executor() == "omp" &&
      executor_->concurrency() != opt.num_threads) {
    os << "executor runs " << executor_->concurrency()
       << " workers but num_threads = " << opt.num_threads << " required";
    return os.str();
  }
  // The held solver instances were constructed from these options; reset()
  // only clears caches, it cannot re-configure them.
  if (built_symmetrize_ != opt.symmetrize) {
    os << "solvers were built with symmetrize = "
       << (built_symmetrize_ ? "true" : "false") << " but "
       << (opt.symmetrize ? "true" : "false") << " required";
    return os.str();
  }
  if (built_nd_partitions_ != opt.nd_partitions ||
      built_nd_threads_ != opt.nd_threads) {
    os << "solvers were built with nd_partitions/nd_threads = "
       << built_nd_partitions_ << "/" << built_nd_threads_ << " but "
       << opt.nd_partitions << "/" << opt.nd_threads << " required";
    return os.str();
  }
  return {};
}

std::string pipeline_reuse_key(int n_energies, const SimulationOptions& opt) {
  // Keyed on the batch *layout* (not the raw energy_batch value): distinct
  // energy_batch settings that clamp to the same sharding are genuinely
  // interchangeable, and reuse_mismatch compares spans, not settings.
  std::ostringstream os;
  os << "batches=";
  for (const EnergyBatch& b : make_energy_batches(n_energies,
                                                  opt.energy_batch))
    os << b.begin << "-" << b.end << ",";
  os << "|obc=" << opt.resolved_obc_backend()
     << "|greens=" << opt.resolved_greens_backend()
     << "|exec=" << opt.resolved_executor();
  // Worker count only constrains reuse under the threaded executor — the
  // same asymmetry reuse_mismatch applies.
  if (opt.resolved_executor() == "omp") os << "x" << opt.num_threads;
  os << "|symmetrize=" << (opt.symmetrize ? 1 : 0)
     << "|nd=" << opt.nd_partitions << "/" << opt.nd_threads;
  return os.str();
}

double ordered_sum(const std::vector<double>& partials) {
  return qtx::ordered_sum(partials);  // one definition: common/reduction.hpp
}

}  // namespace qtx::core
