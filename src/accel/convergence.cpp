#include "accel/convergence.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace qtx::accel {

ConvergenceMonitor::ConvergenceMonitor(double divergence_factor, int window,
                                       double stagnation_tol)
    : divergence_factor_(divergence_factor),
      window_(window),
      stagnation_tol_(stagnation_tol) {
  QTX_CHECK_MSG(divergence_factor >= 0.0,
                "divergence_factor must be >= 0 (0 disables detection), got "
                    << divergence_factor);
  QTX_CHECK_MSG(window >= 2,
                "the monitor window must be >= 2, got " << window);
  QTX_CHECK_MSG(stagnation_tol >= 0.0,
                "stagnation_tol must be >= 0, got " << stagnation_tol);
}

void ConvergenceMonitor::reset() {
  history_.clear();
  best_ = 0.0;
}

void ConvergenceMonitor::push(double residual) {
  best_ = history_.empty() ? residual : std::min(best_, residual);
  history_.push_back(residual);
}

double ConvergenceMonitor::ratio() const {
  const std::size_t n = history_.size();
  if (n < 2 || history_[n - 2] <= 0.0) return 0.0;
  return history_[n - 1] / history_[n - 2];
}

bool ConvergenceMonitor::diverged() const {
  if (divergence_factor_ <= 0.0 || history_.size() < 3) return false;
  const std::size_t n = history_.size();
  return history_[n - 1] > history_[n - 2] &&
         history_[n - 1] > divergence_factor_ * best_;
}

bool ConvergenceMonitor::stagnated() const {
  if (static_cast<int>(history_.size()) < window_) return false;
  const auto begin = history_.end() - window_;
  const double hi = *std::max_element(begin, history_.end());
  const double lo = *std::min_element(begin, history_.end());
  return hi > 0.0 && (hi - lo) <= stagnation_tol_ * hi;
}

double ConvergenceMonitor::oscillation() const {
  const int n = static_cast<int>(history_.size());
  const int span = std::min(n, window_ + 1);
  if (span < 3) return 0.0;
  int flips = 0, pairs = 0;
  for (int i = n - span + 2; i < n; ++i) {
    const double d_prev = history_[i - 1] - history_[i - 2];
    const double d_cur = history_[i] - history_[i - 1];
    ++pairs;
    if ((d_prev > 0.0 && d_cur < 0.0) || (d_prev < 0.0 && d_cur > 0.0))
      ++flips;
  }
  return pairs > 0 ? static_cast<double>(flips) / pairs : 0.0;
}

}  // namespace qtx::accel
