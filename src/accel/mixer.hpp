#pragma once

/// \file mixer.hpp
/// Self-consistency acceleration: pluggable mixers for the SCBA Σ update.
///
/// Every outer SCBA iteration re-runs the full G → P → W → Σ pipeline over
/// all energy points, so cutting the iteration count is the highest-leverage
/// speedup after energy parallelism. The historic driver hard-coded plain
/// linear damping (`sigma += mixing * (proposal - sigma)`); this layer turns
/// that update into a pluggable `Mixer` stage with three builtin policies:
///
///   - `make_linear_mixer`   — the damped fixed-point update, reproduced
///                             bit-identically (the default; golden files
///                             stay unchanged).
///   - `make_anderson_mixer` — Anderson/DIIS acceleration: a regularized
///                             least-squares combination of the residual
///                             history (Pulay mixing), the scheme large-scale
///                             GW codes rely on to stay tractable.
///   - `make_adaptive_mixer` — linear mixing with automatic damping back-off
///                             when the residual grows (and slow recovery
///                             when it shrinks again).
///
/// Determinism contract: a mixer touches the per-energy Σ flats only inside
/// the driver-supplied `EnergyLoop` (one callback per energy slot, each
/// writing its own slot), and folds every scalar reduction from per-energy
/// partials in ascending energy order. Multi-threaded runs are therefore
/// bit-identical to sequential ones — the same guarantee the energy
/// pipeline gives the G/W stages.

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace qtx::accel {

/// The mutable self-energy state a mixer updates in place: per-energy flat
/// element vectors for the lesser/greater/retarded components plus the
/// energy-independent static (Fock) part. `lesser` is mandatory — it
/// carries the convergence metric; the other components may be null when a
/// driver does not materialize them (e.g. the distributed benchmark loop),
/// in which case the mixer skips them.
struct SigmaState {
  std::vector<std::vector<cplx>>* lesser = nullptr;    ///< Σ< (required)
  std::vector<std::vector<cplx>>* greater = nullptr;   ///< Σ> (optional)
  std::vector<std::vector<cplx>>* retarded = nullptr;  ///< Σ^R (optional)
  std::vector<cplx>* fock = nullptr;  ///< static exchange (optional)
};

/// The raw SCBA proposal F(Σ) the channels accumulated this iteration —
/// same shapes as the `SigmaState` it will be mixed into; components that
/// are null in the state must be null here too.
struct SigmaProposal {
  const std::vector<std::vector<cplx>>* lesser = nullptr;    ///< Σ< proposal
  const std::vector<std::vector<cplx>>* greater = nullptr;   ///< Σ> proposal
  const std::vector<std::vector<cplx>>* retarded = nullptr;  ///< Σ^R proposal
  const std::vector<cplx>* fock = nullptr;  ///< static-part proposal
};

/// Driver-supplied energy loop: invokes the callback once per energy slot
/// `e` in `[0, ne)`, possibly concurrently (the Simulation facade forwards
/// its `EnergyPipeline`). Mixers must only write slot `e` from the callback
/// for slot `e` — that is what keeps parallel runs bit-identical.
using EnergyLoop = std::function<void(const std::function<void(int)>&)>;

/// Result of one `Mixer::mix` step.
struct MixOutcome {
  /// Relative residual ||F(Σ<) − Σ<|| / ||F(Σ<)|| measured *before* the
  /// update — the SCBA convergence metric (identical to the historic
  /// driver's `sigma_update`).
  double update = 0.0;
  /// Damping factor the step actually applied (adaptive mixers move it).
  /// Contract: must be > 0 — `IterationResult::damping == 0` is reserved
  /// for "no mixing stage ran" (ballistic), and the result writers key the
  /// presence of the convergence-monitor columns on it.
  double damping = 0.0;
};

/// Configuration shared by the builtin mixers (the core layer maps
/// `SimulationOptions::{mixing, mixing_history, mixing_regularization}`
/// onto this).
struct MixerOptions {
  double damping = 0.5;  ///< base damping factor β, in (0, 1]
  int history = 4;       ///< Anderson residual-history window (≥ 1)
  /// Relative Tikhonov regularization of the Anderson least-squares
  /// system (scaled by the Gram matrix's largest diagonal entry).
  double regularization = 1e-8;
};

/// One self-consistency mixing policy: consumes the per-iteration proposal
/// and updates the Σ state in place. Stateful across iterations (residual
/// histories, adaptive damping) — `reset()` returns it to the
/// freshly-constructed state.
class Mixer {
 public:
  virtual ~Mixer() = default;

  /// Registry key of this policy (e.g. "anderson").
  virtual std::string_view name() const = 0;

  /// Drop all cross-iteration state (histories, adapted damping).
  virtual void reset() = 0;

  /// Number of previous iterates currently held (0 for memory-free
  /// policies; never exceeds `MixerOptions::history` for Anderson).
  virtual int history_size() const { return 0; }

  /// One self-consistency update: measure the relative Σ< residual, then
  /// overwrite \p state with the mixed iterate built from \p proposal (and
  /// any internal history). All per-energy work runs through \p loop; see
  /// the determinism contract in the file header.
  virtual MixOutcome mix(const SigmaState& state,
                         const SigmaProposal& proposal,
                         const EnergyLoop& loop) = 0;
};

/// The damped fixed-point update `x += β (F(x) − x)` — bit-identical to the
/// historic hard-coded driver loop.
std::unique_ptr<Mixer> make_linear_mixer(const MixerOptions& opt);

/// Anderson/DIIS acceleration: keeps a window of previous (iterate,
/// residual) pairs, solves a regularized least-squares problem on the
/// residual differences (via the `la` QR solver), and extrapolates. Falls
/// back to the plain damped step on the first iteration and whenever the
/// small solve is numerically unusable.
std::unique_ptr<Mixer> make_anderson_mixer(const MixerOptions& opt);

/// Linear mixing with automatic damping control: halves the damping when
/// the residual grows (floor 0.01) and recovers it slowly (×1.05, capped at
/// the configured base damping) while the residual shrinks.
std::unique_ptr<Mixer> make_adaptive_mixer(const MixerOptions& opt);

}  // namespace qtx::accel
