#include "accel/mixer.hpp"

#include <cmath>
#include <deque>

#include "common/check.hpp"
#include "common/reduction.hpp"
#include "la/qr.hpp"

namespace qtx::accel {
namespace {

/// The shared deterministic ordered reduction (common/reduction.hpp),
/// under the name the mixing formulas use.
using qtx::ordered_sum;

/// Fail fast on a malformed mix() call: the lesser component is mandatory
/// and every optional component must be present (or absent) in the state
/// and the proposal alike — a mismatch would be a null dereference deep in
/// the parallel energy loop otherwise.
void check_shapes(const SigmaState& state, const SigmaProposal& proposal) {
  QTX_CHECK_MSG(state.lesser != nullptr && proposal.lesser != nullptr,
                "Mixer::mix needs the lesser component in both the state "
                "and the proposal");
  QTX_CHECK_MSG((state.greater == nullptr) == (proposal.greater == nullptr),
                "Mixer::mix: the greater component must be present in the "
                "state and the proposal alike (or absent from both)");
  QTX_CHECK_MSG(
      (state.retarded == nullptr) == (proposal.retarded == nullptr),
      "Mixer::mix: the retarded component must be present in the state and "
      "the proposal alike (or absent from both)");
  QTX_CHECK_MSG((state.fock == nullptr) == (proposal.fock == nullptr),
                "Mixer::mix: the fock component must be present in the "
                "state and the proposal alike (or absent from both)");
}

/// The damped update of one component vector: x += beta * (p - x), written
/// exactly like the historic driver loop so the linear mixer reproduces it
/// bit-identically.
void damped_update(std::vector<cplx>& x, const std::vector<cplx>& p,
                   double beta) {
  const std::size_t n = x.size();
  for (std::size_t k = 0; k < n; ++k) x[k] += beta * (p[k] - x[k]);
}

/// Lesser-component residual metric partials of energy slot e, with the
/// exact floating-point accumulation order of the historic driver loop
/// (delta first, then |delta|^2, then |proposal|^2 per element).
void metric_partials(const std::vector<cplx>& x, const std::vector<cplx>& p,
                     double& d2, double& n2) {
  d2 = 0.0;
  n2 = 0.0;
  const std::size_t n = x.size();
  for (std::size_t k = 0; k < n; ++k) {
    const cplx delta = p[k] - x[k];
    d2 += std::norm(delta);
    n2 += std::norm(p[k]);
  }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

class LinearMixer final : public Mixer {
 public:
  explicit LinearMixer(const MixerOptions& opt) : beta_(opt.damping) {}
  std::string_view name() const override { return "linear"; }
  void reset() override {}

  MixOutcome mix(const SigmaState& state, const SigmaProposal& proposal,
                 const EnergyLoop& loop) override {
    check_shapes(state, proposal);
    const int ne = static_cast<int>(state.lesser->size());
    std::vector<double> diff2(ne, 0.0), norm2(ne, 0.0);
    const double alpha = beta_;
    loop([&](int e) {
      std::vector<cplx>& xl = (*state.lesser)[e];
      const std::vector<cplx>& pl = (*proposal.lesser)[e];
      double d2 = 0.0, n2 = 0.0;
      // One fused pass, replicating the historic driver's operation order
      // (metric accumulation interleaved with the three component updates).
      const std::size_t nk = xl.size();
      std::vector<cplx>* xg = state.greater ? &(*state.greater)[e] : nullptr;
      std::vector<cplx>* xr = state.retarded ? &(*state.retarded)[e]
                                             : nullptr;
      const std::vector<cplx>* pg =
          proposal.greater ? &(*proposal.greater)[e] : nullptr;
      const std::vector<cplx>* pr =
          proposal.retarded ? &(*proposal.retarded)[e] : nullptr;
      for (std::size_t k = 0; k < nk; ++k) {
        const cplx delta = pl[k] - xl[k];
        d2 += std::norm(delta);
        n2 += std::norm(pl[k]);
        xl[k] += alpha * delta;
        if (xg) (*xg)[k] += alpha * ((*pg)[k] - (*xg)[k]);
        if (xr) (*xr)[k] += alpha * ((*pr)[k] - (*xr)[k]);
      }
      diff2[e] = d2;
      norm2[e] = n2;
    });
    if (state.fock) damped_update(*state.fock, *proposal.fock, alpha);
    const double dsum = ordered_sum(diff2), nsum = ordered_sum(norm2);
    MixOutcome out;
    out.update = (nsum > 0.0) ? std::sqrt(dsum / nsum) : 0.0;
    out.damping = alpha;
    return out;
  }

 private:
  double beta_;
};

// ---------------------------------------------------------------------------
// Anderson / DIIS
// ---------------------------------------------------------------------------

/// Snapshot of one iterate: the state x_k and its residual r_k = F(x_k) -
/// x_k, per component (empty vectors for components the driver does not
/// carry).
struct HistoryEntry {
  std::vector<std::vector<cplx>> x_lt, r_lt;
  std::vector<std::vector<cplx>> x_gt, r_gt;
  std::vector<std::vector<cplx>> x_r, r_r;
  std::vector<cplx> x_f, r_f;
};

class AndersonMixer final : public Mixer {
 public:
  explicit AndersonMixer(const MixerOptions& opt) : opt_(opt) {
    QTX_CHECK_MSG(opt.history >= 1,
                  "the Anderson mixer needs a history window >= 1, got "
                      << opt.history);
  }
  std::string_view name() const override { return "anderson"; }
  void reset() override {
    hist_.clear();
    prev_update_ = -1.0;
    best_ = -1.0;
  }
  int history_size() const override { return static_cast<int>(hist_.size()); }

  MixOutcome mix(const SigmaState& state, const SigmaProposal& proposal,
                 const EnergyLoop& loop) override {
    check_shapes(state, proposal);
    const int ne = static_cast<int>(state.lesser->size());
    // A shape change (new run geometry, or a different set of carried
    // components) invalidates the stored history — every axis the
    // extrapolation indexes along must match, or stale entries would be
    // dereferenced out of bounds.
    if (!hist_.empty()) {
      const HistoryEntry& h = hist_.back();
      const bool same_shape =
          static_cast<int>(h.x_lt.size()) == ne &&
          (ne == 0 || h.x_lt[0].size() == (*state.lesser)[0].size()) &&
          h.x_gt.empty() == (state.greater == nullptr) &&
          h.x_r.empty() == (state.retarded == nullptr) &&
          h.x_f.size() == (state.fock ? state.fock->size() : 0);
      if (!same_shape) hist_.clear();
    }

    // --- pass 1: snapshot (x_k, r_k) and the metric partials -------------
    HistoryEntry cur;
    cur.x_lt.resize(ne);
    cur.r_lt.resize(ne);
    if (state.greater) {
      cur.x_gt.resize(ne);
      cur.r_gt.resize(ne);
    }
    if (state.retarded) {
      cur.x_r.resize(ne);
      cur.r_r.resize(ne);
    }
    std::vector<double> diff2(ne, 0.0), norm2(ne, 0.0);
    loop([&](int e) {
      metric_partials((*state.lesser)[e], (*proposal.lesser)[e], diff2[e],
                      norm2[e]);
      snapshot((*state.lesser)[e], (*proposal.lesser)[e], cur.x_lt[e],
               cur.r_lt[e]);
      if (state.greater)
        snapshot((*state.greater)[e], (*proposal.greater)[e], cur.x_gt[e],
                 cur.r_gt[e]);
      if (state.retarded)
        snapshot((*state.retarded)[e], (*proposal.retarded)[e], cur.x_r[e],
                 cur.r_r[e]);
    });
    if (state.fock) snapshot(*state.fock, *proposal.fock, cur.x_f, cur.r_f);
    const double dsum = ordered_sum(diff2), nsum = ordered_sum(norm2);
    MixOutcome out;
    out.update = (nsum > 0.0) ? std::sqrt(dsum / nsum) : 0.0;
    out.damping = opt_.damping;

    // Safeguard: a residual that grew substantially — versus the previous
    // step (overshoot) or versus the best residual since the last restart
    // (slow creep) — means the extrapolation left the contraction basin.
    // Restart the history so this step falls back to the plain damped
    // update (the standard Anderson restart heuristic; without it AA can
    // cycle on strongly nonlinear SCBA maps). Mild growth is tolerated:
    // SCBA residuals plateau and wiggle, and restarting on every uptick
    // degrades AA to plain damping.
    const bool overshoot =
        prev_update_ >= 0.0 && out.update > kRestartGrowth * prev_update_;
    const bool creep =
        best_ >= 0.0 && out.update > kRestartGrowth * best_;
    if (overshoot || creep) {
      hist_.clear();
      best_ = -1.0;
    }
    best_ = (best_ < 0.0) ? out.update : std::min(best_, out.update);
    prev_update_ = out.update;

    // --- pass 2: least-squares coefficients on the residual history ------
    // With m stored iterates plus the current one there are m residual
    // differences dr_j = r_{j+1} - r_j; gamma solves the regularized normal
    // equations (G + lambda I) gamma = <dr_j, r_cur> built from ordered
    // per-energy partials, so the coefficients are schedule-independent.
    const int m = static_cast<int>(hist_.size());
    std::vector<double> gamma;
    if (m > 0) gamma = solve_gamma(cur, ne, loop);

    // --- pass 3: extrapolate -------------------------------------------
    // x_new = x_k + beta r_k - sum_j gamma_j (dx_j + beta dr_j); with an
    // empty history the sum vanishes and this is exactly the damped step.
    const double beta = opt_.damping;
    loop([&](int e) {
      apply_component(e, state.lesser, cur.x_lt, cur.r_lt,
                      [](const HistoryEntry& h) { return &h.x_lt; },
                      [](const HistoryEntry& h) { return &h.r_lt; }, gamma,
                      beta);
      if (state.greater)
        apply_component(e, state.greater, cur.x_gt, cur.r_gt,
                        [](const HistoryEntry& h) { return &h.x_gt; },
                        [](const HistoryEntry& h) { return &h.r_gt; }, gamma,
                        beta);
      if (state.retarded)
        apply_component(e, state.retarded, cur.x_r, cur.r_r,
                        [](const HistoryEntry& h) { return &h.x_r; },
                        [](const HistoryEntry& h) { return &h.r_r; }, gamma,
                        beta);
    });
    if (state.fock) apply_fock(state, cur, gamma, beta);

    hist_.push_back(std::move(cur));
    while (static_cast<int>(hist_.size()) > opt_.history) hist_.pop_front();
    return out;
  }

 private:
  static void snapshot(const std::vector<cplx>& x, const std::vector<cplx>& p,
                       std::vector<cplx>& x_out, std::vector<cplx>& r_out) {
    const std::size_t n = x.size();
    x_out = x;
    r_out.resize(n);
    for (std::size_t k = 0; k < n; ++k) r_out[k] = p[k] - x[k];
  }

  /// Re<a1 - a2, b1 - b2> accumulated in element order, without
  /// materializing the difference vectors.
  static double dot_diff_re(const std::vector<cplx>& a1,
                            const std::vector<cplx>& a2,
                            const std::vector<cplx>& b1,
                            const std::vector<cplx>& b2) {
    double s = 0.0;
    const std::size_t n = a1.size();
    for (std::size_t k = 0; k < n; ++k) {
      const cplx da = a1[k] - a2[k];
      const cplx db = b1[k] - b2[k];
      s += da.real() * db.real() + da.imag() * db.imag();
    }
    return s;
  }

  /// Re<a1 - a2, b> accumulated in element order.
  static double dot_diff_plain_re(const std::vector<cplx>& a1,
                                  const std::vector<cplx>& a2,
                                  const std::vector<cplx>& b) {
    double s = 0.0;
    const std::size_t n = a1.size();
    for (std::size_t k = 0; k < n; ++k) {
      const cplx da = a1[k] - a2[k];
      s += da.real() * b[k].real() + da.imag() * b[k].imag();
    }
    return s;
  }

  /// Gram matrix + right-hand side of the Anderson least squares on the
  /// lesser-component residual differences (the component the convergence
  /// metric is defined on; the other components are extrapolated with the
  /// same coefficients), then the regularized solve via the la QR solver.
  /// Returns an empty vector when the solve is unusable (falls back to the
  /// plain damped step).
  std::vector<double> solve_gamma(const HistoryEntry& cur, int ne,
                                  const EnergyLoop& loop) {
    const int m = static_cast<int>(hist_.size());
    // Residual sequence r_0 .. r_m with r_m = cur; difference j spans
    // (j, j+1). Per-energy partials of every Gram entry and rhs component,
    // folded in ascending energy order.
    const auto res = [&](int j) -> const std::vector<std::vector<cplx>>& {
      return (j < m) ? hist_[j].r_lt : cur.r_lt;
    };
    std::vector<std::vector<double>> gram_part(
        static_cast<std::size_t>(m) * m, std::vector<double>(ne, 0.0));
    std::vector<std::vector<double>> rhs_part(m,
                                              std::vector<double>(ne, 0.0));
    loop([&](int e) {
      for (int j = 0; j < m; ++j) {
        rhs_part[j][e] =
            dot_diff_plain_re(res(j + 1)[e], res(j)[e], cur.r_lt[e]);
        for (int l = j; l < m; ++l) {
          gram_part[j * m + l][e] = dot_diff_re(res(j + 1)[e], res(j)[e],
                                                res(l + 1)[e], res(l)[e]);
        }
      }
    });
    la::Matrix a(m, m);
    la::Matrix b(m, 1);
    double max_diag = 0.0;
    for (int j = 0; j < m; ++j) {
      b(j, 0) = ordered_sum(rhs_part[j]);
      for (int l = j; l < m; ++l) {
        const double g = ordered_sum(gram_part[j * m + l]);
        a(j, l) = g;
        a(l, j) = g;
      }
      max_diag = std::max(max_diag, a(j, j).real());
    }
    if (!(max_diag > 0.0)) return {};  // degenerate history: damped step
    const double lambda = opt_.regularization * max_diag;
    for (int j = 0; j < m; ++j) a(j, j) += lambda;
    const la::Matrix g = la::qr_least_squares(a, b);
    std::vector<double> gamma(m);
    double l1 = 0.0;
    for (int j = 0; j < m; ++j) {
      gamma[j] = g(j, 0).real();
      if (!std::isfinite(gamma[j])) return {};  // unusable: damped step
      l1 += std::abs(gamma[j]);
    }
    // Far from the fixed point the secant model is poor and unconstrained
    // coefficients over-extrapolate (the classic early-AA blow-up); scale
    // them back to a trust region instead of trusting the model.
    if (l1 > kGammaCap)
      for (double& gj : gamma) gj *= kGammaCap / l1;
    return gamma;
  }

  /// The extrapolation kernel shared by every component:
  /// out[k] = x[k] + beta r[k]
  ///          - sum_j gamma_j ((x_next_j[k] - x_j[k]) + beta (r_next_j[k]
  ///          - r_j[k])),
  /// over pre-resolved per-history pointer spans so the per-element loop
  /// is free of deque lookups.
  static void extrapolate(std::size_t nk, const cplx* x, const cplx* r,
                          const std::vector<const cplx*>& xj,
                          const std::vector<const cplx*>& rj,
                          const std::vector<const cplx*>& x_next,
                          const std::vector<const cplx*>& r_next,
                          const std::vector<double>& gamma, double beta,
                          cplx* out) {
    const int m = static_cast<int>(gamma.size());
    for (std::size_t k = 0; k < nk; ++k) {
      cplx corr(0.0);
      for (int j = 0; j < m; ++j) {
        corr += gamma[j] * ((x_next[j][k] - xj[j][k]) +
                            beta * (r_next[j][k] - rj[j][k]));
      }
      out[k] = x[k] + beta * r[k] - corr;
    }
  }

  /// Extrapolate one component's energy slot e.
  template <class GetX, class GetR>
  void apply_component(int e, std::vector<std::vector<cplx>>* target,
                       const std::vector<std::vector<cplx>>& x_cur,
                       const std::vector<std::vector<cplx>>& r_cur,
                       const GetX& get_x, const GetR& get_r,
                       const std::vector<double>& gamma, double beta) {
    std::vector<cplx>& out = (*target)[e];
    const std::vector<cplx>& x = x_cur[e];
    const std::vector<cplx>& r = r_cur[e];
    const int m = static_cast<int>(gamma.size());
    std::vector<const cplx*> xj(m), rj(m), x_next(m), r_next(m);
    for (int j = 0; j < m; ++j) {
      xj[j] = (*get_x(hist_[j]))[e].data();
      rj[j] = (*get_r(hist_[j]))[e].data();
      x_next[j] = (j + 1 < m) ? (*get_x(hist_[j + 1]))[e].data() : x.data();
      r_next[j] = (j + 1 < m) ? (*get_r(hist_[j + 1]))[e].data() : r.data();
    }
    extrapolate(out.size(), x.data(), r.data(), xj, rj, x_next, r_next,
                gamma, beta, out.data());
  }

  /// The fock component is energy-independent; extrapolate it sequentially
  /// with the same coefficients.
  void apply_fock(const SigmaState& state, const HistoryEntry& cur,
                  const std::vector<double>& gamma, double beta) {
    std::vector<cplx>& out = *state.fock;
    const int m = static_cast<int>(gamma.size());
    std::vector<const cplx*> xj(m), rj(m), x_next(m), r_next(m);
    for (int j = 0; j < m; ++j) {
      xj[j] = hist_[j].x_f.data();
      rj[j] = hist_[j].r_f.data();
      x_next[j] = (j + 1 < m) ? hist_[j + 1].x_f.data() : cur.x_f.data();
      r_next[j] = (j + 1 < m) ? hist_[j + 1].r_f.data() : cur.r_f.data();
    }
    extrapolate(out.size(), cur.x_f.data(), cur.r_f.data(), xj, rj, x_next,
                r_next, gamma, beta, out.data());
  }

  /// Residual growth ratio beyond which the history restarts.
  static constexpr double kRestartGrowth = 1.5;
  /// Trust region on the l1 norm of the extrapolation coefficients.
  static constexpr double kGammaCap = 2.0;
  MixerOptions opt_;
  std::deque<HistoryEntry> hist_;
  double prev_update_ = -1.0;  ///< restart-safeguard memory
  double best_ = -1.0;         ///< best residual since the last restart
};

// ---------------------------------------------------------------------------
// Adaptive damping
// ---------------------------------------------------------------------------

class AdaptiveMixer final : public Mixer {
 public:
  explicit AdaptiveMixer(const MixerOptions& opt)
      : base_(opt.damping), alpha_(opt.damping) {}
  std::string_view name() const override { return "adaptive"; }
  void reset() override {
    alpha_ = base_;
    prev_update_ = -1.0;
  }

  MixOutcome mix(const SigmaState& state, const SigmaProposal& proposal,
                 const EnergyLoop& loop) override {
    check_shapes(state, proposal);
    const int ne = static_cast<int>(state.lesser->size());
    // Pass 1: measure the residual before deciding this step's damping.
    std::vector<double> diff2(ne, 0.0), norm2(ne, 0.0);
    loop([&](int e) {
      metric_partials((*state.lesser)[e], (*proposal.lesser)[e], diff2[e],
                      norm2[e]);
    });
    const double dsum = ordered_sum(diff2), nsum = ordered_sum(norm2);
    const double update = (nsum > 0.0) ? std::sqrt(dsum / nsum) : 0.0;
    if (prev_update_ >= 0.0) {
      // The band keeps a flat (plateaued) residual from reading as growth
      // through floating-point wiggle — only real growth backs off.
      if (update > kGrowthBand * prev_update_) {
        alpha_ = std::max(0.5 * alpha_, kFloor);  // residual grew: back off
      } else {
        alpha_ = std::min(1.05 * alpha_, base_);  // shrinking: recover
      }
    }
    prev_update_ = update;
    // Pass 2: the damped update at the adapted factor.
    const double alpha = alpha_;
    loop([&](int e) {
      damped_update((*state.lesser)[e], (*proposal.lesser)[e], alpha);
      if (state.greater)
        damped_update((*state.greater)[e], (*proposal.greater)[e], alpha);
      if (state.retarded)
        damped_update((*state.retarded)[e], (*proposal.retarded)[e], alpha);
    });
    if (state.fock) damped_update(*state.fock, *proposal.fock, alpha);
    MixOutcome out;
    out.update = update;
    out.damping = alpha;
    return out;
  }

 private:
  static constexpr double kFloor = 0.01;
  static constexpr double kGrowthBand = 1.001;
  double base_;
  double alpha_;
  double prev_update_ = -1.0;
};

}  // namespace

std::unique_ptr<Mixer> make_linear_mixer(const MixerOptions& opt) {
  return std::make_unique<LinearMixer>(opt);
}

std::unique_ptr<Mixer> make_anderson_mixer(const MixerOptions& opt) {
  return std::make_unique<AndersonMixer>(opt);
}

std::unique_ptr<Mixer> make_adaptive_mixer(const MixerOptions& opt) {
  return std::make_unique<AdaptiveMixer>(opt);
}

}  // namespace qtx::accel
