#pragma once

/// \file convergence.hpp
/// Convergence monitoring for the SCBA loop: residual history, divergence
/// and stagnation detection, and an oscillation metric. The `Simulation`
/// driver feeds every iteration's relative Σ< update into a
/// `ConvergenceMonitor` and stops with `StopReason::kDiverged` when the
/// monitor flags divergence — a diagnostic instead of a silently burned
/// iteration budget.

#include <vector>

namespace qtx::accel {

/// Residual-history analyzer of one self-consistency run. Push one relative
/// residual per iteration; query divergence/stagnation/oscillation at any
/// point. All queries are O(window) and allocation-free.
class ConvergenceMonitor {
 public:
  /// \p divergence_factor flags divergence once the latest residual both
  /// grew versus the previous iteration and exceeds `factor x` the best
  /// residual seen (0 disables detection). \p window is the look-back span
  /// of the stagnation and oscillation queries; \p stagnation_tol the
  /// relative residual spread below which the loop counts as stagnated.
  explicit ConvergenceMonitor(double divergence_factor = 10.0,
                              int window = 4, double stagnation_tol = 0.02);

  /// Drop all recorded history (start of a new run).
  void reset();

  /// Record one iteration's relative residual (in push order).
  void push(double residual);

  /// Number of residuals recorded so far.
  int size() const { return static_cast<int>(history_.size()); }
  /// The most recent residual (0 when empty).
  double last() const { return history_.empty() ? 0.0 : history_.back(); }
  /// The smallest residual seen so far (0 when empty).
  double best() const { return history_.empty() ? 0.0 : best_; }
  /// Growth ratio last/previous (0 with fewer than two residuals or a zero
  /// previous residual) — the per-iteration `residual_ratio` diagnostic.
  double ratio() const;

  /// True when the run is diverging: at least three residuals recorded,
  /// the latest grew versus the previous one, and it exceeds
  /// `divergence_factor x best()`. Always false when the factor is 0.
  bool diverged() const;

  /// True when the last `window` residuals are all within
  /// `stagnation_tol` relative spread of each other (the loop is neither
  /// converging nor diverging).
  bool stagnated() const;

  /// Fraction of direction flips among consecutive residual differences in
  /// the look-back window, in [0, 1]: 0 for monotone behaviour, 1 for a
  /// perfect two-cycle. Returns 0 with fewer than three residuals.
  double oscillation() const;

  /// Every residual pushed so far, in iteration order.
  const std::vector<double>& history() const { return history_; }

 private:
  double divergence_factor_;
  int window_;
  double stagnation_tol_;
  std::vector<double> history_;
  double best_ = 0.0;
};

}  // namespace qtx::accel
