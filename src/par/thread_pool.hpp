#pragma once

/// \file thread_pool.hpp
/// Work-stealing thread pool — the shared-memory substrate of the parallel
/// energy pipeline (core/energy_pipeline.hpp). The paper's sustained-exascale
/// claim rests on the embarrassing parallelism of the energy grid: every SCBA
/// iteration solves independent Green's-function/OBC problems per energy
/// point. This pool schedules those per-batch solves onto worker threads.
///
/// Design: every worker owns a deque. `parallel_for` pushes contiguous index
/// ranges onto the workers round-robin; a worker drains its own deque from
/// the front (preserving the submission order for cache locality) and steals
/// from the back of a victim's deque when it runs dry, so ragged per-task
/// costs (e.g. memoized vs direct OBC solves) rebalance automatically.
///
/// Exceptions thrown by tasks cancel the remaining tasks of the same
/// parallel_for and are rethrown (first one wins) on the calling thread, so
/// QTX_CHECK diagnostics fired inside a worker surface exactly like in the
/// sequential loop.

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qtx::par {

class ThreadPool {
 public:
  /// Spawns \p num_threads workers (must be >= 1). The workers idle on a
  /// condition variable between parallel_for calls.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Run fn(i) for every i in [0, n), distributed over the workers; blocks
  /// until all n tasks finished. The calling thread only waits (the pool's
  /// size is the concurrency). Reentrant calls from inside a task are not
  /// supported. If any task throws, the remaining tasks of this call are
  /// skipped and the first exception is rethrown here.
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static int hardware_threads();

 private:
  struct Job;

  struct Task {
    Job* job = nullptr;
    int index = 0;
  };

  /// One deque per worker, individually locked (contention is rare: a worker
  /// only touches a foreign deque when stealing).
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(int self);
  bool find_task(int self, Task& out);
  static void execute(const Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Wake-up channel: queued_ counts tasks sitting in deques (not yet
  // popped); workers sleep only while it is zero and stop_ is false.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  long queued_ = 0;
  bool stop_ = false;
};

}  // namespace qtx::par
