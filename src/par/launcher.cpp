#include "par/launcher.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"
#include "par/comm_socket.hpp"

namespace qtx::par {

namespace {

struct Child {
  pid_t pid = -1;
  int err_fd = -1;  ///< read end of this child's error pipe
  bool exited = false;
  int status = 0;  ///< raw waitpid status once exited
  bool killed_by_us = false;
};

/// Drain a pipe to EOF (the child has exited and every write end is closed,
/// so EOF is guaranteed).
std::string read_all(int fd) {
  std::string out;
  char buf[512];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return out;
}

void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n > 0) {
      data += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // best effort: the diagnostic is advisory
  }
}

}  // namespace

LaunchReport launch_ranks(int ranks, double timeout_s,
                          const std::function<void(Comm&)>& fn) {
  QTX_CHECK(ranks >= 1);
  QTX_CHECK(timeout_s > 0.0);

  auto mesh = make_socket_mesh(ranks);
  std::vector<std::array<int, 2>> err_pipes(static_cast<std::size_t>(ranks));
  for (auto& pfd : err_pipes) {
    if (::pipe(pfd.data()) != 0)
      throw std::runtime_error(std::string("launch_ranks: pipe: ") +
                               std::strerror(errno));
  }

  // Don't let buffered stdio get duplicated into every child.
  std::fflush(nullptr);

  std::vector<Child> children(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int fork_errno = errno;
      for (int q = 0; q < r; ++q) ::kill(children[q].pid, SIGKILL);
      for (int q = 0; q < r; ++q) ::waitpid(children[q].pid, nullptr, 0);
      throw std::runtime_error(std::string("launch_ranks: fork: ") +
                               std::strerror(fork_errno));
    }
    if (pid == 0) {
      // ----- child: rank r -----
      for (int other = 0; other < ranks; ++other) {
        if (other == r) continue;
        for (int fd : mesh[static_cast<std::size_t>(other)])
          if (fd >= 0) ::close(fd);
      }
      for (int q = 0; q < ranks; ++q) {
        ::close(err_pipes[static_cast<std::size_t>(q)][0]);
        if (q != r) ::close(err_pipes[static_cast<std::size_t>(q)][1]);
      }
      const int err_fd = err_pipes[static_cast<std::size_t>(r)][1];
      int status = 0;
      try {
        SocketComm comm(r, ranks, std::move(mesh[static_cast<std::size_t>(r)]));
        fn(comm);
      } catch (const std::exception& ex) {
        write_all(err_fd, ex.what(), std::strlen(ex.what()));
        status = 1;
      } catch (...) {
        const char msg[] = "unknown exception";
        write_all(err_fd, msg, sizeof(msg) - 1);
        status = 1;
      }
      ::close(err_fd);
      // _exit, not exit: skip atexit handlers / stdio flushes inherited
      // from the parent (also keeps LSan's atexit pass out of children).
      ::_exit(status);
    }
    children[static_cast<std::size_t>(r)].pid = pid;
    children[static_cast<std::size_t>(r)].err_fd =
        err_pipes[static_cast<std::size_t>(r)][0];
  }

  // ----- parent: supervise -----
  for (auto& row : mesh)
    for (int fd : row)
      if (fd >= 0) ::close(fd);
  for (auto& pfd : err_pipes) ::close(pfd[1]);

  const Stopwatch elapsed;
  LaunchReport report;
  int alive = ranks;
  bool tearing_down = false;
  while (alive > 0) {
    bool progressed = false;
    for (int r = 0; r < ranks; ++r) {
      Child& c = children[static_cast<std::size_t>(r)];
      if (c.exited) continue;
      int status = 0;
      const pid_t w = ::waitpid(c.pid, &status, WNOHANG);
      if (w != c.pid) continue;
      c.exited = true;
      c.status = status;
      --alive;
      progressed = true;
      const bool failed = !(WIFEXITED(status) && WEXITSTATUS(status) == 0);
      if (failed && !c.killed_by_us) {
        report.failed_ranks.push_back(r);
        if (report.exit_code == 0)
          report.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
        tearing_down = true;
      }
    }
    if (alive > 0 && !report.timed_out && elapsed.seconds() >= timeout_s) {
      report.timed_out = true;
      if (report.exit_code == 0) report.exit_code = 1;
      tearing_down = true;
    }
    if (tearing_down) {
      for (auto& c : children) {
        if (!c.exited && !c.killed_by_us) {
          c.killed_by_us = true;
          ::kill(c.pid, SIGKILL);
        }
      }
    }
    if (alive > 0 && !progressed)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Every child is reaped; collect per-rank diagnostics.
  std::ostringstream os;
  for (int r = 0; r < ranks; ++r) {
    Child& c = children[static_cast<std::size_t>(r)];
    const std::string msg = read_all(c.err_fd);
    ::close(c.err_fd);
    if (std::find(report.failed_ranks.begin(), report.failed_ranks.end(), r) ==
        report.failed_ranks.end())
      continue;
    os << " [rank " << r << "] ";
    if (!msg.empty())
      os << msg;
    else if (WIFSIGNALED(c.status))
      os << "killed by signal " << WTERMSIG(c.status);
    else if (WIFEXITED(c.status))
      os << "exit code " << WEXITSTATUS(c.status);
    else
      os << "abnormal termination";
  }
  if (!report.failed_ranks.empty()) {
    std::ostringstream head;
    head << report.failed_ranks.size()
         << (report.failed_ranks.size() == 1 ? " rank failed:"
                                             : " ranks failed:");
    report.diagnostic = head.str() + os.str();
  }
  if (report.timed_out) {
    std::ostringstream tail;
    if (!report.diagnostic.empty()) tail << report.diagnostic << "; ";
    tail << "timed out after " << timeout_s
         << " s; remaining workers were killed";
    report.diagnostic = tail.str();
  }
  return report;
}

}  // namespace qtx::par
