#pragma once

/// \file comm_socket.hpp
/// Socket-backed transport: ranks exchange length-prefixed frames over
/// AF_UNIX socket pairs — the multi-process member of the pluggable comm
/// family (registry key "socket"). The same `SocketComm` wire protocol
/// serves two world shapes:
///  - `SocketWorld` runs ranks as threads over a real socket mesh, so the
///    collective contract suite (and TSan/ASan) exercises the framing,
///    flow control, and byte accounting in-process;
///  - `par::launch_ranks` (par/launcher.hpp) forks the ranks into worker
///    *processes* over an identical pre-fork mesh — the deployment shape
///    behind `qtx run --ranks N`.
///
/// Wire format: every frame is a 16-byte header — {u64 type, u64 count} in
/// native byte order (both ends live on one host) — followed by `count`
/// complex payload values. Type 0 carries data, type 1 a barrier token.
/// Sockets are non-blocking; each peer keeps an outbox of pending frame
/// bytes flushed by a poll()-driven progress engine, so send() never blocks
/// (posted exchanges genuinely overlap compute) and recv() makes progress
/// on every channel while it waits.

#include <cstdint>
#include <deque>
#include <vector>

#include "par/comm.hpp"

namespace qtx::par {

/// Full socket-pair mesh for \p size ranks: result[r][p] is rank r's fd
/// towards peer p (-1 for r == p). Every fd is non-blocking and
/// close-on-exec. The caller owns the fds (SocketComm adopts one rank's
/// row; launch_ranks closes the foreign rows in each child).
std::vector<std::vector<int>> make_socket_mesh(int size);

/// One rank's handle into a socket mesh. Owns its row of fds (closed on
/// destruction). Not thread-safe: one rank drives its comm from one thread
/// at a time (or serializes access externally, as the shard exchange does).
class SocketComm final : public Comm {
 public:
  /// \p fds is this rank's mesh row (fds[rank] ignored); adopted.
  SocketComm(int rank, int size, std::vector<int> fds);
  ~SocketComm() override;

  SocketComm(const SocketComm&) = delete;
  SocketComm& operator=(const SocketComm&) = delete;

  int rank() const override { return rank_; }
  int size() const override { return size_; }

  /// Message barrier through rank 0: every other rank posts a token to 0
  /// and waits for the release token; rank 0 collects size-1 tokens, then
  /// releases everyone.
  void barrier() override;

  void send(int dst, std::vector<cplx> data) override;
  std::vector<cplx> recv(int src) override;

  std::int64_t bytes_sent() const override { return bytes_sent_; }

 private:
  struct Peer {
    int fd = -1;
    bool hung_up = false;  ///< peer closed its end (process died / finished)
    std::vector<unsigned char> outbox;  ///< pending frame bytes
    std::size_t outbox_pos = 0;         ///< flushed prefix of outbox
    std::vector<unsigned char> inbuf;   ///< partial incoming frame bytes
    std::deque<std::vector<cplx>> inbox;  ///< parsed data payloads, in order
    int barrier_tokens = 0;             ///< parsed barrier frames
  };

  void enqueue_frame(Peer& p, std::uint64_t type, const cplx* payload,
                     std::uint64_t count);
  void flush(Peer& p);        ///< non-blocking write of the pending outbox
  void drain_input(Peer& p);  ///< non-blocking read + frame parsing
  /// One engine step: poll every live peer, flush writable outboxes, parse
  /// readable frames. \p wait blocks until at least one channel moves.
  void progress(bool wait);
  void wait_barrier_token(int src);
  [[noreturn]] void throw_peer_dead(int peer, const char* while_doing) const;

  int rank_;
  int size_;
  std::vector<Peer> peers_;
  std::int64_t bytes_sent_ = 0;
};

/// Socket-transport world: ranks as threads over a fresh AF_UNIX mesh per
/// run() call. Registered as comm backend "socket"; the in-process twin of
/// the forked `launch_ranks` deployment, sharing SocketComm verbatim.
class SocketWorld final : public CommGroup {
 public:
  explicit SocketWorld(int size);

  int size() const override { return size_; }
  void run(const std::function<void(Comm&)>& fn) override;
  std::int64_t total_bytes_sent() const override;
  void reset_byte_counter() override;

 private:
  int size_;
  std::vector<std::int64_t> bytes_sent_;  ///< per-rank, summed across runs
};

}  // namespace qtx::par
