#pragma once

/// \file distribution.hpp
/// Energy-grid distribution and the energy<->element data transposition of
/// paper Fig. 3. During the solver stages each rank owns all selected matrix
/// elements for a contiguous slice of energy points; the convolution stages
/// (P-FFT, Sigma-FFT) need all energies of a slice of elements instead. The
/// Transposer performs the all-to-all repacking between the two layouts —
/// the communication step whose volume the §5.2 symmetry exploitation
/// halves.

#include <cstdint>
#include <vector>

#include "par/comm.hpp"

namespace qtx::par {

/// Contiguous block distribution of \c total items over \c parts ranks
/// (remainder spread over the leading ranks).
struct BlockDistribution {
  std::int64_t total = 0;
  int parts = 1;

  std::int64_t count(int r) const {
    const std::int64_t base = total / parts, extra = total % parts;
    return base + (r < extra ? 1 : 0);
  }
  std::int64_t offset(int r) const {
    const std::int64_t base = total / parts, extra = total % parts;
    return base * r + std::min<std::int64_t>(r, extra);
  }
  int owner(std::int64_t index) const {
    for (int r = 0; r < parts; ++r)
      if (index < offset(r) + count(r)) return r;
    return parts - 1;
  }
};

/// Wire precision of the transposition payloads. kFp32 implements the
/// paper's §8 outlook ("the data ... communicated to the energy convolutions
/// can potentially be reduced by ... lower-precision schemes"): halves the
/// volume at the cost of single-precision rounding of the exchanged
/// selected elements.
enum class WirePrecision { kFp64, kFp32 };

/// Lossy round-trip helpers for the compressed wire format (exposed for
/// tests): two complex<float> packed per complex<double> slot.
std::vector<cplx> compress_fp32(const std::vector<cplx>& data);
std::vector<cplx> decompress_fp32(const std::vector<cplx>& packed,
                                  std::int64_t count);

/// Repacks between:
///  - energy layout:  [e_local * n_elements + k]       (solver stages)
///  - element layout: [k_local * n_energy + e]         (FFT stages)
class Transposer {
 public:
  Transposer(int n_energy, std::int64_t n_elements, int comm_size,
             WirePrecision precision = WirePrecision::kFp64)
      : energies_{n_energy, comm_size},
        elements_{n_elements, comm_size},
        precision_(precision) {}

  const BlockDistribution& energies() const { return energies_; }
  const BlockDistribution& elements() const { return elements_; }
  WirePrecision precision() const { return precision_; }

  std::vector<cplx> to_element_layout(Comm& comm,
                                      const std::vector<cplx>& energy_data);
  std::vector<cplx> to_energy_layout(Comm& comm,
                                     const std::vector<cplx>& element_data);

 private:
  /// All-to-all with optional wire compression.
  std::vector<std::vector<cplx>> exchange(
      Comm& comm, std::vector<std::vector<cplx>> send) const;

  BlockDistribution energies_;
  BlockDistribution elements_;
  WirePrecision precision_;
};

}  // namespace qtx::par
