#pragma once

/// \file comm.hpp
/// Communicator abstraction — the reproduction's substitute for MPI/NCCL/RCCL
/// across GPU nodes (paper §5.1, §7.2). A `Comm` is one rank's handle into a
/// transport; the collective set mirrors what QuaTrEx uses: barrier,
/// broadcast, allgather, all-to-all (the energy<->element transposition),
/// and reductions. The collectives are *non-virtual* base-class algorithms
/// over the transport's point-to-point primitives, so every transport moves
/// the same bytes in the same order — the bit-identity guarantee does not
/// depend on which backend carries the frames.
///
/// Transports form a pluggable family (registered as the "comm" kind of
/// `core::StageRegistry`, selected by the `comm_backend` option):
///  - `CommWorld` (this header) runs ranks as threads in one process, with
///    two in-process backends reproducing the paper's *CCL vs "host MPI"
///    distinction (Fig. 6): kDeviceDirect moves payload buffers by pointer
///    hand-off (the zero-copy device-to-device path of NCCL/RCCL), while
///    kHostStaged copies every payload through an intermediate staging
///    buffer on both sides (the copy-to-host path of host MPI), paying the
///    extra memory-bandwidth cost that separates the two curves in Fig. 6.
///  - `SocketWorld` (par/comm_socket.hpp) moves length-prefixed frames over
///    AF_UNIX socket pairs — the same wire transport `par::launch_ranks`
///    (par/launcher.hpp) uses for real multi-process runs.
/// Every rank counts the bytes it sends, so benchmarks can report
/// communication volume (the §5.2 symmetry ablation halves it).

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace qtx::par {

enum class Backend {
  kDeviceDirect,  ///< zero-copy hand-off (*CCL analogue)
  kHostStaged,    ///< staged copies through a host buffer (host-MPI analogue)
};

/// Per-rank communicator handle passed to the function run on each rank.
/// Transports implement the point-to-point primitives (send/recv/barrier);
/// the collectives below are final base-class algorithms over them, so the
/// byte ordering — and therefore the ordered-reduction bit-identity — is
/// the same on every transport.
class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Block until every rank of the group has entered the barrier.
  virtual void barrier() = 0;

  /// Point-to-point: blocking send/recv of complex payloads. Messages from
  /// one src to one dst are delivered in send order; empty payloads are
  /// valid messages.
  virtual void send(int dst, std::vector<cplx> data) = 0;
  virtual std::vector<cplx> recv(int src) = 0;

  /// Bytes this rank has sent since construction (or the group's last
  /// reset_byte_counter()).
  virtual std::int64_t bytes_sent() const = 0;

  /// Root's data replaces everyone's.
  void broadcast(std::vector<cplx>& data, int root);

  /// Concatenation of every rank's vector, ordered by rank.
  std::vector<cplx> allgather(const std::vector<cplx>& mine);

  /// send[r] goes to rank r; returns what every rank sent to me (recv[r]
  /// from rank r). The collective behind the energy<->element transposition.
  std::vector<std::vector<cplx>> alltoall(std::vector<std::vector<cplx>> send);

  /// Ordered rank-index fold (common/reduction.hpp), bit-identical on every
  /// transport.
  double allreduce_sum(double v);
  double allreduce_max(double v);
};

namespace detail {

/// Shared rethrow policy of every CommGroup::run implementation: nothing
/// pending is a no-op; exactly one failed rank rethrows the original
/// exception unchanged; multiple failures throw one std::runtime_error
/// whose message names *every* failed rank with its diagnostic (a single
/// rank's error must not mask the others — see test_par's regression).
void rethrow_rank_failures(const std::vector<std::exception_ptr>& errors);

}  // namespace detail

/// A group of ranks sharing one transport. Construct once, then run() a
/// function on every rank concurrently (or sequentially for size == 1).
/// This is the factory product of the registry's "comm" kind.
class CommGroup {
 public:
  virtual ~CommGroup() = default;

  virtual int size() const = 0;

  /// Execute \p fn(comm) on every rank, each on its own thread. Blocks
  /// until all ranks return. Rank failures are aggregated per
  /// detail::rethrow_rank_failures.
  virtual void run(const std::function<void(Comm&)>& fn) = 0;

  /// Total bytes sent across all ranks since construction/reset.
  virtual std::int64_t total_bytes_sent() const = 0;
  virtual void reset_byte_counter() = 0;
};

class MailboxComm;

/// In-process transport: ranks are threads sharing mutex/condition-variable
/// mailboxes. The historic (and default) transport — tests and the Fig. 6
/// CCL-vs-host-MPI curves are pinned to its two backends.
class CommWorld final : public CommGroup {
 public:
  explicit CommWorld(int size, Backend backend = Backend::kDeviceDirect);

  int size() const override { return size_; }
  Backend backend() const { return backend_; }

  void run(const std::function<void(Comm&)>& fn) override;

  std::int64_t total_bytes_sent() const override;
  void reset_byte_counter() override;

 private:
  friend class MailboxComm;

  struct Message {
    std::vector<cplx> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::queue<Message> queue;
  };

  Mailbox& mailbox(int src, int dst) {
    return *mailboxes_[static_cast<size_t>(src) * size_ + dst];
  }

  void barrier_wait();

  int size_;
  Backend backend_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // Reusable two-phase barrier.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  int barrier_generation_ = 0;
  std::vector<std::int64_t> bytes_sent_;
};

}  // namespace qtx::par
