#pragma once

/// \file comm.hpp
/// In-process communicator — the reproduction's substitute for MPI/NCCL/RCCL
/// across GPU nodes (paper §5.1, §7.2). Ranks are threads sharing a
/// CommWorld; the collective set mirrors what QuaTrEx uses: barrier,
/// broadcast, allgather, all-to-all (the energy<->element transposition),
/// and reductions.
///
/// Two backends reproduce the paper's *CCL vs "host MPI" distinction
/// (Fig. 6):
///  - kDeviceDirect moves payload buffers by pointer hand-off (the zero-copy
///    device-to-device path of NCCL/RCCL);
///  - kHostStaged copies every payload through an intermediate staging
///    buffer on both sides (the copy-to-host path of host MPI), paying the
///    extra memory-bandwidth cost that separates the two curves in Fig. 6.
/// Every rank counts the bytes it sends, so benchmarks can report
/// communication volume (the §5.2 symmetry ablation halves it).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace qtx::par {

enum class Backend {
  kDeviceDirect,  ///< zero-copy hand-off (*CCL analogue)
  kHostStaged,    ///< staged copies through a host buffer (host-MPI analogue)
};

class Comm;

/// Shared state for a group of ranks. Construct once, then run() a function
/// on every rank concurrently (or sequentially for size == 1).
class CommWorld {
 public:
  explicit CommWorld(int size, Backend backend = Backend::kDeviceDirect);

  int size() const { return size_; }
  Backend backend() const { return backend_; }

  /// Execute \p fn(comm) on every rank, each on its own thread. Blocks until
  /// all ranks return. Exceptions on any rank are rethrown on the caller.
  void run(const std::function<void(Comm&)>& fn);

  /// Total bytes sent across all ranks since construction/reset.
  std::int64_t total_bytes_sent() const;
  void reset_byte_counter();

 private:
  friend class Comm;

  struct Message {
    std::vector<cplx> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::queue<Message> queue;
  };

  Mailbox& mailbox(int src, int dst) {
    return *mailboxes_[static_cast<size_t>(src) * size_ + dst];
  }

  void barrier_wait();

  int size_;
  Backend backend_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // Reusable two-phase barrier.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  int barrier_generation_ = 0;
  std::vector<std::int64_t> bytes_sent_;
};

/// Per-rank handle passed to the function run on each rank.
class Comm {
 public:
  Comm(CommWorld& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size(); }
  Backend backend() const { return world_->backend(); }

  void barrier() { world_->barrier_wait(); }

  /// Point-to-point: blocking send/recv of complex payloads.
  void send(int dst, std::vector<cplx> data);
  std::vector<cplx> recv(int src);

  /// Root's data replaces everyone's.
  void broadcast(std::vector<cplx>& data, int root);

  /// Concatenation of every rank's vector, ordered by rank.
  std::vector<cplx> allgather(const std::vector<cplx>& mine);

  /// send[r] goes to rank r; returns what every rank sent to me (recv[r]
  /// from rank r). The collective behind the energy<->element transposition.
  std::vector<std::vector<cplx>> alltoall(std::vector<std::vector<cplx>> send);

  double allreduce_sum(double v);
  double allreduce_max(double v);

  std::int64_t bytes_sent() const;

 private:
  CommWorld* world_;
  int rank_;
};

}  // namespace qtx::par
