#include "par/comm_socket.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace qtx::par {

namespace {

constexpr std::uint64_t kFrameData = 0;
constexpr std::uint64_t kFrameBarrier = 1;
constexpr std::size_t kHeaderBytes = 16;

void set_nonblocking_cloexec(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  QTX_CHECK(fl >= 0 && ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) == 0);
  const int fd_fl = ::fcntl(fd, F_GETFD, 0);
  QTX_CHECK(fd_fl >= 0 && ::fcntl(fd, F_SETFD, fd_fl | FD_CLOEXEC) == 0);
}

}  // namespace

std::vector<std::vector<int>> make_socket_mesh(int size) {
  QTX_CHECK(size >= 1);
  std::vector<std::vector<int>> mesh(size, std::vector<int>(size, -1));
  for (int i = 0; i < size; ++i) {
    for (int j = i + 1; j < size; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        throw std::runtime_error(std::string("comm(socket): socketpair: ") +
                                 std::strerror(errno));
      set_nonblocking_cloexec(sv[0]);
      set_nonblocking_cloexec(sv[1]);
      mesh[i][j] = sv[0];
      mesh[j][i] = sv[1];
    }
  }
  return mesh;
}

// ---------------------------------------------------------------------------
// SocketComm
// ---------------------------------------------------------------------------

SocketComm::SocketComm(int rank, int size, std::vector<int> fds)
    : rank_(rank), size_(size), peers_(size) {
  QTX_CHECK(rank >= 0 && rank < size);
  QTX_CHECK(static_cast<int>(fds.size()) == size);
  for (int p = 0; p < size; ++p) {
    if (p == rank) continue;
    QTX_CHECK(fds[p] >= 0);
    peers_[p].fd = fds[p];
  }
}

SocketComm::~SocketComm() {
  for (auto& p : peers_)
    if (p.fd >= 0) ::close(p.fd);
}

void SocketComm::enqueue_frame(Peer& p, std::uint64_t type, const cplx* payload,
                               std::uint64_t count) {
  if (p.fd < 0) return;  // channel already gone; error surfaces on a wait
  unsigned char header[kHeaderBytes];
  std::memcpy(header, &type, sizeof(type));
  std::memcpy(header + sizeof(type), &count, sizeof(count));
  p.outbox.insert(p.outbox.end(), header, header + kHeaderBytes);
  if (count > 0) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(payload);
    p.outbox.insert(p.outbox.end(), bytes, bytes + count * sizeof(cplx));
  }
}

void SocketComm::flush(Peer& p) {
  while (p.fd >= 0 && p.outbox_pos < p.outbox.size()) {
    const ssize_t n = ::send(p.fd, p.outbox.data() + p.outbox_pos,
                             p.outbox.size() - p.outbox_pos, MSG_NOSIGNAL);
    if (n > 0) {
      p.outbox_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET: the peer is gone. Drop the channel silently; the
    // failure is reported when (and only when) someone waits on this peer.
    p.hung_up = true;
    ::close(p.fd);
    p.fd = -1;
  }
  if (p.outbox_pos == p.outbox.size() || p.fd < 0) {
    p.outbox.clear();
    p.outbox_pos = 0;
  }
}

void SocketComm::drain_input(Peer& p) {
  if (p.fd < 0) return;
  unsigned char buf[65536];
  while (p.fd >= 0) {
    const ssize_t n = ::recv(p.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      p.inbuf.insert(p.inbuf.end(), buf, buf + n);
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // n == 0 (EOF) or a hard error: peer closed its end.
    p.hung_up = true;
    ::close(p.fd);
    p.fd = -1;
  }
  // Parse every complete frame accumulated so far.
  std::size_t pos = 0;
  while (p.inbuf.size() - pos >= kHeaderBytes) {
    std::uint64_t type = 0;
    std::uint64_t count = 0;
    std::memcpy(&type, p.inbuf.data() + pos, sizeof(type));
    std::memcpy(&count, p.inbuf.data() + pos + sizeof(type), sizeof(count));
    const std::size_t payload_bytes =
        static_cast<std::size_t>(count) * sizeof(cplx);
    if (p.inbuf.size() - pos - kHeaderBytes < payload_bytes) break;
    if (type == kFrameBarrier) {
      ++p.barrier_tokens;
    } else {
      std::vector<cplx> payload(static_cast<std::size_t>(count));
      if (count > 0)
        std::memcpy(payload.data(), p.inbuf.data() + pos + kHeaderBytes,
                    payload_bytes);
      p.inbox.push_back(std::move(payload));
    }
    pos += kHeaderBytes + payload_bytes;
  }
  if (pos > 0)
    p.inbuf.erase(p.inbuf.begin(),
                  p.inbuf.begin() + static_cast<std::ptrdiff_t>(pos));
}

void SocketComm::progress(bool wait) {
  std::vector<pollfd> pfds;
  std::vector<int> ranks;
  pfds.reserve(peers_.size());
  ranks.reserve(peers_.size());
  for (int p = 0; p < size_; ++p) {
    if (p == rank_ || peers_[p].fd < 0) continue;
    short events = POLLIN;
    if (peers_[p].outbox_pos < peers_[p].outbox.size()) events |= POLLOUT;
    pfds.push_back(pollfd{peers_[p].fd, events, 0});
    ranks.push_back(p);
  }
  if (pfds.empty()) return;
  int rc = 0;
  do {
    rc = ::poll(pfds.data(), pfds.size(), wait ? -1 : 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0)
    throw std::runtime_error(std::string("comm(socket): poll: ") +
                             std::strerror(errno));
  for (std::size_t k = 0; k < pfds.size(); ++k) {
    Peer& p = peers_[static_cast<std::size_t>(ranks[k])];
    if (pfds[k].revents & POLLOUT) flush(p);
    if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) drain_input(p);
  }
}

void SocketComm::throw_peer_dead(int peer, const char* while_doing) const {
  std::ostringstream os;
  os << "comm(socket): rank " << rank_ << " lost connection while "
     << while_doing << " rank " << peer
     << " (peer process exited or was killed)";
  throw std::runtime_error(os.str());
}

void SocketComm::send(int dst, std::vector<cplx> data) {
  QTX_CHECK(dst >= 0 && dst < size_);
  bytes_sent_ += static_cast<std::int64_t>(data.size()) * sizeof(cplx);
  if (dst == rank_) {
    // Self-sends bypass the wire, matching the mailbox transport.
    peers_[static_cast<std::size_t>(dst)].inbox.push_back(std::move(data));
    return;
  }
  Peer& p = peers_[static_cast<std::size_t>(dst)];
  enqueue_frame(p, kFrameData, data.data(), data.size());
  flush(p);
  // Opportunistically drain incoming frames so peers never stall on full
  // kernel buffers while this rank is in a long send-only stretch.
  progress(false);
}

std::vector<cplx> SocketComm::recv(int src) {
  QTX_CHECK(src >= 0 && src < size_);
  Peer& p = peers_[static_cast<std::size_t>(src)];
  if (src == rank_)
    QTX_CHECK_MSG(!p.inbox.empty(), "comm(socket): recv from self with no "
                                    "pending self-send");
  while (p.inbox.empty()) {
    if (p.hung_up) throw_peer_dead(src, "receiving from");
    progress(/*wait=*/true);
  }
  std::vector<cplx> data = std::move(p.inbox.front());
  p.inbox.pop_front();
  return data;
}

void SocketComm::wait_barrier_token(int src) {
  Peer& p = peers_[static_cast<std::size_t>(src)];
  while (p.barrier_tokens == 0) {
    if (p.hung_up) throw_peer_dead(src, "waiting at a barrier for");
    progress(/*wait=*/true);
  }
  --p.barrier_tokens;
}

void SocketComm::barrier() {
  if (size_ == 1) return;
  if (rank_ == 0) {
    for (int r = 1; r < size_; ++r) wait_barrier_token(r);
    for (int r = 1; r < size_; ++r) {
      Peer& p = peers_[static_cast<std::size_t>(r)];
      enqueue_frame(p, kFrameBarrier, nullptr, 0);
      flush(p);
    }
  } else {
    Peer& root = peers_[0];
    enqueue_frame(root, kFrameBarrier, nullptr, 0);
    flush(root);
    wait_barrier_token(0);
  }
}

// ---------------------------------------------------------------------------
// SocketWorld
// ---------------------------------------------------------------------------

SocketWorld::SocketWorld(int size) : size_(size), bytes_sent_(size, 0) {
  QTX_CHECK(size >= 1);
}

void SocketWorld::run(const std::function<void(Comm&)>& fn) {
  auto mesh = make_socket_mesh(size_);
  if (size_ == 1) {
    SocketComm c(0, 1, std::move(mesh[0]));
    fn(c);
    bytes_sent_[0] += c.bytes_sent();
    return;
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      SocketComm c(r, size_, std::move(mesh[static_cast<std::size_t>(r)]));
      try {
        fn(c);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
      // Account bytes even for failed ranks, mirroring CommWorld's slots.
      bytes_sent_[static_cast<std::size_t>(r)] += c.bytes_sent();
    });
  }
  for (auto& t : threads) t.join();
  detail::rethrow_rank_failures(errors);
}

std::int64_t SocketWorld::total_bytes_sent() const {
  std::int64_t sum = 0;
  // qtx-lint: allow(raw-accumulate) — exact integer byte counters;
  // associativity holds bit-for-bit at any fold order.
  for (const auto b : bytes_sent_) sum += b;
  return sum;
}

void SocketWorld::reset_byte_counter() {
  for (auto& b : bytes_sent_) b = 0;
}

}  // namespace qtx::par
