#include "par/comm.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/reduction.hpp"

namespace qtx::par {

// ---------------------------------------------------------------------------
// Base-class collectives: shared algorithms over the transport's
// point-to-point primitives. Byte ordering is identical for every transport.
// ---------------------------------------------------------------------------

void Comm::broadcast(std::vector<cplx>& data, int root) {
  if (size() == 1) return;
  if (rank() == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, data);
  } else {
    data = recv(root);
  }
}

std::vector<cplx> Comm::allgather(const std::vector<cplx>& mine) {
  if (size() == 1) return mine;
  for (int r = 0; r < size(); ++r)
    if (r != rank()) send(r, mine);
  // Collect in rank order; sizes may differ per rank.
  std::vector<std::vector<cplx>> parts(size());
  parts[rank()] = mine;
  for (int r = 0; r < size(); ++r)
    if (r != rank()) parts[r] = recv(r);
  std::vector<cplx> out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

std::vector<std::vector<cplx>> Comm::alltoall(
    std::vector<std::vector<cplx>> send_bufs) {
  QTX_CHECK(static_cast<int>(send_bufs.size()) == size());
  std::vector<std::vector<cplx>> recv_bufs(size());
  recv_bufs[rank()] = std::move(send_bufs[rank()]);
  for (int r = 0; r < size(); ++r)
    if (r != rank()) send(r, std::move(send_bufs[r]));
  for (int r = 0; r < size(); ++r)
    if (r != rank()) recv_bufs[r] = recv(r);
  return recv_bufs;
}

double Comm::allreduce_sum(double v) {
  std::vector<cplx> mine = {cplx(v, 0.0)};
  const std::vector<cplx> all = allgather(mine);
  // allgather returns in rank order, so the fold is rank-deterministic.
  return ordered_sum_real(all);
}

double Comm::allreduce_max(double v) {
  std::vector<cplx> mine = {cplx(v, 0.0)};
  const std::vector<cplx> all = allgather(mine);
  double s = all.front().real();
  for (const auto& x : all) s = std::max(s, x.real());
  return s;
}

namespace detail {

void rethrow_rank_failures(const std::vector<std::exception_ptr>& errors) {
  int failed = 0;
  for (const auto& e : errors)
    if (e) ++failed;
  if (failed == 0) return;
  if (failed == 1) {
    // One failing rank: rethrow its exception unchanged so callers keep
    // catching the original type.
    for (const auto& e : errors)
      if (e) std::rethrow_exception(e);
  }
  // Multiple failures: one diagnostic naming every failed rank — a single
  // rank's error must not mask the others.
  std::ostringstream os;
  os << failed << " ranks failed:";
  for (std::size_t r = 0; r < errors.size(); ++r) {
    if (!errors[r]) continue;
    os << " [rank " << r << "] ";
    try {
      std::rethrow_exception(errors[r]);
    } catch (const std::exception& ex) {
      os << ex.what();
    } catch (...) {
      os << "unknown exception";
    }
  }
  throw std::runtime_error(os.str());
}

}  // namespace detail

// ---------------------------------------------------------------------------
// CommWorld: the in-process mailbox transport
// ---------------------------------------------------------------------------

/// Per-rank handle into a CommWorld: mutex/CV mailbox point-to-point with
/// the kDeviceDirect / kHostStaged copy semantics.
class MailboxComm final : public Comm {
 public:
  MailboxComm(CommWorld& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return world_->size(); }

  void barrier() override { world_->barrier_wait(); }

  void send(int dst, std::vector<cplx> data) override;
  std::vector<cplx> recv(int src) override;

  std::int64_t bytes_sent() const override {
    return world_->bytes_sent_[rank_];
  }

 private:
  CommWorld* world_;
  int rank_;
};

CommWorld::CommWorld(int size, Backend backend)
    : size_(size), backend_(backend), bytes_sent_(size, 0) {
  QTX_CHECK(size >= 1);
  mailboxes_.resize(static_cast<size_t>(size) * size);
  for (auto& m : mailboxes_) m = std::make_unique<Mailbox>();
}

void CommWorld::run(const std::function<void(Comm&)>& fn) {
  if (size_ == 1) {
    MailboxComm c(*this, 0);
    fn(c);
    return;
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(size_);
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      try {
        MailboxComm c(*this, r);
        fn(c);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  detail::rethrow_rank_failures(errors);
}

std::int64_t CommWorld::total_bytes_sent() const {
  std::int64_t sum = 0;
  // qtx-lint: allow(raw-accumulate) — exact integer byte counters;
  // associativity holds bit-for-bit at any fold order.
  for (const auto b : bytes_sent_) sum += b;
  return sum;
}

void CommWorld::reset_byte_counter() {
  for (auto& b : bytes_sent_) b = 0;
}

void CommWorld::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const int gen = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return gen != barrier_generation_; });
  }
}

void MailboxComm::send(int dst, std::vector<cplx> data) {
  QTX_CHECK(dst >= 0 && dst < size());
  world_->bytes_sent_[rank_] +=
      static_cast<std::int64_t>(data.size()) * sizeof(cplx);
  if (world_->backend_ == Backend::kHostStaged && !data.empty()) {
    // Stage through a "host" buffer: one copy on the send side; the matching
    // receive copy happens in recv(). This is the extra memory traffic that
    // separates host MPI from *CCL in Fig. 6.
    std::vector<cplx> staged(data.size());
    std::memcpy(staged.data(), data.data(), data.size() * sizeof(cplx));
    data = std::move(staged);
  }
  auto& mb = world_->mailbox(rank_, dst);
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push(CommWorld::Message{std::move(data)});
  }
  mb.cv.notify_one();
}

std::vector<cplx> MailboxComm::recv(int src) {
  QTX_CHECK(src >= 0 && src < size());
  auto& mb = world_->mailbox(src, rank_);
  std::unique_lock<std::mutex> lock(mb.mutex);
  mb.cv.wait(lock, [&] { return !mb.queue.empty(); });
  std::vector<cplx> data = std::move(mb.queue.front().payload);
  mb.queue.pop();
  lock.unlock();
  if (world_->backend_ == Backend::kHostStaged && !data.empty()) {
    std::vector<cplx> device(data.size());
    std::memcpy(device.data(), data.data(), data.size() * sizeof(cplx));
    return device;
  }
  return data;
}

}  // namespace qtx::par
