#pragma once

/// \file launcher.hpp
/// Multi-process launcher/supervisor behind `qtx run --ranks N`: forks one
/// worker process per rank over a pre-built socket mesh (par/comm_socket.hpp),
/// runs the rank function in each child, and supervises the world — exit-code
/// propagation, per-rank failure diagnostics (collected over error pipes, so
/// library code never touches stderr), a hard wall-clock timeout, and a
/// guarantee that every child is reaped before returning (no orphans, no
/// zombies). On the first genuine failure the remaining workers are killed;
/// ranks killed by the supervisor itself are *not* reported as failures.

#include <functional>
#include <string>
#include <vector>

#include "par/comm.hpp"

namespace qtx::par {

/// Outcome of one launch_ranks() world. ok() means every rank ran the
/// function to completion and exited 0 within the timeout.
struct LaunchReport {
  /// 0 on success; otherwise the first failing child's exit code (1 for
  /// signal deaths and timeouts).
  int exit_code = 0;
  /// Ranks that genuinely failed (non-zero exit, uncaught exception, or an
  /// external signal) — ranks the supervisor killed while tearing down a
  /// failed or timed-out world are excluded.
  std::vector<int> failed_ranks;
  /// True when the wall-clock timeout expired and the supervisor SIGKILLed
  /// the remaining workers.
  bool timed_out = false;
  /// Human-readable failure summary naming every failed rank with its
  /// diagnostic; empty on success.
  std::string diagnostic;

  /// Convenience: did the whole world succeed?
  bool ok() const {
    return exit_code == 0 && !timed_out && failed_ranks.empty();
  }
};

/// Fork \p ranks worker processes over a fresh AF_UNIX socket mesh and run
/// \p fn(comm) in each child with that rank's `SocketComm`. The parent
/// supervises: a child throwing reports its `what()` through an error pipe
/// and exits 1; on the first genuine failure (or after \p timeout_s seconds)
/// every remaining worker is SIGKILLed. All children are reaped before this
/// returns. Call from a single-threaded process state (forking with live
/// threads is undefined behavior for the children); `qtx run --ranks` forks
/// before any thread pool exists.
LaunchReport launch_ranks(int ranks, double timeout_s,
                          const std::function<void(Comm&)>& fn);

}  // namespace qtx::par
