#include "par/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/check.hpp"

namespace qtx::par {

/// Completion state of one parallel_for call, shared by its tasks. Lives on
/// the calling thread's stack — parallel_for does not return before
/// remaining hits zero, so the pointer in Task never dangles.
struct ThreadPool::Job {
  const std::function<void(int)>* fn = nullptr;
  std::atomic<int> remaining{0};
  std::atomic<bool> cancelled{false};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;         // guarded by done_mutex; the waiter's predicate
  std::exception_ptr error;  // guarded by done_mutex; first exception wins
};

ThreadPool::ThreadPool(int num_threads) {
  QTX_CHECK_MSG(num_threads >= 1,
                "ThreadPool needs at least 1 worker, got " << num_threads);
  queues_.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ThreadPool::execute(const Task& task) {
  Job& job = *task.job;
  if (!job.cancelled.load(std::memory_order_relaxed)) {
    try {
      (*job.fn)(task.index);
    } catch (...) {
      job.cancelled.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(job.done_mutex);
      if (!job.error) job.error = std::current_exception();
    }
  }
  if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // The waiter's predicate only reads `done` under the mutex, so it
    // cannot observe completion (and destroy the stack-allocated Job)
    // before this critical section — including the notify — has released
    // the lock; after that the worker never touches the Job again.
    std::lock_guard<std::mutex> lock(job.done_mutex);
    job.done = true;
    job.done_cv.notify_all();
  }
}

bool ThreadPool::find_task(int self, Task& out) {
  const int n = static_cast<int>(queues_.size());
  // Own deque first, front-out: submission order, warm caches.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = q.tasks.front();
      q.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of the other deques (round-robin from self+1).
  for (int d = 1; d < n; ++d) {
    WorkerQueue& q = *queues_[(self + d) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      out = q.tasks.back();
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(int self) {
  for (;;) {
    Task task;
    if (find_task(self, task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --queued_;
      }
      execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  Job job;
  job.fn = &fn;
  job.remaining.store(n, std::memory_order_relaxed);
  // Deal contiguous index ranges onto the workers so a worker draining its
  // own deque walks ascending indices; stealing takes from the far end.
  const int workers = size();
  const int per = n / workers, extra = n % workers;
  // Raise the wake counter before publishing any task: queued_ then always
  // bounds the deque population from above, so a worker that sees
  // queued_ > 0 with empty deques only spins for the duration of the push
  // below, never indefinitely.
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    queued_ += n;
  }
  int next = 0;
  for (int w = 0; w < workers; ++w) {
    const int count = per + (w < extra ? 1 : 0);
    if (count == 0) continue;
    WorkerQueue& q = *queues_[w];
    std::lock_guard<std::mutex> lock(q.mutex);
    for (int i = 0; i < count; ++i) q.tasks.push_back(Task{&job, next++});
  }
  wake_cv_.notify_all();
  std::unique_lock<std::mutex> lock(job.done_mutex);
  job.done_cv.wait(lock, [&job] { return job.done; });
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace qtx::par
