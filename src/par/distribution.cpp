#include "par/distribution.hpp"

namespace qtx::par {

std::vector<cplx> compress_fp32(const std::vector<cplx>& data) {
  // Two complex<float> per cplx slot; odd tails pad with zero.
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  std::vector<cplx> packed((n + 1) / 2);
  auto* out = reinterpret_cast<float*>(packed.data());
  for (std::int64_t i = 0; i < n; ++i) {
    out[2 * i] = static_cast<float>(data[i].real());
    out[2 * i + 1] = static_cast<float>(data[i].imag());
  }
  return packed;
}

std::vector<cplx> decompress_fp32(const std::vector<cplx>& packed,
                                  std::int64_t count) {
  QTX_CHECK(static_cast<std::int64_t>(packed.size()) == (count + 1) / 2);
  std::vector<cplx> out(count);
  const auto* in = reinterpret_cast<const float*>(packed.data());
  for (std::int64_t i = 0; i < count; ++i)
    out[i] = cplx(in[2 * i], in[2 * i + 1]);
  return out;
}

std::vector<std::vector<cplx>> Transposer::exchange(
    Comm& comm, std::vector<std::vector<cplx>> send) const {
  if (precision_ == WirePrecision::kFp64) return comm.alltoall(std::move(send));
  std::vector<std::int64_t> counts(send.size());
  for (size_t r = 0; r < send.size(); ++r) {
    counts[r] = static_cast<std::int64_t>(send[r].size());
    send[r] = compress_fp32(send[r]);
  }
  // Receive-side sizes mirror the send sizes by the symmetry of the block
  // distributions: what rank a sends to rank b has the same element count
  // as what b sends to a only for uniform splits, so exchange the true
  // counts alongside (one extra scalar per pair is negligible).
  for (size_t r = 0; r < send.size(); ++r)
    send[r].push_back(cplx(static_cast<double>(counts[r]), 0.0));
  auto recv = comm.alltoall(std::move(send));
  for (auto& buf : recv) {
    QTX_CHECK(!buf.empty());
    const std::int64_t count =
        static_cast<std::int64_t>(buf.back().real() + 0.5);
    buf.pop_back();
    buf = decompress_fp32(buf, count);
  }
  return recv;
}

std::vector<cplx> Transposer::to_element_layout(
    Comm& comm, const std::vector<cplx>& energy_data) {
  const int rank = comm.rank(), size = comm.size();
  const std::int64_t ne_mine = energies_.count(rank);
  const std::int64_t k_total = elements_.total;
  QTX_CHECK(static_cast<std::int64_t>(energy_data.size()) ==
            ne_mine * k_total);
  // Pack: destination r gets my energies x its element slice.
  std::vector<std::vector<cplx>> send(size);
  for (int r = 0; r < size; ++r) {
    const std::int64_t koff = elements_.offset(r), kcnt = elements_.count(r);
    send[r].resize(ne_mine * kcnt);
    for (std::int64_t e = 0; e < ne_mine; ++e)
      for (std::int64_t k = 0; k < kcnt; ++k)
        send[r][e * kcnt + k] = energy_data[e * k_total + koff + k];
  }
  const auto recv = exchange(comm, std::move(send));
  // Unpack: from rank r come its energies for my element slice.
  const std::int64_t k_mine = elements_.count(rank);
  std::vector<cplx> out(k_mine * energies_.total);
  for (int r = 0; r < size; ++r) {
    const std::int64_t eoff = energies_.offset(r), ecnt = energies_.count(r);
    QTX_CHECK(static_cast<std::int64_t>(recv[r].size()) == ecnt * k_mine);
    for (std::int64_t e = 0; e < ecnt; ++e)
      for (std::int64_t k = 0; k < k_mine; ++k)
        out[k * energies_.total + eoff + e] = recv[r][e * k_mine + k];
  }
  return out;
}

std::vector<cplx> Transposer::to_energy_layout(
    Comm& comm, const std::vector<cplx>& element_data) {
  const int rank = comm.rank(), size = comm.size();
  const std::int64_t k_mine = elements_.count(rank);
  QTX_CHECK(static_cast<std::int64_t>(element_data.size()) ==
            k_mine * energies_.total);
  // Pack: destination r gets its energy slice for my elements.
  std::vector<std::vector<cplx>> send(size);
  for (int r = 0; r < size; ++r) {
    const std::int64_t eoff = energies_.offset(r), ecnt = energies_.count(r);
    send[r].resize(ecnt * k_mine);
    for (std::int64_t e = 0; e < ecnt; ++e)
      for (std::int64_t k = 0; k < k_mine; ++k)
        send[r][e * k_mine + k] = element_data[k * energies_.total + eoff + e];
  }
  const auto recv = exchange(comm, std::move(send));
  const std::int64_t ne_mine = energies_.count(rank);
  const std::int64_t k_total = elements_.total;
  std::vector<cplx> out(ne_mine * k_total);
  for (int r = 0; r < size; ++r) {
    const std::int64_t koff = elements_.offset(r), kcnt = elements_.count(r);
    QTX_CHECK(static_cast<std::int64_t>(recv[r].size()) == ne_mine * kcnt);
    for (std::int64_t e = 0; e < ne_mine; ++e)
      for (std::int64_t k = 0; k < kcnt; ++k)
        out[e * k_total + koff + k] = recv[r][e * kcnt + k];
  }
  return out;
}

}  // namespace qtx::par
