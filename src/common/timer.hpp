#pragma once

/// \file timer.hpp
/// Wall-clock timers mirroring the paper's per-kernel time measurements
/// (Table 4 rows). TimerRegistry accumulates named durations; ScopedTimer is
/// the RAII entry point used around each SCBA kernel. This header is the
/// one sanctioned home of raw std::chrono clocks outside src/obs (enforced
/// by the qtx-lint `raw-clock` check) — everything else times through
/// Stopwatch, ScopedTimer, or monotonic_seconds().

#include <chrono>
#include <map>
#include <string>
#include <utility>

namespace qtx {

/// Seconds on the process-wide monotonic clock (arbitrary epoch). The
/// building block for deadline arithmetic outside this header.
inline double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process-wide named wall-clock accumulators. Thread-safe: add() appends
/// to the calling thread's own per-thread block (uncontended mutex, same
/// pattern as FlopLedger), so pipeline workers timing kernels concurrently
/// never contend, and observer threads can poll seconds()/all() mid-run
/// without torn reads. Absorbed into obs::MetricsRegistry snapshots as
/// `qtx.time.<name>.seconds` gauges (obs/metrics.hpp).
class TimerRegistry {
 public:
  /// Accumulate \p seconds into the timer named \p name.
  static void add(const std::string& name, double seconds);

  /// Seconds accumulated under \p name (0 if never recorded).
  static double seconds(const std::string& name);

  /// All timers, ordered by name.
  static std::map<std::string, double> all();

  static void reset();
};

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name)
      : name_(std::move(name)), start_(clock::now()) {}
  ~ScopedTimer() {
    const double s =
        std::chrono::duration<double>(clock::now() - start_).count();
    TimerRegistry::add(name_, s);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using clock = std::chrono::steady_clock;
  std::string name_;
  clock::time_point start_;
};

/// Simple stopwatch for benches that manage their own aggregation.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace qtx
