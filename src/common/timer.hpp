#pragma once

/// \file timer.hpp
/// Wall-clock timers mirroring the paper's per-kernel time measurements
/// (Table 4 rows). TimerRegistry accumulates named durations; ScopedTimer is
/// the RAII entry point used around each SCBA kernel.

#include <chrono>
#include <map>
#include <string>
#include <utility>

namespace qtx {

class TimerRegistry {
 public:
  /// Accumulate \p seconds into the timer named \p name.
  static void add(const std::string& name, double seconds);

  /// Seconds accumulated under \p name (0 if never recorded).
  static double seconds(const std::string& name);

  /// All timers, ordered by name.
  static std::map<std::string, double> all();

  static void reset();
};

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name)
      : name_(std::move(name)), start_(clock::now()) {}
  ~ScopedTimer() {
    const double s =
        std::chrono::duration<double>(clock::now() - start_).count();
    TimerRegistry::add(name_, s);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using clock = std::chrono::steady_clock;
  std::string name_;
  clock::time_point start_;
};

/// Simple stopwatch for benches that manage their own aggregation.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace qtx
